package localbp

// The benchmark harness regenerates every figure and table of the paper's
// evaluation (see DESIGN.md §5 for the index). Each benchmark runs its
// experiment once per iteration over the quick workload subset (the full
// 202-workload suite is the lbpsweep command's job) and reports the
// experiment's headline numbers as benchmark metrics, so
//
//	go test -bench=Fig11 -benchmem
//
// both regenerates the artifact and times it. Ablation benchmarks at the
// bottom quantify the design choices DESIGN.md §7 calls out.

import (
	"context"
	"testing"

	"localbp/internal/bpu/loop"
	"localbp/internal/core"
	"localbp/internal/harness"
	"localbp/internal/metrics"
	"localbp/internal/repair"
	"localbp/internal/trace"
	"localbp/internal/workloads"
)

const benchInsts = 60_000

func benchRunner() *harness.Runner {
	return harness.NewRunner(harness.Options{Insts: benchInsts, Quick: true})
}

// benchExperiment times one full experiment regeneration.
func benchExperiment(b *testing.B, id string) {
	e, ok := harness.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		out, err := e.Run(context.Background(), r)
		if err != nil {
			b.Fatal(err)
		}
		if out == "" {
			b.Fatal("experiment produced no output")
		}
	}
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkFig4(b *testing.B)   { benchExperiment(b, "fig4") }
func BenchmarkFig7a(b *testing.B)  { benchExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B)  { benchExperiment(b, "fig7b") }
func BenchmarkFig7c(b *testing.B)  { benchExperiment(b, "fig7c") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig14a(b *testing.B) { benchExperiment(b, "fig14a") }
func BenchmarkFig14b(b *testing.B) { benchExperiment(b, "fig14b") }
func BenchmarkExt1(b *testing.B)   { benchExperiment(b, "ext1") }
func BenchmarkExt2(b *testing.B)   { benchExperiment(b, "ext2") }

// BenchmarkSimulatorThroughput measures raw core model speed (instructions
// per second) on a representative workload with the headline configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := workloads.ByName("sysmark-photoshop")
	tr := w.Generate(200_000)
	spec := harness.PaperForwardWalk(loop.Loop128())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harness.RunTrace(tr, spec)
	}
	b.SetBytes(200_000) // report "bytes" as instructions simulated
}

// BenchmarkTAGEPredict measures predictor-only throughput.
func BenchmarkTAGEPredict(b *testing.B) {
	w, _ := workloads.ByName("geekbench-03")
	tr := w.Generate(100_000)
	spec := harness.BaselineSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		harness.RunTrace(tr, spec)
	}
}

// --- observability overhead (DESIGN.md §11) ---

// benchCoreLoop drives the facade end-to-end over a fixed pre-generated
// trace so the measurement is the simulator core loop plus whatever the
// given options enable. ns/inst and ns/cycle normalize the headline number;
// lbpbench serializes the same measurements into BENCH_baseline.json.
func benchCoreLoop(b *testing.B, opts ...Option) {
	w, _ := workloads.ByName("cloud-compression")
	tr := w.Generate(120_000)
	ref, err := SimulateTrace(tr, ForwardWalk(), opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateTrace(tr, ForwardWalk(), opts...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(perOp/float64(len(tr)), "ns/inst")
	b.ReportMetric(perOp/float64(ref.Cycles), "ns/cycle")
}

// BenchmarkCoreLoop is the obs-disabled reference: the hot loop pays only
// nil checks for the observability layer.
func BenchmarkCoreLoop(b *testing.B) { benchCoreLoop(b) }

// BenchmarkCoreLoopObs carries every instrument: CPI stack, counter
// registry, event tracer.
func BenchmarkCoreLoopObs(b *testing.B) {
	benchCoreLoop(b, WithCPIStack(), WithCounters(), WithEventTrace(4096))
}

// --- ablation benches (DESIGN.md §7) ---

// ablationDelta reports the suite-level MPKI reduction of a spec variant
// against the shared baseline as benchmark metrics.
func ablationDelta(b *testing.B, mk func() harness.Spec) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		base := r.Results(harness.BaselineSpec())
		exp := r.Results(mk())
		red := metrics.MeanReduction(collect(base), collect(exp))
		b.ReportMetric(red, "MPKIredn%")
	}
}

func collect(rs []metrics.Result) []float64 {
	out := make([]float64, len(rs))
	for i := range rs {
		out[i] = rs[i].MPKI
	}
	return out
}

// BenchmarkAblationWrongPath quantifies substitution 2 of DESIGN.md §3:
// disabling wrong-path synthesis removes BHT pollution and overstates the
// no-repair configuration.
func BenchmarkAblationWrongPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := benchRunner()
		with := harness.NoRepairSpec(loop.Loop128())
		without := harness.NoRepairSpec(loop.Loop128())
		without.Label = "no-repair-no-wrongpath"
		cfg := core.DefaultConfig()
		cfg.WrongPath = false
		without.Core = cfg
		base := r.Results(harness.BaselineSpec())
		a := metrics.MeanReduction(collect(base), collect(r.Results(with)))
		bb := metrics.MeanReduction(collect(base), collect(r.Results(without)))
		b.ReportMetric(a, "withWP%")
		b.ReportMetric(bb, "noWP%")
	}
}

// BenchmarkAblationCoalescing isolates the OBQ-coalescing gain (Figure 11's
// final bar) at high OBQ pressure (16 entries).
func BenchmarkAblationCoalescing(b *testing.B) {
	mkFwd := func(coalesce bool, label string) func() harness.Spec {
		return func() harness.Spec {
			s := harness.ForwardWalkSpec(loop.Loop128(), 16,
				repair.Ports{CkptRead: 4, BHTWrite: 2}, coalesce)
			s.Label = label
			return s
		}
	}
	b.Run("plain", func(b *testing.B) { ablationDelta(b, mkFwd(false, "fwd16-plain")) })
	b.Run("coalesced", func(b *testing.B) { ablationDelta(b, mkFwd(true, "fwd16-coalesced")) })
}

// BenchmarkAblationInvalidate compares limited-PC's two non-repaired-PC
// policies (paper §3.3: leaving them as-is wins).
func BenchmarkAblationInvalidate(b *testing.B) {
	b.Run("leave", func(b *testing.B) {
		ablationDelta(b, func() harness.Spec { return harness.LimitedPCSpec(loop.Loop128(), 4, 4, false) })
	})
	b.Run("invalidate", func(b *testing.B) {
		ablationDelta(b, func() harness.Spec { return harness.LimitedPCSpec(loop.Loop128(), 4, 4, true) })
	})
}

// BenchmarkAblationConfidence sweeps the loop predictor's override
// confidence threshold.
func BenchmarkAblationConfidence(b *testing.B) {
	for _, thresh := range []uint8{4, 6, 7} {
		cfg := loop.Loop128()
		cfg.ConfThresh = thresh
		cfg.Name = "Loop128-conf"
		b.Run(map[uint8]string{4: "conf4", 6: "conf6", 7: "conf7"}[thresh], func(b *testing.B) {
			ablationDelta(b, func() harness.Spec { return harness.PerfectSpec(cfg) })
		})
	}
}

// BenchmarkAblationDepth shows that deeper front ends make repair matter
// more (the paper's retire-update trend).
func BenchmarkAblationDepth(b *testing.B) {
	for _, depth := range []int64{6, 14} {
		depth := depth
		b.Run(map[int64]string{6: "depth6", 14: "depth14"}[depth], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := benchRunner()
				cfg := core.DefaultConfig()
				cfg.FrontendDepth = depth
				base := harness.BaselineSpec()
				base.Label = "tage-depth"
				base.Core = cfg
				perf := harness.PerfectSpec(loop.Loop128())
				perf.Label = "perfect-depth"
				perf.Core = cfg
				gain := metrics.IPCGainPct(ipcsOf(r.Results(base)), ipcsOf(r.Results(perf)))
				b.ReportMetric(gain, "dIPC%")
			}
		})
	}
}

func ipcsOf(rs []metrics.Result) []float64 {
	out := make([]float64, len(rs))
	for i := range rs {
		out[i] = rs[i].IPC
	}
	return out
}

// BenchmarkTraceGeneration measures the synthetic workload generator.
func BenchmarkTraceGeneration(b *testing.B) {
	w, _ := workloads.ByName("hadoop-analytics-01")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := w.Generate(100_000)
		if len(tr) != 100_000 {
			b.Fatal("short trace")
		}
	}
}

// BenchmarkTraceEncode measures the binary trace codec.
func BenchmarkTraceEncode(b *testing.B) {
	w, _ := workloads.ByName("hadoop-analytics-01")
	tr := w.Generate(100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sink countingWriter
		if err := trace.WriteTrace(&sink, tr); err != nil {
			b.Fatal(err)
		}
	}
}

type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
