package localbp

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"localbp/internal/core"
)

// TestWithContextCancel: a canceled context aborts Simulate with an error
// matching both the facade-level core.ErrCanceled and the stdlib cause.
func TestWithContextCancel(t *testing.T) {
	w := Workloads()[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Simulate(w, 50_000, ForwardWalk(), WithContext(ctx))
	if err == nil {
		t.Fatal("pre-canceled context: Simulate completed")
	}
	if !errors.Is(err, core.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation cause not exposed: %v", err)
	}
}

// TestWithContextBitIdentical: the context plumbing is read-only — a run
// under a live context is bit-identical to one without WithContext.
func TestWithContextBitIdentical(t *testing.T) {
	w := Workloads()[0]
	plain, err := Simulate(w, 30_000, ForwardWalk())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx, err := Simulate(w, 30_000, ForwardWalk(), WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, withCtx) {
		t.Fatalf("WithContext perturbed the run:\nplain: %+v\nctx:   %+v", plain, withCtx)
	}
}

// TestWithContextNil: a nil context falls back to Background instead of
// panicking.
func TestWithContextNil(t *testing.T) {
	w := Workloads()[0]
	if _, err := Simulate(w, 10_000, BaselineTAGE(), WithContext(nil)); err != nil {
		t.Fatal(err)
	}
}
