// Quickstart: simulate one workload on the Table 2 core with the TAGE
// baseline and with CBPw-Loop under forward-walk repair (the paper's
// headline configuration), print the headline metrics, and show the
// forward-walk run's CPI stack (where every cycle went).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"localbp"
)

func main() {
	w, ok := localbp.Workload("cloud-compression")
	if !ok {
		log.Fatal("workload not found")
	}
	const insts = 500_000

	run := func(s localbp.Scheme, opts ...localbp.Option) localbp.Result {
		r, err := localbp.Simulate(w, insts, s, opts...)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	base := run(localbp.BaselineTAGE())
	fwd := run(localbp.ForwardWalk(), localbp.WithCPIStack())
	perf := run(localbp.PerfectRepair())

	fmt.Printf("workload %s (%s), %d instructions\n\n", w.Name, w.Category, insts)
	fmt.Printf("%-14s %8s %8s %12s\n", "config", "IPC", "MPKI", "overrides")
	for _, r := range []localbp.Result{base, fwd, perf} {
		fmt.Printf("%-14s %8.3f %8.3f %7d (%d ok)\n", r.Scheme, r.IPC, r.MPKI, r.Overrides, r.OverridesOK)
	}

	gain := func(r localbp.Result) float64 { return 100 * (r.IPC/base.IPC - 1) }
	fmt.Printf("\nforward walk: %+.2f%% IPC, retaining %.0f%% of the perfect-repair gain\n",
		gain(fwd), 100*gain(fwd)/gain(perf))

	fmt.Printf("\nforward-walk CPI stack:\n%s", fwd.CPI)
}
