// customworkload shows how to author a synthetic program by hand — regions,
// loop-period generators, branch-outcome patterns, memory profile — and run
// it through the simulator. Use this as a template for studying specific
// branch behaviours.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"localbp"
	"localbp/internal/trace"
)

func main() {
	// A program with three characteristic branch sites:
	//   site 0 — a long fixed loop (period 96) that overflows TAGE's
	//            usable history once diluted: CBPw-Loop territory;
	//   site 2 — an if-then-else taken once every 24 executions
	//            (the NNN...T forward-conditional shape);
	//   site 4 — a biased random branch: irreducible noise that also
	//            dilutes the global history.
	prog := trace.Program{
		Regions: []trace.Region{
			trace.Loop{
				Site:    0,
				Periods: trace.FixedPeriod(96),
				Body: []trace.Region{
					trace.Block{Site: 1, Len: 14},
					trace.Cond{
						Site:    2,
						Outcome: &trace.PeriodicPattern{Period: 24},
						ThenLen: 8,
						ElseLen: 4,
					},
					trace.Cond{
						Site:    4,
						Outcome: trace.BiasedPattern{P: 0.85},
						ThenLen: 6,
						ElseLen: 3,
					},
				},
			},
			trace.Block{Site: 5, Len: 24},
		},
		MemProfile: trace.MemProfile{
			FootprintLog2: 19,   // 512KB random pool
			StreamFrac:    0.75, // three quarters of accesses stream
			LoadFrac:      0.25,
			StoreFrac:     0.10,
		},
		DepDist:      5,
		Independence: 0.9,
	}

	const insts = 400_000
	tr := trace.Generate(prog, insts, 42)
	fmt.Println("trace:", trace.Summarize(tr))

	run := func(s localbp.Scheme) localbp.Result {
		r, err := localbp.SimulateTrace(tr, s)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	base := run(localbp.BaselineTAGE())
	fwd := run(localbp.ForwardWalk())
	none := run(localbp.NoRepair())

	fmt.Printf("\n%-14s %8s %8s\n", "config", "IPC", "MPKI")
	for _, r := range []localbp.Result{base, fwd, none} {
		fmt.Printf("%-14s %8.3f %8.3f\n", r.Scheme, r.IPC, r.MPKI)
	}
	fmt.Printf("\nforward-walk repair removes %.1f%% of the baseline MPKI;\n",
		100*(base.MPKI-fwd.MPKI)/base.MPKI)
	fmt.Printf("without repair the same predictor removes %.1f%%.\n",
		100*(base.MPKI-none.MPKI)/base.MPKI)
	// Note: with very branch-dense programs whose every branch hits the
	// BHT, the 32-entry OBQ saturates (paper §2.5 issue d) and forward
	// walk loses ground to perfect repair — try shrinking the blocks
	// above to see it.
}
