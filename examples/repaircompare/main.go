// repaircompare runs one workload under every repair scheme the paper
// studies and prints a Table 3-style comparison: MPKI reduction, IPC gain
// and the fraction of the perfect-repair gain each scheme retains.
//
//	go run ./examples/repaircompare [-workload name] [-insts N]
package main

import (
	"flag"
	"fmt"
	"log"

	"localbp"
)

func main() {
	name := flag.String("workload", "sysmark-photoshop", "suite workload to simulate")
	insts := flag.Int("insts", 400_000, "instructions per run")
	flag.Parse()

	w, ok := localbp.Workload(*name)
	if !ok {
		log.Fatalf("unknown workload %q", *name)
	}
	tr := w.Generate(*insts)

	run := func(s localbp.Scheme) localbp.Result {
		r, err := localbp.SimulateTrace(tr, s)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	schemes := []localbp.Scheme{
		localbp.NoRepair(),
		localbp.RetireUpdate(),
		localbp.BackwardWalk(),
		localbp.LimitedPC(2),
		localbp.MultiStage(),
		localbp.LimitedPC(4),
		localbp.ForwardWalk(),
	}

	base := run(localbp.BaselineTAGE())
	perf := run(localbp.PerfectRepair())
	perfGain := 100 * (perf.IPC/base.IPC - 1)

	fmt.Printf("workload %s (%s), %d instructions\n", w.Name, w.Category, *insts)
	fmt.Printf("baseline TAGE: IPC %.3f, MPKI %.3f\n", base.IPC, base.MPKI)
	fmt.Printf("perfect repair: IPC %+.2f%%, MPKI %+.1f%%\n\n",
		perfGain, 100*(base.MPKI-perf.MPKI)/base.MPKI)

	fmt.Printf("%-16s %9s %9s %14s\n", "scheme", "dMPKI", "dIPC", "of perfect")
	for _, s := range schemes {
		r := run(s)
		dm := 100 * (base.MPKI - r.MPKI) / base.MPKI
		di := 100 * (r.IPC/base.IPC - 1)
		fmt.Printf("%-16s %8.1f%% %8.2f%% %13.0f%%\n", r.Scheme, dm, di, 100*di/perfGain)
	}
}
