// loopstudy characterizes a workload's branch sites and quantifies the
// local-predictor opportunity per site kind: which branches TAGE mispredicts
// and which of those the CBPw-Loop predictor recovers — the analysis behind
// Figure 4 and Figure 7.
//
//	go run ./examples/loopstudy [-workload name] [-insts N]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"localbp/internal/bpu"
	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/repair"
	"localbp/internal/workloads"
)

func main() {
	name := flag.String("workload", "geekbench-03", "suite workload to analyze")
	insts := flag.Int("insts", 300_000, "instructions to simulate")
	flag.Parse()

	w, ok := workloads.ByName(*name)
	if !ok {
		log.Fatalf("unknown workload %q", *name)
	}
	_, sites := workloads.BuildProgramInfo(w.Profile, w.Seed)
	kindOf := map[uint64]workloads.SiteKind{}
	for _, si := range sites {
		kindOf[si.PC] = si.Kind
	}
	fmt.Printf("workload %s (%s): %d branch sites\n\n", w.Name, w.Category, len(sites))

	// In-order predictor study: TAGE alone vs TAGE+CBPw-Loop with exact
	// state, attributing mispredictions per site kind.
	tr := w.Generate(*insts)
	scheme := repair.NewPerfect(loop.Loop128())
	unit := bpu.NewUnit(tage.KB8(), scheme)
	type agg struct{ n, tageMiss, finalMiss int }
	byKind := map[workloads.SiteKind]*agg{}
	var seq uint64
	for i := range tr {
		in := &tr[i]
		if !in.IsBranch() {
			continue
		}
		seq++
		rec := unit.GetRec()
		pred := unit.Predict(rec, in.PC, in.Taken, seq, false, int64(i))
		tageWrong := rec.TagePred != in.Taken
		unit.Resolve(rec, int64(i))
		unit.Retire(rec)

		k := kindOf[in.PC]
		a := byKind[k]
		if a == nil {
			a = &agg{}
			byKind[k] = a
		}
		a.n++
		if tageWrong {
			a.tageMiss++
		}
		if pred != in.Taken {
			a.finalMiss++
		}
	}

	kinds := make([]workloads.SiteKind, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })

	fmt.Printf("%-15s %9s %10s %10s %10s\n", "site kind", "branches", "TAGE miss", "final miss", "recovered")
	totT, totF := 0, 0
	for _, k := range kinds {
		a := byKind[k]
		totT += a.tageMiss
		totF += a.finalMiss
		rec := "-"
		if a.tageMiss > 0 {
			rec = fmt.Sprintf("%.0f%%", 100*float64(a.tageMiss-a.finalMiss)/float64(a.tageMiss))
		}
		fmt.Printf("%-15s %9d %10d %10d %10s\n", k, a.n, a.tageMiss, a.finalMiss, rec)
	}
	fmt.Printf("\nTOTAL: TAGE %d mispredicts -> %d with CBPw-Loop (%.1f%% reduction)\n",
		totT, totF, 100*float64(totT-totF)/float64(max(1, totT)))
	ov, ovok := unit.OverrideStats()
	fmt.Printf("loop predictor overrides: %d (%d correct)\n", ov, ovok)
}
