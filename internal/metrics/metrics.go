// Package metrics aggregates per-workload simulation results into the
// quantities the paper reports: geometric-mean IPC gains, arithmetic MPKI
// reductions, per-category rollups, normalization against perfect repair,
// and S-curves.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Result is one workload × configuration outcome.
type Result struct {
	Workload string
	Category string
	IPC      float64
	MPKI     float64
	TageMPKI float64
}

// GeoMeanRatio returns the geometric mean of b[i]/a[i] (e.g. IPC gain when
// b is the experiment and a the baseline), expressed as a ratio.
func GeoMeanRatio(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	sum := 0.0
	n := 0
	for i := range a {
		if a[i] <= 0 || b[i] <= 0 {
			continue
		}
		sum += math.Log(b[i] / a[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(sum / float64(n))
}

// MeanReduction returns the average relative reduction (a-b)/a in percent:
// the paper's "MPKI reduction" metric.
func MeanReduction(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return math.NaN()
	}
	sum := 0.0
	n := 0
	for i := range a {
		if a[i] <= 0 {
			continue
		}
		sum += (a[i] - b[i]) / a[i]
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return 100 * sum / float64(n)
}

// TotalReduction returns the suite-level reduction of summed MPKI in
// percent (weights workloads by their misprediction volume).
func TotalReduction(a, b []float64) float64 {
	sa, sb := 0.0, 0.0
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	if sa == 0 {
		return math.NaN()
	}
	return 100 * (sa - sb) / sa
}

// IPCGainPct returns the geometric-mean IPC gain of exp over base in percent.
func IPCGainPct(base, exp []float64) float64 {
	return 100 * (GeoMeanRatio(base, exp) - 1)
}

// Series is a labeled set of per-workload results.
type Series struct {
	Label   string
	Results []Result
}

// ByCategory groups results and applies fn to (baseline, experiment) value
// slices per category, returning category → value in category name order.
// Mismatched result-set lengths (a partially-failed sweep compared against a
// complete one) return an error instead of panicking.
func ByCategory(base, exp []Result, value func(Result) float64, agg func(a, b []float64) float64) ([]string, []float64, error) {
	if len(base) != len(exp) {
		return nil, nil, fmt.Errorf("metrics: mismatched result sets (%d baseline vs %d experiment)",
			len(base), len(exp))
	}
	order := []string{}
	seen := map[string]bool{}
	groupsA := map[string][]float64{}
	groupsB := map[string][]float64{}
	for i := range base {
		c := base[i].Category
		if !seen[c] {
			seen[c] = true
			order = append(order, c)
		}
		groupsA[c] = append(groupsA[c], value(base[i]))
		groupsB[c] = append(groupsB[c], value(exp[i]))
	}
	out := make([]float64, len(order))
	for i, c := range order {
		out[i] = agg(groupsA[c], groupsB[c])
	}
	return order, out, nil
}

// SCurve returns per-workload IPC gains (exp/base - 1, percent) sorted
// ascending, with workload names attached: Figure 7c.
type SCurvePoint struct {
	Workload string
	GainPct  float64
}

// SCurve computes the sorted per-workload gain curve. Mismatched result-set
// lengths return an error instead of panicking.
func SCurve(base, exp []Result) ([]SCurvePoint, error) {
	if len(base) != len(exp) {
		return nil, fmt.Errorf("metrics: mismatched result sets (%d baseline vs %d experiment)",
			len(base), len(exp))
	}
	pts := make([]SCurvePoint, len(base))
	for i := range base {
		g := math.NaN()
		if base[i].IPC > 0 {
			g = 100 * (exp[i].IPC/base[i].IPC - 1)
		}
		pts[i] = SCurvePoint{Workload: base[i].Workload, GainPct: g}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].GainPct < pts[j].GainPct })
	return pts, nil
}

// Table renders a simple aligned text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Bar renders v as a proportional ASCII bar against scale (the value that
// fills the full width); negative values render a left-marked bar. Figures
// print it next to the numbers so the sweep output reads like the paper's
// bar charts.
func Bar(v, scale float64, width int) string {
	if width <= 0 || math.IsNaN(v) || scale <= 0 {
		return ""
	}
	n := int(math.Abs(v)/scale*float64(width) + 0.5)
	if n > width {
		n = width
	}
	bar := strings.Repeat("#", n) + strings.Repeat(".", width-n)
	if v < 0 {
		return "-" + bar
	}
	return " " + bar
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// F2 formats a float with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }
