package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoMeanRatio(t *testing.T) {
	a := []float64{1, 2, 4}
	b := []float64{2, 4, 8}
	if got := GeoMeanRatio(a, b); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMeanRatio = %v, want 2", got)
	}
}

func TestGeoMeanRatioIdentity(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		return math.Abs(GeoMeanRatio(clean, clean)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMeanRatioEdgeCases(t *testing.T) {
	if !math.IsNaN(GeoMeanRatio(nil, nil)) {
		t.Fatal("empty inputs should yield NaN")
	}
	if !math.IsNaN(GeoMeanRatio([]float64{1}, []float64{1, 2})) {
		t.Fatal("mismatched lengths should yield NaN")
	}
	// Zero entries are skipped, not fatal.
	if got := GeoMeanRatio([]float64{0, 2}, []float64{5, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("zero-skipping failed: %v", got)
	}
}

func TestMeanReduction(t *testing.T) {
	a := []float64{10, 20}
	b := []float64{5, 10}
	if got := MeanReduction(a, b); math.Abs(got-50) > 1e-9 {
		t.Fatalf("MeanReduction = %v, want 50", got)
	}
	// Negative reductions (regressions) must come out negative.
	if got := MeanReduction([]float64{10}, []float64{12}); got >= 0 {
		t.Fatalf("regression not negative: %v", got)
	}
}

func TestTotalReduction(t *testing.T) {
	a := []float64{10, 0}
	b := []float64{5, 0}
	if got := TotalReduction(a, b); math.Abs(got-50) > 1e-9 {
		t.Fatalf("TotalReduction = %v", got)
	}
}

func TestIPCGainPct(t *testing.T) {
	if got := IPCGainPct([]float64{1, 1}, []float64{1.1, 1.1}); math.Abs(got-10) > 1e-9 {
		t.Fatalf("IPCGainPct = %v, want 10", got)
	}
}

func rs(cat string, ipc, mpki float64) Result {
	return Result{Workload: "w", Category: cat, IPC: ipc, MPKI: mpki}
}

func TestByCategory(t *testing.T) {
	base := []Result{rs("A", 1, 10), rs("A", 1, 20), rs("B", 1, 10)}
	exp := []Result{rs("A", 1, 5), rs("A", 1, 10), rs("B", 1, 10)}
	cats, vals, err := ByCategory(base, exp, func(r Result) float64 { return r.MPKI }, MeanReduction)
	if err != nil {
		t.Fatal(err)
	}
	if len(cats) != 2 || cats[0] != "A" || cats[1] != "B" {
		t.Fatalf("categories %v", cats)
	}
	if math.Abs(vals[0]-50) > 1e-9 || math.Abs(vals[1]) > 1e-9 {
		t.Fatalf("values %v", vals)
	}
}

func TestByCategoryErrorsOnMismatch(t *testing.T) {
	_, _, err := ByCategory([]Result{rs("A", 1, 1)}, nil, func(r Result) float64 { return r.IPC }, MeanReduction)
	if err == nil {
		t.Fatal("no error for mismatched result sets")
	}
	if !strings.Contains(err.Error(), "mismatched result sets") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if _, err := SCurve([]Result{rs("A", 1, 1)}, nil); err == nil {
		t.Fatal("SCurve: no error for mismatched result sets")
	}
}

func TestSCurveSorted(t *testing.T) {
	base := []Result{
		{Workload: "x", IPC: 1},
		{Workload: "y", IPC: 1},
		{Workload: "z", IPC: 1},
	}
	exp := []Result{
		{Workload: "x", IPC: 1.2},
		{Workload: "y", IPC: 0.9},
		{Workload: "z", IPC: 1.05},
	}
	pts, err := SCurve(base, exp)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Workload != "y" || pts[2].Workload != "x" {
		t.Fatalf("S-curve order wrong: %+v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].GainPct < pts[i-1].GainPct {
			t.Fatal("S-curve not ascending")
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long-name", "22")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[3], "beta-long-name") {
		t.Fatalf("table content wrong:\n%s", out)
	}
	// Columns must align: all lines equal width up to trailing spaces.
	if !strings.Contains(lines[1], "----") {
		t.Fatal("missing separator row")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(12.345) != "12.3%" {
		t.Fatalf("Pct = %q", Pct(12.345))
	}
	if F2(1.005) == "" {
		t.Fatal("F2 empty")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(50, 100, 10); got != " #####....." {
		t.Fatalf("Bar(50,100,10) = %q", got)
	}
	if got := Bar(-50, 100, 10); got[0] != '-' {
		t.Fatalf("negative bar %q", got)
	}
	if Bar(200, 100, 10) != " ##########" {
		t.Fatal("bar must clamp at full width")
	}
	if Bar(10, 0, 10) != "" || Bar(10, 100, 0) != "" {
		t.Fatal("degenerate inputs must render empty")
	}
}
