package repair

import (
	"localbp/internal/bpu/loop"
	"localbp/internal/obs"
)

// schemeBase holds the machinery shared by the single-BHT schemes: the loop
// predictor, the busy window during which the BHT can neither predict nor be
// updated/checkpointed (paper §2.5 issues a-b), and statistics.
type schemeBase struct {
	lp        loop.LocalPredictor
	st        Stats
	busyUntil int64

	// repairSeq is the Seq of the branch whose repair is in progress;
	// used to merge/restart overlapping repairs (paper §2.5 issue c).
	repairSeq  uint64
	repairLive bool

	// Observability (nil when disabled).
	tr      *obs.Tracer
	durHist *obs.Histogram
}

func (b *schemeBase) busy(cycle int64) bool { return cycle < b.busyUntil }

// BusyUntil implements BusyReporter: the cycle at which the current repair's
// busy window closes.
func (b *schemeBase) BusyUntil() int64 { return b.busyUntil }

// AttachObs implements ObsAttacher: registers the repair counters as a pull
// source named "repair", the per-repair busy-duration histogram, and the
// EvRepair trace stream.
func (b *schemeBase) AttachObs(reg *obs.Registry, tr *obs.Tracer) {
	if reg != nil {
		reg.AddSource("repair", b.st.EmitCounters)
		b.durHist = reg.Histogram("repair.busy", obs.RepairBuckets)
	}
	b.tr = tr
}

// beginBusy extends the busy window by dur cycles starting at cycle and
// accounts the added unavailability. pc is the mispredicting branch, used
// only for trace events.
func (b *schemeBase) beginBusy(pc uint64, cycle, dur int64) {
	end := cycle + dur
	start := cycle
	if b.busyUntil > start {
		start = b.busyUntil // overlapping repair: only the extension counts
	}
	if end > start {
		b.st.BusyCycles += uint64(end - start)
	}
	if end > b.busyUntil {
		b.busyUntil = end
	}
	if b.durHist != nil {
		b.durHist.Observe(dur)
	}
	if b.tr != nil {
		b.tr.Emit(obs.EvRepair, cycle, pc, dur)
	}
}

// FetchPredict implements Scheme.
func (b *schemeBase) FetchPredict(pc uint64, cycle int64) loop.Prediction {
	if b.busy(cycle) {
		return loop.Prediction{}
	}
	return b.lp.Predict(pc)
}

// specUpdate performs the fetch-time speculative BHT update common to all
// speculative schemes and records the pre-update state into ctx.
// It returns false when the BHT is busy and the update had to be skipped.
func (b *schemeBase) specUpdate(ctx *BranchCtx, cycle int64) bool {
	if b.busy(cycle) {
		// The update cannot be applied, so the tracked count goes stale;
		// the valid bit is reset and a later direction flip re-syncs the
		// entry (paper §2.5b / §3.2 valid-bit machinery).
		b.lp.Invalidate(ctx.PC)
		ctx.CkptSkipped = true
		b.st.CkptMisses++
		return false
	}
	st, had := b.lp.LookupState(ctx.PC)
	ctx.PreState, ctx.HadState = st, had
	ctx.Allocated = b.lp.SpecUpdate(ctx.PC, ctx.PredTaken)
	if ctx.Allocated {
		// Remember the allocated direction so that restoring the
		// pre-update (absent) state keeps the entry's direction sane.
		if pt := b.lp.PatternInfo(ctx.PC); pt.Valid {
			ctx.PreState.Dir = pt.Dir
		}
	}
	return true
}

// AllocCheck implements Scheme: single-stage schemes never defer.
func (b *schemeBase) AllocCheck(*BranchCtx, int64) (bool, bool) { return false, false }

// OnCorrectResolve implements Scheme: nothing to do by default.
func (b *schemeBase) OnCorrectResolve(*BranchCtx, int64) {}

// OnRetire implements Scheme: train the PT.
func (b *schemeBase) OnRetire(ctx *BranchCtx, finalMisp bool) {
	b.lp.Retire(ctx.PC, ctx.ActualTaken, finalMisp)
}

// OnSquash implements Scheme: nothing to release by default.
func (b *schemeBase) OnSquash(*BranchCtx) {}

// Stats implements Scheme.
func (b *schemeBase) Stats() *Stats { return &b.st }

// Predictor exposes the underlying local predictor (introspection).
func (b *schemeBase) Predictor() loop.LocalPredictor { return b.lp }

// penalize applies the wrong-override confidence penalty (see
// loop.PatternTable.Penalize) when the mispredicted branch used a loop
// override.
func (b *schemeBase) penalize(ctx *BranchCtx) {
	if ctx.UsedLoop {
		b.lp.PenalizeOverride(ctx.PC)
	}
}

// noteNeeded records a Figure 8 "entries needing repair" sample.
func (b *schemeBase) noteNeeded(n int) {
	b.st.NeededSum += uint64(n)
	b.st.NeededSamples++
	if n > b.st.NeededMax {
		b.st.NeededMax = n
	}
}

// None is the no-repair scheme: the BHT is updated speculatively and never
// recovered, demonstrating that an unrepaired local predictor forfeits its
// gains and can lose performance (paper §2.7, Figure 9).
type None struct {
	schemeBase
}

// NewNone builds the scheme around a fresh CBPw-Loop predictor with cfg.
func NewNone(cfg loop.Config) *None { return NewNoneFor(loop.New(cfg)) }

// NewNoneFor builds the scheme around any local predictor.
func NewNoneFor(lp loop.LocalPredictor) *None { return &None{schemeBase{lp: lp}} }

// Name implements Scheme.
func (s *None) Name() string { return "no-repair" }

// OnFetchBranch implements Scheme.
func (s *None) OnFetchBranch(ctx *BranchCtx, cycle int64) { s.specUpdate(ctx, cycle) }

// OnMispredict implements Scheme: the state stays corrupted.
func (s *None) OnMispredict(ctx *BranchCtx, cycle int64) {
	s.penalize(ctx)
	s.st.Unrepaired++
}

// StorageBits implements Scheme.
func (s *None) StorageBits() int { return s.lp.StorageBits() }

// RetireUpdate defers all BHT updates to instruction retirement: no
// speculative state exists, so no repair is needed, but the BHT view lags
// the front end by the full pipeline depth (paper §6.2, Figure 9). A per-PC
// in-flight counter (incremented at fetch, decremented at retire or squash)
// offsets the lag so the delayed count is usable at all; the scheme still
// loses whenever flushes make the offset wrong, and the paper notes the
// gains shrink as pipelines deepen.
type RetireUpdate struct {
	schemeBase
	inflight map[uint64]int
}

// NewRetireUpdate builds the scheme around a fresh CBPw-Loop predictor.
func NewRetireUpdate(cfg loop.Config) *RetireUpdate {
	return NewRetireUpdateFor(loop.New(cfg))
}

// NewRetireUpdateFor builds the scheme around any local predictor.
func NewRetireUpdateFor(lp loop.LocalPredictor) *RetireUpdate {
	return &RetireUpdate{
		schemeBase: schemeBase{lp: lp},
		inflight:   make(map[uint64]int),
	}
}

// Name implements Scheme.
func (s *RetireUpdate) Name() string { return "retire-update" }

// FetchPredict implements Scheme: offset the retire-lagged count by the
// branch's in-flight instances.
func (s *RetireUpdate) FetchPredict(pc uint64, cycle int64) loop.Prediction {
	n := s.inflight[pc]
	if n < 0 {
		n = 0
	}
	return s.lp.PredictWithOffset(pc, uint16(n))
}

// OnFetchBranch implements Scheme: no speculative BHT update; only the
// in-flight counter advances.
func (s *RetireUpdate) OnFetchBranch(ctx *BranchCtx, cycle int64) {
	s.inflight[ctx.PC]++
	ctx.InflightMark = true
}

// OnMispredict implements Scheme: nothing in the BHT itself needs repair;
// the pipeline's flush walk reclaims the in-flight marks of squashed
// instructions (OnSquash), the same bulk walk that frees their other
// resources.
func (s *RetireUpdate) OnMispredict(ctx *BranchCtx, cycle int64) {
	s.penalize(ctx)
}

// OnSquash implements Scheme: reclaim the squashed instruction's mark.
func (s *RetireUpdate) OnSquash(ctx *BranchCtx) { s.unmark(ctx) }

func (s *RetireUpdate) unmark(ctx *BranchCtx) {
	if !ctx.InflightMark {
		return
	}
	ctx.InflightMark = false
	switch n := s.inflight[ctx.PC]; {
	case n > 1:
		s.inflight[ctx.PC] = n - 1
	case n == 1:
		delete(s.inflight, ctx.PC)
	}
}

// OnRetire implements Scheme: the BHT advances with the architectural
// outcome, then the PT trains. A retiring exit re-anchors the in-flight
// counter: the run restarts, so any flush-leaked over-count clears.
func (s *RetireUpdate) OnRetire(ctx *BranchCtx, finalMisp bool) {
	s.unmark(ctx)
	s.lp.SpecUpdate(ctx.PC, ctx.ActualTaken)
	s.lp.Retire(ctx.PC, ctx.ActualTaken, finalMisp)
	if pt := s.lp.PatternInfo(ctx.PC); pt.Valid && ctx.ActualTaken != pt.Dir {
		delete(s.inflight, ctx.PC)
	}
}

// StorageBits implements Scheme: predictor plus a 4-bit in-flight counter
// per BHT entry.
func (s *RetireUpdate) StorageBits() int { return s.lp.StorageBits() + s.lp.Entries()*4 }

// Perfect is the oracle: unbounded checkpoint storage and zero-cycle repair.
// Every branch snapshots the whole BHT; a misprediction restores it
// instantly. It defines the 100% line all realistic schemes are normalized
// against, and its restore diff counts are the Figure 8 data.
type Perfect struct {
	schemeBase
	pool [][]loop.FullState
}

// NewPerfect builds the oracle around a fresh CBPw-Loop predictor.
func NewPerfect(cfg loop.Config) *Perfect { return NewPerfectFor(loop.New(cfg)) }

// NewPerfectFor builds the oracle around any local predictor.
func NewPerfectFor(lp loop.LocalPredictor) *Perfect {
	return &Perfect{schemeBase: schemeBase{lp: lp}}
}

// Name implements Scheme.
func (s *Perfect) Name() string { return "perfect" }

func (s *Perfect) getSnap() []loop.FullState {
	if n := len(s.pool); n > 0 {
		sn := s.pool[n-1]
		s.pool = s.pool[:n-1]
		return sn
	}
	return nil
}

// OnFetchBranch implements Scheme: snapshot everything.
func (s *Perfect) OnFetchBranch(ctx *BranchCtx, cycle int64) {
	s.specUpdate(ctx, cycle)
	// The snapshot is taken after this branch's own SpecUpdate; restore
	// rewinds the branch itself separately from ctx.PreState.
	ctx.Snap = s.lp.SnapshotBHT(s.getSnap())
	ctx.SnapValid = true
}

func (s *Perfect) release(ctx *BranchCtx) {
	if ctx.SnapValid && ctx.Snap != nil {
		s.pool = append(s.pool, ctx.Snap)
		ctx.Snap = nil
		ctx.SnapValid = false
	}
}

// OnMispredict implements Scheme: instant, complete restore.
func (s *Perfect) OnMispredict(ctx *BranchCtx, cycle int64) {
	s.penalize(ctx)
	if !ctx.SnapValid {
		s.st.Unrepaired++
		return
	}
	s.noteNeeded(s.lp.DiffBHT(ctx.Snap))
	n := s.lp.RestoreBHT(ctx.Snap)
	s.st.RepairWrites += uint64(n)
	// The snapshot holds post-SpecUpdate state for this branch; rewind to
	// the pre-update state, then apply the architectural outcome.
	if ctx.HadState || ctx.Allocated {
		s.lp.RestoreState(ctx.PC, ctx.PreState)
	}
	s.lp.ApplyOutcome(ctx.PC, ctx.ActualTaken)
	s.st.Repairs++
}

// OnRetire implements Scheme.
func (s *Perfect) OnRetire(ctx *BranchCtx, finalMisp bool) {
	s.release(ctx)
	s.schemeBase.OnRetire(ctx, finalMisp)
}

// OnSquash implements Scheme.
func (s *Perfect) OnSquash(ctx *BranchCtx) { s.release(ctx) }

// StorageBits implements Scheme: the oracle's storage is unbounded; report
// the predictor only (Table 3 lists it as NA).
func (s *Perfect) StorageBits() int { return s.lp.StorageBits() }
