package repair

import (
	"testing"

	"localbp/internal/bpu/loop"
)

// driver emulates the pipeline's call protocol on a Scheme for in-order
// sequences, and exposes manual control for out-of-order repair scenarios.
type driver struct {
	t     *testing.T
	s     Scheme
	seq   uint64
	cycle int64
}

func newDriver(t *testing.T, s Scheme) *driver { return &driver{t: t, s: s} }

// fetch runs the fetch-stage protocol for one branch with an explicit final
// prediction, returning its context (still "in flight").
func (d *driver) fetch(pc uint64, predicted, actual bool) *BranchCtx {
	d.seq++
	d.cycle++
	ctx := &BranchCtx{}
	ResetCtx(ctx)
	ctx.PC = pc
	ctx.Seq = d.seq
	ctx.PredTaken = predicted
	ctx.ActualTaken = actual
	ctx.OverrideAllowed = true
	d.s.OnFetchBranch(ctx, d.cycle)
	d.s.AllocCheck(ctx, d.cycle)
	return ctx
}

// resolveRetire completes a branch in order. A misprediction advances time
// past the repair window, as the pipeline's flush + refill shadow would.
func (d *driver) resolveRetire(ctx *BranchCtx) {
	d.cycle++
	misp := ctx.PredTaken != ctx.ActualTaken
	if misp {
		d.s.OnMispredict(ctx, d.cycle)
		d.cycle += 64
	} else {
		d.s.OnCorrectResolve(ctx, d.cycle)
	}
	d.s.OnRetire(ctx, misp)
}

// step runs one branch fully in order, using the scheme's own prediction
// when available (otherwise predicting the given fallback direction).
func (d *driver) step(pc uint64, actual, fallback bool) {
	pred := fallback
	if p := d.s.FetchPredict(pc, d.cycle); p.Valid {
		pred = p.Taken
	}
	ctx := d.fetch(pc, pred, actual)
	d.resolveRetire(ctx)
}

// trainLoop teaches the scheme a TTT..N loop at pc (fallback mispredicts
// exits, as a global predictor without the local pattern would).
func (d *driver) trainLoop(pc uint64, period, visits int) {
	for v := 0; v < visits; v++ {
		for i := 0; i < period; i++ {
			d.step(pc, i < period-1, true)
		}
	}
}

// lpOf extracts the primary local predictor from single-BHT schemes.
func lpOf(t *testing.T, s Scheme) loop.LocalPredictor {
	t.Helper()
	p, ok := s.(interface{ Predictor() loop.LocalPredictor })
	if !ok {
		t.Fatalf("%T does not expose its predictor", s)
	}
	return p.Predictor()
}

// corruptionScenario trains two loop PCs, then emulates: branch A (pcA,
// mid-run) is fetched with a wrong prediction; younger speculative updates
// (same PC and pcB, as a wrong path would produce) corrupt the BHT; A then
// resolves mispredicted. It returns the state both PCs should be restored
// to (pcA with its outcome applied).
func corruptionScenario(t *testing.T, d *driver) (pcA, pcB uint64, wantA, wantB loop.State) {
	pcA, pcB = 0x400000, 0x400400
	d.trainLoop(pcA, 10, 12)
	d.trainLoop(pcB, 7, 12)

	lp := lpOf(t, d.s)
	preA, okA := lp.LookupState(pcA)
	preB, okB := lp.LookupState(pcB)
	if !okA || !okB {
		t.Fatal("training left no BHT state")
	}

	// Branch A: actually taken (mid-run) but predicted not-taken.
	ctxA := d.fetch(pcA, false, true)
	// Younger wrong-path speculation corrupts both PCs.
	young := []*BranchCtx{
		d.fetch(pcA, true, true),
		d.fetch(pcB, true, true),
		d.fetch(pcB, true, true),
		d.fetch(pcA, true, true),
	}
	// A resolves mispredicted: repair, then squash the youngsters.
	d.cycle++
	d.s.OnMispredict(ctxA, d.cycle)
	for _, c := range young {
		d.s.OnSquash(c)
	}
	d.s.OnRetire(ctxA, true)

	wantA = preA
	// A's own update is rewound and its architectural outcome (taken,
	// matching the dominant direction) applied.
	wantA.Count++
	wantB = preB
	return pcA, pcB, wantA, wantB
}

func checkRestored(t *testing.T, s Scheme, pcA, pcB uint64, wantA, wantB loop.State) {
	t.Helper()
	lp := lpOf(t, s)
	gotA, _ := lp.LookupState(pcA)
	gotB, _ := lp.LookupState(pcB)
	if gotA != wantA {
		t.Errorf("pcA state %+v, want %+v", gotA, wantA)
	}
	if gotB != wantB {
		t.Errorf("pcB state %+v, want %+v", gotB, wantB)
	}
}

func TestPerfectRestoresExactly(t *testing.T) {
	d := newDriver(t, NewPerfect(loop.Loop128()))
	pcA, pcB, wantA, wantB := corruptionScenario(t, d)
	checkRestored(t, d.s, pcA, pcB, wantA, wantB)
	if st := d.s.Stats(); st.Repairs == 0 {
		t.Fatal("no repair recorded")
	}
	if d.s.Stats().BusyCycles != 0 {
		t.Fatal("perfect repair must be instantaneous")
	}
}

func TestForwardWalkRestoresLikePerfect(t *testing.T) {
	d := newDriver(t, NewForwardWalk(loop.Loop128(), 64, Ports{CkptRead: 64, BHTWrite: 64}, false))
	pcA, pcB, wantA, wantB := corruptionScenario(t, d)
	checkRestored(t, d.s, pcA, pcB, wantA, wantB)
}

func TestBackwardWalkRestoresLikePerfect(t *testing.T) {
	d := newDriver(t, NewBackwardWalk(loop.Loop128(), 64, Ports{CkptRead: 64, BHTWrite: 64}))
	pcA, pcB, wantA, wantB := corruptionScenario(t, d)
	checkRestored(t, d.s, pcA, pcB, wantA, wantB)
}

func TestSnapshotRestoresLikePerfect(t *testing.T) {
	d := newDriver(t, NewSnapshot(loop.Loop128(), 64, Ports{CkptRead: 64, BHTWrite: 64}))
	pcA, pcB, wantA, wantB := corruptionScenario(t, d)
	checkRestored(t, d.s, pcA, pcB, wantA, wantB)
}

func TestLimitedPCRestoresCarriedPCs(t *testing.T) {
	// With M=8 both hot PCs fit in the carried set, so the scenario
	// restores exactly like perfect repair.
	d := newDriver(t, NewLimitedPC(loop.Loop128(), 8, 4, false))
	pcA, pcB, wantA, wantB := corruptionScenario(t, d)
	checkRestored(t, d.s, pcA, pcB, wantA, wantB)
}

func TestForwardWritesFewerThanBackward(t *testing.T) {
	run := func(s Scheme) *Stats {
		d := newDriver(t, s)
		corruptionScenario(t, d)
		return s.Stats()
	}
	fwd := run(NewForwardWalk(loop.Loop128(), 64, Ports{CkptRead: 64, BHTWrite: 64}, false))
	bwd := run(NewBackwardWalk(loop.Loop128(), 64, Ports{CkptRead: 64, BHTWrite: 64}))
	if fwd.RepairWrites >= bwd.RepairWrites {
		t.Fatalf("forward wrote %d, backward %d; forward must write each PC once",
			fwd.RepairWrites, bwd.RepairWrites)
	}
	// The scenario updates pcA twice and pcB twice after the branch:
	// backward writes all 4 entries + A's own; forward writes one per PC.
	if bwd.RepairWrites < fwd.RepairWrites+2 {
		t.Fatalf("expected a clear write gap: fwd=%d bwd=%d", fwd.RepairWrites, bwd.RepairWrites)
	}
}

func TestWalkBusyWindowAndPortScaling(t *testing.T) {
	mk := func(ports Ports) *Stats {
		d := newDriver(t, NewBackwardWalk(loop.Loop128(), 64, ports))
		corruptionScenario(t, d)
		return d.s.Stats()
	}
	fast := mk(Ports{CkptRead: 64, BHTWrite: 64})
	slow := mk(Ports{CkptRead: 1, BHTWrite: 1})
	if slow.BusyCycles <= fast.BusyCycles {
		t.Fatalf("1-port walk (%d busy cycles) should be slower than 64-port (%d)",
			slow.BusyCycles, fast.BusyCycles)
	}
}

func TestBackwardWalkBlocksPredictionsWhileBusy(t *testing.T) {
	d := newDriver(t, NewBackwardWalk(loop.Loop128(), 64, Ports{CkptRead: 1, BHTWrite: 1}))
	pcA, _, _, _ := corruptionScenario(t, d)
	// Immediately after the repair started, the BHT must refuse service.
	if p := d.s.FetchPredict(pcA, d.cycle); p.Valid {
		t.Fatal("backward walk served a prediction during its busy window")
	}
}

func TestForwardWalkServesRepairedPCsWhileBusy(t *testing.T) {
	d := newDriver(t, NewForwardWalk(loop.Loop128(), 64, Ports{CkptRead: 1, BHTWrite: 1}, false))
	pcA, _, _, _ := corruptionScenario(t, d)
	if d.s.Stats().BusyCycles == 0 {
		t.Fatal("scenario produced no busy window")
	}
	// pcA was repaired first (walk starts at the mispredicting branch), so
	// its prediction is available even though the walk is still busy.
	if p := d.s.FetchPredict(pcA, d.cycle); !p.Valid {
		t.Fatal("forward walk refused a prediction for an already-repaired PC")
	}
	// An unrepaired PC (never in the walk) is still blocked.
	if p := d.s.FetchPredict(0x999000, d.cycle); p.Valid {
		t.Fatal("unrepaired PC served during the walk")
	}
}

func TestCoalescingReducesOBQPressure(t *testing.T) {
	run := func(coalesce bool) uint64 {
		s := NewForwardWalk(loop.Loop128(), 4, Ports{CkptRead: 4, BHTWrite: 2}, coalesce)
		d := newDriver(t, s)
		d.trainLoop(0x400000, 6, 12)
		// Many consecutive same-PC fetches with no retirement: only
		// coalescing keeps the 4-entry OBQ from overflowing.
		var ctxs []*BranchCtx
		for i := 0; i < 8; i++ {
			ctxs = append(ctxs, d.fetch(0x400000, true, true))
		}
		for _, c := range ctxs {
			d.s.OnRetire(c, false)
		}
		_, _, full := s.q.Stats()
		return full
	}
	if plain, merged := run(false), run(true); merged >= plain {
		t.Fatalf("coalescing did not relieve pressure: full(plain)=%d full(coalesced)=%d", plain, merged)
	}
}

func TestSnapshotSQFullLeavesUnprotected(t *testing.T) {
	s := NewSnapshot(loop.Loop128(), 2, Ports{CkptRead: 8, BHTWrite: 8})
	d := newDriver(t, s)
	d.trainLoop(0x400000, 6, 10)
	// Three outstanding branches against a 2-entry SQ.
	c1 := d.fetch(0x400000, true, true)
	c2 := d.fetch(0x400000, true, true)
	c3 := d.fetch(0x400000, false, true) // will mispredict, but unprotected
	if c3.OBQID >= 0 {
		t.Fatal("third branch should have been rejected by the full SQ")
	}
	d.cycle++
	d.s.OnMispredict(c3, d.cycle)
	if s.Stats().Unrepaired != 1 {
		t.Fatalf("unrepaired = %d, want 1", s.Stats().Unrepaired)
	}
	d.s.OnRetire(c1, false)
	d.s.OnRetire(c2, false)
}

func TestSnapshotFreesAtCorrectResolve(t *testing.T) {
	s := NewSnapshot(loop.Loop128(), 2, Ports{CkptRead: 8, BHTWrite: 8})
	d := newDriver(t, s)
	d.trainLoop(0x400000, 6, 10)
	c1 := d.fetch(0x400000, true, true)
	c2 := d.fetch(0x400000, true, true)
	d.s.OnCorrectResolve(c1, d.cycle) // frees its snapshot early
	c3 := d.fetch(0x400000, true, true)
	if c3.OBQID < 0 {
		t.Fatal("SQ slot not reusable after a correct resolve")
	}
	for _, c := range []*BranchCtx{c1, c2, c3} {
		d.s.OnRetire(c, false)
	}
}

func TestNoRepairLeavesCorruption(t *testing.T) {
	d := newDriver(t, NewNone(loop.Loop128()))
	pcA, _, wantA, _ := corruptionScenario(t, d)
	lp := lpOf(t, d.s)
	if got, _ := lp.LookupState(pcA); got == wantA {
		t.Fatal("no-repair scheme somehow restored the state")
	}
	if d.s.Stats().Unrepaired == 0 {
		t.Fatal("unrepaired counter did not advance")
	}
}

func TestRetireUpdateOffsetPrediction(t *testing.T) {
	s := NewRetireUpdate(loop.Loop128())
	d := newDriver(t, s)
	d.trainLoop(0x400000, 10, 14)
	// With nothing in flight the prediction tracks the retired count.
	p0 := s.FetchPredict(0x400000, d.cycle)
	if !p0.Valid {
		t.Fatal("trained retire-update predictor silent")
	}
	// Put instances in flight without retiring: the offset must advance
	// the prediction toward the exit.
	var ctxs []*BranchCtx
	sawExit := false
	for i := 0; i < 10; i++ {
		p := s.FetchPredict(0x400000, d.cycle)
		if p.Valid && !p.Taken {
			sawExit = true
		}
		ctxs = append(ctxs, d.fetch(0x400000, true, true))
	}
	if !sawExit {
		t.Fatal("in-flight offset never advanced the count to the exit")
	}
	for _, c := range ctxs {
		d.s.OnRetire(c, false)
	}
	if len(s.inflight) != 0 {
		t.Fatalf("in-flight counters leaked: %v", s.inflight)
	}
}

func TestRetireUpdateSquashReclaims(t *testing.T) {
	s := NewRetireUpdate(loop.Loop128())
	d := newDriver(t, s)
	d.trainLoop(0x400000, 10, 14)
	c := d.fetch(0x400000, true, true)
	if s.inflight[0x400000] != 1 {
		t.Fatalf("inflight = %d after fetch", s.inflight[0x400000])
	}
	d.s.OnSquash(c)
	if s.inflight[0x400000] != 0 {
		t.Fatalf("inflight = %d after squash", s.inflight[0x400000])
	}
}

func TestLimitedPCInvalidateVariant(t *testing.T) {
	d := newDriver(t, NewLimitedPC(loop.Loop128(), 2, 2, true))
	pcA, pcB, _, _ := corruptionScenario(t, d)
	lp := lpOf(t, d.s)
	// pcA repaired (self); pcB may have been invalidated if not carried.
	if _, ok := lp.LookupState(pcA); !ok {
		t.Fatal("self PC lost")
	}
	_ = pcB // either repaired (carried) or invalid; both acceptable
	if d.s.Stats().Repairs == 0 {
		t.Fatal("no repair recorded")
	}
}

func TestLimitedPCDeterministicLatency(t *testing.T) {
	s := NewLimitedPC(loop.Loop128(), 4, 2, false)
	d := newDriver(t, s)
	corruptionScenario(t, d)
	st := s.Stats()
	if st.Repairs == 0 {
		t.Fatal("no repairs")
	}
	// ceil(writes/ports) with at most M writes through 2 ports: the busy
	// time per repair is bounded by ceil(4/2) = 2 cycles.
	if st.BusyCycles > st.Repairs*2 {
		t.Fatalf("busy %d cycles over %d repairs exceeds the deterministic bound",
			st.BusyCycles, st.Repairs)
	}
}

func TestPortsCycles(t *testing.T) {
	cases := []struct {
		p    Ports
		r, w int
		want int64
	}{
		{Ports{4, 2}, 8, 4, 2},
		{Ports{4, 2}, 4, 4, 2},
		{Ports{4, 4}, 4, 4, 1},
		{Ports{1, 1}, 5, 5, 5},
		{Ports{4, 2}, 0, 0, 0},
		{Ports{8, 8}, 1, 1, 1},
	}
	for _, c := range cases {
		if got := c.p.cycles(c.r, c.w); got != c.want {
			t.Errorf("cycles(%+v, r=%d w=%d) = %d, want %d", c.p, c.r, c.w, got, c.want)
		}
	}
}

func TestCeilDiv(t *testing.T) {
	if ceilDiv(5, 2) != 3 || ceilDiv(4, 2) != 2 || ceilDiv(0, 2) != 0 {
		t.Fatal("ceilDiv arithmetic wrong")
	}
	if ceilDiv(5, 0) < 1000 {
		t.Fatal("zero ports must behave as effectively infinite latency")
	}
	if ceilDiv(0, 0) != 0 {
		t.Fatal("0/0 should be free")
	}
}

func TestResetCtx(t *testing.T) {
	ctx := &BranchCtx{PC: 5, OBQID: 9, Limited: []PCState{{PC: 1}}, Snap: make([]loop.FullState, 3)}
	ResetCtx(ctx)
	if ctx.PC != 0 || ctx.OBQID != -1 || ctx.DeferOBQID != -1 {
		t.Fatalf("reset left state: %+v", ctx)
	}
	if len(ctx.Limited) != 0 || len(ctx.Snap) != 0 {
		t.Fatal("slices not truncated")
	}
	if cap(ctx.Snap) != 3 {
		t.Fatal("slice capacity not preserved")
	}
}

func TestSchemeNames(t *testing.T) {
	c := loop.Loop128()
	schemes := []Scheme{
		NewPerfect(c), NewNone(c), NewRetireUpdate(c),
		NewBackwardWalk(c, 32, Ports{4, 4}),
		NewForwardWalk(c, 32, Ports{4, 2}, true),
		NewSnapshot(c, 32, Ports{8, 8}),
		NewLimitedPC(c, 2, 2, false),
		NewMultiStage(c, 32, true),
		NewMultiStage(c, 32, false),
	}
	seen := map[string]bool{}
	for _, s := range schemes {
		n := s.Name()
		if n == "" || seen[n] {
			t.Fatalf("bad or duplicate scheme name %q", n)
		}
		seen[n] = true
		if s.StorageBits() <= 0 {
			t.Fatalf("%s reports no storage", n)
		}
	}
}

func TestStorageOrdering(t *testing.T) {
	c := loop.Loop128()
	none := NewNone(c).StorageBits()
	fwd := NewForwardWalk(c, 32, Ports{4, 2}, false).StorageBits()
	snap := NewSnapshot(c, 32, Ports{8, 8}).StorageBits()
	if fwd <= none {
		t.Fatal("forward walk must cost more than bare predictor")
	}
	if snap <= fwd {
		t.Fatal("snapshot queue must be the most expensive (Table 3)")
	}
}

func TestOverridePenaltyOnWrongOverride(t *testing.T) {
	d := newDriver(t, NewPerfect(loop.Loop128()))
	pc := uint64(0x400000)
	d.trainLoop(pc, 10, 12)
	lp := lpOf(t, d.s)
	before := lp.PatternInfo(pc).Conf
	ctx := d.fetch(pc, false, true)
	ctx.UsedLoop = true // the local predictor drove this wrong prediction
	d.cycle++
	d.s.OnMispredict(ctx, d.cycle)
	d.s.OnRetire(ctx, true)
	if after := lp.PatternInfo(pc).Conf; after >= before {
		t.Fatalf("wrong override not penalized: conf %d -> %d", before, after)
	}
}
