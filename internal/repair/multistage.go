package repair

import (
	"fmt"

	"localbp/internal/bpu/loop"
	"localbp/internal/obq"
	"localbp/internal/obs"
)

// MultiStage is contribution 2 (paper §3.2): two-stage prediction with a
// split BHT. BHT-TAGE sits in the branch prediction stage and overrides
// immediately; it is speculatively updated but never checkpointed. BHT-Defer
// sits at the allocation queue: its entries are checkpointed in an OBQ and
// forward-walk repaired. When BHT-Defer disagrees with the in-flight
// prediction, the pipeline is re-steered early (a cheap front-end flush).
//
// On a misprediction, BHT-Defer repairs from the OBQ, then BHT-TAGE repairs
// from BHT-Defer's repaired entries using its ordinary prediction ports —
// no additional repair ports (Table 3 lists this design as 4/0). During the
// two-stage repair window BHT-TAGE gives no predictions, and instructions
// that enter the pipeline have their BHT-TAGE valid bits reset; a direction
// flip later re-validates them.
type MultiStage struct {
	st Stats

	bhtTage  *loop.Predictor
	bhtDefer *loop.Predictor
	sharedPT bool
	q        *obq.Queue

	predictPorts int
	busyTage     int64
	busyDefer    int64

	// repaired collects (PC, state) pairs from the BHT-Defer walk for the
	// second-stage copy into BHT-TAGE; reused across repairs.
	repaired []PCState

	// Observability (nil when disabled).
	tr      *obs.Tracer
	durHist *obs.Histogram
}

// NewMultiStage builds the split-BHT scheme. cfg describes the *combined*
// capacity (e.g. Loop128): each stage receives half the entries (paper
// §3.2.1). sharedPT keeps one full-size PT accessed by both stages; split
// gives each stage its own half-size PT.
func NewMultiStage(cfg loop.Config, obqEntries int, sharedPT bool) *MultiStage {
	half := cfg
	half.Entries = cfg.Entries / 2
	s := &MultiStage{sharedPT: sharedPT, predictPorts: 4}
	if sharedPT {
		ptEntries := cfg.PTEntries
		if ptEntries == 0 {
			ptEntries = cfg.Entries
		}
		pt := loop.NewPatternTable(ptEntries, cfg.Ways, cfg.ConfThresh, cfg.CounterMax)
		s.bhtTage = loop.NewWithPT(half, pt)
		s.bhtDefer = loop.NewWithPT(half, pt)
	} else {
		half.PTEntries = half.Entries
		s.bhtTage = loop.New(half)
		s.bhtDefer = loop.New(half)
	}
	s.q = obq.New(obqEntries, false)
	return s
}

// Name implements Scheme.
func (s *MultiStage) Name() string {
	if s.sharedPT {
		return fmt.Sprintf("multistage-split-bht-shared-pt-%d", s.q.Cap())
	}
	return fmt.Sprintf("multistage-split-bht-split-pt-%d", s.q.Cap())
}

// OBQ exposes the BHT-Defer history file (read-only introspection for the
// integrity auditor's structural scans).
func (s *MultiStage) OBQ() *obq.Queue { return s.q }

// BusyUntil implements BusyReporter: the later of the two stages' repair
// windows.
func (s *MultiStage) BusyUntil() int64 {
	if s.busyTage > s.busyDefer {
		return s.busyTage
	}
	return s.busyDefer
}

// AttachObs implements ObsAttacher.
func (s *MultiStage) AttachObs(reg *obs.Registry, tr *obs.Tracer) {
	if reg != nil {
		reg.AddSource("repair", s.st.EmitCounters)
		s.durHist = reg.Histogram("repair.busy", obs.RepairBuckets)
	}
	s.tr = tr
	s.q.AttachObs(reg, tr)
}

// FetchPredict implements Scheme: BHT-TAGE answers at the prediction stage
// unless its repair window is open.
func (s *MultiStage) FetchPredict(pc uint64, cycle int64) loop.Prediction {
	if cycle < s.busyTage {
		return loop.Prediction{}
	}
	return s.bhtTage.Predict(pc)
}

// OnFetchBranch implements Scheme: speculative BHT-TAGE update only; no
// checkpointing at this stage.
func (s *MultiStage) OnFetchBranch(ctx *BranchCtx, cycle int64) {
	if cycle < s.busyTage {
		// Instructions entering during the repair window get their
		// BHT-TAGE valid bits reset to avoid incorrect overrides.
		s.bhtTage.Invalidate(ctx.PC)
		return
	}
	st, had := s.bhtTage.LookupState(ctx.PC)
	ctx.PreState, ctx.HadState = st, had
	s.bhtTage.SpecUpdate(ctx.PC, ctx.PredTaken)
}

// AllocCheck implements Scheme: BHT-Defer predicts, checkpoints and updates
// at the allocation stage, and may request an early resteer (override).
func (s *MultiStage) AllocCheck(ctx *BranchCtx, cycle int64) (bool, bool) {
	ctx.DeferSeen = true
	if cycle < s.busyDefer {
		// Mid-repair arrival (rare: the fetch-to-alloc distance usually
		// covers the walk): no prediction, state marked invalid.
		ctx.DeferSkip = true
		s.bhtDefer.Invalidate(ctx.PC)
		s.st.CkptMisses++
		return false, false
	}
	pred := s.bhtDefer.Predict(ctx.PC)
	st, had := s.bhtDefer.LookupState(ctx.PC)
	ctx.DeferPre, ctx.DeferHad = st, had

	// An early resteer pays a real front-end penalty, so the deferred
	// override fires only at maximum confidence (paper §3.2: "requires
	// CBPw-Loop's prediction to be even more accurate").
	override := pred.Valid && pred.Taken != ctx.PredTaken && !ctx.WrongPath &&
		ctx.OverrideAllowed && s.bhtDefer.PT().Info(ctx.PC).Conf >= 7
	dir := ctx.PredTaken
	if override {
		dir = pred.Taken
		ctx.UsedLoop = true
		ctx.LoopValid, ctx.LoopTaken = true, pred.Taken
		s.st.EarlyResteers++
	} else if pred.Valid {
		ctx.LoopValid, ctx.LoopTaken = true, pred.Taken
	}

	allocated := s.bhtDefer.SpecUpdate(ctx.PC, dir)
	if ctx.DeferHad || allocated {
		if allocated {
			if pt := s.bhtDefer.PT().Info(ctx.PC); pt.Valid {
				ctx.DeferPre.Dir = pt.Dir
			}
		}
		ctx.DeferOBQID = s.q.AllocAt(ctx.PC, ctx.Seq, ctx.DeferPre, cycle)
		if ctx.DeferOBQID < 0 {
			s.st.CkptMisses++
		}
	}
	return override, dir
}

// OnMispredict implements Scheme: forward walk into BHT-Defer, then copy the
// repaired entries into BHT-TAGE through the prediction ports.
func (s *MultiStage) OnMispredict(ctx *BranchCtx, cycle int64) {
	if ctx.UsedLoop {
		s.bhtDefer.PT().Penalize(ctx.PC)
		if !s.sharedPT {
			s.bhtTage.PT().Penalize(ctx.PC)
		}
	}
	if cycle < s.busyDefer {
		s.st.Restarts++
	}
	if ctx.DeferOBQID < 0 {
		s.q.SquashYoungerSeq(ctx.Seq)
		s.st.Unrepaired++
		return
	}
	s.bhtDefer.RepairStart()
	s.repaired = s.repaired[:0]
	reads, writes := 0, 0
	s.q.Walk(ctx.DeferOBQID, func(id int64, e *obq.Entry) {
		reads++
		if !s.bhtDefer.RepairBitSet(e.PC) {
			return
		}
		s.bhtDefer.RestoreState(e.PC, e.State)
		s.repaired = append(s.repaired, PCState{PC: e.PC, St: e.State})
		writes++
	})
	s.bhtDefer.ApplyOutcome(ctx.PC, ctx.ActualTaken)
	s.q.SquashAfter(ctx.DeferOBQID)

	// Stage 1: BHT-Defer repair through its own (prediction) ports.
	deferCycles := Ports{CkptRead: s.predictPorts, BHTWrite: s.predictPorts}.cycles(reads, writes)
	s.accountBusy(&s.busyDefer, cycle, deferCycles)

	// Stage 2: BHT-TAGE repaired from BHT-Defer's repaired entries; the
	// copy reuses the prediction ports, so BHT-TAGE just stops predicting.
	copies := 0
	for _, ps := range s.repaired {
		st := ps.St
		if ps.PC == ctx.PC {
			if cur, ok := s.bhtDefer.LookupState(ctx.PC); ok {
				st = cur // include the applied outcome
			}
		}
		s.bhtTage.RestoreState(ps.PC, st)
		copies++
	}
	tageCycles := Ports{CkptRead: s.predictPorts, BHTWrite: s.predictPorts}.cycles(copies, copies)
	s.accountBusy(&s.busyTage, cycle+deferCycles, tageCycles)

	s.st.Repairs++
	s.st.RepairReads += uint64(reads)
	s.st.RepairWrites += uint64(writes + copies)
	if s.durHist != nil {
		s.durHist.Observe(deferCycles + tageCycles)
	}
	if s.tr != nil {
		s.tr.Emit(obs.EvRepair, cycle, ctx.PC, deferCycles+tageCycles)
	}
}

func (s *MultiStage) accountBusy(until *int64, cycle, dur int64) {
	end := cycle + dur
	start := cycle
	if *until > start {
		start = *until
	}
	if end > start {
		s.st.BusyCycles += uint64(end - start)
	}
	if end > *until {
		*until = end
	}
}

// OnCorrectResolve implements Scheme.
func (s *MultiStage) OnCorrectResolve(*BranchCtx, int64) {}

// OnRetire implements Scheme: train the PT(s) with the architectural
// outcome; with a shared PT one update suffices.
func (s *MultiStage) OnRetire(ctx *BranchCtx, finalMisp bool) {
	if ctx.DeferOBQID >= 0 {
		s.q.Release(ctx.DeferOBQID)
	}
	s.bhtDefer.Retire(ctx.PC, ctx.ActualTaken, finalMisp)
	if s.sharedPT {
		s.bhtTage.RetireSync(ctx.PC, ctx.ActualTaken, finalMisp)
	} else {
		s.bhtTage.Retire(ctx.PC, ctx.ActualTaken, finalMisp)
	}
}

// OnSquash implements Scheme.
func (s *MultiStage) OnSquash(ctx *BranchCtx) {
	if ctx.DeferOBQID >= 0 {
		s.q.Release(ctx.DeferOBQID)
	}
}

// Stats implements Scheme.
func (s *MultiStage) Stats() *Stats { return &s.st }

// StorageBits implements Scheme.
func (s *MultiStage) StorageBits() int {
	bits := s.bhtTage.BHTStorageBits() + s.bhtDefer.BHTStorageBits()
	bits += s.bhtTage.PT().StorageBits()
	if !s.sharedPT {
		bits += s.bhtDefer.PT().StorageBits()
	}
	bits += s.q.Cap()*76 + 224*16
	return bits
}
