package repair

import (
	"testing"

	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/yehpatt"
)

// ypScenario trains a generic (bit-pattern) local predictor through the
// scheme, corrupts its speculative histories with younger updates, and
// triggers a repair — the pattern-state analogue of corruptionScenario.
func ypScenario(t *testing.T, d *driver) (pcA, pcB uint64, wantA, wantB loop.State) {
	t.Helper()
	pcA, pcB = 0x400000, 0x400400
	// Short repeating patterns that an 11-bit local history captures.
	for v := 0; v < 300; v++ {
		d.step(pcA, v%3 != 2, true)
		d.step(pcB, v%4 != 3, true)
	}
	lp := lpOf(t, d.s)
	preA, okA := lp.LookupState(pcA)
	preB, okB := lp.LookupState(pcB)
	if !okA || !okB {
		t.Fatal("training left no state")
	}

	ctxA := d.fetch(pcA, false, true) // mispredicted mid-pattern
	young := []*BranchCtx{
		d.fetch(pcB, true, true),
		d.fetch(pcA, true, true),
		d.fetch(pcB, false, true),
	}
	d.cycle++
	d.s.OnMispredict(ctxA, d.cycle)
	for _, c := range young {
		d.s.OnSquash(c)
	}
	d.s.OnRetire(ctxA, true)

	// pcA: its own wrong shift rewound, then the actual (taken) outcome
	// shifted in; pcB: restored exactly.
	wantA = preA
	wantA.Count = (preA.Count<<1 | 1) & 0x7ff
	wantB = preB
	return pcA, pcB, wantA, wantB
}

func TestForwardWalkRepairsGenericPredictor(t *testing.T) {
	d := newDriver(t, NewForwardWalkFor(yehpatt.New(yehpatt.Default128()),
		64, Ports{CkptRead: 64, BHTWrite: 64}, false))
	pcA, pcB, wantA, wantB := ypScenario(t, d)
	checkRestored(t, d.s, pcA, pcB, wantA, wantB)
}

func TestBackwardWalkRepairsGenericPredictor(t *testing.T) {
	d := newDriver(t, NewBackwardWalkFor(yehpatt.New(yehpatt.Default128()),
		64, Ports{CkptRead: 64, BHTWrite: 64}))
	pcA, pcB, wantA, wantB := ypScenario(t, d)
	checkRestored(t, d.s, pcA, pcB, wantA, wantB)
}

func TestPerfectRepairsGenericPredictor(t *testing.T) {
	d := newDriver(t, NewPerfectFor(yehpatt.New(yehpatt.Default128())))
	pcA, pcB, wantA, wantB := ypScenario(t, d)
	checkRestored(t, d.s, pcA, pcB, wantA, wantB)
}

func TestSnapshotRepairsGenericPredictor(t *testing.T) {
	d := newDriver(t, NewSnapshotFor(yehpatt.New(yehpatt.Default128()),
		64, Ports{CkptRead: 64, BHTWrite: 64}))
	pcA, pcB, wantA, wantB := ypScenario(t, d)
	checkRestored(t, d.s, pcA, pcB, wantA, wantB)
}

func TestLimitedPCRepairsGenericPredictor(t *testing.T) {
	d := newDriver(t, NewLimitedPCFor(yehpatt.New(yehpatt.Default128()), 8, 4, false))
	pcA, pcB, wantA, wantB := ypScenario(t, d)
	checkRestored(t, d.s, pcA, pcB, wantA, wantB)
}

func TestGenericPredictorGainsUnderRepair(t *testing.T) {
	// End-to-end sanity: with repair the generic predictor predicts its
	// trained pattern despite interleaved mispredictions of a noise PC.
	d := newDriver(t, NewForwardWalkFor(yehpatt.New(yehpatt.Default128()),
		64, Ports{CkptRead: 8, BHTWrite: 8}, false))
	pat := func(v int) bool { return v%5 != 4 }
	for v := 0; v < 400; v++ {
		d.step(0x400000, pat(v), true)
		if v%7 == 0 {
			d.step(0x500000, v%14 == 0, true) // noisy flush source
		}
	}
	correct, pred := 0, 0
	for v := 400; v < 480; v++ {
		p := d.s.FetchPredict(0x400000, d.cycle)
		if p.Valid {
			pred++
			if p.Taken == pat(v) {
				correct++
			}
		}
		d.step(0x400000, pat(v), true)
	}
	if pred == 0 {
		t.Fatal("generic predictor silent after training")
	}
	if float64(correct)/float64(pred) < 0.9 {
		t.Fatalf("accuracy %d/%d under repair", correct, pred)
	}
}
