package repair

import (
	"fmt"

	"localbp/internal/bpu/loop"
)

// Snapshot is the prior-art snapshot-queue (SQ) repair (paper §2.6): every
// predicted branch captures a full copy of the BHT in a bounded queue of
// snapshots; a misprediction restores from its snapshot. Simple, but the
// storage cost is high (Table 3 charges it 10+KB) and restoring many entries
// through limited ports takes multiple cycles.
type Snapshot struct {
	schemeBase
	entries int
	ports   Ports

	ring []snapSlot
	head int64 // oldest live slot (absolute)
	tail int64 // one past youngest (absolute)
	pool [][]loop.FullState
}

type snapSlot struct {
	seq  uint64
	snap []loop.FullState
	live bool
}

// NewSnapshot builds the scheme with an SQ of `entries` snapshots.
func NewSnapshot(cfg loop.Config, entries int, ports Ports) *Snapshot {
	return NewSnapshotFor(loop.New(cfg), entries, ports)
}

// NewSnapshotFor builds the scheme around any local predictor.
func NewSnapshotFor(lp loop.LocalPredictor, entries int, ports Ports) *Snapshot {
	s := &Snapshot{entries: entries, ports: ports}
	s.lp = lp
	s.ring = make([]snapSlot, entries)
	return s
}

// Name implements Scheme.
func (s *Snapshot) Name() string {
	return fmt.Sprintf("snapshot-%d-%d-%d", s.entries, s.ports.CkptRead, s.ports.BHTWrite)
}

func (s *Snapshot) slot(id int64) *snapSlot { return &s.ring[id%int64(s.entries)] }

func (s *Snapshot) getBuf() []loop.FullState {
	if n := len(s.pool); n > 0 {
		b := s.pool[n-1]
		s.pool = s.pool[:n-1]
		return b
	}
	return nil
}

// OnFetchBranch implements Scheme: snapshot the whole BHT (pre-update, so
// take it before SpecUpdate).
func (s *Snapshot) OnFetchBranch(ctx *BranchCtx, cycle int64) {
	if s.busy(cycle) {
		ctx.CkptSkipped = true
		s.st.CkptMisses++
		return
	}
	if int(s.tail-s.head) >= s.entries {
		// SQ full: the branch goes unprotected, but the speculative
		// update still happens (mirroring the OBQ-full behaviour).
		s.st.CkptMisses++
		s.specUpdate(ctx, cycle)
		ctx.OBQID = -1
		return
	}
	snap := s.lp.SnapshotBHT(s.getBuf())
	id := s.tail
	*s.slot(id) = snapSlot{seq: ctx.Seq, snap: snap, live: true}
	s.tail++
	ctx.OBQID = id // reuse the checkpoint-id field for the SQ slot
	s.specUpdate(ctx, cycle)
}

// OnMispredict implements Scheme.
func (s *Snapshot) OnMispredict(ctx *BranchCtx, cycle int64) {
	s.penalize(ctx)
	s.repairRestartSnap(cycle)
	if ctx.OBQID < 0 || ctx.OBQID < s.head || ctx.OBQID >= s.tail {
		s.squashYounger(ctx.Seq)
		s.st.Unrepaired++
		return
	}
	sl := s.slot(ctx.OBQID)
	if !sl.live || sl.seq != ctx.Seq {
		s.squashYounger(ctx.Seq)
		s.st.Unrepaired++
		return
	}
	s.noteNeeded(s.lp.DiffBHT(sl.snap))
	s.lp.RestoreBHT(sl.snap)
	s.lp.ApplyOutcome(ctx.PC, ctx.ActualTaken)
	// Hardware cannot know which entries differ: a snapshot restore
	// rewrites the whole BHT through the repair ports.
	writes := s.lp.Entries()
	// Drop snapshots younger than the repaired branch; its own snapshot
	// stays live until retirement.
	for s.tail-1 > ctx.OBQID {
		s.freeSlot(s.tail - 1)
		s.tail--
	}
	s.st.Repairs++
	s.st.RepairReads += uint64(writes)
	s.st.RepairWrites += uint64(writes)
	s.beginBusy(ctx.PC, cycle, s.ports.cycles(writes, writes))
}

func (s *Snapshot) repairRestartSnap(cycle int64) {
	if s.busy(cycle) {
		s.st.Restarts++
	}
}

func (s *Snapshot) freeSlot(id int64) {
	sl := s.slot(id)
	if sl.live {
		s.pool = append(s.pool, sl.snap)
		sl.snap = nil
		sl.live = false
	}
}

func (s *Snapshot) squashYounger(seq uint64) {
	for s.tail > s.head {
		sl := s.slot(s.tail - 1)
		if !sl.live || sl.seq <= seq {
			return
		}
		s.freeSlot(s.tail - 1)
		s.tail--
	}
}

func (s *Snapshot) release(ctx *BranchCtx) {
	if ctx.OBQID < 0 {
		return
	}
	if ctx.OBQID >= s.head && ctx.OBQID < s.tail {
		s.freeSlot(ctx.OBQID)
	}
	for s.head < s.tail && !s.slot(s.head).live {
		s.head++
	}
}

// OnCorrectResolve implements Scheme: a correctly-resolved branch can never
// trigger a repair, so its snapshot frees immediately (rather than at
// retirement), relieving SQ pressure.
func (s *Snapshot) OnCorrectResolve(ctx *BranchCtx, cycle int64) {
	s.release(ctx)
}

// OnRetire implements Scheme.
func (s *Snapshot) OnRetire(ctx *BranchCtx, finalMisp bool) {
	s.release(ctx)
	s.schemeBase.OnRetire(ctx, finalMisp)
}

// OnSquash implements Scheme.
func (s *Snapshot) OnSquash(ctx *BranchCtx) { s.release(ctx) }

// StorageBits implements Scheme: each snapshot stores every BHT pattern
// (11 bits + valid per entry), which is what makes the SQ expensive.
func (s *Snapshot) StorageBits() int {
	return s.lp.StorageBits() + s.entries*s.lp.Entries()*12 + 224*8
}
