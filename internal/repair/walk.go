package repair

import (
	"fmt"

	"localbp/internal/bpu/loop"
	"localbp/internal/obq"
	"localbp/internal/obs"
)

// walkBase is shared by the backward- and forward-walk history-file schemes:
// an OBQ records pre-update BHT state at prediction time; a misprediction
// walks the queue to restore the BHT, consuming checkpoint-read and
// BHT-write port bandwidth.
type walkBase struct {
	schemeBase
	q     *obq.Queue
	ports Ports
}

// OBQ exposes the history file (read-only introspection for the integrity
// auditor's structural scans).
func (w *walkBase) OBQ() *obq.Queue { return w.q }

// AttachObs implements ObsAttacher, additionally wiring the OBQ.
func (w *walkBase) AttachObs(reg *obs.Registry, tr *obs.Tracer) {
	w.schemeBase.AttachObs(reg, tr)
	w.q.AttachObs(reg, tr)
}

func (w *walkBase) checkpoint(ctx *BranchCtx, cycle int64) {
	if !ctx.HadState && !ctx.Allocated {
		// Paper §5 "OBQ design": PCs that miss in the BHT are assigned
		// the id of the entry before the tail rather than a fresh entry;
		// they need no restore of their own.
		ctx.OBQID = -1
		return
	}
	ctx.OBQID = w.q.AllocAt(ctx.PC, ctx.Seq, ctx.PreState, cycle)
	if ctx.OBQID < 0 {
		ctx.CkptSkipped = true
		w.st.CkptMisses++
	}
}

// OnFetchBranch implements Scheme.
func (w *walkBase) OnFetchBranch(ctx *BranchCtx, cycle int64) {
	if !w.specUpdate(ctx, cycle) {
		return // BHT busy: no update, no checkpoint (paper §2.5b)
	}
	w.checkpoint(ctx, cycle)
}

// OnRetire implements Scheme.
func (w *walkBase) OnRetire(ctx *BranchCtx, finalMisp bool) {
	if ctx.OBQID >= 0 {
		w.q.Release(ctx.OBQID)
	}
	w.schemeBase.OnRetire(ctx, finalMisp)
}

// OnSquash implements Scheme.
func (w *walkBase) OnSquash(ctx *BranchCtx) {
	if ctx.OBQID >= 0 {
		w.q.Release(ctx.OBQID)
	}
}

// repairRestart accounts an overlapping repair (paper §2.5c / §3.1): an
// ongoing walk superseded by a new misprediction restarts.
func (w *walkBase) repairRestart(cycle int64) {
	if w.busy(cycle) {
		w.st.Restarts++
	}
}

// BackwardWalk is the prior-art history-file repair of Skadron et al.: on a
// misprediction the OBQ is walked from the youngest entry back to the
// mispredicting instruction, writing every recorded pre-update state into
// the BHT. The same PC may be written several times (Figure 5a), wasting
// write-port bandwidth and stretching the busy window.
type BackwardWalk struct {
	walkBase
}

// NewBackwardWalk builds the scheme: cfg sizes the predictor, entries the
// OBQ, ports the repair bandwidth.
func NewBackwardWalk(cfg loop.Config, entries int, ports Ports) *BackwardWalk {
	return NewBackwardWalkFor(loop.New(cfg), entries, ports)
}

// NewBackwardWalkFor builds the scheme around any local predictor.
func NewBackwardWalkFor(lp loop.LocalPredictor, entries int, ports Ports) *BackwardWalk {
	s := &BackwardWalk{}
	s.lp = lp
	s.q = obq.New(entries, false)
	s.ports = ports
	return s
}

// Name implements Scheme.
func (s *BackwardWalk) Name() string {
	return fmt.Sprintf("backward-walk-%d-%d-%d", s.q.Cap(), s.ports.CkptRead, s.ports.BHTWrite)
}

// OnMispredict implements Scheme.
func (s *BackwardWalk) OnMispredict(ctx *BranchCtx, cycle int64) {
	s.penalize(ctx)
	s.repairRestart(cycle)
	if ctx.OBQID < 0 {
		// Not checkpointed: the OBQ state is not recovered (paper §3.1);
		// younger bogus entries still must go.
		s.q.SquashYoungerSeq(ctx.Seq)
		s.st.Unrepaired++
		return
	}
	reads, writes := 0, 0
	s.q.WalkBack(ctx.OBQID, func(id int64, e *obq.Entry) {
		s.lp.RestoreState(e.PC, e.State)
		reads++
		writes++
	})
	s.lp.ApplyOutcome(ctx.PC, ctx.ActualTaken)
	s.q.SquashAfter(ctx.OBQID)
	s.st.Repairs++
	s.st.RepairReads += uint64(reads)
	s.st.RepairWrites += uint64(writes)
	s.beginBusy(ctx.PC, cycle, s.ports.cycles(reads, writes))
}

// StorageBits implements Scheme: predictor + OBQ entries (76 bits each,
// paper §5) + the OBQ id and counter carried per ROB entry.
func (s *BackwardWalk) StorageBits() int {
	return s.lp.StorageBits() + s.q.Cap()*76 + 224*16
}

// ForwardWalk is contribution 1 (paper §3.1): the walk starts at the
// mispredicting instruction and moves toward younger entries. With the
// per-entry repair bit, each PC is written at most once per repair (its
// oldest — and therefore correct — recorded state), and the mispredicting
// PC recovers first, so temporally-close correct-path instructions can be
// re-predicted immediately. Optional coalescing merges consecutive same-PC
// OBQ allocations to relieve capacity pressure (Figure 5b).
type ForwardWalk struct {
	walkBase
	coalesce bool
}

// NewForwardWalk builds the scheme; coalesce enables OBQ entry merging.
func NewForwardWalk(cfg loop.Config, entries int, ports Ports, coalesce bool) *ForwardWalk {
	return NewForwardWalkFor(loop.New(cfg), entries, ports, coalesce)
}

// NewForwardWalkFor builds the scheme around any local predictor.
func NewForwardWalkFor(lp loop.LocalPredictor, entries int, ports Ports, coalesce bool) *ForwardWalk {
	s := &ForwardWalk{coalesce: coalesce}
	s.lp = lp
	s.q = obq.New(entries, coalesce)
	s.ports = ports
	return s
}

// Name implements Scheme.
func (s *ForwardWalk) Name() string {
	n := fmt.Sprintf("forward-walk-%d-%d-%d", s.q.Cap(), s.ports.CkptRead, s.ports.BHTWrite)
	if s.coalesce {
		n += "+coalesce"
	}
	return n
}

// FetchPredict implements Scheme: the forward walk's key property (paper
// §3.1) is that a PC whose repair bit has been cleared is already in its
// final state, so it can give predictions while the rest of the walk is
// still in progress. Backward walk cannot guarantee this until the walk
// completes.
func (s *ForwardWalk) FetchPredict(pc uint64, cycle int64) loop.Prediction {
	if s.busy(cycle) && s.lp.RepairBitSet(pc) {
		return loop.Prediction{}
	}
	return s.lp.Predict(pc)
}

// OnFetchBranch implements Scheme: PCs already repaired this walk may also
// resume speculative updates and checkpointing.
func (s *ForwardWalk) OnFetchBranch(ctx *BranchCtx, cycle int64) {
	if s.busy(cycle) && s.lp.RepairBitSet(ctx.PC) {
		s.lp.Invalidate(ctx.PC)
		ctx.CkptSkipped = true
		s.st.CkptMisses++
		return
	}
	st, had := s.lp.LookupState(ctx.PC)
	ctx.PreState, ctx.HadState = st, had
	ctx.Allocated = s.lp.SpecUpdate(ctx.PC, ctx.PredTaken)
	if ctx.Allocated {
		if pt := s.lp.PatternInfo(ctx.PC); pt.Valid {
			ctx.PreState.Dir = pt.Dir
		}
	}
	s.checkpoint(ctx, cycle)
}

// OnMispredict implements Scheme.
func (s *ForwardWalk) OnMispredict(ctx *BranchCtx, cycle int64) {
	s.penalize(ctx)
	s.repairRestart(cycle)
	if ctx.OBQID < 0 {
		s.q.SquashYoungerSeq(ctx.Seq)
		s.st.Unrepaired++
		return
	}
	// Repair bits arm across the BHT; the first write per PC clears its bit.
	s.lp.RepairStart()
	reads, writes := 0, 0
	s.q.Walk(ctx.OBQID, func(id int64, e *obq.Entry) {
		reads++
		if !s.lp.RepairBitSet(e.PC) {
			return // already repaired this walk
		}
		if e.PC == ctx.PC && id == ctx.OBQID {
			// With coalescing the shared entry holds the run's first
			// instance; an intermediate instance repairs itself from
			// the state carried with the instruction (paper §3.1).
			s.lp.RestoreState(ctx.PC, ctx.PreState)
		} else {
			s.lp.RestoreState(e.PC, e.State)
		}
		writes++
	})
	s.lp.ApplyOutcome(ctx.PC, ctx.ActualTaken)
	s.q.SquashAfter(ctx.OBQID)
	s.st.Repairs++
	s.st.RepairReads += uint64(reads)
	s.st.RepairWrites += uint64(writes)
	s.beginBusy(ctx.PC, cycle, s.ports.cycles(reads, writes))
}

// StorageBits implements Scheme: predictor + repair bits + OBQ + 16 bits per
// ROB entry (5-bit OBQ id + 11-bit counter), per Table 3's 0.77KB costing.
func (s *ForwardWalk) StorageBits() int {
	return s.lp.StorageBits() + s.lp.Entries() + s.q.Cap()*76 + 224*16
}
