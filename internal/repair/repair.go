// Package repair implements every BHT repair scheme studied by the paper:
//
//   - Perfect instantaneous repair (the oracle upper bound, §6.1)
//   - No repair (§2.7)
//   - Update-BHT-at-retire (§6.2)
//   - Backward walk-based history-file repair (prior art, §2.6)
//   - Snapshot-queue repair (prior art, §2.6)
//   - Forward walk-based history-file repair, with optional OBQ entry
//     coalescing (contribution 1, §3.1)
//   - Multi-stage prediction with a split BHT, shared or split PT
//     (contribution 2, §3.2)
//   - Limited-PC repair with the utility+recency heuristic
//     (contribution 3, §3.3)
//
// A Scheme wraps the loop predictor(s) and the checkpoint structures, and is
// driven by the pipeline through fetch/alloc/resolve/retire/squash hooks.
// Repair latency is modeled explicitly: walks and snapshot restores consume
// cycles as a function of checkpoint-read and BHT-write ports, and the BHT
// gives no predictions and accepts no speculative updates while a repair is
// in progress (paper §2.5 issues a-d).
package repair

import (
	"localbp/internal/bpu/loop"
	"localbp/internal/obs"
)

// PCState is a (PC, BHT state) pair carried by limited-PC repair.
type PCState struct {
	PC uint64
	St loop.State
}

// BranchCtx is the per-branch bookkeeping record carried through the
// pipeline: the prediction, the pre-update BHT state, and per-scheme
// checkpoint identifiers. The core pools and reuses these.
type BranchCtx struct {
	PC          uint64
	Seq         uint64 // global branch sequence number (program order)
	PredTaken   bool   // final pipeline prediction (may change at alloc stage)
	ActualTaken bool
	WrongPath   bool
	UsedLoop    bool // the local predictor overrode TAGE at fetch
	LoopValid   bool
	LoopTaken   bool

	// Pre-update speculative BHT state of PC (the 11-bit counter the paper
	// carries with each instruction), captured before SpecUpdate.
	PreState  loop.State
	HadState  bool // BHT hit at prediction time
	Allocated bool // SpecUpdate allocated a fresh BHT entry

	CkptSkipped bool  // checkpointing was impossible (BHT busy or queue full)
	OBQID       int64 // history-file entry id, -1 if none
	SnapValid   bool
	Snap        []loop.FullState // full-BHT snapshot (perfect / snapshot queue)
	Limited     []PCState        // limited-PC carried states

	// OverrideAllowed mirrors the unit's chooser state at the allocation
	// stage: deferred schemes only fire (and count) an early resteer when
	// the chooser currently trusts the local predictor.
	OverrideAllowed bool

	// InflightMark notes that retire-update incremented the per-PC
	// in-flight counter for this branch (so exactly one decrement happens
	// at retire or squash).
	InflightMark bool

	// Multi-stage bookkeeping.
	DeferSeen  bool // the branch reached the alloc stage (BHT-Defer saw it)
	DeferOBQID int64
	DeferPre   loop.State
	DeferHad   bool
	DeferSkip  bool
}

// ResetCtx clears a context for reuse, preserving allocated slices.
func ResetCtx(c *BranchCtx) {
	snap, lim := c.Snap, c.Limited
	*c = BranchCtx{OBQID: -1, DeferOBQID: -1}
	c.Snap = snap[:0]
	c.Limited = lim[:0]
}

// Ports describes the repair bandwidth of a configuration: the paper's
// "M-N-P" notation is M checkpoint entries, N checkpoint read ports, P BHT
// write ports.
type Ports struct {
	CkptRead int
	BHTWrite int
}

// cycles returns how many cycles a repair of r checkpoint reads and w BHT
// writes takes through these ports.
func (p Ports) cycles(r, w int) int64 {
	c := ceilDiv(r, p.CkptRead)
	if c2 := ceilDiv(w, p.BHTWrite); c2 > c {
		c = c2
	}
	if c < 1 && (r > 0 || w > 0) {
		c = 1
	}
	return int64(c)
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		if a > 0 {
			return 1 << 20 // effectively infinite: no ports provisioned
		}
		return 0
	}
	return (a + b - 1) / b
}

// Stats aggregates repair activity for one simulation.
type Stats struct {
	Repairs       uint64 // mispredictions that triggered a repair
	Unrepaired    uint64 // mispredictions with no usable checkpoint
	RepairReads   uint64 // checkpoint entries read during walks
	RepairWrites  uint64 // BHT entries written during repair
	BusyCycles    uint64 // cycles the BHT was unavailable
	CkptMisses    uint64 // branches not checkpointed (queue full / busy)
	Restarts      uint64 // repairs restarted by an older misprediction
	EarlyResteers uint64 // multi-stage deferred overrides
	NeededSum     uint64 // sum over mispredictions of entries needing repair
	NeededMax     int    // max entries needing repair at one misprediction
	NeededSamples uint64
}

// EmitCounters reports every Stats field through emit, for registration as
// an obs.Registry pull source (names are stable snapshot keys).
func (s *Stats) EmitCounters(emit func(name string, v uint64)) {
	emit("repairs", s.Repairs)
	emit("unrepaired", s.Unrepaired)
	emit("reads", s.RepairReads)
	emit("writes", s.RepairWrites)
	emit("busy-cycles", s.BusyCycles)
	emit("ckpt-misses", s.CkptMisses)
	emit("restarts", s.Restarts)
	emit("early-resteers", s.EarlyResteers)
}

// BusyReporter is the optional interface schemes implement to expose the
// cycle until which their BHT/checkpoint ports are busy. The core uses it
// for CPI-stack repair-busy attribution; decorator wrappers (audit, fault
// injection) forward it.
type BusyReporter interface {
	BusyUntil() int64
}

// ObsAttacher is the optional interface schemes implement to register their
// counters into an obs.Registry and emit repair trace events. Call AttachObs
// on the raw scheme before decorator wrapping.
type ObsAttacher interface {
	AttachObs(reg *obs.Registry, tr *obs.Tracer)
}

// AttachObs wires observability into s when it supports it (no-op
// otherwise). It must be invoked on the innermost (unwrapped) scheme: the
// audit and fault-injection decorators do not forward registration.
func AttachObs(s Scheme, reg *obs.Registry, tr *obs.Tracer) {
	if a, ok := s.(ObsAttacher); ok {
		a.AttachObs(reg, tr)
	}
}

// Scheme is one complete local-predictor integration: predictor structures
// plus a repair mechanism, driven by the pipeline.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string

	// FetchPredict returns the local prediction available at the branch
	// prediction stage (zero value when the BHT is busy or has no
	// confident opinion).
	FetchPredict(pc uint64, cycle int64) loop.Prediction

	// OnFetchBranch is invoked for every fetched conditional branch
	// (including synthesized wrong-path branches) after the final
	// direction has been chosen into ctx.PredTaken. The scheme performs
	// its speculative BHT update and checkpointing here.
	OnFetchBranch(ctx *BranchCtx, cycle int64)

	// AllocCheck is invoked when the branch reaches the allocation stage.
	// Deferred schemes may return (true, dir) to request an early resteer
	// to direction dir (paper §3.2).
	AllocCheck(ctx *BranchCtx, cycle int64) (resteer bool, dir bool)

	// OnMispredict repairs the BHT after ctx resolved mispredicted.
	OnMispredict(ctx *BranchCtx, cycle int64)

	// OnCorrectResolve is invoked when ctx resolved correctly predicted.
	OnCorrectResolve(ctx *BranchCtx, cycle int64)

	// OnRetire trains the non-speculative predictor state and releases
	// checkpoint resources. finalMisp reports whether the pipeline's
	// final prediction for the branch was wrong.
	OnRetire(ctx *BranchCtx, finalMisp bool)

	// OnSquash releases the resources of a flushed branch.
	OnSquash(ctx *BranchCtx)

	// Stats exposes repair counters.
	Stats() *Stats

	// StorageBits returns the storage of the local predictor plus all
	// repair structures (for Table 3).
	StorageBits() int
}
