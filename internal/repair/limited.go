package repair

import (
	"fmt"

	"localbp/internal/bpu/loop"
)

// LimitedPC is contribution 3 (paper §3.3): no OBQ at all. Each fetched
// branch carries the pre-update BHT state of M PCs — itself plus M-1 chosen
// by a utility+recency heuristic — and a misprediction restores exactly
// those M states in deterministic time.
//
// Heuristic (paper §3.3): prefer PCs whose recent loop overrides of TAGE
// were correct (utility, LRU-replaced), then PCs with the most recent BHT
// updates (recency); the mispredicting instruction always repairs itself.
//
// Non-repaired PCs are left as-is by default (the better-performing policy
// per the paper); Invalidate selects the alternative for ablation.
type LimitedPC struct {
	schemeBase
	m          int
	writePorts int
	invalidate bool

	// goodOverrides: LRU list of PCs with recent correct overrides.
	goodOverrides []uint64
	// recentUpdates: ring of PCs with recent BHT updates.
	recentUpdates []uint64
	ruPos         int
}

// NewLimitedPC builds the scheme repairing m PCs per misprediction through
// writePorts BHT write ports. invalidate selects the "mark non-repaired PCs
// invalid" variant.
func NewLimitedPC(cfg loop.Config, m, writePorts int, invalidate bool) *LimitedPC {
	return NewLimitedPCFor(loop.New(cfg), m, writePorts, invalidate)
}

// NewLimitedPCFor builds the scheme around any local predictor.
func NewLimitedPCFor(lp loop.LocalPredictor, m, writePorts int, invalidate bool) *LimitedPC {
	if m < 1 {
		panic("repair: limited-PC m must be >= 1")
	}
	s := &LimitedPC{
		m:             m,
		writePorts:    writePorts,
		invalidate:    invalidate,
		goodOverrides: make([]uint64, 0, 8),
		recentUpdates: make([]uint64, 0, 32),
	}
	s.lp = lp
	return s
}

// Name implements Scheme.
func (s *LimitedPC) Name() string {
	n := fmt.Sprintf("limited-%dpc", s.m)
	if s.invalidate {
		n += "+invalidate"
	}
	return n
}

// OnFetchBranch implements Scheme: attach the pre-update states of the M-1
// heuristic PCs (plus self via ctx.PreState) to the instruction.
func (s *LimitedPC) OnFetchBranch(ctx *BranchCtx, cycle int64) {
	if !s.specUpdate(ctx, cycle) {
		return
	}
	if ctx.HadState && s.lp.PatternConfident(ctx.PC) {
		// Only override-capable PCs are worth a repair slot.
		s.noteUpdate(ctx.PC)
	}
	ctx.Limited = ctx.Limited[:0]
	appendPC := func(pc uint64) bool {
		if pc == ctx.PC || len(ctx.Limited) >= s.m-1 {
			return len(ctx.Limited) < s.m-1
		}
		for _, ps := range ctx.Limited {
			if ps.PC == pc {
				return true
			}
		}
		if st, ok := s.lp.LookupState(pc); ok {
			ctx.Limited = append(ctx.Limited, PCState{PC: pc, St: st})
		}
		return len(ctx.Limited) < s.m-1
	}
	// Utility first: most recently confirmed-good overriders.
	for i := len(s.goodOverrides) - 1; i >= 0; i-- {
		if !appendPC(s.goodOverrides[i]) {
			break
		}
	}
	// Then recency of BHT updates.
	if len(ctx.Limited) < s.m-1 {
		n := len(s.recentUpdates)
		for i := 0; i < n; i++ {
			idx := (s.ruPos - 1 - i + 2*n) % n
			if !appendPC(s.recentUpdates[idx]) {
				break
			}
		}
	}
}

func (s *LimitedPC) noteUpdate(pc uint64) {
	if cap(s.recentUpdates) == 0 {
		return
	}
	if len(s.recentUpdates) < cap(s.recentUpdates) {
		s.recentUpdates = append(s.recentUpdates, pc)
		s.ruPos = len(s.recentUpdates)
		return
	}
	s.ruPos = s.ruPos % len(s.recentUpdates)
	s.recentUpdates[s.ruPos] = pc
	s.ruPos++
}

// OnCorrectResolve implements Scheme: track correct overrides (utility).
func (s *LimitedPC) OnCorrectResolve(ctx *BranchCtx, cycle int64) {
	if !ctx.UsedLoop || ctx.WrongPath {
		return
	}
	// Move-to-front LRU of bounded size.
	for i, pc := range s.goodOverrides {
		if pc == ctx.PC {
			copy(s.goodOverrides[i:], s.goodOverrides[i+1:])
			s.goodOverrides[len(s.goodOverrides)-1] = ctx.PC
			return
		}
	}
	if len(s.goodOverrides) == cap(s.goodOverrides) {
		copy(s.goodOverrides, s.goodOverrides[1:])
		s.goodOverrides = s.goodOverrides[:len(s.goodOverrides)-1]
	}
	s.goodOverrides = append(s.goodOverrides, ctx.PC)
}

// OnMispredict implements Scheme: restore the carried M states in
// deterministic ceil(M / writePorts) cycles.
func (s *LimitedPC) OnMispredict(ctx *BranchCtx, cycle int64) {
	s.penalize(ctx)
	writes := 0
	if ctx.HadState || ctx.Allocated {
		s.lp.RestoreState(ctx.PC, ctx.PreState)
		writes++
	}
	s.lp.ApplyOutcome(ctx.PC, ctx.ActualTaken)
	for _, ps := range ctx.Limited {
		s.lp.RestoreState(ps.PC, ps.St)
		writes++
	}
	if s.invalidate {
		s.lp.InvalidateAll()
		// Re-validate the repaired PCs.
		if ctx.HadState || ctx.Allocated {
			s.lp.RestoreState(ctx.PC, ctx.PreState)
			s.lp.ApplyOutcome(ctx.PC, ctx.ActualTaken)
		}
		for _, ps := range ctx.Limited {
			s.lp.RestoreState(ps.PC, ps.St)
		}
	}
	s.st.Repairs++
	s.st.RepairWrites += uint64(writes)
	s.beginBusy(ctx.PC, cycle, Ports{CkptRead: s.m, BHTWrite: s.writePorts}.cycles(0, writes))
}

// StorageBits implements Scheme: 24 bits per carried PC state (5-bit set,
// 8-bit tag, 11-bit pattern, §3.3) across 224 ROB entries.
func (s *LimitedPC) StorageBits() int {
	return s.lp.StorageBits() + 224*24*s.m
}
