package repair

import (
	"testing"

	"localbp/internal/bpu/loop"
)

// msTrain drives the multi-stage scheme through loop visits using both
// pipeline stages, mispredicting exits until the predictor takes over.
func msTrain(d *driver, pc uint64, period, visits int) {
	for v := 0; v < visits; v++ {
		for i := 0; i < period; i++ {
			actual := i < period-1
			pred := true // baseline predicts the dominant direction
			if p := d.s.FetchPredict(pc, d.cycle); p.Valid {
				pred = p.Taken
			}
			ctx := d.fetch(pc, pred, actual) // fetch() also runs AllocCheck
			d.resolveRetire(ctx)
		}
	}
}

func TestMultiStageLearnsAndOverrides(t *testing.T) {
	s := NewMultiStage(loop.Loop128(), 64, true)
	d := newDriver(t, s)
	pc := uint64(0x400000)
	msTrain(d, pc, 10, 20)
	// After training, the fetch stage (BHT-TAGE) must produce loop
	// predictions, including the exit.
	sawExit := false
	for i := 0; i < 10; i++ {
		p := s.FetchPredict(pc, d.cycle)
		if !p.Valid {
			t.Fatalf("iteration %d: fetch stage silent after training", i)
		}
		if !p.Taken {
			sawExit = true
		}
		ctx := d.fetch(pc, p.Taken, i < 9)
		d.resolveRetire(ctx)
	}
	if !sawExit {
		t.Fatal("fetch stage never predicted the exit")
	}
}

func TestMultiStageDeferredOverride(t *testing.T) {
	// When the fetch stage cannot help (entry invalidated), BHT-Defer must
	// catch a wrong in-flight prediction at the allocation stage.
	s := NewMultiStage(loop.Loop128(), 64, true)
	d := newDriver(t, s)
	pc := uint64(0x400000)
	msTrain(d, pc, 8, 24)

	// Find the point just before an exit by reading BHT-Defer's state.
	st, ok := s.bhtDefer.LookupState(pc)
	if !ok {
		t.Fatal("no defer state after training")
	}
	// Advance both stages to the final iteration (count = period-1), the
	// point where the next instance is the exit.
	for st.Count < 7 {
		ctx := d.fetch(pc, true, true)
		d.resolveRetire(ctx)
		st, _ = s.bhtDefer.LookupState(pc)
	}
	// Disable the fetch stage for this PC and present a wrong prediction:
	// the alloc stage must request a resteer to the exit direction.
	s.bhtTage.Invalidate(pc)
	d.seq++
	ctx := &BranchCtx{}
	ResetCtx(ctx)
	ctx.PC, ctx.Seq = pc, d.seq
	ctx.PredTaken, ctx.ActualTaken = true, false // exit, predicted taken
	ctx.OverrideAllowed = true
	s.OnFetchBranch(ctx, d.cycle)
	override, dir := s.AllocCheck(ctx, d.cycle)
	if !override || dir != false {
		t.Fatalf("deferred override = (%v, %v), want (true, false)", override, dir)
	}
	if s.Stats().EarlyResteers == 0 {
		t.Fatal("early resteer not counted")
	}
}

func TestMultiStageRepairCopiesToFetchStage(t *testing.T) {
	s := NewMultiStage(loop.Loop128(), 64, true)
	d := newDriver(t, s)
	pcA, pcB := uint64(0x400000), uint64(0x400400)
	msTrain(d, pcA, 10, 20)
	msTrain(d, pcB, 7, 20)

	preA, _ := s.bhtDefer.LookupState(pcA)
	// Mispredicted branch at pcA followed by corrupting younger updates.
	ctxA := d.fetch(pcA, false, true)
	young := []*BranchCtx{d.fetch(pcB, true, true), d.fetch(pcA, true, true)}
	d.cycle++
	s.OnMispredict(ctxA, d.cycle)
	for _, c := range young {
		s.OnSquash(c)
	}
	s.OnRetire(ctxA, true)

	wantA := preA
	wantA.Count++ // rewound, then the actual taken outcome applied
	if got, _ := s.bhtDefer.LookupState(pcA); got != wantA {
		t.Errorf("defer stage state %+v, want %+v", got, wantA)
	}
	// The fetch stage must have received the repaired image too.
	if got, ok := s.bhtTage.LookupState(pcA); !ok || got.Count != wantA.Count {
		t.Errorf("fetch stage not repaired: %+v ok=%v want count %d", got, ok, wantA.Count)
	}
}

func TestMultiStageSharedVsSplitPT(t *testing.T) {
	shared := NewMultiStage(loop.Loop128(), 32, true)
	split := NewMultiStage(loop.Loop128(), 32, false)
	if shared.StorageBits() > split.StorageBits() {
		t.Fatal("a shared full-size PT must not cost more than two half PTs")
	}
	if shared.bhtTage.PT() != shared.bhtDefer.PT() {
		t.Fatal("shared design has distinct PTs")
	}
	if split.bhtTage.PT() == split.bhtDefer.PT() {
		t.Fatal("split design shares a PT")
	}
}

func TestMultiStageHalvesBHT(t *testing.T) {
	s := NewMultiStage(loop.Loop128(), 32, true)
	if s.bhtTage.Entries() != 64 || s.bhtDefer.Entries() != 64 {
		t.Fatalf("split BHT sizes %d/%d, want 64/64",
			s.bhtTage.Entries(), s.bhtDefer.Entries())
	}
}

func TestMultiStageNoResteerOnWrongPath(t *testing.T) {
	s := NewMultiStage(loop.Loop128(), 64, true)
	d := newDriver(t, s)
	pc := uint64(0x400000)
	msTrain(d, pc, 8, 24)
	d.seq++
	ctx := &BranchCtx{}
	ResetCtx(ctx)
	ctx.PC, ctx.Seq = pc, d.seq
	ctx.PredTaken, ctx.ActualTaken = true, false
	ctx.OverrideAllowed = true
	ctx.WrongPath = true
	s.OnFetchBranch(ctx, d.cycle)
	if override, _ := s.AllocCheck(ctx, d.cycle); override {
		t.Fatal("wrong-path instruction triggered a resteer")
	}
}
