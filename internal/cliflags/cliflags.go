// Package cliflags holds the flag conventions shared by the lbpsim,
// lbpsweep and lbptrace commands: the canonical spellings (-insts,
// -workload, -scheme, -seed) and a helper that keeps deprecated old
// spellings working with a one-time migration note.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// Warnings is where deprecation notes go; tests redirect it.
var Warnings io.Writer = os.Stderr

// Alias registers old as a deprecated spelling of the already-registered
// canonical flag on fs. The alias writes through to the canonical flag's
// value, so either spelling (or both; last one wins, as with a repeated
// flag) sets the same variable. The first use of the old spelling per
// process prints a one-time deprecation note.
func Alias(fs *flag.FlagSet, canonical, old string) {
	f := fs.Lookup(canonical)
	if f == nil {
		panic(fmt.Sprintf("cliflags: alias %q for unregistered flag %q", old, canonical))
	}
	fs.Var(&aliasValue{inner: f.Value, canonical: canonical, old: old}, old,
		fmt.Sprintf("deprecated spelling of -%s", canonical))
}

// aliasValue forwards Set/String to the canonical flag's value, noting the
// deprecated use once.
type aliasValue struct {
	inner          flag.Value
	canonical, old string
	warned         bool
}

func (v *aliasValue) String() string {
	if v.inner == nil {
		return ""
	}
	return v.inner.String()
}

func (v *aliasValue) Set(s string) error {
	if !v.warned {
		v.warned = true
		fmt.Fprintf(Warnings, "note: -%s is deprecated, use -%s\n", v.old, v.canonical)
	}
	return v.inner.Set(s)
}

// IsBoolFlag forwards the boolean-flag property so `-oldflag` (no value)
// keeps parsing when the canonical flag is a bool.
func (v *aliasValue) IsBoolFlag() bool {
	b, ok := v.inner.(interface{ IsBoolFlag() bool })
	return ok && b.IsBoolFlag()
}
