package cliflags

import (
	"bytes"
	"flag"
	"io"
	"os"
	"strings"
	"testing"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestAliasWritesThrough(t *testing.T) {
	var buf bytes.Buffer
	Warnings = &buf
	defer func() { Warnings = os.Stderr }()

	fs := newFS()
	out := fs.String("out", "", "canonical")
	Alias(fs, "out", "o")
	if err := fs.Parse([]string{"-o", "trace.lbp"}); err != nil {
		t.Fatal(err)
	}
	if *out != "trace.lbp" {
		t.Fatalf("alias did not write through: %q", *out)
	}
	if !strings.Contains(buf.String(), "-o is deprecated") {
		t.Fatalf("no deprecation note: %q", buf.String())
	}

	// The note prints once per alias, not per use.
	buf.Reset()
	fs2 := newFS()
	in := fs2.String("in", "", "canonical")
	Alias(fs2, "in", "i")
	if err := fs2.Parse([]string{"-i", "a", "-i", "b"}); err != nil {
		t.Fatal(err)
	}
	if *in != "b" {
		t.Fatalf("last alias use should win: %q", *in)
	}
	if n := strings.Count(buf.String(), "deprecated"); n != 1 {
		t.Fatalf("note printed %d times", n)
	}
}

func TestAliasCanonicalSilent(t *testing.T) {
	var buf bytes.Buffer
	Warnings = &buf
	defer func() { Warnings = os.Stderr }()

	fs := newFS()
	out := fs.String("out", "", "canonical")
	Alias(fs, "out", "o")
	if err := fs.Parse([]string{"-out", "x"}); err != nil {
		t.Fatal(err)
	}
	if *out != "x" || buf.Len() != 0 {
		t.Fatalf("canonical spelling warned: %q (out=%q)", buf.String(), *out)
	}
}

func TestAliasBoolFlag(t *testing.T) {
	Warnings = io.Discard
	defer func() { Warnings = os.Stderr }()

	fs := newFS()
	b := fs.Bool("sites", false, "canonical")
	Alias(fs, "sites", "s")
	if err := fs.Parse([]string{"-s"}); err != nil {
		t.Fatal(err)
	}
	if !*b {
		t.Fatal("bool alias did not set")
	}
}

func TestAliasUnknownCanonicalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unregistered canonical flag")
		}
	}()
	Alias(newFS(), "nope", "n")
}
