// Package obq implements the Outstanding Branch Queue: the history file that
// records pre-update BHT state for every in-flight branch so that walk-based
// repair schemes (paper §2.6, §3.1) can restore the local predictor after a
// misprediction.
//
// The OBQ is a circular buffer. Entries are allocated at prediction time in
// program order, evicted when the corresponding instruction retires, and
// discarded from the tail when younger instructions are squashed. With
// coalescing enabled (paper §3.1), consecutive allocations for the same PC
// share one entry, reducing capacity pressure.
package obq

import (
	"localbp/internal/bpu/loop"
	"localbp/internal/obs"
)

// Entry is one OBQ record: the PC and its pre-update BHT state
// (the paper's 76-bit entry: 64-bit PC, 11-bit pattern, valid bit).
type Entry struct {
	PC    uint64
	Seq   uint64 // branch sequence number of the oldest instruction using it
	State loop.State
	Runs  int // number of coalesced instructions sharing this entry
}

// Queue is a bounded circular OBQ.
type Queue struct {
	buf      []Entry
	head     int64 // absolute id of the oldest live entry
	tail     int64 // absolute id one past the youngest live entry
	coalesce bool

	statAlloc     uint64
	statCoalesced uint64
	statFull      uint64

	// tracer, when non-nil, receives an EvOBQCoalesce event per coalesced
	// allocation (one nil check on the disabled path).
	tracer *obs.Tracer
}

// New returns an OBQ with the given capacity. When coalesce is true,
// consecutive same-PC allocations share an entry.
func New(capacity int, coalesce bool) *Queue {
	if capacity <= 0 {
		panic("obq: capacity must be positive")
	}
	return &Queue{buf: make([]Entry, capacity), coalesce: coalesce}
}

// Cap returns the queue capacity.
func (q *Queue) Cap() int { return len(q.buf) }

// Bounds returns the absolute ids delimiting the live window: head is the
// oldest live entry, tail one past the youngest. Read-only introspection for
// the integrity auditor.
func (q *Queue) Bounds() (head, tail int64) { return q.head, q.tail }

// Coalescing reports whether consecutive same-PC allocations share entries.
func (q *Queue) Coalescing() bool { return q.coalesce }

// Len returns the number of live entries.
func (q *Queue) Len() int { return int(q.tail - q.head) }

// Full reports whether a fresh (non-coalescible) allocation would fail.
func (q *Queue) Full() bool { return q.Len() >= len(q.buf) }

func (q *Queue) at(id int64) *Entry { return &q.buf[id%int64(len(q.buf))] }

// Alloc records the pre-update state of pc for the branch with sequence
// number seq. It returns the absolute entry id the instruction carries, or
// -1 if the queue is full (the branch goes unprotected, paper §3.1).
func (q *Queue) Alloc(pc uint64, seq uint64, st loop.State) int64 {
	return q.AllocAt(pc, seq, st, -1)
}

// AllocAt is Alloc with the core cycle for event timestamps (negative means
// "unknown").
func (q *Queue) AllocAt(pc uint64, seq uint64, st loop.State, cycle int64) int64 {
	if q.coalesce && q.Len() > 0 {
		tail := q.at(q.tail - 1)
		if tail.PC == pc {
			tail.Runs++
			q.statCoalesced++
			if q.tracer != nil {
				q.tracer.Emit(obs.EvOBQCoalesce, cycle, pc, int64(tail.Runs))
			}
			return q.tail - 1
		}
	}
	if q.Full() {
		q.statFull++
		return -1
	}
	id := q.tail
	*q.at(id) = Entry{PC: pc, Seq: seq, State: st, Runs: 1}
	q.tail++
	q.statAlloc++
	return id
}

// Get returns the entry with absolute id, or nil if it is no longer live.
func (q *Queue) Get(id int64) *Entry {
	if id < q.head || id >= q.tail {
		return nil
	}
	return q.at(id)
}

// Walk calls fn on each live entry from absolute id `from` (inclusive)
// toward the tail (youngest). It is the traversal order of forward-walk
// repair; backward walk iterates the returned slice in reverse via WalkBack.
func (q *Queue) Walk(from int64, fn func(id int64, e *Entry)) {
	if from < q.head {
		from = q.head
	}
	for id := from; id < q.tail; id++ {
		fn(id, q.at(id))
	}
}

// WalkBack calls fn on each live entry from the youngest down to absolute id
// `to` (inclusive): the backward-walk traversal order.
func (q *Queue) WalkBack(to int64, fn func(id int64, e *Entry)) {
	if to < q.head {
		to = q.head
	}
	for id := q.tail - 1; id >= to; id-- {
		fn(id, q.at(id))
	}
}

// SquashAfter drops all entries strictly younger than absolute id keep
// (keep itself stays live). Used when a misprediction flushes the pipeline.
func (q *Queue) SquashAfter(keep int64) {
	if keep+1 < q.head {
		q.tail = q.head
		return
	}
	if keep+1 < q.tail {
		q.tail = keep + 1
	}
}

// SquashYoungerSeq drops all entries whose Seq is strictly greater than seq;
// used when the mispredicting branch itself holds no OBQ entry.
func (q *Queue) SquashYoungerSeq(seq uint64) {
	for q.tail > q.head {
		e := q.at(q.tail - 1)
		if e.Seq <= seq {
			return
		}
		q.tail--
	}
}

// Release notes that one instruction using entry id has retired or been
// squashed; when the last user releases, the entry becomes evictable from
// the head.
func (q *Queue) Release(id int64) {
	e := q.Get(id)
	if e == nil {
		return
	}
	if e.Runs > 0 {
		e.Runs--
	}
	// Evict any fully-released entries at the head.
	for q.head < q.tail && q.at(q.head).Runs == 0 {
		q.head++
	}
}

// Stats returns allocation counters: total entry allocations, coalesced
// (shared) allocations, and allocations rejected because the queue was full.
func (q *Queue) Stats() (alloc, coalesced, full uint64) {
	return q.statAlloc, q.statCoalesced, q.statFull
}

// AttachObs registers the queue's counters as a pull source named "obq" and
// enables coalesce trace events.
func (q *Queue) AttachObs(reg *obs.Registry, tr *obs.Tracer) {
	if reg != nil {
		reg.AddSource("obq", func(emit func(string, uint64)) {
			emit("allocs", q.statAlloc)
			emit("coalesced", q.statCoalesced)
			emit("full-drops", q.statFull)
			emit("live", uint64(q.Len()))
		})
	}
	q.tracer = tr
}

// Reset empties the queue (tests and reuse across runs).
func (q *Queue) Reset() {
	q.head, q.tail = 0, 0
	q.statAlloc, q.statCoalesced, q.statFull = 0, 0, 0
}
