package obq

import (
	"testing"
	"testing/quick"

	"localbp/internal/bpu/loop"
)

func st(c uint16) loop.State { return loop.State{Count: c, Dir: true, Valid: true} }

func TestAllocAndGet(t *testing.T) {
	q := New(4, false)
	id := q.Alloc(0x100, 1, st(5))
	if id != 0 {
		t.Fatalf("first id = %d", id)
	}
	e := q.Get(id)
	if e == nil || e.PC != 0x100 || e.State.Count != 5 {
		t.Fatalf("Get returned %+v", e)
	}
}

func TestFullRejects(t *testing.T) {
	q := New(2, false)
	q.Alloc(0x100, 1, st(0))
	q.Alloc(0x200, 2, st(0))
	if id := q.Alloc(0x300, 3, st(0)); id != -1 {
		t.Fatalf("full queue allocated id %d", id)
	}
	_, _, full := q.Stats()
	if full != 1 {
		t.Fatalf("full counter %d", full)
	}
}

func TestCoalescing(t *testing.T) {
	q := New(4, true)
	a := q.Alloc(0x100, 1, st(1))
	b := q.Alloc(0x100, 2, st(2)) // consecutive same PC: merged
	if a != b {
		t.Fatalf("coalesced ids differ: %d %d", a, b)
	}
	if q.Len() != 1 {
		t.Fatalf("len %d after coalescing", q.Len())
	}
	// The shared entry keeps the FIRST instance's pre-update state.
	if e := q.Get(a); e.State.Count != 1 || e.Runs != 2 {
		t.Fatalf("shared entry %+v", e)
	}
	// A different PC breaks the run.
	c := q.Alloc(0x200, 3, st(0))
	if c == a {
		t.Fatal("different PC merged")
	}
	// Returning to the first PC starts a new run (non-adjacent).
	d := q.Alloc(0x100, 4, st(9))
	if d == a {
		t.Fatal("non-adjacent same-PC allocations merged")
	}
	_, coalesced, _ := q.Stats()
	if coalesced != 1 {
		t.Fatalf("coalesced counter %d", coalesced)
	}
}

func TestNoCoalescingWhenDisabled(t *testing.T) {
	q := New(4, false)
	a := q.Alloc(0x100, 1, st(1))
	b := q.Alloc(0x100, 2, st(2))
	if a == b {
		t.Fatal("coalescing disabled but entries merged")
	}
}

func TestWalkForwardOrder(t *testing.T) {
	q := New(8, false)
	ids := []int64{}
	for i := 0; i < 5; i++ {
		ids = append(ids, q.Alloc(uint64(0x100+i), uint64(i), st(uint16(i))))
	}
	var seen []uint64
	q.Walk(ids[1], func(id int64, e *Entry) { seen = append(seen, e.PC) })
	want := []uint64{0x101, 0x102, 0x103, 0x104}
	if len(seen) != len(want) {
		t.Fatalf("walked %d entries, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("walk order %v, want %v", seen, want)
		}
	}
}

func TestWalkBackOrder(t *testing.T) {
	q := New(8, false)
	for i := 0; i < 5; i++ {
		q.Alloc(uint64(0x100+i), uint64(i), st(0))
	}
	var seen []uint64
	q.WalkBack(1, func(id int64, e *Entry) { seen = append(seen, e.PC) })
	want := []uint64{0x104, 0x103, 0x102, 0x101}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("backward order %v, want %v", seen, want)
		}
	}
}

func TestSquashAfter(t *testing.T) {
	q := New(8, false)
	var ids []int64
	for i := 0; i < 6; i++ {
		ids = append(ids, q.Alloc(uint64(0x100+i), uint64(i), st(0)))
	}
	q.SquashAfter(ids[2])
	if q.Len() != 3 {
		t.Fatalf("len %d after squash, want 3", q.Len())
	}
	if q.Get(ids[3]) != nil {
		t.Fatal("squashed entry still live")
	}
	if q.Get(ids[2]) == nil {
		t.Fatal("kept entry gone")
	}
}

func TestSquashYoungerSeq(t *testing.T) {
	q := New(8, false)
	for i := 0; i < 6; i++ {
		q.Alloc(uint64(0x100+i), uint64(10+i), st(0))
	}
	q.SquashYoungerSeq(12)
	if q.Len() != 3 {
		t.Fatalf("len %d, want 3 (seqs 10..12)", q.Len())
	}
}

func TestReleaseEvictsFromHead(t *testing.T) {
	q := New(4, false)
	a := q.Alloc(0x100, 1, st(0))
	b := q.Alloc(0x200, 2, st(0))
	q.Release(b) // out of order: b fully released but a still live
	if q.Len() != 2 {
		t.Fatalf("len %d; head must not pass a live entry", q.Len())
	}
	q.Release(a)
	if q.Len() != 0 {
		t.Fatalf("len %d after releasing all", q.Len())
	}
	// Space must be reusable.
	for i := 0; i < 4; i++ {
		if id := q.Alloc(uint64(0x300+i), uint64(10+i), st(0)); id < 0 {
			t.Fatal("allocation failed after eviction")
		}
	}
}

func TestCoalescedRelease(t *testing.T) {
	q := New(4, true)
	id := q.Alloc(0x100, 1, st(1))
	q.Alloc(0x100, 2, st(2)) // merged: Runs = 2
	q.Release(id)
	if q.Len() != 1 {
		t.Fatal("entry evicted while a user remains")
	}
	q.Release(id)
	if q.Len() != 0 {
		t.Fatal("entry not evicted after the last user released")
	}
}

func TestReset(t *testing.T) {
	q := New(4, false)
	q.Alloc(0x100, 1, st(0))
	q.Reset()
	if q.Len() != 0 {
		t.Fatal("reset did not empty the queue")
	}
	alloc, _, _ := q.Stats()
	if alloc != 0 {
		t.Fatal("reset did not clear stats")
	}
}

// TestInvariantsProperty drives random operation sequences and checks
// structural invariants.
func TestInvariantsProperty(t *testing.T) {
	type op struct {
		Kind uint8
		PC   uint8
	}
	f := func(capacity8 uint8, ops []op, coalesce bool) bool {
		capacity := int(capacity8%16) + 1
		q := New(capacity, coalesce)
		var live []int64
		seq := uint64(0)
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				seq++
				id := q.Alloc(uint64(o.PC), seq, st(0))
				if id >= 0 {
					live = append(live, id)
				}
			case 1:
				if len(live) > 0 {
					q.Release(live[0])
					live = live[1:]
				}
			case 2:
				if len(live) > 1 {
					keep := live[len(live)/2]
					q.SquashAfter(keep)
					live = live[:len(live)/2+1]
				}
			}
			if q.Len() < 0 || q.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, false)
}
