// Package faultinject injects seeded, deterministic faults into the
// simulator's speculative-state machinery: bit flips in BHT counters,
// corrupted pattern-table training, poisoned TAGE history, dropped and
// duplicated OBQ entries, and repairs that never complete. It exists to
// demonstrate (and regression-test) two properties of the integrity layer:
//
//   - graceful degradation: under any injected fault the simulation
//     completes under the watchdog with bounded accuracy loss and zero
//     panics;
//   - detection: faults that violate auditable invariants (OBQ drops and
//     duplicates, a skipped perfect repair) surface as structured
//     audit.IntegrityError values when the auditor is enabled.
//
// Injection is a decorator over repair.Scheme, like the auditor's wrapper;
// the two compose (inject innermost, audit outermost) so the auditor
// observes the faulted scheme exactly as the pipeline does. Firing is
// deterministic: every Nth eligible event per fault kind, with a splitmix64
// stream (seeded) choosing only *what* to corrupt, never *whether*.
package faultinject

import (
	"errors"
	"fmt"
	"strings"

	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/obq"
	"localbp/internal/repair"
)

// Kind enumerates the fault categories.
type Kind int

const (
	// BHTFlip flips a random bit of the branch's speculative BHT counter
	// (a soft error in the prediction array). Repair schemes overwrite the
	// damage; never independently detectable, always graceful.
	BHTFlip Kind = iota
	// PTCorrupt trains the pattern table with the inverted architectural
	// outcome (a corrupted training pipe). Graceful: confidence machinery
	// absorbs it at some accuracy cost.
	PTCorrupt
	// TAGEHistory pushes a bogus bit for a scrambled PC into the global and
	// path history (a corrupted history register). Graceful.
	TAGEHistory
	// OBQDrop discards the youngest live OBQ entry while its branch is
	// still in flight. Detected by the auditor's checkpoint-liveness check
	// when that branch resolves or retires.
	OBQDrop
	// OBQDup allocates a phantom OBQ entry that duplicates the current
	// tail's state with a non-increasing sequence number. Detected by the
	// auditor's OBQ order scan.
	OBQDup
	// RepairDelay drops a repair completion: the scheme's OnMispredict
	// never runs, leaving the BHT corrupted (an infinitely delayed repair).
	// Detected under perfect repair by the auditor's resync-equality check;
	// graceful (accuracy loss only) elsewhere.
	RepairDelay

	numKinds
)

var kindNames = [numKinds]string{
	"bht-flip", "pt-corrupt", "tage-history", "obq-drop", "obq-dup", "repair-delay",
}

// String returns the CLI name of the kind.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Kinds returns every fault kind (test sweeps).
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ParseKinds parses a comma-separated kind list ("obq-drop,bht-flip") or
// "all".
func ParseKinds(s string) ([]Kind, error) {
	if strings.TrimSpace(s) == "all" {
		return Kinds(), nil
	}
	var out []Kind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		found := false
		for i, n := range kindNames {
			if part == n {
				out = append(out, Kind(i))
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("faultinject: unknown kind %q (valid: %s, all)",
				part, strings.Join(kindNames[:], ", "))
		}
	}
	if len(out) == 0 {
		return nil, errors.New("faultinject: empty kind list")
	}
	return out, nil
}

// Config parameterizes an injector.
type Config struct {
	Seed  uint64 // splitmix64 seed for target selection
	Every uint64 // fire on every Nth eligible event per kind (>= 1)
	Kinds []Kind // enabled fault kinds
	Max   uint64 // total fault budget across kinds; 0 = unlimited
}

// Validate checks the configuration.
func (c Config) Validate() error {
	var errs []error
	if c.Every == 0 {
		errs = append(errs, errors.New("faultinject.Config.Every: got 0, want >= 1"))
	}
	if len(c.Kinds) == 0 {
		errs = append(errs, errors.New("faultinject.Config.Kinds: empty"))
	}
	for _, k := range c.Kinds {
		if k < 0 || k >= numKinds {
			errs = append(errs, fmt.Errorf("faultinject.Config.Kinds: invalid kind %d", int(k)))
		}
	}
	return errors.Join(errs...)
}

// Injector drives deterministic fault injection for one simulation run.
type Injector struct {
	cfg     Config
	enabled [numKinds]bool
	rng     uint64
	events  [numKinds]uint64
	counts  [numKinds]uint64
	total   uint64
	tage    *tage.Predictor
}

// New builds an injector; the configuration must validate.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{cfg: cfg, rng: cfg.Seed}
	for _, k := range cfg.Kinds {
		inj.enabled[k] = true
	}
	return inj, nil
}

// AttachTAGE gives the injector access to the TAGE predictor for the
// tage-history fault vector; without it the kind is silently inert.
func (inj *Injector) AttachTAGE(t *tage.Predictor) { inj.tage = t }

// next is a splitmix64 step: deterministic target selection from the seed.
func (inj *Injector) next() uint64 {
	inj.rng += 0x9e3779b97f4a7c15
	z := inj.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// due counts one eligible event for kind k and reports whether a fault
// fires now (every Nth event, within the total budget).
func (inj *Injector) due(k Kind) bool {
	if !inj.enabled[k] {
		return false
	}
	if inj.cfg.Max > 0 && inj.total >= inj.cfg.Max {
		return false
	}
	inj.events[k]++
	return inj.events[k]%inj.cfg.Every == 0
}

// fired accounts one injected fault.
func (inj *Injector) fired(k Kind) {
	inj.counts[k]++
	inj.total++
}

// Total returns how many faults were injected.
func (inj *Injector) Total() uint64 { return inj.total }

// Counts returns the per-kind injected-fault counts, keyed by kind name.
func (inj *Injector) Counts() map[string]uint64 {
	out := make(map[string]uint64, numKinds)
	for i, n := range kindNames {
		if inj.counts[i] > 0 {
			out[n] = inj.counts[i]
		}
	}
	return out
}

// predictorHolder / obqHolder mirror the audit package's introspection
// surfaces: the injector reaches the BHT and OBQ the same way the auditor
// does, and forwards them so an outer audit wrapper sees through it.
type predictorHolder interface {
	Predictor() loop.LocalPredictor
}

type obqHolder interface {
	OBQ() *obq.Queue
}

// Wrap decorates s with the injector's fault vectors. Compose with the
// auditor as audit.WrapScheme(inj.Wrap(scheme), a): injection innermost so
// the auditor observes the faulted scheme.
func (inj *Injector) Wrap(s repair.Scheme) repair.Scheme {
	w := &faultyScheme{inner: s, inj: inj}
	if ph, ok := s.(predictorHolder); ok {
		w.lp = ph.Predictor()
	}
	if qh, ok := s.(obqHolder); ok {
		w.q = qh.OBQ()
	}
	return w
}

// faultyScheme is the injecting decorator.
type faultyScheme struct {
	inner repair.Scheme
	inj   *Injector
	lp    loop.LocalPredictor // nil when inner exposes no single predictor
	q     *obq.Queue          // nil when inner has no OBQ
}

// Predictor forwards introspection (oracle coverage, outer audit wrapper).
func (w *faultyScheme) Predictor() loop.LocalPredictor { return w.lp }

// OBQ forwards introspection (outer audit wrapper).
func (w *faultyScheme) OBQ() *obq.Queue { return w.q }

// Name implements repair.Scheme.
func (w *faultyScheme) Name() string { return w.inner.Name() + "+inject" }

// FetchPredict implements repair.Scheme.
func (w *faultyScheme) FetchPredict(pc uint64, cycle int64) loop.Prediction {
	return w.inner.FetchPredict(pc, cycle)
}

// OnFetchBranch implements repair.Scheme and is the injection point for the
// state-corruption vectors: each fetched branch is one eligible event.
func (w *faultyScheme) OnFetchBranch(ctx *repair.BranchCtx, cycle int64) {
	w.inner.OnFetchBranch(ctx, cycle)
	inj := w.inj
	if w.lp != nil && inj.due(BHTFlip) {
		if st, ok := w.lp.LookupState(ctx.PC); ok {
			st.Count ^= 1 << (inj.next() % 11) // the paper's 11-bit pattern
			w.lp.RestoreState(ctx.PC, st)
			inj.fired(BHTFlip)
		}
	}
	if inj.tage != nil && inj.due(TAGEHistory) {
		r := inj.next()
		inj.tage.SpecUpdateHistory(ctx.PC^(r|1), r&(1<<20) != 0)
		inj.fired(TAGEHistory)
	}
	if w.q != nil && inj.due(OBQDrop) {
		head, tail := w.q.Bounds()
		if tail-head >= 2 {
			// Drop the youngest live entry; its in-flight owner now holds a
			// dead (soon recycled) checkpoint id.
			w.q.SquashAfter(tail - 2)
			inj.fired(OBQDrop)
		}
	}
	if w.q != nil && inj.due(OBQDup) {
		head, tail := w.q.Bounds()
		if tail > head && !w.q.Full() {
			prev := w.q.Get(tail - 1)
			// A phantom double-allocation: a distinct PC with a
			// non-increasing Seq breaks the queue's age ordering.
			w.q.Alloc(prev.PC^0x40, prev.Seq, prev.State)
			inj.fired(OBQDup)
		}
	}
}

// AllocCheck implements repair.Scheme.
func (w *faultyScheme) AllocCheck(ctx *repair.BranchCtx, cycle int64) (bool, bool) {
	return w.inner.AllocCheck(ctx, cycle)
}

// OnMispredict implements repair.Scheme: the repair-delay vector swallows
// the repair entirely — the speculative BHT stays corrupted, as if the
// repair operation were delayed past the end of the run.
func (w *faultyScheme) OnMispredict(ctx *repair.BranchCtx, cycle int64) {
	if w.inj.due(RepairDelay) {
		w.inj.fired(RepairDelay)
		return
	}
	w.inner.OnMispredict(ctx, cycle)
}

// OnCorrectResolve implements repair.Scheme.
func (w *faultyScheme) OnCorrectResolve(ctx *repair.BranchCtx, cycle int64) {
	w.inner.OnCorrectResolve(ctx, cycle)
}

// OnRetire implements repair.Scheme: the PT-corruption vector trains the
// pattern table with the inverted outcome before the real training runs.
func (w *faultyScheme) OnRetire(ctx *repair.BranchCtx, finalMisp bool) {
	if w.lp != nil && w.inj.due(PTCorrupt) {
		w.lp.Retire(ctx.PC, !ctx.ActualTaken, true)
		w.inj.fired(PTCorrupt)
	}
	w.inner.OnRetire(ctx, finalMisp)
}

// OnSquash implements repair.Scheme.
func (w *faultyScheme) OnSquash(ctx *repair.BranchCtx) { w.inner.OnSquash(ctx) }

// Stats implements repair.Scheme.
func (w *faultyScheme) Stats() *repair.Stats { return w.inner.Stats() }

// StorageBits implements repair.Scheme.
func (w *faultyScheme) StorageBits() int { return w.inner.StorageBits() }

// BusyUntil implements repair.BusyReporter by forwarding to the wrapped
// scheme (0 — never busy — when it does not report).
func (w *faultyScheme) BusyUntil() int64 {
	if br, ok := w.inner.(repair.BusyReporter); ok {
		return br.BusyUntil()
	}
	return 0
}
