package schemes

import (
	"strings"
	"testing"

	"localbp/internal/repair"
)

func TestEveryNameBuilds(t *testing.T) {
	for _, name := range Names() {
		s, d, err := Build(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Name != name {
			t.Fatalf("%s resolved to %s", name, d.Name)
		}
		if name == "baseline" {
			if s != nil {
				t.Fatal("baseline built a scheme")
			}
			continue
		}
		if s == nil || s.Name() == "" {
			t.Fatalf("%s built no scheme", name)
		}
	}
}

func TestCanonicalParams(t *testing.T) {
	cases := []struct {
		name  string
		check func(Params) bool
	}{
		{"snapshot", func(p Params) bool { return p.Ports == repair.Ports{CkptRead: 8, BHTWrite: 8} }},
		{"backward", func(p Params) bool { return p.Ports == repair.Ports{CkptRead: 4, BHTWrite: 4} }},
		{"forward", func(p Params) bool { return !p.Coalesce && p.Ports == repair.Ports{CkptRead: 4, BHTWrite: 2} }},
		{"forward-coalesce", func(p Params) bool { return p.Coalesce }},
		{"multistage", func(p Params) bool { return p.SharedPT }},
		{"multistage-split", func(p Params) bool { return !p.SharedPT }},
		{"limited2", func(p Params) bool { return p.PCs == 2 && p.WritePorts == 2 }},
		{"limited4", func(p Params) bool { return p.PCs == 4 && p.WritePorts == 4 }},
		{"limited8", func(p Params) bool { return p.PCs == 8 && p.WritePorts == 4 }},
	}
	for _, c := range cases {
		_, p, err := Resolve(c.name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !c.check(p) {
			t.Fatalf("%s canonical params wrong: %+v", c.name, p)
		}
	}
}

func TestAliasesAndOptions(t *testing.T) {
	for alias, want := range map[string]string{
		"tage": "baseline", "no-repair": "none", "retire-update": "retire",
		"backward-walk": "backward", "forward-walk": "forward-coalesce",
		"limited-pc": "limited", "yehpatt": "yehpatt-forward",
	} {
		d, ok := ByName(alias)
		if !ok || d.Name != want {
			t.Fatalf("alias %s -> %v (want %s)", alias, d, want)
		}
	}
	// Caller options layer over canonical prep.
	_, p, err := Resolve("backward", func(p *Params) { p.OBQEntries = 8 })
	if err != nil || p.OBQEntries != 8 || p.Ports.BHTWrite != 4 {
		t.Fatalf("option layering wrong: %+v (%v)", p, err)
	}
	if _, _, err := Resolve("bogus"); err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Fatalf("unknown name error wrong: %v", err)
	}
	if u := Usage(); !strings.Contains(u, "forward-coalesce") || !strings.Contains(u, "baseline") {
		t.Fatal("usage table incomplete")
	}
}

func TestOracleFlag(t *testing.T) {
	d, _ := ByName("oracle")
	if !d.Oracle {
		t.Fatal("oracle def not flagged")
	}
	if d, _ := ByName("perfect"); d.Oracle {
		t.Fatal("perfect def flagged oracle")
	}
}
