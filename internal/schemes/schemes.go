// Package schemes is the single registry of named predictor/repair
// configurations. The localbp facade, cmd/lbpsim and cmd/lbpsweep all
// resolve scheme names through it, so the name → construction mapping
// (and the paper's canonical parameter choices) lives in exactly one
// place instead of per-command switch statements.
//
// Each Def owns its canonical parameters (ports, coalescing, PC budget);
// Resolve layers caller options on top of those defaults, so
// `-scheme backward` always means BWD-32-4-4 unless explicitly overridden.
package schemes

import (
	"fmt"
	"sort"
	"strings"

	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/yehpatt"
	"localbp/internal/repair"
)

// Params carries every knob a registered scheme constructor can consume.
// Defaults returns the paper's canonical values; a Def's prep hook then
// applies its scheme-specific ones (e.g. snapshot's 8/8 ports) before
// caller options are applied.
type Params struct {
	Loop       loop.Config  // local predictor configuration
	OBQEntries int          // outstanding-branch-queue capacity
	Ports      repair.Ports // checkpoint-read / BHT-write ports
	Coalesce   bool         // OBQ same-PC run coalescing
	SharedPT   bool         // multi-stage: share one pattern table
	PCs        int          // limited-PC: repaired PCs per misprediction
	WritePorts int          // limited-PC: BHT write ports
	Invalidate bool         // limited-PC: invalidate instead of restore
}

// Defaults returns the baseline parameter set: Loop-128, a 32-entry OBQ and
// the paper's realistic 4-read/2-write port budget.
func Defaults() Params {
	return Params{
		Loop:       loop.Loop128(),
		OBQEntries: 32,
		Ports:      repair.Ports{CkptRead: 4, BHTWrite: 2},
		SharedPT:   true,
		PCs:        4,
		WritePorts: 4,
	}
}

// Opt mutates a Params; the facade and CLIs build these from user flags.
type Opt = func(*Params)

// Def is one registered scheme: its canonical name, CLI aliases, a short
// description, and how to build it. A nil Make is the TAGE-only baseline
// (no local predictor, no repair scheme).
type Def struct {
	Name    string
	Aliases []string
	Desc    string
	// Oracle marks the never-mispredicting local predictor of Figure 4.
	Oracle bool
	// prep applies the scheme's canonical parameters over Defaults().
	prep func(*Params)
	// Make constructs the repair scheme; nil for the TAGE-only baseline.
	Make func(Params) repair.Scheme
}

// registry lists every scheme, in presentation order (baseline → oracle
// bounds → naive → realistic repairs → variants).
var registry = []Def{
	{
		Name: "baseline", Aliases: []string{"tage"},
		Desc: "TAGE-only baseline, no local predictor",
	},
	{
		Name: "perfect",
		Desc: "oracle repair: unbounded checkpoints, zero-cycle restore",
		Make: func(p Params) repair.Scheme { return repair.NewPerfect(p.Loop) },
	},
	{
		Name: "oracle",
		Desc: "never-mispredicting local predictor (Figure 4 upper bound)",
		Oracle: true,
		Make: func(p Params) repair.Scheme { return repair.NewPerfect(p.Loop) },
	},
	{
		Name: "none", Aliases: []string{"no-repair"},
		Desc: "speculative BHT never repaired (§2.7)",
		Make: func(p Params) repair.Scheme { return repair.NewNone(p.Loop) },
	},
	{
		Name: "retire", Aliases: []string{"retire-update"},
		Desc: "BHT updated only at retirement (§6.2)",
		Make: func(p Params) repair.Scheme { return repair.NewRetireUpdate(p.Loop) },
	},
	{
		Name: "snapshot",
		Desc: "full-BHT snapshot queue (SNAP-32-8-8)",
		prep: func(p *Params) { p.Ports = repair.Ports{CkptRead: 8, BHTWrite: 8} },
		Make: func(p Params) repair.Scheme {
			return repair.NewSnapshot(p.Loop, p.OBQEntries, p.Ports)
		},
	},
	{
		Name: "backward", Aliases: []string{"backward-walk"},
		Desc: "prior-art backward-walk history file (BWD-32-4-4)",
		prep: func(p *Params) { p.Ports = repair.Ports{CkptRead: 4, BHTWrite: 4} },
		Make: func(p Params) repair.Scheme {
			return repair.NewBackwardWalk(p.Loop, p.OBQEntries, p.Ports)
		},
	},
	{
		Name: "forward",
		Desc: "forward-walk OBQ without coalescing (FWD-32-4-2)",
		Make: func(p Params) repair.Scheme {
			return repair.NewForwardWalk(p.Loop, p.OBQEntries, p.Ports, p.Coalesce)
		},
	},
	{
		Name: "forward-coalesce", Aliases: []string{"forward-walk"},
		Desc: "forward-walk OBQ with same-PC coalescing (§3.1, paper headline)",
		prep: func(p *Params) { p.Coalesce = true },
		Make: func(p Params) repair.Scheme {
			return repair.NewForwardWalk(p.Loop, p.OBQEntries, p.Ports, p.Coalesce)
		},
	},
	{
		Name: "multistage",
		Desc: "two-stage split BHT, shared pattern table (§3.2)",
		Make: func(p Params) repair.Scheme {
			return repair.NewMultiStage(p.Loop, p.OBQEntries, p.SharedPT)
		},
	},
	{
		Name: "multistage-split",
		Desc: "two-stage split BHT with split pattern tables",
		prep: func(p *Params) { p.SharedPT = false },
		Make: func(p Params) repair.Scheme {
			return repair.NewMultiStage(p.Loop, p.OBQEntries, p.SharedPT)
		},
	},
	{
		Name: "limited", Aliases: []string{"limited-pc"},
		Desc: "limited-PC repair: PCs repaired per misprediction set by -pcs (§3.3)",
		Make: func(p Params) repair.Scheme {
			return repair.NewLimitedPC(p.Loop, p.PCs, p.WritePorts, p.Invalidate)
		},
	},
	{
		Name: "limited2",
		Desc: "limited-PC repair, 2 PCs, 2 write ports (§3.3)",
		prep: func(p *Params) { p.PCs, p.WritePorts = 2, 2 },
		Make: func(p Params) repair.Scheme {
			return repair.NewLimitedPC(p.Loop, p.PCs, p.WritePorts, p.Invalidate)
		},
	},
	{
		Name: "limited4",
		Desc: "limited-PC repair, 4 PCs, 4 write ports (§3.3)",
		Make: func(p Params) repair.Scheme {
			return repair.NewLimitedPC(p.Loop, p.PCs, p.WritePorts, p.Invalidate)
		},
	},
	{
		Name: "limited8",
		Desc: "limited-PC repair, 8 PCs, 4 write ports (§3.3)",
		prep: func(p *Params) { p.PCs = 8 },
		Make: func(p Params) repair.Scheme {
			return repair.NewLimitedPC(p.Loop, p.PCs, p.WritePorts, p.Invalidate)
		},
	},
	{
		Name: "yehpatt-forward", Aliases: []string{"yehpatt"},
		Desc: "generic Yeh-Patt two-level local predictor under forward-walk repair",
		prep: func(p *Params) { p.Coalesce = true },
		Make: func(p Params) repair.Scheme {
			return repair.NewForwardWalkFor(yehpatt.New(yehpatt.Default128()),
				p.OBQEntries, p.Ports, p.Coalesce)
		},
	},
}

// ByName finds a Def by canonical name or alias.
func ByName(name string) (*Def, bool) {
	for i := range registry {
		d := &registry[i]
		if d.Name == name {
			return d, true
		}
		for _, a := range d.Aliases {
			if a == name {
				return d, true
			}
		}
	}
	return nil, false
}

// Resolve looks up a scheme and computes its effective parameters:
// Defaults, then the Def's canonical prep, then caller options in order.
func Resolve(name string, opts ...Opt) (*Def, Params, error) {
	d, ok := ByName(name)
	if !ok {
		return nil, Params{}, fmt.Errorf(
			"unknown scheme %q (valid: %s)", name, strings.Join(Names(), ", "))
	}
	p := Defaults()
	if d.prep != nil {
		d.prep(&p)
	}
	for _, o := range opts {
		if o != nil {
			o(&p)
		}
	}
	return d, p, nil
}

// Build resolves a name and constructs the scheme (nil for the TAGE-only
// baseline) with its effective parameters.
func Build(name string, opts ...Opt) (repair.Scheme, *Def, error) {
	d, p, err := Resolve(name, opts...)
	if err != nil {
		return nil, nil, err
	}
	if d.Make == nil {
		return nil, d, nil
	}
	return d.Make(p), d, nil
}

// Names returns every canonical scheme name, sorted.
func Names() []string {
	out := make([]string, len(registry))
	for i := range registry {
		out[i] = registry[i].Name
	}
	sort.Strings(out)
	return out
}

// All returns the registry in presentation order.
func All() []*Def {
	out := make([]*Def, len(registry))
	for i := range registry {
		out[i] = &registry[i]
	}
	return out
}

// Usage renders a name → description table for CLI help text.
func Usage() string {
	var b strings.Builder
	for i := range registry {
		d := &registry[i]
		name := d.Name
		if len(d.Aliases) > 0 {
			name += " (" + strings.Join(d.Aliases, ", ") + ")"
		}
		fmt.Fprintf(&b, "  %-34s %s\n", name, d.Desc)
	}
	return b.String()
}
