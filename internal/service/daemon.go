package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"localbp"
	"localbp/internal/harness"
)

// Daemon defaults; DaemonConfig zero values resolve to these.
const (
	defaultQueueDepth = 64
	defaultDrainGrace = 30 * time.Second
)

// Daemon errors surfaced by Submit.
var (
	// ErrDraining rejects submissions once shutdown has begun.
	ErrDraining = errors.New("service: daemon is draining")
	// ErrQueueFull rejects submissions when the bounded queue is at capacity.
	ErrQueueFull = errors.New("service: job queue full")
)

// JobState is the lifecycle of one submitted job.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
)

// JobRequest describes one simulation to run.
type JobRequest struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Insts    int    `json:"insts"`
	// Seed overrides the workload's trace-generation seed; 0 keeps the
	// workload default.
	Seed int64 `json:"seed,omitempty"`
	// TimeoutSec caps this job's wall clock; 0 uses the daemon default, and
	// the daemon default is always an upper bound.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// JobView is the externally visible state of a job.
type JobView struct {
	ID       string          `json:"id"`
	State    JobState        `json:"state"`
	Request  JobRequest      `json:"request"`
	Attempts int             `json:"attempts,omitempty"`
	Error    string          `json:"error,omitempty"`
	Class    string          `json:"class,omitempty"` // retry classification of Error
	Result   *localbp.Result `json:"result,omitempty"`
	Queued   time.Time       `json:"queued"`
	Started  time.Time       `json:"started"`
	Finished time.Time       `json:"finished"`
}

type job struct {
	id       string
	req      JobRequest
	state    JobState
	attempts int
	err      error
	class    string
	result   *localbp.Result
	queued   time.Time
	started  time.Time
	finished time.Time
}

// DaemonConfig parameterizes NewDaemon. Zero values mean: one worker, a
// 64-deep queue, no per-job timeout cap, a 30 s drain grace, and no retries.
type DaemonConfig struct {
	// Workers is the number of concurrent job executors (min 1).
	Workers int
	// QueueDepth bounds the pending-job queue; Submit fails fast with
	// ErrQueueFull beyond it.
	QueueDepth int
	// JobTimeout caps each job's wall clock, including retries. Per-request
	// timeouts are clamped to it.
	JobTimeout time.Duration
	// DrainGrace bounds how long Run waits for in-flight and queued jobs
	// after shutdown begins; past it, remaining jobs are canceled.
	DrainGrace time.Duration
	// Retry is the per-job retry policy; the zero value runs each job once.
	Retry RetryPolicy
}

// Daemon is a minimal long-running simulation service: jobs are submitted
// over HTTP (or Submit), executed by a bounded worker pool under per-job
// timeouts and classified retry, and drained gracefully on shutdown.
type Daemon struct {
	cfg DaemonConfig

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for GET /jobs
	queue    chan *job
	draining bool
	nextID   int

	// execCtx governs job execution; execCancel fires when the drain grace
	// expires, aborting whatever is still running.
	execCtx    context.Context
	execCancel context.CancelFunc
}

// NewDaemon builds a daemon; call Run to start its workers.
func NewDaemon(cfg DaemonConfig) *Daemon {
	cfg.Workers = max(1, cfg.Workers)
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = defaultDrainGrace
	}
	execCtx, execCancel := context.WithCancel(context.Background())
	return &Daemon{
		cfg:        cfg,
		jobs:       map[string]*job{},
		queue:      make(chan *job, cfg.QueueDepth),
		execCtx:    execCtx,
		execCancel: execCancel,
	}
}

// Run executes jobs until ctx is canceled, then drains: no new submissions
// are accepted, queued and in-flight jobs get DrainGrace to finish, and
// whatever remains past the grace is canceled. Run returns once every worker
// has exited.
func (d *Daemon) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for range d.cfg.Workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range d.queue {
				d.execute(j)
			}
		}()
	}

	<-ctx.Done()
	d.mu.Lock()
	d.draining = true
	close(d.queue) // safe: Submit checks draining under the same lock
	d.mu.Unlock()

	grace := time.AfterFunc(d.cfg.DrainGrace, d.execCancel)
	wg.Wait()
	grace.Stop()
	d.execCancel()
}

// Submit validates and enqueues a job, returning its id. It fails fast with
// ErrDraining after shutdown has begun and ErrQueueFull when the queue is at
// capacity.
func (d *Daemon) Submit(req JobRequest) (string, error) {
	if _, ok := localbp.Workload(req.Workload); !ok {
		return "", fmt.Errorf("service: unknown workload %q", req.Workload)
	}
	if _, err := localbp.SchemeByName(req.Scheme); err != nil {
		return "", fmt.Errorf("service: unknown scheme %q", req.Scheme)
	}
	if req.Insts <= 0 {
		return "", fmt.Errorf("service: insts %d, want > 0", req.Insts)
	}
	if req.TimeoutSec < 0 {
		return "", fmt.Errorf("service: timeout_sec %g, want >= 0", req.TimeoutSec)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return "", ErrDraining
	}
	d.nextID++
	j := &job{
		id:     fmt.Sprintf("job-%04d", d.nextID),
		req:    req,
		state:  JobQueued,
		queued: time.Now(),
	}
	select {
	case d.queue <- j:
	default:
		d.nextID--
		return "", ErrQueueFull
	}
	d.jobs[j.id] = j
	d.order = append(d.order, j.id)
	return j.id, nil
}

// Job returns the visible state of one job.
func (d *Daemon) Job(id string) (JobView, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Jobs returns every job in submission order.
func (d *Daemon) Jobs() []JobView {
	d.mu.Lock()
	defer d.mu.Unlock()
	views := make([]JobView, 0, len(d.order))
	for _, id := range d.order {
		views = append(views, d.jobs[id].view())
	}
	return views
}

// view renders the job; callers hold d.mu.
func (j *job) view() JobView {
	v := JobView{
		ID:       j.id,
		State:    j.state,
		Request:  j.req,
		Attempts: j.attempts,
		Class:    j.class,
		Result:   j.result,
		Queued:   j.queued,
		Started:  j.started,
		Finished: j.finished,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

// jobTimeout resolves the effective wall-clock cap for a request: the
// per-request timeout clamped to the daemon-wide cap.
func (d *Daemon) jobTimeout(req JobRequest) time.Duration {
	t := d.cfg.JobTimeout
	if req.TimeoutSec > 0 {
		rt := time.Duration(req.TimeoutSec * float64(time.Second))
		if t <= 0 || rt < t {
			t = rt
		}
	}
	return t
}

// execute runs one job to completion under the daemon's execution context,
// the job's timeout and the retry policy.
func (d *Daemon) execute(j *job) {
	d.mu.Lock()
	j.state = JobRunning
	j.started = time.Now()
	d.mu.Unlock()

	jctx := d.execCtx
	var cancel context.CancelFunc
	if t := d.jobTimeout(j.req); t > 0 {
		jctx, cancel = context.WithTimeout(jctx, t)
		defer cancel()
	}

	var res localbp.Result
	attempts, err := d.cfg.Retry.Do(jctx, j.id, func(ctx context.Context) error {
		w, _ := localbp.Workload(j.req.Workload)
		s, serr := localbp.SchemeByName(j.req.Scheme)
		if serr != nil {
			return serr
		}
		opts := []localbp.Option{localbp.WithContext(ctx)}
		if j.req.Seed != 0 {
			opts = append(opts, localbp.WithSeed(j.req.Seed))
		}
		r, rerr := localbp.Simulate(w, j.req.Insts, s, opts...)
		if rerr == nil {
			res = r
		}
		return rerr
	})

	d.mu.Lock()
	defer d.mu.Unlock()
	j.attempts = attempts
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = JobDone
		j.result = &res
	case jctx.Err() != nil:
		j.state = JobCanceled
		j.err = err
		j.class = string(harness.ClassCanceled)
	default:
		j.state = JobFailed
		j.err = err
		j.class = string(classifyJob(err, attempts, d.cfg.Retry))
	}
}

// classifyJob folds the retry budget into the harness classification: a
// transient error that survived every attempt reports retry-exhausted.
func classifyJob(err error, attempts int, p RetryPolicy) string {
	c := harness.Classify(err)
	if c == harness.ClassTransient && attempts >= p.attempts() && p.attempts() > 1 {
		return string(harness.ClassExhausted)
	}
	return string(c)
}

// Handler returns the daemon's HTTP API:
//
//	POST /jobs             submit {workload, scheme, insts, seed?, timeout_sec?} → {id}
//	GET  /jobs             list all jobs
//	GET  /jobs/{id}        one job's state
//	GET  /jobs/{id}/result the result (409 until the job finishes)
//	GET  /healthz          liveness + drain state
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
			return
		}
		id, err := d.Submit(req)
		switch {
		case errors.Is(err, ErrDraining):
			httpError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrQueueFull):
			httpError(w, http.StatusTooManyRequests, err)
		case err != nil:
			httpError(w, http.StatusBadRequest, err)
		default:
			writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
		}
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := d.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		v, ok := d.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		switch v.State {
		case JobDone:
			writeJSON(w, http.StatusOK, v.Result)
		case JobFailed, JobCanceled:
			writeJSON(w, http.StatusOK, map[string]string{
				"state": string(v.State), "error": v.Error, "class": v.Class,
			})
		default:
			httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s", v.ID, v.State))
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		d.mu.Lock()
		draining := d.draining
		pending := len(d.queue)
		d.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{
			"ok": true, "draining": draining, "queued": pending,
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
