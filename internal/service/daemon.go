package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"localbp"
	"localbp/internal/harness"
	"localbp/internal/obs"
	"localbp/internal/schemes"
)

// Daemon defaults; DaemonConfig zero values resolve to these.
const (
	defaultQueueDepth       = 64
	defaultDrainGrace       = 30 * time.Second
	defaultRetryAfter       = 1 * time.Second
	defaultMemCheckInterval = 500 * time.Millisecond
	defaultProgressInsts    = 50_000
	defaultProgressInterval = 200 * time.Millisecond
	defaultHeartbeat        = 15 * time.Second
	defaultListLimit        = 100
)

// Daemon errors surfaced by Submit. The first four map to backpressure
// status codes over HTTP (429/503 with Retry-After); ErrJournal means the
// daemon could not make the submission durable and refused it (500).
var (
	// ErrDraining rejects submissions once shutdown has begun.
	ErrDraining = errors.New("service: daemon is draining")
	// ErrQueueFull rejects submissions when the bounded queue is at capacity.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClientSaturated rejects submissions from a client already at its
	// in-flight cap.
	ErrClientSaturated = errors.New("service: client in-flight cap reached")
	// ErrOverloaded rejects fresh submissions while the heap is above the
	// memory high-watermark (cache hits and coalesces are still served —
	// they admit no new work).
	ErrOverloaded = errors.New("service: memory high-watermark exceeded, shedding load")
	// ErrJournal rejects a submission the journal could not record: a job
	// the daemon accepted must survive a crash, so an append failure refuses
	// the work rather than holding it in memory only.
	ErrJournal = errors.New("service: journal append failed")
)

// JobState is the lifecycle of one submitted job.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
	// JobShed marks a queued job dropped by the memory load-shedder before
	// it ran; clients may resubmit once /readyz reports ready again.
	JobShed JobState = "shed"
)

// Terminal reports whether the state ends a job's lifecycle.
func (s JobState) Terminal() bool {
	switch s {
	case JobDone, JobFailed, JobCanceled, JobShed:
		return true
	}
	return false
}

// validState reports whether s names a known job state (for ?state= filters).
func validState(s string) bool {
	switch JobState(s) {
	case JobQueued, JobRunning, JobDone, JobFailed, JobCanceled, JobShed:
		return true
	}
	return false
}

// JobRequest describes one simulation to run.
type JobRequest struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	Insts    int    `json:"insts"`
	// Seed overrides the workload's trace-generation seed; 0 keeps the
	// workload default.
	Seed int64 `json:"seed,omitempty"`
	// TimeoutSec caps this job's wall clock; 0 uses the daemon default, and
	// the daemon default is always an upper bound.
	TimeoutSec float64 `json:"timeout_sec,omitempty"`
}

// jobKey canonicalizes a request into its result-cache key: a hash over the
// workload name, the canonical scheme name (aliases collapse), the
// instruction count, the effective seed, and the fully resolved scheme
// parameters. Requests that would produce bit-identical results share a key;
// TimeoutSec is an execution budget, not an identity, and is excluded.
func jobKey(req JobRequest) (string, error) {
	w, ok := localbp.Workload(req.Workload)
	if !ok {
		return "", fmt.Errorf("service: unknown workload %q", req.Workload)
	}
	def, params, err := schemes.Resolve(req.Scheme)
	if err != nil {
		return "", fmt.Errorf("service: unknown scheme %q", req.Scheme)
	}
	seed := req.Seed
	if seed == 0 {
		seed = w.Seed
	}
	material, err := json.Marshal(struct {
		Workload string         `json:"workload"`
		Scheme   string         `json:"scheme"`
		Insts    int            `json:"insts"`
		Seed     int64          `json:"seed"`
		Params   schemes.Params `json:"params"`
	}{w.Name, def.Name, req.Insts, seed, params})
	if err != nil {
		return "", fmt.Errorf("service: canonicalizing request: %w", err)
	}
	sum := sha256.Sum256(material)
	return hex.EncodeToString(sum[:16]), nil
}

// SubmitResult is the outcome of a submission: the job id plus whether the
// request was served from the result cache (a finished identical job) or
// coalesced onto an identical job already queued or running.
type SubmitResult struct {
	ID        string `json:"id"`
	Cached    bool   `json:"cached,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
}

// JobView is the externally visible state of a job.
type JobView struct {
	ID       string          `json:"id"`
	State    JobState        `json:"state"`
	Request  JobRequest      `json:"request"`
	Attempts int             `json:"attempts,omitempty"`
	Error    string          `json:"error,omitempty"`
	Class    string          `json:"class,omitempty"` // retry classification of Error
	Result   *localbp.Result `json:"result,omitempty"`
	// Progress is the retired-instruction count of the current attempt,
	// updated in batches while the job runs.
	Progress uint64    `json:"progress,omitempty"`
	Queued   time.Time `json:"queued"`
	Started  time.Time `json:"started"`
	Finished time.Time `json:"finished"`
}

type job struct {
	id       string
	req      JobRequest
	key      string // result-cache key
	client   string // submitter identity, for the in-flight cap
	state    JobState
	attempts int
	err      error
	class    string
	result   *localbp.Result
	queued   time.Time
	started  time.Time
	finished time.Time

	// progress is written by the simulation goroutine (batched) and read by
	// SSE subscribers and views without taking d.mu on the hot path.
	progress atomic.Uint64
	// subs are this job's SSE subscribers; guarded by d.mu.
	subs []*subscriber
}

// DaemonConfig parameterizes NewDaemon. Zero values mean: one worker, a
// 64-deep queue, no per-job timeout cap, a 30 s drain grace, no retries, no
// journal, no memory watermark and no per-client cap.
type DaemonConfig struct {
	// Workers is the number of concurrent job executors (min 1).
	Workers int
	// QueueDepth bounds the pending-job queue; Submit fails fast with
	// ErrQueueFull beyond it.
	QueueDepth int
	// JobTimeout caps each job's wall clock, including retries. Per-request
	// timeouts are clamped to it.
	JobTimeout time.Duration
	// DrainGrace bounds how long Run waits for in-flight and queued jobs
	// after shutdown begins; past it, remaining jobs are canceled.
	DrainGrace time.Duration
	// Retry is the per-job retry policy; the zero value runs each job once.
	Retry RetryPolicy

	// Journal is the durable job-journal path; "" runs without durability.
	// With a journal, a restarted daemon re-enqueues unfinished jobs and
	// serves finished results from the replay.
	Journal string
	// MemHighWater is the heap-bytes watermark; above it fresh submissions
	// are refused (ErrOverloaded) and the shedder drops the largest queued
	// jobs first. 0 disables memory-based admission and shedding.
	MemHighWater uint64
	// MemCheckInterval is the shedder's polling period (default 500 ms).
	MemCheckInterval time.Duration
	// ClientInflight caps one client's queued+running jobs; 0 is unlimited.
	ClientInflight int
	// RetryAfter is the backoff hint sent with 429/503 responses
	// (default 1 s).
	RetryAfter time.Duration

	// ProgressInsts batches progress updates: subscriber-visible commits
	// happen every ProgressInsts retired instructions (default 50 000)...
	ProgressInsts uint64
	// ProgressInterval ...or when this much time has passed since the last
	// commit (default 200 ms), whichever comes first.
	ProgressInterval time.Duration
	// Heartbeat is the SSE keep-alive comment period (default 15 s).
	Heartbeat time.Duration
}

// Daemon is a production-shaped simulation service: jobs are submitted over
// HTTP (or Submit), deduplicated through a single-flight result cache,
// journaled for crash durability, executed by a bounded worker pool under
// per-job timeouts and classified retry, shed under memory pressure, and
// drained gracefully on shutdown. Progress streams to SSE subscribers.
type Daemon struct {
	cfg DaemonConfig

	mu       sync.Mutex
	cond     *sync.Cond // signaled when pending grows or draining flips
	jobs     map[string]*job
	order    []string       // submission order, for GET /jobs
	pending  []*job         // FIFO queue; a slice so the shedder can remove
	byKey    map[string]*job // single-flight index: cache key → live/done job
	inflight map[string]int  // client → queued+running count
	draining bool
	nextID   int
	journal  *journal
	// journalErr is the first terminal-append failure: the daemon keeps
	// running (in-memory state is authoritative for this process) but
	// reports degraded durability through /healthz.
	journalErr error
	replay     replayNote

	// reg holds the service counters. obs.Counter increments are not
	// atomic, so every Inc happens under d.mu and every Snapshot goes
	// through Metrics, which also holds d.mu.
	reg *obs.Registry
	ctr struct {
		submitted, done, failed, canceled, shed *obs.Counter
		cacheHit, cacheMiss, coalesced          *obs.Counter
		rejQueue, rejClient, rejMemory          *obs.Counter
		journalErrs                             *obs.Counter
	}
	// retired is the daemon-lifetime retired-instruction total across all
	// jobs and attempts; atomic because the simulation goroutines add to it
	// outside d.mu.
	retired atomic.Uint64

	// readHeap probes live heap bytes; tests replace it to force shedding.
	readHeap func() uint64

	// execCtx governs job execution; execCancel fires when the drain grace
	// expires, aborting whatever is still running.
	execCtx    context.Context
	execCancel context.CancelFunc
}

// NewDaemon builds a daemon; call Run to start its workers. With a journal
// configured, the journal is replayed before NewDaemon returns: finished
// jobs are served from cache and unfinished ones re-enter the queue.
func NewDaemon(cfg DaemonConfig) (*Daemon, error) {
	cfg.Workers = max(1, cfg.Workers)
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = defaultDrainGrace
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = defaultRetryAfter
	}
	if cfg.MemCheckInterval <= 0 {
		cfg.MemCheckInterval = defaultMemCheckInterval
	}
	if cfg.ProgressInsts == 0 {
		cfg.ProgressInsts = defaultProgressInsts
	}
	if cfg.ProgressInterval <= 0 {
		cfg.ProgressInterval = defaultProgressInterval
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = defaultHeartbeat
	}
	execCtx, execCancel := context.WithCancel(context.Background())
	d := &Daemon{
		cfg:        cfg,
		jobs:       map[string]*job{},
		byKey:      map[string]*job{},
		inflight:   map[string]int{},
		reg:        obs.NewRegistry(),
		readHeap:   heapBytes,
		execCtx:    execCtx,
		execCancel: execCancel,
	}
	d.cond = sync.NewCond(&d.mu)
	d.ctr.submitted = d.reg.Counter("jobs.submitted")
	d.ctr.done = d.reg.Counter("jobs.done")
	d.ctr.failed = d.reg.Counter("jobs.failed")
	d.ctr.canceled = d.reg.Counter("jobs.canceled")
	d.ctr.shed = d.reg.Counter("jobs.shed")
	d.ctr.cacheHit = d.reg.Counter("cache.hit")
	d.ctr.cacheMiss = d.reg.Counter("cache.miss")
	d.ctr.coalesced = d.reg.Counter("cache.coalesced")
	d.ctr.rejQueue = d.reg.Counter("admit.reject.queue_full")
	d.ctr.rejClient = d.reg.Counter("admit.reject.client_cap")
	d.ctr.rejMemory = d.reg.Counter("admit.reject.memory")
	d.ctr.journalErrs = d.reg.Counter("journal.append_errors")
	// Sources are read by Metrics, which holds d.mu, so len(d.pending) is
	// safe to touch here.
	d.reg.AddSource("daemon", func(emit func(name string, v uint64)) {
		emit("insts_retired", d.retired.Load())
		emit("queue.pending", uint64(len(d.pending)))
	})

	if cfg.Journal != "" {
		jl, recs, note, err := openJournal(cfg.Journal)
		if err != nil {
			return nil, err
		}
		d.journal = jl
		d.replay = note
		d.applyReplay(recs)
		d.reg.Counter("journal.replayed_records").Add(uint64(note.Records))
		d.reg.Counter("journal.truncated_bytes").Add(uint64(note.Truncated))
	}
	return d, nil
}

// applyReplay rebuilds in-memory state from journal records: submit records
// create queued jobs, terminal records settle them, and whatever lacks a
// terminal record re-enters the pending queue exactly once.
func (d *Daemon) applyReplay(recs []journalRecord) {
	for _, rec := range recs {
		if rec.Op == opSubmit {
			if rec.Req == nil || rec.ID == "" || d.jobs[rec.ID] != nil {
				continue // damaged or duplicate submit; skip defensively
			}
			j := &job{
				id: rec.ID, req: *rec.Req, key: rec.Key, client: rec.Client,
				state: JobQueued, queued: rec.Time,
			}
			d.jobs[j.id] = j
			d.order = append(d.order, j.id)
			if n := idNumber(rec.ID); n > d.nextID {
				d.nextID = n
			}
			continue
		}
		j := d.jobs[rec.ID]
		if j == nil || j.state.Terminal() {
			continue
		}
		j.attempts = rec.Attempts
		j.finished = rec.Time
		j.class = rec.Class
		if rec.Error != "" {
			j.err = errors.New(rec.Error)
		}
		switch rec.Op {
		case opDone:
			j.state = JobDone
			j.result = rec.Result
			if rec.Result != nil {
				j.progress.Store(rec.Result.Insts)
			}
		case opFailed:
			j.state = JobFailed
		case opCanceled:
			j.state = JobCanceled
		case opShed:
			j.state = JobShed
		}
	}
	for _, id := range d.order {
		j := d.jobs[id]
		switch j.state {
		case JobQueued:
			d.pending = append(d.pending, j)
			d.inflight[j.client]++
			if j.key != "" {
				if cur := d.byKey[j.key]; cur == nil || cur.state != JobDone {
					d.byKey[j.key] = j
				}
			}
		case JobDone:
			if j.key != "" {
				d.byKey[j.key] = j
			}
		}
	}
}

// idNumber extracts the numeric suffix of a "job-%04d" id (0 when foreign).
func idNumber(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	if err != nil {
		return 0
	}
	return n
}

// ReplayStats reports what the journal replay recovered at startup: intact
// records applied and torn-tail bytes discarded.
func (d *Daemon) ReplayStats() (records int, truncatedBytes int64) {
	return d.replay.Records, d.replay.Truncated
}

// Run executes jobs until ctx is canceled, then drains: no new submissions
// are accepted, queued and in-flight jobs get DrainGrace to finish, and
// whatever remains past the grace is canceled. Run returns once every worker
// has exited and the journal is closed.
func (d *Daemon) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for range d.cfg.Workers {
		wg.Add(1)
		go d.worker(&wg)
	}
	shedCtx, shedStop := context.WithCancel(context.Background())
	var shedWG sync.WaitGroup
	if d.cfg.MemHighWater > 0 {
		shedWG.Add(1)
		go d.shedLoop(shedCtx, &shedWG)
	}

	<-ctx.Done()
	d.mu.Lock()
	d.draining = true
	d.mu.Unlock()
	d.cond.Broadcast()

	grace := time.AfterFunc(d.cfg.DrainGrace, d.execCancel)
	wg.Wait()
	grace.Stop()
	d.execCancel()
	shedStop()
	shedWG.Wait()

	d.mu.Lock()
	d.journal.Close()
	d.journal = nil
	d.mu.Unlock()
}

// worker pulls pending jobs until the queue is empty and the daemon is
// draining. During a drain the backlog still executes — DrainGrace, not the
// drain signal, is what finally cancels stragglers.
func (d *Daemon) worker(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		d.mu.Lock()
		for len(d.pending) == 0 && !d.draining {
			d.cond.Wait()
		}
		if len(d.pending) == 0 {
			d.mu.Unlock()
			return
		}
		j := d.pending[0]
		d.pending = d.pending[1:]
		j.state = JobRunning
		j.started = time.Now()
		d.publishLocked(j)
		d.mu.Unlock()
		d.execute(j)
	}
}

// Submit validates and enqueues a job for the given client, returning the
// job id. An identical finished job answers from cache; an identical queued
// or running job coalesces (both without admission cost). Fresh work is
// admission-controlled: ErrQueueFull, ErrClientSaturated and ErrOverloaded
// all mean "back off and retry", ErrDraining means the daemon is shutting
// down, and ErrJournal means the submission could not be made durable.
func (d *Daemon) Submit(req JobRequest, client string) (SubmitResult, error) {
	if req.Insts <= 0 {
		return SubmitResult{}, fmt.Errorf("service: insts %d, want > 0", req.Insts)
	}
	if req.TimeoutSec < 0 {
		return SubmitResult{}, fmt.Errorf("service: timeout_sec %g, want >= 0", req.TimeoutSec)
	}
	key, err := jobKey(req) // also validates workload and scheme
	if err != nil {
		return SubmitResult{}, err
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return SubmitResult{}, ErrDraining
	}

	if j := d.byKey[key]; j != nil {
		switch j.state {
		case JobDone:
			d.ctr.cacheHit.Inc()
			return SubmitResult{ID: j.id, Cached: true}, nil
		case JobQueued, JobRunning:
			d.ctr.coalesced.Inc()
			return SubmitResult{ID: j.id, Coalesced: true}, nil
		}
	}
	d.ctr.cacheMiss.Inc()

	// Admission control applies to fresh work only: hits and coalesces
	// above cost nothing, so they are served even under pressure.
	if len(d.pending) >= d.cfg.QueueDepth {
		d.ctr.rejQueue.Inc()
		return SubmitResult{}, ErrQueueFull
	}
	if cap := d.cfg.ClientInflight; cap > 0 && d.inflight[client] >= cap {
		d.ctr.rejClient.Inc()
		return SubmitResult{}, fmt.Errorf("%w (client %q, %d in flight)",
			ErrClientSaturated, client, d.inflight[client])
	}
	if hw := d.cfg.MemHighWater; hw > 0 && d.readHeap() > hw {
		d.ctr.rejMemory.Inc()
		return SubmitResult{}, ErrOverloaded
	}

	d.nextID++
	j := &job{
		id:     fmt.Sprintf("job-%04d", d.nextID),
		req:    req,
		key:    key,
		client: client,
		state:  JobQueued,
		queued: time.Now(),
	}
	// Durability before visibility: an accepted job must survive a crash,
	// so a journal failure refuses the submission outright.
	if aerr := d.journal.append(journalRecord{
		Op: opSubmit, ID: j.id, Time: j.queued, Req: &j.req, Key: key, Client: client,
	}); aerr != nil {
		d.nextID--
		d.noteJournalErrLocked(aerr)
		return SubmitResult{}, fmt.Errorf("%w: %v", ErrJournal, aerr)
	}
	d.jobs[j.id] = j
	d.order = append(d.order, j.id)
	d.pending = append(d.pending, j)
	d.byKey[key] = j
	d.inflight[client]++
	d.ctr.submitted.Inc()
	d.cond.Signal()
	return SubmitResult{ID: j.id}, nil
}

// Job returns the visible state of one job.
func (d *Daemon) Job(id string) (JobView, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return j.view(), true
}

// Jobs returns jobs in submission order, optionally filtered by state
// ("" matches all), capped at limit entries (<= 0 means uncapped), plus the
// total number of matching jobs regardless of the cap.
func (d *Daemon) Jobs(state JobState, limit int) ([]JobView, int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	views := []JobView{}
	total := 0
	for _, id := range d.order {
		j := d.jobs[id]
		if state != "" && j.state != state {
			continue
		}
		total++
		if limit <= 0 || len(views) < limit {
			views = append(views, j.view())
		}
	}
	return views, total
}

// Metrics snapshots the service counters. It holds d.mu for the duration so
// counter reads never race increments (obs counters are not atomic).
func (d *Daemon) Metrics() map[string]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reg.Snapshot()
}

// Health reports liveness: always "ok" while the process serves, plus drain
// state, backlog and any journal degradation.
func (d *Daemon) Health() map[string]any {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := map[string]any{"ok": true, "draining": d.draining, "queued": len(d.pending)}
	if d.journalErr != nil {
		h["journal_error"] = d.journalErr.Error()
	}
	return h
}

// Ready reports readiness for new work: not draining, queue below capacity,
// heap below the watermark. The detail map explains a false answer.
func (d *Daemon) Ready() (bool, map[string]any) {
	d.mu.Lock()
	draining := d.draining
	queued := len(d.pending)
	d.mu.Unlock()
	overMem := d.cfg.MemHighWater > 0 && d.readHeap() > d.cfg.MemHighWater
	ready := !draining && queued < d.cfg.QueueDepth && !overMem
	return ready, map[string]any{
		"ready": ready, "draining": draining, "queued": queued,
		"queue_depth": d.cfg.QueueDepth, "over_memory": overMem,
	}
}

// noteJournalErrLocked records a journal failure without stopping the
// daemon: in-memory state stays authoritative for this process, and the
// degradation is visible through /healthz and the error counter.
func (d *Daemon) noteJournalErrLocked(err error) {
	if d.journalErr == nil {
		d.journalErr = err
	}
	d.ctr.journalErrs.Inc()
}

// decInflightLocked releases one slot of a client's in-flight budget.
func (d *Daemon) decInflightLocked(client string) {
	if d.inflight[client] <= 1 {
		delete(d.inflight, client)
		return
	}
	d.inflight[client]--
}

// view renders the job; callers hold d.mu.
func (j *job) view() JobView {
	v := JobView{
		ID:       j.id,
		State:    j.state,
		Request:  j.req,
		Attempts: j.attempts,
		Class:    j.class,
		Result:   j.result,
		Progress: j.progress.Load(),
		Queued:   j.queued,
		Started:  j.started,
		Finished: j.finished,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	return v
}

// jobTimeout resolves the effective wall-clock cap for a request: the
// per-request timeout clamped to the daemon-wide cap.
func (d *Daemon) jobTimeout(req JobRequest) time.Duration {
	t := d.cfg.JobTimeout
	if req.TimeoutSec > 0 {
		rt := time.Duration(req.TimeoutSec * float64(time.Second))
		if t <= 0 || rt < t {
			t = rt
		}
	}
	return t
}

// execute runs one job to completion under the daemon's execution context,
// the job's timeout and the retry policy, streaming batched progress.
func (d *Daemon) execute(j *job) {
	jctx := d.execCtx
	var cancel context.CancelFunc
	if t := d.jobTimeout(j.req); t > 0 {
		jctx, cancel = context.WithTimeout(jctx, t)
		defer cancel()
	}

	var res localbp.Result
	attempts, err := d.cfg.Retry.Do(jctx, j.id, func(ctx context.Context) error {
		w, _ := localbp.Workload(j.req.Workload)
		s, serr := localbp.SchemeByName(j.req.Scheme)
		if serr != nil {
			return serr
		}
		// The per-stride progress hook runs on the simulation goroutine, so
		// it must stay cheap: deltas batch through an accumulator and only
		// committed batches touch atomics and wake subscribers. Per attempt,
		// so a retry restarts the visible count truthfully.
		var last uint64
		acc := obs.NewAccumulator(d.cfg.ProgressInsts, d.cfg.ProgressInterval,
			func(delta uint64) {
				d.retired.Add(delta)
				j.progress.Store(last)
				d.publish(j)
			})
		opts := []localbp.Option{
			localbp.WithContext(ctx),
			localbp.WithProgress(func(cum uint64) {
				if cum <= last {
					return
				}
				delta := cum - last
				last = cum
				acc.Add(delta)
			}),
		}
		if j.req.Seed != 0 {
			opts = append(opts, localbp.WithSeed(j.req.Seed))
		}
		r, rerr := localbp.Simulate(w, j.req.Insts, s, opts...)
		acc.Flush()
		if rerr == nil {
			res = r
		}
		return rerr
	})

	d.mu.Lock()
	defer d.mu.Unlock()
	j.attempts = attempts
	j.finished = time.Now()
	rec := journalRecord{ID: j.id, Time: j.finished, Attempts: attempts}
	switch {
	case err == nil:
		j.state = JobDone
		j.result = &res
		j.progress.Store(res.Insts)
		rec.Op = opDone
		rec.Result = j.result
		d.ctr.done.Inc()
	case jctx.Err() != nil:
		j.state = JobCanceled
		j.err = err
		j.class = string(harness.ClassCanceled)
		rec.Op = opCanceled
		rec.Error = j.err.Error()
		rec.Class = j.class
		d.ctr.canceled.Inc()
	default:
		j.state = JobFailed
		j.err = err
		j.class = string(classifyJob(err, attempts, d.cfg.Retry))
		rec.Op = opFailed
		rec.Error = j.err.Error()
		rec.Class = j.class
		d.ctr.failed.Inc()
	}
	// Only done jobs are cacheable; a failed or canceled single-flight
	// leader steps aside so the next identical submission runs fresh.
	if j.state != JobDone && d.byKey[j.key] == j {
		delete(d.byKey, j.key)
	}
	d.decInflightLocked(j.client)
	if aerr := d.journal.append(rec); aerr != nil {
		d.noteJournalErrLocked(aerr)
	}
	d.publishLocked(j)
}

// classifyJob folds the retry budget into the harness classification: a
// transient error that survived every attempt reports retry-exhausted.
func classifyJob(err error, attempts int, p RetryPolicy) string {
	c := harness.Classify(err)
	if c == harness.ClassTransient && attempts >= p.attempts() && p.attempts() > 1 {
		return string(harness.ClassExhausted)
	}
	return string(c)
}

// clientID derives the submitter identity for the in-flight cap: an explicit
// X-Client-ID header, else the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || host == "" {
		return r.RemoteAddr
	}
	return host
}

// Handler returns the daemon's HTTP API:
//
//	POST /jobs             submit {workload, scheme, insts, seed?, timeout_sec?}
//	                       → {id, cached?, coalesced?}; 200 on a cache hit,
//	                       202 otherwise; 429 + Retry-After under pressure
//	GET  /jobs             list jobs (?state= filter, ?limit= cap, default 100)
//	GET  /jobs/{id}        one job's state
//	GET  /jobs/{id}/result the result (409 until the job finishes)
//	GET  /jobs/{id}/events SSE stream of state transitions and progress
//	GET  /healthz          liveness (always 200 while serving)
//	GET  /readyz           readiness (503 while draining/saturated)
//	GET  /metrics          service counter snapshot
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var req JobRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
			return
		}
		res, err := d.Submit(req, clientID(r))
		switch {
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", d.retryAfterSeconds())
			httpError(w, http.StatusServiceUnavailable, err)
		case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClientSaturated),
			errors.Is(err, ErrOverloaded):
			w.Header().Set("Retry-After", d.retryAfterSeconds())
			httpError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrJournal):
			httpError(w, http.StatusInternalServerError, err)
		case err != nil:
			httpError(w, http.StatusBadRequest, err)
		case res.Cached:
			writeJSON(w, http.StatusOK, res)
		default:
			writeJSON(w, http.StatusAccepted, res)
		}
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		state := r.URL.Query().Get("state")
		if state != "" && !validState(state) {
			httpError(w, http.StatusBadRequest, fmt.Errorf("unknown state %q", state))
			return
		}
		limit := defaultListLimit
		if raw := r.URL.Query().Get("limit"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n <= 0 {
				httpError(w, http.StatusBadRequest, fmt.Errorf("limit %q, want a positive integer", raw))
				return
			}
			limit = n
		}
		views, total := d.Jobs(JobState(state), limit)
		writeJSON(w, http.StatusOK, map[string]any{"total": total, "jobs": views})
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := d.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		v, ok := d.Job(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		switch v.State {
		case JobDone:
			writeJSON(w, http.StatusOK, v.Result)
		case JobFailed, JobCanceled, JobShed:
			writeJSON(w, http.StatusOK, map[string]string{
				"state": string(v.State), "error": v.Error, "class": v.Class,
			})
		default:
			httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s", v.ID, v.State))
		}
	})
	mux.HandleFunc("GET /jobs/{id}/events", d.serveEvents)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Health())
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		ready, detail := d.Ready()
		code := http.StatusOK
		if !ready {
			code = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", d.retryAfterSeconds())
		}
		writeJSON(w, code, detail)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Metrics())
	})
	return mux
}

// retryAfterSeconds renders the Retry-After hint (whole seconds, min 1).
func (d *Daemon) retryAfterSeconds() string {
	return strconv.Itoa(max(1, int(d.cfg.RetryAfter/time.Second)))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
