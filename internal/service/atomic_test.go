package service

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestAtomicWriteFileUnwritableDir: a target whose directory cannot take the
// temp file fails up front with the path in the error — nothing is created
// and the writer callback never runs.
func TestAtomicWriteFileUnwritableDir(t *testing.T) {
	target := filepath.Join(t.TempDir(), "no-such-dir", "artifact.json")
	ran := false
	err := AtomicWriteFile(target, func(io.Writer) error {
		ran = true
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), target) {
		t.Fatalf("missing-dir write: err %v, want the target path in the error", err)
	}
	if ran {
		t.Fatal("writer ran although the temp file could not be created")
	}

	if os.Geteuid() == 0 {
		t.Log("running as root: permission-denied variant skipped (root ignores modes)")
		return
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o700)
	if err := AtomicWriteFile(filepath.Join(dir, "a.json"), func(io.Writer) error { return nil }); err == nil {
		t.Fatal("write into a read-only directory succeeded")
	}
}

// TestAtomicWriteFileFsyncFailure: a failed fsync aborts the write — the
// error surfaces, the target is never created and the temp file is cleaned
// up. "Written but not durable" must not look like success.
func TestAtomicWriteFileFsyncFailure(t *testing.T) {
	orig := fsync
	defer func() { fsync = orig }()
	fsync = func(*os.File) error { return os.ErrDeadlineExceeded }

	dir := t.TempDir()
	target := filepath.Join(dir, "artifact.json")
	err := AtomicWriteFile(target, func(w io.Writer) error {
		_, werr := w.Write([]byte("payload"))
		return werr
	})
	if err == nil || !strings.Contains(err.Error(), target) {
		t.Fatalf("fsync failure not surfaced with the path: %v", err)
	}
	if _, serr := os.Stat(target); !os.IsNotExist(serr) {
		t.Fatal("failed fsync still produced the target file")
	}
	entries, rerr := os.ReadDir(dir)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(entries) != 0 {
		t.Fatalf("temp litter left behind after fsync failure: %v", entries)
	}
}
