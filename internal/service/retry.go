package service

import (
	"context"
	"fmt"
	"hash/fnv"
	"time"

	"localbp/internal/harness"
)

// RetryPolicy is the classified retry policy of the service core: jittered
// exponential backoff with a max-attempts bound, applied only to
// ClassTransient failures (stalls, integrity trips, panics, injected chaos
// faults — see harness.Classify). Permanent failures and context
// cancellations return immediately.
//
// The jitter is deterministic: a splitmix64 stream seeded by (Seed, key,
// attempt) decides the delay, so the same job retried on the same policy
// sleeps the same schedule — reproducibility extends to the failure path.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget (first try included);
	// <= 0 means exactly one attempt (no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it, capped at MaxDelay. 0 retries immediately.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth; 0 means uncapped.
	MaxDelay time.Duration
	// Seed selects the deterministic jitter stream.
	Seed uint64
}

// DefaultRetryPolicy matches the lbpsweep/lbpd defaults: 3 attempts,
// 50 ms base, 2 s cap.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second, Seed: 1}
}

func (p RetryPolicy) attempts() int { return max(1, p.MaxAttempts) }

// Delay returns the backoff before retry `attempt` (1-based: the delay
// slept between the first and second attempt has attempt=1) of the job
// identified by key: BaseDelay·2^(attempt-1), capped at MaxDelay, scaled by
// a deterministic jitter factor in [0.5, 1.0).
func (p RetryPolicy) Delay(key string, attempt int) time.Duration {
	if attempt <= 0 || p.BaseDelay <= 0 {
		return 0
	}
	shift := min(attempt-1, 20) // 2^20 · base: far past any sane MaxDelay
	d := p.BaseDelay << shift
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	mix := splitmix64(p.Seed ^ h.Sum64() ^ uint64(attempt))
	frac := 0.5 + float64(mix>>11)/(1<<53)/2 // [0.5, 1.0)
	return time.Duration(float64(d) * frac)
}

// BackoffFunc adapts the policy to harness.Options.Backoff, keyed by
// spec × workload.
func (p RetryPolicy) BackoffFunc() func(spec, workload string, attempt int) time.Duration {
	return func(spec, workload string, attempt int) time.Duration {
		return p.Delay(spec+"\x00"+workload, attempt)
	}
}

// Do runs f under the policy: transient failures are retried with backoff
// until the attempt budget is spent; permanent failures and cancellations
// return at once. It reports how many attempts ran and the final error
// (nil on success).
func (p RetryPolicy) Do(ctx context.Context, key string, f func(ctx context.Context) error) (attempts int, err error) {
	budget := p.attempts()
	for a := 1; ; a++ {
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				err = fmt.Errorf("service: %s canceled before attempt %d: %w", key, a, cerr)
			}
			return a - 1, err
		}
		err = f(ctx)
		if err == nil {
			return a, nil
		}
		if harness.Classify(err) != harness.ClassTransient || a >= budget {
			return a, err
		}
		sleepCtx(ctx, p.Delay(key, a))
	}
}

// sleepCtx waits d or until ctx is canceled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// splitmix64 is the standard 64-bit finalizing mix (Vigna), the same
// stateless hash the chaos plan and fault injector use for deterministic
// randomness.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
