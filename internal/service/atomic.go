package service

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicWriteFile writes a file crash-safely: write produces the content
// into a temp file in the target's directory, which is fsynced and renamed
// over path. Readers never observe a partially written artifact — they see
// either the old file or the new one — and a crash mid-write leaves the
// target untouched. The CLI tools use this for every generated artifact
// (traces, baselines) so an interrupted run cannot leave a torn file that a
// later run silently consumes.
func AtomicWriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := fsync(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	return nil
}

// fsync is (*os.File).Sync behind a seam: a real fsync failure means the
// kernel could not promise durability and MUST surface to the caller — tests
// stub this to prove the error path is not swallowed (a torn artifact that
// "succeeded" is exactly the failure mode this package exists to prevent).
var fsync = (*os.File).Sync

