package service

import "localbp/internal/harness"

// The process exit codes shared by every CLI entry point. lbpsweep and the
// shard coordinator return them via SweepStatus / Report.Status; lbpsim maps
// its single run through ExitCodeForError; lbpd uses ExitOK (clean drain),
// ExitConfigError (configuration or HTTP-server fault) and ExitCanceled
// (jobs canceled past the drain grace). The numeric values are API: scripts
// and the coordinator's worker classification depend on them, and the
// table-driven test in exitcode_test.go pins every mapping.
const (
	// ExitOK: every requested unit of work succeeded.
	ExitOK = 0
	// ExitFailure: some work failed (a run, an experiment, a shard) but the
	// invocation itself was well-formed and produced partial output.
	ExitFailure = 1
	// ExitConfigError: the invocation never meaningfully started — bad
	// flags, unknown ids, checkpoint mismatch, lease contention.
	ExitConfigError = 2
	// ExitAllFailed: every attempted unit failed to produce output.
	ExitAllFailed = 3
	// ExitCanceled: the work was cut short by SIGINT/SIGTERM, a -timeout /
	// -deadline expiry, or a lost shard lease; completed work is durable
	// (checkpoints, journals) and the invocation can be resumed.
	ExitCanceled = 4
)

// ExitCodeForClass folds the harness retry taxonomy onto the exit codes:
// cancellation is resumable and distinguished (4); permanent, transient and
// retry-exhausted failures all surface as 1 — the taxonomy's finer grain
// lives in failure summaries and journals, not the exit status.
func ExitCodeForClass(c harness.ErrorClass) int {
	switch c {
	case "":
		return ExitOK
	case harness.ClassCanceled:
		return ExitCanceled
	default: // ClassPermanent, ClassTransient, ClassExhausted
		return ExitFailure
	}
}

// ExitCodeForError classifies err through harness.Classify and maps the
// class to an exit code. A nil error is ExitOK.
func ExitCodeForError(err error) int {
	return ExitCodeForClass(harness.Classify(err))
}
