package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"localbp"
)

// waitState polls until the job reaches a terminal state (or the wanted
// state) and returns the final view.
func waitState(t *testing.T, d *Daemon, id string, want JobState) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		v, ok := d.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if v.State == want || v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s waiting for %s", id, v.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDaemonCacheAndCoalesce: an identical in-flight submission coalesces
// onto the running job; an identical finished submission answers from cache;
// the counters record each path.
func TestDaemonCacheAndCoalesce(t *testing.T) {
	d, srv, _, _ := daemonFixture(t, DaemonConfig{Workers: 1})

	w := localbp.Workloads()[0]
	req := JobRequest{Workload: w.Name, Scheme: "forward-coalesce", Insts: 200_000}
	first, err := d.Submit(req, "a")
	if err != nil || first.Cached || first.Coalesced {
		t.Fatalf("first submit: %+v, %v", first, err)
	}
	dup, err := d.Submit(req, "b")
	if err != nil || !dup.Coalesced || dup.ID != first.ID {
		t.Fatalf("in-flight duplicate did not coalesce: %+v, %v", dup, err)
	}
	// Aliases canonicalize to the same key: "forward-walk" is an alias of
	// "forward-coalesce".
	alias, err := d.Submit(JobRequest{Workload: w.Name, Scheme: "forward-walk", Insts: 200_000}, "c")
	if err != nil || !alias.Coalesced || alias.ID != first.ID {
		t.Fatalf("alias did not coalesce: %+v, %v", alias, err)
	}

	done := waitState(t, d, first.ID, JobDone)
	if done.State != JobDone {
		t.Fatalf("job finished %s: %s", done.State, done.Error)
	}
	hit, err := d.Submit(req, "d")
	if err != nil || !hit.Cached || hit.ID != first.ID {
		t.Fatalf("finished duplicate did not hit cache: %+v, %v", hit, err)
	}
	// Over HTTP a cache hit answers 200, not 202.
	resp, sr := postJob(t, srv.URL, req)
	if resp.StatusCode != http.StatusOK || !sr.Cached || sr.ID != first.ID {
		t.Fatalf("HTTP cache hit: status %d, %+v", resp.StatusCode, sr)
	}
	// A different seed is different work, not a hit.
	fresh, err := d.Submit(JobRequest{Workload: w.Name, Scheme: "forward-coalesce",
		Insts: 200_000, Seed: 99}, "a")
	if err != nil || fresh.Cached || fresh.Coalesced || fresh.ID == first.ID {
		t.Fatalf("seed change still coalesced: %+v, %v", fresh, err)
	}

	m := d.Metrics()
	if m["cache.hit"] != 2 || m["cache.coalesced"] != 2 || m["cache.miss"] != 2 {
		t.Fatalf("cache counters: hit=%d coalesced=%d miss=%d",
			m["cache.hit"], m["cache.coalesced"], m["cache.miss"])
	}
}

// TestDaemonAdmission: a full queue answers 429 with Retry-After (never a
// hung connection), and a client at its in-flight cap is rejected while
// other clients are still admitted.
func TestDaemonAdmission(t *testing.T) {
	d, srv, _, _ := daemonFixture(t, DaemonConfig{
		Workers: 1, QueueDepth: 2, ClientInflight: 2,
		RetryAfter: 7 * time.Second,
	})

	w := localbp.Workloads()[0]
	// Occupy the worker, then fill the two queue slots with distinct work
	// from distinct clients so neither the cache nor the client cap fires
	// before the queue-full check.
	if _, err := d.Submit(JobRequest{Workload: w.Name, Scheme: "tage", Insts: 2_000_000}, "a"); err != nil {
		t.Fatal(err)
	}
	waitState(t, d, "job-0001", JobRunning)
	for i, client := range []string{"b", "c"} {
		if _, err := d.Submit(JobRequest{Workload: w.Name, Scheme: "tage",
			Insts: 2_000_000, Seed: int64(i + 10)}, client); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Submit(JobRequest{Workload: w.Name, Scheme: "tage",
		Insts: 2_000_000, Seed: 50}, "d"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	body := strings.NewReader(fmt.Sprintf(
		`{"workload":%q,"scheme":"tage","insts":2000000,"seed":51}`, w.Name))
	resp, err := client.Post(srv.URL+"/jobs", "application/json", body)
	if err != nil {
		t.Fatalf("429 path hung the connection: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "7" {
		t.Fatalf("Retry-After = %q, want %q", resp.Header.Get("Retry-After"), "7")
	}

	// Client cap: "a" has 1 in flight (running); one more reaches the cap
	// of 2, the next is rejected — while a fresh client is still admitted
	// once queue space exists. Here the queue is full, so instead assert the
	// cap on a daemon state level: drain one slot is racy, so use a second
	// fixture.
	d2, _, _, _ := daemonFixture(t, DaemonConfig{Workers: 1, QueueDepth: 64, ClientInflight: 2})
	if _, err := d2.Submit(JobRequest{Workload: w.Name, Scheme: "tage", Insts: 2_000_000}, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Submit(JobRequest{Workload: w.Name, Scheme: "tage",
		Insts: 2_000_000, Seed: 2}, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Submit(JobRequest{Workload: w.Name, Scheme: "tage",
		Insts: 2_000_000, Seed: 3}, "a"); !errors.Is(err, ErrClientSaturated) {
		t.Fatalf("over-cap submit: %v, want ErrClientSaturated", err)
	}
	if _, err := d2.Submit(JobRequest{Workload: w.Name, Scheme: "tage",
		Insts: 2_000_000, Seed: 3}, "other"); err != nil {
		t.Fatalf("other client rejected: %v", err)
	}
	m := d2.Metrics()
	if m["admit.reject.client_cap"] != 1 {
		t.Fatalf("client-cap rejections = %d, want 1", m["admit.reject.client_cap"])
	}
}

// TestDaemonMemoryShed: above the watermark, fresh submissions are refused
// and the shedder drops the largest queued jobs first until the
// instruction-weighted backlog halves; shed jobs are terminal, journaled,
// and release their client's in-flight slot.
func TestDaemonMemoryShed(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "jobs.journal")
	d, err := NewDaemon(DaemonConfig{
		Workers: 1, QueueDepth: 16, MemHighWater: 1 << 20, Journal: jpath,
	})
	if err != nil {
		t.Fatal(err)
	}
	var over atomic.Bool
	d.readHeap = func() uint64 {
		if over.Load() {
			return 2 << 20
		}
		return 0
	}

	// No Run: jobs stay queued so the shed decision is deterministic.
	w := localbp.Workloads()[0]
	sizes := []int{1000, 4000, 2000, 3000}
	ids := make([]string, len(sizes))
	for i, n := range sizes {
		sr, err := d.Submit(JobRequest{Workload: w.Name, Scheme: "tage",
			Insts: n, Seed: int64(i + 1)}, "cli")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = sr.ID
	}

	over.Store(true)
	if _, err := d.Submit(JobRequest{Workload: w.Name, Scheme: "tage",
		Insts: 500, Seed: 77}, "cli"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-watermark submit: %v, want ErrOverloaded", err)
	}

	// Backlog is 10 000 insts; halving sheds the 4000 then the 3000 job.
	if n := d.shedOverWatermark(); n != 2 {
		t.Fatalf("shed %d jobs, want 2", n)
	}
	wantStates := []JobState{JobQueued, JobShed, JobQueued, JobShed}
	for i, id := range ids {
		v, _ := d.Job(id)
		if v.State != wantStates[i] {
			t.Fatalf("job %s (%d insts): state %s, want %s", id, sizes[i], v.State, wantStates[i])
		}
		if v.State == JobShed && v.Error == "" {
			t.Fatalf("shed job %s carries no error", id)
		}
	}
	m := d.Metrics()
	if m["jobs.shed"] != 2 || m["admit.reject.memory"] != 1 {
		t.Fatalf("shed counters: shed=%d reject=%d", m["jobs.shed"], m["admit.reject.memory"])
	}

	// Shed decisions are durable: a replayed daemon sees them as terminal
	// and re-enqueues only the surviving queued jobs.
	d2, err := NewDaemon(DaemonConfig{Workers: 1, Journal: jpath})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		v, ok := d2.Job(id)
		if !ok || v.State != wantStates[i] {
			t.Fatalf("replayed job %s: state %s, want %s", id, v.State, wantStates[i])
		}
	}
	if views, total := d2.Jobs(JobQueued, 0); total != 2 || len(views) != 2 {
		t.Fatalf("replay re-enqueued %d jobs, want 2", total)
	}
}

// TestDaemonJournalRecovery: submissions journaled before a crash re-enter
// the queue on restart, finished results survive restarts bit-identically,
// and job ids never collide across epochs.
func TestDaemonJournalRecovery(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "jobs.journal")
	w := localbp.Workloads()[0]
	reqs := []JobRequest{
		{Workload: w.Name, Scheme: "tage", Insts: 2_000},
		{Workload: w.Name, Scheme: "forward-coalesce", Insts: 3_000},
		{Workload: w.Name, Scheme: "tage", Insts: 4_000},
	}

	// Epoch 1: accept three jobs, then "crash" before any of them runs
	// (Run is never called, so nothing executes and nothing settles).
	d1, err := NewDaemon(DaemonConfig{Workers: 2, Journal: jpath})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range reqs {
		if _, err := d1.Submit(req, "cli"); err != nil {
			t.Fatal(err)
		}
	}

	// Epoch 2: replay re-enqueues all three; run them to completion.
	d2, err := NewDaemon(DaemonConfig{Workers: 2, Journal: jpath})
	if err != nil {
		t.Fatal(err)
	}
	if records, _ := d2.ReplayStats(); records != 3 {
		t.Fatalf("replayed %d records, want 3", records)
	}
	if _, total := d2.Jobs(JobQueued, 0); total != 3 {
		t.Fatalf("%d jobs re-enqueued, want 3", total)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { d2.Run(ctx); close(done) }()
	results := map[string]string{}
	for i := range reqs {
		id := fmt.Sprintf("job-%04d", i+1)
		v := waitState(t, d2, id, JobDone)
		if v.State != JobDone {
			t.Fatalf("job %s finished %s: %s", id, v.State, v.Error)
		}
		b, _ := json.Marshal(v.Result)
		results[id] = string(b)
	}
	cancel()
	<-done

	// Epoch 3: everything replays as done; identical submissions hit the
	// cache and the stored results match epoch 2 byte for byte. A genuinely
	// new job continues the id sequence without reusing job-0001..0003.
	d3, err := NewDaemon(DaemonConfig{Workers: 2, Journal: jpath})
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		id := fmt.Sprintf("job-%04d", i+1)
		v, ok := d3.Job(id)
		if !ok || v.State != JobDone {
			t.Fatalf("job %s did not replay as done", id)
		}
		b, _ := json.Marshal(v.Result)
		if string(b) != results[id] {
			t.Fatalf("job %s result drifted across restart:\n%s\n%s", id, b, results[id])
		}
		sr, err := d3.Submit(req, "cli")
		if err != nil || !sr.Cached || sr.ID != id {
			t.Fatalf("resubmit of %s: %+v, %v", id, sr, err)
		}
	}
	sr, err := d3.Submit(JobRequest{Workload: w.Name, Scheme: "tage", Insts: 9_000}, "cli")
	if err != nil || sr.ID != "job-0004" {
		t.Fatalf("new job after replay: %+v, %v (want job-0004)", sr, err)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes the stream until a terminal state event or EOF.
func readSSE(t *testing.T, body *bufio.Scanner) []sseEvent {
	t.Helper()
	var events []sseEvent
	cur := ""
	for body.Scan() {
		line := body.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev := sseEvent{name: cur, data: strings.TrimPrefix(line, "data: ")}
			events = append(events, ev)
			if ev.name == "state" {
				var st stateEvent
				if err := json.Unmarshal([]byte(ev.data), &st); err != nil {
					t.Fatalf("bad state event %q: %v", ev.data, err)
				}
				if st.State.Terminal() {
					return events
				}
			}
		}
	}
	return events
}

// TestDaemonSSEStream: the events endpoint streams the state transitions of
// a job (queued → running → done), interleaved progress, and a terminal
// event that carries the result.
func TestDaemonSSEStream(t *testing.T) {
	d, srv, _, _ := daemonFixture(t, DaemonConfig{
		Workers: 1, ProgressInsts: 10_000, ProgressInterval: time.Millisecond,
		Heartbeat: 100 * time.Millisecond,
	})

	w := localbp.Workloads()[0]
	// A blocker occupies the single worker so the target job is observably
	// queued when the stream opens.
	if _, err := d.Submit(JobRequest{Workload: w.Name, Scheme: "tage", Insts: 1_000_000}, "blk"); err != nil {
		t.Fatal(err)
	}
	target, err := d.Submit(JobRequest{Workload: w.Name, Scheme: "forward-coalesce", Insts: 1_000_000}, "tgt")
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/jobs/"+target.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	events := readSSE(t, bufio.NewScanner(resp.Body))
	var states []JobState
	progress := 0
	var lastRetired uint64
	var final stateEvent
	for _, ev := range events {
		switch ev.name {
		case "state":
			var st stateEvent
			json.Unmarshal([]byte(ev.data), &st)
			states = append(states, st.State)
			final = st
		case "progress":
			var p progressEvent
			json.Unmarshal([]byte(ev.data), &p)
			if p.Retired < lastRetired {
				t.Fatalf("progress went backwards: %d after %d", p.Retired, lastRetired)
			}
			lastRetired = p.Retired
			progress++
		}
	}
	want := []JobState{JobQueued, JobRunning, JobDone}
	if len(states) != 3 || states[0] != want[0] || states[1] != want[1] || states[2] != want[2] {
		t.Fatalf("state sequence %v, want %v", states, want)
	}
	if progress == 0 {
		t.Fatal("no progress events streamed")
	}
	if final.Result == nil || final.Result.Insts == 0 {
		t.Fatalf("terminal event carries no result: %+v", final)
	}

	// Unknown jobs are a 404, not an empty stream.
	r404, err := http.Get(srv.URL + "/jobs/nope/events")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job stream: status %d", r404.StatusCode)
	}
}

// TestDaemonSSEStalledSubscriber: a subscriber that never reads its stream
// must not delay the job — publishes are non-blocking and the worker never
// waits on a slow consumer.
func TestDaemonSSEStalledSubscriber(t *testing.T) {
	d, srv, _, _ := daemonFixture(t, DaemonConfig{
		Workers: 1, ProgressInsts: 5_000, ProgressInterval: time.Millisecond,
		Heartbeat: 100 * time.Millisecond,
	})

	w := localbp.Workloads()[0]
	sr, err := d.Submit(JobRequest{Workload: w.Name, Scheme: "forward-coalesce", Insts: 1_000_000}, "cli")
	if err != nil {
		t.Fatal(err)
	}

	// Open the stream and never read from it; the transport buffers what
	// little the daemon writes and the job must still finish promptly.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/jobs/"+sr.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	v := waitState(t, d, sr.ID, JobDone)
	if v.State != JobDone {
		t.Fatalf("job finished %s with a stalled subscriber: %s", v.State, v.Error)
	}
	// A mid-stream disconnect must not disturb the daemon either: drop the
	// subscriber, then run another job to completion.
	cancel()
	sr2, err := d.Submit(JobRequest{Workload: w.Name, Scheme: "tage", Insts: 10_000}, "cli")
	if err != nil {
		t.Fatal(err)
	}
	if v := waitState(t, d, sr2.ID, JobDone); v.State != JobDone {
		t.Fatalf("post-disconnect job finished %s: %s", v.State, v.Error)
	}
}

// TestDaemonListFilterLimit: GET /jobs honours ?state= and ?limit=, reports
// the uncapped total, and rejects unknown states.
func TestDaemonListFilterLimit(t *testing.T) {
	d, srv, _, _ := daemonFixture(t, DaemonConfig{Workers: 1})

	w := localbp.Workloads()[0]
	for i := range 3 {
		if _, err := d.Submit(JobRequest{Workload: w.Name, Scheme: "tage",
			Insts: 2_000, Seed: int64(i + 1)}, "cli"); err != nil {
			t.Fatal(err)
		}
	}
	for i := range 3 {
		waitState(t, d, fmt.Sprintf("job-%04d", i+1), JobDone)
	}

	var list struct {
		Total int       `json:"total"`
		Jobs  []JobView `json:"jobs"`
	}
	get := func(q string) int {
		r, err := http.Get(srv.URL + "/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		list.Total, list.Jobs = 0, nil
		json.NewDecoder(r.Body).Decode(&list)
		return r.StatusCode
	}
	if code := get("?limit=2"); code != http.StatusOK || list.Total != 3 || len(list.Jobs) != 2 {
		t.Fatalf("limit=2: code %d total %d len %d", code, list.Total, len(list.Jobs))
	}
	if code := get("?state=done"); code != http.StatusOK || list.Total != 3 {
		t.Fatalf("state=done: code %d total %d", code, list.Total)
	}
	if code := get("?state=queued"); code != http.StatusOK || list.Total != 0 || len(list.Jobs) != 0 {
		t.Fatalf("state=queued: code %d total %d", code, list.Total)
	}
	if code := get("?state=bogus"); code != http.StatusBadRequest {
		t.Fatalf("state=bogus accepted: code %d", code)
	}
	if code := get("?limit=0"); code != http.StatusBadRequest {
		t.Fatalf("limit=0 accepted: code %d", code)
	}
}

// TestDaemonReadyz: /healthz stays 200 through a drain (the process is
// alive) while /readyz flips to 503 with Retry-After.
func TestDaemonReadyz(t *testing.T) {
	_, srv, cancel, done := daemonFixture(t, DaemonConfig{Workers: 1, DrainGrace: 5 * time.Second})

	get := func(path string) *http.Response {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return r
	}
	if r := get("/healthz"); r.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", r.StatusCode)
	}
	if r := get("/readyz"); r.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d", r.StatusCode)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not drain")
	}

	if r := get("/healthz"); r.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %d (liveness must not fail)", r.StatusCode)
	}
	r := get("/readyz")
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("readyz 503 lacks Retry-After")
	}
}
