package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"localbp"
	"localbp/internal/core"
	"localbp/internal/harness"
)

// TestRetryDelayDeterministic: the jitter is a pure function of
// (seed, key, attempt), bounded by [base/2, base) scaled into the
// exponential schedule and capped at MaxDelay.
func TestRetryDelayDeterministic(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Seed: 1}
	for attempt := 1; attempt <= 6; attempt++ {
		a := p.Delay("spec\x00workload", attempt)
		b := p.Delay("spec\x00workload", attempt)
		if a != b {
			t.Fatalf("attempt %d: delay not deterministic: %v then %v", attempt, a, b)
		}
		step := min(p.BaseDelay<<(attempt-1), p.MaxDelay)
		if a < step/2 || a >= step {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, a, step/2, step)
		}
	}
	if d := p.Delay("other-key", 1); d == p.Delay("spec\x00workload", 1) {
		t.Log("distinct keys drew the same jitter (possible but unlikely)")
	}
	if p.Delay("k", 0) != 0 {
		t.Fatal("attempt 0 should have no delay")
	}
	if (RetryPolicy{}).Delay("k", 3) != 0 {
		t.Fatal("zero policy should have no delay")
	}
}

// TestDoRetriesTransient: transient failures consume the attempt budget;
// permanent failures return on the first attempt; success stops retrying.
func TestDoRetriesTransient(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3} // no delays: BaseDelay 0
	ctx := context.Background()

	calls := 0
	attempts, err := p.Do(ctx, "recovers", func(context.Context) error {
		calls++
		if calls < 3 {
			return fmt.Errorf("wrapped: %w", core.ErrStalled)
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Fatalf("recovering transient: attempts=%d calls=%d err=%v", attempts, calls, err)
	}

	calls = 0
	attempts, err = p.Do(ctx, "exhausts", func(context.Context) error {
		calls++
		return fmt.Errorf("wrapped: %w", core.ErrStalled)
	})
	if err == nil || attempts != 3 || calls != 3 {
		t.Fatalf("exhausting transient: attempts=%d calls=%d err=%v", attempts, calls, err)
	}

	calls = 0
	permanent := errors.New("bad configuration")
	attempts, err = p.Do(ctx, "permanent", func(context.Context) error {
		calls++
		return permanent
	})
	if !errors.Is(err, permanent) || attempts != 1 || calls != 1 {
		t.Fatalf("permanent: attempts=%d calls=%d err=%v", attempts, calls, err)
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	attempts, err = p.Do(canceled, "canceled", func(context.Context) error {
		t.Fatal("f ran under a pre-canceled context")
		return nil
	})
	if err == nil || attempts != 0 {
		t.Fatalf("pre-canceled: attempts=%d err=%v", attempts, err)
	}
}

// TestRunSweepUnknownID: id validation is complete and fails before any
// simulation.
func TestRunSweepUnknownID(t *testing.T) {
	_, err := RunSweep(context.Background(), SweepConfig{
		Opts: harness.Options{Insts: 5_000, Quick: true},
		IDs:  []string{"table1", "nope", "fig99"},
	})
	if err == nil || !strings.Contains(err.Error(), "nope") || !strings.Contains(err.Error(), "fig99") {
		t.Fatalf("unknown ids not reported completely: %v", err)
	}
}

// TestRunSweepCheckpointReplay: a second run with the same checkpoint
// replays the stored output verbatim and reports it as replayed.
func TestRunSweepCheckpointReplay(t *testing.T) {
	ckpt := t.TempDir() + "/sweep.ckpt"
	cfg := SweepConfig{
		Opts:       harness.Options{Insts: 5_000, Quick: true},
		IDs:        []string{"table1", "table2"},
		Checkpoint: ckpt,
	}
	var first bytes.Buffer
	cfg.Out = &first
	rep, err := RunSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 2 || rep.Replayed != 0 || rep.Status() != SweepOK {
		t.Fatalf("first run: %+v status=%v", rep, rep.Status())
	}

	var second bytes.Buffer
	cfg.Out = &second
	rep, err = RunSweep(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 0 || rep.Replayed != 2 || rep.Status() != SweepOK {
		t.Fatalf("resumed run: %+v status=%v", rep, rep.Status())
	}
	if first.String() != second.String() {
		t.Fatalf("replayed output differs:\n--- first\n%s\n--- second\n%s", first.String(), second.String())
	}

	// Mismatched options must refuse the checkpoint, not silently mix results.
	bad := cfg
	bad.Opts.Insts = 9_999
	if _, err := RunSweep(context.Background(), bad); err == nil {
		t.Fatal("option-mismatched checkpoint accepted")
	}
}

// TestRunSweepInterrupted: a pre-canceled context yields SweepInterrupted
// without running anything.
func TestRunSweepInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunSweep(ctx, SweepConfig{
		Opts: harness.Options{Insts: 5_000, Quick: true},
		IDs:  []string{"table1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted || rep.Status() != SweepInterrupted {
		t.Fatalf("pre-canceled sweep: %+v status=%v", rep, rep.Status())
	}
}

// TestSweepStatusMapping pins the exit-code scheme.
func TestSweepStatusMapping(t *testing.T) {
	cases := []struct {
		rep  SweepReport
		want SweepStatus
	}{
		{SweepReport{Total: 2, Completed: 2}, SweepOK},
		{SweepReport{Total: 2, Completed: 1, Failed: 1}, SweepPartial},
		{SweepReport{Total: 2, Completed: 2, RunFailures: []*harness.RunError{{}}}, SweepPartial},
		{SweepReport{Total: 2, Failed: 2}, SweepAllFailed},
		{SweepReport{Total: 2, Replayed: 1, Failed: 1}, SweepPartial},
		{SweepReport{Total: 2, Completed: 1, Interrupted: true}, SweepInterrupted},
	}
	for i, c := range cases {
		if got := c.rep.Status(); got != c.want {
			t.Fatalf("case %d: status %v, want %v", i, got, c.want)
		}
	}
	if int(SweepInterrupted) != 4 || int(SweepAllFailed) != 3 || int(SweepConfigError) != 2 {
		t.Fatal("exit-code values drifted")
	}
}

// TestReportSummaryClasses: the sweep summary distinguishes permanent from
// retry-exhausted failures.
func TestReportSummaryClasses(t *testing.T) {
	rep := SweepReport{Total: 3, Completed: 3, RunFailures: []*harness.RunError{
		{Class: harness.ClassPermanent},
		{Class: harness.ClassPermanent},
		{Class: harness.ClassExhausted},
	}}
	s := rep.Summary()
	if !strings.Contains(s, "2 permanent") || !strings.Contains(s, "1 retry-exhausted") {
		t.Fatalf("summary does not break down classes: %q", s)
	}
}

// daemonFixture starts a daemon + HTTP test server; the cleanup cancels and
// waits for the drain.
func daemonFixture(t *testing.T, cfg DaemonConfig) (*Daemon, *httptest.Server, context.CancelFunc, chan struct{}) {
	t.Helper()
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { d.Run(ctx); close(done) }()
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(func() {
		srv.Close()
		cancel()
		<-done
	})
	return d, srv, cancel, done
}

func postJob(t *testing.T, url string, req JobRequest) (*http.Response, SubmitResult) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SubmitResult
	json.NewDecoder(resp.Body).Decode(&sr)
	return resp, sr
}

// TestDaemonJobLifecycle: submit → poll → result over the HTTP API.
func TestDaemonJobLifecycle(t *testing.T) {
	_, srv, _, _ := daemonFixture(t, DaemonConfig{Workers: 2, Retry: DefaultRetryPolicy()})

	w := localbp.Workloads()[0]
	resp, sr := postJob(t, srv.URL, JobRequest{Workload: w.Name, Scheme: "forward-coalesce", Insts: 5_000})
	if resp.StatusCode != http.StatusAccepted || sr.ID == "" {
		t.Fatalf("submit: status %d, body %+v", resp.StatusCode, sr)
	}
	id := sr.ID

	var view JobView
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(r.Body).Decode(&view)
		r.Body.Close()
		if view.State == JobDone || view.State == JobFailed || view.State == JobCanceled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", view.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.State != JobDone {
		t.Fatalf("job finished %s: %s", view.State, view.Error)
	}
	if view.Result == nil || view.Result.Insts == 0 || view.Attempts != 1 {
		t.Fatalf("done job carries no result: %+v", view)
	}

	r, err := http.Get(srv.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result endpoint: status %d", r.StatusCode)
	}
	var res localbp.Result
	if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.IPC == 0 {
		t.Fatalf("result empty: %+v", res)
	}
}

// TestDaemonValidation: bad submissions are rejected with 400 and never
// reach the queue.
func TestDaemonValidation(t *testing.T) {
	d, srv, _, _ := daemonFixture(t, DaemonConfig{Workers: 1})

	bad := []JobRequest{
		{Workload: "no-such-workload", Scheme: "forward-coalesce", Insts: 1000},
		{Workload: localbp.Workloads()[0].Name, Scheme: "no-such-scheme", Insts: 1000},
		{Workload: localbp.Workloads()[0].Name, Scheme: "forward-coalesce", Insts: 0},
	}
	for i, req := range bad {
		resp, _ := postJob(t, srv.URL, req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad request %d accepted: status %d", i, resp.StatusCode)
		}
	}
	if _, total := d.Jobs("", 0); total != 0 {
		t.Fatalf("%d invalid jobs reached the queue", total)
	}
	if _, ok := d.Job("job-0001"); ok {
		t.Fatal("phantom job exists")
	}
}

// TestDaemonDrain: after shutdown begins, submissions are rejected with
// ErrDraining (503 over HTTP) and Run returns once workers exit.
func TestDaemonDrain(t *testing.T) {
	d, srv, cancel, done := daemonFixture(t, DaemonConfig{Workers: 1, DrainGrace: 5 * time.Second})

	w := localbp.Workloads()[0]
	if _, err := d.Submit(JobRequest{Workload: w.Name, Scheme: "tage", Insts: 2_000}, "test"); err != nil {
		t.Fatal(err)
	}

	cancel()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not drain")
	}

	if _, err := d.Submit(JobRequest{Workload: w.Name, Scheme: "tage", Insts: 2_000}, "test"); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: %v, want ErrDraining", err)
	}
	resp, _ := postJob(t, srv.URL, JobRequest{Workload: w.Name, Scheme: "tage", Insts: 2_000})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain HTTP submit: status %d, want 503", resp.StatusCode)
	}

	// The queued job was drained, not dropped: it ran to a terminal state.
	views, _ := d.Jobs("", 0)
	for _, j := range views {
		if j.State == JobQueued || j.State == JobRunning {
			t.Fatalf("job %s left in state %s after drain", j.ID, j.State)
		}
	}
}

// TestDaemonJobTimeout: a job whose per-request timeout cannot possibly be
// met is canceled, and the cancellation classifies as such.
func TestDaemonJobTimeout(t *testing.T) {
	d, _, _, _ := daemonFixture(t, DaemonConfig{Workers: 1})

	w := localbp.Workloads()[0]
	sr, err := d.Submit(JobRequest{Workload: w.Name, Scheme: "forward-coalesce",
		Insts: 5_000_000, TimeoutSec: 0.001}, "test")
	if err != nil {
		t.Fatal(err)
	}
	id := sr.ID
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, ok := d.Job(id)
		if !ok {
			t.Fatal("job vanished")
		}
		if v.State == JobCanceled {
			if v.Class != string(harness.ClassCanceled) {
				t.Fatalf("canceled job classified %q", v.Class)
			}
			return
		}
		if v.State == JobDone || v.State == JobFailed {
			t.Fatalf("job finished %s despite 1ms budget for 5M insts", v.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", v.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAtomicWriteFile: content lands complete, a failed writer leaves no
// target and no temp litter.
func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/artifact.json"
	if err := AtomicWriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("read back %q, %v", got, err)
	}

	boom := errors.New("writer failed")
	if err := AtomicWriteFile(dir+"/never.json", func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("writer error swallowed: %v", err)
	}
	if _, err := os.Stat(dir + "/never.json"); !os.IsNotExist(err) {
		t.Fatal("failed write left a target file")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp litter left behind: %v", entries)
	}
}
