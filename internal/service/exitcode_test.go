package service

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"localbp/internal/audit"
	"localbp/internal/core"
	"localbp/internal/harness"
)

// TestExitCodeTaxonomy pins the documented 0/1/2/3/4 exit-code scheme
// against every layer that feeds it: the ErrorClass taxonomy, representative
// structured errors, and the SweepStatus folding. lbpsweep exits
// int(SweepStatus), lbpsim exits ExitCodeForError, the shard coordinator
// classifies worker exits by these values — drift in any of them is a
// breaking change and must fail here first.
func TestExitCodeTaxonomy(t *testing.T) {
	classes := []struct {
		class harness.ErrorClass
		want  int
	}{
		{"", ExitOK},
		{harness.ClassPermanent, ExitFailure},
		{harness.ClassTransient, ExitFailure},
		{harness.ClassExhausted, ExitFailure},
		{harness.ClassCanceled, ExitCanceled},
	}
	for _, tc := range classes {
		if got := ExitCodeForClass(tc.class); got != tc.want {
			t.Errorf("ExitCodeForClass(%q) = %d, want %d", tc.class, got, tc.want)
		}
	}

	errs := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, ExitOK},
		{"context.Canceled", context.Canceled, ExitCanceled},
		{"context.DeadlineExceeded", context.DeadlineExceeded, ExitCanceled},
		{"core.ErrCanceled", fmt.Errorf("run: %w", core.ErrCanceled), ExitCanceled},
		{"core.ErrStalled", fmt.Errorf("run: %w", core.ErrStalled), ExitFailure},
		{"audit.ErrIntegrity", fmt.Errorf("run: %w", audit.ErrIntegrity), ExitFailure},
		{"injected chaos fault", harness.ErrInjected, ExitFailure},
		{"validation failure", &harness.RunError{Phase: harness.PhaseValidate, Err: errors.New("bad cfg")}, ExitFailure},
		{"canceled before start", &harness.RunError{Phase: harness.PhaseCanceled, Err: context.Canceled}, ExitCanceled},
		{"unclassified", errors.New("mystery"), ExitFailure},
	}
	for _, tc := range errs {
		if got := ExitCodeForError(tc.err); got != tc.want {
			t.Errorf("ExitCodeForError(%s) = %d, want %d", tc.name, got, tc.want)
		}
	}

	// The sweep status values ARE the exit codes: lbpsweep and the shard
	// coordinator return int(status) directly.
	statuses := []struct {
		status SweepStatus
		want   int
	}{
		{SweepOK, ExitOK},
		{SweepPartial, ExitFailure},
		{SweepConfigError, ExitConfigError},
		{SweepAllFailed, ExitAllFailed},
		{SweepInterrupted, ExitCanceled},
	}
	for _, tc := range statuses {
		if int(tc.status) != tc.want {
			t.Errorf("int(%s) = %d, want %d", tc.status, int(tc.status), tc.want)
		}
	}
}
