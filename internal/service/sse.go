package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"localbp"
)

// SSE progress streaming. Each subscriber holds only a capacity-1 notify
// channel: publishers wake subscribers with a non-blocking send and the
// subscriber re-reads the job's current state (a coalescing snapshot). A
// stalled reader therefore costs O(1) memory, never back-pressures a worker,
// and is disconnected by the per-write deadline rather than by starving the
// daemon.

// subscriber is one SSE listener on one job.
type subscriber struct {
	notify chan struct{}
}

// wake nudges the subscriber; a full channel means a wake is already
// pending, and the eventual snapshot read covers this update too.
func (s *subscriber) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// publishLocked wakes every subscriber of j; callers hold d.mu.
func (d *Daemon) publishLocked(j *job) {
	for _, s := range j.subs {
		s.wake()
	}
}

// publish wakes every subscriber of j from outside the lock (the simulation
// goroutine's batched progress commits land here).
func (d *Daemon) publish(j *job) {
	d.mu.Lock()
	d.publishLocked(j)
	d.mu.Unlock()
}

// subscribe attaches a new subscriber to the job, returning false for an
// unknown id.
func (d *Daemon) subscribe(id string) (*job, *subscriber, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	j, ok := d.jobs[id]
	if !ok {
		return nil, nil, false
	}
	s := &subscriber{notify: make(chan struct{}, 1)}
	j.subs = append(j.subs, s)
	return j, s, true
}

// unsubscribe detaches s from j.
func (d *Daemon) unsubscribe(j *job, s *subscriber) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, cur := range j.subs {
		if cur == s {
			j.subs = append(j.subs[:i], j.subs[i+1:]...)
			return
		}
	}
}

// stateEvent is the payload of an SSE "state" event; terminal states carry
// the outcome so subscribers need no follow-up fetch.
type stateEvent struct {
	ID     string          `json:"id"`
	State  JobState        `json:"state"`
	Error  string          `json:"error,omitempty"`
	Class  string          `json:"class,omitempty"`
	Result *localbp.Result `json:"result,omitempty"`
}

// progressEvent is the payload of an SSE "progress" event.
type progressEvent struct {
	ID      string `json:"id"`
	Retired uint64 `json:"retired"`
}

// writeSSE emits one SSE frame: "event: <name>\ndata: <json>\n\n".
func writeSSE(w io.Writer, event string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// serveEvents streams a job's lifecycle as server-sent events:
//
//	event: state     {id, state, error?, class?, result?}
//	event: progress  {id, retired}
//	: heartbeat      (comment, every Heartbeat)
//
// The stream sends the current state immediately, then on every transition
// and progress commit, and closes after the terminal state event. Writes
// carry a deadline so a stalled reader is disconnected, never waited on.
func (d *Daemon) serveEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, sub, ok := d.subscribe(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	defer d.unsubscribe(j, sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	// A write may block for at most one heartbeat plus slack before the
	// subscriber is declared stalled and dropped.
	writeBudget := d.cfg.Heartbeat + 5*time.Second
	arm := func() {
		// Ignore the error: recorders without deadline support still get
		// correct frames, they just lose stall protection.
		rc.SetWriteDeadline(time.Now().Add(writeBudget))
	}

	heartbeat := time.NewTicker(d.cfg.Heartbeat)
	defer heartbeat.Stop()

	var lastState JobState
	var lastProgress uint64
	for {
		v, ok := d.Job(id)
		if !ok {
			return
		}
		arm()
		if v.State != lastState {
			lastState = v.State
			ev := stateEvent{ID: v.ID, State: v.State, Error: v.Error, Class: v.Class}
			if v.State.Terminal() {
				ev.Result = v.Result
			}
			if writeSSE(w, "state", ev) != nil {
				return
			}
		}
		if v.Progress != lastProgress {
			lastProgress = v.Progress
			if writeSSE(w, "progress", progressEvent{ID: v.ID, Retired: v.Progress}) != nil {
				return
			}
		}
		if rc.Flush() != nil {
			return
		}
		if v.State.Terminal() {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-sub.notify:
		case <-heartbeat.C:
			arm()
			if _, err := io.WriteString(w, ": heartbeat\n\n"); err != nil {
				return
			}
			if rc.Flush() != nil {
				return
			}
		}
	}
}
