package service

import (
	"bytes"
	"hash/crc32"
	"strconv"
)

// The LBPJRNL1 framing discipline: every record of an append-only journal is
// one self-verifying line,
//
//	<magic> <crc32c-hex> <payload-bytes> <payload>\n
//
// The length field pins torn appends (a crash mid-write truncates the
// payload), the CRC-32C catches bit rot that still parses, and decoding
// stops at the first damaged frame — every fully written record before it is
// trustworthy. The daemon's job journal and the shard coordinator's lease
// journals share this framing through EncodeFrame/DecodeFrames.

// Frame is one decoded journal record: its payload and the byte offset of
// the frame's first byte, so callers that must truncate damage (torn tails)
// know exactly where the valid prefix ends.
type Frame struct {
	Payload []byte
	Offset  int64
}

// EncodeFrame wraps payload in the LBPJRNL1 frame layout under the given
// magic. The payload must not contain a newline (JSON-encoded records never
// do): the frame terminator doubles as the record separator.
func EncodeFrame(magic string, payload []byte) []byte {
	frame := make([]byte, 0, len(magic)+len(payload)+24)
	frame = append(frame, magic...)
	frame = append(frame, ' ')
	frame = appendHex8(frame, crc32.Checksum(payload, crcTable))
	frame = append(frame, ' ')
	frame = strconv.AppendInt(frame, int64(len(payload)), 10)
	frame = append(frame, ' ')
	frame = append(frame, payload...)
	frame = append(frame, '\n')
	return frame
}

// appendHex8 appends v as exactly eight lowercase hex digits.
func appendHex8(dst []byte, v uint32) []byte {
	const digits = "0123456789abcdef"
	for shift := 28; shift >= 0; shift -= 4 {
		dst = append(dst, digits[(v>>shift)&0xf])
	}
	return dst
}

// DecodeFrames parses framed records from data, returning the intact prefix
// of frames and the byte offset up to which the stream is valid. Parsing
// stops at the first damaged frame (torn append, CRC mismatch, malformed or
// wrong-magic header) — everything before it is trustworthy, everything
// after is unreachable because the frame stream has lost sync.
func DecodeFrames(magic string, data []byte) (frames []Frame, valid int64) {
	off := int64(0)
	for int(off) < len(data) {
		rest := data[off:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			return frames, off // torn tail: no record terminator
		}
		line := rest[:nl]
		// Header: magic, crc hex, payload length — three space-separated
		// fields before the payload itself.
		p1 := bytes.IndexByte(line, ' ')
		if p1 < 0 || string(line[:p1]) != magic {
			return frames, off
		}
		p2 := bytes.IndexByte(line[p1+1:], ' ')
		if p2 < 0 {
			return frames, off
		}
		p2 += p1 + 1
		p3 := bytes.IndexByte(line[p2+1:], ' ')
		if p3 < 0 {
			return frames, off
		}
		p3 += p2 + 1
		wantCRC, err := strconv.ParseUint(string(line[p1+1:p2]), 16, 32)
		if err != nil {
			return frames, off
		}
		wantLen, err := strconv.Atoi(string(line[p2+1 : p3]))
		if err != nil {
			return frames, off
		}
		payload := line[p3+1:]
		if len(payload) != wantLen {
			return frames, off // torn append or embedded newline damage
		}
		if crc32.Checksum(payload, crcTable) != uint32(wantCRC) {
			return frames, off
		}
		frames = append(frames, Frame{Payload: payload, Offset: off})
		off += int64(nl) + 1
	}
	return frames, off
}
