package service

import (
	"context"
	"errors"
	"sync"
	"time"

	runtimemetrics "runtime/metrics"
)

// errShed is the error recorded on jobs dropped by the load shedder.
var errShed = errors.New("shed: dropped under memory pressure before running")

// heapBytes reads the live heap size from runtime/metrics. This is the
// default Daemon.readHeap; tests substitute a stub to force shedding
// deterministically.
func heapBytes() uint64 {
	samples := []runtimemetrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	runtimemetrics.Read(samples)
	if samples[0].Value.Kind() == runtimemetrics.KindUint64 {
		return samples[0].Value.Uint64()
	}
	return 0
}

// shedLoop polls the heap at MemCheckInterval and sheds when it exceeds the
// high-watermark. It runs for the daemon's whole lifetime (including the
// drain, when dropping backlog still relieves pressure).
func (d *Daemon) shedLoop(ctx context.Context, wg *sync.WaitGroup) {
	defer wg.Done()
	t := time.NewTicker(d.cfg.MemCheckInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			d.shedOverWatermark()
		}
	}
}

// shedOverWatermark drops queued jobs while the heap is over the watermark,
// largest (by requested instruction count) first — the jobs that would
// allocate the most trace memory — until the instruction-weighted backlog
// has halved. It acts on the backlog budget rather than re-reading the heap
// because dropping queued work cannot shrink the heap until the next GC.
// Returns the number of jobs shed.
func (d *Daemon) shedOverWatermark() int {
	if d.cfg.MemHighWater == 0 || d.readHeap() <= d.cfg.MemHighWater {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var total uint64
	for _, j := range d.pending {
		total += uint64(j.req.Insts)
	}
	target := total / 2
	shed := 0
	for total > target && len(d.pending) > 0 {
		bi := 0
		for i, j := range d.pending {
			if j.req.Insts > d.pending[bi].req.Insts {
				bi = i
			}
		}
		j := d.pending[bi]
		d.pending = append(d.pending[:bi], d.pending[bi+1:]...)
		total -= uint64(j.req.Insts)
		d.shedLocked(j)
		shed++
	}
	return shed
}

// shedLocked settles one queued job as shed: terminal state, journal record,
// counter, in-flight release, single-flight step-aside and subscriber wake.
// Callers hold d.mu and have already removed j from d.pending.
func (d *Daemon) shedLocked(j *job) {
	j.state = JobShed
	j.finished = time.Now()
	j.err = errShed
	d.ctr.shed.Inc()
	if d.byKey[j.key] == j {
		delete(d.byKey, j.key)
	}
	d.decInflightLocked(j.client)
	if err := d.journal.append(journalRecord{
		Op: opShed, ID: j.id, Time: j.finished, Error: j.err.Error(),
	}); err != nil {
		d.noteJournalErrLocked(err)
	}
	d.publishLocked(j)
}
