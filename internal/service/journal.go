package service

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"time"

	"localbp"
)

// The job journal is the daemon's durability layer: an append-only file of
// framed JSON records — one per job submission and one per terminal
// transition — replayed at startup so a restarted daemon re-enqueues
// unfinished jobs and keeps serving finished results. Each record is wrapped
// in the same CRC-32C envelope discipline as the sweep checkpoint (§13), but
// framed per record because the file only ever grows:
//
//	LBPJRNL1 <crc32c-hex> <payload-bytes> <payload-json>\n
//
// The length field pins torn appends (a crash mid-write truncates the
// payload), the CRC-32C catches bit rot that still parses, and replay
// truncates the file back to the last intact record — every fully fsynced
// record survives any crash, and a torn tail costs at most the record being
// written when the process died.
const journalMagic = "LBPJRNL1"

// journalOp discriminates journal records.
type journalOp string

const (
	opSubmit   journalOp = "submit"
	opDone     journalOp = "done"
	opFailed   journalOp = "failed"
	opCanceled journalOp = "canceled"
	opShed     journalOp = "shed"
)

// terminal reports whether the op ends a job's lifecycle.
func (op journalOp) terminal() bool { return op != opSubmit }

// journalRecord is one journal entry. Submit records carry the request, the
// cache key and the client identity; terminal records carry the outcome.
type journalRecord struct {
	Op   journalOp `json:"op"`
	ID   string    `json:"id"`
	Time time.Time `json:"time"`

	// Submit-only fields.
	Req    *JobRequest `json:"req,omitempty"`
	Key    string      `json:"key,omitempty"`
	Client string      `json:"client,omitempty"`

	// Terminal-only fields.
	Attempts int             `json:"attempts,omitempty"`
	Error    string          `json:"error,omitempty"`
	Class    string          `json:"class,omitempty"`
	Result   *localbp.Result `json:"result,omitempty"`
}

// journal is the append side: one open O_APPEND file, each record framed,
// written and fsynced under the mutex so records are totally ordered and a
// record reported as appended is durable.
type journal struct {
	path string
	f    *os.File
}

// replayNote describes what openJournal recovered, for the daemon's startup
// log ("" when the journal was clean).
type replayNote struct {
	Records   int   // intact records replayed
	Truncated int64 // bytes of torn tail discarded, 0 when clean
}

// openJournal replays the journal at path (creating it when missing),
// truncates any torn tail, and returns the append handle plus the intact
// records in append order.
func openJournal(path string) (*journal, []journalRecord, replayNote, error) {
	var note replayNote
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, note, fmt.Errorf("journal %s: %w", path, err)
	}

	recs, valid := decodeJournal(data)
	note.Records = len(recs)
	if valid < int64(len(data)) {
		// Torn or corrupt tail: truncate back to the last intact record so
		// the next append starts on a clean frame boundary. Records after
		// damage are unreachable anyway — the frame stream has lost sync.
		note.Truncated = int64(len(data)) - valid
		if err := os.Truncate(path, valid); err != nil {
			return nil, nil, note, fmt.Errorf("journal %s: truncating torn tail: %w", path, err)
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, note, fmt.Errorf("journal %s: %w", path, err)
	}
	return &journal{path: path, f: f}, recs, note, nil
}

// decodeJournal parses framed records from data, returning the intact prefix
// records and the byte offset up to which the file is valid. Framing damage
// (torn append, CRC mismatch, malformed header) is handled by DecodeFrames;
// a frame whose intact payload fails to unmarshal also ends the valid prefix
// — everything before it is trustworthy, everything after is discarded.
func decodeJournal(data []byte) (recs []journalRecord, valid int64) {
	frames, valid := DecodeFrames(journalMagic, data)
	for _, fr := range frames {
		var rec journalRecord
		if err := json.Unmarshal(fr.Payload, &rec); err != nil {
			return recs, fr.Offset
		}
		recs = append(recs, rec)
	}
	return recs, valid
}

// crcTable is the Castagnoli polynomial, matching the checkpoint envelope.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// append frames, writes and fsyncs one record. The caller serializes calls
// (the daemon appends under its mutex); a nil journal is a no-op so call
// sites need no durability conditionals.
func (jl *journal) append(rec journalRecord) error {
	if jl == nil {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal %s: %w", jl.path, err)
	}
	frame := EncodeFrame(journalMagic, payload)
	if _, err := jl.f.Write(frame); err != nil {
		return fmt.Errorf("journal %s: %w", jl.path, err)
	}
	if err := fsync(jl.f); err != nil {
		return fmt.Errorf("journal %s: fsync: %w", jl.path, err)
	}
	return nil
}

// Close releases the append handle; a nil journal is a no-op.
func (jl *journal) Close() error {
	if jl == nil {
		return nil
	}
	return jl.f.Close()
}
