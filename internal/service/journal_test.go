package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"localbp"
)

func mustAppend(t *testing.T, jl *journal, rec journalRecord) {
	t.Helper()
	if err := jl.append(rec); err != nil {
		t.Fatal(err)
	}
}

// TestJournalRoundTrip: appended records replay in order with full fidelity,
// across multiple open/append/close cycles.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	jl, recs, note, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || note.Truncated != 0 {
		t.Fatalf("fresh journal replayed %d records, note %+v", len(recs), note)
	}
	req := JobRequest{Workload: "cloud-compression", Scheme: "forward-coalesce", Insts: 5000}
	mustAppend(t, jl, journalRecord{Op: opSubmit, ID: "job-0001", Time: time.Now().UTC(),
		Req: &req, Key: "k1", Client: "c1"})
	mustAppend(t, jl, journalRecord{Op: opDone, ID: "job-0001", Attempts: 1,
		Result: &localbp.Result{Scheme: "forward-walk", IPC: 1.5, Cycles: 3333, Insts: 5000}})
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	jl2, recs, note, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if note.Truncated != 0 {
		t.Fatalf("clean journal reported truncation: %+v", note)
	}
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	if recs[0].Op != opSubmit || recs[0].ID != "job-0001" || recs[0].Req == nil ||
		recs[0].Req.Workload != req.Workload || recs[0].Key != "k1" || recs[0].Client != "c1" {
		t.Fatalf("submit record mangled: %+v", recs[0])
	}
	if recs[1].Op != opDone || recs[1].Result == nil || recs[1].Result.Cycles != 3333 {
		t.Fatalf("done record mangled: %+v", recs[1])
	}

	// The journal remains appendable after replay.
	mustAppend(t, jl2, journalRecord{Op: opSubmit, ID: "job-0002", Req: &req, Key: "k2"})
	_, recs, _, err = openJournal(path)
	if err != nil || len(recs) != 3 {
		t.Fatalf("post-replay append lost: %d records, %v", len(recs), err)
	}
}

// TestJournalTornTail: a partial trailing record (crash mid-append) is
// truncated on replay, losing only the torn record; subsequent appends land
// on a clean frame boundary.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	jl, _, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	req := JobRequest{Workload: "w", Scheme: "s", Insts: 1}
	mustAppend(t, jl, journalRecord{Op: opSubmit, ID: "job-0001", Req: &req})
	mustAppend(t, jl, journalRecord{Op: opSubmit, ID: "job-0002", Req: &req})
	jl.Close()

	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Crash scenarios: a half-written frame, then half-written with the
	// newline present (length mismatch), then a bit flip inside the payload.
	tears := map[string][]byte{
		"half-frame":      append(append([]byte{}, intact...), []byte("LBPJRNL1 00ab12")...),
		"short-payload":   append(append([]byte{}, intact...), []byte("LBPJRNL1 00ab12cd 500 {\"op\":\"submit\"}\n")...),
		"garbage":         append(append([]byte{}, intact...), []byte("not a frame at all\n")...),
		"payload-bitflip": flipLastPayloadByte(t, intact),
	}
	for name, data := range tears {
		p := filepath.Join(t.TempDir(), "torn.journal")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		jl, recs, note, err := openJournal(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantRecs := 2
		if name == "payload-bitflip" {
			wantRecs = 1 // the flipped record itself is discarded
		}
		if len(recs) != wantRecs {
			t.Fatalf("%s: replayed %d records, want %d", name, len(recs), wantRecs)
		}
		if note.Truncated == 0 {
			t.Fatalf("%s: no truncation reported", name)
		}
		// The file was physically truncated: appends resume cleanly.
		mustAppend(t, jl, journalRecord{Op: opSubmit, ID: "job-0003", Req: &req})
		jl.Close()
		_, recs, note, err = openJournal(p)
		if err != nil || len(recs) != wantRecs+1 || note.Truncated != 0 {
			t.Fatalf("%s: post-truncation journal unhealthy: %d records, note %+v, %v",
				name, len(recs), note, err)
		}
	}
}

// flipLastPayloadByte corrupts one byte inside the final record's payload
// (not its header), so the frame parses but the CRC must catch it.
func flipLastPayloadByte(t *testing.T, intact []byte) []byte {
	t.Helper()
	data := append([]byte{}, intact...)
	if len(data) < 4 {
		t.Fatal("journal too short to corrupt")
	}
	data[len(data)-4] ^= 0x40 // inside the trailing JSON payload
	return data
}

// TestJournalNilNoOp: a nil journal (durability disabled) accepts appends and
// close as no-ops so the daemon needs no conditionals at call sites.
func TestJournalNilNoOp(t *testing.T) {
	var jl *journal
	if err := jl.append(journalRecord{Op: opSubmit, ID: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalFsyncFailureSurfaced: an fsync error aborts the append with the
// cause in the chain — durability failures must never be silent.
func TestJournalFsyncFailureSurfaced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	jl, _, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()

	orig := fsync
	defer func() { fsync = orig }()
	fsync = func(*os.File) error { return os.ErrDeadlineExceeded }

	err = jl.append(journalRecord{Op: opSubmit, ID: "job-0001"})
	if err == nil || !strings.Contains(err.Error(), "fsync") {
		t.Fatalf("fsync failure not surfaced: %v", err)
	}
}
