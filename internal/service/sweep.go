// Package service is the cancellation-aware orchestration core: it lifts
// sweep execution, classified retry, checkpoint lifecycle and graceful
// shutdown out of the CLI mains so every entry point (lbpsweep, lbpd, tests)
// shares one hardened implementation. Everything here is context-first —
// cancellation propagates through the harness into the cycle loop within one
// check stride — and deterministic: retry jitter and chaos faults are drawn
// from seeded hashes, never the wall clock.
package service

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"localbp/internal/harness"
)

// SweepStatus is the terminal state of a sweep, ordered by severity so that
// int(status) is directly usable as a process exit code.
type SweepStatus int

const (
	// SweepOK: every selected experiment produced output, no run failures.
	SweepOK SweepStatus = 0
	// SweepPartial: at least one experiment produced output but some
	// experiments or workload runs failed.
	SweepPartial SweepStatus = 1
	// SweepConfigError: the sweep never started (unknown ids, checkpoint
	// mismatch, ...). RunSweep signals this by returning an error.
	SweepConfigError SweepStatus = 2
	// SweepAllFailed: every attempted experiment failed to produce output.
	SweepAllFailed SweepStatus = 3
	// SweepInterrupted: the context was canceled mid-sweep; completed
	// experiments are checkpointed, the rest remain pending.
	SweepInterrupted SweepStatus = 4
)

// String names the status for logs and summaries.
func (s SweepStatus) String() string {
	switch s {
	case SweepOK:
		return "ok"
	case SweepPartial:
		return "partial"
	case SweepConfigError:
		return "config-error"
	case SweepAllFailed:
		return "all-failed"
	case SweepInterrupted:
		return "interrupted"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// SweepConfig parameterizes RunSweep. Zero-value writers discard.
type SweepConfig struct {
	// Opts configures the underlying harness (instruction budget, retry
	// budget, per-run timeout, chaos plan, ...). When Opts.Retries > 0 and
	// no backoff is set, the default retry policy's jittered exponential
	// backoff is installed.
	Opts harness.Options
	// IDs selects experiments; empty means all, in paper order.
	IDs []string
	// Checkpoint, when non-empty, enables checkpoint/resume via this path.
	Checkpoint string
	// Out receives experiment outputs; Errs receives warnings and failure
	// summaries; Log, when non-nil, receives per-configuration progress.
	Out  io.Writer
	Errs io.Writer
	Log  io.Writer
}

// SweepReport is the outcome of one RunSweep invocation.
type SweepReport struct {
	Total       int                 // experiments selected
	Completed   int                 // experiments that produced output this run
	Replayed    int                 // experiments replayed from the checkpoint
	Failed      int                 // experiments whose aggregation failed outright
	RunFailures []*harness.RunError // classified workload-run failures (graceful degradation)
	Interrupted bool                // context canceled mid-sweep
	Note        string              // checkpoint recovery note, "" if none
}

// Status folds the report into the exit-code scheme.
func (r *SweepReport) Status() SweepStatus {
	switch {
	case r.Interrupted:
		return SweepInterrupted
	case r.Failed > 0 && r.Completed == 0 && r.Replayed == 0:
		return SweepAllFailed
	case r.Failed > 0 || len(r.RunFailures) > 0:
		return SweepPartial
	}
	return SweepOK
}

// Summary renders the one-line sweep outcome, e.g.
// "14/15 experiments ok (1 replayed), 1 failed; 3 workload runs failed
// (2 permanent, 1 retry-exhausted)".
func (r *SweepReport) Summary() string {
	ok := r.Completed + r.Replayed
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d experiments ok", ok, r.Total)
	if r.Replayed > 0 {
		fmt.Fprintf(&b, " (%d replayed from checkpoint)", r.Replayed)
	}
	if r.Failed > 0 {
		fmt.Fprintf(&b, ", %d failed", r.Failed)
	}
	if pending := r.Total - ok - r.Failed; pending > 0 && r.Interrupted {
		fmt.Fprintf(&b, ", %d pending (interrupted)", pending)
	}
	if n := len(r.RunFailures); n > 0 {
		fmt.Fprintf(&b, "; %d workload run(s) failed (%s)", n, classBreakdown(r.RunFailures))
	}
	return b.String()
}

// RunSweep executes the selected experiments with checkpoint/resume,
// classified retry and graceful cancellation. A non-nil error means the
// sweep could not be configured or a checkpoint flush failed
// (SweepConfigError territory); everything else — including run failures and
// interruption — is reported through the SweepReport.
func RunSweep(ctx context.Context, cfg SweepConfig) (*SweepReport, error) {
	out := cfg.Out
	if out == nil {
		out = io.Discard
	}
	errs := cfg.Errs
	if errs == nil {
		errs = io.Discard
	}

	ids := cfg.IDs
	if len(ids) == 0 {
		for _, e := range harness.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	// Validate every experiment id before running anything: a typo must
	// surface immediately and completely, not hours into a sweep.
	var unknown []string
	for _, id := range ids {
		if _, ok := harness.ExperimentByID(id); !ok {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("unknown experiment ids: %s (use -list)", strings.Join(unknown, ", "))
	}

	opts := cfg.Opts
	if opts.Retries > 0 && opts.Backoff == nil {
		opts.Backoff = DefaultRetryPolicy().BackoffFunc()
	}

	rep := &SweepReport{Total: len(ids)}
	var ck *harness.Checkpoint
	if cfg.Checkpoint != "" {
		loaded, err := harness.LoadCheckpoint(cfg.Checkpoint)
		if err != nil {
			return nil, err
		}
		ck = loaded
		if ck == nil {
			ck = harness.NewCheckpoint(opts)
		} else {
			if !ck.Matches(opts) {
				return nil, fmt.Errorf(
					"checkpoint %s was written with -insts %d -warmup %d -quick %v; rerun with those flags or delete it",
					cfg.Checkpoint, ck.Insts, ck.Warmup, ck.Quick)
			}
			if ck.Note != "" {
				rep.Note = ck.Note
				fmt.Fprintf(errs, "sweep: %s\n", ck.Note)
			}
		}
	}

	r := harness.NewRunner(opts)
	r.Log = cfg.Log

	reported := 0 // failures already attributed to earlier experiments
	for _, id := range ids {
		e, _ := harness.ExperimentByID(id)
		if ck != nil {
			if done, ok := ck.Done(id); ok {
				fmt.Fprintf(out, "== %s — %s (%.1fs)\n%s\n", e.ID, e.Title, done.Seconds, done.Output)
				rep.Replayed++
				continue
			}
		}
		if ctx.Err() != nil {
			rep.Interrupted = true
			break
		}
		t0 := time.Now()
		text, err := e.Run(ctx, r)
		secs := time.Since(t0).Seconds()
		if err != nil {
			if ctx.Err() != nil {
				// Cancellation surfaces as an aggregation error (workload
				// runs were cut short); it is interruption, not failure.
				rep.Interrupted = true
				fmt.Fprintf(errs, "sweep: interrupted during %s\n", e.ID)
				break
			}
			// Aggregation failed (for example mismatched result sets after a
			// partial sweep): skip this artifact, keep the sweep going.
			fmt.Fprintf(errs, "sweep: %s failed: %v\n", e.ID, err)
			rep.Failed++
			continue
		}

		// Graceful degradation: failures recorded during this experiment
		// (its own fresh specs; memoized specs reported where first run)
		// are appended to the experiment's output so they persist through
		// checkpoints and resumes.
		failures := r.Failures()
		if fresh := failures[reported:]; len(fresh) > 0 {
			var b strings.Builder
			fmt.Fprintf(&b, "!! %d workload run(s) failed (%s); aggregates above cover the remaining runs:\n",
				len(fresh), classBreakdown(fresh))
			for _, f := range fresh {
				fmt.Fprintf(&b, "!!   %s × %s [%s, %s", f.Workload, f.SpecLabel, f.Phase, f.Class)
				if f.Attempts > 1 {
					fmt.Fprintf(&b, " after %d attempts", f.Attempts)
				}
				fmt.Fprintf(&b, "]: %s\n", firstLine(f.Err.Error()))
			}
			text += "\n" + b.String()
			rep.RunFailures = append(rep.RunFailures, fresh...)
			reported = len(failures)
		}

		fmt.Fprintf(out, "== %s — %s (%.1fs)\n%s\n", e.ID, e.Title, secs, text)
		rep.Completed++

		if ck != nil {
			ck.Record(id, harness.ExperimentOutcome{Output: text, Seconds: secs})
			if err := ck.Save(cfg.Checkpoint); err != nil {
				return rep, err
			}
		}
	}
	return rep, nil
}

// classBreakdown renders failure counts by retry class in severity order,
// e.g. "2 permanent, 1 retry-exhausted".
func classBreakdown(failures []*harness.RunError) string {
	counts := map[harness.ErrorClass]int{}
	for _, f := range failures {
		counts[f.Class]++
	}
	var b strings.Builder
	for _, c := range []harness.ErrorClass{
		harness.ClassPermanent, harness.ClassExhausted, harness.ClassTransient, harness.ClassCanceled,
	} {
		if counts[c] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d %s", counts[c], c)
	}
	if b.Len() == 0 {
		return "unclassified"
	}
	return b.String()
}

// firstLine truncates multi-line error text (stall dumps, panic stacks) for
// failure summaries; full detail is available via the runner's progress log.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " ..."
	}
	return s
}
