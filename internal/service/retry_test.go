package service

import (
	"testing"
	"time"
)

// TestRetryDelayCap: the exponential schedule saturates at MaxDelay (jitter
// still applies below it), the doubling shift is clamped so absurd attempt
// numbers cannot overflow, and an uncapped policy keeps growing to the
// clamp.
func TestRetryDelayCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 100, BaseDelay: 100 * time.Millisecond,
		MaxDelay: time.Second, Seed: 7}
	// From attempt 5 on, 100ms·2^(a-1) exceeds the 1 s cap: every delay must
	// land in [cap/2, cap).
	for attempt := 5; attempt <= 70; attempt += 13 {
		d := p.Delay("k", attempt)
		if d < p.MaxDelay/2 || d >= p.MaxDelay {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d, p.MaxDelay/2, p.MaxDelay)
		}
	}

	// Uncapped: growth continues but the shift clamps at 2^20, so even
	// attempt 10_000 yields a finite, positive delay ≤ base·2^20.
	unc := RetryPolicy{MaxAttempts: 100, BaseDelay: time.Microsecond, Seed: 7}
	ceil := unc.BaseDelay << 20
	for _, attempt := range []int{21, 64, 10_000} {
		d := unc.Delay("k", attempt)
		if d <= 0 || d >= ceil {
			t.Fatalf("uncapped attempt %d: delay %v outside (0, %v)", attempt, d, ceil)
		}
	}
}

// TestRetryDelaySeedSensitivity: the jitter stream is a function of the
// policy seed — two policies differing only in Seed draw different schedules
// for the same key, while the same seed reproduces the schedule exactly.
func TestRetryDelaySeedSensitivity(t *testing.T) {
	a := RetryPolicy{MaxAttempts: 5, BaseDelay: 100 * time.Millisecond, MaxDelay: 10 * time.Second, Seed: 1}
	b := a
	b.Seed = 2

	same, differ := true, false
	for attempt := 1; attempt <= 5; attempt++ {
		da, db := a.Delay("job-0001", attempt), b.Delay("job-0001", attempt)
		if da != db {
			differ = true
		}
		if a.Delay("job-0001", attempt) != da {
			same = false
		}
	}
	if !differ {
		t.Fatal("seeds 1 and 2 drew identical 5-attempt schedules")
	}
	if !same {
		t.Fatal("repeated Delay calls with one seed disagreed")
	}
}
