// Package mem models the Table 2 memory hierarchy: private L1 (32KB, 8-way,
// 5 cycles) and L2 (256KB, 8-way, 15 cycles), a shared inclusive LLC (8MB,
// 16-way, 40 cycles) and DDR4-class main memory, with next-line/stride
// prefetchers enabled at every cache level.
//
// The model is a latency model: an access returns the cycle count to data
// return. Bandwidth contention is approximated by a per-level small busy
// penalty rather than full MSHR queueing — sufficient for the relative IPC
// effects the paper studies (branch repair), and documented in DESIGN.md.
package mem

import (
	"sync"

	"localbp/internal/obs"
)

// Config sizes one cache level.
type Config struct {
	SizeBytes int
	LineBytes int
	Ways      int
	Latency   int64
	Prefetch  bool
}

// Hierarchy is a three-level cache + DRAM latency model.
type Hierarchy struct {
	cfg         HierarchyConfig
	l1, l2, llc *cache
	dramLatency int64

	statAccesses uint64
	statL1Miss   uint64
	statL2Miss   uint64
	statLLCMiss  uint64
	statPrefHits uint64

	// Observability (nil when disabled; the nil checks are the entire
	// disabled-path cost).
	latHist *obs.Histogram
	tracer  *obs.Tracer
}

// HierarchyConfig bundles per-level configuration.
type HierarchyConfig struct {
	L1, L2, LLC Config
	DRAMLatency int64
}

// DefaultHierarchy returns the Table 2 configuration.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1:          Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, Latency: 5, Prefetch: true},
		L2:          Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, Latency: 15, Prefetch: true},
		LLC:         Config{SizeBytes: 8 << 20, LineBytes: 64, Ways: 16, Latency: 40, Prefetch: true},
		DRAMLatency: 170, // ~53ns on a 3.2GHz core, DDR4-2133 class
	}
}

// hierFree recycles hierarchies between runs (see Recycle). The metadata
// arrays of a warm hierarchy dominate a simulation's per-run allocation
// volume (~2 MB for the Table 2 LLC), and reusing them keeps the arrays
// resident in the host cache across back-to-back runs — the difference is
// directly visible in the core-loop benchmark. Deliberately a bounded
// free-list rather than a sync.Pool: pool contents drop at every GC, which
// would make a run's allocation count depend on GC timing and turn the
// fixed-budget alloc-guard tests into coin flips.
var hierFree struct {
	mu sync.Mutex
	hs []*Hierarchy
}

// hierFreeMax bounds the free-list (a worker pool recycles at most one
// hierarchy per worker between runs; 4 covers the common fan-out without
// pinning unbounded memory).
const hierFreeMax = 4

// New builds a hierarchy from cfg, reusing a recycled hierarchy when one
// with the same configuration is available.
func New(cfg HierarchyConfig) *Hierarchy {
	hierFree.mu.Lock()
	for i, h := range hierFree.hs {
		if h.cfg == cfg {
			n := len(hierFree.hs) - 1
			hierFree.hs[i] = hierFree.hs[n]
			hierFree.hs[n] = nil
			hierFree.hs = hierFree.hs[:n]
			hierFree.mu.Unlock()
			h.reset()
			return h
		}
	}
	hierFree.mu.Unlock()
	return &Hierarchy{
		cfg:         cfg,
		l1:          newCache(cfg.L1),
		l2:          newCache(cfg.L2),
		llc:         newCache(cfg.LLC),
		dramLatency: cfg.DRAMLatency,
	}
}

// Recycle resets the hierarchy and returns it to the free-list for a future
// New with the same configuration (dropped when the list is full). The
// caller must not use h afterwards. Safe for concurrent use (each Recycle
// hands over a distinct hierarchy).
func (h *Hierarchy) Recycle() {
	hierFree.mu.Lock()
	if len(hierFree.hs) < hierFreeMax {
		hierFree.hs = append(hierFree.hs, h)
	}
	hierFree.mu.Unlock()
}

// reset restores the just-built state without touching the dominant tag
// arrays: way validity lives in the stamps (stamp == 0 means empty) and hint
// validity in the hint keys (0 means untrained), so clearing those two — a
// third of the metadata — makes the stale tags and hint ways unreachable.
func (h *Hierarchy) reset() {
	h.l1.reset()
	h.l2.reset()
	h.llc.reset()
	h.statAccesses = 0
	h.statL1Miss = 0
	h.statL2Miss = 0
	h.statLLCMiss = 0
	h.statPrefHits = 0
	h.latHist = nil
	h.tracer = nil
}

// Access returns the load-to-use latency for addr. Stores are modeled with
// the same path (write-allocate).
func (h *Hierarchy) Access(addr uint64) int64 { return h.AccessAt(addr, -1) }

// AccessAt is Access with the issuing core cycle, used to timestamp trace
// events (prefetch hits). A negative cycle means "unknown".
func (h *Hierarchy) AccessAt(addr uint64, cycle int64) int64 {
	h.statAccesses++
	h.l1.streamDetect(addr, h)
	lat, level, wasPref := h.lookup(addr)
	if wasPref {
		h.statPrefHits++
		if h.tracer != nil {
			h.tracer.Emit(obs.EvPrefetchHit, cycle, addr, int64(level))
		}
	}
	if h.latHist != nil {
		h.latHist.Observe(lat)
	}
	return lat
}

// lookup walks the hierarchy for addr, returning the latency, the level that
// hit (1=L1, 2=L2, 3=LLC, 4=DRAM) and whether the hit line was brought in by
// a prefetcher and had not been demand-touched yet.
func (h *Hierarchy) lookup(addr uint64) (lat int64, level int, wasPref bool) {
	if hit, pref := h.l1.access(addr); hit {
		return h.l1.cfg.Latency, 1, pref
	}
	h.statL1Miss++
	h.l1.fill(addr)
	h.l1.prefetch(addr, h)
	if hit, pref := h.l2.access(addr); hit {
		return h.l1.cfg.Latency + h.l2.cfg.Latency, 2, pref
	}
	h.statL2Miss++
	h.l2.fill(addr)
	h.l2.prefetch(addr, h)
	if hit, pref := h.llc.access(addr); hit {
		return h.l1.cfg.Latency + h.l2.cfg.Latency + h.llc.cfg.Latency, 3, pref
	}
	h.statLLCMiss++
	h.llc.fill(addr)
	h.llc.prefetch(addr, h)
	return h.l1.cfg.Latency + h.l2.cfg.Latency + h.llc.cfg.Latency + h.dramLatency, 4, false
}

// AttachObs registers the hierarchy's counters as a pull source named "mem"
// and enables the access-latency histogram and prefetch-hit trace events.
func (h *Hierarchy) AttachObs(reg *obs.Registry, tr *obs.Tracer) {
	if reg != nil {
		reg.AddSource("mem", func(emit func(string, uint64)) {
			emit("accesses", h.statAccesses)
			emit("l1-misses", h.statL1Miss)
			emit("l2-misses", h.statL2Miss)
			emit("llc-misses", h.statLLCMiss)
			emit("prefetch-hits", h.statPrefHits)
		})
		h.latHist = reg.Histogram("mem.latency", obs.MemLatencyBuckets)
	}
	h.tracer = tr
}

// PrefetchHits returns demand accesses that hit a not-yet-touched
// prefetched line.
func (h *Hierarchy) PrefetchHits() uint64 { return h.statPrefHits }

// fillThrough inserts a prefetched line at the given level and below.
func (h *Hierarchy) fillThrough(level *cache, addr uint64) {
	switch level {
	case h.l1:
		h.l1.fillPref(addr)
		h.l2.fillPref(addr)
	case h.l2:
		h.l2.fillPref(addr)
		h.llc.fillPref(addr)
	case h.llc:
		h.llc.fillPref(addr)
	}
}

// Stats returns (accesses, l1Misses, l2Misses, llcMisses).
func (h *Hierarchy) Stats() (acc, l1m, l2m, llcm uint64) {
	return h.statAccesses, h.statL1Miss, h.statL2Miss, h.statLLCMiss
}

// MPKIBase returns L1 misses per access as a quick health metric for tests.
func (h *Hierarchy) MPKIBase() float64 {
	if h.statAccesses == 0 {
		return 0
	}
	return float64(h.statL1Miss) / float64(h.statAccesses)
}

// The per-way state is split into parallel arrays (tags / stamp / pref)
// rather than an array of structs: probes and fills scan only the tag array
// — one cache line covers 8 ways instead of two.
//
// LRU is kept as a per-way last-touch timestamp drawn from a per-cache
// clock instead of a per-set rank permutation: a touch is one store rather
// than a walk over all ways, and because stamps are unique within a set the
// recency ORDER — the only thing victim selection reads — is exactly the
// order the rank permutation encoded. Eviction decisions are bit-identical.
type cache struct {
	cfg      Config
	sets     int
	setMask  uint64
	lineBits uint
	tagShift uint // log2(sets), precomputed: index() runs on every probe
	tags     []uint64
	// stamp packs (last-touch time << 1 | pref bit) per way; stamp == 0
	// marks an empty way (a filled way's clock part is always >= 1), so the
	// zero value of both arrays IS the empty cache and newCache writes no
	// metadata at all — untouched sets never pull their pages into the host
	// cache. The clock part is unique within a set, so ordering stamps orders
	// recency exactly as a bare timestamp would regardless of the low bit.
	// The pref bit marks a line brought in by a prefetcher that no demand
	// access has touched yet; the first demand hit clears it (the touch
	// rewrites the whole word) and counts a prefetch hit.
	//
	// Stamps are 32-bit to halve the scan footprint; before the clock could
	// reach the width limit, renorm compresses every set's stamps to dense
	// ranks — an observable no-op, since victim selection and pref
	// classification only read within-set stamp order and the low bit.
	stamp []uint32
	clock uint32 // touch counter; always above every live stamp's clock part

	// stride prefetcher state: last miss line and stride per cache.
	lastMiss   uint64
	lastStride int64

	// stream detector: recently accessed lines; an access whose
	// predecessor line is present marks an active stream.
	recentLines [8]uint64
	recentPos   int

	// inserts counts lines actually written by fillInto. Presence is
	// monotone between inserts (nothing else evicts), which is what lets
	// streamDetect skip provably redundant re-prefetches.
	inserts uint64

	// Way hint: a direct-mapped line → way memo that turns the common
	// "line is present" probe into a single array load instead of an
	// associative scan over the (much larger) tag array. The hint is exact:
	// a matching key GUARANTEES the line is resident at hintWay[h]. The
	// invariant is maintained at the only point it could break — eviction:
	// when an insert displaces a valid line, the victim's own hint entry (if
	// it still points at that way) is cleared. Entries overwritten by
	// direct-mapped collisions simply stop matching. Probe results, LRU
	// updates and victim selection are bit-identical to the hint-free cache;
	// only the order of array reads changes.
	//
	// hintKey stores line+1 so the zero value means "untrained" (no real
	// line is all-ones: a line is addr >> lineBits); hintWay may then hold
	// anything until its key is set.
	hintKey  []uint64
	hintWay  []uint8
	hintMask uint64

	// streamDetect memo (used on the L1 only): the last line whose stream
	// prefetches were issued and the hierarchy-wide insert count right
	// after. While both match, the same prefetches would all no-op.
	lastStreamLine    uint64
	lastStreamInserts uint64
}

func newCache(cfg Config) *cache {
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	if sets&(sets-1) != 0 {
		panic("mem: cache set count must be a power of two")
	}
	lb := uint(0)
	for 1<<lb < cfg.LineBytes {
		lb++
	}
	hintSize := lines
	if hintSize > 8192 {
		hintSize = 8192 // cap the LLC hint; collisions only cost a scan
	}
	c := &cache{
		cfg:      cfg,
		sets:     sets,
		setMask:  uint64(sets - 1),
		lineBits: lb,
		tagShift: log2i(sets),
		tags:     make([]uint64, lines),
		stamp:    make([]uint32, lines),
		hintKey:  make([]uint64, hintSize),
		hintWay:  make([]uint8, hintSize),
		hintMask: uint64(hintSize - 1),
		// No real line number reaches 1<<63 (lines are addr>>lineBits), so
		// the memo can never match before its first genuine assignment.
		lastStreamLine: uint64(1) << 63,
	}
	return c
}

// renormAt triggers stamp renormalization well before clock<<1 could
// overflow 32 bits.
const renormAt = uint32(1) << 30

// renorm compresses every set's stamps to dense ranks (1..ways), preserving
// within-set recency order and the pref bits exactly. Only that order and the
// low bit are ever read (victim selection, pref classification), so renorm is
// observably a no-op; it runs once per ~2^30 touches.
func (c *cache) renorm() {
	ways := c.cfg.Ways
	var ord [64]int
	for s := 0; s < c.sets; s++ {
		base := s * ways
		n := 0
		for w := 0; w < ways; w++ {
			if c.stamp[base+w] == 0 {
				continue
			}
			i := n
			for i > 0 && c.stamp[base+ord[i-1]] > c.stamp[base+w] {
				ord[i] = ord[i-1]
				i--
			}
			ord[i] = w
			n++
		}
		for r := 0; r < n; r++ {
			w := ord[r]
			c.stamp[base+w] = uint32(r+1)<<1 | c.stamp[base+w]&1
		}
	}
	c.clock = uint32(ways) + 1
}

// reset clears the per-run cache state (see Hierarchy.reset for what may
// legitimately stay stale).
func (c *cache) reset() {
	for i := range c.stamp {
		c.stamp[i] = 0
	}
	for i := range c.hintKey {
		c.hintKey[i] = 0
	}
	c.clock = 0
	c.lastMiss = 0
	c.lastStride = 0
	c.recentLines = [8]uint64{}
	c.recentPos = 0
	c.inserts = 0
	c.lastStreamLine = uint64(1) << 63
	c.lastStreamInserts = 0
}

func log2i(n int) uint {
	k := uint(0)
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// access probes the cache, updating LRU on hit. The second result reports
// whether the hit line was an untouched prefetch.
func (c *cache) access(addr uint64) (hit, wasPref bool) {
	line := addr >> c.lineBits
	base := int(line&c.setMask) * c.cfg.Ways
	tag := line >> c.tagShift
	if h := line & c.hintMask; c.hintKey[h] == line+1 {
		w := int(c.hintWay[h])
		wasPref = c.stamp[base+w]&1 != 0
		c.touch(base, w) // rewrites the stamp word, clearing the pref bit
		return true, wasPref
	}
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == tag && c.stamp[base+w] != 0 {
			h := line & c.hintMask
			c.hintKey[h] = line + 1
			c.hintWay[h] = uint8(w)
			wasPref = c.stamp[base+w]&1 != 0
			c.touch(base, w)
			return true, wasPref
		}
	}
	return false, false
}

func (c *cache) touch(base, way int) {
	if c.clock >= renormAt {
		c.renorm()
	}
	c.clock++
	c.stamp[base+way] = c.clock << 1
}

// fill inserts addr's line on demand, evicting LRU.
func (c *cache) fill(addr uint64) { c.fillInto(addr, false) }

// fillPref inserts addr's line on behalf of a prefetcher.
func (c *cache) fillPref(addr uint64) { c.fillInto(addr, true) }

func (c *cache) fillInto(addr uint64, pref bool) {
	line := addr >> c.lineBits
	base := int(line&c.setMask) * c.cfg.Ways
	tag := line >> c.tagShift
	if c.hintKey[line&c.hintMask] == line+1 {
		// Line already present (the dominant case for prefetch-driven fills
		// behind a stream): same early return the scan below would take, with
		// no state touched.
		return
	}
	victim := 0
	for w := 0; w < c.cfg.Ways; w++ {
		st := c.stamp[base+w]
		if st == 0 {
			victim = w // empty way: first one wins, stop scanning
			break
		}
		if c.tags[base+w] == tag {
			return
		}
		if st < c.stamp[base+victim] {
			victim = w
		}
	}
	if c.stamp[base+victim] != 0 {
		// Evicting a valid line: retire its hint entry so the hint stays an
		// exact presence memo (a collision may already have replaced it; the
		// key+way check only clears the victim's own entry).
		oldLine := c.tags[base+victim]<<c.tagShift | line&c.setMask
		if oh := oldLine & c.hintMask; c.hintKey[oh] == oldLine+1 && int(c.hintWay[oh]) == victim {
			c.hintKey[oh] = 0
		}
	}
	c.tags[base+victim] = tag
	c.inserts++
	// Promote the fresh line to MRU, carrying the pref bit in the low bit.
	if c.clock >= renormAt {
		c.renorm()
	}
	c.clock++
	st := c.clock << 1
	if pref {
		st |= 1
	}
	c.stamp[base+victim] = st
	h := line & c.hintMask
	c.hintKey[h] = line + 1
	c.hintWay[h] = uint8(victim)
}

// prefetch issues stride-directed prefetches after a miss at this level.
// Degree 4 covers the window until the next miss-triggered activation, so a
// steady stream settles at one demand miss per four lines at most.
func (c *cache) prefetch(addr uint64, h *Hierarchy) {
	if !c.cfg.Prefetch {
		return
	}
	const degree = 4
	line := addr >> c.lineBits
	stride := int64(line) - int64(c.lastMiss)
	step := int64(1)
	if stride == c.lastStride && stride != 0 && abs64(stride) < 64 {
		step = stride
	}
	c.lastStride = stride
	c.lastMiss = line
	for d := int64(1); d <= degree; d++ {
		h.fillThrough(c, uint64(int64(line)+d*step)<<c.lineBits)
	}
}

// streamDetect runs on every access: when the previous line was touched
// recently (an ascending stream), it pulls the next lines into the whole
// hierarchy, keeping steady streams off the DRAM path the way an aggressive
// hardware streamer does. Random traffic rarely matches and causes no
// pollution.
func (c *cache) streamDetect(addr uint64, h *Hierarchy) {
	if !c.cfg.Prefetch {
		return
	}
	line := addr >> c.lineBits
	hit := false
	prev := line - 1
	for _, rl := range c.recentLines {
		if rl == prev {
			hit = true
			break
		}
	}
	c.recentLines[c.recentPos] = line
	c.recentPos = (c.recentPos + 1) & (len(c.recentLines) - 1)
	if !hit {
		return
	}
	// Sequential walks touch the same 64-byte line several times. After the
	// first trigger, lines line+1..line+3 are present at every level, and
	// they stay present as long as no insert has evicted anything — so with
	// the insert count unchanged, every fillPref below would early-return
	// and skipping them is exact.
	total := h.l1.inserts + h.l2.inserts + h.llc.inserts
	if line == c.lastStreamLine && total == c.lastStreamInserts {
		return
	}
	for d := uint64(1); d <= 3; d++ {
		a := (line + d) << c.lineBits
		h.l1.fillPref(a)
		h.l2.fillPref(a)
		h.llc.fillPref(a)
	}
	c.lastStreamLine = line
	c.lastStreamInserts = h.l1.inserts + h.l2.inserts + h.llc.inserts
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
