// Package mem models the Table 2 memory hierarchy: private L1 (32KB, 8-way,
// 5 cycles) and L2 (256KB, 8-way, 15 cycles), a shared inclusive LLC (8MB,
// 16-way, 40 cycles) and DDR4-class main memory, with next-line/stride
// prefetchers enabled at every cache level.
//
// The model is a latency model: an access returns the cycle count to data
// return. Bandwidth contention is approximated by a per-level small busy
// penalty rather than full MSHR queueing — sufficient for the relative IPC
// effects the paper studies (branch repair), and documented in DESIGN.md.
package mem

import "localbp/internal/obs"

// Config sizes one cache level.
type Config struct {
	SizeBytes int
	LineBytes int
	Ways      int
	Latency   int64
	Prefetch  bool
}

// Hierarchy is a three-level cache + DRAM latency model.
type Hierarchy struct {
	l1, l2, llc *cache
	dramLatency int64

	statAccesses uint64
	statL1Miss   uint64
	statL2Miss   uint64
	statLLCMiss  uint64
	statPrefHits uint64

	// Observability (nil when disabled; the nil checks are the entire
	// disabled-path cost).
	latHist *obs.Histogram
	tracer  *obs.Tracer
}

// HierarchyConfig bundles per-level configuration.
type HierarchyConfig struct {
	L1, L2, LLC Config
	DRAMLatency int64
}

// DefaultHierarchy returns the Table 2 configuration.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1:          Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, Latency: 5, Prefetch: true},
		L2:          Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, Latency: 15, Prefetch: true},
		LLC:         Config{SizeBytes: 8 << 20, LineBytes: 64, Ways: 16, Latency: 40, Prefetch: true},
		DRAMLatency: 170, // ~53ns on a 3.2GHz core, DDR4-2133 class
	}
}

// New builds a hierarchy from cfg.
func New(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		l1:          newCache(cfg.L1),
		l2:          newCache(cfg.L2),
		llc:         newCache(cfg.LLC),
		dramLatency: cfg.DRAMLatency,
	}
}

// Access returns the load-to-use latency for addr. Stores are modeled with
// the same path (write-allocate).
func (h *Hierarchy) Access(addr uint64) int64 { return h.AccessAt(addr, -1) }

// AccessAt is Access with the issuing core cycle, used to timestamp trace
// events (prefetch hits). A negative cycle means "unknown".
func (h *Hierarchy) AccessAt(addr uint64, cycle int64) int64 {
	h.statAccesses++
	h.l1.streamDetect(addr, h)
	lat, level, wasPref := h.lookup(addr)
	if wasPref {
		h.statPrefHits++
		if h.tracer != nil {
			h.tracer.Emit(obs.EvPrefetchHit, cycle, addr, int64(level))
		}
	}
	if h.latHist != nil {
		h.latHist.Observe(lat)
	}
	return lat
}

// lookup walks the hierarchy for addr, returning the latency, the level that
// hit (1=L1, 2=L2, 3=LLC, 4=DRAM) and whether the hit line was brought in by
// a prefetcher and had not been demand-touched yet.
func (h *Hierarchy) lookup(addr uint64) (lat int64, level int, wasPref bool) {
	if hit, pref := h.l1.access(addr); hit {
		return h.l1.cfg.Latency, 1, pref
	}
	h.statL1Miss++
	h.l1.fill(addr)
	h.l1.prefetch(addr, h)
	if hit, pref := h.l2.access(addr); hit {
		return h.l1.cfg.Latency + h.l2.cfg.Latency, 2, pref
	}
	h.statL2Miss++
	h.l2.fill(addr)
	h.l2.prefetch(addr, h)
	if hit, pref := h.llc.access(addr); hit {
		return h.l1.cfg.Latency + h.l2.cfg.Latency + h.llc.cfg.Latency, 3, pref
	}
	h.statLLCMiss++
	h.llc.fill(addr)
	h.llc.prefetch(addr, h)
	return h.l1.cfg.Latency + h.l2.cfg.Latency + h.llc.cfg.Latency + h.dramLatency, 4, false
}

// AttachObs registers the hierarchy's counters as a pull source named "mem"
// and enables the access-latency histogram and prefetch-hit trace events.
func (h *Hierarchy) AttachObs(reg *obs.Registry, tr *obs.Tracer) {
	if reg != nil {
		reg.AddSource("mem", func(emit func(string, uint64)) {
			emit("accesses", h.statAccesses)
			emit("l1-misses", h.statL1Miss)
			emit("l2-misses", h.statL2Miss)
			emit("llc-misses", h.statLLCMiss)
			emit("prefetch-hits", h.statPrefHits)
		})
		h.latHist = reg.Histogram("mem.latency", obs.MemLatencyBuckets)
	}
	h.tracer = tr
}

// PrefetchHits returns demand accesses that hit a not-yet-touched
// prefetched line.
func (h *Hierarchy) PrefetchHits() uint64 { return h.statPrefHits }

// fillThrough inserts a prefetched line at the given level and below.
func (h *Hierarchy) fillThrough(level *cache, addr uint64) {
	switch level {
	case h.l1:
		h.l1.fillPref(addr)
		h.l2.fillPref(addr)
	case h.l2:
		h.l2.fillPref(addr)
		h.llc.fillPref(addr)
	case h.llc:
		h.llc.fillPref(addr)
	}
}

// Stats returns (accesses, l1Misses, l2Misses, llcMisses).
func (h *Hierarchy) Stats() (acc, l1m, l2m, llcm uint64) {
	return h.statAccesses, h.statL1Miss, h.statL2Miss, h.statLLCMiss
}

// MPKIBase returns L1 misses per access as a quick health metric for tests.
func (h *Hierarchy) MPKIBase() float64 {
	if h.statAccesses == 0 {
		return 0
	}
	return float64(h.statL1Miss) / float64(h.statAccesses)
}

// invalidTag marks an empty way. No real tag can collide with it: a tag is
// addr >> (lineBits + tagShift), so even a full 64-bit address leaves the top
// lineBits+tagShift bits clear and every real tag is far below 1<<63.
const invalidTag = uint64(1) << 63

// The per-way state is split into parallel arrays (tags / stamp / pref)
// rather than an array of structs: probes and fills scan only the tag array
// — one cache line covers 8 ways instead of two.
//
// LRU is kept as a per-way last-touch timestamp drawn from a per-cache
// clock instead of a per-set rank permutation: a touch is one store rather
// than a walk over all ways, and because stamps are unique within a set the
// recency ORDER — the only thing victim selection reads — is exactly the
// order the rank permutation encoded. Eviction decisions are bit-identical.
type cache struct {
	cfg      Config
	sets     int
	setMask  uint64
	lineBits uint
	tagShift uint // log2(sets), precomputed: index() runs on every probe
	tags     []uint64
	stamp    []uint64 // last-touch time per way; lower = older
	clock    uint64   // touch counter; always above every live stamp
	// pref marks a line brought in by a prefetcher that no demand access has
	// touched yet; the first demand hit clears it and counts a prefetch hit.
	pref []bool

	// stride prefetcher state: last miss line and stride per cache.
	lastMiss   uint64
	lastStride int64

	// stream detector: recently accessed lines; an access whose
	// predecessor line is present marks an active stream.
	recentLines [8]uint64
	recentPos   int

	// inserts counts lines actually written by fillInto. Presence is
	// monotone between inserts (nothing else evicts), which is what lets
	// streamDetect skip provably redundant re-prefetches.
	inserts uint64

	// streamDetect memo (used on the L1 only): the last line whose stream
	// prefetches were issued and the hierarchy-wide insert count right
	// after. While both match, the same prefetches would all no-op.
	lastStreamLine    uint64
	lastStreamInserts uint64
}

func newCache(cfg Config) *cache {
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	if sets&(sets-1) != 0 {
		panic("mem: cache set count must be a power of two")
	}
	lb := uint(0)
	for 1<<lb < cfg.LineBytes {
		lb++
	}
	c := &cache{
		cfg:      cfg,
		sets:     sets,
		setMask:  uint64(sets - 1),
		lineBits: lb,
		tagShift: log2i(sets),
		tags:     make([]uint64, lines),
		stamp:    make([]uint64, lines),
		pref:     make([]bool, lines),
		// No real line number reaches 1<<63 (lines are addr>>lineBits), so
		// the memo can never match before its first genuine assignment.
		lastStreamLine: uint64(1) << 63,
		// First touch stamps ways; the initial per-set recency order (way 0
		// newest … way Ways-1 oldest) sits below it.
		clock: uint64(cfg.Ways),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	for s := 0; s < sets; s++ {
		for w := 0; w < cfg.Ways; w++ {
			c.stamp[s*cfg.Ways+w] = uint64(cfg.Ways - 1 - w)
		}
	}
	return c
}

func (c *cache) index(addr uint64) (base int, tag uint64) {
	line := addr >> c.lineBits
	return int(line&c.setMask) * c.cfg.Ways, line >> c.tagShift
}

func log2i(n int) uint {
	k := uint(0)
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// access probes the cache, updating LRU on hit. The second result reports
// whether the hit line was an untouched prefetch.
func (c *cache) access(addr uint64) (hit, wasPref bool) {
	base, tag := c.index(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == tag {
			c.touch(base, w)
			wasPref = c.pref[base+w]
			c.pref[base+w] = false
			return true, wasPref
		}
	}
	return false, false
}

func (c *cache) touch(base, way int) {
	c.clock++
	c.stamp[base+way] = c.clock
}

// fill inserts addr's line on demand, evicting LRU.
func (c *cache) fill(addr uint64) { c.fillInto(addr, false) }

// fillPref inserts addr's line on behalf of a prefetcher.
func (c *cache) fillPref(addr uint64) { c.fillInto(addr, true) }

func (c *cache) fillInto(addr uint64, pref bool) {
	base, tag := c.index(addr)
	victim := 0
	for w := 0; w < c.cfg.Ways; w++ {
		t := c.tags[base+w]
		if t == tag {
			return
		}
		if t == invalidTag {
			victim = w
			break
		}
		if c.stamp[base+w] < c.stamp[base+victim] {
			victim = w
		}
	}
	c.tags[base+victim] = tag
	c.pref[base+victim] = pref
	c.inserts++
	c.touch(base, victim) // promote the fresh line to MRU
}

// prefetch issues stride-directed prefetches after a miss at this level.
// Degree 4 covers the window until the next miss-triggered activation, so a
// steady stream settles at one demand miss per four lines at most.
func (c *cache) prefetch(addr uint64, h *Hierarchy) {
	if !c.cfg.Prefetch {
		return
	}
	const degree = 4
	line := addr >> c.lineBits
	stride := int64(line) - int64(c.lastMiss)
	step := int64(1)
	if stride == c.lastStride && stride != 0 && abs64(stride) < 64 {
		step = stride
	}
	c.lastStride = stride
	c.lastMiss = line
	for d := int64(1); d <= degree; d++ {
		h.fillThrough(c, uint64(int64(line)+d*step)<<c.lineBits)
	}
}

// streamDetect runs on every access: when the previous line was touched
// recently (an ascending stream), it pulls the next lines into the whole
// hierarchy, keeping steady streams off the DRAM path the way an aggressive
// hardware streamer does. Random traffic rarely matches and causes no
// pollution.
func (c *cache) streamDetect(addr uint64, h *Hierarchy) {
	if !c.cfg.Prefetch {
		return
	}
	line := addr >> c.lineBits
	hit := false
	for _, rl := range c.recentLines {
		if rl == line-1 || rl == line {
			hit = rl == line-1
			if hit {
				break
			}
		}
	}
	c.recentLines[c.recentPos] = line
	c.recentPos = (c.recentPos + 1) % len(c.recentLines)
	if !hit {
		return
	}
	// Sequential walks touch the same 64-byte line several times. After the
	// first trigger, lines line+1..line+3 are present at every level, and
	// they stay present as long as no insert has evicted anything — so with
	// the insert count unchanged, every fillPref below would early-return
	// and skipping them is exact.
	total := h.l1.inserts + h.l2.inserts + h.llc.inserts
	if line == c.lastStreamLine && total == c.lastStreamInserts {
		return
	}
	for d := uint64(1); d <= 3; d++ {
		a := (line + d) << c.lineBits
		h.l1.fillPref(a)
		h.l2.fillPref(a)
		h.llc.fillPref(a)
	}
	c.lastStreamLine = line
	c.lastStreamInserts = h.l1.inserts + h.l2.inserts + h.llc.inserts
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
