package mem

import (
	"testing"
	"testing/quick"
)

func noPrefetch() HierarchyConfig {
	cfg := DefaultHierarchy()
	cfg.L1.Prefetch = false
	cfg.L2.Prefetch = false
	cfg.LLC.Prefetch = false
	return cfg
}

func TestColdMissGoesToDRAM(t *testing.T) {
	h := New(noPrefetch())
	cfg := DefaultHierarchy()
	want := cfg.L1.Latency + cfg.L2.Latency + cfg.LLC.Latency + cfg.DRAMLatency
	if got := h.Access(0x1234000); got != want {
		t.Fatalf("cold access latency %d, want %d", got, want)
	}
}

func TestHitAfterFill(t *testing.T) {
	h := New(noPrefetch())
	h.Access(0x1234000)
	if got := h.Access(0x1234008); got != DefaultHierarchy().L1.Latency {
		t.Fatalf("same-line access latency %d, want L1 hit", got)
	}
}

func TestInclusiveFill(t *testing.T) {
	h := New(noPrefetch())
	addr := uint64(0x40000)
	h.Access(addr)
	// Evict from L1 by filling its set (64 sets × 64B lines: +4KB strides
	// map to the same set; 8 ways + 1 conflict).
	for i := 1; i <= 8; i++ {
		h.Access(addr + uint64(i)*4096)
	}
	cfg := DefaultHierarchy()
	got := h.Access(addr)
	if got != cfg.L1.Latency+cfg.L2.Latency {
		t.Fatalf("L1-evicted line latency %d, want L2 hit %d", got, cfg.L1.Latency+cfg.L2.Latency)
	}
}

func TestLRUKeepsHotLine(t *testing.T) {
	h := New(noPrefetch())
	hot := uint64(0x40000)
	h.Access(hot)
	for i := 1; i <= 7; i++ {
		h.Access(hot + uint64(i)*4096) // fill the set
	}
	h.Access(hot) // re-touch: now MRU
	h.Access(hot + 8*4096)
	h.Access(hot + 9*4096) // two evictions: hot must survive
	if got := h.Access(hot); got != DefaultHierarchy().L1.Latency {
		t.Fatalf("hot line evicted despite LRU touch (latency %d)", got)
	}
}

func TestStreamPrefetchCoverage(t *testing.T) {
	h := New(DefaultHierarchy())
	for i := 0; i < 20000; i++ {
		h.Access(uint64(0x100000 + i*8))
	}
	acc, l1m, _, _ := h.Stats()
	if rate := float64(l1m) / float64(acc); rate > 0.02 {
		t.Fatalf("streaming L1 miss rate %.3f; prefetcher broken", rate)
	}
}

func TestInterleavedStreams(t *testing.T) {
	h := New(DefaultHierarchy())
	bases := [4]uint64{0x10000000, 0x20000340, 0x30000680, 0x400009c0}
	for i := 0; i < 40000; i++ {
		k := i % 4
		bases[k] += 8
		h.Access(bases[k])
	}
	acc, l1m, _, _ := h.Stats()
	if rate := float64(l1m) / float64(acc); rate > 0.05 {
		t.Fatalf("4-stream L1 miss rate %.3f", rate)
	}
}

func TestRandomAccessesMissRealistically(t *testing.T) {
	h := New(DefaultHierarchy())
	x := uint64(12345)
	for i := 0; i < 50000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		h.Access((x >> 20) & (64<<20 - 1)) // uniform over 64MB
	}
	acc, l1m, _, llcm := h.Stats()
	if rate := float64(l1m) / float64(acc); rate < 0.5 {
		t.Fatalf("random-over-64MB L1 miss rate %.3f suspiciously low", rate)
	}
	if llcm == 0 {
		t.Fatal("64MB random working set never missed the 8MB LLC")
	}
}

func TestStatsMonotonic(t *testing.T) {
	h := New(DefaultHierarchy())
	h.Access(0x1000)
	a1, m1, _, _ := h.Stats()
	h.Access(0x2000000)
	a2, m2, _, _ := h.Stats()
	if a2 != a1+1 || m2 < m1 {
		t.Fatalf("stats not monotonic: %d->%d, %d->%d", a1, a2, m1, m2)
	}
}

func TestLatencyBoundsProperty(t *testing.T) {
	cfg := DefaultHierarchy()
	minLat := cfg.L1.Latency
	maxLat := cfg.L1.Latency + cfg.L2.Latency + cfg.LLC.Latency + cfg.DRAMLatency
	h := New(cfg)
	f := func(addr uint64) bool {
		lat := h.Access(addr)
		return lat >= minLat && lat <= maxLat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMPKIBase(t *testing.T) {
	h := New(noPrefetch())
	if h.MPKIBase() != 0 {
		t.Fatal("MPKIBase nonzero before any access")
	}
	h.Access(0x1000)
	if h.MPKIBase() != 1 {
		t.Fatalf("one cold access should be a 100%% miss rate, got %v", h.MPKIBase())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two set count accepted")
		}
	}()
	newCache(Config{SizeBytes: 3 * 64 * 8, LineBytes: 64, Ways: 8, Latency: 1})
}
