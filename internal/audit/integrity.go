// Package audit is the simulation integrity layer: a pluggable invariant
// auditor hooked into the core tick/retire loop and the repair schemes, plus
// a golden-model differential oracle (a timing-free in-order executor of the
// same trace cross-checked at retire). Violations surface as structured
// IntegrityError values instead of panics, so a modeling bug aborts one run
// with a diagnosable report rather than killing a sweep.
//
// The auditor is strictly read-only over simulator state: enabling it must
// not perturb a single reported statistic (observer effect = 0). Checks that
// would mutate predictor metadata (LRU touches, statistic counters) are
// therefore expressed over the read-only surfaces LookupState, DiffBHT and
// obq.Queue.Walk.
package audit

import (
	"errors"
	"fmt"
)

// ErrIntegrity is the sentinel wrapped by every IntegrityError. Match with
// errors.Is(err, audit.ErrIntegrity).
var ErrIntegrity = errors.New("audit: integrity violation")

// Invariant names reported in IntegrityError.Invariant. Core-loop invariants
// first, then scheme/OBQ invariants, then oracle cross-checks.
const (
	InvRetireMonotonic  = "rob-retire-monotonic"   // retired seq must strictly increase
	InvWrongPathHead    = "wrong-path-at-rob-head" // wrong-path entries are flushed before the head
	InvBranchRecord     = "branch-without-record"  // every allocated branch carries a prediction record
	InvRetireIncomplete = "retire-incomplete"      // retired entry completed in the future
	InvROBAgeOrder      = "rob-age-order"          // ROB entries are seq-ordered head→tail
	InvOccupancy        = "occupancy-bounds"       // ROB/alloc-queue occupancy within capacity
	InvResolutions      = "resolution-consistency" // pending resolutions match unresolved ROB branches
	InvCPIAccounting    = "cpi-accounting"         // CPI-stack bucket cycles sum to total cycles

	InvOBQOrder      = "obq-order"       // OBQ Seq strictly increasing head→tail
	InvOBQBounds     = "obq-bounds"      // OBQ occupancy within capacity
	InvOBQCoalesce   = "obq-coalesce"    // adjacent live entries never share a PC when coalescing
	InvOBQRuns       = "obq-runs"        // per-entry coalesced-run counts non-negative
	InvCkptLiveness  = "ckpt-liveness"   // a branch's checkpoint entry is live and matches at use
	InvPerfectResync = "perfect-resync"  // after a perfect-repair resync, spec BHT == arch BHT
	InvSchemeCtx     = "scheme-ctx"      // per-branch repair context self-consistent

	InvOracleStream  = "oracle-stream-skew"      // retired stream positions not sequential
	InvOracleClass   = "oracle-class-mismatch"   // retired class differs from the trace
	InvOracleBranch  = "oracle-branch-mismatch"  // retired branch PC/outcome differs from the trace
	InvOracleCounts  = "oracle-final-counts"     // end-of-run totals differ from the functional model
)

// IntegrityError is one invariant violation: where (cycle, PC), what
// (invariant name) and a state dump for diagnosis. It wraps ErrIntegrity and
// flows through the harness's RunError machinery like any simulation failure.
type IntegrityError struct {
	Cycle     int64  // simulation cycle at which the violation was detected
	PC        uint64 // offending PC (0 when not attributable to one branch)
	Invariant string // one of the Inv* names
	Dump      string // multi-line state dump
}

// Error renders the invariant, location and dump.
func (e *IntegrityError) Error() string {
	return fmt.Sprintf("audit: invariant %q violated at cycle %d (pc=%#x)\n%s",
		e.Invariant, e.Cycle, e.PC, e.Dump)
}

// Unwrap lets errors.Is(err, ErrIntegrity) match.
func (e *IntegrityError) Unwrap() error { return ErrIntegrity }

// maxViolations bounds the per-run violation list: the first violation is
// what matters (later ones are usually cascade damage), but keeping a few
// helps diagnose multi-site corruption from fault injection.
const maxViolations = 16

// Auditor collects invariant violations and counts checks performed. One
// auditor serves one simulation run; it is not safe for concurrent use (the
// core is single-threaded).
type Auditor struct {
	// Interval is the cycle stride of the expensive structural scans (full
	// ROB order scan, OBQ walk). Cheap O(1) checks run on every event.
	// Zero selects DefaultInterval.
	Interval int64

	violations []*IntegrityError
	dropped    uint64
	checks     uint64
}

// DefaultInterval is the structural-scan stride when Auditor.Interval is
// zero: frequent enough to catch corruption within one misprediction window,
// cheap enough to keep audited runs well under the 2x overhead budget.
const DefaultInterval = 64

// New returns an auditor with the default scan interval.
func New() *Auditor { return &Auditor{} }

// interval resolves the structural-scan stride.
func (a *Auditor) interval() int64 {
	if a.Interval > 0 {
		return a.Interval
	}
	return DefaultInterval
}

// ScanDue reports whether the periodic structural scan should run at cycle.
func (a *Auditor) ScanDue(cycle int64) bool { return cycle%a.interval() == 0 }

// Note counts n individual invariant checks (telemetry for reports).
func (a *Auditor) Note(n int) { a.checks += uint64(n) }

// Checks returns the number of invariant checks performed.
func (a *Auditor) Checks() uint64 { return a.checks }

// Report records a violation and returns it. Beyond maxViolations the
// violation is counted but not retained.
func (a *Auditor) Report(cycle int64, pc uint64, invariant, dump string) *IntegrityError {
	e := &IntegrityError{Cycle: cycle, PC: pc, Invariant: invariant, Dump: dump}
	if len(a.violations) < maxViolations {
		a.violations = append(a.violations, e)
	} else {
		a.dropped++
	}
	return e
}

// First returns the earliest recorded violation, or nil.
func (a *Auditor) First() *IntegrityError {
	if len(a.violations) == 0 {
		return nil
	}
	return a.violations[0]
}

// Violations returns every retained violation in detection order.
func (a *Auditor) Violations() []*IntegrityError {
	out := make([]*IntegrityError, len(a.violations))
	copy(out, a.violations)
	return out
}

// Dropped returns how many violations were detected beyond the retained cap.
func (a *Auditor) Dropped() uint64 { return a.dropped }
