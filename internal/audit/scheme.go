package audit

import (
	"fmt"

	"localbp/internal/bpu/loop"
	"localbp/internal/obq"
	"localbp/internal/repair"
)

// predictorHolder matches schemes exposing a primary local predictor
// (schemeBase and its derivatives; the bpu chooser uses the same surface).
type predictorHolder interface {
	Predictor() loop.LocalPredictor
}

// obqHolder matches schemes whose checkpoints live in a real OBQ (the walk
// schemes and multi-stage). Snapshot reuses ctx.OBQID for its own snapshot
// ring and deliberately does not implement this, so OBQ invariants are never
// misapplied to it.
type obqHolder interface {
	OBQ() *obq.Queue
}

// schemeAuditor decorates a repair.Scheme with invariant checks. All checks
// are read-only (Walk, Get, LookupState, DiffBHT); the wrapped scheme's
// behaviour — and therefore every reported statistic — is bit-identical to
// the unwrapped scheme.
type schemeAuditor struct {
	inner     repair.Scheme
	aud       *Auditor
	lp        loop.LocalPredictor // nil when inner exposes no single predictor
	q         *obq.Queue          // nil when inner has no OBQ
	fetches   int64               // OnFetchBranch events, for periodic scans
	lastCycle int64               // latest cycle seen, for cycle-less hooks (OnRetire)
}

// WrapScheme decorates s with the auditor's scheme-level invariants: OBQ
// structural consistency (periodic), checkpoint liveness at every use, and
// the perfect-repair resync equality (after a restore the speculative BHT
// must match the architectural snapshot except the branch's own entry).
// The wrapper forwards Predictor()/OBQ() introspection so chooser behaviour
// (bpu oracle coverage) is unchanged.
func WrapScheme(s repair.Scheme, a *Auditor) repair.Scheme {
	w := &schemeAuditor{inner: s, aud: a}
	if ph, ok := s.(predictorHolder); ok {
		w.lp = ph.Predictor()
	}
	if qh, ok := s.(obqHolder); ok {
		w.q = qh.OBQ()
	}
	return w
}

// Predictor exposes the wrapped scheme's local predictor (nil when it has
// none); keeping the method on the wrapper preserves oracle coverage.
func (w *schemeAuditor) Predictor() loop.LocalPredictor { return w.lp }

// OBQ exposes the wrapped scheme's OBQ (nil when it has none).
func (w *schemeAuditor) OBQ() *obq.Queue { return w.q }

// Name implements repair.Scheme; the audited scheme reports under its own
// name so labels and memoization keys are unchanged.
func (w *schemeAuditor) Name() string { return w.inner.Name() }

// FetchPredict implements repair.Scheme.
func (w *schemeAuditor) FetchPredict(pc uint64, cycle int64) loop.Prediction {
	w.lastCycle = cycle
	return w.inner.FetchPredict(pc, cycle)
}

// OnFetchBranch implements repair.Scheme, running the periodic OBQ
// structural scan on the auditor's interval (in fetched-branch events).
func (w *schemeAuditor) OnFetchBranch(ctx *repair.BranchCtx, cycle int64) {
	w.lastCycle = cycle
	w.inner.OnFetchBranch(ctx, cycle)
	w.fetches++
	if w.q != nil && w.fetches%w.aud.interval() == 0 {
		w.checkOBQ(cycle)
	}
}

// AllocCheck implements repair.Scheme.
func (w *schemeAuditor) AllocCheck(ctx *repair.BranchCtx, cycle int64) (bool, bool) {
	return w.inner.AllocCheck(ctx, cycle)
}

// OnMispredict implements repair.Scheme: checkpoint liveness before the
// repair consumes the entry, context sanity, and — for schemes that snapshot
// the whole BHT per branch (Perfect) — the paper's resync equality: after
// the restore, the speculative BHT equals the architectural snapshot except
// for the mispredicting branch's own entry (rewound and re-applied).
func (w *schemeAuditor) OnMispredict(ctx *repair.BranchCtx, cycle int64) {
	w.lastCycle = cycle
	w.aud.Note(2)
	if ctx.WrongPath {
		w.aud.Report(cycle, ctx.PC, InvSchemeCtx,
			fmt.Sprintf("  OnMispredict on a wrong-path branch (seq=%d)", ctx.Seq))
	}
	if ctx.PredTaken == ctx.ActualTaken {
		w.aud.Report(cycle, ctx.PC, InvSchemeCtx,
			fmt.Sprintf("  OnMispredict with matching prediction (pred=%v actual=%v seq=%d)",
				ctx.PredTaken, ctx.ActualTaken, ctx.Seq))
	}
	w.checkCkptLive(ctx, cycle, "mispredict")

	w.inner.OnMispredict(ctx, cycle)

	if ctx.SnapValid && w.lp != nil && len(ctx.Snap) == w.lp.Entries() {
		w.aud.Note(1)
		if diff := w.lp.DiffBHT(ctx.Snap); diff > 1 {
			w.aud.Report(cycle, ctx.PC, InvPerfectResync, fmt.Sprintf(
				"  after perfect-repair resync, %d BHT entries still differ from the architectural snapshot (at most 1 — the branch's own — may)",
				diff))
		}
	}
}

// OnCorrectResolve implements repair.Scheme.
func (w *schemeAuditor) OnCorrectResolve(ctx *repair.BranchCtx, cycle int64) {
	w.lastCycle = cycle
	w.aud.Note(1)
	if ctx.PredTaken != ctx.ActualTaken {
		w.aud.Report(cycle, ctx.PC, InvSchemeCtx,
			fmt.Sprintf("  OnCorrectResolve with mismatched prediction (pred=%v actual=%v seq=%d)",
				ctx.PredTaken, ctx.ActualTaken, ctx.Seq))
	}
	w.inner.OnCorrectResolve(ctx, cycle)
}

// OnRetire implements repair.Scheme: the branch's checkpoint entry must
// still be live (and match) at the moment the retiring branch releases it.
// The hook carries no cycle, so reports use the latest cycle the wrapper saw.
func (w *schemeAuditor) OnRetire(ctx *repair.BranchCtx, finalMisp bool) {
	w.checkCkptLive(ctx, w.lastCycle, "retire")
	w.inner.OnRetire(ctx, finalMisp)
}

// OnSquash implements repair.Scheme. Squashed branches may legitimately
// reference already-squashed OBQ entries, so no liveness check here.
func (w *schemeAuditor) OnSquash(ctx *repair.BranchCtx) { w.inner.OnSquash(ctx) }

// Stats implements repair.Scheme.
func (w *schemeAuditor) Stats() *repair.Stats { return w.inner.Stats() }

// StorageBits implements repair.Scheme.
func (w *schemeAuditor) StorageBits() int { return w.inner.StorageBits() }

// BusyUntil implements repair.BusyReporter by forwarding to the wrapped
// scheme (0 — never busy — when it does not report).
func (w *schemeAuditor) BusyUntil() int64 {
	if br, ok := w.inner.(repair.BusyReporter); ok {
		return br.BusyUntil()
	}
	return 0
}

// checkCkptLive verifies that the OBQ entries a correct-path branch carries
// (ctx.OBQID for single-stage walk schemes, ctx.DeferOBQID for multi-stage)
// are live and still describe this branch: a dropped, recycled or duplicated
// entry shows up here as a dead id, a foreign PC, or a younger Seq.
func (w *schemeAuditor) checkCkptLive(ctx *repair.BranchCtx, cycle int64, where string) {
	if w.q == nil {
		return
	}
	for _, id := range [...]int64{ctx.OBQID, ctx.DeferOBQID} {
		if id < 0 {
			continue
		}
		w.aud.Note(1)
		e := w.q.Get(id)
		switch {
		case e == nil:
			head, tail := w.q.Bounds()
			w.aud.Report(cycle, ctx.PC, InvCkptLiveness, fmt.Sprintf(
				"  at %s: checkpoint entry %d for pc=%#x seq=%d is dead (obq live range [%d,%d))",
				where, id, ctx.PC, ctx.Seq, head, tail))
		case e.PC != ctx.PC || e.Seq > ctx.Seq:
			w.aud.Report(cycle, ctx.PC, InvCkptLiveness, fmt.Sprintf(
				"  at %s: checkpoint entry %d holds pc=%#x seq=%d, branch is pc=%#x seq=%d",
				where, id, e.PC, e.Seq, ctx.PC, ctx.Seq))
		}
	}
}

// checkOBQ is the periodic structural scan over the live OBQ window:
// occupancy within capacity, Seq strictly increasing head→tail, coalesced
// run counts non-negative, and — with coalescing — no two adjacent live
// entries sharing a PC (they would have been merged at allocation).
func (w *schemeAuditor) checkOBQ(cycle int64) {
	q := w.q
	head, tail := q.Bounds()
	w.aud.Note(1 + int(tail-head))
	if n := q.Len(); n < 0 || n > q.Cap() || int(tail-head) != n {
		w.aud.Report(cycle, 0, InvOBQBounds, fmt.Sprintf(
			"  obq occupancy %d outside [0,%d] (head=%d tail=%d)", n, q.Cap(), head, tail))
		return
	}
	var prev *obq.Entry
	var prevID int64
	q.Walk(head, func(id int64, e *obq.Entry) {
		if e.Runs < 0 {
			w.aud.Report(cycle, e.PC, InvOBQRuns, fmt.Sprintf(
				"  obq entry %d (pc=%#x seq=%d) has negative run count %d", id, e.PC, e.Seq, e.Runs))
		}
		if prev != nil {
			if e.Seq <= prev.Seq {
				w.aud.Report(cycle, e.PC, InvOBQOrder, fmt.Sprintf(
					"  obq entry %d (pc=%#x seq=%d) not younger than entry %d (pc=%#x seq=%d)",
					id, e.PC, e.Seq, prevID, prev.PC, prev.Seq))
			}
			if q.Coalescing() && e.PC == prev.PC {
				w.aud.Report(cycle, e.PC, InvOBQCoalesce, fmt.Sprintf(
					"  adjacent obq entries %d and %d share pc=%#x under coalescing (seq %d, %d)",
					prevID, id, e.PC, prev.Seq, e.Seq))
			}
		}
		prev, prevID = e, id
	})
}
