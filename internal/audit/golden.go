package audit

import (
	"fmt"

	"localbp/internal/trace"
)

// Golden is the differential oracle: a timing-free in-order functional
// executor of the same trace. The OOO core reports every real-path
// retirement to it in order; the golden model checks that the retired stream
// is exactly the architectural instruction stream — positions strictly
// sequential, classes matching, and for branches the PC and resolved outcome
// identical to the trace. Divergence is caught at the first offending retire
// instead of surfacing later as a skewed IPC number.
//
// The functional model is deliberately trivial: the trace *is* the
// architectural execution, so "executing" it in order is indexing it. All
// the verification power is in comparing what the OOO machinery actually
// retired (its own bookkeeping: stream positions, branch records, resolved
// outcomes) against that ground truth.
type Golden struct {
	prog     []trace.Inst
	cursor   int    // next architectural instruction expected to retire
	branches uint64 // conditional branches retired so far
}

// NewGolden builds the oracle over the program the core will run.
func NewGolden(prog []trace.Inst) *Golden { return &Golden{prog: prog} }

// Retired returns how many instructions the oracle has accepted.
func (g *Golden) Retired() int { return g.cursor }

// Retire checks one real-path retirement against the architectural stream.
// streamPos is the core's recorded trace index for the retiring entry;
// pc/actualTaken are meaningful only when isBranch is true and are taken
// from the core's branch record (its own view, not re-read from the trace).
// It returns nil when consistent, or the violation.
func (g *Golden) Retire(streamPos int, class trace.Class, isBranch bool, pc uint64, actualTaken bool, cycle int64) *IntegrityError {
	if streamPos != g.cursor {
		return &IntegrityError{
			Cycle:     cycle,
			PC:        pc,
			Invariant: InvOracleStream,
			Dump: fmt.Sprintf("  retired stream position %d, golden model expects %d (of %d)",
				streamPos, g.cursor, len(g.prog)),
		}
	}
	if g.cursor >= len(g.prog) {
		return &IntegrityError{
			Cycle:     cycle,
			PC:        pc,
			Invariant: InvOracleStream,
			Dump:      fmt.Sprintf("  retired %d instructions, trace has only %d", g.cursor+1, len(g.prog)),
		}
	}
	in := g.prog[g.cursor]
	if class != in.Class || isBranch != in.IsBranch() {
		return &IntegrityError{
			Cycle:     cycle,
			PC:        in.PC,
			Invariant: InvOracleClass,
			Dump: fmt.Sprintf("  stream position %d: retired class=%v branch=%v, trace has class=%v branch=%v",
				g.cursor, class, isBranch, in.Class, in.IsBranch()),
		}
	}
	if isBranch {
		if pc != in.PC || actualTaken != in.Taken {
			return &IntegrityError{
				Cycle:     cycle,
				PC:        in.PC,
				Invariant: InvOracleBranch,
				Dump: fmt.Sprintf("  stream position %d: retired branch pc=%#x taken=%v, trace has pc=%#x taken=%v",
					g.cursor, pc, actualTaken, in.PC, in.Taken),
			}
		}
		g.branches++
	}
	g.cursor++
	return nil
}

// Finish cross-checks the end-of-run totals: every architectural instruction
// retired exactly once, and the core's raw (pre-warmup-subtraction) counters
// agree with the functional model.
func (g *Golden) Finish(insts, branches uint64, cycle int64) *IntegrityError {
	if g.cursor != len(g.prog) {
		return &IntegrityError{
			Cycle:     cycle,
			Invariant: InvOracleCounts,
			Dump: fmt.Sprintf("  golden model retired %d of %d trace instructions",
				g.cursor, len(g.prog)),
		}
	}
	if insts != uint64(g.cursor) || branches != g.branches {
		return &IntegrityError{
			Cycle:     cycle,
			Invariant: InvOracleCounts,
			Dump: fmt.Sprintf("  core counted insts=%d branches=%d; golden model counted insts=%d branches=%d",
				insts, branches, g.cursor, g.branches),
		}
	}
	return nil
}
