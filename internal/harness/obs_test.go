package harness

import (
	"context"
	"strings"
	"sync"
	"testing"

	"localbp/internal/obs"
	"localbp/internal/workloads"
)

// TestCPIStackSumsQuickSuite is the cycle-accounting acceptance test: on
// every quick-suite workload the CPI buckets must sum to the run's total
// cycles. The core's InvCPIAccounting invariant already aborts a run on
// mismatch; asserting here too keeps the property visible in `go test`
// output even if the invariant wiring regresses.
func TestCPIStackSumsQuickSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole quick suite")
	}
	spec, err := SpecFor("forward-coalesce")
	if err != nil {
		t.Fatal(err)
	}
	cache := NewTraceCache()
	for _, w := range workloads.QuickSuite() {
		tr, err := cache.Get(w, 20_000)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		var cpi *obs.CPIStack
		spec.Obs = &ObsSpec{CPIStack: true, Done: func(h *obs.Hooks) { cpi = h.CPI }}
		st, _, err := RunTraceChecked(tr, spec)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if cpi == nil {
			t.Fatalf("%s: ObsSpec.Done never ran", w.Name)
		}
		if cpi.Total() != st.Cycles {
			t.Fatalf("%s: CPI buckets sum to %d, run took %d cycles", w.Name, cpi.Total(), st.Cycles)
		}
	}
}

// TestRunnerParallelObs drives the parallel Runner with observability on:
// every workload run gets its own fresh obs.Hooks (distinct pointers), Done
// fires exactly once per run, and nothing races (`make race` runs this
// package under -race).
func TestRunnerParallelObs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole quick suite")
	}
	spec, err := SpecFor("forward-coalesce")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seen := map[*obs.Hooks]bool{}
	spec.Obs = &ObsSpec{
		CPIStack: true, Counters: true, TraceCap: 256,
		Done: func(h *obs.Hooks) {
			mu.Lock()
			defer mu.Unlock()
			if seen[h] {
				t.Error("hooks shared between runs")
			}
			seen[h] = true
		},
	}
	r := NewRunner(Options{Insts: 10_000, Quick: true, Workers: 8})
	out := r.Run(spec)
	for _, o := range out {
		if o.Err != nil {
			t.Fatalf("%s: %v", o.Result.Workload, o.Err)
		}
	}
	if len(seen) != len(out) {
		t.Fatalf("Done ran for %d of %d runs", len(seen), len(out))
	}
	for h := range seen {
		if h.CPI.Total() <= 0 {
			t.Fatal("empty CPI stack from a parallel run")
		}
		if h.Reg.Snapshot()["core.cycles"] == 0 {
			t.Fatal("counter registry empty in a parallel run")
		}
	}
}

// TestCPIStackTable checks the rendered ext2 artifact: one row per
// category, every bucket column present.
func TestCPIStackTable(t *testing.T) {
	out, err := CPIStackTable(context.Background(), Options{Insts: 15_000, Quick: true}, "forward-coalesce")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range workloads.Categories() {
		if !strings.Contains(out, c.String()) {
			t.Errorf("table missing category %s:\n%s", c, out)
		}
	}
	for _, name := range obs.CPIBucketNames() {
		if !strings.Contains(out, name) {
			t.Errorf("table missing bucket column %s:\n%s", name, out)
		}
	}
}

// TestSpecForRejectsUnknown ensures the shared registry error (with its
// valid-name list) surfaces through SpecFor.
func TestSpecForRejectsUnknown(t *testing.T) {
	_, err := SpecFor("definitely-not-a-scheme")
	if err == nil || !strings.Contains(err.Error(), "valid:") {
		t.Fatalf("want registry error listing valid names, got %v", err)
	}
}

// TestObsSpecValidate rejects a negative tracer capacity through the spec
// validation path (so sweeps fail fast, per run.go's Validate contract).
func TestObsSpecValidate(t *testing.T) {
	spec, err := SpecFor("baseline")
	if err != nil {
		t.Fatal(err)
	}
	spec.Obs = &ObsSpec{TraceCap: -1}
	if err := spec.Validate(); err == nil {
		t.Fatal("negative TraceCap passed validation")
	}
}
