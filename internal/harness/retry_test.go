package harness

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"localbp/internal/workloads"
)

// TestChaosPlanDeterministic: the plan is a pure function of (seed, spec,
// workload), bounded by MaxFaults, and a nil plan never faults.
func TestChaosPlanDeterministic(t *testing.T) {
	p := &ChaosPlan{Seed: 7, MaxFaults: 2}
	some := false
	for _, w := range workloads.QuickSuite() {
		a := p.FaultyAttempts("baseline", w.Name)
		b := p.FaultyAttempts("baseline", w.Name)
		if a != b {
			t.Fatalf("%s: plan not deterministic: %d then %d", w.Name, a, b)
		}
		if a < 0 || a > 2 {
			t.Fatalf("%s: fault count %d outside [0, 2]", w.Name, a)
		}
		if a > 0 {
			some = true
		}
	}
	if !some {
		t.Fatal("chaos plan faulted nothing across the quick suite; seed degenerate")
	}
	var nilPlan *ChaosPlan
	if nilPlan.FaultyAttempts("x", "y") != 0 {
		t.Fatal("nil plan injected a fault")
	}
}

// TestChaosRetryBitIdentical is the chaos gate: with a retry budget covering
// the plan's fault bound, every run completes and the surviving outcomes are
// bit-identical to an un-chaosed sweep — faulted attempts never start the
// simulation, and retries replay the identical cached trace.
func TestChaosRetryBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	spec := BaselineSpec()
	clean := NewRunner(Options{Insts: 20_000, Quick: true}).Run(spec)

	chaos := &ChaosPlan{Seed: 7, MaxFaults: 2}
	r := NewRunner(Options{Insts: 20_000, Quick: true, Retries: 2, Chaos: chaos})
	out := r.Run(spec)

	for i := range out {
		if out[i].Err != nil {
			t.Fatalf("workload %s failed despite retry budget covering the chaos bound: %v",
				out[i].Result.Workload, out[i].Err)
		}
	}
	if !reflect.DeepEqual(out, clean) {
		t.Fatal("chaos + retry perturbed surviving results")
	}
	if len(r.Failures()) != 0 {
		t.Fatalf("recovered runs recorded as failures: %d", len(r.Failures()))
	}
}

// TestChaosWithoutRetriesExhausts: with a retry budget smaller than the
// fault bound, chaos-faulted runs surface as classified failures —
// retry-exhausted when retries were attempted, transient when none were
// configured — and errors.Is finds ErrInjected through the RunError.
func TestChaosWithoutRetriesExhausts(t *testing.T) {
	spec := BaselineSpec()
	// MaxFaults 3 with Retries 1: any pair drawing >= 2 faults exhausts.
	chaos := &ChaosPlan{Seed: 11, MaxFaults: 3}
	r := NewRunner(Options{Insts: 5_000, Quick: true, Retries: 1, Chaos: chaos})
	out := r.Run(spec)

	exhausted := 0
	for i := range out {
		faults := chaos.FaultyAttempts(spec.Label, out[i].Result.Workload)
		if faults <= 1 {
			if out[i].Err != nil {
				t.Fatalf("workload %s (%d faults, 1 retry) should have recovered: %v",
					out[i].Result.Workload, faults, out[i].Err)
			}
			continue
		}
		re := out[i].Err
		if re == nil {
			t.Fatalf("workload %s (%d faults, 1 retry) should have exhausted", out[i].Result.Workload, faults)
		}
		if re.Class != ClassExhausted {
			t.Fatalf("workload %s: class %s, want %s", out[i].Result.Workload, re.Class, ClassExhausted)
		}
		if re.Attempts != 2 {
			t.Fatalf("workload %s: %d attempts, want 2", out[i].Result.Workload, re.Attempts)
		}
		if !errors.Is(re, ErrInjected) {
			t.Fatalf("workload %s: errors.Is(err, ErrInjected) = false: %v", out[i].Result.Workload, re)
		}
		if !strings.Contains(re.Error(), "after 2 attempts") {
			t.Fatalf("workload %s: error does not report attempts: %v", out[i].Result.Workload, re)
		}
		exhausted++
	}
	if exhausted == 0 {
		t.Fatal("no pair drew >= 2 faults; chaos seed degenerate for this test")
	}
}

// TestTransientPanicRetried: a panic is classified transient, so the runner
// re-attempts it; a fault that clears after the first attempt recovers with
// no recorded failure.
func TestTransientPanicRetried(t *testing.T) {
	victim := workloads.QuickSuite()[2].Name
	var mu sync.Mutex
	calls := map[string]int{}
	spec := BaselineSpec()
	spec.preRun = func(w string) {
		mu.Lock()
		calls[w]++
		n := calls[w]
		mu.Unlock()
		if w == victim && n == 1 {
			panic("transient fault: " + w)
		}
	}
	r := NewRunner(Options{Insts: 20_000, Quick: true, Retries: 2})
	out := r.Run(spec)
	for i := range out {
		if out[i].Err != nil {
			t.Fatalf("workload %s failed: %v", out[i].Result.Workload, out[i].Err)
		}
	}
	mu.Lock()
	n := calls[victim]
	mu.Unlock()
	if n != 2 {
		t.Fatalf("victim attempted %d times, want 2 (fail, recover)", n)
	}
	if len(r.Failures()) != 0 {
		t.Fatalf("recovered run recorded as failure: %v", r.Failures()[0])
	}
}

// TestPermanentNotRetried: validation failures classify permanent and are
// never re-attempted, regardless of the retry budget.
func TestPermanentNotRetried(t *testing.T) {
	spec := BaselineSpec()
	spec.Label = "bad-core"
	spec.Core.Width = 0
	r := NewRunner(Options{Insts: 5_000, Quick: true, Retries: 5})
	out := r.Run(spec)
	for i := range out {
		re := out[i].Err
		if re == nil {
			t.Fatalf("outcome %d: invalid spec produced no error", i)
		}
		if re.Class != ClassPermanent || re.Attempts != 1 {
			t.Fatalf("outcome %d: class %s after %d attempts, want permanent after 1", i, re.Class, re.Attempts)
		}
	}
}

// TestRunTimeoutExhausts: a per-attempt wall-clock cap that always expires
// while the sweep context stays live is treated as transient, retried, and
// finally reported retry-exhausted wrapping the deadline cause.
func TestRunTimeoutExhausts(t *testing.T) {
	spec := BaselineSpec()
	r := NewRunner(Options{Insts: 30_000, Quick: true, Workers: 1,
		Retries: 1, RunTimeout: time.Nanosecond})
	out := r.Run(spec)
	re := out[0].Err
	if re == nil {
		t.Fatal("1ns run timeout did not trip")
	}
	if re.Class != ClassExhausted {
		t.Fatalf("class %s, want %s", re.Class, ClassExhausted)
	}
	if re.Attempts != 2 {
		t.Fatalf("%d attempts, want 2", re.Attempts)
	}
	if !errors.Is(re, context.DeadlineExceeded) {
		t.Fatalf("cause is not DeadlineExceeded: %v", re)
	}
}

// TestCanceledRunNotMemoized: cancelling a sweep poisons neither the memo
// nor the failure record — the same runner re-runs the spec in full under a
// live context and produces clean results.
func TestCanceledRunNotMemoized(t *testing.T) {
	spec := BaselineSpec()
	r := NewRunner(Options{Insts: 20_000, Quick: true})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := r.RunContext(ctx, spec)
	canceled := 0
	for i := range out {
		if e := out[i].Err; e != nil && e.Class == ClassCanceled {
			if e.Phase != PhaseCanceled && !errors.Is(e, context.Canceled) {
				t.Fatalf("canceled outcome carries wrong cause: %v", e)
			}
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("pre-canceled context produced no canceled outcomes")
	}
	if len(r.Failures()) != 0 {
		t.Fatalf("cancellations recorded as failures: %d", len(r.Failures()))
	}

	clean := NewRunner(Options{Insts: 20_000, Quick: true}).Run(spec)
	rerun := r.Run(spec)
	if !reflect.DeepEqual(rerun, clean) {
		t.Fatal("post-cancel rerun differs from a fresh run: canceled outcomes were memoized")
	}
}

// TestRunSuiteCanceledContext: the one-spec convenience wrapper also honors
// cancellation.
func TestRunSuiteCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := RunSuite(ctx, Options{Insts: 5_000, Quick: true}, BaselineSpec(), NewTraceCache())
	if err == nil {
		t.Fatal("canceled RunSuite returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("joined error hides the cancellation cause: %v", err)
	}
	for _, res := range out {
		if res.IPC != 0 {
			t.Fatalf("workload %s produced metrics under a pre-canceled context", res.Workload)
		}
	}
}
