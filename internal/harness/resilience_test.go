package harness

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"localbp/internal/bpu/loop"
	"localbp/internal/core"
	"localbp/internal/workloads"
)

// TestParallelDeterminism: a suite run with 1 worker and with N workers must
// produce identical []Outcome slices — parallelism is a throughput knob, not
// a result knob.
func TestParallelDeterminism(t *testing.T) {
	specs := []Spec{BaselineSpec(), PaperForwardWalk(loop.Loop128())}
	for _, spec := range specs {
		serial := NewRunner(Options{Insts: 20_000, Quick: true, Workers: 1})
		parallel := NewRunner(Options{Insts: 20_000, Quick: true, Workers: 8})
		a := serial.Run(spec)
		b := parallel.Run(spec)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("spec %s: outcomes differ between 1 and 8 workers", spec.Label)
		}
	}
}

// TestPanicIsolation: an injected panic in one workload run yields a
// structured RunError naming the workload and spec while every other
// workload's results are intact.
func TestPanicIsolation(t *testing.T) {
	victim := workloads.QuickSuite()[3].Name
	opts := Options{Insts: 20_000, Quick: true}

	clean := NewRunner(opts).Run(BaselineSpec())

	spec := BaselineSpec()
	spec.preRun = func(w string) {
		if w == victim {
			panic("injected fault: " + w)
		}
	}
	out := NewRunner(opts).Run(spec)

	if len(out) != len(clean) {
		t.Fatalf("got %d outcomes, want %d", len(out), len(clean))
	}
	failed := 0
	for i := range out {
		if out[i].Result.Workload == victim {
			failed++
			re := out[i].Err
			if re == nil {
				t.Fatalf("victim workload %s has no error", victim)
			}
			if re.Workload != victim || re.SpecLabel != spec.Label || re.Phase != PhaseSimulate {
				t.Fatalf("RunError misattributed: %+v", re)
			}
			if re.Stack == "" || !strings.Contains(re.Err.Error(), "injected fault") {
				t.Fatalf("RunError lacks stack or cause: %v", re)
			}
		} else {
			if out[i].Err != nil {
				t.Fatalf("innocent workload %s failed: %v", out[i].Result.Workload, out[i].Err)
			}
			if !reflect.DeepEqual(out[i], clean[i]) {
				t.Fatalf("workload %s result changed under fault injection", out[i].Result.Workload)
			}
		}
	}
	if failed != 1 {
		t.Fatalf("found %d victim outcomes, want 1", failed)
	}
}

// TestWatchdogSurfacesAsRunError: a spec whose core never retires in time
// yields ErrStalled-wrapping RunErrors instead of hanging the sweep.
func TestWatchdogSurfacesAsRunError(t *testing.T) {
	spec := BaselineSpec()
	spec.Label = "stalling"
	spec.Core.FrontendDepth = 1_000 // first retire is impossible before the deadman
	spec.Core.StallCycles = 50
	out := NewRunner(Options{Insts: 5_000, Quick: true}).Run(spec)
	for i := range out {
		re := out[i].Err
		if re == nil {
			t.Fatalf("workload %s did not stall", out[i].Result.Workload)
		}
		if !errors.Is(re, core.ErrStalled) {
			t.Fatalf("error is not ErrStalled: %v", re)
		}
		if re.Phase != PhaseSimulate {
			t.Fatalf("stall attributed to phase %s", re.Phase)
		}
	}
}

// TestSpecValidationFailsFast: a malformed spec fails every outcome with a
// PhaseValidate error before any simulation runs.
func TestSpecValidationFailsFast(t *testing.T) {
	spec := BaselineSpec()
	spec.Label = "bad-core"
	spec.Core.Width = 0
	r := NewRunner(Options{Insts: 5_000, Quick: true})
	out := r.Run(spec)
	for i := range out {
		if out[i].Err == nil || out[i].Err.Phase != PhaseValidate {
			t.Fatalf("outcome %d: want PhaseValidate error, got %v", i, out[i].Err)
		}
		if !strings.Contains(out[i].Err.Error(), "Width") {
			t.Fatalf("validation error does not name the field: %v", out[i].Err)
		}
	}
	if len(r.Failures()) != len(out) {
		t.Fatalf("runner recorded %d failures, want %d", len(r.Failures()), len(out))
	}
}

// TestSpecValidateCatchesBadScheme: a scheme whose construction panics
// (invalid loop geometry) becomes a validation error, not a crash.
func TestSpecValidateCatchesBadScheme(t *testing.T) {
	bad := loop.Config{Name: "bad", Entries: 100, Ways: 8}
	spec := NoRepairSpec(bad)
	err := spec.Validate()
	if err == nil {
		t.Fatal("spec with invalid loop geometry validated")
	}
	if !strings.Contains(err.Error(), "scheme construction panicked") {
		t.Fatalf("unexpected validation error: %v", err)
	}
	if err := PaperForwardWalk(loop.Loop128()).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestRunnerFailuresOrdering: failures are recorded in workload order and
// memoized reruns do not duplicate them.
func TestRunnerFailuresOrdering(t *testing.T) {
	suite := workloads.QuickSuite()
	victims := map[string]bool{suite[1].Name: true, suite[4].Name: true}
	spec := BaselineSpec()
	spec.preRun = func(w string) {
		if victims[w] {
			panic("boom")
		}
	}
	r := NewRunner(Options{Insts: 20_000, Quick: true})
	r.Run(spec)
	r.Run(spec) // memoized; must not re-record
	fs := r.Failures()
	if len(fs) != 2 {
		t.Fatalf("recorded %d failures, want 2", len(fs))
	}
	if fs[0].Workload != suite[1].Name || fs[1].Workload != suite[4].Name {
		t.Fatalf("failures out of workload order: %s, %s", fs[0].Workload, fs[1].Workload)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")

	// Missing file: fresh start, no error.
	if ck, err := LoadCheckpoint(path); ck != nil || err != nil {
		t.Fatalf("missing file: got (%v, %v), want (nil, nil)", ck, err)
	}

	opts := Options{Insts: 20_000, Quick: true}
	ck := NewCheckpoint(opts)
	ck.Record("fig4", ExperimentOutcome{Output: "table\nrows\n", Seconds: 1.5})
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}

	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Matches(opts) {
		t.Fatal("reloaded checkpoint does not match its own options")
	}
	if got.Matches(Options{Insts: 30_000, Quick: true}) {
		t.Fatal("checkpoint matched different options")
	}
	out, ok := got.Done("fig4")
	if !ok || out.Output != "table\nrows\n" || out.Seconds != 1.5 {
		t.Fatalf("stored outcome corrupted: %+v ok=%v", out, ok)
	}
	if _, ok := got.Done("fig7a"); ok {
		t.Fatal("unfinished experiment reported done")
	}
}

func TestCheckpointRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("corrupt checkpoint loaded")
	}
	if err := writeFile(path, `{"version": 99, "completed": {}}`); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch not reported: %v", err)
	}
}

// writeFile is a tiny os.WriteFile wrapper keeping the imports tidy.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
