package harness

import (
	"context"
	"strings"
	"testing"

	"localbp/internal/bpu/loop"
	"localbp/internal/repair"
	"localbp/internal/workloads"
)

func tinyOptions() Options { return Options{Insts: 30_000, Quick: true} }

func TestRunTraceBaseline(t *testing.T) {
	w := workloads.QuickSuite()[0]
	tr := w.Generate(30_000)
	st := RunTrace(tr, BaselineSpec())
	if st.Insts != 30_000 || st.IPC() <= 0 {
		t.Fatalf("degenerate run: %+v", st)
	}
}

func TestRunTraceFullReturnsRepairStats(t *testing.T) {
	w := workloads.QuickSuite()[0]
	tr := w.Generate(30_000)
	_, rst, err := RunTraceFull(tr, PerfectSpec(loop.Loop128()))
	if err != nil {
		t.Fatal(err)
	}
	if rst == nil {
		t.Fatal("no repair stats from a scheme run")
	}
	if _, rst2, err := RunTraceFull(tr, BaselineSpec()); err != nil || rst2 != nil {
		t.Fatalf("baseline: err=%v repair stats=%v", err, rst2)
	}
}

func TestTraceCacheReuses(t *testing.T) {
	c := NewTraceCache()
	w := workloads.QuickSuite()[0]
	a, err := c.Get(w, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := c.Get(w, 10_000)
	if &a[0] != &b[0] {
		t.Fatal("cache did not reuse the trace")
	}
	d, _ := c.Get(w, 20_000)
	if len(d) != 20_000 {
		t.Fatal("cache ignored the new instruction count")
	}
	if e, _ := c.Get(w, 10_000); &e[0] != &a[0] {
		t.Fatal("changing insts evicted the old (workload, insts) entry")
	}
	if _, err := c.Get(w, 0); err == nil {
		t.Fatal("zero-length trace request did not error")
	}
}

func TestRunnerMemoizes(t *testing.T) {
	r := NewRunner(tinyOptions())
	a := r.Run(BaselineSpec())
	b := r.Run(BaselineSpec())
	if &a[0] != &b[0] {
		t.Fatal("runner did not memoize results")
	}
	if len(a) != len(workloads.QuickSuite()) {
		t.Fatalf("ran %d workloads, want quick suite size", len(a))
	}
}

func TestExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 14 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("malformed experiment %+v", e)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "table2", "table3", "fig4", "fig7a", "fig7b",
		"fig7c", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14a", "fig14b"} {
		if !ids[want] {
			t.Errorf("experiment %s missing", want)
		}
	}
	if _, ok := ExperimentByID("fig4"); !ok {
		t.Fatal("ExperimentByID(fig4) failed")
	}
	if _, ok := ExperimentByID("nope"); ok {
		t.Fatal("ExperimentByID found a nonexistent id")
	}
}

func TestStaticTables(t *testing.T) {
	t1 := Table1()
	if !strings.Contains(t1, "Server") || !strings.Contains(t1, "202") {
		t.Fatalf("Table1 content wrong:\n%s", t1)
	}
	t2 := Table2()
	if !strings.Contains(t2, "ROB") || !strings.Contains(t2, "TAGE") {
		t.Fatalf("Table2 content wrong:\n%s", t2)
	}
}

func TestSpecLabelsUnique(t *testing.T) {
	c := loop.Loop128()
	specs := []Spec{
		BaselineSpec(), PerfectSpec(c), NoRepairSpec(c), RetireUpdateSpec(c),
		SnapshotSpec(c, 32, repair.Ports{CkptRead: 8, BHTWrite: 8}),
		BackwardWalkSpec(c, 32, repair.Ports{CkptRead: 4, BHTWrite: 4}),
		ForwardWalkSpec(c, 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, false),
		ForwardWalkSpec(c, 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, true),
		MultiStageSpec(c, 32, true), MultiStageSpec(c, 32, false),
		LimitedPCSpec(c, 2, 2, false), LimitedPCSpec(c, 4, 4, false),
		OracleSpec(c), Iso9KBSpec(), Big57Spec("x", nil),
	}
	// PaperForwardWalk intentionally aliases the coalescing forward-walk spec.
	if PaperForwardWalk(c).Label != ForwardWalkSpec(c, 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, true).Label {
		t.Fatal("PaperForwardWalk must alias the headline configuration")
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.Label == "" || seen[s.Label] {
			t.Fatalf("bad or duplicate label %q", s.Label)
		}
		seen[s.Label] = true
	}
}

// TestIntegrationOrdering is the headline integration test: on a reduced run,
// the paper's qualitative ordering must hold — perfect > forward walk > no
// repair, and no repair ≈ baseline.
func TestIntegrationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	o := Options{Insts: 60_000, Quick: true}
	r := NewRunner(o)
	base := r.Results(BaselineSpec())
	perf := r.Results(PerfectSpec(loop.Loop128()))
	fwd := r.Results(PaperForwardWalk(loop.Loop128()))
	none := r.Results(NoRepairSpec(loop.Loop128()))

	perfRed := mpkiReduction(base, perf)
	fwdRed := mpkiReduction(base, fwd)
	noneRed := mpkiReduction(base, none)

	if perfRed < 10 {
		t.Fatalf("perfect repair reduced MPKI by only %.1f%%", perfRed)
	}
	if fwdRed < perfRed/2 {
		t.Fatalf("forward walk (%.1f%%) retained under half of perfect (%.1f%%)", fwdRed, perfRed)
	}
	if fwdRed > perfRed+1 {
		t.Fatalf("forward walk (%.1f%%) beat perfect repair (%.1f%%)", fwdRed, perfRed)
	}
	if noneRed > 5 || noneRed < -10 {
		t.Fatalf("no-repair reduction %.1f%% should be ~0 or slightly negative", noneRed)
	}
}

func TestFig8Output(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	r := NewRunner(Options{Insts: 40_000, Quick: true})
	out, err := Fig8(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "avg repairs/mispredict") {
		t.Fatalf("Fig8 output malformed:\n%s", out)
	}
}

func TestNormalizedRowsRenderBars(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	r := NewRunner(Options{Insts: 30_000, Quick: true})
	out, err := Fig13(context.Background(), r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "% of perfect") {
		t.Fatalf("figure output lacks bars or headers:\n%s", out)
	}
}

func TestWarmupOptionPlumbs(t *testing.T) {
	r := NewRunner(Options{Insts: 40_000, Quick: true, Warmup: 20_000})
	res := r.Results(BaselineSpec())
	// With warmup, IPC must still be sane; the plumb itself is covered by
	// internal/core tests — here we check the option survives the runner.
	for _, x := range res {
		if x.IPC <= 0 {
			t.Fatalf("degenerate warmed result %+v", x)
		}
	}
}
