package harness

import (
	"context"

	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/yehpatt"
	"localbp/internal/metrics"
	"localbp/internal/repair"
)

// Extension experiment (beyond the paper's figures): the paper argues its
// repair techniques are "extensible to any generic local predictor" (§1,
// §2.3). Ext1 substantiates that claim by swapping CBPw-Loop for a Yeh-Patt
// two-level local predictor — the speculative state becomes an 11-bit
// direction pattern instead of an iteration counter — and re-running the
// repair ladder unchanged.

// YehPattSpec wires the generic local predictor into a scheme.
func YehPattSpec(label string, mk func(lp loop.LocalPredictor) repair.Scheme) Spec {
	s := BaselineSpec()
	s.Label = "yehpatt-" + label
	s.Scheme = func() repair.Scheme { return mk(yehpatt.New(yehpatt.Default128())) }
	return s
}

// Ext1 compares the loop predictor and the generic local predictor under
// no repair, forward-walk repair and perfect repair.
func Ext1(ctx context.Context, r *Runner) (string, error) {
	base := r.ResultsContext(ctx, BaselineSpec())
	p42 := repair.Ports{CkptRead: 4, BHTWrite: 2}

	rows := []struct {
		label string
		spec  Spec
	}{
		{"loop + no repair", NoRepairSpec(loop.Loop128())},
		{"loop + forward walk", ForwardWalkSpec(loop.Loop128(), 32, p42, true)},
		{"loop + perfect", PerfectSpec(loop.Loop128())},
		{"yehpatt + no repair", YehPattSpec("none", func(lp loop.LocalPredictor) repair.Scheme {
			return repair.NewNoneFor(lp)
		})},
		{"yehpatt + forward walk", YehPattSpec("forward", func(lp loop.LocalPredictor) repair.Scheme {
			return repair.NewForwardWalkFor(lp, 32, p42, true)
		})},
		{"yehpatt + perfect", YehPattSpec("perfect", func(lp loop.LocalPredictor) repair.Scheme {
			return repair.NewPerfectFor(lp)
		})},
	}
	t := &metrics.Table{Header: []string{"Configuration", "MPKI redn", "IPC gain"}}
	for _, row := range rows {
		res := r.ResultsContext(ctx, row.spec)
		t.AddRow(row.label, metrics.Pct(mpkiReduction(base, res)), metrics.Pct(ipcGain(base, res)))
	}
	return t.String(), nil
}
