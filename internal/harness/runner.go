package harness

import (
	"fmt"
	"io"

	"localbp/internal/metrics"
	"localbp/internal/repair"
)

// Outcome is one workload × configuration result with repair statistics.
type Outcome struct {
	Result metrics.Result
	Repair repair.Stats // zero value for the TAGE-only baseline
}

// Runner executes specs over the workload suite, memoizing traces and
// results so that experiments sharing a configuration (most figures share
// the baseline and perfect-repair runs) pay for it once per process.
type Runner struct {
	Opts  Options
	Log   io.Writer // optional progress sink
	cache *TraceCache
	memo  map[string][]Outcome
}

// NewRunner builds a runner with the given options.
func NewRunner(o Options) *Runner {
	return &Runner{Opts: o, cache: NewTraceCache(), memo: map[string][]Outcome{}}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format, args...)
	}
}

// Run executes spec over the whole suite (memoized by spec label).
func (r *Runner) Run(spec Spec) []Outcome {
	if out, ok := r.memo[spec.Label]; ok {
		return out
	}
	r.logf("running %-28s (%d workloads × %d insts)\n", spec.Label, len(r.Opts.suite()), r.Opts.Insts)
	if r.Opts.Warmup > 0 {
		spec.Core.WarmupInsts = uint64(r.Opts.Warmup)
	}
	ws := r.Opts.suite()
	out := make([]Outcome, len(ws))
	for i, w := range ws {
		tr := r.cache.Get(w, r.Opts.Insts)
		st, rst := RunTraceFull(tr, spec)
		out[i].Result = metrics.Result{
			Workload: w.Name,
			Category: w.Category.String(),
			IPC:      st.IPC(),
			MPKI:     st.MPKI(),
			TageMPKI: st.TageMPKI(),
		}
		if rst != nil {
			out[i].Repair = *rst
		}
	}
	r.memo[spec.Label] = out
	return out
}

// Results extracts the metrics side of Run.
func (r *Runner) Results(spec Spec) []metrics.Result {
	out := r.Run(spec)
	rs := make([]metrics.Result, len(out))
	for i := range out {
		rs[i] = out[i].Result
	}
	return rs
}

// helpers shared by the experiment definitions

func ipcs(rs []metrics.Result) []float64 {
	out := make([]float64, len(rs))
	for i := range rs {
		out[i] = rs[i].IPC
	}
	return out
}

func mpkis(rs []metrics.Result) []float64 {
	out := make([]float64, len(rs))
	for i := range rs {
		out[i] = rs[i].MPKI
	}
	return out
}

// mpkiReduction returns the suite-mean MPKI reduction of exp over base (%).
func mpkiReduction(base, exp []metrics.Result) float64 {
	return metrics.MeanReduction(mpkis(base), mpkis(exp))
}

// ipcGain returns the geomean IPC gain of exp over base (%).
func ipcGain(base, exp []metrics.Result) float64 {
	return metrics.IPCGainPct(ipcs(base), ipcs(exp))
}

// byCategoryMPKI computes per-category MPKI reductions.
func byCategoryMPKI(base, exp []metrics.Result) ([]string, []float64) {
	return metrics.ByCategory(base, exp,
		func(r metrics.Result) float64 { return r.MPKI }, metrics.MeanReduction)
}

// byCategoryIPC computes per-category geomean IPC gains.
func byCategoryIPC(base, exp []metrics.Result) ([]string, []float64) {
	return metrics.ByCategory(base, exp,
		func(r metrics.Result) float64 { return r.IPC },
		func(a, b []float64) float64 { return metrics.IPCGainPct(a, b) })
}
