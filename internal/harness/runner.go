package harness

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
	"time"

	"localbp/internal/metrics"
	"localbp/internal/repair"
	"localbp/internal/workloads"
)

// Outcome is one workload × configuration result with repair statistics.
// Err is non-nil when the run failed (panic, watchdog trip, validation);
// the Result then carries only the workload identity with zero metrics.
type Outcome struct {
	Result metrics.Result
	Repair repair.Stats // zero value for the TAGE-only baseline
	Err    *RunError    // nil on success
}

// Runner executes specs over the workload suite, memoizing traces and
// results so that experiments sharing a configuration (most figures share
// the baseline and perfect-repair runs) pay for it once per process.
//
// Workload runs within one spec fan out across Opts.Workers goroutines
// (GOMAXPROCS by default); results are assembled in workload-index order,
// so a suite run is byte-identical regardless of worker count. A run that
// panics or trips the core watchdog yields an Outcome with a structured
// RunError while the rest of the suite completes.
type Runner struct {
	Opts  Options
	Log   io.Writer // optional progress sink
	cache *TraceCache

	mu       sync.Mutex
	memo     map[string][]Outcome
	failures []*RunError
}

// NewRunner builds a runner with the given options.
func NewRunner(o Options) *Runner {
	return &Runner{Opts: o, cache: NewTraceCache(), memo: map[string][]Outcome{}}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format, args...)
	}
}

// Failures returns every RunError recorded so far, in spec-execution order
// and workload order within a spec. Memoized (repeated) spec runs do not
// re-record their failures.
func (r *Runner) Failures() []*RunError {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*RunError, len(r.failures))
	copy(out, r.failures)
	return out
}

// Run executes spec over the whole suite (memoized by spec label) under a
// background context; see RunContext.
func (r *Runner) Run(spec Spec) []Outcome { return r.RunContext(context.Background(), spec) }

// RunContext executes spec over the whole suite (memoized by spec label).
//
// The spec is validated first: a malformed configuration fails every
// outcome with a PhaseValidate RunError before any simulation starts.
// Individual workload failures (panics, stalls) are isolated into their
// Outcome.Err; the remaining workloads still produce results, and
// ClassTransient failures are re-attempted up to Options.Retries times.
//
// Cancelling ctx drains the worker pool: every not-yet-started workload
// (and any attempt in flight, within one cancellation-check stride) yields
// a ClassCanceled outcome, and the partially-run spec is NOT memoized —
// a later RunContext with a live context re-runs it in full.
func (r *Runner) RunContext(ctx context.Context, spec Spec) []Outcome {
	if ctx == nil {
		ctx = context.Background()
	}
	r.mu.Lock()
	if out, ok := r.memo[spec.Label]; ok {
		r.mu.Unlock()
		return out
	}
	r.mu.Unlock()

	if r.Opts.Warmup > 0 {
		spec.Core.WarmupInsts = uint64(r.Opts.Warmup)
	}
	ws := r.Opts.suite()
	out := make([]Outcome, len(ws))

	if err := spec.Validate(); err != nil {
		for i, w := range ws {
			out[i].Result = metrics.Result{Workload: w.Name, Category: w.Category.String()}
			out[i].Err = &RunError{Workload: w.Name, SpecLabel: spec.Label,
				Phase: PhaseValidate, Err: err, Attempts: 1, Class: ClassPermanent}
		}
		r.finish(ctx, spec, out)
		return out
	}

	workers := min(r.Opts.workers(), len(ws))
	r.logf("running %-28s (%d workloads × %d insts, %d workers)\n",
		spec.Label, len(ws), r.Opts.Insts, workers)

	idx := make(chan int)
	var wg sync.WaitGroup
	for range workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = r.runOne(ctx, i, ws[i], spec)
			}
		}()
	}
	for i := range ws {
		idx <- i
	}
	close(idx)
	wg.Wait()

	r.finish(ctx, spec, out)
	return out
}

// runOne executes one workload under spec with the retry policy: transient
// failures (stalls, integrity trips, panics, chaos faults) are re-attempted
// up to Options.Retries times with optional backoff; permanent and canceled
// failures return immediately. A per-attempt deadline that expires while
// the sweep context is still live classifies as transient — the timeout may
// have been machine load — whereas a canceled sweep context stops the run
// for good.
func (r *Runner) runOne(ctx context.Context, i int, w workloads.Workload, spec Spec) Outcome {
	maxAttempts := max(1, r.Opts.Retries+1)
	chaosFaults := r.Opts.Chaos.FaultyAttempts(spec.Label, w.Name)
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return Outcome{
				Result: metrics.Result{Workload: w.Name, Category: w.Category.String()},
				Err: &RunError{Workload: w.Name, SpecLabel: spec.Label, Phase: PhaseCanceled,
					Err: err, Attempts: attempt - 1, Class: ClassCanceled},
			}
		}
		o := r.attemptOne(ctx, i, w, spec, attempt, chaosFaults)
		if o.Err == nil {
			return o
		}
		o.Err.Attempts = attempt
		o.Err.Class = Classify(o.Err)
		if o.Err.Class == ClassCanceled && ctx.Err() == nil {
			// The per-attempt RunTimeout expired but the sweep is alive:
			// retryable.
			o.Err.Class = ClassTransient
		}
		if o.Err.Class != ClassTransient {
			return o
		}
		if attempt >= maxAttempts {
			if r.Opts.Retries > 0 {
				o.Err.Class = ClassExhausted
			}
			return o
		}
		if bo := r.Opts.Backoff; bo != nil {
			if d := bo(spec.Label, w.Name, attempt); d > 0 {
				sleepCtx(ctx, d)
			}
		}
	}
}

// attemptOne executes a single attempt of one workload under spec,
// converting panics and watchdog errors into a structured Outcome.Err. The
// deferred recover is the isolation boundary: a panicking predictor, scheme
// or core kills only this outcome, not the sweep. Workload index i drives
// the deterministic audit sample (Options.AuditSample): audited runs report
// bit-identical metrics, so sampling composes with memoization. Chaos-plan
// faults fire before the simulation starts, so a later clean attempt is
// bit-identical to a first-try success.
func (r *Runner) attemptOne(ctx context.Context, i int, w workloads.Workload, spec Spec, attempt, chaosFaults int) (o Outcome) {
	if n := r.Opts.AuditSample; n > 0 && i%n == 0 {
		spec.Audit, spec.Golden = true, true
	}
	o.Result = metrics.Result{Workload: w.Name, Category: w.Category.String()}
	phase := PhaseGenerate
	defer func() {
		if p := recover(); p != nil {
			o.Repair = repair.Stats{}
			o.Result = metrics.Result{Workload: w.Name, Category: w.Category.String()}
			o.Err = &RunError{
				Workload:  w.Name,
				SpecLabel: spec.Label,
				Phase:     phase,
				Err:       fmt.Errorf("panic: %v", p),
				Stack:     string(debug.Stack()),
			}
		}
	}()

	tr, err := r.cache.Get(w, r.Opts.Insts)
	if err != nil {
		o.Err = &RunError{Workload: w.Name, SpecLabel: spec.Label, Phase: PhaseGenerate, Err: err}
		return o
	}

	phase = PhaseSimulate
	if attempt <= chaosFaults {
		o.Err = &RunError{Workload: w.Name, SpecLabel: spec.Label, Phase: PhaseSimulate,
			Err: fmt.Errorf("%w: chaos plan fails attempt %d/%d", ErrInjected, attempt, chaosFaults)}
		return o
	}
	if spec.preRun != nil {
		spec.preRun(w.Name)
	}
	actx := ctx
	if r.Opts.RunTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, r.Opts.RunTimeout)
		defer cancel()
	}
	st, rst, err := RunTraceContext(actx, tr, spec)
	if err != nil {
		o.Err = &RunError{Workload: w.Name, SpecLabel: spec.Label, Phase: PhaseSimulate, Err: err}
		return o
	}
	o.Result.IPC = st.IPC()
	o.Result.MPKI = st.MPKI()
	o.Result.TageMPKI = st.TageMPKI()
	if rst != nil {
		o.Repair = *rst
	}
	return o
}

// sleepCtx waits d or until ctx is canceled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// finish memoizes the outcomes, records failures in workload order, and
// logs the N/M degradation summary when any run failed. A canceled run
// poisons neither the memo nor the failure record: the spec re-runs in
// full under a live context, and cancellations are not failures.
func (r *Runner) finish(ctx context.Context, spec Spec, out []Outcome) {
	var failed []*RunError
	canceled := 0
	for i := range out {
		e := out[i].Err
		if e == nil {
			continue
		}
		if e.Class == ClassCanceled {
			canceled++
			continue
		}
		failed = append(failed, e)
	}
	r.mu.Lock()
	if ctx.Err() == nil && canceled == 0 {
		r.memo[spec.Label] = out
	}
	r.failures = append(r.failures, failed...)
	r.mu.Unlock()
	if len(failed) > 0 {
		r.logf("spec %s: %d/%d workload runs FAILED (%s; first: %v)\n",
			spec.Label, len(failed), len(out), classSummary(failed), failed[0].Err)
	}
	if canceled > 0 {
		r.logf("spec %s: %d/%d workload runs canceled (spec not memoized)\n",
			spec.Label, canceled, len(out))
	}
}

// classSummary renders failure counts by retry class, e.g.
// "2 permanent, 1 retry-exhausted".
func classSummary(failed []*RunError) string {
	counts := map[ErrorClass]int{}
	for _, f := range failed {
		counts[f.Class]++
	}
	var b []byte
	for _, c := range []ErrorClass{ClassPermanent, ClassTransient, ClassExhausted, ClassCanceled} {
		if n := counts[c]; n > 0 {
			if len(b) > 0 {
				b = append(b, ", "...)
			}
			b = fmt.Appendf(b, "%d %s", n, c)
		}
	}
	if len(b) == 0 {
		return "unclassified"
	}
	return string(b)
}

// Results extracts the metrics side of Run.
func (r *Runner) Results(spec Spec) []metrics.Result {
	return r.ResultsContext(context.Background(), spec)
}

// ResultsContext extracts the metrics side of RunContext.
func (r *Runner) ResultsContext(ctx context.Context, spec Spec) []metrics.Result {
	out := r.RunContext(ctx, spec)
	rs := make([]metrics.Result, len(out))
	for i := range out {
		rs[i] = out[i].Result
	}
	return rs
}

// helpers shared by the experiment definitions

func ipcs(rs []metrics.Result) []float64 {
	out := make([]float64, len(rs))
	for i := range rs {
		out[i] = rs[i].IPC
	}
	return out
}

func mpkis(rs []metrics.Result) []float64 {
	out := make([]float64, len(rs))
	for i := range rs {
		out[i] = rs[i].MPKI
	}
	return out
}

// mpkiReduction returns the suite-mean MPKI reduction of exp over base (%).
func mpkiReduction(base, exp []metrics.Result) float64 {
	return metrics.MeanReduction(mpkis(base), mpkis(exp))
}

// ipcGain returns the geomean IPC gain of exp over base (%).
func ipcGain(base, exp []metrics.Result) float64 {
	return metrics.IPCGainPct(ipcs(base), ipcs(exp))
}

// byCategoryMPKI computes per-category MPKI reductions.
func byCategoryMPKI(base, exp []metrics.Result) ([]string, []float64, error) {
	return metrics.ByCategory(base, exp,
		func(r metrics.Result) float64 { return r.MPKI }, metrics.MeanReduction)
}

// byCategoryIPC computes per-category geomean IPC gains.
func byCategoryIPC(base, exp []metrics.Result) ([]string, []float64, error) {
	return metrics.ByCategory(base, exp,
		func(r metrics.Result) float64 { return r.IPC },
		func(a, b []float64) float64 { return metrics.IPCGainPct(a, b) })
}
