// Package harness wires workloads, predictors, repair schemes and the core
// model into the experiments of the paper: one function per figure/table
// (fig4 … fig14b, table1 … table3). The lbpsweep command drives it.
package harness

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"localbp/internal/audit"
	"localbp/internal/bpu"
	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/core"
	"localbp/internal/faultinject"
	"localbp/internal/metrics"
	"localbp/internal/obs"
	"localbp/internal/repair"
	"localbp/internal/trace"
	"localbp/internal/workloads"
)

// SchemeMaker builds a fresh repair scheme per run (schemes hold state).
// A nil maker means the TAGE-only baseline.
type SchemeMaker func() repair.Scheme

// Spec describes one configuration to simulate.
type Spec struct {
	Label  string
	Tage   tage.Config
	Scheme SchemeMaker
	Oracle bool
	Core   core.Config

	// Audit enables the integrity auditor: core-loop and scheme-level
	// invariant checks whose first violation aborts the run with a
	// structured audit.IntegrityError. All checks are read-only, so an
	// audited run reports bit-identical statistics.
	Audit bool
	// Golden enables the differential oracle: every retirement is
	// cross-checked against a timing-free in-order execution of the trace.
	Golden bool
	// AuditInterval overrides the auditor's structural-scan stride in
	// cycles/events (0 selects audit.DefaultInterval).
	AuditInterval int64
	// Inject, when non-nil, wraps the scheme with deterministic fault
	// injection (robustness testing; see internal/faultinject).
	Inject *faultinject.Config

	// Obs, when non-nil, enables the observability layer: every run builds
	// a fresh obs.Hooks (so concurrent runs never share counter or tracer
	// state) and hands it to Obs.Done after a successful simulation.
	Obs *ObsSpec

	// Progress, when non-nil, receives the cumulative retired-instruction
	// count at the core's cancellation-poll stride and once at completion
	// (core.Config.Progress). It runs on the simulation goroutine — under
	// the parallel Runner that means up to Workers concurrent callers — so
	// implementations must be cheap and safe for concurrent use (batch
	// through per-run obs.Accumulators committing into a shared sink).
	Progress func(retired uint64)

	// preRun, when set, is invoked at the start of every workload run with
	// the workload name. It exists for fault-injection tests (a hook that
	// panics for one workload exercises the runner's panic isolation) and
	// is deliberately unexported.
	preRun func(workload string)
}

// ObsSpec selects which observability instruments a spec's runs carry.
// Each run gets its own obs.Hooks; under the parallel Runner, Done may be
// invoked from multiple goroutines and must be safe for concurrent use.
type ObsSpec struct {
	CPIStack bool // per-cycle CPI-stack attribution (audited: must sum to cycles)
	Counters bool // counter registry across core/mem/obq/repair
	TraceCap int  // event-tracer ring capacity; 0 disables tracing
	// Observer, when set with TraceCap > 0, streams every event as emitted.
	Observer func(obs.Event)
	// Done receives the run's hooks after a successful simulation.
	Done func(h *obs.Hooks)
}

// hooks builds one run's observability instruments.
func (o *ObsSpec) hooks() *obs.Hooks {
	h := &obs.Hooks{}
	if o.CPIStack {
		h.CPI = obs.NewCPIStack()
	}
	if o.Counters {
		h.Reg = obs.NewRegistry()
	}
	if o.TraceCap > 0 {
		h.Tracer = obs.NewTracer(o.TraceCap)
		h.Tracer.Observer = o.Observer
	}
	return h
}

// Validate checks everything about the spec that can fail before simulation
// starts: the label, the TAGE and core configurations, and — by trial
// construction — the repair scheme (which validates its loop.Config). All
// violations are reported at once with field-level messages.
func (s Spec) Validate() error {
	var errs []error
	if s.Label == "" {
		errs = append(errs, errors.New("spec: empty Label"))
	}
	if err := s.Tage.Validate(); err != nil {
		errs = append(errs, err)
	}
	if err := s.Core.Validate(); err != nil {
		errs = append(errs, err)
	}
	if s.Scheme != nil {
		if err := trialScheme(s.Scheme); err != nil {
			errs = append(errs, err)
		}
	}
	if s.Inject != nil {
		if err := s.Inject.Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	if s.AuditInterval < 0 {
		errs = append(errs, fmt.Errorf("spec: AuditInterval: got %d, want >= 0", s.AuditInterval))
	}
	if s.Obs != nil && s.Obs.TraceCap < 0 {
		errs = append(errs, fmt.Errorf("spec: Obs.TraceCap: got %d, want >= 0", s.Obs.TraceCap))
	}
	return errors.Join(errs...)
}

// trialScheme constructs one throwaway scheme instance, converting a
// constructor panic (loop/repair geometry validation) into an error.
func trialScheme(mk SchemeMaker) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("spec: scheme construction panicked: %v", p)
		}
	}()
	if mk() == nil {
		return errors.New("spec: scheme maker returned nil (use a nil Scheme for the baseline)")
	}
	return nil
}

// BaselineSpec is the TAGE-only Table 2 baseline.
func BaselineSpec() Spec {
	return Spec{Label: "tage", Tage: tage.KB8(), Core: core.DefaultConfig()}
}

// PerfectSpec is CBPw-Loop with perfect instantaneous repair.
func PerfectSpec(cfg loop.Config) Spec {
	s := BaselineSpec()
	s.Label = "perfect-" + cfg.Name
	s.Scheme = func() repair.Scheme { return repair.NewPerfect(cfg) }
	return s
}

// RunTrace simulates one prepared trace under spec and returns core stats.
// Failures (watchdog, integrity) panic with their structured error;
// fault-tolerant callers use RunTraceChecked.
func RunTrace(tr []trace.Inst, spec Spec) core.Stats {
	st, _, err := RunTraceChecked(tr, spec)
	if err != nil {
		panic(err)
	}
	return st
}

// RunTraceFull simulates one trace and returns core stats plus the scheme's
// repair stats (nil for the baseline). A failed run returns a structured
// *RunError instead of panicking.
func RunTraceFull(tr []trace.Inst, spec Spec) (core.Stats, *repair.Stats, error) {
	st, rst, err := RunTraceChecked(tr, spec)
	if err != nil {
		return st, rst, &RunError{SpecLabel: spec.Label, Phase: PhaseSimulate, Err: err}
	}
	return st, rst, nil
}

// forceAudit reports whether LBP_AUDIT=1 is set: the `make audit` hook that
// runs the whole tier-1 suite with the auditor and golden model enabled.
// Fault-injection runs are exempt — their state is corrupted on purpose, so
// auditing them would (correctly) flag the injected damage and defeat the
// graceful-degradation tests.
var forceAudit = sync.OnceValue(func() bool { return os.Getenv("LBP_AUDIT") == "1" })

// RunTraceChecked simulates one trace under spec, converting a core
// watchdog trip or integrity violation into an error (match with
// errors.Is against core.ErrStalled / audit.ErrIntegrity) instead of an
// infinite loop or panic. Repair stats are nil for the baseline.
func RunTraceChecked(tr []trace.Inst, spec Spec) (core.Stats, *repair.Stats, error) {
	return RunTraceContext(context.Background(), tr, spec)
}

// RunTraceContext is RunTraceChecked under a context: cancellation or a
// deadline aborts the simulation within one cancellation-check stride with
// an error matching context.Canceled / context.DeadlineExceeded /
// core.ErrCanceled. The context checks are read-only — a run that completes
// is bit-identical to RunTraceChecked.
func RunTraceContext(ctx context.Context, tr []trace.Inst, spec Spec) (core.Stats, *repair.Stats, error) {
	return RunSourceContext(ctx, trace.NewSliceSource(tr), spec)
}

// RunSourceContext is RunTraceContext over a streaming trace.Source: an
// in-memory source takes the resident-program path bit-identically, while a
// file or mmap source replays through the core's sliding window at fixed
// memory. The golden oracle needs the whole trace resident, so spec.Golden on
// a true streaming source is an error; the LBP_AUDIT=1 force keeps the
// auditor and skips only the oracle for such sources. The caller retains
// ownership of src (closing, single-consumer discipline).
func RunSourceContext(ctx context.Context, src trace.Source, spec Spec) (core.Stats, *repair.Stats, error) {
	goldenExplicit := spec.Golden
	if forceAudit() && spec.Inject == nil {
		spec.Audit, spec.Golden = true, true
	}
	var scheme repair.Scheme
	if spec.Scheme != nil {
		scheme = spec.Scheme()
	}
	cfg := spec.Core
	if spec.Progress != nil {
		cfg.Progress = spec.Progress
	}
	var hooks *obs.Hooks
	if spec.Obs != nil {
		hooks = spec.Obs.hooks()
		cfg.Obs = hooks
		if scheme != nil {
			// Register the raw scheme before any decorator wraps it: the
			// inject/audit wrappers forward behaviour, not registration.
			repair.AttachObs(scheme, hooks.Reg, hooks.Tracer)
		}
	}
	var inj *faultinject.Injector
	if spec.Inject != nil {
		var err error
		inj, err = faultinject.New(*spec.Inject)
		if err != nil {
			return core.Stats{}, nil, err
		}
		if scheme != nil {
			scheme = inj.Wrap(scheme)
		}
	}
	if spec.Audit {
		aud := audit.New()
		aud.Interval = spec.AuditInterval
		cfg.Audit = aud
		if scheme != nil {
			// Injection innermost, audit outermost: the auditor observes
			// the faulted scheme exactly as the pipeline does.
			scheme = audit.WrapScheme(scheme, aud)
		}
	}
	if spec.Golden && cfg.Golden == nil {
		// A caller-provided golden model (spec.Core.Golden) wins: tests use
		// it to feed the oracle a deliberately divergent program.
		if tr, ok := trace.SourceSlice(src); ok {
			cfg.Golden = audit.NewGolden(tr)
		} else if goldenExplicit {
			return core.Stats{}, nil, errors.New(
				"harness: the golden oracle needs the whole trace in memory; streaming sources support Audit only")
		}
		// Forced (LBP_AUDIT=1) golden on a streaming source: keep the
		// auditor, skip the oracle.
	}
	unit := bpu.NewUnit(spec.Tage, scheme)
	unit.Oracle = spec.Oracle
	if inj != nil {
		inj.AttachTAGE(unit.Tage)
	}
	c, err := core.NewStream(cfg, unit, src)
	if err != nil {
		return core.Stats{}, nil, err
	}
	st, err := c.RunContext(ctx)
	if err != nil {
		return st, nil, err
	}
	if hooks != nil && spec.Obs.Done != nil {
		spec.Obs.Done(hooks)
	}
	if scheme != nil {
		return st, scheme.Stats(), nil
	}
	return st, nil, nil
}

// Options controls suite-level experiment execution.
type Options struct {
	Insts   int  // instructions per workload
	Quick   bool // use the reduced suite
	Warmup  int  // leading retired instructions excluded from statistics
	Workers int  // concurrent workload runs; <= 0 means GOMAXPROCS

	// AuditSample enables the integrity auditor and golden model on every
	// Nth workload (by suite index) of every spec: a deterministic,
	// cheap sample of fully-verified runs inside an ordinary sweep. 0
	// disables sampling; 1 audits everything. Audited runs report
	// bit-identical statistics, so memoized results are unaffected.
	AuditSample int

	// Retries is how many times a ClassTransient failure (stall, integrity
	// trip, panic, injected chaos fault) is re-attempted per workload run.
	// Retries reuse the cached trace and build a fresh scheme, so a retried
	// run that succeeds is bit-identical to one that succeeded first try.
	// Permanent and canceled failures are never retried.
	Retries int

	// RunTimeout, when > 0, bounds each workload attempt's wall-clock time
	// via a per-attempt context deadline. It composes with the core's
	// cycle-domain watchdog: whichever trips first aborts the attempt.
	RunTimeout time.Duration

	// Backoff, when non-nil, returns the delay before retry attempt
	// `attempt` (1-based: the delay before the second attempt has
	// attempt=1) of spec × workload. The sleep respects the run context.
	// Nil means retry immediately.
	Backoff func(spec, workload string, attempt int) time.Duration

	// Chaos, when non-nil, deterministically fails the leading attempts of
	// selected runs with ErrInjected (see ChaosPlan) to exercise the retry
	// machinery; with Retries >= Chaos.MaxFaults every run still completes,
	// bit-identically to an un-chaosed sweep.
	Chaos *ChaosPlan
}

// DefaultOptions balances fidelity and single-CPU runtime.
func DefaultOptions() Options { return Options{Insts: 120_000} }

// suite returns the selected workload list.
func (o Options) suite() []workloads.Workload {
	if o.Quick {
		return workloads.QuickSuite()
	}
	return workloads.Suite()
}

// workers resolves the worker-pool size.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunSuite simulates every workload under spec, reusing pre-generated traces
// when provided via cache (keyed by workload name and length). A failed
// workload yields a zero-metric Result and a structured *RunError; the rest
// of the suite still runs, and the joined errors are returned alongside.
// Context cancellation stops the remaining workloads with ClassCanceled
// RunErrors. Sweeps wanting memoization and parallelism use Runner.RunContext.
func RunSuite(ctx context.Context, o Options, spec Spec, cache *TraceCache) ([]metrics.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ws := o.suite()
	out := make([]metrics.Result, len(ws))
	var errs []error
	for i, w := range ws {
		out[i] = metrics.Result{Workload: w.Name, Category: w.Category.String()}
		if err := ctx.Err(); err != nil {
			errs = append(errs, &RunError{Workload: w.Name, SpecLabel: spec.Label,
				Phase: PhaseCanceled, Err: err, Class: ClassCanceled, Attempts: 0})
			continue
		}
		tr, err := cache.Get(w, o.Insts)
		if err != nil {
			errs = append(errs, &RunError{Workload: w.Name, SpecLabel: spec.Label,
				Phase: PhaseGenerate, Err: err, Class: ClassPermanent, Attempts: 1})
			continue
		}
		st, _, err := RunTraceContext(ctx, tr, spec)
		if err != nil {
			re := &RunError{Workload: w.Name, SpecLabel: spec.Label, Phase: PhaseSimulate, Err: err, Attempts: 1}
			re.Class = Classify(re)
			errs = append(errs, re)
			continue
		}
		out[i].IPC = st.IPC()
		out[i].MPKI = st.MPKI()
		out[i].TageMPKI = st.TageMPKI()
	}
	return out, errors.Join(errs...)
}

// traceKey identifies one cached trace. Generated workloads key by
// workload × instruction count; file-backed workloads additionally key by
// (path, mtime, size), so a trace file regenerated on disk is re-read
// instead of served stale.
type traceKey struct {
	name  string
	insts int
	path  string
	mtime int64 // file modification time, UnixNano (0 for generated)
	size  int64 // file size in bytes (0 for generated)
}

// keyFor builds the cache key, statting file-backed workloads.
func keyFor(w workloads.Workload, n int) (traceKey, error) {
	k := traceKey{name: w.Name, insts: n}
	if w.TraceFile != "" {
		st, err := os.Stat(w.TraceFile)
		if err != nil {
			return k, fmt.Errorf("harness: stat trace file: %w", err)
		}
		k.path = w.TraceFile
		k.mtime = st.ModTime().UnixNano()
		k.size = st.Size()
	}
	return k, nil
}

// traceEntry is one cache slot; once ensures a trace is generated exactly
// one time even when several workers request it concurrently (the others
// block in Do until generation finishes).
type traceEntry struct {
	once sync.Once
	tr   []trace.Inst
	err  error
}

// TraceCache memoizes generated workload traces across configurations so a
// sweep generates each (workload, insts) pair once, and recycles released
// trace buffers so sequential single-use patterns (generate, simulate,
// release, next workload) reuse one flat []trace.Inst chunk instead of
// allocating per workload. It is safe for concurrent use by multiple
// goroutines.
type TraceCache struct {
	mu      sync.Mutex
	entries map[traceKey]*traceEntry
	spare   [][]trace.Inst // released generation buffers, ready for reuse
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: map[traceKey]*traceEntry{}}
}

// takeSpare pops a recycled generation buffer (nil when none is parked).
func (tc *TraceCache) takeSpare() []trace.Inst {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if n := len(tc.spare); n > 0 {
		buf := tc.spare[n-1]
		tc.spare = tc.spare[:n-1]
		return buf
	}
	return nil
}

// Get returns the trace for w at n instructions, generating (or, for
// file-backed workloads, reading and validating the file) on first use.
// Generation decodes into a recycled buffer when one is available (see
// Release). Concurrent callers for the same key share one generation;
// different keys generate in parallel. A file-backed workload's key includes
// the file's (path, mtime, size), so a regenerated file is re-read.
func (tc *TraceCache) Get(w workloads.Workload, n int) ([]trace.Inst, error) {
	k, err := keyFor(w, n)
	if err != nil {
		return nil, err
	}
	tc.mu.Lock()
	e, ok := tc.entries[k]
	if !ok {
		e = &traceEntry{}
		tc.entries[k] = e
	}
	tc.mu.Unlock()
	e.once.Do(func() {
		if w.TraceFile != "" {
			e.tr, e.err = readFileTrace(w, n)
			return
		}
		if n <= 0 {
			e.err = fmt.Errorf("trace length: got %d instructions, want > 0", n)
			return
		}
		tr := w.GenerateInto(tc.takeSpare(), n)
		if err := trace.Validate(tr); err != nil {
			e.err = err
			return
		}
		e.tr = tr
	})
	return e.tr, e.err
}

// readFileTrace materializes a file-backed workload's stream (capped at n
// when n > 0) and validates it.
func readFileTrace(w workloads.Workload, n int) ([]trace.Inst, error) {
	src, err := w.Open(n)
	if err != nil {
		return nil, err
	}
	defer trace.CloseSource(src)
	tr, err := trace.ReadAll(src)
	if err != nil {
		return nil, err
	}
	if err := trace.Validate(tr); err != nil {
		return nil, err
	}
	return tr, nil
}

// GetSource returns a streaming source for w at n instructions. Sources are
// stateful and single-consumer, so every call hands out a fresh one:
// generated workloads serve a zero-copy SliceSource over the cached trace,
// file-backed workloads open the file anew (fixed-memory replay; the key
// discipline of Get does not apply because nothing is cached). Close
// file-backed sources with trace.CloseSource.
func (tc *TraceCache) GetSource(w workloads.Workload, n int) (trace.Source, error) {
	if w.TraceFile != "" {
		return w.Open(n)
	}
	tr, err := tc.Get(w, n)
	if err != nil {
		return nil, err
	}
	return trace.NewSliceSource(tr), nil
}

// Release evicts the cached trace for w at n instructions and parks its
// buffer for reuse by a later generation. Only call it when no simulation
// still holds the slice returned by Get — the next Get for any workload may
// overwrite its contents in place.
func (tc *TraceCache) Release(w workloads.Workload, n int) {
	k, err := keyFor(w, n)
	if err != nil {
		return // the file vanished; nothing cached under its current stamp
	}
	tc.mu.Lock()
	e, ok := tc.entries[k]
	if ok {
		delete(tc.entries, k)
	}
	tc.mu.Unlock()
	if !ok {
		return
	}
	// Synchronize with a concurrent generation: Do blocks until the first
	// call completes, establishing the happens-before for reading e.tr.
	e.once.Do(func() {})
	if e.tr == nil {
		return
	}
	tc.mu.Lock()
	tc.spare = append(tc.spare, e.tr[:0])
	tc.mu.Unlock()
}
