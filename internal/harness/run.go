// Package harness wires workloads, predictors, repair schemes and the core
// model into the experiments of the paper: one function per figure/table
// (fig4 … fig14b, table1 … table3). The lbpsweep command drives it.
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"localbp/internal/bpu"
	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/core"
	"localbp/internal/metrics"
	"localbp/internal/repair"
	"localbp/internal/trace"
	"localbp/internal/workloads"
)

// SchemeMaker builds a fresh repair scheme per run (schemes hold state).
// A nil maker means the TAGE-only baseline.
type SchemeMaker func() repair.Scheme

// Spec describes one configuration to simulate.
type Spec struct {
	Label  string
	Tage   tage.Config
	Scheme SchemeMaker
	Oracle bool
	Core   core.Config

	// preRun, when set, is invoked at the start of every workload run with
	// the workload name. It exists for fault-injection tests (a hook that
	// panics for one workload exercises the runner's panic isolation) and
	// is deliberately unexported.
	preRun func(workload string)
}

// Validate checks everything about the spec that can fail before simulation
// starts: the label, the TAGE and core configurations, and — by trial
// construction — the repair scheme (which validates its loop.Config). All
// violations are reported at once with field-level messages.
func (s Spec) Validate() error {
	var errs []error
	if s.Label == "" {
		errs = append(errs, errors.New("spec: empty Label"))
	}
	if err := s.Tage.Validate(); err != nil {
		errs = append(errs, err)
	}
	if err := s.Core.Validate(); err != nil {
		errs = append(errs, err)
	}
	if s.Scheme != nil {
		if err := trialScheme(s.Scheme); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// trialScheme constructs one throwaway scheme instance, converting a
// constructor panic (loop/repair geometry validation) into an error.
func trialScheme(mk SchemeMaker) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("spec: scheme construction panicked: %v", p)
		}
	}()
	if mk() == nil {
		return errors.New("spec: scheme maker returned nil (use a nil Scheme for the baseline)")
	}
	return nil
}

// BaselineSpec is the TAGE-only Table 2 baseline.
func BaselineSpec() Spec {
	return Spec{Label: "tage", Tage: tage.KB8(), Core: core.DefaultConfig()}
}

// PerfectSpec is CBPw-Loop with perfect instantaneous repair.
func PerfectSpec(cfg loop.Config) Spec {
	s := BaselineSpec()
	s.Label = "perfect-" + cfg.Name
	s.Scheme = func() repair.Scheme { return repair.NewPerfect(cfg) }
	return s
}

// RunTrace simulates one prepared trace under spec and returns core stats.
func RunTrace(tr []trace.Inst, spec Spec) core.Stats {
	var scheme repair.Scheme
	if spec.Scheme != nil {
		scheme = spec.Scheme()
	}
	unit := bpu.NewUnit(spec.Tage, scheme)
	unit.Oracle = spec.Oracle
	c := core.New(spec.Core, unit, tr)
	return c.Run()
}

// RunTraceFull simulates one trace and returns core stats plus the scheme's
// repair stats (nil for the baseline). A watchdog trip panics; the parallel
// runner uses RunTraceChecked instead.
func RunTraceFull(tr []trace.Inst, spec Spec) (core.Stats, *repair.Stats) {
	st, rst, err := RunTraceChecked(tr, spec)
	if err != nil {
		panic(err)
	}
	return st, rst
}

// RunTraceChecked simulates one trace under spec, converting a core
// watchdog trip into an error (errors.Is(err, core.ErrStalled)) instead of
// an infinite loop or panic. Repair stats are nil for the baseline.
func RunTraceChecked(tr []trace.Inst, spec Spec) (core.Stats, *repair.Stats, error) {
	var scheme repair.Scheme
	if spec.Scheme != nil {
		scheme = spec.Scheme()
	}
	unit := bpu.NewUnit(spec.Tage, scheme)
	unit.Oracle = spec.Oracle
	c := core.New(spec.Core, unit, tr)
	st, err := c.RunChecked()
	if err != nil {
		return st, nil, err
	}
	if scheme != nil {
		return st, scheme.Stats(), nil
	}
	return st, nil, nil
}

// Options controls suite-level experiment execution.
type Options struct {
	Insts   int  // instructions per workload
	Quick   bool // use the reduced suite
	Warmup  int  // leading retired instructions excluded from statistics
	Workers int  // concurrent workload runs; <= 0 means GOMAXPROCS
}

// DefaultOptions balances fidelity and single-CPU runtime.
func DefaultOptions() Options { return Options{Insts: 120_000} }

// suite returns the selected workload list.
func (o Options) suite() []workloads.Workload {
	if o.Quick {
		return workloads.QuickSuite()
	}
	return workloads.Suite()
}

// workers resolves the worker-pool size.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunSuite simulates every workload under spec, reusing pre-generated traces
// when provided via cache (keyed by workload name and length). Failures
// panic; sweeps wanting graceful degradation use Runner.Run.
func RunSuite(o Options, spec Spec, cache *TraceCache) []metrics.Result {
	ws := o.suite()
	out := make([]metrics.Result, len(ws))
	for i, w := range ws {
		tr, err := cache.Get(w, o.Insts)
		if err != nil {
			panic(err)
		}
		st := RunTrace(tr, spec)
		out[i] = metrics.Result{
			Workload: w.Name,
			Category: w.Category.String(),
			IPC:      st.IPC(),
			MPKI:     st.MPKI(),
			TageMPKI: st.TageMPKI(),
		}
	}
	return out
}

// traceKey identifies one generated trace: workload × instruction count.
type traceKey struct {
	name  string
	insts int
}

// traceEntry is one cache slot; once ensures a trace is generated exactly
// one time even when several workers request it concurrently (the others
// block in Do until generation finishes).
type traceEntry struct {
	once sync.Once
	tr   []trace.Inst
	err  error
}

// TraceCache memoizes generated workload traces across configurations so a
// sweep generates each (workload, insts) pair once. It is safe for
// concurrent use by multiple goroutines.
type TraceCache struct {
	mu      sync.Mutex
	entries map[traceKey]*traceEntry
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{entries: map[traceKey]*traceEntry{}}
}

// Get returns the trace for w at n instructions, generating and validating
// it on first use. Concurrent callers for the same key share one
// generation; different keys generate in parallel.
func (tc *TraceCache) Get(w workloads.Workload, n int) ([]trace.Inst, error) {
	k := traceKey{name: w.Name, insts: n}
	tc.mu.Lock()
	e, ok := tc.entries[k]
	if !ok {
		e = &traceEntry{}
		tc.entries[k] = e
	}
	tc.mu.Unlock()
	e.once.Do(func() {
		if n <= 0 {
			e.err = fmt.Errorf("trace length: got %d instructions, want > 0", n)
			return
		}
		tr := w.Generate(n)
		if err := trace.Validate(tr); err != nil {
			e.err = err
			return
		}
		e.tr = tr
	})
	return e.tr, e.err
}
