// Package harness wires workloads, predictors, repair schemes and the core
// model into the experiments of the paper: one function per figure/table
// (fig4 … fig14b, table1 … table3). The lbpsweep command drives it.
package harness

import (
	"localbp/internal/bpu"
	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/core"
	"localbp/internal/metrics"
	"localbp/internal/repair"
	"localbp/internal/trace"
	"localbp/internal/workloads"
)

// SchemeMaker builds a fresh repair scheme per run (schemes hold state).
// A nil maker means the TAGE-only baseline.
type SchemeMaker func() repair.Scheme

// Spec describes one configuration to simulate.
type Spec struct {
	Label  string
	Tage   tage.Config
	Scheme SchemeMaker
	Oracle bool
	Core   core.Config
}

// BaselineSpec is the TAGE-only Table 2 baseline.
func BaselineSpec() Spec {
	return Spec{Label: "tage", Tage: tage.KB8(), Core: core.DefaultConfig()}
}

// PerfectSpec is CBPw-Loop with perfect instantaneous repair.
func PerfectSpec(cfg loop.Config) Spec {
	s := BaselineSpec()
	s.Label = "perfect-" + cfg.Name
	s.Scheme = func() repair.Scheme { return repair.NewPerfect(cfg) }
	return s
}

// RunTrace simulates one prepared trace under spec and returns core stats.
func RunTrace(tr []trace.Inst, spec Spec) core.Stats {
	var scheme repair.Scheme
	if spec.Scheme != nil {
		scheme = spec.Scheme()
	}
	unit := bpu.NewUnit(spec.Tage, scheme)
	unit.Oracle = spec.Oracle
	c := core.New(spec.Core, unit, tr)
	return c.Run()
}

// RunTraceFull simulates one trace and returns core stats plus the scheme's
// repair stats (nil for the baseline).
func RunTraceFull(tr []trace.Inst, spec Spec) (core.Stats, *repair.Stats) {
	var scheme repair.Scheme
	if spec.Scheme != nil {
		scheme = spec.Scheme()
	}
	unit := bpu.NewUnit(spec.Tage, scheme)
	unit.Oracle = spec.Oracle
	c := core.New(spec.Core, unit, tr)
	st := c.Run()
	if scheme != nil {
		return st, scheme.Stats()
	}
	return st, nil
}

// Options controls suite-level experiment execution.
type Options struct {
	Insts  int  // instructions per workload
	Quick  bool // use the reduced suite
	Warmup int  // leading retired instructions excluded from statistics
}

// DefaultOptions balances fidelity and single-CPU runtime.
func DefaultOptions() Options { return Options{Insts: 120_000} }

// suite returns the selected workload list.
func (o Options) suite() []workloads.Workload {
	if o.Quick {
		return workloads.QuickSuite()
	}
	return workloads.Suite()
}

// RunSuite simulates every workload under spec, reusing pre-generated traces
// when provided via cache (keyed by workload name).
func RunSuite(o Options, spec Spec, cache *TraceCache) []metrics.Result {
	ws := o.suite()
	out := make([]metrics.Result, len(ws))
	for i, w := range ws {
		tr := cache.Get(w, o.Insts)
		st := RunTrace(tr, spec)
		out[i] = metrics.Result{
			Workload: w.Name,
			Category: w.Category.String(),
			IPC:      st.IPC(),
			MPKI:     st.MPKI(),
			TageMPKI: st.TageMPKI(),
		}
	}
	return out
}

// TraceCache memoizes generated workload traces across configurations so a
// sweep generates each workload once.
type TraceCache struct {
	insts  int
	traces map[string][]trace.Inst
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{traces: map[string][]trace.Inst{}}
}

// Get returns the trace for w at n instructions, generating on first use.
func (tc *TraceCache) Get(w workloads.Workload, n int) []trace.Inst {
	if tc.insts != n {
		tc.traces = map[string][]trace.Inst{}
		tc.insts = n
	}
	if tr, ok := tc.traces[w.Name]; ok {
		return tr
	}
	tr := w.Generate(n)
	tc.traces[w.Name] = tr
	return tr
}
