package harness

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"localbp/internal/trace"
	"localbp/internal/workloads"
)

// writeLBP2 persists tr at path in the LBP2 format.
func writeLBP2(t *testing.T, path string, tr []trace.Inst) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTraceLBP2(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTraceCacheStaleFile pins the keying fix: regenerating a trace file on
// disk must invalidate the cache entry, not serve the old contents.
func TestTraceCacheStaleFile(t *testing.T) {
	gen := workloads.QuickSuite()[0]
	path := filepath.Join(t.TempDir(), "w.lbp2")
	first := gen.Generate(2000)
	writeLBP2(t, path, first)

	tc := NewTraceCache()
	w := workloads.FromFile(path)
	got1, err := tc.Get(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got1) != 2000 {
		t.Fatalf("first read: %d insts", len(got1))
	}

	// Regenerate the file with different contents; force a distinct mtime in
	// case the filesystem's timestamp granularity would merge the writes.
	second := gen.Generate(3000)
	writeLBP2(t, path, second)
	if err := os.Chtimes(path, time.Time{}, time.Now().Add(2*time.Second)); err != nil {
		t.Fatal(err)
	}
	got2, err := tc.Get(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 3000 {
		t.Fatalf("stale cache: regenerated file served with %d insts, want 3000", len(got2))
	}

	// Same stamp → cached (pointer-identical slice).
	got3, err := tc.Get(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if &got2[0] != &got3[0] {
		t.Fatal("unchanged file was re-read instead of served from cache")
	}
}

// TestRunSourceFileReplayBitIdentical checks a file-replayed simulation is
// bit-identical to the in-process-generated run of the same workload/seed,
// through both the harness source path and the cache.
func TestRunSourceFileReplayBitIdentical(t *testing.T) {
	w := workloads.QuickSuite()[2]
	const insts = 60_000
	tr := w.Generate(insts)
	spec := BaselineSpec()

	want, _, err := RunTraceContext(context.Background(), tr, spec)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "w.lbp2")
	writeLBP2(t, path, tr)
	tc := NewTraceCache()
	src, err := tc.GetSource(workloads.FromFile(path), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer trace.CloseSource(src)
	got, _, err := RunSourceContext(context.Background(), src, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("file replay diverges from in-process generation\n  file: %+v\n  gen:  %+v", got, want)
	}
}

// TestRunSourceQuickSuiteBitIdentical is the golden replay gate across the
// whole quick suite: every workload, written to LBP2 and streamed back
// through the source path, must reproduce the in-process run bit-exactly.
func TestRunSourceQuickSuiteBitIdentical(t *testing.T) {
	const insts = 12_000
	dir := t.TempDir()
	spec := BaselineSpec()
	for _, w := range workloads.QuickSuite() {
		tr := w.Generate(insts)
		want, _, err := RunTraceContext(context.Background(), tr, spec)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		path := filepath.Join(dir, w.Name+".lbp2")
		writeLBP2(t, path, tr)
		src, err := trace.OpenSource(path)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		got, _, err := RunSourceContext(context.Background(), src, spec)
		trace.CloseSource(src)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if got != want {
			t.Fatalf("%s: file replay diverges from in-process generation\n  file: %+v\n  gen:  %+v",
				w.Name, got, want)
		}
	}
}

// TestRunSourceGoldenRequiresSlice pins the contract: an explicit golden
// oracle on a true streaming source errors out clearly instead of silently
// loading the trace.
func TestRunSourceGoldenRequiresSlice(t *testing.T) {
	w := workloads.QuickSuite()[0]
	path := filepath.Join(t.TempDir(), "w.lbp2")
	writeLBP2(t, path, w.Generate(5000))
	src, err := trace.OpenSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer trace.CloseSource(src)
	spec := BaselineSpec()
	spec.Golden = true
	if _, _, err := RunSourceContext(context.Background(), src, spec); err == nil {
		t.Fatal("golden oracle on a streaming source must error")
	}

	// On a slice-backed source the oracle runs as before.
	spec2 := BaselineSpec()
	spec2.Golden = true
	if _, _, err := RunSourceContext(context.Background(),
		trace.NewSliceSource(w.Generate(5000)), spec2); err != nil {
		t.Fatal(err)
	}
}
