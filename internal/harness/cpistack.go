package harness

import (
	"context"
	"fmt"

	"localbp/internal/bpu/tage"
	"localbp/internal/core"
	"localbp/internal/metrics"
	"localbp/internal/obs"
	"localbp/internal/repair"
	"localbp/internal/schemes"
	"localbp/internal/workloads"
)

// SpecFor builds a Spec for a registry scheme name (or alias) on the
// default Table 2 core: the single path from a CLI -scheme flag to a
// runnable configuration. Caller options layer onto the scheme's canonical
// parameters.
func SpecFor(name string, opts ...schemes.Opt) (Spec, error) {
	def, _, err := schemes.Resolve(name, opts...)
	if err != nil {
		return Spec{}, err
	}
	s := Spec{Label: def.Name, Tage: tage.KB8(), Core: core.DefaultConfig(), Oracle: def.Oracle}
	if def.Make != nil {
		s.Scheme = func() repair.Scheme {
			sch, _, err := schemes.Build(name, opts...)
			if err != nil {
				panic(err) // unreachable: Resolve above validated the name
			}
			return sch
		}
	}
	return s, nil
}

// CPIStackTable runs one representative workload per category under the
// named scheme with CPI-stack accounting and renders where every cycle
// went. The attribution is audited inside the core: a run whose buckets do
// not sum to its total cycles aborts with InvCPIAccounting.
func CPIStackTable(ctx context.Context, o Options, schemeName string) (string, error) {
	return cpiStackTable(ctx, o, NewTraceCache(), schemeName)
}

// Ext2 is the CPI-stack experiment under the paper's headline scheme.
func Ext2(ctx context.Context, r *Runner) (string, error) {
	return cpiStackTable(ctx, r.Opts, r.cache, "forward-coalesce")
}

func cpiStackTable(ctx context.Context, o Options, cache *TraceCache, schemeName string) (string, error) {
	spec, err := SpecFor(schemeName)
	if err != nil {
		return "", err
	}
	header := append([]string{"Workload", "Category", "Cycles"}, obs.CPIBucketNames()...)
	t := &metrics.Table{Header: header}
	for _, w := range perCategory(o.suite()) {
		tr, err := cache.Get(w, o.Insts)
		if err != nil {
			return "", err
		}
		var cpi *obs.CPIStack
		spec.Obs = &ObsSpec{CPIStack: true, Done: func(h *obs.Hooks) { cpi = h.CPI }}
		if _, _, err := RunTraceContext(ctx, tr, spec); err != nil {
			return "", err
		}
		row := []string{w.Name, w.Category.String(), fmt.Sprint(cpi.Total())}
		for b := obs.CPIBucket(0); b < obs.NumCPIBuckets; b++ {
			row = append(row, metrics.Pct(100*cpi.Fraction(b)))
		}
		t.AddRow(row...)
	}
	return t.String(), nil
}

// perCategory picks the first suite workload of each category: a small,
// deterministic cross-section for per-cycle instrumentation runs.
func perCategory(ws []workloads.Workload) []workloads.Workload {
	var out []workloads.Workload
	seen := map[workloads.Category]bool{}
	for _, w := range ws {
		if !seen[w.Category] {
			seen[w.Category] = true
			out = append(out, w)
		}
	}
	return out
}
