package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"localbp/internal/bpu/loop"
	"localbp/internal/core"
	"localbp/internal/metrics"
	"localbp/internal/repair"
	"localbp/internal/workloads"
)

// Experiment regenerates one paper artifact (figure or table) as text. Run
// returns an error instead of panicking when aggregation fails (for example
// mismatched result sets after a partially-failed sweep); the sweep then
// skips the artifact and keeps going. The context flows into every
// underlying workload run: cancellation drains the artifact's simulations
// within one worker iteration.
type Experiment struct {
	ID    string
	Title string
	Run   func(ctx context.Context, r *Runner) (string, error)
}

// Experiments returns every reproducible artifact in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: evaluated benchmark categories", func(ctx context.Context, r *Runner) (string, error) { return Table1(), nil }},
		{"table2", "Table 2: simulator parameters", func(ctx context.Context, r *Runner) (string, error) { return Table2(), nil }},
		{"fig4", "Figure 4: MPKI opportunity and the cost of not repairing", Fig4},
		{"fig7a", "Figure 7a: MPKI reduction of CBPw-Loop{64,128,256} with perfect repair", Fig7a},
		{"fig7b", "Figure 7b: IPC gain of CBPw-Loop{64,128,256} with perfect repair", Fig7b},
		{"fig7c", "Figure 7c: IPC S-curve for CBPw-Loop128 (perfect repair)", Fig7c},
		{"fig8", "Figure 8: BHT repairs needed per misprediction", Fig8},
		{"fig9", "Figure 9: update-at-retire and no-repair vs perfect repair", Fig9},
		{"fig10", "Figure 10: backward walk and snapshot across M-N-P configurations", Fig10},
		{"fig11", "Figure 11: forward walk across configurations (+ coalescing)", Fig11},
		{"fig12", "Figure 12: multi-stage prediction with split BHT (shared/split PT)", Fig12},
		{"fig13", "Figure 13: limited-PC repair scaling", Fig13},
		{"table3", "Table 3: summary of all repair techniques", Table3},
		{"fig14a", "Figure 14A: iso-storage TAGE(9KB) vs TAGE+CBPw-Loop+forward walk", Fig14a},
		{"fig14b", "Figure 14B: CBPw-Loop on a 57KB TAGE baseline", Fig14b},
		{"ext1", "Extension: repair schemes over a generic (Yeh-Patt) local predictor", Ext1},
		{"ext2", "Extension: CPI stacks (cycle accounting) under forward-walk repair", Ext2},
	}
}

// ExperimentByID finds an experiment.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Table1 prints the workload inventory (Table 1).
func Table1() string {
	t := &metrics.Table{Header: []string{"Category", "Count", "Example workloads"}}
	suite := workloads.Suite()
	for _, c := range workloads.Categories() {
		names := []string{}
		for _, w := range suite {
			if w.Category == c && len(names) < 4 {
				names = append(names, w.Name)
			}
		}
		t.AddRow(c.String(), fmt.Sprint(workloads.CategoryCount(c)), strings.Join(names, ", ")+", ...")
	}
	t.AddRow("TOTAL", fmt.Sprint(workloads.SuiteSize), "")
	return t.String()
}

// Table2 echoes the simulated core parameters (Table 2).
func Table2() string {
	cfg := core.DefaultConfig()
	t := &metrics.Table{Header: []string{"Parameter", "Value"}}
	t.AddRow("Core", fmt.Sprintf("%d-wide OOO, %d-entry ROB, %d-entry allocation queue",
		cfg.Width, cfg.ROBSize, cfg.AllocQueue))
	t.AddRow("Buffers", fmt.Sprintf("%d-entry load buffer, %d-entry store buffer", cfg.LoadBuffer, cfg.StoreBuffer))
	t.AddRow("Baseline predictor", "TAGE - 7.1 KB class (see tage.KB8)")
	t.AddRow("CBPw-Loop256", "256 entries, 8-way BHT, PT")
	t.AddRow("CBPw-Loop128", "128 entries, 8-way BHT, PT (default)")
	t.AddRow("CBPw-Loop64", "64 entries, 8-way BHT, PT")
	t.AddRow("L1", fmt.Sprintf("%dKB, %d-way, %d cycles, prefetch", cfg.Mem.L1.SizeBytes>>10, cfg.Mem.L1.Ways, cfg.Mem.L1.Latency))
	t.AddRow("L2", fmt.Sprintf("%dKB, %d-way, %d cycles, prefetch", cfg.Mem.L2.SizeBytes>>10, cfg.Mem.L2.Ways, cfg.Mem.L2.Latency))
	t.AddRow("LLC", fmt.Sprintf("%dMB, %d-way, %d cycles, prefetch", cfg.Mem.LLC.SizeBytes>>20, cfg.Mem.LLC.Ways, cfg.Mem.LLC.Latency))
	t.AddRow("Main memory", fmt.Sprintf("~%d cycles", cfg.Mem.DRAMLatency))
	t.AddRow("Front end", fmt.Sprintf("%d-cycle fetch-to-alloc, %d-cycle redirect", cfg.FrontendDepth, cfg.ResteerPenalty))
	return t.String()
}

// Fig4 shows the per-category MPKI reduction of a never-mispredicting local
// predictor (the opportunity) against a local predictor with no repair.
func Fig4(ctx context.Context, r *Runner) (string, error) {
	base := r.ResultsContext(ctx, BaselineSpec())
	oracle := r.ResultsContext(ctx, OracleSpec(loop.Loop128()))
	none := r.ResultsContext(ctx, NoRepairSpec(loop.Loop128()))
	cats, opp, err := byCategoryMPKI(base, oracle)
	if err != nil {
		return "", err
	}
	_, lost, err := byCategoryMPKI(base, none)
	if err != nil {
		return "", err
	}
	t := &metrics.Table{Header: []string{"Category", "MPKI redn (ideal local)", "MPKI redn (no repair)"}}
	for i, c := range cats {
		t.AddRow(c, metrics.Pct(opp[i]), metrics.Pct(lost[i]))
	}
	t.AddRow("ALL", metrics.Pct(mpkiReduction(base, oracle)), metrics.Pct(mpkiReduction(base, none)))
	return t.String(), nil
}

// loopConfigs are the three Table 2 local predictor sizes.
func loopConfigs() []loop.Config {
	return []loop.Config{loop.Loop64(), loop.Loop128(), loop.Loop256()}
}

// Fig7a: per-category MPKI reduction with perfect repair across sizes.
func Fig7a(ctx context.Context, r *Runner) (string, error) {
	base := r.ResultsContext(ctx, BaselineSpec())
	t := &metrics.Table{Header: []string{"Category", "Loop64", "Loop128", "Loop256"}}
	rows := map[string][]string{}
	var cats []string
	for _, cfg := range loopConfigs() {
		res := r.ResultsContext(ctx, PerfectSpec(cfg))
		cs, red, err := byCategoryMPKI(base, res)
		if err != nil {
			return "", err
		}
		cats = cs
		for i, c := range cs {
			rows[c] = append(rows[c], metrics.Pct(red[i]))
		}
		rows["ALL"] = append(rows["ALL"], metrics.Pct(mpkiReduction(base, res)))
	}
	for _, c := range append(cats, "ALL") {
		t.AddRow(append([]string{c}, rows[c]...)...)
	}
	return t.String(), nil
}

// Fig7b: per-category IPC gain with perfect repair across sizes.
func Fig7b(ctx context.Context, r *Runner) (string, error) {
	base := r.ResultsContext(ctx, BaselineSpec())
	t := &metrics.Table{Header: []string{"Category", "Loop64", "Loop128", "Loop256"}}
	rows := map[string][]string{}
	var cats []string
	for _, cfg := range loopConfigs() {
		res := r.ResultsContext(ctx, PerfectSpec(cfg))
		cs, gain, err := byCategoryIPC(base, res)
		if err != nil {
			return "", err
		}
		cats = cs
		for i, c := range cs {
			rows[c] = append(rows[c], metrics.Pct(gain[i]))
		}
		rows["ALL"] = append(rows["ALL"], metrics.Pct(ipcGain(base, res)))
	}
	for _, c := range append(cats, "ALL") {
		t.AddRow(append([]string{c}, rows[c]...)...)
	}
	return t.String(), nil
}

// Fig7c: the per-workload IPC gain S-curve for Loop128 with named outliers.
func Fig7c(ctx context.Context, r *Runner) (string, error) {
	base := r.ResultsContext(ctx, BaselineSpec())
	perf := r.ResultsContext(ctx, PerfectSpec(loop.Loop128()))
	pts, err := metrics.SCurve(base, perf)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "S-curve over %d workloads (sorted IPC gain, CBPw-Loop128 perfect repair)\n", len(pts))
	n := len(pts)
	pick := map[int]bool{0: true, n - 1: true}
	for _, q := range []int{n / 10, n / 4, n / 2, 3 * n / 4, 9 * n / 10} {
		pick[q] = true
	}
	for i, p := range pts {
		interesting := pick[i] || p.Workload == "eembc-dither" ||
			p.Workload == "cloud-compression" || p.Workload == "tabletmark-email" ||
			p.Workload == "sysmark-photoshop"
		if interesting {
			fmt.Fprintf(&b, "  #%3d %-24s %+7.2f%%\n", i+1, p.Workload, p.GainPct)
		}
	}
	return b.String(), nil
}

// Fig8: average and maximum BHT repairs required per misprediction,
// from the perfect-repair oracle's restore diffs.
func Fig8(ctx context.Context, r *Runner) (string, error) {
	out := r.RunContext(ctx, PerfectSpec(loop.Loop128()))
	type row struct {
		name string
		avg  float64
		max  int
	}
	var rows []row
	globalMax, sum, samples := 0, uint64(0), uint64(0)
	for _, o := range out {
		st := o.Repair
		if st.NeededSamples == 0 {
			continue
		}
		rows = append(rows, row{o.Result.Workload,
			float64(st.NeededSum) / float64(st.NeededSamples), st.NeededMax})
		sum += st.NeededSum
		samples += st.NeededSamples
		if st.NeededMax > globalMax {
			globalMax = st.NeededMax
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].avg > rows[j].avg })
	var b strings.Builder
	fmt.Fprintf(&b, "suite: avg repairs/mispredict = %.1f, max = %d\n",
		float64(sum)/float64(max(1, samples)), globalMax)
	b.WriteString("top workloads by average repairs needed:\n")
	for i, rw := range rows {
		if i >= 12 {
			break
		}
		fmt.Fprintf(&b, "  %-26s avg=%5.1f max=%3d\n", rw.name, rw.avg, rw.max)
	}
	return b.String(), nil
}

// Fig9: IPC of update-at-retire and no-repair, normalized to perfect repair.
func Fig9(ctx context.Context, r *Runner) (string, error) {
	base := r.ResultsContext(ctx, BaselineSpec())
	perf := r.ResultsContext(ctx, PerfectSpec(loop.Loop128()))
	retire := r.ResultsContext(ctx, RetireUpdateSpec(loop.Loop128()))
	none := r.ResultsContext(ctx, NoRepairSpec(loop.Loop128()))
	perfGain := ipcGain(base, perf)
	cats, gr, err := byCategoryIPC(base, retire)
	if err != nil {
		return "", err
	}
	_, gn, err := byCategoryIPC(base, none)
	if err != nil {
		return "", err
	}
	_, gp, err := byCategoryIPC(base, perf)
	if err != nil {
		return "", err
	}
	t := &metrics.Table{Header: []string{"Category", "perfect dIPC", "retire dIPC", "no-repair dIPC"}}
	for i, c := range cats {
		t.AddRow(c, metrics.Pct(gp[i]), metrics.Pct(gr[i]), metrics.Pct(gn[i]))
	}
	t.AddRow("ALL", metrics.Pct(perfGain), metrics.Pct(ipcGain(base, retire)), metrics.Pct(ipcGain(base, none)))
	t.AddRow("% of perfect", "100%",
		metrics.Pct(100*ipcGain(base, retire)/perfGain),
		metrics.Pct(100*ipcGain(base, none)/perfGain))
	return t.String(), nil
}

// normalizedRows renders spec rows as (MPKI redn, IPC gain, % of perfect).
func normalizedRows(ctx context.Context, r *Runner, specs []Spec) string {
	base := r.ResultsContext(ctx, BaselineSpec())
	perf := r.ResultsContext(ctx, PerfectSpec(loop.Loop128()))
	perfGain := ipcGain(base, perf)
	t := &metrics.Table{Header: []string{"Configuration", "MPKI redn", "IPC gain", "% of perfect", ""}}
	for _, s := range specs {
		res := r.ResultsContext(ctx, s)
		g := ipcGain(base, res)
		norm := 100 * g / perfGain
		t.AddRow(s.Label, metrics.Pct(mpkiReduction(base, res)), metrics.Pct(g),
			metrics.Pct(norm), metrics.Bar(norm, 100, 20))
	}
	t.AddRow("perfect", metrics.Pct(mpkiReduction(base, perf)), metrics.Pct(perfGain),
		"100.0%", metrics.Bar(100, 100, 20))
	return t.String()
}

// Fig10: prior techniques across storage/port configurations.
func Fig10(ctx context.Context, r *Runner) (string, error) {
	c := loop.Loop128()
	specs := []Spec{
		BackwardWalkSpec(c, 64, repair.Ports{CkptRead: 64, BHTWrite: 64}),
		BackwardWalkSpec(c, 32, repair.Ports{CkptRead: 8, BHTWrite: 8}),
		BackwardWalkSpec(c, 32, repair.Ports{CkptRead: 4, BHTWrite: 4}),
		BackwardWalkSpec(c, 16, repair.Ports{CkptRead: 4, BHTWrite: 4}),
		SnapshotSpec(c, 64, repair.Ports{CkptRead: 64, BHTWrite: 64}),
		SnapshotSpec(c, 32, repair.Ports{CkptRead: 8, BHTWrite: 8}),
		SnapshotSpec(c, 16, repair.Ports{CkptRead: 8, BHTWrite: 8}),
	}
	return normalizedRows(ctx, r, specs), nil
}

// Fig11: forward walk across configurations, plus coalescing.
func Fig11(ctx context.Context, r *Runner) (string, error) {
	c := loop.Loop128()
	specs := []Spec{
		ForwardWalkSpec(c, 64, repair.Ports{CkptRead: 8, BHTWrite: 4}, false),
		ForwardWalkSpec(c, 64, repair.Ports{CkptRead: 4, BHTWrite: 2}, false),
		ForwardWalkSpec(c, 32, repair.Ports{CkptRead: 8, BHTWrite: 4}, false),
		ForwardWalkSpec(c, 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, false),
		ForwardWalkSpec(c, 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, true),
	}
	return normalizedRows(ctx, r, specs), nil
}

// Fig12: multi-stage prediction with split BHT, shared vs split PT, compared
// with forward walk.
func Fig12(ctx context.Context, r *Runner) (string, error) {
	c := loop.Loop128()
	specs := []Spec{
		ForwardWalkSpec(c, 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, false),
		MultiStageSpec(c, 32, true),
		MultiStageSpec(c, 32, false),
	}
	return normalizedRows(ctx, r, specs), nil
}

// Fig13: limited-PC repair scaling over the number of repaired PCs.
func Fig13(ctx context.Context, r *Runner) (string, error) {
	c := loop.Loop128()
	specs := []Spec{
		LimitedPCSpec(c, 2, 2, false),
		LimitedPCSpec(c, 4, 4, false),
		LimitedPCSpec(c, 8, 4, false),
		LimitedPCSpec(c, 4, 4, true), // the "mark invalid" ablation
	}
	return normalizedRows(ctx, r, specs), nil
}

// Table3: the summary of every technique, with storage.
func Table3(ctx context.Context, r *Runner) (string, error) {
	c := loop.Loop128()
	base := r.ResultsContext(ctx, BaselineSpec())
	perf := r.ResultsContext(ctx, PerfectSpec(c))
	perfGain := ipcGain(base, perf)

	type entry struct {
		spec    Spec
		storage string
	}
	kb := func(mk SchemeMaker) string {
		if mk == nil {
			return "7.1 (TAGE only)"
		}
		s := mk()
		return fmt.Sprintf("%.1f", 7.1+float64(s.StorageBits())/8192)
	}
	rows := []entry{
		{NoRepairSpec(c), ""},
		{SnapshotSpec(c, 32, repair.Ports{CkptRead: 8, BHTWrite: 8}), ""},
		{RetireUpdateSpec(c), ""},
		{BackwardWalkSpec(c, 32, repair.Ports{CkptRead: 4, BHTWrite: 4}), ""},
		{LimitedPCSpec(c, 2, 2, false), ""},
		{MultiStageSpec(c, 32, true), ""},
		{LimitedPCSpec(c, 4, 4, false), ""},
		{ForwardWalkSpec(c, 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, false), ""},
		{ForwardWalkSpec(c, 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, true), ""},
	}
	t := &metrics.Table{Header: []string{"Configuration", "MPKI redn", "IPC gain", "% of perfect", "Storage (KB)"}}
	t.AddRow("baseline TAGE", "0.0%", "0.0%", "0.0%", "7.1")
	for _, e := range rows {
		res := r.ResultsContext(ctx, e.spec)
		g := ipcGain(base, res)
		t.AddRow(e.spec.Label, metrics.Pct(mpkiReduction(base, res)), metrics.Pct(g),
			metrics.Pct(100*g/perfGain), kb(e.spec.Scheme))
	}
	t.AddRow("perfect repair", metrics.Pct(mpkiReduction(base, perf)), metrics.Pct(perfGain), "100.0%", "NA")
	return t.String(), nil
}

// Fig14a: iso-storage — TAGE grown to 9KB vs TAGE(7.1KB) + CBPw-Loop128 with
// forward-walk repair.
func Fig14a(ctx context.Context, r *Runner) (string, error) {
	base := r.ResultsContext(ctx, BaselineSpec())
	t := &metrics.Table{Header: []string{"Configuration", "IPC gain vs TAGE-8KB"}}
	iso := r.ResultsContext(ctx, Iso9KBSpec())
	fwd := r.ResultsContext(ctx, PaperForwardWalk(loop.Loop128()))
	perf := r.ResultsContext(ctx, PerfectSpec(loop.Loop128()))
	t.AddRow("TAGE scaled to 9KB", metrics.Pct(ipcGain(base, iso)))
	t.AddRow("TAGE 7.1KB + Loop128 + forward walk", metrics.Pct(ipcGain(base, fwd)))
	t.AddRow("TAGE 7.1KB + Loop128 + perfect repair", metrics.Pct(ipcGain(base, perf)))
	return t.String(), nil
}

// Fig14b: CBPw-Loop on the 57KB TAGE baseline, across repair schemes.
func Fig14b(ctx context.Context, r *Runner) (string, error) {
	c := loop.Loop128()
	base57 := r.ResultsContext(ctx, Big57Spec("baseline", nil))
	specs := []struct {
		label string
		mk    SchemeMaker
	}{
		{"perfect", func() repair.Scheme { return repair.NewPerfect(c) }},
		{"forward-32-4-2-coalesce", func() repair.Scheme {
			return repair.NewForwardWalk(c, 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, true)
		}},
		{"multistage-shared-pt", func() repair.Scheme { return repair.NewMultiStage(c, 32, true) }},
		{"limited-4pc", func() repair.Scheme { return repair.NewLimitedPC(c, 4, 4, false) }},
	}
	t := &metrics.Table{Header: []string{"Configuration", "MPKI redn", "IPC gain vs TAGE-57KB"}}
	for _, s := range specs {
		res := r.ResultsContext(ctx, Big57Spec(s.label, s.mk))
		t.AddRow("tage57+"+s.label, metrics.Pct(mpkiReduction(base57, res)), metrics.Pct(ipcGain(base57, res)))
	}
	return t.String(), nil
}
