package harness

import "hash/fnv"

// ChaosPlan deterministically injects *transient* failures into workload
// runs: for each (spec, workload) pair it fails the first f attempts with
// ErrInjected, where f is drawn per-pair from a seeded hash in
// [0, MaxFaults]. Unlike internal/faultinject — which corrupts simulator
// state and fails every attempt identically — a chaos fault is
// attempt-dependent, so it exercises the retry machinery end-to-end: with
// Options.Retries >= MaxFaults every run eventually executes cleanly, and
// because a faulted attempt never starts the simulation, the surviving
// run's metrics are bit-identical to an un-chaosed sweep.
type ChaosPlan struct {
	// Seed selects which runs fault and how often; the same seed always
	// produces the same plan.
	Seed uint64
	// MaxFaults bounds the injected failures per (spec, workload) pair.
	// 0 disables the plan; Options.Retries >= MaxFaults guarantees every
	// run completes.
	MaxFaults int
}

// FaultyAttempts returns how many leading attempts of (spec × workload)
// the plan fails, in [0, MaxFaults], uniform per pair.
func (p *ChaosPlan) FaultyAttempts(spec, workload string) int {
	if p == nil || p.MaxFaults <= 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(spec))
	h.Write([]byte{0})
	h.Write([]byte(workload))
	return int(splitmix64(p.Seed^h.Sum64()) % uint64(p.MaxFaults+1))
}

// splitmix64 is the standard 64-bit finalizing mix (Vigna): a cheap,
// high-quality stateless hash used to derive per-pair fault counts and
// deterministic retry jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
