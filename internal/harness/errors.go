package harness

import "fmt"

// Phases of one workload × spec run, recorded in RunError so a failure
// report says where in the pipeline the run died.
const (
	PhaseValidate = "validate" // spec/config validation before any simulation
	PhaseGenerate = "generate" // trace generation / trace validation
	PhaseSimulate = "simulate" // the cycle-level simulation itself
)

// RunError is the structured failure record for one workload × spec run.
// The parallel runner converts panics (predictor/core bugs), watchdog trips
// (core.ErrStalled) and validation failures into RunErrors so one bad run
// degrades a sweep instead of killing it.
type RunError struct {
	Workload  string // workload name ("" for spec-level validation failures)
	SpecLabel string
	Phase     string // PhaseValidate, PhaseGenerate or PhaseSimulate
	Err       error  // underlying cause; errors.Is(err, core.ErrStalled) works through it
	Stack     string // goroutine stack when recovered from a panic, else ""
}

// Error renders the workload, spec, phase and cause on one line; the panic
// stack, if any, follows.
func (e *RunError) Error() string {
	w := e.Workload
	if w == "" {
		w = "(all workloads)"
	}
	msg := fmt.Sprintf("run %s × %s failed in %s: %v", w, e.SpecLabel, e.Phase, e.Err)
	if e.Stack != "" {
		msg += "\n" + e.Stack
	}
	return msg
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *RunError) Unwrap() error { return e.Err }
