package harness

import (
	"context"
	"errors"
	"fmt"

	"localbp/internal/audit"
	"localbp/internal/core"
)

// Phases of one workload × spec run, recorded in RunError so a failure
// report says where in the pipeline the run died.
const (
	PhaseValidate = "validate" // spec/config validation before any simulation
	PhaseGenerate = "generate" // trace generation / trace validation
	PhaseSimulate = "simulate" // the cycle-level simulation itself
	PhaseCanceled = "canceled" // run never executed: context canceled first
)

// ErrorClass is the retry classification of a failed run: whether
// re-attempting the same run could plausibly succeed.
type ErrorClass string

const (
	// ClassPermanent failures are deterministic in the inputs (validation,
	// trace generation): retrying reproduces them, so the runner never does.
	ClassPermanent ErrorClass = "permanent"
	// ClassTransient failures (stalls, integrity trips, injected faults,
	// panics) may be attempt-dependent; the runner retries them up to
	// Options.Retries times.
	ClassTransient ErrorClass = "transient"
	// ClassExhausted marks a transient failure that persisted through every
	// allowed retry — distinguished from ClassPermanent in failure summaries
	// because the remedy differs (raise -retries / investigate the fault vs
	// fix the configuration).
	ClassExhausted ErrorClass = "retry-exhausted"
	// ClassCanceled marks a run aborted (or never started) because the
	// context was canceled or its deadline expired; never retried.
	ClassCanceled ErrorClass = "canceled"
)

// ErrInjected is the sentinel for chaos-plan transient faults (see
// ChaosPlan): a deliberately injected, attempt-dependent failure used to
// exercise the retry machinery end-to-end. Always ClassTransient.
var ErrInjected = errors.New("harness: injected transient fault")

// Classify maps a run failure to its retry class using errors.Is over the
// structured error chain: context cancellation/deadline → ClassCanceled;
// watchdog stalls (core.ErrStalled), integrity violations
// (audit.ErrIntegrity), injected chaos faults and recovered panics →
// ClassTransient; validation and trace-generation failures →
// ClassPermanent. A nil error classifies as "".
func Classify(err error) ErrorClass {
	if err == nil {
		return ""
	}
	switch {
	case errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, core.ErrCanceled):
		return ClassCanceled
	case errors.Is(err, ErrInjected),
		errors.Is(err, core.ErrStalled),
		errors.Is(err, audit.ErrIntegrity):
		return ClassTransient
	}
	var re *RunError
	if errors.As(err, &re) {
		switch re.Phase {
		case PhaseValidate, PhaseGenerate:
			return ClassPermanent
		case PhaseCanceled:
			return ClassCanceled
		}
		if re.Stack != "" {
			// A recovered panic: possibly fault-induced state corruption, so
			// one clean re-attempt is worth the cost; a deterministic bug
			// simply exhausts its retries and is reported as such.
			return ClassTransient
		}
	}
	return ClassPermanent
}

// RunError is the structured failure record for one workload × spec run.
// The parallel runner converts panics (predictor/core bugs), watchdog trips
// (core.ErrStalled), integrity violations and context cancellations into
// RunErrors so one bad run degrades a sweep instead of killing it.
type RunError struct {
	Workload  string // workload name ("" for spec-level validation failures)
	SpecLabel string
	Phase     string // PhaseValidate, PhaseGenerate, PhaseSimulate or PhaseCanceled
	Err       error  // underlying cause; errors.Is(err, core.ErrStalled) works through it
	Stack     string // goroutine stack when recovered from a panic, else ""

	// Attempts is how many times the run was executed before this error was
	// accepted as final (1 = no retries). Class is the final classification:
	// ClassExhausted when retries were spent, else Classify(Err).
	Attempts int
	Class    ErrorClass
}

// Error renders the workload, spec, phase and cause on one line; the panic
// stack, if any, follows.
func (e *RunError) Error() string {
	w := e.Workload
	if w == "" {
		w = "(all workloads)"
	}
	msg := fmt.Sprintf("run %s × %s failed in %s: %v", w, e.SpecLabel, e.Phase, e.Err)
	if e.Attempts > 1 {
		msg = fmt.Sprintf("%s (after %d attempts)", msg, e.Attempts)
	}
	if e.Stack != "" {
		msg += "\n" + e.Stack
	}
	return msg
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *RunError) Unwrap() error { return e.Err }
