package harness

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// savedCheckpoint builds and saves a checkpoint with the given completed
// experiment ids, returning its path.
func savedCheckpoint(t *testing.T, path string, ids ...string) *Checkpoint {
	t.Helper()
	ck := NewCheckpoint(Options{Insts: 20_000, Quick: true})
	for _, id := range ids {
		ck.Record(id, ExperimentOutcome{Output: "output of " + id + "\n", Seconds: 1})
		if err := ck.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	return ck
}

// TestCheckpointTruncationRecovers: a mid-file truncation (torn write) of
// the newest generation is detected via the envelope's length pin, the
// damaged file is preserved as <path>.corrupt, and the loader falls back to
// the previous generation — no completed result recorded there is lost.
func TestCheckpointTruncationRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	savedCheckpoint(t, path, "table1", "fig4") // two saves → two generations

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("truncated checkpoint did not recover: %v", err)
	}
	if got.Note == "" || !strings.Contains(got.Note, prevGeneration(path)) {
		t.Fatalf("recovery note missing or wrong: %q", got.Note)
	}
	// The previous generation holds everything up to the penultimate save:
	// zero completed results lost from that generation.
	if _, ok := got.Done("table1"); !ok {
		t.Fatal("recovered generation lost a completed experiment")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("damaged file not preserved: %v", err)
	}
}

// TestCheckpointCRCFlipDetected: a single flipped payload byte fails the
// CRC-32C check with a *CorruptError naming the byte offset and cause, and
// the damaged file is moved aside so the next invocation starts fresh.
func TestCheckpointCRCFlipDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	savedCheckpoint(t, path, "table1") // one save → no previous generation

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40 // flip one payload bit; JSON may still parse
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = LoadCheckpoint(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	if ce.Offset <= 0 {
		t.Fatalf("corrupt error lacks a byte offset: %+v", ce)
	}
	if !strings.Contains(ce.Error(), "CRC") && !strings.Contains(ce.Error(), "JSON") {
		t.Fatalf("corrupt error does not name the cause: %v", ce)
	}
	if ce.PreservedAs != path+".corrupt" {
		t.Fatalf("damaged file preserved as %q, want %q", ce.PreservedAs, path+".corrupt")
	}
	if _, err := os.Stat(ce.PreservedAs); err != nil {
		t.Fatalf("preserved file missing: %v", err)
	}
	// The damaged file is out of the way: a rerun starts fresh, not stuck.
	if ck, err := LoadCheckpoint(path); ck != nil || err != nil {
		t.Fatalf("after preservation: got (%v, %v), want fresh start", ck, err)
	}
}

// TestCheckpointMissingMainUsesPrev: the crash window between rotating the
// old generation aside and renaming the new one in leaves only <path>.1;
// the loader resumes from it.
func TestCheckpointMissingMainUsesPrev(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	savedCheckpoint(t, path, "table1", "fig4")
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}

	got, err := LoadCheckpoint(path)
	if err != nil || got == nil {
		t.Fatalf("missing main with valid previous generation: got (%v, %v)", got, err)
	}
	if _, ok := got.Done("table1"); !ok {
		t.Fatal("previous generation lost a completed experiment")
	}
	if !strings.Contains(got.Note, "previous generation") {
		t.Fatalf("recovery note missing: %q", got.Note)
	}
}

// TestCheckpointGenerationRotation: each Save rotates the prior file to
// <path>.1, so two valid generations coexist and the older one trails the
// newer by exactly one experiment.
func TestCheckpointGenerationRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	savedCheckpoint(t, path, "table1", "fig4", "fig7a")

	newest, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(newest.Completed) != 3 {
		t.Fatalf("newest generation has %d entries, want 3", len(newest.Completed))
	}
	prev, err := LoadCheckpoint(prevGeneration(path))
	if err != nil || prev == nil {
		t.Fatalf("previous generation unreadable: (%v, %v)", prev, err)
	}
	if len(prev.Completed) != 2 {
		t.Fatalf("previous generation has %d entries, want 2", len(prev.Completed))
	}
}

// TestCheckpointLegacyBareJSON: pre-envelope checkpoints (bare JSON) still
// load, so upgrading does not orphan an in-flight sweep.
func TestCheckpointLegacyBareJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	legacy := `{"version": 1, "insts": 20000, "quick": true,
		"completed": {"table1": {"output": "legacy\n", "seconds": 2}}}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil || got == nil {
		t.Fatalf("legacy checkpoint rejected: (%v, %v)", got, err)
	}
	out, ok := got.Done("table1")
	if !ok || out.Output != "legacy\n" {
		t.Fatalf("legacy outcome lost: %+v ok=%v", out, ok)
	}
}

// TestCheckpointBothGenerationsDamaged exercises the worst rotation outcome:
// the primary AND the rotated .1 generation are both corrupt. Recovery must
// fall back cleanly — quarantine both damaged files, report both causes,
// and let the next invocation start fresh — never resume from garbage.
func TestCheckpointBothGenerationsDamaged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	savedCheckpoint(t, path, "table1", "fig4") // two saves → two generations

	// Damage both generations differently: truncate the primary (torn
	// write), flip a payload byte in the rotated generation (bit rot).
	for _, d := range []struct {
		p      string
		damage func([]byte) []byte
	}{
		{path, func(b []byte) []byte { return b[:len(b)/2] }},
		{prevGeneration(path), func(b []byte) []byte { b[len(b)-3] ^= 0x40; return b }},
	} {
		data, err := os.ReadFile(d.p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(d.p, d.damage(data), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	_, err := LoadCheckpoint(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError with both generations damaged, got %v", err)
	}
	if !strings.Contains(ce.Error(), "previous generation also unusable") {
		t.Fatalf("error does not report the damaged previous generation: %v", ce)
	}
	// Both damaged files are quarantined; neither remains on the resume path.
	for _, p := range []string{path, prevGeneration(path)} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("damaged file %s still on the resume path (stat err: %v)", p, err)
		}
		if _, err := os.Stat(p + ".corrupt"); err != nil {
			t.Fatalf("damaged file not preserved as %s.corrupt: %v", p, err)
		}
	}

	// Recovery is clean: the next load starts fresh instead of resuming from
	// garbage, and a full save/load round-trip works on the scrubbed path.
	ck, err := LoadCheckpoint(path)
	if ck != nil || err != nil {
		t.Fatalf("after quarantine: got (%v, %v), want fresh start", ck, err)
	}
	fresh := NewCheckpoint(Options{Insts: 20_000, Quick: true})
	fresh.Record("fig8", ExperimentOutcome{Output: "fresh\n", Seconds: 1})
	if err := fresh.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil || got == nil {
		t.Fatalf("post-recovery save/load failed: (%v, %v)", got, err)
	}
	if _, ok := got.Done("table1"); ok {
		t.Fatal("resumed a result from a damaged generation")
	}
	if out, ok := got.Done("fig8"); !ok || out.Output != "fresh\n" {
		t.Fatalf("fresh checkpoint did not round-trip: %+v ok=%v", out, ok)
	}
}

// TestCheckpointMissingMainCorruptPrev: the main generation is gone and the
// rotated one is damaged — the loader quarantines the damaged .1 and starts
// fresh rather than resuming from garbage or failing forever.
func TestCheckpointMissingMainCorruptPrev(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	savedCheckpoint(t, path, "table1", "fig4")
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	prevPath := prevGeneration(path)
	data, err := os.ReadFile(prevPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(prevPath, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	ck, err := LoadCheckpoint(path)
	if ck != nil || err != nil {
		t.Fatalf("got (%v, %v), want clean fresh start", ck, err)
	}
	if _, err := os.Stat(prevPath + ".corrupt"); err != nil {
		t.Fatalf("damaged previous generation not quarantined: %v", err)
	}
}

// TestMergeCheckpoints covers the fold used by sharded sweeps: disjoint
// parts merge; an id completed in two parts and mismatched option stamps are
// hard errors.
func TestMergeCheckpoints(t *testing.T) {
	opts := Options{Insts: 20_000, Quick: true}
	part := func(ids ...string) *Checkpoint {
		ck := NewCheckpoint(opts)
		for _, id := range ids {
			ck.Record(id, ExperimentOutcome{Output: "out " + id + "\n", Seconds: 1})
		}
		return ck
	}

	merged, err := MergeCheckpoints([]*Checkpoint{part("table1", "fig4"), nil, part("fig8")})
	if err != nil {
		t.Fatal(err)
	}
	if got := merged.CompletedIDs(); len(got) != 3 {
		t.Fatalf("merged ids = %v, want 3 entries", got)
	}
	if !merged.Matches(opts) {
		t.Fatal("merged checkpoint lost the option stamp")
	}

	if _, err := MergeCheckpoints([]*Checkpoint{part("table1"), part("table1")}); err == nil ||
		!strings.Contains(err.Error(), "more than one part") {
		t.Fatalf("duplicate id not rejected: %v", err)
	}

	other := NewCheckpoint(Options{Insts: 99, Quick: false})
	other.Record("fig9", ExperimentOutcome{})
	if _, err := MergeCheckpoints([]*Checkpoint{part("table1"), other}); err == nil ||
		!strings.Contains(err.Error(), "-insts") {
		t.Fatalf("option mismatch not rejected: %v", err)
	}

	if _, err := MergeCheckpoints(nil); err == nil {
		t.Fatal("empty merge not rejected")
	}
}

// TestCheckpointEnvelopeHeaderDamage: garbage where the envelope header
// should be is corruption at offset 0, not a silent fresh start.
func TestCheckpointEnvelopeHeaderDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := os.WriteFile(path, []byte("LBPCKPT2 zzzz\n{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError for damaged header, got %v", err)
	}
}
