package harness

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// savedCheckpoint builds and saves a checkpoint with the given completed
// experiment ids, returning its path.
func savedCheckpoint(t *testing.T, path string, ids ...string) *Checkpoint {
	t.Helper()
	ck := NewCheckpoint(Options{Insts: 20_000, Quick: true})
	for _, id := range ids {
		ck.Record(id, ExperimentOutcome{Output: "output of " + id + "\n", Seconds: 1})
		if err := ck.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	return ck
}

// TestCheckpointTruncationRecovers: a mid-file truncation (torn write) of
// the newest generation is detected via the envelope's length pin, the
// damaged file is preserved as <path>.corrupt, and the loader falls back to
// the previous generation — no completed result recorded there is lost.
func TestCheckpointTruncationRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	savedCheckpoint(t, path, "table1", "fig4") // two saves → two generations

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("truncated checkpoint did not recover: %v", err)
	}
	if got.Note == "" || !strings.Contains(got.Note, prevGeneration(path)) {
		t.Fatalf("recovery note missing or wrong: %q", got.Note)
	}
	// The previous generation holds everything up to the penultimate save:
	// zero completed results lost from that generation.
	if _, ok := got.Done("table1"); !ok {
		t.Fatal("recovered generation lost a completed experiment")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("damaged file not preserved: %v", err)
	}
}

// TestCheckpointCRCFlipDetected: a single flipped payload byte fails the
// CRC-32C check with a *CorruptError naming the byte offset and cause, and
// the damaged file is moved aside so the next invocation starts fresh.
func TestCheckpointCRCFlipDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	savedCheckpoint(t, path, "table1") // one save → no previous generation

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x40 // flip one payload bit; JSON may still parse
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = LoadCheckpoint(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError, got %v", err)
	}
	if ce.Offset <= 0 {
		t.Fatalf("corrupt error lacks a byte offset: %+v", ce)
	}
	if !strings.Contains(ce.Error(), "CRC") && !strings.Contains(ce.Error(), "JSON") {
		t.Fatalf("corrupt error does not name the cause: %v", ce)
	}
	if ce.PreservedAs != path+".corrupt" {
		t.Fatalf("damaged file preserved as %q, want %q", ce.PreservedAs, path+".corrupt")
	}
	if _, err := os.Stat(ce.PreservedAs); err != nil {
		t.Fatalf("preserved file missing: %v", err)
	}
	// The damaged file is out of the way: a rerun starts fresh, not stuck.
	if ck, err := LoadCheckpoint(path); ck != nil || err != nil {
		t.Fatalf("after preservation: got (%v, %v), want fresh start", ck, err)
	}
}

// TestCheckpointMissingMainUsesPrev: the crash window between rotating the
// old generation aside and renaming the new one in leaves only <path>.1;
// the loader resumes from it.
func TestCheckpointMissingMainUsesPrev(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	savedCheckpoint(t, path, "table1", "fig4")
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}

	got, err := LoadCheckpoint(path)
	if err != nil || got == nil {
		t.Fatalf("missing main with valid previous generation: got (%v, %v)", got, err)
	}
	if _, ok := got.Done("table1"); !ok {
		t.Fatal("previous generation lost a completed experiment")
	}
	if !strings.Contains(got.Note, "previous generation") {
		t.Fatalf("recovery note missing: %q", got.Note)
	}
}

// TestCheckpointGenerationRotation: each Save rotates the prior file to
// <path>.1, so two valid generations coexist and the older one trails the
// newer by exactly one experiment.
func TestCheckpointGenerationRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	savedCheckpoint(t, path, "table1", "fig4", "fig7a")

	newest, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(newest.Completed) != 3 {
		t.Fatalf("newest generation has %d entries, want 3", len(newest.Completed))
	}
	prev, err := LoadCheckpoint(prevGeneration(path))
	if err != nil || prev == nil {
		t.Fatalf("previous generation unreadable: (%v, %v)", prev, err)
	}
	if len(prev.Completed) != 2 {
		t.Fatalf("previous generation has %d entries, want 2", len(prev.Completed))
	}
}

// TestCheckpointLegacyBareJSON: pre-envelope checkpoints (bare JSON) still
// load, so upgrading does not orphan an in-flight sweep.
func TestCheckpointLegacyBareJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	legacy := `{"version": 1, "insts": 20000, "quick": true,
		"completed": {"table1": {"output": "legacy\n", "seconds": 2}}}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil || got == nil {
		t.Fatalf("legacy checkpoint rejected: (%v, %v)", got, err)
	}
	out, ok := got.Done("table1")
	if !ok || out.Output != "legacy\n" {
		t.Fatalf("legacy outcome lost: %+v ok=%v", out, ok)
	}
}

// TestCheckpointEnvelopeHeaderDamage: garbage where the envelope header
// should be is corruption at offset 0, not a silent fresh start.
func TestCheckpointEnvelopeHeaderDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.ckpt")
	if err := os.WriteFile(path, []byte("LBPCKPT2 zzzz\n{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(path)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CorruptError for damaged header, got %v", err)
	}
}
