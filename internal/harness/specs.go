package harness

import (
	"fmt"

	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/repair"
)

// The configurations evaluated by the paper, as named spec constructors.
// Each call builds fresh state; specs are safe to run repeatedly.

// specWith returns a Table 2 core + TAGE-8KB spec carrying the given scheme.
func specWith(label string, mk SchemeMaker) Spec {
	s := BaselineSpec()
	s.Label = label
	s.Scheme = mk
	return s
}

// NoRepairSpec is CBPw-Loop without any BHT repair (paper §2.7).
func NoRepairSpec(cfg loop.Config) Spec {
	return specWith("no-repair-"+cfg.Name, func() repair.Scheme { return repair.NewNone(cfg) })
}

// RetireUpdateSpec updates the BHT only at retirement (paper §6.2).
func RetireUpdateSpec(cfg loop.Config) Spec {
	return specWith("retire-update-"+cfg.Name, func() repair.Scheme { return repair.NewRetireUpdate(cfg) })
}

// SnapshotSpec is the prior-art snapshot queue with an M-N-P configuration.
func SnapshotSpec(cfg loop.Config, entries int, ports repair.Ports) Spec {
	return specWith(fmt.Sprintf("snapshot-%d-%d-%d", entries, ports.CkptRead, ports.BHTWrite),
		func() repair.Scheme { return repair.NewSnapshot(cfg, entries, ports) })
}

// BackwardWalkSpec is the prior-art history-file repair with an M-N-P
// configuration.
func BackwardWalkSpec(cfg loop.Config, entries int, ports repair.Ports) Spec {
	return specWith(fmt.Sprintf("backward-%d-%d-%d", entries, ports.CkptRead, ports.BHTWrite),
		func() repair.Scheme { return repair.NewBackwardWalk(cfg, entries, ports) })
}

// ForwardWalkSpec is contribution 1, with optional OBQ coalescing.
func ForwardWalkSpec(cfg loop.Config, entries int, ports repair.Ports, coalesce bool) Spec {
	label := fmt.Sprintf("forward-%d-%d-%d", entries, ports.CkptRead, ports.BHTWrite)
	if coalesce {
		label += "-coalesce"
	}
	return specWith(label, func() repair.Scheme {
		return repair.NewForwardWalk(cfg, entries, ports, coalesce)
	})
}

// MultiStageSpec is contribution 2 (split BHT), with a shared or split PT.
func MultiStageSpec(cfg loop.Config, obqEntries int, sharedPT bool) Spec {
	label := "multistage-split-pt"
	if sharedPT {
		label = "multistage-shared-pt"
	}
	return specWith(label, func() repair.Scheme {
		return repair.NewMultiStage(cfg, obqEntries, sharedPT)
	})
}

// LimitedPCSpec is contribution 3, repairing m PCs per misprediction.
func LimitedPCSpec(cfg loop.Config, m, writePorts int, invalidate bool) Spec {
	label := fmt.Sprintf("limited-%dpc", m)
	if invalidate {
		label += "-invalidate"
	}
	return specWith(label, func() repair.Scheme {
		return repair.NewLimitedPC(cfg, m, writePorts, invalidate)
	})
}

// OracleSpec is the never-mispredicting local predictor of Figure 4.
func OracleSpec(cfg loop.Config) Spec {
	s := PerfectSpec(cfg)
	s.Label = "oracle-local"
	s.Oracle = true
	return s
}

// Iso9KBSpec is the iso-storage comparison of Figure 14A: the baseline TAGE
// grown to 9KB, with no local predictor.
func Iso9KBSpec() Spec {
	s := BaselineSpec()
	s.Label = "tage-9kb"
	s.Tage = tage.KB9()
	return s
}

// Big57Spec returns a spec with the 57KB TAGE baseline of Figure 14B and the
// given scheme (nil for baseline).
func Big57Spec(label string, mk SchemeMaker) Spec {
	s := BaselineSpec()
	s.Label = "tage57-" + label
	s.Tage = tage.KB57()
	s.Scheme = mk
	return s
}

// PaperForwardWalk returns the headline realistic configuration:
// FWD-32-4-2 with coalescing (79% of perfect in the paper).
func PaperForwardWalk(cfg loop.Config) Spec {
	return ForwardWalkSpec(cfg, 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, true)
}
