package harness

import (
	"errors"
	"testing"

	"localbp/internal/audit"
	"localbp/internal/bpu/loop"
	"localbp/internal/faultinject"
	"localbp/internal/repair"
	"localbp/internal/workloads"
)

// auditSpecs is the scheme matrix the audit tests sweep: it covers the
// baseline (no scheme), full-snapshot repair, both walk directions,
// multi-stage, limited-PC and the generic (Yeh-Patt) predictor, so every
// decorator pairing the auditor must see read-only is exercised.
func auditSpecs() []Spec {
	c := loop.Loop128()
	return []Spec{
		BaselineSpec(),
		PerfectSpec(c),
		RetireUpdateSpec(c),
		SnapshotSpec(c, 32, repair.Ports{CkptRead: 8, BHTWrite: 8}),
		BackwardWalkSpec(c, 32, repair.Ports{CkptRead: 4, BHTWrite: 4}),
		ForwardWalkSpec(c, 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, true),
		MultiStageSpec(c, 32, true),
		LimitedPCSpec(c, 4, 4, false),
		YehPattSpec("forward", func(lp loop.LocalPredictor) repair.Scheme {
			return repair.NewForwardWalkFor(lp, 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, true)
		}),
	}
}

// TestAuditCleanAcrossSchemes: on healthy runs the auditor and golden model
// must report no violations for any repair scheme (no false positives).
func TestAuditCleanAcrossSchemes(t *testing.T) {
	w := workloads.QuickSuite()[0]
	tr := w.Generate(30_000)
	for _, spec := range auditSpecs() {
		spec.Audit, spec.Golden = true, true
		if _, _, err := RunTraceChecked(tr, spec); err != nil {
			t.Errorf("%s: audited run failed: %v", spec.Label, err)
		}
	}
}

// TestAuditObserverEffectZero is the acceptance criterion of the integrity
// layer: enabling the auditor and the golden model must not change a single
// bit of the reported statistics, for every scheme shape.
func TestAuditObserverEffectZero(t *testing.T) {
	w := workloads.QuickSuite()[1]
	tr := w.Generate(30_000)
	for _, spec := range auditSpecs() {
		plain := spec
		st, rst, err := RunTraceChecked(tr, plain)
		if err != nil {
			t.Fatalf("%s: clean run failed: %v", spec.Label, err)
		}
		audited := spec
		audited.Audit, audited.Golden = true, true
		ast, arst, err := RunTraceChecked(tr, audited)
		if err != nil {
			t.Fatalf("%s: audited run failed: %v", spec.Label, err)
		}
		if st != ast {
			t.Errorf("%s: core stats changed under audit:\n  off %+v\n  on  %+v", spec.Label, st, ast)
		}
		if (rst == nil) != (arst == nil) {
			t.Fatalf("%s: repair stats presence changed under audit", spec.Label)
		}
		if rst != nil && *rst != *arst {
			t.Errorf("%s: repair stats changed under audit:\n  off %+v\n  on  %+v", spec.Label, *rst, *arst)
		}
	}
}

// injectCfg builds a single-kind injection config.
func injectCfg(k faultinject.Kind, every uint64) *faultinject.Config {
	return &faultinject.Config{Seed: 1, Every: every, Kinds: []faultinject.Kind{k}}
}

// TestFaultInjectionGraceful: under every fault category, without the
// auditor, the simulation must complete — no panic, no watchdog trip — with
// bounded accuracy loss against the clean run.
func TestFaultInjectionGraceful(t *testing.T) {
	w := workloads.QuickSuite()[2]
	tr := w.Generate(30_000)
	clean := PaperForwardWalk(loop.Loop128())
	cst, _, err := RunTraceChecked(tr, clean)
	if err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	for _, k := range faultinject.Kinds() {
		spec := PaperForwardWalk(loop.Loop128())
		spec.Label = "fwd+" + k.String()
		spec.Inject = injectCfg(k, 53)
		st, _, err := RunTraceChecked(tr, spec)
		if err != nil {
			t.Errorf("%s: faulted run did not complete: %v", k, err)
			continue
		}
		if st.Insts != cst.Insts {
			t.Errorf("%s: retired %d instructions, clean run retired %d", k, st.Insts, cst.Insts)
		}
		// Bounded degradation: a corrupted local predictor can cost accuracy
		// but must never be worse than TAGE-alone by more than a loose margin
		// (the final prediction falls back to TAGE when confidence is lost).
		if limit := 3*cst.MPKI() + 5; st.MPKI() > limit {
			t.Errorf("%s: MPKI %.2f exceeds degradation bound %.2f (clean %.2f)",
				k, st.MPKI(), limit, cst.MPKI())
		}
	}
}

// TestFaultInjectionGracefulUnderPerfect repeats the graceful sweep for the
// perfect-repair scheme (whole-table restores interact differently with
// corrupted state than walk repairs).
func TestFaultInjectionGracefulUnderPerfect(t *testing.T) {
	w := workloads.QuickSuite()[2]
	tr := w.Generate(30_000)
	for _, k := range faultinject.Kinds() {
		if k == faultinject.OBQDrop || k == faultinject.OBQDup {
			continue // perfect repair has no OBQ; the vectors are inert
		}
		spec := PerfectSpec(loop.Loop128())
		spec.Label = "perfect+" + k.String()
		spec.Inject = injectCfg(k, 53)
		if _, _, err := RunTraceChecked(tr, spec); err != nil {
			t.Errorf("%s: faulted run did not complete: %v", k, err)
		}
	}
}

// TestFaultDetectionUnderAudit: the fault categories that violate auditable
// invariants must surface as structured audit.IntegrityError values when the
// auditor is enabled.
func TestFaultDetectionUnderAudit(t *testing.T) {
	w := workloads.QuickSuite()[0]
	tr := w.Generate(30_000)
	cases := []struct {
		kind  faultinject.Kind
		every uint64
		spec  Spec
	}{
		// OBQ damage is visible to the checkpoint-liveness and queue-order
		// scans of any OBQ-backed scheme.
		{faultinject.OBQDrop, 53, PaperForwardWalk(loop.Loop128())},
		{faultinject.OBQDup, 53, PaperForwardWalk(loop.Loop128())},
		// A swallowed repair is visible to the perfect-repair resync check.
		{faultinject.RepairDelay, 5, PerfectSpec(loop.Loop128())},
	}
	for _, tc := range cases {
		spec := tc.spec
		spec.Label += "+" + tc.kind.String()
		spec.Audit = true
		spec.Inject = injectCfg(tc.kind, tc.every)
		_, _, err := RunTraceChecked(tr, spec)
		if err == nil {
			t.Errorf("%s: injected fault went undetected", tc.kind)
			continue
		}
		if !errors.Is(err, audit.ErrIntegrity) {
			t.Errorf("%s: failed with %v, want an audit.IntegrityError", tc.kind, err)
		}
		var ie *audit.IntegrityError
		if !errors.As(err, &ie) {
			t.Errorf("%s: error is not a structured *audit.IntegrityError: %v", tc.kind, err)
		} else if ie.Invariant == "" || ie.Cycle <= 0 {
			t.Errorf("%s: integrity error lacks context: %+v", tc.kind, ie)
		}
	}
}

// TestGoldenModelCatchesStreamSkew: a deliberately truncated golden program
// must trip the oracle at the first retirement past the truncation point,
// proving the lockstep comparison is actually engaged.
func TestGoldenModelCatchesStreamSkew(t *testing.T) {
	w := workloads.QuickSuite()[0]
	tr := w.Generate(30_000)
	spec := BaselineSpec()
	g := audit.NewGolden(tr[:len(tr)-1])
	spec.Core.Golden = g
	_, _, err := RunTraceChecked(tr, spec)
	if err == nil {
		t.Fatal("golden model accepted a truncated program")
	}
	if !errors.Is(err, audit.ErrIntegrity) {
		t.Fatalf("golden divergence reported as %v, want audit.ErrIntegrity", err)
	}
}

// TestAuditSampleOption: Options.AuditSample must leave sweep results
// bit-identical to an unsampled sweep (the sampled runs are fully audited
// but report the same statistics).
func TestAuditSampleOption(t *testing.T) {
	spec := PaperForwardWalk(loop.Loop128())
	plain := NewRunner(Options{Insts: 20_000, Quick: true}).Run(spec)
	sampled := NewRunner(Options{Insts: 20_000, Quick: true, AuditSample: 3}).Run(spec)
	if len(plain) != len(sampled) {
		t.Fatalf("outcome counts differ: %d vs %d", len(plain), len(sampled))
	}
	for i := range plain {
		if plain[i].Err != nil || sampled[i].Err != nil {
			t.Fatalf("workload %d failed: %v / %v", i, plain[i].Err, sampled[i].Err)
		}
		if plain[i].Result != sampled[i].Result {
			t.Errorf("workload %d: results diverge under audit sampling:\n  off %+v\n  on  %+v",
				i, plain[i].Result, sampled[i].Result)
		}
	}
}
