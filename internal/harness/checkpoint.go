package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// checkpointVersion guards the on-disk format; bump it when the layout of
// Checkpoint changes incompatibly.
const checkpointVersion = 1

// ExperimentOutcome is one completed experiment as persisted in a sweep
// checkpoint: its rendered output (including any failure summary) and the
// original wall-clock cost, so a resumed sweep replays identical output.
type ExperimentOutcome struct {
	Output  string  `json:"output"`
	Seconds float64 `json:"seconds"`
}

// Checkpoint is the JSON resume state of one lbpsweep invocation. Completed
// experiments are flushed after each experiment finishes; a restarted sweep
// with matching options skips them and replays their stored output.
type Checkpoint struct {
	Version   int                          `json:"version"`
	Insts     int                          `json:"insts"`
	Warmup    int                          `json:"warmup"`
	Quick     bool                         `json:"quick"`
	Completed map[string]ExperimentOutcome `json:"completed"`
}

// NewCheckpoint returns an empty checkpoint stamped with the options that
// parameterize experiment results.
func NewCheckpoint(o Options) *Checkpoint {
	return &Checkpoint{
		Version:   checkpointVersion,
		Insts:     o.Insts,
		Warmup:    o.Warmup,
		Quick:     o.Quick,
		Completed: map[string]ExperimentOutcome{},
	}
}

// Matches reports whether results recorded under the checkpoint's options
// are interchangeable with results produced under o. Worker count is
// deliberately excluded: outcomes are deterministic in it.
func (c *Checkpoint) Matches(o Options) bool {
	return c.Insts == o.Insts && c.Warmup == o.Warmup && c.Quick == o.Quick
}

// Done reports the stored outcome for an experiment id, if completed.
func (c *Checkpoint) Done(id string) (ExperimentOutcome, bool) {
	out, ok := c.Completed[id]
	return out, ok
}

// Record marks an experiment as completed.
func (c *Checkpoint) Record(id string, out ExperimentOutcome) {
	c.Completed[id] = out
}

// LoadCheckpoint reads a checkpoint file. A missing file is not an error —
// it returns (nil, nil) so the caller starts fresh. A present but
// unreadable, unparsable or version-mismatched file is an error: silently
// discarding resume state would restart a multi-hour sweep.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if c.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint %s: version %d, want %d (delete it to start fresh)",
			path, c.Version, checkpointVersion)
	}
	if c.Completed == nil {
		c.Completed = map[string]ExperimentOutcome{}
	}
	return &c, nil
}

// Save writes the checkpoint atomically (temp file + rename in the target
// directory), so a crash mid-write never corrupts existing resume state.
func (c *Checkpoint) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.json")
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return nil
}
