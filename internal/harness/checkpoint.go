package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
)

// checkpointVersion guards the JSON payload layout; bump it when the layout
// of Checkpoint changes incompatibly.
const checkpointVersion = 1

// The on-disk checkpoint is a CRC-stamped envelope:
//
//	LBPCKPT2 <crc32c-hex> <payload-bytes>\n
//	<payload: indented JSON of Checkpoint, exactly payload-bytes long>
//
// The header pins both the payload length (torn/truncated writes are
// detected even when the tail still parses as JSON) and a CRC-32C over the
// payload (bit flips are detected). Files beginning with '{' are the
// pre-envelope legacy format and still load.
const envelopeMagic = "LBPCKPT2"

// crcTable is the Castagnoli polynomial: hardware-accelerated on amd64 and
// arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports an unreadable checkpoint: where in the file the
// damage was detected and why, plus where the damaged file was preserved
// (if it was). A corrupt checkpoint never permanently blocks resume — the
// loader moves it aside to <path>.corrupt and falls back to the previous
// generation (<path>.1) when one is valid.
type CorruptError struct {
	Path        string
	Offset      int64  // byte offset where the corruption was detected
	Cause       error  // torn write, CRC mismatch, JSON syntax error, ...
	PreservedAs string // where the damaged file was moved, "" if not moved
}

// Error renders the path, offset, cause and preservation note.
func (e *CorruptError) Error() string {
	msg := fmt.Sprintf("checkpoint %s: corrupt at byte %d: %v", e.Path, e.Offset, e.Cause)
	if e.PreservedAs != "" {
		msg += fmt.Sprintf(" (damaged file preserved as %s)", e.PreservedAs)
	}
	return msg
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *CorruptError) Unwrap() error { return e.Cause }

// ExperimentOutcome is one completed experiment as persisted in a sweep
// checkpoint: its rendered output (including any failure summary) and the
// original wall-clock cost, so a resumed sweep replays identical output.
type ExperimentOutcome struct {
	Output  string  `json:"output"`
	Seconds float64 `json:"seconds"`
}

// Checkpoint is the resume state of one lbpsweep invocation. Completed
// experiments are flushed after each experiment finishes; a restarted sweep
// with matching options skips them and replays their stored output.
type Checkpoint struct {
	Version   int                          `json:"version"`
	Insts     int                          `json:"insts"`
	Warmup    int                          `json:"warmup"`
	Quick     bool                         `json:"quick"`
	Completed map[string]ExperimentOutcome `json:"completed"`

	// Note, when non-empty, describes a recovery the loader performed
	// (corrupt main checkpoint replaced by the previous generation, ...).
	// It is diagnostic only and never persisted.
	Note string `json:"-"`
}

// NewCheckpoint returns an empty checkpoint stamped with the options that
// parameterize experiment results.
func NewCheckpoint(o Options) *Checkpoint {
	return &Checkpoint{
		Version:   checkpointVersion,
		Insts:     o.Insts,
		Warmup:    o.Warmup,
		Quick:     o.Quick,
		Completed: map[string]ExperimentOutcome{},
	}
}

// Matches reports whether results recorded under the checkpoint's options
// are interchangeable with results produced under o. Worker count, retry
// budget and timeouts are deliberately excluded: outcomes are deterministic
// in all of them.
func (c *Checkpoint) Matches(o Options) bool {
	return c.Insts == o.Insts && c.Warmup == o.Warmup && c.Quick == o.Quick
}

// Done reports the stored outcome for an experiment id, if completed.
func (c *Checkpoint) Done(id string) (ExperimentOutcome, bool) {
	out, ok := c.Completed[id]
	return out, ok
}

// Record marks an experiment as completed.
func (c *Checkpoint) Record(id string, out ExperimentOutcome) {
	c.Completed[id] = out
}

// CompletedIDs returns the completed experiment ids in sorted order.
func (c *Checkpoint) CompletedIDs() []string {
	ids := make([]string, 0, len(c.Completed))
	for id := range c.Completed {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Options reconstructs the result-shaping options the checkpoint was
// recorded under (the fields Matches compares).
func (c *Checkpoint) Options() Options {
	return Options{Insts: c.Insts, Warmup: c.Warmup, Quick: c.Quick}
}

// MergeCheckpoints folds the parts of a sharded sweep into one checkpoint.
// Every part must carry the same result-shaping options (results recorded
// under different -insts/-warmup/-quick are not interchangeable), and no
// experiment may be completed in more than one part — a duplicate means two
// shards ran the same work, which a correct deterministic partition makes
// impossible, so it is an integrity failure rather than something to paper
// over by picking a winner. Nil parts (missing shard checkpoints the caller
// chose to tolerate) are skipped.
func MergeCheckpoints(parts []*Checkpoint) (*Checkpoint, error) {
	var merged *Checkpoint
	for i, p := range parts {
		if p == nil {
			continue
		}
		if merged == nil {
			merged = NewCheckpoint(p.Options())
		} else if !p.Matches(merged.Options()) {
			return nil, fmt.Errorf(
				"checkpoint merge: part %d was recorded with -insts %d -warmup %d -quick %v, others with -insts %d -warmup %d -quick %v",
				i, p.Insts, p.Warmup, p.Quick, merged.Insts, merged.Warmup, merged.Quick)
		}
		for _, id := range p.CompletedIDs() {
			if _, dup := merged.Completed[id]; dup {
				return nil, fmt.Errorf("checkpoint merge: experiment %s completed in more than one part", id)
			}
			merged.Completed[id] = p.Completed[id]
		}
	}
	if merged == nil {
		return nil, fmt.Errorf("checkpoint merge: no checkpoints to merge")
	}
	return merged, nil
}

// prevGeneration names the rotated previous checkpoint generation.
func prevGeneration(path string) string { return path + ".1" }

// LoadCheckpoint reads a checkpoint with automatic crash recovery. The
// resolution order is:
//
//  1. <path> valid → use it.
//  2. <path> missing → <path>.1 valid (crash between rotation and rename)
//     → use the previous generation; otherwise start fresh (nil, nil).
//  3. <path> corrupt (torn write, CRC mismatch, unparsable) → preserve the
//     damaged file as <path>.corrupt, then fall back to <path>.1 when that
//     generation is valid; the returned checkpoint's Note describes the
//     recovery. A corrupt <path>.1 is itself preserved as <path>.1.corrupt.
//     With both generations damaged the *CorruptError is returned — it
//     names the preserved file, the byte offset and both causes, and the
//     next invocation starts fresh (every damaged file is out of the way,
//     so a resume can never proceed from garbage).
//
// A version-mismatched (but intact) file is an error, not corruption: it is
// left in place for the caller to decide about.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	c, err := loadGeneration(path)
	if err == nil && c != nil {
		return c, nil
	}
	if err == nil {
		// Main checkpoint missing: a crash window between rotating the old
		// generation aside and renaming the new one in leaves only <path>.1.
		if prev, perr := loadPrevGeneration(path); perr == nil && prev != nil {
			prev.Note = fmt.Sprintf("checkpoint %s missing; resumed from previous generation %s",
				path, prevGeneration(path))
			return prev, nil
		}
		// No usable generation at all (a damaged <path>.1 was quarantined by
		// loadPrevGeneration): start fresh.
		return nil, nil
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		return nil, err // I/O or version error: surface as-is
	}
	preserved := path + ".corrupt"
	if rerr := os.Rename(path, preserved); rerr == nil {
		ce.PreservedAs = preserved
	}
	prev, perr := loadPrevGeneration(path)
	if perr == nil && prev != nil {
		prev.Note = fmt.Sprintf("recovered from previous generation %s after: %v",
			prevGeneration(path), ce)
		return prev, nil
	}
	if perr != nil {
		// Both generations damaged: every damaged file is quarantined (the
		// next invocation starts fresh, never resumes from garbage) and the
		// error names both causes.
		ce.Cause = fmt.Errorf("%w; previous generation also unusable: %v", ce.Cause, perr)
	}
	return nil, ce
}

// loadPrevGeneration loads <path>.1 with the same quarantine discipline as
// the main generation: a corrupt previous generation is moved aside to
// <path>.1.corrupt so no damaged file remains anywhere on the recovery path
// — a later Save/Load cycle must never rotate over or resume from garbage.
func loadPrevGeneration(path string) (*Checkpoint, error) {
	prevPath := prevGeneration(path)
	prev, err := loadGeneration(prevPath)
	if err == nil {
		return prev, nil
	}
	var ce *CorruptError
	if errors.As(err, &ce) {
		preserved := prevPath + ".corrupt"
		if rerr := os.Rename(prevPath, preserved); rerr == nil {
			ce.PreservedAs = preserved
		}
	}
	return nil, err
}

// loadGeneration reads one checkpoint file. A missing file returns
// (nil, nil); damage returns a *CorruptError with the byte offset and
// cause.
func loadGeneration(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return decodeCheckpoint(path, data)
}

// decodeCheckpoint parses an envelope (or legacy bare-JSON) checkpoint.
func decodeCheckpoint(path string, data []byte) (*Checkpoint, error) {
	corrupt := func(off int64, format string, args ...any) (*Checkpoint, error) {
		return nil, &CorruptError{Path: path, Offset: off, Cause: fmt.Errorf(format, args...)}
	}
	if len(data) == 0 {
		return corrupt(0, "empty file (torn write)")
	}
	payload := data
	var headerLen int64
	if data[0] != '{' { // envelope format; '{' is the legacy bare JSON
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 || nl > 64 {
			return corrupt(0, "malformed envelope header (no newline)")
		}
		fields := bytes.Fields(data[:nl])
		if len(fields) != 3 || string(fields[0]) != envelopeMagic {
			return corrupt(0, "malformed envelope header %q", data[:nl])
		}
		wantCRC, err := strconv.ParseUint(string(fields[1]), 16, 32)
		if err != nil {
			return corrupt(int64(len(fields[0])+1), "malformed CRC field: %v", err)
		}
		wantLen, err := strconv.ParseInt(string(fields[2]), 10, 64)
		if err != nil {
			return corrupt(int64(nl), "malformed length field: %v", err)
		}
		headerLen = int64(nl + 1)
		payload = data[headerLen:]
		if int64(len(payload)) != wantLen {
			return corrupt(int64(len(data)),
				"torn write: payload is %d bytes, header promises %d", len(payload), wantLen)
		}
		if got := crc32.Checksum(payload, crcTable); uint32(wantCRC) != got {
			return corrupt(headerLen,
				"CRC mismatch: header %08x, payload %08x", uint32(wantCRC), got)
		}
	}
	var c Checkpoint
	if err := json.Unmarshal(payload, &c); err != nil {
		off := headerLen
		var syn *json.SyntaxError
		if errors.As(err, &syn) {
			off += syn.Offset
		}
		return corrupt(off, "invalid JSON: %v", err)
	}
	if c.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint %s: version %d, want %d (delete it to start fresh)",
			path, c.Version, checkpointVersion)
	}
	if c.Completed == nil {
		c.Completed = map[string]ExperimentOutcome{}
	}
	return &c, nil
}

// Save writes the checkpoint crash-safely: the CRC-stamped envelope goes to
// a temp file which is fsynced and renamed over the target, and the
// previous checkpoint is first rotated aside to <path>.1 so there are
// always up to two generations on disk. A crash at any point leaves at
// least one valid generation for LoadCheckpoint to recover.
func (c *Checkpoint) Save(path string) error {
	payload, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	data := fmt.Appendf(nil, "%s %08x %d\n", envelopeMagic,
		crc32.Checksum(payload, crcTable), len(payload))
	data = append(data, payload...)

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".checkpoint-*.json")
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	// Rotate the current generation aside. A crash after this rename and
	// before the next leaves no <path>; LoadCheckpoint then resumes from
	// <path>.1.
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, prevGeneration(path)); err != nil {
			return fmt.Errorf("checkpoint %s: rotating previous generation: %w", path, err)
		}
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint %s: %w", path, err)
	}
	return nil
}
