package harness

import (
	"reflect"
	"testing"

	"localbp/internal/workloads"
)

// TestTraceCacheReleaseRecyclesBuffer checks the release/reuse cycle: after
// Release, the next generation writes into the parked chunk (no fresh
// allocation) and still produces the exact stream.
func TestTraceCacheReleaseRecyclesBuffer(t *testing.T) {
	ws := workloads.QuickSuite()
	if len(ws) < 2 {
		t.Skip("need two workloads")
	}
	a, b := ws[0], ws[1]
	const n = 4_000

	tc := NewTraceCache()
	trA, err := tc.Get(a, n)
	if err != nil {
		t.Fatal(err)
	}
	base := &trA[0]
	tc.Release(a, n)

	trB, err := tc.Get(b, n)
	if err != nil {
		t.Fatal(err)
	}
	if &trB[0] != base {
		t.Fatalf("generation after Release did not reuse the parked buffer")
	}
	if want := b.Generate(n); !reflect.DeepEqual(trB, want) {
		t.Fatalf("recycled-buffer trace differs from fresh generation")
	}

	// A second Get for b hits the memo without regenerating.
	trB2, err := tc.Get(b, n)
	if err != nil {
		t.Fatal(err)
	}
	if &trB2[0] != &trB[0] {
		t.Fatalf("cache hit returned a different buffer")
	}

	// Releasing an absent key is a no-op.
	tc.Release(a, n)
}
