package tage

import (
	"strings"
	"testing"
)

func TestConfigValidateAccepts(t *testing.T) {
	for _, cfg := range []Config{KB8(), KB9(), KB57()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", cfg.Name, err)
		}
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"one table", func(c *Config) { c.TagBits = c.TagBits[:1] }, "TagBits"},
		{"huge tag", func(c *Config) { c.TagBits[3] = 40 }, "TagBits[3]"},
		{"zero minhist", func(c *Config) { c.MinHist = 0 }, "MinHist"},
		{"inverted hist", func(c *Config) { c.MaxHist = c.MinHist }, "MaxHist"},
		{"hist overflow", func(c *Config) { c.MaxHist = histBufBits + 1 }, "MaxHist"},
		{"bad bimodal", func(c *Config) { c.BimodalLog2 = 0 }, "BimodalLog2"},
		{"bad table size", func(c *Config) { c.TableLog2 = 30 }, "TableLog2"},
	}
	for _, tc := range cases {
		cfg := KB8()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("%s: error does not name %s: %v", tc.name, tc.field, err)
		}
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid config")
		}
	}()
	cfg := KB8()
	cfg.MinHist = 0
	New(cfg)
}
