package tage

import (
	"math/rand"
	"reflect"
	"testing"
)

// maxFuzzPushes bounds the speculative-history pushes between checkpoint
// save and restore. The restore contract only guarantees exactness while the
// circular history buffer still holds the pre-checkpoint bits (fewer than
// histBufBits pushes in flight); real cores are bounded far below that by
// the ROB, and the fuzz harness mirrors the bound.
const maxFuzzPushes = 64

// FuzzTAGE feeds random branch streams through predict / speculative-history
// / train operations and asserts the checkpoint contract: after
// RestoreCheckpoint, re-saving yields a state identical to the original
// checkpoint (folded registers, history position and length, path history),
// and no sequence panics.
func FuzzTAGE(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x82, 0x43, 0xc4, 0x25, 0xa6, 0x67, 0xe8})
	seq := make([]byte, 96)
	for i := range seq {
		seq[i] = byte(i*53 + 7)
	}
	f.Add(seq)

	f.Fuzz(func(t *testing.T, data []byte) {
		p := New(KB8())
		// Warm the history so checkpoints are taken mid-stream, not from
		// the reset state.
		for i := 0; i < 32; i++ {
			var m Meta
			pc := 0x400000 + uint64(i%7)*64
			p.Predict(pc, &m)
			p.SpecUpdateHistory(pc, i%3 == 0)
			p.Update(&m, i%3 == 0, false)
		}

		var ck Checkpoint
		p.SaveCheckpoint(&ck)
		pushes := 0
		for _, b := range data {
			if pushes >= maxFuzzPushes {
				break
			}
			pc := 0x400000 + uint64(b%16)*64
			taken := b&0x80 != 0
			var m Meta
			pred := p.Predict(pc, &m)
			p.SpecUpdateHistory(pc, taken)
			pushes++
			if b&0x40 != 0 {
				p.Update(&m, taken, pred != taken)
			}
		}
		p.RestoreCheckpoint(&ck)

		var ck2 Checkpoint
		p.SaveCheckpoint(&ck2)
		if !reflect.DeepEqual(ck, ck2) {
			t.Fatalf("checkpoint round-trip diverged:\nsaved    %+v\nrestored %+v", ck, ck2)
		}
		var m Meta
		p.Predict(0x400100, &m) // still functional
	})
}

// TestTAGECheckpointRoundTripProperty is the deterministic property-test
// counterpart of FuzzTAGE: seeded random streams of varying length, each
// asserting save → run → restore → save reproduces the checkpoint exactly.
func TestTAGECheckpointRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := New(KB8())
	for trial := 0; trial < 100; trial++ {
		var ck Checkpoint
		p.SaveCheckpoint(&ck)
		for i := 0; i < 1+rng.Intn(maxFuzzPushes); i++ {
			pc := 0x400000 + uint64(rng.Intn(16))*64
			taken := rng.Intn(2) == 0
			var m Meta
			pred := p.Predict(pc, &m)
			p.SpecUpdateHistory(pc, taken)
			if rng.Intn(2) == 0 {
				p.Update(&m, taken, pred != taken)
			}
		}
		p.RestoreCheckpoint(&ck)
		var ck2 Checkpoint
		p.SaveCheckpoint(&ck2)
		if !reflect.DeepEqual(ck, ck2) {
			t.Fatalf("trial %d: checkpoint round-trip diverged", trial)
		}
		// Advance the real stream between trials so checkpoints cover many
		// history positions, including ring wrap-around.
		for i := 0; i < rng.Intn(90); i++ {
			pc := 0x400000 + uint64(rng.Intn(16))*64
			var m Meta
			p.Predict(pc, &m)
			p.SpecUpdateHistory(pc, rng.Intn(2) == 0)
		}
	}
}
