package tage

import (
	"testing"
	"testing/quick"

	"localbp/internal/trace"
)

// drive runs the predictor over a deterministic outcome function, returning
// the misprediction rate over the last `measure` branches.
func drive(t *testing.T, p *Predictor, n, measure int, outcome func(i int, hist uint64) (pc uint64, taken bool)) float64 {
	t.Helper()
	var meta Meta
	var ck Checkpoint
	hist := uint64(0)
	wrong := 0
	for i := 0; i < n; i++ {
		pc, taken := outcome(i, hist)
		pred := p.Predict(pc, &meta)
		p.SaveCheckpoint(&ck)
		p.SpecUpdateHistory(pc, pred)
		misp := pred != taken
		if misp {
			p.RestoreCheckpoint(&ck)
			p.SpecUpdateHistory(pc, taken)
		}
		p.Update(&meta, taken, misp)
		if i >= n-measure && misp {
			wrong++
		}
		hist = hist<<1 | b2u(taken)
	}
	return float64(wrong) / float64(measure)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func TestLearnsBiasedBranch(t *testing.T) {
	p := New(KB8())
	rate := drive(t, p, 4000, 1000, func(i int, _ uint64) (uint64, bool) {
		return 0x1000, true
	})
	if rate > 0.001 {
		t.Fatalf("always-taken misprediction rate %.3f", rate)
	}
}

func TestLearnsAlternatingPattern(t *testing.T) {
	p := New(KB8())
	rate := drive(t, p, 8000, 2000, func(i int, _ uint64) (uint64, bool) {
		return 0x2000, i%2 == 0
	})
	if rate > 0.02 {
		t.Fatalf("TN pattern misprediction rate %.3f", rate)
	}
}

func TestLearnsShortLoop(t *testing.T) {
	// A loop of period 6 is well within the history reach: TAGE must
	// predict the exits after warmup.
	p := New(KB8())
	rate := drive(t, p, 20000, 5000, func(i int, _ uint64) (uint64, bool) {
		return 0x3000, i%6 != 5
	})
	if rate > 0.03 {
		t.Fatalf("period-6 loop misprediction rate %.3f", rate)
	}
}

func TestLearnsHistoryCorrelation(t *testing.T) {
	// Branch B's outcome equals branch A's previous outcome: global
	// history captures it, per-PC state cannot.
	p := New(KB8())
	rate := drive(t, p, 20000, 4000, func(i int, hist uint64) (uint64, bool) {
		if i%2 == 0 {
			return 0xA000, (i/2)%3 == 0
		}
		return 0xB000, hist&1 == 1
	})
	if rate > 0.05 {
		t.Fatalf("correlated pair misprediction rate %.3f", rate)
	}
}

func TestStrugglesOnLongDilutedLoop(t *testing.T) {
	// A period-40 loop whose body contains a random branch: the random
	// bits dilute the history so TAGE cannot pinpoint the exit. This is
	// the opportunity CBPw-Loop exploits (paper §2.2).
	p := New(KB8())
	rng := trace.NewRNG(1)
	iter := 0
	exits, missedExits := 0, 0
	var meta Meta
	var ck Checkpoint
	for i := 0; i < 120000; i++ {
		var pc uint64
		var taken bool
		if i%2 == 0 {
			pc, taken = 0xC000, rng.Bool(0.5) // diluting noise
		} else {
			iter++
			exit := iter%40 == 0
			pc, taken = 0xD000, !exit
		}
		pred := p.Predict(pc, &meta)
		p.SaveCheckpoint(&ck)
		p.SpecUpdateHistory(pc, pred)
		misp := pred != taken
		if misp {
			p.RestoreCheckpoint(&ck)
			p.SpecUpdateHistory(pc, taken)
		}
		p.Update(&meta, taken, misp)
		if pc == 0xD000 && !taken && i > 60000 {
			exits++
			if misp {
				missedExits++
			}
		}
	}
	if exits == 0 {
		t.Fatal("no exits measured")
	}
	if frac := float64(missedExits) / float64(exits); frac < 0.5 {
		t.Fatalf("TAGE predicted %d/%d diluted long-loop exits; expected it to miss most", exits-missedExits, exits)
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	f := func(seed int64, pushesBefore, pushesAfter uint8) bool {
		p := New(KB8())
		r := trace.NewRNG(seed)
		for i := 0; i < int(pushesBefore); i++ {
			p.SpecUpdateHistory(r.Uint64()&0xffff, r.Bool(0.5))
		}
		var ck Checkpoint
		p.SaveCheckpoint(&ck)
		pc := uint64(0x1234)
		var m1 Meta
		want := p.Predict(pc, &m1)
		idx := append([]uint32(nil), m1.indices...)
		for i := 0; i < int(pushesAfter); i++ {
			p.SpecUpdateHistory(r.Uint64()&0xffff, r.Bool(0.5))
		}
		p.RestoreCheckpoint(&ck)
		var m2 Meta
		got := p.Predict(pc, &m2)
		if got != want {
			return false
		}
		for i := range idx {
			if idx[i] != m2.indices[i] {
				return false // table indices must be identical after restore
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricHistoryLengths(t *testing.T) {
	p := New(KB8())
	lens := p.HistoryLengths()
	if lens[0] != KB8().MinHist {
		t.Fatalf("first length %d, want %d", lens[0], KB8().MinHist)
	}
	for i := 1; i < len(lens); i++ {
		if lens[i] <= lens[i-1] {
			t.Fatalf("lengths not strictly increasing: %v", lens)
		}
	}
	if last := lens[len(lens)-1]; last < KB8().MaxHist*8/10 {
		t.Fatalf("max length %d far below configured %d", last, KB8().MaxHist)
	}
}

func TestStorageBudgets(t *testing.T) {
	kb := func(c Config) float64 { return float64(New(c).StorageBits()) / 8192 }
	if v := kb(KB8()); v < 5 || v > 10 {
		t.Fatalf("KB8 storage %.1fKB outside the 8KB class", v)
	}
	if v8, v9 := kb(KB8()), kb(KB9()); v9 <= v8 {
		t.Fatalf("KB9 (%.1f) not larger than KB8 (%.1f)", v9, v8)
	}
	if v := kb(KB57()); v < 40 || v > 75 {
		t.Fatalf("KB57 storage %.1fKB outside the 57KB class", v)
	}
}

func TestAllocationOnMispredict(t *testing.T) {
	p := New(KB8())
	pc := uint64(0x7777)
	var meta Meta
	p.Predict(pc, &meta)
	before := countAllocated(p)
	p.Update(&meta, true, true) // mispredicted
	if after := countAllocated(p); after <= before {
		t.Fatal("misprediction did not allocate tagged entries")
	}
}

func countAllocated(p *Predictor) int {
	n := 0
	for _, tbl := range p.tables {
		for _, e := range tbl {
			if e.tag != 0 || e.ctr != 0 {
				n++
			}
		}
	}
	return n
}

func TestMetaPred(t *testing.T) {
	p := New(KB8())
	var meta Meta
	got := p.Predict(0x100, &meta)
	if meta.Pred() != got {
		t.Fatal("Meta.Pred disagrees with Predict result")
	}
}

func TestStringDescribes(t *testing.T) {
	if New(KB8()).String() == "" {
		t.Fatal("empty description")
	}
}

func TestNewPanicsOnTooFewTables(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for single-table config")
		}
	}()
	cfg := KB8()
	cfg.TagBits = []int{8}
	New(cfg)
}
