package tage

import (
	"testing"
	"testing/quick"
)

// foldReference folds a bit sequence (bits[0] oldest) into compLen bits by
// replaying the incremental algorithm from scratch.
func foldReference(bits []uint32, origLen, compLen int) uint32 {
	// Replay the incremental algorithm from a zero register over the full
	// sequence; the reference is an independent from-scratch replay that a
	// corrupted incremental state would not match after restore.
	f := newFolded(origLen, compLen)
	for i, b := range bits {
		out := uint32(0)
		if j := i - origLen; j >= 0 {
			out = bits[j]
		}
		f.push(b, out)
	}
	return f.value
}

// TestFoldedMatchesReplay: pushing a sequence incrementally must equal a
// from-scratch replay of the same sequence (catches outPoint/mask bugs under
// arbitrary lengths).
func TestFoldedMatchesReplay(t *testing.T) {
	f := func(seed int64, origLen8, compLen8 uint8, n8 uint8) bool {
		origLen := int(origLen8%200) + 2
		compLen := int(compLen8%14) + 2
		n := int(n8) + 1
		bits := make([]uint32, n)
		s := uint64(seed)
		for i := range bits {
			s = s*6364136223846793005 + 1442695040888963407
			bits[i] = uint32(s >> 63)
		}
		// Two independent registers fed the same stream must agree.
		a := newFolded(origLen, compLen)
		b := newFolded(origLen, compLen)
		for i, bit := range bits {
			out := uint32(0)
			if j := i - origLen; j >= 0 {
				out = bits[j]
			}
			a.push(bit, out)
			b.push(bit, out)
		}
		if a.value != b.value {
			return false
		}
		return a.value == foldReference(bits, origLen, compLen) &&
			a.value < 1<<uint(compLen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestFoldedExpiry: once a bit leaves the origLen window its contribution is
// fully cancelled — a window of zeros folds to zero regardless of older
// history.
func TestFoldedExpiry(t *testing.T) {
	origLen, compLen := 16, 5
	f := newFolded(origLen, compLen)
	bits := []uint32{}
	push := func(b uint32) {
		out := uint32(0)
		if j := len(bits) - origLen; j >= 0 {
			out = bits[j]
		}
		f.push(b, out)
		bits = append(bits, b)
	}
	// Noise, then enough zeros to flush the window.
	for i := 0; i < 40; i++ {
		push(uint32(i) & 1)
	}
	for i := 0; i < origLen; i++ {
		push(0)
	}
	if f.value != 0 {
		t.Fatalf("flushed window folds to %#x, want 0", f.value)
	}
}

func TestHistBitWraparound(t *testing.T) {
	p := New(KB8())
	// Push a known pattern and read it back through histBit.
	pattern := []bool{true, false, true, true, false}
	for _, b := range pattern {
		p.SpecUpdateHistory(0x1000, b)
	}
	for back, want := 0, [5]uint32{0, 1, 1, 0, 1}; back < 5; back++ {
		if got := p.histBit(back); got != want[back] {
			t.Fatalf("histBit(%d) = %d, want %d", back, got, want[back])
		}
	}
}
