// Package tage implements the TAGE conditional branch predictor of Seznec
// and Michaud [JILP'06], the baseline predictor of the paper (the TAGE
// component of the CBP-2016 winner, 8KB category). It consists of a tagless
// bimodal base and NumTables partially-tagged tables indexed with
// geometrically increasing global-history lengths.
//
// The global direction history (GHIST) and path history (PHIST) are updated
// speculatively at prediction time; every in-flight branch carries a
// Checkpoint from which the registers are restored on a misprediction —
// the cheap, deterministic repair that the paper contrasts with local-
// predictor BHT repair.
package tage

import (
	"errors"
	"fmt"
	"math"

	"localbp/internal/bpu/bimodal"
)

// Config sizes a TAGE predictor.
type Config struct {
	Name        string
	BimodalLog2 int   // log2 of bimodal entries
	TableLog2   int   // log2 of entries per tagged table
	TagBits     []int // per-table tag width; len == number of tagged tables
	MinHist     int   // shortest geometric history length
	MaxHist     int   // longest geometric history length
	UsePathHist bool
}

// Validate checks the configuration and returns a field-level error for
// every violated constraint (joined), or nil. New panics on a config that
// fails validation; run Validate first to fail fast with a diagnosable
// error before simulation starts.
func (c Config) Validate() error {
	var errs []error
	bad := func(field string, got any, want string) {
		errs = append(errs, fmt.Errorf("tage.Config.%s: got %v, want %s", field, got, want))
	}
	if c.BimodalLog2 < 1 || c.BimodalLog2 > 24 {
		bad("BimodalLog2", c.BimodalLog2, "in [1, 24]")
	}
	if c.TableLog2 < 1 || c.TableLog2 > 20 {
		bad("TableLog2", c.TableLog2, "in [1, 20]")
	}
	if len(c.TagBits) < 2 {
		bad("TagBits", len(c.TagBits), ">= 2 tagged tables")
	}
	for i, t := range c.TagBits {
		if t < 4 || t > 16 {
			bad(fmt.Sprintf("TagBits[%d]", i), t, "in [4, 16]")
		}
	}
	if c.MinHist < 1 {
		bad("MinHist", c.MinHist, ">= 1")
	}
	if c.MaxHist <= c.MinHist {
		bad("MaxHist", c.MaxHist, fmt.Sprintf("> MinHist (%d)", c.MinHist))
	}
	if c.MaxHist > histBufBits {
		bad("MaxHist", c.MaxHist, fmt.Sprintf("<= history buffer capacity (%d)", histBufBits))
	}
	return errors.Join(errs...)
}

// KB8 is the paper's baseline: approximately the TAGE component of the
// CBP-2016 winner's 8KB category (Table 2 lists it as 7.1KB).
func KB8() Config {
	return Config{
		Name:        "TAGE-8KB",
		BimodalLog2: 13,
		TableLog2:   8,
		TagBits:     []int{8, 8, 9, 9, 10, 10, 11, 11, 12, 12},
		MinHist:     4,
		MaxHist:     320,
		UsePathHist: true,
	}
}

// KB9 is the iso-storage comparison point of Figure 14A: the baseline TAGE
// grown by the storage of CBPw-Loop128 plus its repair hardware (~1.9KB),
// invested where it helps most — two extra long-history tables and a longer
// maximum history.
func KB9() Config {
	c := KB8()
	c.Name = "TAGE-9KB"
	c.TagBits = append(c.TagBits, 12, 13)
	c.MaxHist = 420
	return c
}

// KB57 is the large baseline of Figure 14B: the TAGE component of the
// CBP-2016 winner's 64KB category (about 57KB).
func KB57() Config {
	return Config{
		Name:        "TAGE-57KB",
		BimodalLog2: 14,
		TableLog2:   11,
		TagBits:     []int{8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13, 14, 14},
		MinHist:     4,
		MaxHist:     1000,
		UsePathHist: true,
	}
}

const (
	histBufBits  = 4096 // circular global-history capacity (bits)
	phistBits    = 16
	ctrMax       = 7 // 3-bit signed-style counter, taken if >= 4
	uMax         = 3 // 2-bit usefulness
	uResetPeriod = 1 << 18
	altCtrMax    = 15 // use_alt_on_na counter
)

// folded is an incrementally-maintained folded (compressed) history register
// (Michaud's circular shift register trick).
type folded struct {
	value    uint32
	origLen  int // history length being folded
	compLen  int // folded width in bits
	outPoint int
}

func newFolded(origLen, compLen int) folded {
	return folded{origLen: origLen, compLen: compLen, outPoint: origLen % compLen}
}

// push inserts bit `in` and expels the bit that was pushed origLen steps ago.
func (f *folded) push(in, out uint32) {
	f.value = (f.value << 1) | in
	f.value ^= out << uint(f.outPoint)
	f.value ^= f.value >> uint(f.compLen)
	f.value &= (1 << uint(f.compLen)) - 1
}

type entry struct {
	tag uint16
	ctr uint8 // 0..7, taken if >= 4
	u   uint8 // 0..3
}

// Checkpoint captures all speculative TAGE state carried by an in-flight
// branch: folded index/tag registers, the history write pointer and lengths,
// and the path history. Restoring a checkpoint is O(tables).
type Checkpoint struct {
	foldIdx  []uint32
	foldTag1 []uint32
	foldTag2 []uint32
	histPos  int
	histLen  int
	phist    uint32
}

// Meta is the per-branch prediction metadata needed to update the tables
// when the branch resolves.
type Meta struct {
	indices  []uint32
	tags     []uint16
	provider int  // table index of the provider, -1 for bimodal
	altTable int  // table of the alternate prediction, -1 for bimodal
	pred     bool // final TAGE prediction
	altPred  bool
	weakProv bool // provider entry was "newly allocated / weak"
	pc       uint64
}

// Pred reports the prediction recorded in the metadata.
func (m *Meta) Pred() bool { return m.pred }

// Predictor is a TAGE instance.
//
// The three folded-register files (index, tag, tag') are kept as flat
// struct-of-arrays state — current values plus precomputed out-point shifts,
// fold widths and masks — rather than []folded slices. The three hottest
// loops in the whole simulator walk them (Predict's per-table index/tag
// computation, SpecUpdateHistory's triple push, checkpoint save/restore),
// and the SoA layout turns each iteration into a few masked shifts over
// densely packed uint32s. The folded struct above remains the reference
// model the property tests compare against.
type Predictor struct {
	cfg    Config
	base   *bimodal.Predictor
	tables [][]entry
	lens   []int

	hist    []uint8 // circular history bits
	histPos int     // next write position
	histLen int     // total bits pushed (monotonic)
	phist   uint32

	fIdx, fT1, fT2          []uint32 // folded register values, one per table
	fIdxOut, fT1Out, fT2Out []uint32 // outPoint shift (origLen % compLen)
	fT1Len, fT2Len          []uint32 // fold width; the index fold width is TableLog2
	fT1Mask, fT2Mask        []uint32 // (1 << fold width) - 1
	tagMask                 []uint32 // (1 << TagBits[t]) - 1
	pmask                   []uint32 // phist mask: (1 << min(lens[t], phistBits)) - 1

	useAltOnNA int
	branchCnt  uint64
	rngState   uint64

	idxMask uint32
}

// New builds a predictor from cfg.
func New(cfg Config) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nt := len(cfg.TagBits)
	p := &Predictor{
		cfg:      cfg,
		base:     bimodal.New(cfg.BimodalLog2),
		tables:   make([][]entry, nt),
		lens:     geometric(cfg.MinHist, cfg.MaxHist, nt),
		hist:     make([]uint8, histBufBits),
		fIdx:     make([]uint32, nt),
		fT1:      make([]uint32, nt),
		fT2:      make([]uint32, nt),
		fIdxOut:  make([]uint32, nt),
		fT1Out:   make([]uint32, nt),
		fT2Out:   make([]uint32, nt),
		fT1Len:   make([]uint32, nt),
		fT2Len:   make([]uint32, nt),
		fT1Mask:  make([]uint32, nt),
		fT2Mask:  make([]uint32, nt),
		tagMask:  make([]uint32, nt),
		pmask:    make([]uint32, nt),
		idxMask:  uint32(1)<<uint(cfg.TableLog2) - 1,
		rngState: 0x853c49e6748fea9b,
	}
	for i := 0; i < nt; i++ {
		p.tables[i] = make([]entry, 1<<cfg.TableLog2)
		p.fIdxOut[i] = uint32(p.lens[i] % cfg.TableLog2)
		p.fT1Out[i] = uint32(p.lens[i] % cfg.TagBits[i])
		p.fT2Out[i] = uint32(p.lens[i] % (cfg.TagBits[i] - 1))
		p.fT1Len[i] = uint32(cfg.TagBits[i])
		p.fT2Len[i] = uint32(cfg.TagBits[i] - 1)
		p.fT1Mask[i] = uint32(1)<<uint(cfg.TagBits[i]) - 1
		p.fT2Mask[i] = uint32(1)<<uint(cfg.TagBits[i]-1) - 1
		p.tagMask[i] = uint32(1)<<uint(cfg.TagBits[i]) - 1
		n := p.lens[i]
		if n > phistBits {
			n = phistBits
		}
		p.pmask[i] = uint32(1)<<uint(n) - 1
	}
	p.useAltOnNA = altCtrMax / 2
	return p
}

// geometric returns n history lengths from lo to hi in a geometric series.
func geometric(lo, hi, n int) []int {
	out := make([]int, n)
	ratio := 1.0
	if n > 1 {
		ratio = math.Pow(float64(hi)/float64(lo), 1/float64(n-1))
	}
	v := float64(lo)
	prev := 0
	for i := 0; i < n; i++ {
		l := int(v + 0.5)
		if l <= prev {
			l = prev + 1
		}
		if l > histBufBits/2 {
			panic("tage: history length exceeds buffer")
		}
		out[i] = l
		prev = l
		v *= ratio
	}
	return out
}

// HistoryLengths exposes the per-table geometric history lengths.
func (p *Predictor) HistoryLengths() []int { return append([]int(nil), p.lens...) }

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// StorageBits returns the total storage budget in bits.
func (p *Predictor) StorageBits() int {
	bits := p.base.StorageBits()
	for i, t := range p.tables {
		bits += len(t) * (p.cfg.TagBits[i] + 3 + 2)
	}
	return bits
}

// String describes the predictor.
func (p *Predictor) String() string {
	return fmt.Sprintf("%s (%d tagged tables, %.1fKB)", p.cfg.Name, len(p.tables),
		float64(p.StorageBits())/8192)
}

func (p *Predictor) histBit(stepsBack int) uint32 {
	pos := p.histPos - 1 - stepsBack
	pos &= histBufBits - 1
	return uint32(p.hist[pos])
}

func (p *Predictor) index(pc uint64, t int) uint32 {
	h := p.fIdx[t]
	v := uint32(pc>>2) ^ uint32(pc>>(uint(p.cfg.TableLog2)+2)) ^ h
	if p.cfg.UsePathHist {
		v ^= pathMix(p.phist, p.lens[t], p.cfg.TableLog2)
	}
	return v & p.idxMask
}

func (p *Predictor) tag(pc uint64, t int) uint16 {
	v := uint32(pc>>2) ^ p.fT1[t] ^ (p.fT2[t] << 1)
	return uint16(v & p.tagMask[t])
}

// pathMix hashes the path history, bounded by the table's history length
// (Seznec's F function, simplified).
func pathMix(phist uint32, hlen, log2 int) uint32 {
	n := hlen
	if n > phistBits {
		n = phistBits
	}
	v := phist & (1<<uint(n) - 1)
	return (v ^ (v >> uint(log2))) & (1<<uint(log2) - 1)
}

func (p *Predictor) rand() uint64 {
	p.rngState = p.rngState*6364136223846793005 + 1442695040888963407
	return p.rngState >> 33
}

// Predict computes the TAGE prediction for pc and fills meta for the later
// Update call. meta must not be nil; it is reused across calls to avoid
// allocation.
func (p *Predictor) Predict(pc uint64, meta *Meta) bool {
	nt := len(p.tables)
	if cap(meta.indices) < nt {
		meta.indices = make([]uint32, nt)
		meta.tags = make([]uint16, nt)
	}
	meta.indices = meta.indices[:nt]
	meta.tags = meta.tags[:nt]
	meta.pc = pc
	meta.provider, meta.altTable = -1, -1

	basePred := p.base.Predict(pc)
	meta.pred, meta.altPred = basePred, basePred
	meta.weakProv = false

	// Fused index/tag computation over the SoA folded registers. The final
	// mask distributes over xor, so pathMix's intermediate mask (same width
	// as idxMask) folds into the single closing `& idxMask`.
	pcIdx := uint32(pc>>2) ^ uint32(pc>>(uint(p.cfg.TableLog2)+2))
	pcTag := uint32(pc >> 2)
	log2 := uint(p.cfg.TableLog2)
	if p.cfg.UsePathHist {
		for t := 0; t < nt; t++ {
			v := p.phist & p.pmask[t]
			meta.indices[t] = (pcIdx ^ p.fIdx[t] ^ v ^ (v >> log2)) & p.idxMask
			meta.tags[t] = uint16((pcTag ^ p.fT1[t] ^ (p.fT2[t] << 1)) & p.tagMask[t])
		}
	} else {
		for t := 0; t < nt; t++ {
			meta.indices[t] = (pcIdx ^ p.fIdx[t]) & p.idxMask
			meta.tags[t] = uint16((pcTag ^ p.fT1[t] ^ (p.fT2[t] << 1)) & p.tagMask[t])
		}
	}
	for t := nt - 1; t >= 0; t-- {
		e := &p.tables[t][meta.indices[t]]
		if e.tag != meta.tags[t] {
			continue
		}
		if meta.provider == -1 {
			meta.provider = t
		} else {
			meta.altTable = t
			break
		}
	}
	if meta.provider >= 0 {
		e := &p.tables[meta.provider][meta.indices[meta.provider]]
		provPred := e.ctr >= 4
		if meta.altTable >= 0 {
			ae := &p.tables[meta.altTable][meta.indices[meta.altTable]]
			meta.altPred = ae.ctr >= 4
		}
		// A weak provider is a (likely newly allocated) entry whose
		// counter is borderline and that has proven useless so far.
		meta.weakProv = e.u == 0 && (e.ctr == 3 || e.ctr == 4)
		if meta.weakProv && p.useAltOnNA >= altCtrMax/2+1 {
			meta.pred = meta.altPred
		} else {
			meta.pred = provPred
		}
	}
	return meta.pred
}

// SpecUpdateHistory pushes the predicted direction into GHIST/PHIST.
// Call once per predicted branch, after Predict.
func (p *Predictor) SpecUpdateHistory(pc uint64, taken bool) {
	in := uint32(0)
	if taken {
		in = 1
	}
	p.hist[p.histPos] = uint8(in)
	p.histPos = (p.histPos + 1) & (histBufBits - 1)
	p.histLen++
	// Inlined folded.push over the SoA registers: shift in the new bit, xor
	// out the bit pushed origLen steps ago at its folded position, wrap the
	// overflow bit, mask. The index fold width is TableLog2 for every table.
	idxLog2 := uint(p.cfg.TableLog2)
	base := p.histPos - 1
	nt := len(p.tables)
	// Local re-slices pinned to nt (and hist to its fixed power-of-two
	// length) let the compiler prove every index in the loop in-bounds.
	hist := p.hist[:histBufBits:histBufBits]
	lens := p.lens[:nt]
	fIdx, fIdxOut := p.fIdx[:nt], p.fIdxOut[:nt]
	fT1, fT1Out, fT1Len, fT1Mask := p.fT1[:nt], p.fT1Out[:nt], p.fT1Len[:nt], p.fT1Mask[:nt]
	fT2, fT2Out, fT2Len, fT2Mask := p.fT2[:nt], p.fT2Out[:nt], p.fT2Len[:nt], p.fT2Mask[:nt]
	for t := 0; t < nt; t++ {
		out := uint32(hist[(base-lens[t])&(histBufBits-1)])
		v := (fIdx[t]<<1 | in) ^ out<<fIdxOut[t]
		v ^= v >> idxLog2
		fIdx[t] = v & p.idxMask
		v = (fT1[t]<<1 | in) ^ out<<fT1Out[t]
		v ^= v >> fT1Len[t]
		fT1[t] = v & fT1Mask[t]
		v = (fT2[t]<<1 | in) ^ out<<fT2Out[t]
		v ^= v >> fT2Len[t]
		fT2[t] = v & fT2Mask[t]
	}
	p.phist = ((p.phist << 1) | uint32(pc>>2)&1) & (1<<phistBits - 1)
}

// SaveCheckpoint captures the speculative history state into ck (reusing its
// storage when possible). Take the checkpoint *before* SpecUpdateHistory so
// that restoring rewinds the mispredicted branch's own push.
func (p *Predictor) SaveCheckpoint(ck *Checkpoint) {
	nt := len(p.tables)
	if cap(ck.foldIdx) < nt {
		ck.foldIdx = make([]uint32, nt)
		ck.foldTag1 = make([]uint32, nt)
		ck.foldTag2 = make([]uint32, nt)
	}
	ck.foldIdx = ck.foldIdx[:nt]
	ck.foldTag1 = ck.foldTag1[:nt]
	ck.foldTag2 = ck.foldTag2[:nt]
	copy(ck.foldIdx, p.fIdx)
	copy(ck.foldTag1, p.fT1)
	copy(ck.foldTag2, p.fT2)
	ck.histPos = p.histPos
	ck.histLen = p.histLen
	ck.phist = p.phist
}

// PrimeMetas sizes the metadata slices of every record in ms for this
// predictor out of two shared arenas: one allocation per field instead of
// one per record. Predict never reallocates a primed Meta.
func (p *Predictor) PrimeMetas(ms []*Meta) {
	nt := len(p.tables)
	idx := make([]uint32, len(ms)*nt)
	tags := make([]uint16, len(ms)*nt)
	for i, m := range ms {
		m.indices = idx[i*nt : (i+1)*nt : (i+1)*nt]
		m.tags = tags[i*nt : (i+1)*nt : (i+1)*nt]
	}
}

// PrimeCheckpoints sizes the folded-register slices of every checkpoint in
// cks out of one shared arena, so SaveCheckpoint never reallocates them.
func (p *Predictor) PrimeCheckpoints(cks []*Checkpoint) {
	nt := len(p.tables)
	arena := make([]uint32, 3*len(cks)*nt)
	for i, ck := range cks {
		base := 3 * i * nt
		ck.foldIdx = arena[base : base+nt : base+nt]
		ck.foldTag1 = arena[base+nt : base+2*nt : base+2*nt]
		ck.foldTag2 = arena[base+2*nt : base+3*nt : base+3*nt]
	}
}

// RestoreCheckpoint rewinds GHIST/PHIST to ck. History bits newer than the
// checkpoint are abandoned; the underlying circular buffer still holds the
// pre-checkpoint bits as long as fewer than histBufBits branches were in
// flight, which the core guarantees by construction.
func (p *Predictor) RestoreCheckpoint(ck *Checkpoint) {
	copy(p.fIdx, ck.foldIdx)
	copy(p.fT1, ck.foldTag1)
	copy(p.fT2, ck.foldTag2)
	p.histPos = ck.histPos
	p.histLen = ck.histLen
	p.phist = ck.phist
}

// Update trains the predictor with the resolved direction. mispredicted
// refers to the *final* pipeline prediction (after any local-predictor
// override): allocation is driven by final mispredictions, as in the paper's
// combined design.
func (p *Predictor) Update(meta *Meta, taken, mispredicted bool) {
	p.branchCnt++
	if p.branchCnt%uResetPeriod == 0 {
		p.gracefulUReset()
	}

	// use_alt_on_na bookkeeping.
	if meta.provider >= 0 && meta.weakProv {
		provPred := p.tables[meta.provider][meta.indices[meta.provider]].ctr >= 4
		if provPred != meta.altPred {
			if meta.altPred == taken {
				if p.useAltOnNA < altCtrMax {
					p.useAltOnNA++
				}
			} else if p.useAltOnNA > 0 {
				p.useAltOnNA--
			}
		}
	}

	if meta.provider >= 0 {
		e := &p.tables[meta.provider][meta.indices[meta.provider]]
		updateCtr(&e.ctr, taken)
		provPred := e.ctr >= 4 // post-update; u update uses pre-resolution pred below
		_ = provPred
		if meta.pred != meta.altPred {
			if meta.pred == taken {
				if e.u < uMax {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
		// Weak, useless providers that mispredict lose their entry's
		// protection faster.
		if meta.pred != taken && e.u > 0 && meta.weakProv {
			e.u--
		}
	} else {
		p.base.Update(meta.pc, taken)
	}

	// Allocate on a TAGE misprediction, in a table with longer history
	// than the provider.
	if meta.pred != taken {
		p.allocate(meta, taken)
	}
}

func updateCtr(c *uint8, taken bool) {
	if taken {
		if *c < ctrMax {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

func (p *Predictor) allocate(meta *Meta, taken bool) {
	start := meta.provider + 1
	nt := len(p.tables)
	if start >= nt {
		return
	}
	// Random skip to spread allocations (as in the CBP reference code).
	if nt-start > 1 && p.rand()%2 == 1 {
		start++
	}
	allocated := 0
	for t := start; t < nt && allocated < 2; t++ {
		e := &p.tables[t][meta.indices[t]]
		if e.u == 0 {
			e.tag = meta.tags[t]
			e.u = 0
			if taken {
				e.ctr = 4
			} else {
				e.ctr = 3
			}
			allocated++
			t++ // skip the adjacent table after a successful allocation
		}
	}
	if allocated == 0 {
		// Everything useful: decay usefulness so future allocations
		// can succeed.
		for t := start; t < nt; t++ {
			e := &p.tables[t][meta.indices[t]]
			if e.u > 0 {
				e.u--
			}
		}
	}
}

// gracefulUReset periodically halves usefulness (alternating bit clears in
// real hardware; halving is the behavioural equivalent).
func (p *Predictor) gracefulUReset() {
	for _, tbl := range p.tables {
		for i := range tbl {
			tbl[i].u >>= 1
		}
	}
}
