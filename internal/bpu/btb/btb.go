// Package btb implements the branch target buffer of Table 2 (2K entries):
// the front-end structure that lets a predicted-taken branch redirect fetch
// immediately. A taken prediction that misses the BTB cannot redirect until
// the branch decodes, costing a front-end bubble; the entry is filled when
// the branch resolves.
package btb

// Config sizes a BTB.
type Config struct {
	Entries int
	Ways    int
}

// DefaultConfig is the Table 2 BTB: 2K entries, 4-way.
func DefaultConfig() Config { return Config{Entries: 2048, Ways: 4} }

type entry struct {
	tag    uint32
	target uint64
	valid  bool
	lru    uint8
}

// BTB is a set-associative branch target buffer.
type BTB struct {
	cfg     Config
	sets    int
	setMask uint64
	e       []entry

	statLookups uint64
	statMisses  uint64
}

// New builds a BTB from cfg.
func New(cfg Config) *BTB {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic("btb: bad geometry")
	}
	sets := cfg.Entries / cfg.Ways
	if sets&(sets-1) != 0 {
		panic("btb: set count must be a power of two")
	}
	b := &BTB{cfg: cfg, sets: sets, setMask: uint64(sets - 1), e: make([]entry, cfg.Entries)}
	for s := 0; s < sets; s++ {
		for w := 0; w < cfg.Ways; w++ {
			b.e[s*cfg.Ways+w].lru = uint8(w)
		}
	}
	return b
}

func (b *BTB) index(pc uint64) (base int, tag uint32) {
	// Fold PC bits so regularly-strided branch addresses spread across
	// sets, as hardware index hashes do.
	v := (pc >> 2) ^ (pc >> 9) ^ (pc >> 17)
	return int(v&b.setMask) * b.cfg.Ways, uint32((pc >> 2) >> uint(log2(b.sets)))
}

func log2(n int) uint {
	k := uint(0)
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// Lookup probes the BTB for pc's target. ok is false on a miss (the
// front end cannot redirect this cycle).
func (b *BTB) Lookup(pc uint64) (target uint64, ok bool) {
	b.statLookups++
	base, tag := b.index(pc)
	for w := 0; w < b.cfg.Ways; w++ {
		e := &b.e[base+w]
		if e.valid && e.tag == tag {
			b.touch(base, w)
			return e.target, true
		}
	}
	b.statMisses++
	return 0, false
}

func (b *BTB) touch(base, way int) {
	old := b.e[base+way].lru
	for w := 0; w < b.cfg.Ways; w++ {
		if e := &b.e[base+w]; e.lru < old {
			e.lru++
		}
	}
	b.e[base+way].lru = 0
}

// Insert fills pc → target, evicting LRU.
func (b *BTB) Insert(pc, target uint64) {
	base, tag := b.index(pc)
	victim := 0
	for w := 0; w < b.cfg.Ways; w++ {
		e := &b.e[base+w]
		if e.valid && e.tag == tag {
			e.target = target
			b.touch(base, w)
			return
		}
		if !e.valid {
			victim = w
			break
		}
		if e.lru > b.e[base+victim].lru {
			victim = w
		}
	}
	b.e[base+victim] = entry{tag: tag, target: target, valid: true, lru: b.e[base+victim].lru}
	b.touch(base, victim)
}

// Stats returns (lookups, misses).
func (b *BTB) Stats() (uint64, uint64) { return b.statLookups, b.statMisses }

// StorageBits approximates the structure cost (tag + partial target).
func (b *BTB) StorageBits() int { return b.cfg.Entries * (20 + 32 + 1 + 2) }
