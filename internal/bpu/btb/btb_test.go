package btb

import (
	"testing"
	"testing/quick"
)

func TestMissThenHit(t *testing.T) {
	b := New(DefaultConfig())
	if _, ok := b.Lookup(0x4000); ok {
		t.Fatal("cold lookup hit")
	}
	b.Insert(0x4000, 0x5000)
	tgt, ok := b.Lookup(0x4000)
	if !ok || tgt != 0x5000 {
		t.Fatalf("lookup after insert: %#x ok=%v", tgt, ok)
	}
}

func TestUpdateExisting(t *testing.T) {
	b := New(DefaultConfig())
	b.Insert(0x4000, 0x5000)
	b.Insert(0x4000, 0x6000)
	if tgt, _ := b.Lookup(0x4000); tgt != 0x6000 {
		t.Fatalf("target not updated: %#x", tgt)
	}
}

func TestLRUEviction(t *testing.T) {
	b := New(Config{Entries: 8, Ways: 4}) // 2 sets
	// Collect five PCs that map to the same set, fill the 4 ways and one
	// more: the first inserted (LRU) must go.
	sameSet := []uint64{}
	want, _ := b.index(0x1000)
	for pc := uint64(0x1000); len(sameSet) < 5; pc += 4 {
		if got, _ := b.index(pc); got == want {
			sameSet = append(sameSet, pc)
		}
	}
	for i, pc := range sameSet {
		b.Insert(pc, uint64(i))
	}
	if _, ok := b.Lookup(sameSet[0]); ok {
		t.Fatal("LRU entry survived a full-set insert")
	}
	if _, ok := b.Lookup(sameSet[4]); !ok {
		t.Fatal("most recent insert missing")
	}
}

func TestCapacityCoversSuitePCs(t *testing.T) {
	// The Table 2 BTB (2K entries) must hold several hundred branch sites
	// without steady-state misses.
	b := New(DefaultConfig())
	for site := 0; site < 400; site++ {
		b.Insert(0x400000+uint64(site)*0x400, 1)
	}
	misses := 0
	for site := 0; site < 400; site++ {
		if _, ok := b.Lookup(0x400000 + uint64(site)*0x400); !ok {
			misses++
		}
	}
	if misses > 0 {
		t.Fatalf("%d/400 suite-style sites missing from a 2K BTB", misses)
	}
}

func TestStatsCount(t *testing.T) {
	b := New(DefaultConfig())
	b.Lookup(0x1)
	b.Insert(0x1, 2)
	b.Lookup(0x1)
	lookups, misses := b.Stats()
	if lookups != 2 || misses != 1 {
		t.Fatalf("stats %d/%d, want 2/1", lookups, misses)
	}
}

func TestInsertLookupProperty(t *testing.T) {
	b := New(DefaultConfig())
	f := func(pc, tgt uint64) bool {
		b.Insert(pc, tgt)
		got, ok := b.Lookup(pc)
		return ok && got == tgt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{{Entries: 0, Ways: 4}, {Entries: 12, Ways: 4}} {
		func() {
			defer func() { recover() }()
			New(cfg)
			t.Fatalf("config %+v accepted", cfg)
		}()
	}
}

func TestStorage(t *testing.T) {
	if kb := float64(New(DefaultConfig()).StorageBits()) / 8192; kb < 8 || kb > 20 {
		t.Fatalf("2K-entry BTB storage %.1fKB implausible", kb)
	}
}
