// Package yehpatt implements a generic two-level local branch predictor in
// the style of Yeh and Patt [MICRO'91]: a set-associative Branch History
// Table tracks the recent per-PC direction history (a bit pattern), and a
// shared pattern table of saturating counters predicts the next direction
// for each observed pattern.
//
// The paper's repair techniques are defined over any local predictor —
// "for the generic local predictors, the state is a sequence of bit-patterns
// while for the loop predictor the state is a counter" (§1). This package
// demonstrates that claim: it implements loop.LocalPredictor, so every
// scheme in internal/repair (perfect, walks, snapshot, limited-PC, …)
// manages it unchanged. The speculative bit pattern rides in
// loop.State.Count, exactly as the paper's 11-bit pattern rides through the
// pipeline.
package yehpatt

import (
	"fmt"

	"localbp/internal/bpu/loop"
)

// Config sizes a generic local predictor.
type Config struct {
	Name     string
	Entries  int // BHT entries
	Ways     int
	HistBits int // local history length (the per-PC pattern width)
	// CtrBits sizes the pattern-table counters (3 recommended).
	CtrBits int
}

// Default128 mirrors CBPw-Loop128's footprint: 128 BHT entries, 11-bit
// local history, a 2K-entry pattern table of 3-bit counters.
func Default128() Config {
	return Config{Name: "YehPatt128", Entries: 128, Ways: 8, HistBits: 11, CtrBits: 3}
}

// Default64 halves the BHT.
func Default64() Config {
	return Config{Name: "YehPatt64", Entries: 64, Ways: 8, HistBits: 11, CtrBits: 3}
}

type bhtEntry struct {
	tag   uint16
	hist  uint16 // speculative local history, low bit most recent
	rhist uint16 // retire-time history (training view, non-speculative)
	warm  uint8  // retired outcomes observed (gates early predictions)
	lru   uint8
	alloc bool
	valid bool
}

// Predictor is a Yeh-Patt style two-level local predictor.
type Predictor struct {
	cfg      Config
	sets     int
	setMask  uint64
	histMask uint16
	bht      []bhtEntry
	pt       []uint8 // saturating counters indexed by pattern
	ctrMax   uint8
	ctrMid   uint8

	repairGen   uint32
	repairStamp []uint32

	statPredict uint64
	statAlloc   uint64
}

var _ loop.LocalPredictor = (*Predictor)(nil)

// New builds a predictor from cfg.
func New(cfg Config) *Predictor {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic(fmt.Sprintf("yehpatt: bad geometry %d/%d", cfg.Entries, cfg.Ways))
	}
	sets := cfg.Entries / cfg.Ways
	if sets&(sets-1) != 0 {
		panic("yehpatt: set count must be a power of two")
	}
	if cfg.HistBits < 2 || cfg.HistBits > 16 {
		panic("yehpatt: HistBits out of range")
	}
	if cfg.CtrBits < 2 || cfg.CtrBits > 5 {
		panic("yehpatt: CtrBits out of range")
	}
	p := &Predictor{
		cfg:         cfg,
		sets:        sets,
		setMask:     uint64(sets - 1),
		histMask:    uint16(1)<<cfg.HistBits - 1,
		bht:         make([]bhtEntry, cfg.Entries),
		pt:          make([]uint8, 1<<cfg.HistBits),
		ctrMax:      uint8(1)<<cfg.CtrBits - 1,
		repairGen:   1,
		repairStamp: make([]uint32, cfg.Entries),
	}
	p.ctrMid = (p.ctrMax + 1) / 2
	for i := range p.pt {
		p.pt[i] = p.ctrMid - 1 // weakly not-taken
	}
	for s := 0; s < sets; s++ {
		for w := 0; w < cfg.Ways; w++ {
			p.bht[s*cfg.Ways+w].lru = uint8(w)
		}
	}
	return p
}

func pcHash(pc uint64) uint64 {
	v := pc >> 2
	return v ^ (v >> 5) ^ (v >> 11) ^ (v >> 17)
}

func (p *Predictor) set(pc uint64) int { return int(pcHash(pc) & p.setMask) }
func (p *Predictor) tagOf(pc uint64) uint16 {
	h := pcHash(pc)
	return uint16((h>>uint(log2(p.sets)))^(h>>13)) & 0xff
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

func (p *Predictor) lookup(pc uint64) int {
	base := p.set(pc) * p.cfg.Ways
	tag := p.tagOf(pc)
	for w := 0; w < p.cfg.Ways; w++ {
		e := &p.bht[base+w]
		if e.alloc && e.tag == tag {
			return base + w
		}
	}
	return -1
}

func (p *Predictor) touchLRU(idx int) {
	base := idx / p.cfg.Ways * p.cfg.Ways
	old := p.bht[idx].lru
	for w := 0; w < p.cfg.Ways; w++ {
		if e := &p.bht[base+w]; e.lru < old {
			e.lru++
		}
	}
	p.bht[idx].lru = 0
}

func (p *Predictor) victim(pc uint64) int {
	base := p.set(pc) * p.cfg.Ways
	v := base
	for w := 0; w < p.cfg.Ways; w++ {
		e := &p.bht[base+w]
		if !e.alloc {
			return base + w
		}
		if e.lru > p.bht[v].lru {
			v = base + w
		}
	}
	return v
}

// confident reports whether the counter is saturated enough to override.
func (p *Predictor) confident(ctr uint8) bool {
	return ctr == 0 || ctr == p.ctrMax
}

// Predict implements loop.LocalPredictor.
func (p *Predictor) Predict(pc uint64) loop.Prediction {
	p.statPredict++
	i := p.lookup(pc)
	if i < 0 {
		return loop.Prediction{}
	}
	e := &p.bht[i]
	if !e.valid || int(e.warm) < p.cfg.HistBits {
		return loop.Prediction{}
	}
	ctr := p.pt[e.hist&p.histMask]
	if !p.confident(ctr) {
		return loop.Prediction{}
	}
	return loop.Prediction{Taken: ctr >= p.ctrMid, Valid: true}
}

// PredictWithOffset implements loop.LocalPredictor. A bit pattern cannot be
// advanced without knowing the in-flight directions, so the offset is
// ignored: update-at-retire integrations simply see the stale pattern, which
// is precisely the weakness the paper ascribes to that scheme.
func (p *Predictor) PredictWithOffset(pc uint64, _ uint16) loop.Prediction {
	return p.Predict(pc)
}

// LookupState implements loop.LocalPredictor: the bit pattern travels in
// State.Count.
func (p *Predictor) LookupState(pc uint64) (loop.State, bool) {
	i := p.lookup(pc)
	if i < 0 {
		return loop.State{}, false
	}
	e := &p.bht[i]
	return loop.State{Count: e.hist, Valid: e.valid}, true
}

// SpecUpdate implements loop.LocalPredictor: shift the predicted direction
// into the speculative history.
func (p *Predictor) SpecUpdate(pc uint64, d bool) bool {
	i := p.lookup(pc)
	if i < 0 {
		return false // allocation happens at retire, where training lives
	}
	e := &p.bht[i]
	e.hist = (e.hist << 1) & p.histMask
	if d {
		e.hist |= 1
	}
	p.touchLRU(i)
	return false
}

// RestoreState implements loop.LocalPredictor (repair write).
func (p *Predictor) RestoreState(pc uint64, st loop.State) {
	i := p.lookup(pc)
	if i < 0 {
		i = p.victim(pc)
		p.bht[i] = bhtEntry{tag: p.tagOf(pc), alloc: true, lru: p.bht[i].lru}
	}
	e := &p.bht[i]
	e.hist = st.Count & p.histMask
	e.valid = st.Valid
	p.repairStamp[i] = p.repairGen
}

// ApplyOutcome implements loop.LocalPredictor.
func (p *Predictor) ApplyOutcome(pc uint64, taken bool) {
	i := p.lookup(pc)
	if i < 0 {
		return
	}
	e := &p.bht[i]
	e.hist = (e.hist << 1) & p.histMask
	if taken {
		e.hist |= 1
	}
	e.valid = true
	p.repairStamp[i] = p.repairGen
}

// Invalidate implements loop.LocalPredictor.
func (p *Predictor) Invalidate(pc uint64) {
	if i := p.lookup(pc); i >= 0 {
		p.bht[i].valid = false
	}
}

// InvalidateAll implements loop.LocalPredictor.
func (p *Predictor) InvalidateAll() {
	for i := range p.bht {
		p.bht[i].valid = false
	}
}

// Retire implements loop.LocalPredictor: train the pattern table with the
// retire-time history (non-speculative), allocate on final mispredictions,
// and re-synchronize the speculative history when it has gone invalid — at
// retire the architectural history is known exactly.
func (p *Predictor) Retire(pc uint64, taken, finalMispredicted bool) {
	i := p.lookup(pc)
	if i < 0 {
		if !finalMispredicted {
			return
		}
		i = p.victim(pc)
		p.bht[i] = bhtEntry{tag: p.tagOf(pc), alloc: true, valid: true, lru: p.bht[i].lru}
		p.statAlloc++
		p.repairStamp[i] = p.repairGen
		p.touchLRU(i)
	}
	e := &p.bht[i]
	// Train the counter for the pre-outcome retired pattern.
	if int(e.warm) >= p.cfg.HistBits {
		idx := e.rhist & p.histMask
		if taken {
			if p.pt[idx] < p.ctrMax {
				p.pt[idx]++
			}
		} else if p.pt[idx] > 0 {
			p.pt[idx]--
		}
	}
	e.rhist = (e.rhist << 1) & p.histMask
	if taken {
		e.rhist |= 1
	}
	if int(e.warm) < p.cfg.HistBits {
		e.warm++
	}
	if !e.valid {
		// The speculative view is stale (skipped updates, unrepaired
		// flushes); at retirement the true history is rhist, modulo the
		// in-flight instances. Adopting it re-validates the entry with
		// bounded error, like the loop predictor's flip re-sync.
		e.hist = e.rhist
		e.valid = true
	}
}

// PatternInfo implements loop.LocalPredictor: a bit-pattern predictor has no
// period/dominant-direction notion, so the zero value is returned.
func (p *Predictor) PatternInfo(uint64) loop.PTInfo { return loop.PTInfo{} }

// PatternConfident implements loop.LocalPredictor.
func (p *Predictor) PatternConfident(pc uint64) bool {
	i := p.lookup(pc)
	if i < 0 {
		return false
	}
	e := &p.bht[i]
	return e.valid && int(e.warm) >= p.cfg.HistBits && p.confident(p.pt[e.hist&p.histMask])
}

// PenalizeOverride implements loop.LocalPredictor: weaken the counter that
// drove the wrong override.
func (p *Predictor) PenalizeOverride(pc uint64) {
	i := p.lookup(pc)
	if i < 0 {
		return
	}
	idx := p.bht[i].hist & p.histMask
	switch ctr := p.pt[idx]; {
	case ctr == p.ctrMax:
		p.pt[idx] = ctr - 1
	case ctr == 0:
		p.pt[idx] = 1
	}
}

// RepairStart implements loop.LocalPredictor.
func (p *Predictor) RepairStart() { p.repairGen++ }

// RepairBitSet implements loop.LocalPredictor.
func (p *Predictor) RepairBitSet(pc uint64) bool {
	i := p.lookup(pc)
	if i < 0 {
		return true
	}
	return p.repairStamp[i] != p.repairGen
}

// SnapshotBHT implements loop.LocalPredictor.
func (p *Predictor) SnapshotBHT(dst []loop.FullState) []loop.FullState {
	if cap(dst) < len(p.bht) {
		dst = make([]loop.FullState, len(p.bht))
	}
	dst = dst[:len(p.bht)]
	for i := range p.bht {
		e := &p.bht[i]
		dst[i] = loop.FullState{Tag: e.tag, Count: e.hist, LRU: e.lru,
			Alloc: e.alloc, Valid: e.valid}
	}
	return dst
}

// RestoreBHT implements loop.LocalPredictor. Only the speculative fields
// (pattern, valid, allocation) restore; the training view (rhist/warm) is
// non-speculative and keeps its current value.
func (p *Predictor) RestoreBHT(snap []loop.FullState) int {
	if len(snap) != len(p.bht) {
		panic("yehpatt: snapshot geometry mismatch")
	}
	changed := 0
	for i := range p.bht {
		e := &p.bht[i]
		if e.hist != snap[i].Count || e.valid != snap[i].Valid ||
			e.alloc != snap[i].Alloc || e.tag != snap[i].Tag {
			changed++
			p.repairStamp[i] = p.repairGen
		}
		e.tag = snap[i].Tag
		e.hist = snap[i].Count
		e.lru = snap[i].LRU
		e.alloc = snap[i].Alloc
		e.valid = snap[i].Valid
	}
	return changed
}

// DiffBHT implements loop.LocalPredictor.
func (p *Predictor) DiffBHT(snap []loop.FullState) int {
	if len(snap) != len(p.bht) {
		panic("yehpatt: snapshot geometry mismatch")
	}
	n := 0
	for i := range p.bht {
		e := &p.bht[i]
		if e.hist != snap[i].Count || e.valid != snap[i].Valid ||
			e.alloc != snap[i].Alloc || e.tag != snap[i].Tag {
			n++
		}
	}
	return n
}

// Entries implements loop.LocalPredictor.
func (p *Predictor) Entries() int { return p.cfg.Entries }

// BHTStorageBits implements loop.LocalPredictor: tag + two histories + warm
// counter + bookkeeping bits per entry.
func (p *Predictor) BHTStorageBits() int {
	return p.cfg.Entries * (8 + 2*p.cfg.HistBits + 4 + 3 + 2)
}

// StorageBits implements loop.LocalPredictor.
func (p *Predictor) StorageBits() int {
	return p.BHTStorageBits() + len(p.pt)*p.cfg.CtrBits
}

// Stats returns (predictions, allocations).
func (p *Predictor) Stats() (uint64, uint64) { return p.statPredict, p.statAlloc }
