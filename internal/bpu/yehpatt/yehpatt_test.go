package yehpatt

import (
	"testing"
	"testing/quick"

	"localbp/internal/bpu/loop"
)

// train drives pc through outcomes with the pipeline protocol: speculative
// update with the prediction (or the actual when no prediction), repair via
// ApplyOutcome on mispredicts, PT training at retire.
func train(p *Predictor, pc uint64, outcome func(i int) bool, n int) (predicted, correct int) {
	for i := 0; i < n; i++ {
		actual := outcome(i)
		pred := p.Predict(pc)
		// The fallback baseline predicts taken, so it mispredicts every
		// not-taken outcome — which is what drives allocation.
		d := true
		if pred.Valid {
			d = pred.Taken
			predicted++
			if pred.Taken == actual {
				correct++
			}
		}
		p.SpecUpdate(pc, d)
		misp := d != actual
		if misp {
			st, ok := p.LookupState(pc)
			if ok {
				// Rewind the wrong shift and apply the outcome, as a
				// repair scheme would.
				st.Count >>= 1
				p.RestoreState(pc, st)
			}
			p.ApplyOutcome(pc, actual)
		}
		p.Retire(pc, actual, misp)
	}
	return predicted, correct
}

func TestLearnsRepeatingPattern(t *testing.T) {
	p := New(Default128())
	pat := []bool{true, true, false, true, false, false}
	pred, correct := train(p, 0x400000, func(i int) bool { return pat[i%len(pat)] }, 4000)
	if pred == 0 {
		t.Fatal("never predicted")
	}
	if frac := float64(correct) / float64(pred); frac < 0.95 {
		t.Fatalf("pattern accuracy %.3f after training", frac)
	}
}

func TestLearnsShortLoopPattern(t *testing.T) {
	p := New(Default128())
	// TTTTTN: period 6 fits in an 11-bit local history.
	pred, correct := train(p, 0x400400, func(i int) bool { return i%6 != 5 }, 6000)
	if pred == 0 {
		t.Fatal("never predicted")
	}
	if frac := float64(correct) / float64(pred); frac < 0.95 {
		t.Fatalf("loop accuracy %.3f", frac)
	}
}

func TestCannotLearnLongLoop(t *testing.T) {
	// Period 40 > 11 history bits: mid-loop patterns are all-taken and
	// indistinguishable, so exits stay unpredictable — the reason loop
	// predictors beat generic local predictors on long loops (paper §1).
	p := New(Default128())
	exitsPredictedExit := 0
	train(p, 0x400800, func(i int) bool { return i%40 != 39 }, 4000)
	for v := 0; v < 40; v++ {
		pr := p.Predict(0x400800)
		actual := v != 39
		if pr.Valid && !pr.Taken && !actual {
			exitsPredictedExit++
		}
		p.SpecUpdate(0x400800, actual)
		p.Retire(0x400800, actual, false)
	}
	if exitsPredictedExit != 0 {
		t.Fatal("an 11-bit pattern cannot see a period-40 exit coming")
	}
}

func TestWarmupGatesPredictions(t *testing.T) {
	p := New(Default128())
	p.Retire(0x400000, true, true) // allocate
	if pr := p.Predict(0x400000); pr.Valid {
		t.Fatal("predicted before the history warmed up")
	}
}

func TestSpecUpdateShiftsPattern(t *testing.T) {
	p := New(Default128())
	pc := uint64(0x400000)
	train(p, pc, func(i int) bool { return i%2 == 0 }, 100)
	st, ok := p.LookupState(pc)
	if !ok {
		t.Fatal("no state")
	}
	p.SpecUpdate(pc, true)
	st2, _ := p.LookupState(pc)
	want := (st.Count<<1 | 1) & 0x7ff
	if st2.Count != want {
		t.Fatalf("pattern %011b after shift, want %011b", st2.Count, want)
	}
}

func TestRestoreStateRoundTrip(t *testing.T) {
	p := New(Default128())
	pc := uint64(0x400000)
	train(p, pc, func(i int) bool { return i%3 != 0 }, 200)
	st, _ := p.LookupState(pc)
	for i := 0; i < 7; i++ {
		p.SpecUpdate(pc, i%2 == 0)
	}
	p.RestoreState(pc, st)
	if got, _ := p.LookupState(pc); got != st {
		t.Fatalf("restore mismatch: %+v vs %+v", got, st)
	}
}

func TestSnapshotRestoreProperty(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		p := New(Default64())
		s := uint64(seed)
		next := func() uint64 {
			s = s*6364136223846793005 + 1442695040888963407
			return s >> 33
		}
		for i := 0; i < int(ops); i++ {
			pc := uint64(0x400000 + (next()%24)*0x400)
			p.Retire(pc, next()%2 == 0, true)
			p.SpecUpdate(pc, next()%2 == 0)
		}
		snap := p.SnapshotBHT(nil)
		for i := 0; i < int(ops); i++ {
			pc := uint64(0x400000 + (next()%24)*0x400)
			p.SpecUpdate(pc, next()%2 == 0)
		}
		p.RestoreBHT(snap)
		return p.DiffBHT(snap) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRepairBits(t *testing.T) {
	p := New(Default128())
	pc := uint64(0x400000)
	train(p, pc, func(i int) bool { return true }, 50)
	p.RepairStart()
	if !p.RepairBitSet(pc) {
		t.Fatal("bit should arm on RepairStart")
	}
	p.RestoreState(pc, loop.State{Count: 3, Valid: true})
	if p.RepairBitSet(pc) {
		t.Fatal("bit should clear on the first repair write")
	}
}

func TestWorksWithRepairSchemes(t *testing.T) {
	// The paper's claim: the repair machinery is predictor-agnostic.
	// Covered end-to-end in internal/repair and the harness; here we only
	// verify the interface contract is complete.
	var _ loop.LocalPredictor = New(Default128())
}

func TestPenalizeWeakensCounter(t *testing.T) {
	p := New(Default128())
	pc := uint64(0x400000)
	train(p, pc, func(i int) bool { return true }, 100)
	if !p.PatternConfident(pc) {
		t.Skip("not confident after all-taken training")
	}
	p.PenalizeOverride(pc)
	if p.PatternConfident(pc) {
		t.Fatal("penalty did not desaturate the counter")
	}
}

func TestGeometryValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Entries: 0, Ways: 8, HistBits: 11, CtrBits: 3},
		{Entries: 24, Ways: 8, HistBits: 11, CtrBits: 3},
		{Entries: 64, Ways: 8, HistBits: 1, CtrBits: 3},
		{Entries: 64, Ways: 8, HistBits: 11, CtrBits: 9},
	} {
		func() {
			defer func() { recover() }()
			New(cfg)
			t.Fatalf("config %+v accepted", cfg)
		}()
	}
}

func TestStorageBudget(t *testing.T) {
	p := New(Default128())
	if kb := float64(p.StorageBits()) / 8192; kb < 0.5 || kb > 3 {
		t.Fatalf("storage %.2fKB out of the sub-8KB class", kb)
	}
	if p.Entries() != 128 {
		t.Fatal("Entries wrong")
	}
}
