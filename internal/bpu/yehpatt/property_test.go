package yehpatt

import (
	"math/rand"
	"testing"

	"localbp/internal/bpu/loop"
)

// applyRandomOp drives one random LocalPredictor operation, mirroring the
// loop package's fuzz decoding so both predictors face the same op mix.
func applyRandomOp(p *Predictor, rng *rand.Rand) {
	pc := 0x400000 + uint64(rng.Intn(16))*64
	taken := rng.Intn(2) == 0
	switch rng.Intn(8) {
	case 0:
		p.Predict(pc)
	case 1:
		p.PredictWithOffset(pc, uint16(rng.Intn(4)))
	case 2:
		p.SpecUpdate(pc, taken)
	case 3:
		p.ApplyOutcome(pc, taken)
	case 4:
		if st, ok := p.LookupState(pc); ok {
			p.RestoreState(pc, st)
		}
	case 5:
		p.Retire(pc, taken, rng.Intn(2) == 0)
	case 6:
		p.Invalidate(pc)
	case 7:
		p.RepairStart()
		p.RepairBitSet(pc)
	}
}

// TestYehPattSnapshotRoundTripProperty asserts the whole-table
// snapshot/restore contract for the generic local predictor: after
// RestoreBHT(snap), DiffBHT(snap) is zero under any op sequence. This is the
// same property the repair schemes rely on when they treat the Yeh-Patt
// pattern as opaque checkpointed state (the paper's extensibility claim).
func TestYehPattSnapshotRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		p := New(Default128())
		for i := 0; i < rng.Intn(300); i++ {
			applyRandomOp(p, rng)
		}
		snap := p.SnapshotBHT(nil)
		for i := 0; i < 1+rng.Intn(200); i++ {
			applyRandomOp(p, rng)
		}
		p.RestoreBHT(snap)
		if d := p.DiffBHT(snap); d != 0 {
			t.Fatalf("trial %d: %d entries differ after restore", trial, d)
		}
	}
}

// TestYehPattSnapshotGeometryMismatchPanics pins the mismatched-geometry
// panic contract, matching the loop predictor's behaviour.
func TestYehPattSnapshotGeometryMismatchPanics(t *testing.T) {
	p := New(Default128())
	short := make([]loop.FullState, p.Entries()-1)
	for name, fn := range map[string]func(){
		"RestoreBHT": func() { p.RestoreBHT(short) },
		"DiffBHT":    func() { p.DiffBHT(short) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted a mismatched snapshot", name)
				}
			}()
			fn()
		}()
	}
}
