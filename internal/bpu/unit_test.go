package bpu

import (
	"testing"

	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/repair"
)

// play runs one branch through the full unit protocol in order.
func play(u *Unit, seq *uint64, cycle *int64, pc uint64, actual bool) (pred bool) {
	*seq++
	*cycle++
	rec := u.GetRec()
	pred = u.Predict(rec, pc, actual, *seq, false, *cycle)
	u.AllocStage(rec, *cycle)
	u.Resolve(rec, *cycle)
	u.Retire(rec)
	return pred
}

func TestBaselinePredictsLoopPoorly(t *testing.T) {
	// A diluted long loop: baseline TAGE misses exits; the unit with a
	// perfect-repair loop predictor learns them.
	runUnit := func(u *Unit) (exitMiss, exits int) {
		var seq uint64
		var cycle int64
		r := uint64(12345)
		iter := 0
		for i := 0; i < 120_000; i++ {
			var pc uint64
			var actual bool
			if i%2 == 0 {
				r = r*6364136223846793005 + 1442695040888963407
				pc, actual = 0x9000, r>>40&1 == 1
			} else {
				iter++
				pc, actual = 0x400000, iter%25 != 0
			}
			pred := play(u, &seq, &cycle, pc, actual)
			if pc == 0x400000 && !actual && i > 60_000 {
				exits++
				if pred != actual {
					exitMiss++
				}
			}
		}
		return exitMiss, exits
	}

	baseMiss, baseExits := runUnit(NewUnit(tage.KB8(), nil))
	loopMiss, loopExits := runUnit(NewUnit(tage.KB8(), repair.NewPerfect(loop.Loop128())))
	if baseExits == 0 || loopExits == 0 {
		t.Fatal("no exits measured")
	}
	baseRate := float64(baseMiss) / float64(baseExits)
	loopRate := float64(loopMiss) / float64(loopExits)
	if baseRate < 0.5 {
		t.Fatalf("baseline predicted diluted exits too well (%.2f): no opportunity", baseRate)
	}
	if loopRate > baseRate/3 {
		t.Fatalf("loop predictor did not capture exits: %.2f vs baseline %.2f", loopRate, baseRate)
	}
}

func TestChooserDisablesBrokenPredictor(t *testing.T) {
	// With no repair and constant flush-free corruption the chooser must
	// clamp overrides rather than bleed mispredictions forever.
	u := NewUnit(tage.KB8(), repair.NewNone(loop.Loop128()))
	var seq uint64
	var cycle int64
	// Train a clean loop.
	iter := 0
	for i := 0; i < 40_000; i++ {
		iter++
		play(u, &seq, &cycle, 0x400000, iter%12 != 0)
	}
	// Now corrupt the BHT before each exit by faking wrong-path updates.
	wrong := 0
	for i := 0; i < 10_000; i++ {
		iter++
		actual := iter%12 != 0
		// Pollute: a speculative update that never retires.
		rec := u.GetRec()
		seq++
		cycle++
		u.Predict(rec, 0x400000, true, seq, true, cycle)
		u.Squash(rec)
		if pred := play(u, &seq, &cycle, 0x400000, actual); pred != actual {
			wrong++
		}
	}
	if frac := float64(wrong) / 10_000; frac > 0.25 {
		t.Fatalf("chooser let a corrupted predictor mispredict %.0f%% of the time", 100*frac)
	}
}

func TestOracleCoversOnlyPeriodicPCs(t *testing.T) {
	u := NewUnit(tage.KB8(), repair.NewPerfect(loop.Loop128()))
	u.Oracle = true
	var seq uint64
	var cycle int64
	// Train a periodic branch; the oracle must eventually predict its
	// exits perfectly.
	iter, miss, exits := 0, 0, 0
	for i := 0; i < 60_000; i++ {
		iter++
		actual := iter%20 != 0
		pred := play(u, &seq, &cycle, 0x400000, actual)
		if !actual && i > 30_000 {
			exits++
			if pred != actual {
				miss++
			}
		}
	}
	if exits == 0 || miss > 0 {
		t.Fatalf("oracle missed %d/%d exits of a periodic branch", miss, exits)
	}
}

func TestRecPooling(t *testing.T) {
	u := NewUnit(tage.KB8(), nil)
	r1 := u.GetRec()
	u.PutRec(r1)
	r2 := u.GetRec()
	if r1 != r2 {
		t.Fatal("pool did not recycle the record")
	}
	if r2.Ctx.OBQID != -1 || r2.Squashed || r2.InFlight {
		t.Fatalf("recycled record not reset: %+v", r2)
	}
}

func TestSquashReleasesWhenNotInFlight(t *testing.T) {
	u := NewUnit(tage.KB8(), repair.NewPerfect(loop.Loop128()))
	rec := u.GetRec()
	u.Predict(rec, 0x100, true, 1, false, 1)
	u.Squash(rec) // not InFlight: goes back to the pool
	if got := u.GetRec(); got != rec {
		t.Fatal("squashed record not pooled")
	}
}

func TestSquashDefersWhenInFlight(t *testing.T) {
	u := NewUnit(tage.KB8(), nil)
	rec := u.GetRec()
	u.Predict(rec, 0x100, true, 1, false, 1)
	rec.InFlight = true
	u.Squash(rec)
	if got := u.GetRec(); got == rec {
		t.Fatal("in-flight record recycled prematurely")
	}
	if !rec.Squashed {
		t.Fatal("squash flag not set")
	}
}

func TestHistoryRestoreOnMispredict(t *testing.T) {
	// After a mispredicted branch resolves, the speculative history must
	// equal "checkpoint + actual outcome": a following identical sequence
	// must index the same TAGE entries. This is validated indirectly: a
	// deterministic alternating branch must stay learnable despite
	// interleaved mispredictions of a random branch.
	u := NewUnit(tage.KB8(), nil)
	var seq uint64
	var cycle int64
	r := uint64(777)
	miss, total := 0, 0
	for i := 0; i < 60_000; i++ {
		if i%3 == 0 {
			r = r*6364136223846793005 + 1442695040888963407
			play(u, &seq, &cycle, 0x5000, r>>33&1 == 1)
			continue
		}
		actual := (i/3)%2 == 0
		pred := play(u, &seq, &cycle, 0x6000, actual)
		if i > 30_000 {
			total++
			if pred != actual {
				miss++
			}
		}
	}
	if frac := float64(miss) / float64(total); frac > 0.10 {
		t.Fatalf("alternating branch misprediction rate %.3f; history repair broken?", frac)
	}
}

func TestOverrideStats(t *testing.T) {
	u := NewUnit(tage.KB8(), repair.NewPerfect(loop.Loop128()))
	var seq uint64
	var cycle int64
	// Dilute the history so TAGE cannot learn the exits itself; the loop
	// predictor then has overrides to make.
	r := uint64(99)
	iter := 0
	for i := 0; i < 120_000; i++ {
		if i%2 == 0 {
			r = r*6364136223846793005 + 1442695040888963407
			play(u, &seq, &cycle, 0x9000, r>>40&1 == 1)
			continue
		}
		iter++
		play(u, &seq, &cycle, 0x400000, iter%25 != 0)
	}
	ov, ovok := u.OverrideStats()
	if ov == 0 {
		t.Fatal("trained loop predictor never overrode TAGE")
	}
	if ovok == 0 || ovok > ov {
		t.Fatalf("override accounting broken: %d/%d", ovok, ov)
	}
}
