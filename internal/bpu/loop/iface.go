package loop

// LocalPredictor is the surface a local predictor must expose for the repair
// schemes of internal/repair to manage its speculative state. The paper's
// techniques are defined over exactly this contract (§1: "our techniques can
// be directly extended to any local predictor design — the difference is
// only in the state saved and restored"): CBPw-Loop stores an iteration
// counter in State.Count, a generic two-level (Yeh-Patt) predictor stores a
// direction-history bit pattern in the same field.
type LocalPredictor interface {
	// Predict returns the predictor's (confidence-gated) opinion for pc.
	Predict(pc uint64) Prediction
	// PredictWithOffset predicts with the tracked state advanced by
	// `offset` in-flight instances (update-at-retire integration).
	// Predictors whose state cannot be advanced without knowing the
	// in-flight directions may ignore the offset.
	PredictWithOffset(pc uint64, offset uint16) Prediction

	// LookupState returns pc's current speculative state.
	LookupState(pc uint64) (State, bool)
	// SpecUpdate advances pc's state with the final predicted direction,
	// reporting whether a new entry was allocated.
	SpecUpdate(pc uint64, d bool) (allocated bool)
	// RestoreState writes a checkpointed state back (repair write).
	RestoreState(pc uint64, st State)
	// ApplyOutcome applies a resolved branch outcome to pc's state.
	ApplyOutcome(pc uint64, taken bool)
	// Invalidate marks pc's state untrustworthy without releasing it.
	Invalidate(pc uint64)
	// InvalidateAll marks every tracked state untrustworthy.
	InvalidateAll()

	// Retire trains the non-speculative level with the architectural
	// outcome (and allocates on final mispredictions).
	Retire(pc uint64, taken, finalMispredicted bool)

	// PatternInfo exposes the learned non-speculative pattern for pc
	// (zero value when untracked or when the notion doesn't apply).
	PatternInfo(pc uint64) PTInfo
	// PatternConfident reports whether pc's pattern is override-worthy.
	PatternConfident(pc uint64) bool
	// PenalizeOverride lowers pc's confidence after a wrong override.
	PenalizeOverride(pc uint64)

	// Forward-walk repair bits (paper §3.1).
	RepairStart()
	RepairBitSet(pc uint64) bool

	// Whole-table snapshots (perfect repair, snapshot queue).
	SnapshotBHT(dst []FullState) []FullState
	RestoreBHT(snap []FullState) int
	DiffBHT(snap []FullState) int

	// Entries returns the speculative-table capacity; the storage methods
	// feed Table 3.
	Entries() int
	StorageBits() int
	BHTStorageBits() int
}

// Compile-time check: CBPw-Loop satisfies the contract.
var _ LocalPredictor = (*Predictor)(nil)

// PatternInfo implements LocalPredictor by exposing the PT entry.
func (p *Predictor) PatternInfo(pc uint64) PTInfo { return p.pt.Info(pc) }

// PatternConfident implements LocalPredictor.
func (p *Predictor) PatternConfident(pc uint64) bool { return p.pt.Confident(pc) }

// PenalizeOverride implements LocalPredictor.
func (p *Predictor) PenalizeOverride(pc uint64) { p.pt.Penalize(pc) }
