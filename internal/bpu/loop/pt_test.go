package loop

import "testing"

func TestPTAllocSetsRareDirection(t *testing.T) {
	pt := NewPatternTable(128, 8, 6, 2047)
	// Allocation happens on a misprediction; the mispredicted outcome is
	// the rare (exit) direction, so dir = !taken.
	pt.Train(0x400000, false, true) // mispredicted not-taken exit
	info := pt.Info(0x400000)
	if !info.Valid || !info.Dir {
		t.Fatalf("alloc after mispredicted N should set dir=T: %+v", info)
	}
}

func TestPTPeriodLearning(t *testing.T) {
	pt := NewPatternTable(128, 8, 6, 2047)
	pc := uint64(0x400000)
	pt.Train(pc, false, true) // allocate, dir=T
	for v := 0; v < 9; v++ {
		for i := 0; i < 14; i++ {
			pt.Train(pc, i < 13, false)
		}
	}
	info := pt.Info(pc)
	if info.Period != 14 {
		t.Fatalf("period %d, want 14", info.Period)
	}
	if info.Conf < 6 {
		t.Fatalf("confidence %d after 9 clean visits", info.Conf)
	}
	if !pt.Confident(pc) {
		t.Fatal("Confident() disagrees with Info")
	}
}

func TestPTConfidenceDropsOnPeriodChange(t *testing.T) {
	pt := NewPatternTable(128, 8, 6, 2047)
	pc := uint64(0x400000)
	pt.Train(pc, false, true)
	for v := 0; v < 10; v++ {
		for i := 0; i < 10; i++ {
			pt.Train(pc, i < 9, false)
		}
	}
	before := pt.Info(pc).Conf
	// One visit with a different trip count.
	for i := 0; i < 13; i++ {
		pt.Train(pc, i < 12, false)
	}
	after := pt.Info(pc).Conf
	if after >= before {
		t.Fatalf("period change did not drop confidence: %d -> %d", before, after)
	}
	if got := pt.Info(pc).Period; got != 13 {
		t.Fatalf("period not retrained: %d", got)
	}
}

func TestPTVictimPrefersLowConfidence(t *testing.T) {
	pt := NewPatternTable(8, 8, 6, 2047) // single set
	// Fill the set with 7 confident entries and one unconfident one.
	pcs := make([]uint64, 0, 8)
	for pc := uint64(0x400000); len(pcs) < 8; pc += 0x400 {
		if pt.set(pc) == pt.set(0x400000) {
			pcs = append(pcs, pc)
		}
	}
	for i, pc := range pcs {
		pt.Train(pc, false, true)
		if i == 0 {
			continue // leave pcs[0] unconfident
		}
		for v := 0; v < 9; v++ {
			for j := 0; j < 6; j++ {
				pt.Train(pc, j < 5, false)
			}
		}
	}
	// A newcomer must evict the unconfident entry, not a trained one.
	newPC := pcs[7] + 0x400*8 // same set, different tag
	for pt.set(newPC) != pt.set(pcs[0]) {
		newPC += 0x400
	}
	pt.Train(newPC, false, true)
	if pt.Info(newPC).Valid && pt.Info(pcs[1]).Valid == false {
		t.Fatal("a trained entry was evicted while an unconfident one survived")
	}
}

func TestPTConfidentVictimResists(t *testing.T) {
	pt := NewPatternTable(8, 8, 6, 2047)
	// Make every way confident and aged.
	pcs := make([]uint64, 0, 8)
	for pc := uint64(0x400000); len(pcs) < 8; pc += 0x400 {
		if pt.set(pc) == pt.set(0x400000) {
			pcs = append(pcs, pc)
		}
	}
	for _, pc := range pcs {
		pt.Train(pc, false, true)
		for v := 0; v < 12; v++ {
			for j := 0; j < 5; j++ {
				pt.Train(pc, j < 4, false)
			}
		}
	}
	var newPC uint64
	for newPC = pcs[7] + 0x400; pt.set(newPC) != pt.set(pcs[0]); newPC += 0x400 {
	}
	pt.Train(newPC, false, true) // first attempt only decays ages
	if pt.Info(newPC).Valid {
		t.Fatal("a confident aged set was displaced on the first attempt")
	}
}

func TestPTInfoMiss(t *testing.T) {
	pt := NewPatternTable(64, 8, 6, 2047)
	if pt.Info(0x123456).Valid {
		t.Fatal("Info on an empty PT returned a valid entry")
	}
	if pt.Confident(0x123456) {
		t.Fatal("Confident on an empty PT")
	}
}

func TestPTNoAllocWithoutMispredict(t *testing.T) {
	pt := NewPatternTable(64, 8, 6, 2047)
	pt.Train(0x400000, true, false) // correct prediction: no allocation
	if pt.Info(0x400000).Valid {
		t.Fatal("entry allocated without a misprediction")
	}
	if pt.Allocs() != 0 {
		t.Fatal("alloc counter advanced")
	}
}

func TestPTGeometryValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 8}, {65, 8}, {24, 8}} {
		func() {
			defer func() { recover() }()
			NewPatternTable(bad[0], bad[1], 6, 2047)
			t.Fatalf("geometry %v accepted", bad)
		}()
	}
}

func TestPTStorage(t *testing.T) {
	small := NewPatternTable(64, 8, 6, 2047).StorageBits()
	big := NewPatternTable(256, 8, 6, 2047).StorageBits()
	if big != 4*small {
		t.Fatalf("storage not proportional: %d vs %d", small, big)
	}
	if NewPatternTable(64, 8, 6, 2047).Entries() != 64 {
		t.Fatal("Entries() wrong")
	}
}
