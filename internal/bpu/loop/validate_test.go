package loop

import (
	"strings"
	"testing"
)

func TestConfigValidateAccepts(t *testing.T) {
	for _, cfg := range []Config{Loop64(), Loop128(), Loop256()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", cfg.Name, err)
		}
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"zero entries", func(c *Config) { c.Entries = 0 }, "Entries"},
		{"zero ways", func(c *Config) { c.Ways = 0 }, "Ways"},
		{"entries not multiple of ways", func(c *Config) { c.Entries = 130 }, "Entries"},
		{"non-pow2 sets", func(c *Config) { c.Entries = 120; c.Ways = 8 }, "Entries"},
		{"pt not multiple of ways", func(c *Config) { c.PTEntries = 130 }, "PTEntries"},
		{"overflowing threshold", func(c *Config) { c.ConfThresh = confMax + 1 }, "ConfThresh"},
		{"counter too wide", func(c *Config) { c.CounterMax = 4096 }, "CounterMax"},
	}
	for _, tc := range cases {
		cfg := Loop128()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.field) {
			t.Errorf("%s: error does not name %s: %v", tc.name, tc.field, err)
		}
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted an invalid config")
		}
	}()
	New(Config{Entries: 100, Ways: 8})
}
