package loop

import (
	"testing"
	"testing/quick"
)

// trainLoop drives pc through `visits` complete loop visits of period P
// (P-1 taken then one not-taken), simulating a baseline that mispredicts
// every exit (so PT allocation and BHT retire-sync both fire).
func trainLoop(p *Predictor, pc uint64, period, visits int) {
	for v := 0; v < visits; v++ {
		for i := 0; i < period; i++ {
			taken := i < period-1
			pred := p.Predict(pc)
			d := taken // baseline predicts the common direction (taken)
			if pred.Valid {
				d = pred.Taken
			} else if !taken {
				d = true // baseline mispredicts the exit
			}
			p.SpecUpdate(pc, d)
			misp := d != taken
			if misp {
				// Resolve-time repair: restore semantics are exercised
				// by the repair package; here apply the outcome.
				p.ApplyOutcome(pc, taken)
			}
			p.Retire(pc, taken, misp)
		}
	}
}

func TestLearnsBackwardLoop(t *testing.T) {
	p := New(Loop128())
	pc := uint64(0x400000)
	trainLoop(p, pc, 12, 10)
	info := p.PT().Info(pc)
	if !info.Valid || info.Period != 12 || !info.Dir {
		t.Fatalf("PT did not learn TTTN period 12: %+v", info)
	}
	if info.Conf < p.Config().ConfThresh {
		t.Fatalf("confidence %d below threshold", info.Conf)
	}
	// After training, the predictor must call every iteration correctly.
	correct, total := 0, 0
	for v := 0; v < 5; v++ {
		for i := 0; i < 12; i++ {
			taken := i < 11
			pred := p.Predict(pc)
			if !pred.Valid {
				t.Fatalf("no prediction at visit %d iter %d", v, i)
			}
			total++
			if pred.Taken == taken {
				correct++
			}
			p.SpecUpdate(pc, pred.Taken)
		}
	}
	if correct != total {
		t.Fatalf("trained loop predicted %d/%d", correct, total)
	}
}

func TestLearnsForwardConditional(t *testing.T) {
	// NNN...T with period 8: dominant direction not-taken.
	p := New(Loop128())
	pc := uint64(0x400400)
	for v := 0; v < 12; v++ {
		for i := 0; i < 8; i++ {
			taken := i == 7
			pred := p.Predict(pc)
			d := !taken
			if pred.Valid {
				d = pred.Taken
			} else if taken {
				d = false
			}
			p.SpecUpdate(pc, d)
			misp := d != taken
			if misp {
				p.ApplyOutcome(pc, taken)
			}
			p.Retire(pc, taken, misp)
		}
	}
	info := p.PT().Info(pc)
	if !info.Valid || info.Period != 8 || info.Dir {
		t.Fatalf("PT did not learn NNNT period 8: %+v", info)
	}
	pred := p.Predict(pc)
	if !pred.Valid {
		t.Fatal("no prediction after training")
	}
}

func TestRepolarization(t *testing.T) {
	// Allocate the PT entry with the wrong dominant direction (as happens
	// when the baseline mispredicts a taken iteration), then train on a
	// TTTN loop: the entry must re-polarize and still learn.
	p := New(Loop128())
	pc := uint64(0x400800)
	p.PT().Train(pc, true, true) // alloc with dir = !taken = false (wrong)
	trainLoop(p, pc, 10, 12)
	info := p.PT().Info(pc)
	if !info.Dir || info.Period != 10 {
		t.Fatalf("entry did not re-polarize: %+v", info)
	}
}

func TestSpecUpdateCounts(t *testing.T) {
	p := New(Loop128())
	pc := uint64(0x400000)
	trainLoop(p, pc, 20, 8)
	st, ok := p.LookupState(pc)
	if !ok {
		t.Fatal("no BHT state after training")
	}
	base := st.Count
	p.SpecUpdate(pc, true)
	st2, _ := p.LookupState(pc)
	if st2.Count != base+1 {
		t.Fatalf("count %d after update, want %d", st2.Count, base+1)
	}
	p.SpecUpdate(pc, false) // flip resets
	st3, _ := p.LookupState(pc)
	if st3.Count != 0 || !st3.Valid {
		t.Fatalf("flip should reset count and validate: %+v", st3)
	}
}

func TestRestoreState(t *testing.T) {
	p := New(Loop128())
	pc := uint64(0x400000)
	trainLoop(p, pc, 20, 8)
	st, _ := p.LookupState(pc)
	for i := 0; i < 5; i++ {
		p.SpecUpdate(pc, true) // corrupt with speculative updates
	}
	p.RestoreState(pc, st)
	got, _ := p.LookupState(pc)
	if got != st {
		t.Fatalf("restore mismatch: got %+v want %+v", got, st)
	}
}

func TestRestoreStateReallocatesEvicted(t *testing.T) {
	p := New(Loop64())
	pc := uint64(0x400000)
	st := State{Count: 7, Dir: true, Valid: true}
	p.RestoreState(pc, st) // PC never seen: must allocate
	got, ok := p.LookupState(pc)
	if !ok || got != st {
		t.Fatalf("restore into empty BHT failed: %+v ok=%v", got, ok)
	}
}

func TestInvalidateAndFlipRevalidation(t *testing.T) {
	p := New(Loop128())
	pc := uint64(0x400000)
	trainLoop(p, pc, 10, 10)
	p.Invalidate(pc)
	if pr := p.Predict(pc); pr.Valid {
		t.Fatal("invalidated entry still predicts")
	}
	p.SpecUpdate(pc, false) // direction flip re-synchronizes
	st, _ := p.LookupState(pc)
	if !st.Valid || st.Count != 0 {
		t.Fatalf("flip did not revalidate: %+v", st)
	}
}

func TestPredictGatedOnConfidence(t *testing.T) {
	p := New(Loop128())
	pc := uint64(0x400000)
	trainLoop(p, pc, 9, 2) // too few visits to build confidence
	if info := p.PT().Info(pc); info.Conf >= p.Config().ConfThresh {
		t.Skip("confidence built faster than expected")
	}
	if pr := p.Predict(pc); pr.Valid {
		t.Fatal("low-confidence entry must not predict")
	}
}

func TestPredictWithOffset(t *testing.T) {
	p := New(Loop128())
	pc := uint64(0x400000)
	trainLoop(p, pc, 10, 12)
	// Reset the counter to a known point: restore count=5.
	p.RestoreState(pc, State{Count: 5, Dir: true, Valid: true})
	if pr := p.PredictWithOffset(pc, 0); !pr.Valid || !pr.Taken {
		t.Fatalf("count 5/10 should predict taken: %+v", pr)
	}
	if pr := p.PredictWithOffset(pc, 4); !pr.Valid || pr.Taken {
		t.Fatalf("count 5+4 = 9 → exit: %+v", pr)
	}
	// Offset wrapping past the period restarts the run.
	if pr := p.PredictWithOffset(pc, 5); !pr.Valid || !pr.Taken {
		t.Fatalf("count 5+5 wraps to 0 → taken: %+v", pr)
	}
}

func TestPenalize(t *testing.T) {
	p := New(Loop128())
	pc := uint64(0x400000)
	trainLoop(p, pc, 10, 12)
	before := p.PT().Info(pc).Conf
	p.PT().Penalize(pc)
	after := p.PT().Info(pc).Conf
	if after >= before {
		t.Fatalf("Penalize did not lower confidence: %d -> %d", before, after)
	}
}

func TestRepairBits(t *testing.T) {
	p := New(Loop128())
	pc := uint64(0x400000)
	trainLoop(p, pc, 10, 10)
	p.RepairStart()
	if !p.RepairBitSet(pc) {
		t.Fatal("repair bit should be set after RepairStart")
	}
	p.RestoreState(pc, State{Count: 1, Dir: true, Valid: true})
	if p.RepairBitSet(pc) {
		t.Fatal("repair bit should clear after the first write")
	}
	p.RepairStart()
	if !p.RepairBitSet(pc) {
		t.Fatal("a new repair must re-arm the bit")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := New(Loop128())
	for i := 0; i < 20; i++ {
		trainLoop(p, uint64(0x400000+i*0x400), 5+i, 3)
	}
	snap := p.SnapshotBHT(nil)
	if p.DiffBHT(snap) != 0 {
		t.Fatal("fresh snapshot differs from live state")
	}
	// Corrupt, then restore.
	for i := 0; i < 10; i++ {
		p.SpecUpdate(uint64(0x400000+i*0x400), true)
	}
	if p.DiffBHT(snap) == 0 {
		t.Fatal("corruption not visible in diff")
	}
	changed := p.RestoreBHT(snap)
	if changed == 0 {
		t.Fatal("restore reported no writes")
	}
	if p.DiffBHT(snap) != 0 {
		t.Fatal("restore did not reproduce the snapshot")
	}
}

func TestSnapshotRestoreProperty(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		p := New(Loop64())
		r := newTestRand(seed)
		// Random training activity.
		for i := 0; i < int(ops); i++ {
			pc := uint64(0x400000 + (r.next()%24)*0x400)
			p.Retire(pc, r.next()%3 == 0, true)
			p.SpecUpdate(pc, r.next()%2 == 0)
		}
		snap := p.SnapshotBHT(nil)
		for i := 0; i < int(ops); i++ {
			pc := uint64(0x400000 + (r.next()%24)*0x400)
			p.SpecUpdate(pc, r.next()%2 == 0)
			p.Retire(pc, r.next()%3 == 0, true)
		}
		p.RestoreBHT(snap)
		return p.DiffBHT(snap) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

type testRand struct{ s uint64 }

func newTestRand(seed int64) *testRand { return &testRand{uint64(seed)*2654435761 + 1} }
func (t *testRand) next() uint64 {
	t.s = t.s*6364136223846793005 + 1442695040888963407
	return t.s >> 33
}

func TestBHTEviction(t *testing.T) {
	p := New(Loop64()) // 8 sets × 8 ways
	// Train more same-set PCs than ways: older ones must be evicted
	// without corrupting the newer ones.
	var pcs []uint64
	base := uint64(0x400000)
	set0 := p.set(base)
	for pc := base; len(pcs) < 12; pc += 0x400 {
		if p.set(pc) == set0 {
			pcs = append(pcs, pc)
		}
	}
	for _, pc := range pcs {
		trainLoop(p, pc, 6, 10)
	}
	live := 0
	for _, pc := range pcs {
		if _, ok := p.LookupState(pc); ok {
			live++
		}
	}
	if live == 0 || live > 8 {
		t.Fatalf("set holds %d live entries, want 1..8", live)
	}
}

func TestSharedPatternTable(t *testing.T) {
	pt := NewPatternTable(128, 8, 6, 2047)
	a := NewWithPT(Config{Name: "a", Entries: 64, Ways: 8, ConfThresh: 6, CounterMax: 2047}, pt)
	b := NewWithPT(Config{Name: "b", Entries: 64, Ways: 8, ConfThresh: 6, CounterMax: 2047}, pt)
	pc := uint64(0x400000)
	trainLoop(a, pc, 10, 12)
	// b shares the PT, so it should see the learned pattern even though
	// its own BHT has no entry yet.
	if info := b.PT().Info(pc); !info.Valid || info.Period != 10 {
		t.Fatalf("shared PT not visible from second BHT: %+v", info)
	}
}

func TestStorageBudgets(t *testing.T) {
	small := New(Loop64()).StorageBits()
	mid := New(Loop128()).StorageBits()
	big := New(Loop256()).StorageBits()
	if !(small < mid && mid < big) {
		t.Fatalf("storage not monotonic: %d %d %d", small, mid, big)
	}
	// Loop128's total should be in the ~0.8KB class the paper charges.
	if kb := float64(mid) / 8192; kb < 0.4 || kb > 2.0 {
		t.Fatalf("Loop128 storage %.2fKB out of class", kb)
	}
}

func TestGeometryValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Entries: 0, Ways: 8},
		{Entries: 65, Ways: 8},
		{Entries: 24, Ways: 8}, // 3 sets: not a power of two
	} {
		func() {
			defer func() { recover() }()
			New(cfg)
			t.Fatalf("config %+v did not panic", cfg)
		}()
	}
}

func TestStatsAdvance(t *testing.T) {
	p := New(Loop128())
	p.Predict(0x400000)
	pr, _, _ := p.Stats()
	if pr != 1 {
		t.Fatalf("predict counter %d", pr)
	}
	p.NoteOverride()
	_, ov, _ := p.Stats()
	if ov != 1 {
		t.Fatalf("override counter %d", ov)
	}
}
