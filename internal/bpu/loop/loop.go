// Package loop implements CBPw-Loop, the loop predictor of the CBP-2016
// winner (8KB category) redesigned as a conventional two-level predictor per
// §2.3 of the paper: a set-associative Branch History Table (BHT) holding the
// *speculative* current iteration count of each tracked branch, and a Pattern
// Table (PT) holding the learned final iteration count (period), dominant
// direction and confidence.
//
// The predictor covers backward loop branches (TTT...N) and forward
// if-then-else branches (NNN...T): the dominant direction is learned per PC.
//
// Only the BHT is speculative: it is updated with the final chosen prediction
// immediately after predicting (paper §2.4 event 5), so its state must be
// repaired after a misprediction. The PT is trained non-speculatively at
// retirement. All repair policies in internal/repair operate on the
// State/Restore API exposed here.
package loop

import (
	"errors"
	"fmt"
)

// Config sizes a CBPw-Loop predictor. The paper studies 64-, 128- and
// 256-entry configurations, all 8-way set associative (Table 2).
type Config struct {
	Name       string
	Entries    int // BHT entries
	PTEntries  int // PT entries; 0 means same as Entries
	Ways       int
	ConfThresh uint8 // PT confidence needed to override TAGE
	CounterMax uint16
}

// Validate checks the configuration and returns a field-level error for
// every violated constraint (joined), or nil. New and NewWithPT panic on a
// config that fails validation; run Validate first to fail fast with a
// diagnosable error before simulation starts.
func (c Config) Validate() error {
	var errs []error
	bad := func(field string, got any, want string) {
		errs = append(errs, fmt.Errorf("loop.Config.%s: got %v, want %s", field, got, want))
	}
	if c.Ways <= 0 {
		bad("Ways", c.Ways, "> 0")
	}
	if c.Entries <= 0 {
		bad("Entries", c.Entries, "> 0")
	} else if c.Ways > 0 {
		if c.Entries%c.Ways != 0 {
			bad("Entries", c.Entries, fmt.Sprintf("a multiple of Ways (%d)", c.Ways))
		} else if sets := c.Entries / c.Ways; sets&(sets-1) != 0 {
			bad("Entries", c.Entries, fmt.Sprintf("a power-of-two set count (got %d sets)", sets))
		}
	}
	if c.PTEntries < 0 {
		bad("PTEntries", c.PTEntries, ">= 0 (0 = same as Entries)")
	} else if c.PTEntries > 0 && c.Ways > 0 {
		if c.PTEntries%c.Ways != 0 {
			bad("PTEntries", c.PTEntries, fmt.Sprintf("a multiple of Ways (%d)", c.Ways))
		} else if sets := c.PTEntries / c.Ways; sets&(sets-1) != 0 {
			bad("PTEntries", c.PTEntries, fmt.Sprintf("a power-of-two set count (got %d sets)", sets))
		}
	}
	if c.ConfThresh > confMax {
		bad("ConfThresh", c.ConfThresh, fmt.Sprintf("<= %d", confMax))
	}
	if c.CounterMax > 2047 {
		bad("CounterMax", c.CounterMax, "<= 2047 (11-bit iteration counter, 0 = default)")
	}
	return errors.Join(errs...)
}

// Loop64 is the smallest Table 2 configuration.
func Loop64() Config {
	return Config{Name: "CBPw-Loop64", Entries: 64, Ways: 8, ConfThresh: 6, CounterMax: 2047}
}

// Loop128 is the paper's default configuration.
func Loop128() Config {
	return Config{Name: "CBPw-Loop128", Entries: 128, Ways: 8, ConfThresh: 6, CounterMax: 2047}
}

// Loop256 is the largest configuration studied.
func Loop256() Config {
	return Config{Name: "CBPw-Loop256", Entries: 256, Ways: 8, ConfThresh: 6, CounterMax: 2047}
}

const (
	confMax = 7
	ageMax  = 255
)

// bhtEntry is one BHT way: the speculative current iteration count of one
// branch PC. alloc marks the tag as meaningful; valid marks the *count* as
// trustworthy for predictions (the split-BHT and limited-PC designs
// invalidate counts without releasing the entry, and a later direction flip
// re-validates it — paper §3.2/§3.3).
type bhtEntry struct {
	tag   uint16
	count uint16
	dir   bool
	alloc bool
	valid bool
	lru   uint8
}

// State is the speculative BHT state of one PC, as checkpointed by repair
// policies and carried through the pipeline (the paper's 11-bit pattern plus
// valid bit; dir rides along because our counter is direction-explicit).
type State struct {
	Count uint16
	Dir   bool
	Valid bool
}

// Prediction is the loop predictor's output for one branch.
type Prediction struct {
	Taken bool
	// Valid reports whether the predictor has a confident opinion; when
	// false the TAGE prediction stands.
	Valid bool
}

// Predictor is a CBPw-Loop BHT bound to a PatternTable (possibly shared).
type Predictor struct {
	cfg      Config
	sets     int
	setMask  uint64
	tagShift uint
	bht      []bhtEntry
	pt       *PatternTable

	// Forward-walk repair bits: an entry's bit is "set" (awaiting its
	// first repair write) when its stamp differs from the current
	// generation, letting RepairStart mark every entry in O(1).
	repairGen   uint32
	repairStamp []uint32

	statPredict  uint64
	statOverride uint64
	statAllocBHT uint64
}

// New builds a predictor with its own PatternTable.
func New(cfg Config) *Predictor {
	ptEntries := cfg.PTEntries
	if ptEntries == 0 {
		ptEntries = cfg.Entries
	}
	if cfg.CounterMax == 0 {
		cfg.CounterMax = 2047
	}
	pt := NewPatternTable(ptEntries, cfg.Ways, cfg.ConfThresh, cfg.CounterMax)
	return NewWithPT(cfg, pt)
}

// NewWithPT builds a predictor around an existing PatternTable; the
// multi-stage split-BHT design shares one PT between two BHTs.
func NewWithPT(cfg Config, pt *PatternTable) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Entries / cfg.Ways
	if cfg.CounterMax == 0 {
		cfg.CounterMax = 2047
	}
	p := &Predictor{
		cfg:         cfg,
		sets:        sets,
		setMask:     uint64(sets - 1),
		tagShift:    uint(log2(sets)),
		bht:         make([]bhtEntry, cfg.Entries),
		pt:          pt,
		repairGen:   1,
		repairStamp: make([]uint32, cfg.Entries),
	}
	// Establish the LRU rank permutation (0..ways-1) per set.
	for s := 0; s < sets; s++ {
		for w := 0; w < cfg.Ways; w++ {
			p.bht[s*cfg.Ways+w].lru = uint8(w)
		}
	}
	return p
}

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Entries returns the BHT capacity.
func (p *Predictor) Entries() int { return p.cfg.Entries }

// PT returns the bound pattern table.
func (p *Predictor) PT() *PatternTable { return p.pt }

// StorageBits approximates the BHT storage (tag, 11-bit counter, direction,
// valid, repair and LRU bits) plus the bound PT. Callers sharing a PT should
// count it once.
func (p *Predictor) StorageBits() int {
	return p.BHTStorageBits() + p.pt.StorageBits()
}

// BHTStorageBits returns the BHT-only storage budget.
func (p *Predictor) BHTStorageBits() int {
	return p.cfg.Entries * (8 + 11 + 1 + 1 + 1 + 3)
}

// pcHash folds PC bits so that regularly-strided branch addresses spread
// across sets, as hardware index/tag hash functions do.
func pcHash(pc uint64) uint64 {
	v := pc >> 2
	return v ^ (v >> 5) ^ (v >> 11) ^ (v >> 17)
}

func (p *Predictor) set(pc uint64) int { return int(pcHash(pc) & p.setMask) }
func (p *Predictor) tagOf(pc uint64) uint16 {
	return uint16((pcHash(pc)>>p.tagShift)^(pcHash(pc)>>13)) & 0xff
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// bhtLookup returns the index of pc's BHT entry, or -1. Invalidated entries
// keep their tag so a direction flip can re-synchronize them, so the match
// requires alloc, not valid.
func (p *Predictor) bhtLookup(pc uint64) int {
	s, tag := p.set(pc), p.tagOf(pc)
	base := s * p.cfg.Ways
	for w := 0; w < p.cfg.Ways; w++ {
		e := &p.bht[base+w]
		if e.alloc && e.tag == tag {
			return base + w
		}
	}
	return -1
}

// touchLRU promotes the entry at idx to most-recently-used within its set.
func (p *Predictor) touchLRU(idx int) {
	base := idx / p.cfg.Ways * p.cfg.Ways
	old := p.bht[idx].lru
	for w := 0; w < p.cfg.Ways; w++ {
		if e := &p.bht[base+w]; e.lru < old {
			e.lru++
		}
	}
	p.bht[idx].lru = 0
}

// Predict returns the loop predictor's opinion for pc. It does not modify
// any state; callers follow with SpecUpdate using the final chosen direction.
func (p *Predictor) Predict(pc uint64) Prediction {
	p.statPredict++
	pt := p.pt.Info(pc)
	if !pt.Valid || pt.Conf < p.cfg.ConfThresh || pt.Period == 0 {
		return Prediction{}
	}
	i := p.bhtLookup(pc)
	if i < 0 {
		return Prediction{}
	}
	e := &p.bht[i]
	if !e.valid || e.dir != pt.Dir {
		return Prediction{}
	}
	if e.count+1 >= pt.Period {
		return Prediction{Taken: !pt.Dir, Valid: true} // predict the exit
	}
	return Prediction{Taken: pt.Dir, Valid: true}
}

// PredictWithOffset predicts like Predict but advances the tracked count by
// offset speculative instances. The update-at-retire scheme uses it: the BHT
// count lags by the branch's in-flight instances, which a per-PC in-flight
// counter measures exactly (paper §6.2).
func (p *Predictor) PredictWithOffset(pc uint64, offset uint16) Prediction {
	p.statPredict++
	pt := p.pt.Info(pc)
	if !pt.Valid || pt.Conf < p.cfg.ConfThresh || pt.Period == 0 {
		return Prediction{}
	}
	i := p.bhtLookup(pc)
	if i < 0 {
		return Prediction{}
	}
	e := &p.bht[i]
	if !e.valid || e.dir != pt.Dir {
		return Prediction{}
	}
	c := e.count + offset
	if c >= pt.Period {
		// The exit already passed in flight; the in-flight instances
		// restart the run.
		c -= pt.Period
	}
	if c+1 >= pt.Period {
		return Prediction{Taken: !pt.Dir, Valid: true}
	}
	return Prediction{Taken: pt.Dir, Valid: true}
}

// LookupState returns the current speculative BHT state of pc; ok is false
// when the PC is not tracked.
func (p *Predictor) LookupState(pc uint64) (State, bool) {
	i := p.bhtLookup(pc)
	if i < 0 {
		return State{}, false
	}
	e := &p.bht[i]
	return State{Count: e.count, Dir: e.dir, Valid: e.valid}, true
}

// SpecUpdate advances pc's BHT counter with the final chosen direction d
// (paper §2.4 event 5) and reports whether a new BHT entry was allocated.
// A missing entry is allocated only at a direction flip (d != PT dominant
// direction), where the restart count of zero is guaranteed correct.
func (p *Predictor) SpecUpdate(pc uint64, d bool) (allocated bool) {
	i := p.bhtLookup(pc)
	if i < 0 {
		pt := p.pt.Info(pc)
		if !pt.Valid || d == pt.Dir {
			return false
		}
		i = p.bhtVictim(pc)
		p.bht[i] = bhtEntry{tag: p.tagOf(pc), dir: pt.Dir, alloc: true, valid: true}
		p.statAllocBHT++
		p.repairStamp[i] = p.repairGen
		p.touchLRU(i)
		return true
	}
	e := &p.bht[i]
	if d == e.dir {
		if e.count < p.cfg.CounterMax {
			e.count++
		}
	} else {
		e.count = 0
		e.valid = true // a flip re-synchronizes a previously invalidated entry
	}
	p.touchLRU(i)
	return false
}

func (p *Predictor) bhtVictim(pc uint64) int {
	base := p.set(pc) * p.cfg.Ways
	victim := base
	for w := 0; w < p.cfg.Ways; w++ {
		e := &p.bht[base+w]
		if !e.alloc {
			return base + w
		}
		if e.lru > p.bht[victim].lru {
			victim = base + w
		}
	}
	return victim
}

// RestoreState writes a checkpointed state back into the BHT (repair write).
// If the PC's entry was evicted since the checkpoint, it is re-allocated so
// the repair is not silently dropped.
func (p *Predictor) RestoreState(pc uint64, st State) {
	i := p.bhtLookup(pc)
	if i < 0 {
		i = p.bhtVictim(pc)
		p.bht[i] = bhtEntry{tag: p.tagOf(pc), alloc: true, lru: p.bht[i].lru}
	}
	e := &p.bht[i]
	e.count = st.Count
	e.dir = st.Dir
	e.valid = st.Valid
	p.repairStamp[i] = p.repairGen
}

// ApplyOutcome applies a resolved branch outcome to pc's BHT state: the
// post-repair step that moves the entry from "state before the mispredicted
// branch" to "state after its actual execution".
func (p *Predictor) ApplyOutcome(pc uint64, taken bool) {
	i := p.bhtLookup(pc)
	if i < 0 {
		return
	}
	e := &p.bht[i]
	if taken == e.dir {
		if e.count < p.cfg.CounterMax {
			e.count++
		}
	} else {
		e.count = 0
		e.valid = true
	}
	p.repairStamp[i] = p.repairGen
}

// Invalidate marks pc's count untrustworthy without releasing the entry
// (limited-PC "mark invalid" variant and split-BHT repair window, §3.2/§3.3).
func (p *Predictor) Invalidate(pc uint64) {
	if i := p.bhtLookup(pc); i >= 0 {
		p.bht[i].valid = false
	}
}

// InvalidateAll marks every BHT count untrustworthy.
func (p *Predictor) InvalidateAll() {
	for i := range p.bht {
		p.bht[i].valid = false
	}
}

// Retire trains the PT with the architectural outcome of pc (paper §2.4
// event 6: the PT is updated only after the branch completes).
// finalMispredicted drives allocation — of the PT entry, and of the BHT
// entry itself: a mispredicted flip (exit) is the one moment the current
// iteration count is known exactly (zero), so the BHT entry starts in sync.
func (p *Predictor) Retire(pc uint64, taken, finalMispredicted bool) {
	p.pt.Train(pc, taken, finalMispredicted)
	p.RetireSync(pc, taken, finalMispredicted)
}

// RetireSync performs the BHT-side retire work without training the PT:
// the multi-stage design shares one PT between two BHTs and must not train
// it twice (paper §3.2.1).
func (p *Predictor) RetireSync(pc uint64, taken, finalMispredicted bool) {
	if !finalMispredicted {
		return
	}
	pt := p.pt.Info(pc)
	if !pt.Valid || taken == pt.Dir {
		return
	}
	if i := p.bhtLookup(pc); i >= 0 {
		// Re-synchronize an existing entry that is invalid or whose
		// direction predates a PT re-polarization: the flip just
		// happened, so the count restarts at zero. In-sync valid
		// entries are left alone — they were already repaired at
		// resolve time and may have advanced since.
		e := &p.bht[i]
		if e.dir != pt.Dir || !e.valid {
			e.dir = pt.Dir
			e.count = 0
			e.valid = true
		}
		return
	}
	i := p.bhtVictim(pc)
	p.bht[i] = bhtEntry{tag: p.tagOf(pc), dir: pt.Dir, alloc: true, valid: true, lru: p.bht[i].lru}
	p.statAllocBHT++
	p.repairStamp[i] = p.repairGen
	p.touchLRU(i)
}

// --- repair-bit machinery (forward walk, §3.1) ---

// RepairStart sets the repair bit on every BHT entry (O(1) via generation).
func (p *Predictor) RepairStart() { p.repairGen++ }

// RepairBitSet reports whether pc's entry still has its repair bit set,
// i.e. has not yet been written during the current repair.
func (p *Predictor) RepairBitSet(pc uint64) bool {
	i := p.bhtLookup(pc)
	if i < 0 {
		return true // an untracked PC has never been repaired this walk
	}
	return p.repairStamp[i] != p.repairGen
}

// RepairedEntries returns the PCs-worth of entries written during the
// current repair generation; the split-BHT design uses it to copy repaired
// state from BHT-Defer into BHT-TAGE. The returned count is the number of
// writes a second-stage repair needs.
func (p *Predictor) RepairedEntries(fn func(State)) int {
	n := 0
	for i := range p.bht {
		if p.repairStamp[i] == p.repairGen && p.bht[i].alloc {
			n++
			if fn != nil {
				e := &p.bht[i]
				fn(State{Count: e.count, Dir: e.dir, Valid: e.valid})
			}
		}
	}
	return n
}

// Stats returns predictor activity counters.
func (p *Predictor) Stats() (predicts, overrides, allocBHT uint64) {
	return p.statPredict, p.statOverride, p.statAllocBHT
}

// NoteOverride records that the loop prediction overrode TAGE (metrics).
func (p *Predictor) NoteOverride() { p.statOverride++ }

// FullState is the complete image of one BHT entry, including the tag and
// allocation bit, for whole-table snapshots (perfect repair and the snapshot
// queue). OBQ-style checkpoints use the narrower State: they restore a known
// PC into a live entry, while a whole-table restore must also undo
// allocations and evictions that happened after the snapshot.
type FullState struct {
	Tag   uint16
	Count uint16
	LRU   uint8
	Dir   bool
	Alloc bool
	Valid bool
}

// SnapshotBHT copies the full speculative BHT state into dst (allocating if
// needed) and returns it. Indexes match internal entry order.
func (p *Predictor) SnapshotBHT(dst []FullState) []FullState {
	if cap(dst) < len(p.bht) {
		dst = make([]FullState, len(p.bht))
	}
	dst = dst[:len(p.bht)]
	for i := range p.bht {
		e := &p.bht[i]
		dst[i] = FullState{Tag: e.tag, Count: e.count, LRU: e.lru, Dir: e.dir, Alloc: e.alloc, Valid: e.valid}
	}
	return dst
}

// RestoreBHT writes a full snapshot back, returning the number of entries
// whose predictive state actually changed (the repair-write count of
// Figure 8).
func (p *Predictor) RestoreBHT(snap []FullState) int {
	if len(snap) != len(p.bht) {
		panic("loop: snapshot geometry mismatch")
	}
	changed := 0
	for i := range p.bht {
		e := &p.bht[i]
		if fullDiffers(e, &snap[i]) {
			changed++
			p.repairStamp[i] = p.repairGen
		}
		*e = bhtEntry{tag: snap[i].Tag, count: snap[i].Count, lru: snap[i].LRU,
			dir: snap[i].Dir, alloc: snap[i].Alloc, valid: snap[i].Valid}
	}
	return changed
}

// DiffBHT counts entries whose predictive state differs from snap without
// modifying anything.
func (p *Predictor) DiffBHT(snap []FullState) int {
	if len(snap) != len(p.bht) {
		panic("loop: snapshot geometry mismatch")
	}
	n := 0
	for i := range p.bht {
		if fullDiffers(&p.bht[i], &snap[i]) {
			n++
		}
	}
	return n
}

// fullDiffers ignores LRU: only predictive state counts as a repair write.
func fullDiffers(e *bhtEntry, s *FullState) bool {
	return e.count != s.Count || e.dir != s.Dir || e.valid != s.Valid ||
		e.alloc != s.Alloc || e.tag != s.Tag
}
