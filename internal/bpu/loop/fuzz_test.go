package loop

import (
	"math/rand"
	"testing"
)

// fuzzPC maps a byte to one of 16 branch PCs, giving the fuzzer a pool small
// enough to collide in BHT sets (evictions, tag mismatches) but large enough
// to exercise the LRU machinery.
func fuzzPC(b byte) uint64 { return 0x400000 + uint64(b%16)*64 }

// applyFuzzOp drives one LocalPredictor operation from a byte. The decoding
// covers every mutating entry point of the interface.
func applyFuzzOp(p *Predictor, b byte) {
	pc := fuzzPC(b)
	taken := b&0x80 != 0
	switch (b >> 4) & 0x7 {
	case 0:
		p.Predict(pc)
	case 1:
		p.PredictWithOffset(pc, uint16(b&3))
	case 2:
		p.SpecUpdate(pc, taken)
	case 3:
		p.ApplyOutcome(pc, taken)
	case 4:
		if st, ok := p.LookupState(pc); ok {
			p.RestoreState(pc, st)
		}
	case 5:
		p.Retire(pc, taken, b&1 == 1)
	case 6:
		p.Invalidate(pc)
	case 7:
		p.RepairStart()
		p.RepairBitSet(pc)
	}
}

// FuzzLoopPredictor feeds random branch streams through every mutating
// operation of the loop predictor and asserts the whole-table
// snapshot/restore contract: RestoreBHT(snap) followed by DiffBHT(snap)
// is always zero, no operation sequence panics, and the predictor stays
// functional afterwards.
func FuzzLoopPredictor(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x21, 0x42, 0x63, 0x84, 0xa5, 0xc6, 0xe7})
	f.Add([]byte{0x2f, 0x2f, 0x2f, 0xaf, 0xaf, 0x3f, 0xbf, 0x5f})
	seq := make([]byte, 128)
	for i := range seq {
		seq[i] = byte(i * 37)
	}
	f.Add(seq)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		p := New(Loop128())
		snap := p.SnapshotBHT(nil)
		for _, b := range data {
			applyFuzzOp(p, b)
		}
		if n := p.RestoreBHT(snap); n < 0 || n > p.Entries() {
			t.Fatalf("RestoreBHT changed %d entries, table holds %d", n, p.Entries())
		}
		if d := p.DiffBHT(snap); d != 0 {
			t.Fatalf("snapshot round-trip left %d entries differing", d)
		}
		p.Predict(fuzzPC(0)) // still functional
	})
}

// TestLoopSnapshotRoundTripProperty is the deterministic property-test
// counterpart of FuzzLoopPredictor: many seeded random op sequences, each
// asserting the restore round-trip, including restores from a mid-sequence
// snapshot (the perfect-repair usage pattern).
func TestLoopSnapshotRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := New(Loop128())
		// Warm the table so mid-sequence snapshots see live entries.
		for i := 0; i < rng.Intn(300); i++ {
			applyFuzzOp(p, byte(rng.Uint32()))
		}
		snap := p.SnapshotBHT(nil)
		for i := 0; i < 1+rng.Intn(200); i++ {
			applyFuzzOp(p, byte(rng.Uint32()))
		}
		p.RestoreBHT(snap)
		if d := p.DiffBHT(snap); d != 0 {
			t.Fatalf("trial %d: %d entries differ after restore", trial, d)
		}
	}
}

// TestLoopSnapshotGeometryMismatchPanics pins the documented contract that
// whole-table restores of the wrong geometry panic (a programming error, not
// a recoverable condition) rather than silently corrupting the table.
func TestLoopSnapshotGeometryMismatchPanics(t *testing.T) {
	p := New(Loop128())
	short := make([]FullState, p.Entries()-1)
	for name, fn := range map[string]func(){
		"RestoreBHT": func() { p.RestoreBHT(short) },
		"DiffBHT":    func() { p.DiffBHT(short) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted a mismatched snapshot", name)
				}
			}()
			fn()
		}()
	}
}
