package loop

// ptEntry is one PT way: the learned period for a PC, trained at retirement.
type ptEntry struct {
	tag        uint16
	period     uint16
	trainCount uint16
	conf       uint8
	age        uint8
	dir        bool
	valid      bool
}

// PTInfo is the pattern-table view of one PC.
type PTInfo struct {
	Period uint16
	Conf   uint8
	Dir    bool
	Valid  bool
}

// PatternTable is the second level of the two-level design: the learned
// final iteration count (period), dominant direction and confidence per PC.
// It is trained non-speculatively at instruction retirement, so it needs no
// repair (paper §2.3). A PatternTable may be shared between two BHTs in the
// multi-stage split-BHT design (paper §3.2.1).
type PatternTable struct {
	ways      int
	sets      int
	setMask   uint64
	tagShift  uint
	entries   []ptEntry
	statAlloc uint64

	counterMax uint16
	confThresh uint8
}

// NewPatternTable builds a PT with the given geometry.
func NewPatternTable(entries, ways int, confThresh uint8, counterMax uint16) *PatternTable {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("loop: bad PT geometry")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("loop: PT set count must be a power of two")
	}
	return &PatternTable{
		ways:       ways,
		sets:       sets,
		setMask:    uint64(sets - 1),
		tagShift:   uint(log2(sets)),
		entries:    make([]ptEntry, entries),
		counterMax: counterMax,
		confThresh: confThresh,
	}
}

// Entries returns the PT capacity.
func (t *PatternTable) Entries() int { return len(t.entries) }

// StorageBits approximates the PT storage budget.
func (t *PatternTable) StorageBits() int {
	return len(t.entries) * (8 + 11 + 11 + 3 + 8 + 1 + 1)
}

func (t *PatternTable) set(pc uint64) int { return int(pcHash(pc) & t.setMask) }
func (t *PatternTable) tagOf(pc uint64) uint16 {
	return uint16((pcHash(pc)>>t.tagShift)^(pcHash(pc)>>13)) & 0xff
}

func (t *PatternTable) lookup(pc uint64) *ptEntry {
	base := t.set(pc) * t.ways
	tag := t.tagOf(pc)
	for w := 0; w < t.ways; w++ {
		e := &t.entries[base+w]
		if e.valid && e.tag == tag {
			return e
		}
	}
	return nil
}

// Info returns the learned pattern for pc.
func (t *PatternTable) Info(pc uint64) PTInfo {
	e := t.lookup(pc)
	if e == nil {
		return PTInfo{}
	}
	return PTInfo{Period: e.period, Conf: e.conf, Dir: e.dir, Valid: true}
}

// Confident reports whether pc has a PT entry confident enough to override.
func (t *PatternTable) Confident(pc uint64) bool {
	e := t.lookup(pc)
	return e != nil && e.conf >= t.confThresh && e.period > 0
}

// Train updates the PT with the architectural outcome of pc; allocation is
// driven by final-prediction mispredictions (allocate reports whether the
// baseline predictor got this branch wrong).
func (t *PatternTable) Train(pc uint64, taken, allocate bool) {
	e := t.lookup(pc)
	if e == nil {
		if allocate {
			t.alloc(pc, taken)
		}
		return
	}
	if e.age < ageMax {
		e.age++
	}
	if taken == e.dir {
		if e.trainCount < t.counterMax {
			e.trainCount++
		}
		return
	}
	// Direction flip: one full period observed.
	observed := e.trainCount + 1
	if observed == 1 && e.period <= 1 {
		// Back-to-back flips with no learned period: the dominant
		// direction was mis-captured at allocation (the entry was
		// allocated on a misprediction of the *common* direction).
		// Re-polarize and relearn.
		e.dir = !e.dir
		e.period = 0
		e.conf = 0
		e.trainCount = 1
		return
	}
	if observed == e.period {
		if e.conf < confMax {
			e.conf++
		}
	} else {
		e.period = observed
		if e.conf >= 2 {
			e.conf -= 2
		} else {
			e.conf = 0
		}
	}
	e.trainCount = 0
}

func (t *PatternTable) alloc(pc uint64, taken bool) {
	base := t.set(pc) * t.ways
	var victim *ptEntry
	for w := 0; w < t.ways; w++ {
		e := &t.entries[base+w]
		if !e.valid {
			victim = e
			break
		}
		if victim == nil || e.conf < victim.conf ||
			(e.conf == victim.conf && e.age < victim.age) {
			victim = e
		}
	}
	// Do not evict a confident, recently useful entry for a newcomer.
	if victim.valid && victim.conf >= t.confThresh && victim.age > 16 {
		victim.age /= 2
		return
	}
	*victim = ptEntry{
		tag:   t.tagOf(pc),
		dir:   !taken, // the mispredicted outcome is the rare (exit) direction
		valid: true,
	}
	t.statAlloc++
}

// Penalize lowers the confidence of pc's entry after a wrong override:
// a PC whose speculative state proved untrustworthy stops overriding until
// retire-time training rebuilds confidence. This localizes the damage of
// unrepaired state to the affected PC.
func (t *PatternTable) Penalize(pc uint64) {
	if e := t.lookup(pc); e != nil {
		if e.conf >= 2 {
			e.conf -= 2
		} else {
			e.conf = 0
		}
	}
}

// Allocs returns the number of PT allocations performed.
func (t *PatternTable) Allocs() uint64 { return t.statAlloc }
