// Package bimodal implements the classic 2-bit saturating-counter branch
// predictor of Smith [ISCA'81]. It is the tagless base component of TAGE.
package bimodal

// Predictor is a table of 2-bit saturating counters indexed by PC.
type Predictor struct {
	ctr  []uint8
	mask uint64
}

// New returns a bimodal predictor with 2^log2Entries counters.
func New(log2Entries int) *Predictor {
	if log2Entries < 1 || log2Entries > 28 {
		panic("bimodal: log2Entries out of range")
	}
	n := 1 << log2Entries
	p := &Predictor{ctr: make([]uint8, n), mask: uint64(n - 1)}
	for i := range p.ctr {
		p.ctr[i] = 1 // weakly not-taken
	}
	return p
}

func (p *Predictor) index(pc uint64) uint64 { return (pc >> 2) & p.mask }

// Predict returns the predicted direction for pc.
func (p *Predictor) Predict(pc uint64) bool { return p.ctr[p.index(pc)] >= 2 }

// Hysteresis reports whether the counter for pc is saturated (high
// confidence); TAGE uses this to judge provider strength.
func (p *Predictor) Hysteresis(pc uint64) bool {
	c := p.ctr[p.index(pc)]
	return c == 0 || c == 3
}

// Update trains the counter for pc with the resolved direction.
func (p *Predictor) Update(pc uint64, taken bool) {
	i := p.index(pc)
	c := p.ctr[i]
	if taken {
		if c < 3 {
			p.ctr[i] = c + 1
		}
	} else if c > 0 {
		p.ctr[i] = c - 1
	}
}

// StorageBits returns the predictor's storage budget in bits.
func (p *Predictor) StorageBits() int { return 2 * len(p.ctr) }
