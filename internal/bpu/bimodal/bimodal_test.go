package bimodal

import "testing"

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(10)
	pc := uint64(0x4000)
	for i := 0; i < 4; i++ {
		p.Update(pc, true)
	}
	if !p.Predict(pc) {
		t.Fatal("did not learn always-taken")
	}
	if !p.Hysteresis(pc) {
		t.Fatal("saturated counter should report hysteresis")
	}
}

func TestLearnsAlwaysNotTaken(t *testing.T) {
	p := New(10)
	pc := uint64(0x4000)
	for i := 0; i < 4; i++ {
		p.Update(pc, false)
	}
	if p.Predict(pc) {
		t.Fatal("did not learn always-not-taken")
	}
}

func TestHysteresisResistsOneFlip(t *testing.T) {
	p := New(10)
	pc := uint64(0x8888)
	for i := 0; i < 4; i++ {
		p.Update(pc, true)
	}
	p.Update(pc, false) // one contrary outcome
	if !p.Predict(pc) {
		t.Fatal("a single flip should not change a saturated prediction")
	}
}

func TestCountersSaturate(t *testing.T) {
	p := New(8)
	pc := uint64(0x1234)
	for i := 0; i < 100; i++ {
		p.Update(pc, true)
	}
	for i := 0; i < 100; i++ {
		p.Update(pc, false)
	}
	if p.Predict(pc) {
		t.Fatal("counter failed to come back down (saturation bug)")
	}
}

func TestIndexing(t *testing.T) {
	p := New(4) // 16 entries
	// PCs 16 entries apart (after the >>2) must alias; adjacent must not.
	a := uint64(0 << 2)
	b := uint64(16 << 2)
	c := uint64(1 << 2)
	for i := 0; i < 4; i++ {
		p.Update(a, true)
	}
	if !p.Predict(b) {
		t.Fatal("aliasing PCs should share a counter")
	}
	if p.Predict(c) {
		t.Fatal("adjacent PC should have its own (untrained) counter")
	}
}

func TestStorageBits(t *testing.T) {
	if got := New(13).StorageBits(); got != 2*8192 {
		t.Fatalf("StorageBits = %d, want %d", got, 2*8192)
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}
