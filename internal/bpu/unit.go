// Package bpu assembles the branch prediction unit the core drives: the
// TAGE baseline, an optional local-predictor scheme (CBPw-Loop plus one of
// the repair mechanisms of internal/repair), and the chooser that arbitrates
// between them (the WITHLOOP-style counter of TAGE-SC-L).
package bpu

import (
	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/repair"
)

// BranchRec is the full per-branch record carried from fetch to retirement:
// the repair context, TAGE metadata and the GHIST/PHIST checkpoint.
type BranchRec struct {
	Ctx      repair.BranchCtx
	TageMeta tage.Meta
	TagePred bool
	Ckpt     tage.Checkpoint

	Squashed bool
	InFlight bool // guards pool recycling while queued for resolution
}

// Unit is the branch prediction unit.
type Unit struct {
	Tage   *tage.Predictor
	Scheme repair.Scheme // nil for the TAGE-only baseline

	// Oracle replaces the local prediction with the architectural outcome
	// for every PC the pattern table tracks: the "highly accurate local
	// predictor with no misprediction" of Figure 4.
	Oracle bool

	withLoop int // chooser: >= 0 means trust the loop predictor

	pool []*BranchRec

	statOverrides        uint64
	statOverridesCorrect uint64
}

// The chooser saturates high slowly but recovers from distrust quickly
// (floor at withLoopMin): an unrepaired, corrupted local predictor keeps
// being re-tried and keeps costing mispredictions, as the paper observes for
// the MM and BP categories (Figure 4).
const (
	withLoopMax = 7
	withLoopMin = -2
)

// NewUnit builds a unit around a TAGE configuration and an optional scheme.
func NewUnit(tcfg tage.Config, scheme repair.Scheme) *Unit {
	return &Unit{Tage: tage.New(tcfg), Scheme: scheme}
}

// Prealloc grows the record pool to at least n entries, batch-allocating the
// records and their TAGE metadata/checkpoint storage out of shared arenas.
// The core calls it once at construction with its in-flight branch bound, so
// the steady-state GetRec/PutRec cycle never allocates. A pool that ever
// runs dry falls back to lazy per-record allocation.
func (u *Unit) Prealloc(n int) {
	have := len(u.pool)
	if have >= n {
		return
	}
	add := n - have
	if cap(u.pool) < n {
		pool := make([]*BranchRec, have, n+16)
		copy(pool, u.pool)
		u.pool = pool
	}
	recs := make([]BranchRec, add)
	if u.Tage != nil {
		ms := make([]*tage.Meta, add)
		cks := make([]*tage.Checkpoint, add)
		for i := range recs {
			ms[i] = &recs[i].TageMeta
			cks[i] = &recs[i].Ckpt
		}
		u.Tage.PrimeMetas(ms)
		u.Tage.PrimeCheckpoints(cks)
	}
	for i := range recs {
		u.pool = append(u.pool, &recs[i])
	}
}

// GetRec returns a reset branch record from the pool.
func (u *Unit) GetRec() *BranchRec {
	var r *BranchRec
	if n := len(u.pool); n > 0 {
		r = u.pool[n-1]
		u.pool = u.pool[:n-1]
	} else {
		r = &BranchRec{}
	}
	repair.ResetCtx(&r.Ctx)
	r.Squashed = false
	r.InFlight = false
	return r
}

// PutRec returns a record to the pool.
func (u *Unit) PutRec(r *BranchRec) { u.pool = append(u.pool, r) }

// localPredictor exposes the primary local predictor of single-BHT schemes.
type localPredictor interface {
	Predictor() loop.LocalPredictor
}

// oracleCovers reports whether the oracle local predictor tracks pc.
func (u *Unit) oracleCovers(pc uint64) bool {
	lp, ok := u.Scheme.(localPredictor)
	if !ok {
		return false
	}
	p := lp.Predictor()
	if p == nil {
		// Wrappers (audit, fault injection) advertise the method even when
		// the wrapped scheme has no single primary predictor.
		return false
	}
	info := p.PatternInfo(pc)
	// Only branches with genuine local structure count as covered: the
	// PT must have confirmed a repeating period at least once. Without
	// the gate the oracle would also cover random branches that merely
	// allocated an entry, overstating the Figure 4 opportunity.
	return info.Valid && info.Period >= 2 && info.Conf >= 1
}

// Predict runs the fetch-stage prediction flow for a conditional branch:
// TAGE predicts, the local scheme may override (subject to the chooser),
// speculative histories advance, and the scheme checkpoints/updates its BHT.
// It returns the final predicted direction.
func (u *Unit) Predict(rec *BranchRec, pc uint64, actual bool, seq uint64, wrongPath bool, cycle int64) bool {
	ctx := &rec.Ctx
	ctx.PC = pc
	ctx.Seq = seq
	ctx.ActualTaken = actual
	ctx.WrongPath = wrongPath

	rec.TagePred = u.Tage.Predict(pc, &rec.TageMeta)
	u.Tage.SaveCheckpoint(&rec.Ckpt)

	final := rec.TagePred
	if u.Scheme != nil {
		if u.Oracle {
			if u.oracleCovers(pc) {
				final = actual
			}
		} else {
			lp := u.Scheme.FetchPredict(pc, cycle)
			if lp.Valid {
				ctx.LoopValid, ctx.LoopTaken = true, lp.Taken
				if lp.Taken != rec.TagePred && u.withLoop >= 0 {
					final = lp.Taken
					ctx.UsedLoop = true
					u.statOverrides++
					if final == actual && !wrongPath {
						u.statOverridesCorrect++
					}
				}
			}
		}
	}
	ctx.PredTaken = final

	u.Tage.SpecUpdateHistory(pc, final)
	if u.Scheme != nil {
		u.Scheme.OnFetchBranch(ctx, cycle)
	}
	return final
}

// AllocStage gives deferred schemes their allocation-stage shot. When the
// scheme overrides, the record's prediction is rewritten and resteer is
// true; the caller re-steers the front end.
func (u *Unit) AllocStage(rec *BranchRec, cycle int64) (resteer bool) {
	if u.Scheme == nil {
		return false
	}
	rec.Ctx.OverrideAllowed = u.withLoop >= 0
	override, dir := u.Scheme.AllocCheck(&rec.Ctx, cycle)
	if !override {
		return false
	}
	rec.Ctx.PredTaken = dir
	u.statOverrides++
	if dir == rec.Ctx.ActualTaken && !rec.Ctx.WrongPath {
		u.statOverridesCorrect++
	}
	// The speculative history recorded the old direction; rewind to the
	// branch and push the corrected one.
	u.Tage.RestoreCheckpoint(&rec.Ckpt)
	u.Tage.SpecUpdateHistory(rec.Ctx.PC, dir)
	return true
}

// Resolve is called when a correct-path branch executes. It trains TAGE,
// updates the chooser, restores the speculative history on a misprediction
// and triggers the scheme's repair. It returns whether the final prediction
// was wrong.
func (u *Unit) Resolve(rec *BranchRec, cycle int64) (mispredicted bool) {
	ctx := &rec.Ctx
	actual := ctx.ActualTaken
	mispredicted = ctx.PredTaken != actual

	// Chooser: learn which side to trust when they disagree.
	if ctx.LoopValid && ctx.LoopTaken != rec.TagePred {
		if ctx.LoopTaken == actual {
			if u.withLoop < withLoopMax {
				u.withLoop++
			}
		} else if rec.TagePred == actual {
			if u.withLoop > withLoopMin {
				u.withLoop--
			}
		}
	}

	u.Tage.Update(&rec.TageMeta, actual, mispredicted)

	if mispredicted {
		u.Tage.RestoreCheckpoint(&rec.Ckpt)
		u.Tage.SpecUpdateHistory(ctx.PC, actual)
		if u.Scheme != nil {
			u.Scheme.OnMispredict(ctx, cycle)
		}
	} else if u.Scheme != nil {
		u.Scheme.OnCorrectResolve(ctx, cycle)
	}
	return mispredicted
}

// Retire is called when a correct-path branch retires.
func (u *Unit) Retire(rec *BranchRec) {
	if u.Scheme != nil {
		finalMisp := rec.Ctx.PredTaken != rec.Ctx.ActualTaken
		u.Scheme.OnRetire(&rec.Ctx, finalMisp)
	}
	u.PutRec(rec)
}

// Squash is called when an in-flight branch is flushed.
func (u *Unit) Squash(rec *BranchRec) {
	if u.Scheme != nil {
		u.Scheme.OnSquash(&rec.Ctx)
	}
	rec.Squashed = true
	if !rec.InFlight {
		u.PutRec(rec)
	}
}

// OverrideStats returns (overrides, correct overrides) of the local scheme.
func (u *Unit) OverrideStats() (uint64, uint64) {
	return u.statOverrides, u.statOverridesCorrect
}
