package daemonchaos

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"localbp/internal/shard"
)

// TestShardFleetCoordinatorCrash kills the COORDINATOR of a sharded sweep —
// the complement of the worker-kill smoke in cmd/lbpsweep. Its workers are
// orphaned mid-shard but keep heartbeating their leases; a second
// coordinator started on the same lease directory must coexist with them
// (its own spawns are refused by the live leases and retried after release),
// drive every shard to completion, and the merged output must cover every
// experiment exactly once. No fleet state lives in the coordinator process —
// everything is in the lease journals and shard checkpoints.
func TestShardFleetCoordinatorCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test")
	}
	bin := BuildBinary(t, "localbp/cmd/lbpsweep")
	dir := t.TempDir()
	lease := filepath.Join(dir, "fleet")
	ids := []string{"table1", "table2", "fig4", "fig7a", "fig8", "fig9", "fig10", "ext1"}

	coordArgs := append([]string{
		"-shards", "3", "-lease-dir", lease,
		"-lease-ttl", "1s", "-lease-heartbeat", "100ms",
		"-quick", "-insts", "12000", "-workers", "2",
	}, ids...)

	var out1, err1 strings.Builder
	first := exec.Command(bin, coordArgs...)
	first.Stdout, first.Stderr = &out1, &err1
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait until the fleet is observably mid-sweep (a shard checkpoint has
	// been flushed), then SIGKILL the coordinator.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if m, _ := filepath.Glob(filepath.Join(lease, "shard-*.ckpt")); len(m) > 0 {
			break
		}
		if time.Now().After(deadline) {
			first.Process.Kill()
			t.Fatalf("no shard checkpoint ever appeared\nstderr:\n%s", err1.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := first.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	first.Wait()

	// The replacement coordinator inherits a directory with live orphan
	// workers still leasing shards. It must finish the sweep anyway.
	var out2, err2 strings.Builder
	second := exec.Command(bin, coordArgs...)
	second.Stdout, second.Stderr = &out2, &err2
	if err := second.Run(); err != nil {
		t.Fatalf("replacement coordinator failed: %v\nstderr:\n%s", err, err2.String())
	}
	if !strings.Contains(err2.String(), "3/3 shards ok") {
		t.Fatalf("replacement coordinator did not complete the fleet:\n%s", err2.String())
	}

	// The merge integrity gate is the arbiter: every experiment exactly
	// once, option stamps agreeing, CRCs intact — despite two coordinator
	// generations and orphaned workers sharing the directory.
	var merged strings.Builder
	mergeCmd := exec.Command(bin, append([]string{"-merge", "-shards", "3", "-lease-dir", lease}, ids...)...)
	mergeCmd.Stdout = &merged
	var mergeErrs strings.Builder
	mergeCmd.Stderr = &mergeErrs
	if err := mergeCmd.Run(); err != nil {
		t.Fatalf("merge after coordinator crash: %v\n%s", err, mergeErrs.String())
	}
	for _, id := range ids {
		if c := strings.Count(merged.String(), "== "+id+" "); c != 1 {
			t.Fatalf("experiment %s appears %d times in the merged output, want 1", id, c)
		}
	}

	// Every lease journal must be terminally released — no shard left
	// half-owned for the next fleet on this directory.
	for k := 0; k < 3; k++ {
		st, err := shard.ReadLease(lease, k, 3)
		if err != nil {
			t.Fatalf("shard %d lease unreadable: %v", k, err)
		}
		if st.Held(time.Now(), time.Minute) {
			t.Fatalf("shard %d lease still held after the fleet completed: %+v", k, st)
		}
	}
}
