// Package daemonchaos drives a real lbpd subprocess for crash, flood and
// disconnect testing. The harness builds the daemon binary once, launches it
// against a journal and a port, and exposes the failure injections the chaos
// suite needs: SIGKILL mid-run, restart on the same journal, connection
// floods, and mid-stream subscriber disconnects. Tests in cmd/lbpd (the
// smoke test) and in this package (the chaos suite) share it.
package daemonchaos

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// BuildBinary compiles pkg into tb's temp dir and returns the binary path.
// Extra build flags (e.g. "-race" for the chaos suites) go before -o. The
// sweep-fleet chaos tests build cmd/lbpsweep through this too.
func BuildBinary(tb testing.TB, pkg string, buildFlags ...string) string {
	tb.Helper()
	bin := filepath.Join(tb.TempDir(), filepath.Base(pkg))
	args := append(append([]string{"build"}, buildFlags...), "-o", bin, pkg)
	cmd := exec.Command("go", args...)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		tb.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// Build compiles cmd/lbpd into tb's temp dir and returns the binary path.
func Build(tb testing.TB, buildFlags ...string) string {
	return BuildBinary(tb, "localbp/cmd/lbpd", buildFlags...)
}

// Harness manages one lbpd process generation at a time. Kill + Start on the
// same harness models a crash and restart over the same journal.
type Harness struct {
	tb      testing.TB
	bin     string
	journal string
	addr    string
	base    string

	cmd    *exec.Cmd
	stderr bytes.Buffer
	client *http.Client
}

// New builds a harness around bin and journal, reserving a listen address.
func New(tb testing.TB, bin, journal string) *Harness {
	tb.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tb.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	h := &Harness{
		tb: tb, bin: bin, journal: journal, addr: addr,
		base:   "http://" + addr,
		client: &http.Client{Timeout: 15 * time.Second},
	}
	tb.Cleanup(func() {
		if h.cmd != nil && h.cmd.Process != nil {
			h.cmd.Process.Kill()
			h.cmd.Wait()
		}
	})
	return h
}

// URL returns the daemon's base URL.
func (h *Harness) URL() string { return h.base }

// Start launches a new daemon generation on the harness's address and
// journal with the extra flags appended. The previous generation must have
// exited (Kill or Stop) first.
func (h *Harness) Start(extra ...string) {
	h.tb.Helper()
	if h.cmd != nil {
		h.tb.Fatal("previous lbpd generation still attached; Kill or Stop it first")
	}
	args := append([]string{"-addr", h.addr, "-journal", h.journal}, extra...)
	h.cmd = exec.Command(h.bin, args...)
	h.stderr.Reset()
	h.cmd.Stderr = &h.stderr
	if err := h.cmd.Start(); err != nil {
		h.tb.Fatalf("starting lbpd: %v", err)
	}
}

// WaitHealthy polls /healthz until the daemon answers or the timeout ends.
func (h *Harness) WaitHealthy(timeout time.Duration) {
	h.tb.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := h.client.Get(h.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			h.tb.Fatalf("lbpd never became healthy on %s\nstderr:\n%s", h.addr, h.stderr.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// Kill crash-stops the daemon with SIGKILL (no drain, no journal close) and
// reaps it, modeling a power-loss-grade failure.
func (h *Harness) Kill() {
	h.tb.Helper()
	if h.cmd == nil {
		h.tb.Fatal("no lbpd generation to kill")
	}
	h.cmd.Process.Kill()
	h.cmd.Wait()
	h.cmd = nil
}

// Stop requests a graceful drain with SIGTERM and returns the exit code;
// past the timeout the process is killed and the test fails.
func (h *Harness) Stop(timeout time.Duration) int {
	h.tb.Helper()
	if h.cmd == nil {
		h.tb.Fatal("no lbpd generation to stop")
	}
	h.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- h.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(timeout):
		h.cmd.Process.Kill()
		<-done
		h.tb.Fatalf("lbpd did not drain within %v\nstderr:\n%s", timeout, h.stderr.String())
	}
	code := h.cmd.ProcessState.ExitCode()
	h.cmd = nil
	return code
}

// Stderr returns the current generation's captured stderr so far.
func (h *Harness) Stderr() string { return h.stderr.String() }

// Submit posts one job and returns the HTTP status plus the decoded body.
func (h *Harness) Submit(req map[string]any) (int, map[string]any) {
	h.tb.Helper()
	body, _ := json.Marshal(req)
	resp, err := h.client.Post(h.base+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		h.tb.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m)
	return resp.StatusCode, m
}

// GetJSON fetches path and returns the HTTP status plus the decoded body.
func (h *Harness) GetJSON(path string, into any) int {
	h.tb.Helper()
	resp, err := h.client.Get(h.base + path)
	if err != nil {
		h.tb.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if into != nil {
		json.NewDecoder(resp.Body).Decode(into)
	}
	return resp.StatusCode
}

// JobView mirrors the daemon's job rendering, loosely typed so the harness
// needs no dependency on internal/service.
type JobView struct {
	ID       string          `json:"id"`
	State    string          `json:"state"`
	Error    string          `json:"error"`
	Progress uint64          `json:"progress"`
	Result   json.RawMessage `json:"result"`
}

// terminalStates are the states a job can end in.
var terminalStates = map[string]bool{
	"done": true, "failed": true, "canceled": true, "shed": true,
}

// WaitTerminal polls one job until it reaches a terminal state.
func (h *Harness) WaitTerminal(id string, timeout time.Duration) JobView {
	h.tb.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var v JobView
		code := h.GetJSON("/jobs/"+id, &v)
		if code == http.StatusOK && terminalStates[v.State] {
			return v
		}
		if time.Now().After(deadline) {
			h.tb.Fatalf("job %s not terminal within %v (last: %d %+v)\nstderr:\n%s",
				id, timeout, code, v, h.stderr.String())
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// List fetches every job (up to limit 1000) and returns total plus views.
func (h *Harness) List() (int, []JobView) {
	h.tb.Helper()
	var list struct {
		Total int       `json:"total"`
		Jobs  []JobView `json:"jobs"`
	}
	if code := h.GetJSON("/jobs?limit=1000", &list); code != http.StatusOK {
		h.tb.Fatalf("GET /jobs: status %d", code)
	}
	return list.Total, list.Jobs
}

// StreamEvents opens the job's SSE stream; the caller closes the body.
func (h *Harness) StreamEvents(ctx context.Context, id string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.base+"/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req) // no overall timeout: streaming
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("events stream for %s: status %d", id, resp.StatusCode)
	}
	return resp.Body, nil
}

// WaitProgress watches the job's event stream until a progress event (the
// job is observably mid-run) or the timeout; it then disconnects mid-stream.
func (h *Harness) WaitProgress(id string, timeout time.Duration) {
	h.tb.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	body, err := h.StreamEvents(ctx, id)
	if err != nil {
		h.tb.Fatalf("opening event stream: %v", err)
	}
	defer body.Close()
	sc := bufio.NewScanner(body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: progress") {
			return
		}
	}
	h.tb.Fatalf("no progress event for %s within %v\nstderr:\n%s", id, timeout, h.stderr.String())
}
