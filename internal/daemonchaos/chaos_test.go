package daemonchaos

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"localbp"
)

// TestDaemonChaos is the daemon chaos suite (wired into `make stress`): a
// race-built lbpd binary survives repeated SIGKILL/restart cycles with zero
// lost and zero duplicated jobs and bit-identical cached results, answers a
// queue flood with 429s instead of hung connections, and shrugs off
// mid-stream subscriber disconnects before draining cleanly.
func TestDaemonChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite skipped in -short mode")
	}
	bin := Build(t, "-race")
	w := localbp.Workloads()[0]

	t.Run("KillRestart", func(t *testing.T) {
		journal := filepath.Join(t.TempDir(), "jobs.journal")
		h := New(t, bin, journal)
		h.Start("-workers", "2")
		h.WaitHealthy(15 * time.Second)

		// Six distinct jobs; the seeds keep them from coalescing.
		const jobs = 6
		ids := make([]string, jobs)
		want := map[string]bool{}
		for i := range jobs {
			code, body := h.Submit(map[string]any{
				"workload": w.Name, "scheme": "tage",
				"insts": 1_000_000, "seed": i + 1,
			})
			if code != http.StatusAccepted {
				t.Fatalf("submit %d: status %d body %v", i, code, body)
			}
			ids[i] = body["id"].(string)
			if want[ids[i]] {
				t.Fatalf("duplicate id %s at submit time", ids[i])
			}
			want[ids[i]] = true
		}

		// Crash and restart repeatedly while work is in flight. After every
		// restart the journal must replay exactly the six submissions: none
		// lost, none duplicated, every state legal.
		for cycle := range 3 {
			time.Sleep(400 * time.Millisecond)
			h.Kill()
			h.Start("-workers", "2")
			h.WaitHealthy(15 * time.Second)
			total, views := h.List()
			if total != jobs || len(views) != jobs {
				t.Fatalf("cycle %d: %d jobs after restart, want %d", cycle, total, jobs)
			}
			seen := map[string]bool{}
			for _, v := range views {
				if !want[v.ID] || seen[v.ID] {
					t.Fatalf("cycle %d: unexpected or duplicated job %q", cycle, v.ID)
				}
				seen[v.ID] = true
				switch v.State {
				case "queued", "running", "done":
				default:
					t.Fatalf("cycle %d: job %s in state %q after restart", cycle, v.ID, v.State)
				}
			}
		}

		for _, id := range ids {
			if v := h.WaitTerminal(id, 180*time.Second); v.State != "done" {
				t.Fatalf("job %s ended %q: %s", id, v.State, v.Error)
			}
		}

		// The daemon's stored result is bit-identical to a fresh in-process
		// run of the same canonical request.
		var got localbp.Result
		if code := h.GetJSON("/jobs/"+ids[0]+"/result", &got); code != http.StatusOK {
			t.Fatalf("result fetch: %d", code)
		}
		scheme, err := localbp.SchemeByName("tage")
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := localbp.Simulate(w, 1_000_000, scheme, localbp.WithSeed(1))
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, _ := json.Marshal(got)
		freshJSON, _ := json.Marshal(fresh)
		if string(gotJSON) != string(freshJSON) {
			t.Fatalf("cached result drifted from a fresh run:\ncached: %s\nfresh:  %s", gotJSON, freshJSON)
		}

		if code := h.Stop(90 * time.Second); code != 0 {
			t.Fatalf("drain exited %d\nstderr:\n%s", code, h.Stderr())
		}
	})

	t.Run("FloodAndDisconnect", func(t *testing.T) {
		journal := filepath.Join(t.TempDir(), "jobs.journal")
		h := New(t, bin, journal)
		h.Start("-workers", "1", "-queue", "4", "-drain-grace", "90s")
		h.WaitHealthy(15 * time.Second)

		// Flood: 40 concurrent distinct submissions against a 4-deep queue.
		// Every request must complete promptly with 202 or 429 — a hung
		// connection is the failure mode load shedding exists to prevent.
		const flood = 40
		type outcome struct {
			code       int
			id         string
			retryAfter string
		}
		outcomes := make([]outcome, flood)
		var wg sync.WaitGroup
		client := &http.Client{Timeout: 10 * time.Second}
		for i := range flood {
			wg.Add(1)
			go func() {
				defer wg.Done()
				body := fmt.Sprintf(`{"workload":%q,"scheme":"tage","insts":500000,"seed":%d}`,
					w.Name, 100+i)
				resp, err := client.Post(h.URL()+"/jobs", "application/json", strings.NewReader(body))
				if err != nil {
					outcomes[i] = outcome{code: -1}
					return
				}
				defer resp.Body.Close()
				var m map[string]any
				json.NewDecoder(resp.Body).Decode(&m)
				id, _ := m["id"].(string)
				outcomes[i] = outcome{resp.StatusCode, id, resp.Header.Get("Retry-After")}
			}()
		}
		wg.Wait()

		accepted, rejected := 0, 0
		acceptedIDs := map[string]bool{}
		for i, o := range outcomes {
			switch o.code {
			case http.StatusAccepted:
				accepted++
				if o.id == "" || acceptedIDs[o.id] {
					t.Fatalf("flood %d: accepted without unique id: %+v", i, o)
				}
				acceptedIDs[o.id] = true
			case http.StatusTooManyRequests:
				rejected++
				if o.retryAfter == "" {
					t.Fatalf("flood %d: 429 without Retry-After", i)
				}
			case -1:
				t.Fatalf("flood %d: request hung or failed", i)
			default:
				t.Fatalf("flood %d: unexpected status %d", i, o.code)
			}
		}
		if rejected == 0 {
			t.Fatalf("flood of %d against a 4-deep queue produced no 429s (accepted %d)", flood, accepted)
		}
		if total, _ := h.List(); total != accepted {
			t.Fatalf("daemon holds %d jobs, accepted %d: lost or phantom work", total, accepted)
		}

		// Mid-stream disconnects: open an event stream per accepted job,
		// then tear them all down while work is still running.
		var cancels []context.CancelFunc
		for id := range acceptedIDs {
			ctx, cancel := context.WithCancel(context.Background())
			cancels = append(cancels, cancel)
			body, err := h.StreamEvents(ctx, id)
			if err != nil {
				t.Fatalf("stream %s: %v", id, err)
			}
			defer body.Close()
		}
		time.Sleep(200 * time.Millisecond)
		for _, cancel := range cancels {
			cancel()
		}

		// Dropped subscribers must not stall completion: every accepted job
		// still terminates, and the daemon drains with exit 0.
		for id := range acceptedIDs {
			if v := h.WaitTerminal(id, 180*time.Second); v.State != "done" {
				t.Fatalf("job %s ended %q after disconnects: %s", id, v.State, v.Error)
			}
		}
		if code := h.Stop(120 * time.Second); code != 0 {
			t.Fatalf("drain exited %d\nstderr:\n%s", code, h.Stderr())
		}
	})
}
