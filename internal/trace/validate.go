package trace

import (
	"errors"
	"fmt"
)

// maxValidateErrors caps how many per-instruction violations Validate
// collects before giving up; a corrupt trace repeats the same defect
// millions of times and one screenful is enough to diagnose it.
const maxValidateErrors = 8

// Validate scans a dynamic instruction stream and returns a field-level
// error for every malformed instruction found (joined, capped at
// maxValidateErrors), or nil. The harness validates every generated or
// loaded trace before simulation so a generator or decoder bug fails fast
// with the offending index and field instead of corrupting a sweep.
func Validate(tr []Inst) error {
	if len(tr) == 0 {
		return errors.New("trace: empty instruction stream")
	}
	var errs []error
	bad := func(i int, field string, got any, want string) {
		errs = append(errs, fmt.Errorf("trace: inst %d %s: got %v, want %s", i, field, got, want))
	}
	for i := range tr {
		in := &tr[i]
		if in.Class >= numClasses {
			bad(i, "Class", uint8(in.Class), fmt.Sprintf("< %d", uint8(numClasses)))
		}
		if in.Dst >= NumRegs {
			bad(i, "Dst", in.Dst, fmt.Sprintf("< %d", NumRegs))
		}
		if in.Src1 >= NumRegs {
			bad(i, "Src1", in.Src1, fmt.Sprintf("< %d", NumRegs))
		}
		if in.Src2 >= NumRegs {
			bad(i, "Src2", in.Src2, fmt.Sprintf("< %d", NumRegs))
		}
		if in.Class == ClassBranch && in.PC == 0 {
			bad(i, "PC", in.PC, "non-zero for a branch (predictors index by PC)")
		}
		if len(errs) >= maxValidateErrors {
			errs = append(errs, fmt.Errorf("trace: stopping after %d errors (%d instructions unchecked)",
				maxValidateErrors, len(tr)-i-1))
			break
		}
	}
	return errors.Join(errs...)
}
