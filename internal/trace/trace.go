// Package trace defines the dynamic instruction stream consumed by the
// cycle-level core model, and a synthetic program generator that produces
// streams with realistic control-flow structure: nested loops with
// parameterizable exit-iteration behaviour, if-then-else sites with repeating
// local patterns, globally-correlated branches, biased-random branches, and
// non-branch filler instructions carrying register dependences and memory
// accesses.
//
// The generator substitutes for the proprietary workload traces used by the
// paper (see DESIGN.md §3): what matters for the study is that branch PCs
// recur with per-PC local structure, so that a local predictor has state
// worth protecting across pipeline flushes.
package trace

import "fmt"

// Class categorizes a dynamic instruction for the timing model.
type Class uint8

const (
	// ClassALU is a single-cycle integer operation.
	ClassALU Class = iota
	// ClassMul is a multi-cycle integer operation (multiply/divide-like).
	ClassMul
	// ClassFP is a floating-point operation.
	ClassFP
	// ClassLoad reads memory.
	ClassLoad
	// ClassStore writes memory.
	ClassStore
	// ClassBranch is a conditional branch.
	ClassBranch
	numClasses
)

// String returns a short mnemonic for the class.
func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassMul:
		return "mul"
	case ClassFP:
		return "fp"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "br"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// NumRegs is the size of the architectural register file modeled by the
// generator and the core's dependence scoreboard.
const NumRegs = 64

// Inst is one dynamic instruction.
//
// For ClassBranch, Taken is the architecturally correct outcome and Target is
// the taken destination. For ClassLoad/ClassStore, Addr is the byte address
// accessed. Register identifiers are in [0, NumRegs); Dst==0 means "writes no
// register" (register 0 is hardwired, as on many RISC ISAs).
type Inst struct {
	PC     uint64
	Addr   uint64
	Target uint64
	Class  Class
	Taken  bool
	Dst    uint8
	Src1   uint8
	Src2   uint8
}

// IsBranch reports whether the instruction is a conditional branch.
func (in Inst) IsBranch() bool { return in.Class == ClassBranch }

// IsMem reports whether the instruction accesses memory.
func (in Inst) IsMem() bool { return in.Class == ClassLoad || in.Class == ClassStore }

// Stats summarizes a generated trace; used by lbptrace and tests.
type Stats struct {
	Insts      int
	Branches   int
	Taken      int
	Loads      int
	Stores     int
	UniquePCs  int
	UniqueBrPC int
}

// Summarize computes aggregate statistics for a trace.
func Summarize(tr []Inst) Stats {
	var s Stats
	pcs := make(map[uint64]struct{})
	brpcs := make(map[uint64]struct{})
	for _, in := range tr {
		s.Insts++
		pcs[in.PC] = struct{}{}
		switch in.Class {
		case ClassBranch:
			s.Branches++
			if in.Taken {
				s.Taken++
			}
			brpcs[in.PC] = struct{}{}
		case ClassLoad:
			s.Loads++
		case ClassStore:
			s.Stores++
		}
	}
	s.UniquePCs = len(pcs)
	s.UniqueBrPC = len(brpcs)
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("insts=%d branches=%d (%.1f%% taken) loads=%d stores=%d uniquePCs=%d uniqueBrPCs=%d",
		s.Insts, s.Branches, 100*float64(s.Taken)/float64(max(1, s.Branches)),
		s.Loads, s.Stores, s.UniquePCs, s.UniqueBrPC)
}
