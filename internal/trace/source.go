package trace

import (
	"fmt"
	"io"
)

// Source is the canonical streaming ingestion contract: a sequential reader
// of a dynamic instruction stream that fills caller-owned chunks, so a
// multi-million-instruction trace replays at fixed memory. A Source is
// stateful and single-consumer; callers needing concurrent replays open one
// source each.
//
// Implementations: SliceSource (in-memory), the LBP1/LBP2 file and mmap
// sources returned by OpenSource, and the ChampSim-style external adapter.
type Source interface {
	// Next fills dst with the next instructions of the stream and returns
	// how many were written. It returns n < len(dst) only near the end of
	// the stream; a drained source returns (0, io.EOF). n > 0 with a nil
	// error is the normal case; implementations never return both n > 0
	// and a non-nil error.
	Next(dst []Inst) (n int, err error)
	// Reset rewinds the source to the start of the stream.
	Reset() error
	// Len returns the total instruction count of the stream.
	Len() int
}

// SliceSource adapts an in-memory instruction slice to the Source contract.
// Its Slice accessor lets zero-copy consumers (the core's slice fast path,
// the golden-model oracle) bypass the chunked interface entirely.
type SliceSource struct {
	tr  []Inst
	pos int
}

// NewSliceSource returns a source over tr. The slice is aliased, not copied.
func NewSliceSource(tr []Inst) *SliceSource { return &SliceSource{tr: tr} }

// Next implements Source.
func (s *SliceSource) Next(dst []Inst) (int, error) {
	if s.pos >= len(s.tr) {
		return 0, io.EOF
	}
	n := copy(dst, s.tr[s.pos:])
	s.pos += n
	return n, nil
}

// Reset implements Source.
func (s *SliceSource) Reset() error { s.pos = 0; return nil }

// Len implements Source.
func (s *SliceSource) Len() int { return len(s.tr) }

// Slice returns the backing stream. Consumers that can hold the whole trace
// use it to skip the copy-out path (the returned slice must be treated as
// read-only).
func (s *SliceSource) Slice() []Inst { return s.tr }

// limitSource caps a source at n instructions.
type limitSource struct {
	src  Source
	n    int
	read int
}

// Limit returns a source that yields at most n instructions of src. n <= 0
// or n >= src.Len() returns src unchanged.
func Limit(src Source, n int) Source {
	if n <= 0 || n >= src.Len() {
		return src
	}
	if ss, ok := src.(*SliceSource); ok {
		return NewSliceSource(ss.Slice()[:n])
	}
	return &limitSource{src: src, n: n}
}

func (l *limitSource) Next(dst []Inst) (int, error) {
	left := l.n - l.read
	if left <= 0 {
		return 0, io.EOF
	}
	if len(dst) > left {
		dst = dst[:left]
	}
	n, err := l.src.Next(dst)
	l.read += n
	return n, err
}

func (l *limitSource) Reset() error {
	l.read = 0
	return l.src.Reset()
}

func (l *limitSource) Len() int { return l.n }

// CloseSource closes src when it holds an open file or mapping; sources
// without resources (SliceSource) are a no-op.
func CloseSource(src Source) error {
	if l, ok := src.(*limitSource); ok {
		src = l.src
	}
	if c, ok := src.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// ReadAll drains src into memory (for tools and the golden-model oracle;
// streaming consumers use Next directly).
func ReadAll(src Source) ([]Inst, error) {
	if ss, ok := src.(*SliceSource); ok {
		out := make([]Inst, len(ss.Slice()))
		copy(out, ss.Slice())
		return out, nil
	}
	out := make([]Inst, 0, src.Len())
	var chunk [4096]Inst
	for {
		n, err := src.Next(chunk[:])
		out = append(out, chunk[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// SummarizeSource computes the same aggregate statistics as Summarize by
// draining src through a fixed-size chunk buffer, so arbitrarily long on-disk
// traces can be characterized at fixed memory (modulo the unique-PC sets).
func SummarizeSource(src Source) (Stats, error) {
	var s Stats
	pcs := make(map[uint64]struct{})
	brpcs := make(map[uint64]struct{})
	var chunk [4096]Inst
	for {
		n, err := src.Next(chunk[:])
		for _, in := range chunk[:n] {
			s.Insts++
			pcs[in.PC] = struct{}{}
			switch in.Class {
			case ClassBranch:
				s.Branches++
				if in.Taken {
					s.Taken++
				}
				brpcs[in.PC] = struct{}{}
			case ClassLoad:
				s.Loads++
			case ClassStore:
				s.Stores++
			}
		}
		if err == io.EOF {
			s.UniquePCs = len(pcs)
			s.UniqueBrPC = len(brpcs)
			return s, nil
		}
		if err != nil {
			return Stats{}, err
		}
	}
}

// sourceSlice returns the backing slice of an in-memory source, when one
// exists (used for zero-copy fast paths).
func sourceSlice(src Source) ([]Inst, bool) {
	if s, ok := src.(interface{ Slice() []Inst }); ok {
		return s.Slice(), true
	}
	return nil, false
}

// SourceSlice exposes sourceSlice to other packages: the backing slice of an
// in-memory source, or (nil, false) for true streaming sources.
func SourceSlice(src Source) ([]Inst, bool) { return sourceSlice(src) }

// mustLen guards source constructors against absurd record counts before any
// allocation is sized from them.
func checkCount(n uint64, what string) (int, error) {
	const maxRecords = 1 << 34 // 16 G instructions: far past any real trace
	if n > maxRecords {
		return 0, fmt.Errorf("trace: %s: %d records exceeds the %d cap", what, n, uint64(maxRecords))
	}
	return int(n), nil
}
