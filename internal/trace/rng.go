package trace

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xoshiro256**). The simulator avoids math/rand so that
// generated workloads are bit-stable across Go releases.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64.
func NewRNG(seed int64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-initializes the generator state from seed.
func (r *RNG) Seed(seed int64) {
	x := uint64(seed)
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform integer in [lo, hi]. Requires lo <= hi.
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("trace: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent generator; the parent advances by one draw.
func (r *RNG) Fork() *RNG { return NewRNG(int64(r.Uint64())) }
