package trace

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// ChampSim/BT9-style external-trace adapter: fixed 64-byte records in the
// champsim input_instr layout, replayed behind the same Source contract as
// the native formats so real traces drop into every consumer (lbpsim
// -trace-file, the harness, the facade) unchanged.
//
// Record layout (little-endian):
//
//	ip         u64     instruction pointer
//	is_branch  u8
//	taken      u8
//	dst_regs   2 × u8
//	src_regs   4 × u8
//	dst_mem    2 × u64  store addresses (0 = unused slot)
//	src_mem    4 × u64  load addresses  (0 = unused slot)
//
// The format carries no explicit branch target; a taken branch's target is
// the next record's ip (the stream is the committed path), which is why the
// adapter decodes with one record of lookahead.
const champsimRecSize = 64

// champsimSource streams a .champsim/.cst file with positioned reads.
type champsimSource struct {
	f     *os.File
	total int
	pos   int // next record index
	buf   []byte
}

// openChampSim sizes the stream from the file length (the format has no
// header).
func openChampSim(f *os.File, size int64) (Source, error) {
	if size%champsimRecSize != 0 {
		return nil, fmt.Errorf("champsim trace size %d not a multiple of %d-byte records", size, champsimRecSize)
	}
	total, err := checkCount(uint64(size/champsimRecSize), "champsim count")
	if err != nil {
		return nil, err
	}
	return &champsimSource{f: f, total: total}, nil
}

// Next implements Source. It reads one record past the requested range when
// available so taken-branch targets resolve to the successor ip.
func (s *champsimSource) Next(dst []Inst) (int, error) {
	if s.pos >= s.total {
		return 0, io.EOF
	}
	n := len(dst)
	if left := s.total - s.pos; n > left {
		n = left
	}
	read := n
	if s.pos+n < s.total {
		read = n + 1 // lookahead for the last decoded record's target
	}
	need := read * champsimRecSize
	if cap(s.buf) < need {
		s.buf = make([]byte, need)
	}
	b := s.buf[:need]
	if _, err := s.f.ReadAt(b, int64(s.pos)*champsimRecSize); err != nil {
		return 0, fmt.Errorf("trace: champsim read at record %d: %w", s.pos, err)
	}
	for i := 0; i < n; i++ {
		var nextIP uint64
		if i+1 < read {
			nextIP = binary.LittleEndian.Uint64(b[(i+1)*champsimRecSize:])
		}
		dst[i] = decodeChampSim(b[i*champsimRecSize:], nextIP)
	}
	s.pos += n
	return n, nil
}

// decodeChampSim maps one external record onto the internal Inst model.
func decodeChampSim(rec []byte, nextIP uint64) Inst {
	ip := binary.LittleEndian.Uint64(rec[0:])
	storeAddr := binary.LittleEndian.Uint64(rec[16:]) // dst_mem[0]
	loadAddr := binary.LittleEndian.Uint64(rec[32:])  // src_mem[0]
	in := Inst{
		PC:   ip,
		Dst:  rec[10] % NumRegs,
		Src1: rec[12] % NumRegs,
		Src2: rec[13] % NumRegs,
	}
	switch {
	case rec[8] != 0: // is_branch
		in.Class = ClassBranch
		in.Taken = rec[9] != 0
		if in.Taken && nextIP != 0 {
			in.Target = nextIP
		} else {
			in.Target = ip + 4
		}
	case loadAddr != 0:
		in.Class = ClassLoad
		in.Addr = loadAddr
	case storeAddr != 0:
		in.Class = ClassStore
		in.Addr = storeAddr
	default:
		in.Class = ClassALU
	}
	return in
}

// Reset implements Source.
func (s *champsimSource) Reset() error { s.pos = 0; return nil }

// Len implements Source.
func (s *champsimSource) Len() int { return s.total }

// Close releases the file.
func (s *champsimSource) Close() error { return s.f.Close() }
