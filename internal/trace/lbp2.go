package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
)

// LBP2 is the compact on-disk trace format: delta-encoded PCs, varint
// operands, chunked framing with a per-chunk CRC-32C, and a seekable chunk
// index so both buffered-file and mmap readers can ingest multi-million-
// instruction traces at fixed memory. It reuses the CRC-32C (Castagnoli)
// framing discipline of the service journals (internal/service.EncodeFrame):
// a torn or corrupted chunk is detected before any of its records are
// trusted. DESIGN.md §16 specifies the wire format.
//
// Layout:
//
//	header  (16 B)  magic "LBP2" | version | chunkLen | reserved   (u32 LE each)
//	chunk*          chunk header (12 B: payloadLen | records | crc32c) + payload
//	end marker (12 B)  payloadLen = 0xFFFFFFFF, records = 0, crc = 0
//	index           chunkCount × (offset u64 | records u32 | reserved u32)
//	footer  (32 B)  indexOff u64 | total u64 | chunkCount u32 | indexCRC u32 |
//	                reserved u32 | magic "2PBL" u32
//
// Each chunk is independently decodable (delta state resets per chunk), which
// is what makes the index seekable and the mmap reader trivially parallel-
// safe across chunks. Per record:
//
//	flags   1 B   class (bits 0-2) | taken (bit 3) | no-regs (bit 4); bits 5-7 zero
//	dPC     uvarint, zigzag(PC - prevPC)
//	regs    3 B   Dst, Src1, Src2 — omitted when the no-regs flag is set
//	target  uvarint, zigzag(Target - PC)     — branches only
//	dAddr   uvarint, zigzag(Addr - prevAddr) — loads and stores only

const (
	lbp2Magic       = uint32(0x4c425032) // "LBP2" (matches LBP1's spelling scheme)
	lbp2FooterMagic = uint32(0x32504250) // "PBP2" reversed marker for tail sniffing
	lbp2Version     = uint32(1)

	lbp2HeaderSize  = 16
	lbp2ChunkHdr    = 12
	lbp2IndexEntry  = 16
	lbp2FooterSize  = 32
	lbp2EndMarker   = uint32(0xFFFFFFFF)
	lbp2MaxRecBytes = 1 + binary.MaxVarintLen64 + 3 + 2*binary.MaxVarintLen64

	// DefaultChunkLen is the records-per-chunk default: 64 Ki instructions
	// (~2 MiB decoded) balances seek granularity against framing overhead.
	DefaultChunkLen = 1 << 16
	// maxChunkLen bounds what the decoder accepts, so a corrupt header can
	// never size a pathological allocation.
	maxChunkLen = 1 << 22

	flagTakenBit  = 1 << 3
	flagNoRegsBit = 1 << 4
	flagReserved  = 0xE0
)

// castagnoli is the CRC-32C table shared by every chunk and the index
// (the same polynomial the service journals frame with).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// zigzag maps a signed delta to an unsigned varint-friendly value.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendChunk delta+varint encodes recs onto buf (delta state starts fresh:
// chunks must be independently decodable for the seekable index).
func appendChunk(buf []byte, recs []Inst) []byte {
	var prevPC, prevAddr uint64
	var tmp [binary.MaxVarintLen64]byte
	putVar := func(u uint64) {
		n := binary.PutUvarint(tmp[:], u)
		buf = append(buf, tmp[:n]...)
	}
	for i := range recs {
		in := &recs[i]
		flags := byte(in.Class)
		if in.Taken {
			flags |= flagTakenBit
		}
		noRegs := in.Dst == 0 && in.Src1 == 0 && in.Src2 == 0
		if noRegs {
			flags |= flagNoRegsBit
		}
		buf = append(buf, flags)
		putVar(zigzag(int64(in.PC - prevPC)))
		prevPC = in.PC
		if !noRegs {
			buf = append(buf, in.Dst, in.Src1, in.Src2)
		}
		if in.Class == ClassBranch {
			putVar(zigzag(int64(in.Target - in.PC)))
		}
		if in.Class == ClassLoad || in.Class == ClassStore {
			putVar(zigzag(int64(in.Addr - prevAddr)))
			prevAddr = in.Addr
		}
	}
	return buf
}

// decodeChunk decodes exactly records instructions from payload into
// dst[:records]. Every branch is bounds-checked: a corrupt payload yields an
// error, never a panic or an out-of-range Class.
func decodeChunk(dst []Inst, payload []byte, records int) error {
	var prevPC, prevAddr uint64
	pos := 0
	getVar := func() (uint64, bool) {
		u, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return u, true
	}
	for i := 0; i < records; i++ {
		if pos >= len(payload) {
			return fmt.Errorf("trace: lbp2 chunk truncated at record %d/%d", i, records)
		}
		flags := payload[pos]
		pos++
		if flags&flagReserved != 0 {
			return fmt.Errorf("trace: lbp2 record %d: reserved flag bits %#x set", i, flags&flagReserved)
		}
		class := Class(flags & 0x7)
		if class >= numClasses {
			return fmt.Errorf("trace: lbp2 record %d: bad class %d", i, class)
		}
		dpc, ok := getVar()
		if !ok {
			return fmt.Errorf("trace: lbp2 record %d: bad PC varint", i)
		}
		in := &dst[i]
		*in = Inst{Class: class, Taken: flags&flagTakenBit != 0}
		in.PC = prevPC + uint64(unzigzag(dpc))
		prevPC = in.PC
		if flags&flagNoRegsBit == 0 {
			if pos+3 > len(payload) {
				return fmt.Errorf("trace: lbp2 record %d: truncated register bytes", i)
			}
			in.Dst, in.Src1, in.Src2 = payload[pos], payload[pos+1], payload[pos+2]
			pos += 3
			if in.Dst >= NumRegs || in.Src1 >= NumRegs || in.Src2 >= NumRegs {
				return fmt.Errorf("trace: lbp2 record %d: register out of range (%d,%d,%d)",
					i, in.Dst, in.Src1, in.Src2)
			}
		}
		if class == ClassBranch {
			dt, ok := getVar()
			if !ok {
				return fmt.Errorf("trace: lbp2 record %d: bad target varint", i)
			}
			in.Target = in.PC + uint64(unzigzag(dt))
		}
		if class == ClassLoad || class == ClassStore {
			da, ok := getVar()
			if !ok {
				return fmt.Errorf("trace: lbp2 record %d: bad address varint", i)
			}
			in.Addr = prevAddr + uint64(unzigzag(da))
			prevAddr = in.Addr
		}
	}
	if pos != len(payload) {
		return fmt.Errorf("trace: lbp2 chunk has %d trailing bytes after %d records", len(payload)-pos, records)
	}
	return nil
}

// chunkIx locates one chunk: the file offset of its 12-byte header and its
// record count.
type chunkIx struct {
	off     int64
	records int
}

// LBP2Writer streams instructions into the LBP2 format: Append any number of
// times, then Close to emit the end marker, the chunk index and the footer.
// Memory stays fixed at one chunk regardless of trace length.
type LBP2Writer struct {
	w        *bufio.Writer
	off      int64
	chunkLen int
	pending  []Inst
	buf      []byte
	index    []chunkIx
	total    uint64
	closed   bool
	err      error
}

// NewLBP2Writer starts an LBP2 stream on w. chunkLen <= 0 selects
// DefaultChunkLen.
func NewLBP2Writer(w io.Writer, chunkLen int) (*LBP2Writer, error) {
	if chunkLen <= 0 {
		chunkLen = DefaultChunkLen
	}
	if chunkLen > maxChunkLen {
		return nil, fmt.Errorf("trace: lbp2 chunk length %d exceeds the %d cap", chunkLen, maxChunkLen)
	}
	lw := &LBP2Writer{
		w:        bufio.NewWriterSize(w, 1<<16),
		chunkLen: chunkLen,
		pending:  make([]Inst, 0, chunkLen),
	}
	var hdr [lbp2HeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], lbp2Magic)
	binary.LittleEndian.PutUint32(hdr[4:], lbp2Version)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(chunkLen))
	if err := lw.write(hdr[:]); err != nil {
		return nil, err
	}
	return lw, nil
}

func (lw *LBP2Writer) write(b []byte) error {
	if lw.err != nil {
		return lw.err
	}
	n, err := lw.w.Write(b)
	lw.off += int64(n)
	if err != nil {
		lw.err = fmt.Errorf("trace: lbp2 write: %w", err)
	}
	return lw.err
}

// Append adds instructions to the stream, flushing full chunks as they fill.
func (lw *LBP2Writer) Append(tr []Inst) error {
	if lw.closed {
		return errors.New("trace: lbp2 writer already closed")
	}
	for len(tr) > 0 {
		take := lw.chunkLen - len(lw.pending)
		if take > len(tr) {
			take = len(tr)
		}
		lw.pending = append(lw.pending, tr[:take]...)
		tr = tr[take:]
		if len(lw.pending) == lw.chunkLen {
			if err := lw.flushChunk(); err != nil {
				return err
			}
		}
	}
	return lw.err
}

// flushChunk encodes and frames the pending records.
func (lw *LBP2Writer) flushChunk() error {
	if len(lw.pending) == 0 {
		return lw.err
	}
	lw.buf = appendChunk(lw.buf[:0], lw.pending)
	var hdr [lbp2ChunkHdr]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(lw.buf)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(lw.pending)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(lw.buf, castagnoli))
	lw.index = append(lw.index, chunkIx{off: lw.off, records: len(lw.pending)})
	if err := lw.write(hdr[:]); err != nil {
		return err
	}
	if err := lw.write(lw.buf); err != nil {
		return err
	}
	lw.total += uint64(len(lw.pending))
	lw.pending = lw.pending[:0]
	return nil
}

// Close flushes the final partial chunk and writes the end marker, index and
// footer. The writer is unusable afterwards.
func (lw *LBP2Writer) Close() error {
	if lw.closed {
		return lw.err
	}
	lw.closed = true
	if err := lw.flushChunk(); err != nil {
		return err
	}
	var end [lbp2ChunkHdr]byte
	binary.LittleEndian.PutUint32(end[0:], lbp2EndMarker)
	if err := lw.write(end[:]); err != nil {
		return err
	}
	indexOff := lw.off
	ix := make([]byte, 0, len(lw.index)*lbp2IndexEntry)
	var ent [lbp2IndexEntry]byte
	for _, c := range lw.index {
		binary.LittleEndian.PutUint64(ent[0:], uint64(c.off))
		binary.LittleEndian.PutUint32(ent[8:], uint32(c.records))
		binary.LittleEndian.PutUint32(ent[12:], 0)
		ix = append(ix, ent[:]...)
	}
	if err := lw.write(ix); err != nil {
		return err
	}
	var foot [lbp2FooterSize]byte
	binary.LittleEndian.PutUint64(foot[0:], uint64(indexOff))
	binary.LittleEndian.PutUint64(foot[8:], lw.total)
	binary.LittleEndian.PutUint32(foot[16:], uint32(len(lw.index)))
	binary.LittleEndian.PutUint32(foot[20:], crc32.Checksum(ix, castagnoli))
	binary.LittleEndian.PutUint32(foot[28:], lbp2FooterMagic)
	if err := lw.write(foot[:]); err != nil {
		return err
	}
	if err := lw.w.Flush(); err != nil && lw.err == nil {
		lw.err = fmt.Errorf("trace: lbp2 flush: %w", err)
	}
	return lw.err
}

// WriteTraceLBP2 serializes tr to w in the LBP2 format (the streaming
// LBP2Writer with one Append).
func WriteTraceLBP2(w io.Writer, tr []Inst) error {
	lw, err := NewLBP2Writer(w, 0)
	if err != nil {
		return err
	}
	if err := lw.Append(tr); err != nil {
		return err
	}
	return lw.Close()
}

// ReadTraceLBP2 decodes a whole LBP2 stream from r into memory (conversion
// tooling; streaming consumers use OpenSource). It needs no seeking: chunks
// are read sequentially until the end marker.
func ReadTraceLBP2(r io.Reader) ([]Inst, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	chunkLen, err := readLBP2Header(br)
	if err != nil {
		return nil, err
	}
	var out []Inst
	var payload []byte
	var chunk []Inst
	for {
		var hdr [lbp2ChunkHdr]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, fmt.Errorf("trace: lbp2 chunk header: %w", err)
		}
		plen := binary.LittleEndian.Uint32(hdr[0:])
		if plen == lbp2EndMarker {
			return out, nil
		}
		records := int(binary.LittleEndian.Uint32(hdr[4:]))
		if err := checkChunkHeader(plen, records, chunkLen); err != nil {
			return nil, err
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("trace: lbp2 chunk payload: %w", err)
		}
		if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(hdr[8:]); got != want {
			return nil, fmt.Errorf("trace: lbp2 chunk CRC mismatch (got %#x, want %#x)", got, want)
		}
		if cap(chunk) < records {
			chunk = make([]Inst, records)
		}
		chunk = chunk[:records]
		if err := decodeChunk(chunk, payload, records); err != nil {
			return nil, err
		}
		out = append(out, chunk...)
	}
}

// readLBP2Header validates the 16-byte stream header and returns chunkLen.
func readLBP2Header(r io.Reader) (int, error) {
	var hdr [lbp2HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("trace: lbp2 header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != lbp2Magic {
		return 0, errors.New("trace: bad magic (not an LBP2 trace)")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != lbp2Version {
		return 0, fmt.Errorf("trace: unsupported LBP2 version %d", v)
	}
	chunkLen := int(binary.LittleEndian.Uint32(hdr[8:]))
	if chunkLen <= 0 || chunkLen > maxChunkLen {
		return 0, fmt.Errorf("trace: lbp2 chunk length %d out of range", chunkLen)
	}
	return chunkLen, nil
}

// checkChunkHeader bounds a chunk's payload length and record count before
// anything is sized from them.
func checkChunkHeader(plen uint32, records, chunkLen int) error {
	if records <= 0 || records > chunkLen {
		return fmt.Errorf("trace: lbp2 chunk record count %d out of range (chunkLen %d)", records, chunkLen)
	}
	if int64(plen) > int64(records)*lbp2MaxRecBytes {
		return fmt.Errorf("trace: lbp2 chunk payload %d bytes exceeds %d records' maximum", plen, records)
	}
	if plen == 0 {
		return errors.New("trace: lbp2 empty chunk payload")
	}
	return nil
}

// lbp2Layout is the parsed index of a seekable LBP2 file: everything a
// random-access reader needs besides the chunk bytes themselves.
type lbp2Layout struct {
	chunkLen int
	total    int
	index    []chunkIx
}

// parseLBP2Layout reads the header, footer and index via ra. size is the
// total file size.
func parseLBP2Layout(ra io.ReaderAt, size int64) (*lbp2Layout, error) {
	var hdr [lbp2HeaderSize]byte
	if _, err := ra.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("trace: lbp2 header: %w", err)
	}
	chunkLen, err := readLBP2Header(bytesReader(hdr[:]))
	if err != nil {
		return nil, err
	}
	if size < lbp2HeaderSize+lbp2ChunkHdr+lbp2FooterSize {
		return nil, errors.New("trace: lbp2 file too short for header, end marker and footer")
	}
	var foot [lbp2FooterSize]byte
	if _, err := ra.ReadAt(foot[:], size-lbp2FooterSize); err != nil {
		return nil, fmt.Errorf("trace: lbp2 footer: %w", err)
	}
	if binary.LittleEndian.Uint32(foot[28:]) != lbp2FooterMagic {
		return nil, errors.New("trace: lbp2 footer magic missing (truncated or torn file)")
	}
	indexOff := int64(binary.LittleEndian.Uint64(foot[0:]))
	total, err := checkCount(binary.LittleEndian.Uint64(foot[8:]), "lbp2 total")
	if err != nil {
		return nil, err
	}
	chunks := int(binary.LittleEndian.Uint32(foot[16:]))
	ixBytes := int64(chunks) * lbp2IndexEntry
	if indexOff < lbp2HeaderSize || indexOff+ixBytes != size-lbp2FooterSize {
		return nil, fmt.Errorf("trace: lbp2 index geometry invalid (off %d, %d chunks, size %d)", indexOff, chunks, size)
	}
	ix := make([]byte, ixBytes)
	if _, err := ra.ReadAt(ix, indexOff); err != nil {
		return nil, fmt.Errorf("trace: lbp2 index: %w", err)
	}
	if got, want := crc32.Checksum(ix, castagnoli), binary.LittleEndian.Uint32(foot[20:]); got != want {
		return nil, fmt.Errorf("trace: lbp2 index CRC mismatch (got %#x, want %#x)", got, want)
	}
	l := &lbp2Layout{chunkLen: chunkLen, total: total, index: make([]chunkIx, chunks)}
	sum := 0
	for i := range l.index {
		off := int64(binary.LittleEndian.Uint64(ix[i*lbp2IndexEntry:]))
		records := int(binary.LittleEndian.Uint32(ix[i*lbp2IndexEntry+8:]))
		if off < lbp2HeaderSize || off >= indexOff || records <= 0 || records > chunkLen {
			return nil, fmt.Errorf("trace: lbp2 index entry %d invalid (off %d, %d records)", i, off, records)
		}
		l.index[i] = chunkIx{off: off, records: records}
		sum += records
	}
	if sum != total {
		return nil, fmt.Errorf("trace: lbp2 index records sum %d != footer total %d", sum, total)
	}
	return l, nil
}

// chunkLoader fetches and verifies one chunk's decoded records.
type chunkLoader interface {
	// load decodes chunk k into dst[:records] and returns the record count.
	load(k int, dst []Inst) (int, error)
	io.Closer
}

// lbp2Source replays a seekable LBP2 file chunk by chunk at fixed memory: one
// decoded chunk buffer regardless of trace length. It backs both the
// buffered-file and the mmap readers (they differ only in the chunkLoader).
type lbp2Source struct {
	layout *lbp2Layout
	loader chunkLoader
	chunk  []Inst // decoded records of chunk cur
	cur    int    // next chunk to load
	pos    int    // read position within chunk
	n      int    // live records in chunk
}

func newLBP2Source(layout *lbp2Layout, loader chunkLoader) *lbp2Source {
	return &lbp2Source{
		layout: layout,
		loader: loader,
		chunk:  make([]Inst, layout.chunkLen),
	}
}

// Next implements Source.
func (s *lbp2Source) Next(dst []Inst) (int, error) {
	filled := 0
	for filled < len(dst) {
		if s.pos == s.n {
			if s.cur >= len(s.layout.index) {
				if filled > 0 {
					return filled, nil
				}
				return 0, io.EOF
			}
			n, err := s.loader.load(s.cur, s.chunk)
			if err != nil {
				return 0, err
			}
			s.cur++
			s.pos, s.n = 0, n
		}
		c := copy(dst[filled:], s.chunk[s.pos:s.n])
		filled += c
		s.pos += c
	}
	return filled, nil
}

// Reset implements Source.
func (s *lbp2Source) Reset() error {
	s.cur, s.pos, s.n = 0, 0, 0
	return nil
}

// Len implements Source.
func (s *lbp2Source) Len() int { return s.layout.total }

// Close releases the underlying file or mapping.
func (s *lbp2Source) Close() error { return s.loader.Close() }

// fileChunks loads chunks with positioned reads against an open file.
type fileChunks struct {
	ra      readAtCloser
	layout  *lbp2Layout
	hdr     [lbp2ChunkHdr]byte
	payload []byte
}

// readAtCloser is the file-like dependency of fileChunks (os.File in
// production, anything positioned-readable in tests).
type readAtCloser interface {
	io.ReaderAt
	io.Closer
}

func (fc *fileChunks) load(k int, dst []Inst) (int, error) {
	c := fc.layout.index[k]
	if _, err := fc.ra.ReadAt(fc.hdr[:], c.off); err != nil {
		return 0, fmt.Errorf("trace: lbp2 chunk %d header: %w", k, err)
	}
	plen := binary.LittleEndian.Uint32(fc.hdr[0:])
	records := int(binary.LittleEndian.Uint32(fc.hdr[4:]))
	if err := checkChunkHeader(plen, records, fc.layout.chunkLen); err != nil {
		return 0, err
	}
	if records != c.records {
		return 0, fmt.Errorf("trace: lbp2 chunk %d: header records %d != index records %d", k, records, c.records)
	}
	if cap(fc.payload) < int(plen) {
		fc.payload = make([]byte, plen)
	}
	fc.payload = fc.payload[:plen]
	if _, err := fc.ra.ReadAt(fc.payload, c.off+lbp2ChunkHdr); err != nil {
		return 0, fmt.Errorf("trace: lbp2 chunk %d payload: %w", k, err)
	}
	if got, want := crc32.Checksum(fc.payload, castagnoli), binary.LittleEndian.Uint32(fc.hdr[8:]); got != want {
		return 0, fmt.Errorf("trace: lbp2 chunk %d CRC mismatch (got %#x, want %#x)", k, got, want)
	}
	if err := decodeChunk(dst[:records], fc.payload, records); err != nil {
		return 0, err
	}
	return records, nil
}

func (fc *fileChunks) Close() error { return fc.ra.Close() }

// mmapChunks loads chunks by slicing a read-only memory mapping: ingestion
// with zero read syscalls after open.
type mmapChunks struct {
	data   []byte
	layout *lbp2Layout
	unmap  func() error
}

func (mc *mmapChunks) load(k int, dst []Inst) (int, error) {
	c := mc.layout.index[k]
	if c.off+lbp2ChunkHdr > int64(len(mc.data)) {
		return 0, fmt.Errorf("trace: lbp2 chunk %d header beyond mapping", k)
	}
	hdr := mc.data[c.off:]
	plen := binary.LittleEndian.Uint32(hdr[0:])
	records := int(binary.LittleEndian.Uint32(hdr[4:]))
	if err := checkChunkHeader(plen, records, mc.layout.chunkLen); err != nil {
		return 0, err
	}
	if records != c.records {
		return 0, fmt.Errorf("trace: lbp2 chunk %d: header records %d != index records %d", k, records, c.records)
	}
	start := c.off + lbp2ChunkHdr
	if start+int64(plen) > int64(len(mc.data)) {
		return 0, fmt.Errorf("trace: lbp2 chunk %d payload beyond mapping", k)
	}
	payload := mc.data[start : start+int64(plen)]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(hdr[8:]); got != want {
		return 0, fmt.Errorf("trace: lbp2 chunk %d CRC mismatch (got %#x, want %#x)", k, got, want)
	}
	if err := decodeChunk(dst[:records], payload, records); err != nil {
		return 0, err
	}
	return records, nil
}

func (mc *mmapChunks) Close() error {
	if mc.unmap == nil {
		return nil
	}
	u := mc.unmap
	mc.unmap = nil
	mc.data = nil
	return u()
}

// Stats2 summarizes an LBP2 file's framing for lbptrace -stat.
type Stats2 struct {
	Records   int
	Chunks    int
	ChunkLen  int
	FileBytes int64
}

// BytesPerInst is the compression figure of merit (LBP1 is a flat 29 B/inst).
func (s Stats2) BytesPerInst() float64 {
	if s.Records == 0 {
		return 0
	}
	return float64(s.FileBytes) / float64(s.Records)
}

// String renders the stats on one line.
func (s Stats2) String() string {
	return fmt.Sprintf("lbp2: records=%d chunks=%d chunkLen=%d bytes=%d (%.2f B/inst, %.1fx vs LBP1)",
		s.Records, s.Chunks, s.ChunkLen, s.FileBytes,
		s.BytesPerInst(), float64(recordSize)/s.BytesPerInst())
}

// StatLBP2 parses just the seekable metadata of an LBP2 file.
func StatLBP2(ra io.ReaderAt, size int64) (Stats2, error) {
	layout, err := parseLBP2Layout(ra, size)
	if err != nil {
		return Stats2{}, err
	}
	return Stats2{
		Records:   layout.total,
		Chunks:    len(layout.index),
		ChunkLen:  layout.chunkLen,
		FileBytes: size,
	}, nil
}

// bytesReader adapts a small byte slice to io.Reader without importing
// bytes (kept tiny on purpose; header-sized inputs only).
type byteSliceReader struct {
	b   []byte
	pos int
}

func bytesReader(b []byte) io.Reader { return &byteSliceReader{b: b} }

func (r *byteSliceReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.pos:])
	r.pos += n
	return n, nil
}

// sizeHint estimates the encoded size of one instruction (used by tools to
// preallocate): 1 flag + dPC + regs + operand varints.
func sizeHint(in *Inst, prevPC, prevAddr uint64) int {
	n := 1 + uvarintLen(zigzag(int64(in.PC-prevPC)))
	if !(in.Dst == 0 && in.Src1 == 0 && in.Src2 == 0) {
		n += 3
	}
	if in.Class == ClassBranch {
		n += uvarintLen(zigzag(int64(in.Target - in.PC)))
	}
	if in.Class == ClassLoad || in.Class == ClassStore {
		n += uvarintLen(zigzag(int64(in.Addr - prevAddr)))
	}
	return n
}

// uvarintLen is the encoded length of u.
func uvarintLen(u uint64) int { return (bits.Len64(u|1) + 6) / 7 }
