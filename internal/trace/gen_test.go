package trace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func simpleProgram() Program {
	return Program{
		Regions: []Region{
			Loop{Site: 0, Periods: FixedPeriod(10), Body: []Region{
				Block{Site: 1, Len: 5},
			}},
			Cond{Site: 2, Outcome: &RepeatingPattern{Pattern: []bool{true, false}}, ThenLen: 3, ElseLen: 2},
			Block{Site: 3, Len: 8},
		},
	}
}

func TestGenerateLength(t *testing.T) {
	for _, n := range []int{1, 100, 12345} {
		tr := Generate(simpleProgram(), n, 1)
		if len(tr) != n {
			t.Fatalf("Generate(n=%d) returned %d instructions", n, len(tr))
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a := Generate(simpleProgram(), 5000, 7)
	b := Generate(simpleProgram(), 5000, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same program+seed produced different traces")
	}
	c := Generate(simpleProgram(), 5000, 8)
	if reflect.DeepEqual(a[:100], c[:100]) {
		t.Fatal("different seeds produced identical prefixes")
	}
}

func TestGeneratePanicsOnEmptyProgram(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty program did not panic")
		}
	}()
	Generate(Program{}, 10, 1)
}

func TestLoopBranchOutcomes(t *testing.T) {
	// A fixed loop of period P must emit P-1 taken followed by one
	// not-taken at the loop-closing PC, repeatedly.
	prog := Program{Regions: []Region{
		Loop{Site: 0, Periods: FixedPeriod(4), Body: []Region{Block{Site: 1, Len: 2}}},
	}}
	tr := Generate(prog, 2000, 3)
	pc := SitePC(0)
	var outcomes []bool
	for _, in := range tr {
		if in.IsBranch() && in.PC == pc {
			outcomes = append(outcomes, in.Taken)
		}
	}
	if len(outcomes) < 12 {
		t.Fatalf("too few loop-branch instances: %d", len(outcomes))
	}
	for i := 0; i+4 <= len(outcomes); i += 4 {
		got := outcomes[i : i+4]
		want := []bool{true, true, true, false}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("visit starting at instance %d: got %v want TTTN", i, got)
		}
	}
}

func TestLoopBranchPCStable(t *testing.T) {
	tr := Generate(simpleProgram(), 5000, 1)
	pcs := map[uint64]bool{}
	for _, in := range tr {
		if in.IsBranch() {
			pcs[in.PC] = true
		}
	}
	if len(pcs) != 2 { // loop site 0 and cond site 2
		t.Fatalf("expected 2 branch PCs, got %d", len(pcs))
	}
	if !pcs[SitePC(0)] || !pcs[SitePC(2)] {
		t.Fatalf("branch PCs not at site bases: %v", pcs)
	}
}

func TestCondEmitsThenElse(t *testing.T) {
	prog := Program{Regions: []Region{
		Cond{Site: 0, Outcome: &RepeatingPattern{Pattern: []bool{true, false}}, ThenLen: 3, ElseLen: 2},
	}}
	tr := Generate(prog, 200, 5)
	// Instruction after a not-taken cond must be the then-block
	// (pc+0x100); after a taken cond the else-block (pc+0x200).
	base := SitePC(0)
	for i, in := range tr {
		if !in.IsBranch() || i+1 >= len(tr) {
			continue
		}
		next := tr[i+1].PC
		if in.Taken && next != base+0x200 {
			t.Fatalf("taken cond followed by %#x, want else block %#x", next, base+0x200)
		}
		if !in.Taken && next != base+0x100 {
			t.Fatalf("not-taken cond followed by %#x, want then block %#x", next, base+0x100)
		}
	}
}

func TestRegistersInRange(t *testing.T) {
	tr := Generate(simpleProgram(), 10000, 2)
	for i, in := range tr {
		if int(in.Dst) >= NumRegs || int(in.Src1) >= NumRegs || int(in.Src2) >= NumRegs {
			t.Fatalf("instruction %d has out-of-range register: %+v", i, in)
		}
	}
}

func TestMemInstructionsHaveAddresses(t *testing.T) {
	tr := Generate(simpleProgram(), 10000, 2)
	for i, in := range tr {
		if in.IsMem() && in.Addr == 0 {
			t.Fatalf("memory instruction %d has zero address", i)
		}
	}
}

func TestStoresWriteNoRegister(t *testing.T) {
	tr := Generate(simpleProgram(), 20000, 2)
	for i, in := range tr {
		if in.Class == ClassStore && in.Dst != 0 {
			t.Fatalf("store %d writes register %d", i, in.Dst)
		}
	}
}

func TestIndependenceShapesOperands(t *testing.T) {
	// Higher independence must produce fewer zero-register... rather:
	// traces generated with different Independence must differ.
	p1 := simpleProgram()
	p1.Independence = 0.1
	p2 := simpleProgram()
	p2.Independence = 0.95
	a := Generate(p1, 3000, 9)
	b := Generate(p2, 3000, 9)
	diff := 0
	for i := range a {
		if a[i].Src1 != b[i].Src1 {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("Independence had no effect on operand selection")
	}
}

func TestSummarize(t *testing.T) {
	tr := Generate(simpleProgram(), 10000, 1)
	s := Summarize(tr)
	if s.Insts != 10000 {
		t.Fatalf("Insts = %d", s.Insts)
	}
	if s.Branches == 0 || s.Loads == 0 || s.Stores == 0 {
		t.Fatalf("degenerate summary: %+v", s)
	}
	if s.Taken > s.Branches {
		t.Fatalf("taken %d > branches %d", s.Taken, s.Branches)
	}
	if s.UniqueBrPC == 0 || s.UniqueBrPC > s.UniquePCs {
		t.Fatalf("bad PC counts: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	tr := Generate(simpleProgram(), 5000, 13)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("round trip mismatch")
	}
}

func TestEncodeRoundTripProperty(t *testing.T) {
	f := func(pcs []uint64, classes []uint8, takens []bool) bool {
		n := len(pcs)
		if len(classes) < n {
			n = len(classes)
		}
		if len(takens) < n {
			n = len(takens)
		}
		tr := make([]Inst, n)
		for i := 0; i < n; i++ {
			tr[i] = Inst{
				PC:    pcs[i],
				Class: Class(classes[i] % uint8(numClasses)),
				Taken: takens[i],
				Addr:  pcs[i] >> 3,
				Dst:   uint8(pcs[i] % NumRegs),
			}
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, tr); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(tr) {
			return false
		}
		for i := range tr {
			if tr[i] != got[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	var empty bytes.Buffer
	if _, err := ReadTrace(&empty); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestEmitterGlobalHistory(t *testing.T) {
	// The architectural history must reflect emitted branch outcomes
	// (low bit = most recent).
	e := &Emitter{rng: NewRNG(1), limit: 100, prof: DefaultMemProfile(), depDist: 4, indep: 0.5}
	e.EmitBranch(0x1000, true, 0)
	e.EmitBranch(0x1004, false, 0)
	e.EmitBranch(0x1008, true, 0)
	if got := e.Hist() & 0b111; got != 0b101 {
		t.Fatalf("history = %03b, want 101", got)
	}
}
