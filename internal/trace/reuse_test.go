package trace

import (
	"bytes"
	"reflect"
	"testing"
)

func reuseProgram() Program {
	return Program{Regions: []Region{
		Loop{Site: 1, Periods: FixedPeriod(9), Body: []Region{Block{Site: 2, Len: 6}}},
		Cond{Site: 3, Outcome: BiasedPattern{P: 0.7}, ThenLen: 4},
	}}
}

// TestGenerateIntoReusesBuffer checks GenerateInto writes into the provided
// chunk without reallocating and produces a stream bit-identical to
// Generate.
func TestGenerateIntoReusesBuffer(t *testing.T) {
	p := reuseProgram()
	const n = 5_000
	want := Generate(p, n, 42)

	buf := make([]Inst, 0, n+64)
	got := GenerateInto(buf, p, n, 42)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("GenerateInto stream differs from Generate")
	}
	if &got[0] != &buf[:1][0] {
		t.Fatalf("GenerateInto allocated despite sufficient capacity")
	}

	// Reuse after a different generation: contents must still be exact.
	other := GenerateInto(got, p, n, 7)
	want7 := Generate(p, n, 7)
	if !reflect.DeepEqual(other, want7) {
		t.Fatalf("GenerateInto into dirty buffer differs from fresh Generate")
	}

	// Insufficient capacity falls back to allocation, same contents.
	small := GenerateInto(make([]Inst, 0, 10), p, n, 42)
	if !reflect.DeepEqual(small, want) {
		t.Fatalf("GenerateInto with small dst differs from Generate")
	}
}

// TestReadTraceIntoReusesBuffer checks the binary decode path writes into a
// recycled chunk without reallocating.
func TestReadTraceIntoReusesBuffer(t *testing.T) {
	tr := Generate(reuseProgram(), 3_000, 11)
	var b bytes.Buffer
	if err := WriteTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	raw := b.Bytes()

	buf := make([]Inst, 0, len(tr))
	got, err := ReadTraceInto(buf, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("ReadTraceInto roundtrip differs")
	}
	if &got[0] != &buf[:1][0] {
		t.Fatalf("ReadTraceInto allocated despite sufficient capacity")
	}

	// A dirty recycled buffer must not leak stale contents.
	for i := range got {
		got[i].PC = ^uint64(0)
	}
	again, err := ReadTraceInto(got[:0], bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, tr) {
		t.Fatalf("ReadTraceInto into dirty buffer differs")
	}
}
