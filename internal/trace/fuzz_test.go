package trace

import (
	"bytes"
	"testing"
)

// FuzzReadTrace hardens the binary trace decoder against corrupt input: it
// must return an error or a valid trace, never panic.
func FuzzReadTrace(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteTrace(&seed, []Inst{{PC: 1, Class: ClassALU}, {PC: 2, Class: ClassBranch, Taken: true}})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage that is definitely not a trace"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, in := range tr {
			if in.Class >= numClasses {
				t.Fatalf("decoder produced invalid class %d", in.Class)
			}
		}
	})
}
