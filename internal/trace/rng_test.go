package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		if n == 0 {
			return true
		}
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGRangeBounds(t *testing.T) {
	f := func(seed int64, lo int16, span uint8) bool {
		l, h := int(lo), int(lo)+int(span)
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Range(l, h)
			if v < l || v > h {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGRangePanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range(5, 4) did not panic")
		}
	}()
	NewRNG(1).Range(5, 4)
}

func TestRNGFloat64Bounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v far from 0.5", mean)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", frac)
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(5)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked generators correlated")
	}
}
