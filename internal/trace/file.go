package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// OpenMode selects the ingestion backend for OpenSource.
type OpenMode int

const (
	// OpenAuto maps LBP2 files when the platform supports it and falls back
	// to positioned file reads otherwise.
	OpenAuto OpenMode = iota
	// OpenFile forces the buffered-file backend (positioned reads).
	OpenFile
	// OpenMmap forces the memory-mapped backend; it errors on platforms
	// without mmap support or formats without a seekable index.
	OpenMmap
)

// errMmapUnsupported is returned by the stub mapper on platforms without
// mmap support (see mmap_other.go).
var errMmapUnsupported = errors.New("trace: mmap not supported on this platform")

// OpenSource opens a trace file as a streaming Source, sniffing the format:
// LBP1 and LBP2 by magic, ChampSim-style external traces by extension
// (.champsim / .cst). The returned source holds an open file or mapping;
// release it with CloseSource.
func OpenSource(path string) (Source, error) { return OpenSourceMode(path, OpenAuto) }

// OpenSourceMode is OpenSource with an explicit backend choice.
func OpenSourceMode(path string, mode OpenMode) (Source, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: open %s: %w", path, err)
	}
	src, err := openSourceFile(f, mode)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", filepath.Base(path), err)
	}
	return src, nil
}

// openSourceFile sniffs f and builds the right source. On error the caller
// closes f.
func openSourceFile(f *os.File, mode OpenMode) (Source, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	var magic [4]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return nil, fmt.Errorf("read magic: %w", err)
	}
	switch binary.LittleEndian.Uint32(magic[:]) {
	case lbp2Magic:
		return openLBP2File(f, size, mode)
	case traceMagic:
		if mode == OpenMmap {
			return nil, errors.New("LBP1 has no seekable index; mmap backend requires LBP2")
		}
		return openLBP1File(f, size)
	}
	if ext := strings.ToLower(filepath.Ext(f.Name())); ext == ".champsim" || ext == ".cst" {
		if mode == OpenMmap {
			return nil, errors.New("mmap backend requires LBP2")
		}
		return openChampSim(f, size)
	}
	return nil, errors.New("unrecognized trace format (not LBP1, LBP2, or .champsim/.cst)")
}

// openLBP2File parses the seekable layout and wires the chosen chunk loader.
func openLBP2File(f *os.File, size int64, mode OpenMode) (Source, error) {
	layout, err := parseLBP2Layout(f, size)
	if err != nil {
		return nil, err
	}
	if mode == OpenAuto || mode == OpenMmap {
		data, unmap, err := mmapFile(f, size)
		if err == nil {
			// The mapping outlives the descriptor; close it now so the
			// source holds exactly one resource.
			f.Close()
			return newLBP2Source(layout, &mmapChunks{data: data, layout: layout, unmap: unmap}), nil
		}
		if mode == OpenMmap {
			return nil, err
		}
	}
	return newLBP2Source(layout, &fileChunks{ra: f, layout: layout}), nil
}

// lbp1Source streams an LBP1 file with positioned reads, decoding records
// into the caller's chunk so memory stays fixed regardless of trace length.
type lbp1Source struct {
	f     *os.File
	total int
	pos   int // next record index
	buf   []byte
}

// openLBP1File validates the LBP1 header against the file size.
func openLBP1File(f *os.File, size int64) (Source, error) {
	var hdr [12]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("lbp1 header: %w", err)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("unsupported LBP1 version %d", v)
	}
	total, err := checkCount(uint64(binary.LittleEndian.Uint32(hdr[8:])), "lbp1 count")
	if err != nil {
		return nil, err
	}
	if want := int64(len(hdr)) + int64(total)*recordSize; size < want {
		return nil, fmt.Errorf("lbp1 file truncated: %d bytes, header promises %d", size, want)
	}
	return &lbp1Source{f: f, total: total}, nil
}

// Next implements Source.
func (s *lbp1Source) Next(dst []Inst) (int, error) {
	if s.pos >= s.total {
		return 0, io.EOF
	}
	n := len(dst)
	if left := s.total - s.pos; n > left {
		n = left
	}
	need := n * recordSize
	if cap(s.buf) < need {
		s.buf = make([]byte, need)
	}
	b := s.buf[:need]
	if _, err := s.f.ReadAt(b, 12+int64(s.pos)*recordSize); err != nil {
		return 0, fmt.Errorf("trace: lbp1 read at record %d: %w", s.pos, err)
	}
	for i := 0; i < n; i++ {
		rec := b[i*recordSize:]
		if rec[24] >= byte(numClasses) {
			return 0, fmt.Errorf("trace: lbp1 record %d: bad class %d", s.pos+i, rec[24])
		}
		dst[i] = Inst{
			PC:     binary.LittleEndian.Uint64(rec[0:]),
			Addr:   binary.LittleEndian.Uint64(rec[8:]),
			Target: binary.LittleEndian.Uint64(rec[16:]),
			Class:  Class(rec[24]),
			Taken:  rec[25] != 0,
			Dst:    rec[26],
			Src1:   rec[27],
			Src2:   rec[28],
		}
	}
	s.pos += n
	return n, nil
}

// Reset implements Source.
func (s *lbp1Source) Reset() error { s.pos = 0; return nil }

// Len implements Source.
func (s *lbp1Source) Len() int { return s.total }

// Close releases the file.
func (s *lbp1Source) Close() error { return s.f.Close() }
