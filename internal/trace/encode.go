package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format: a fixed header followed by fixed-width records.
// The format exists so lbptrace can persist generated workloads and the
// simulator can replay them without regenerating.

const (
	traceMagic   = uint32(0x4c425031) // "LBP1"
	traceVersion = uint32(1)
	recordSize   = 8 + 8 + 8 + 1 + 1 + 3 // PC, Addr, Target, class, taken, regs
)

// WriteTrace serializes tr to w in the LBP1 binary format.
func WriteTrace(w io.Writer, tr []Inst) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], traceMagic)
	binary.LittleEndian.PutUint32(hdr[4:], traceVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(tr)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	var rec [recordSize]byte
	for i := range tr {
		in := &tr[i]
		binary.LittleEndian.PutUint64(rec[0:], in.PC)
		binary.LittleEndian.PutUint64(rec[8:], in.Addr)
		binary.LittleEndian.PutUint64(rec[16:], in.Target)
		rec[24] = byte(in.Class)
		if in.Taken {
			rec[25] = 1
		} else {
			rec[25] = 0
		}
		rec[26] = in.Dst
		rec[27] = in.Src1
		rec[28] = in.Src2
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadTrace deserializes a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Inst, error) { return ReadTraceInto(nil, r) }

// ReadTraceInto is ReadTrace decoding into dst's storage: when dst has
// capacity for the stored record count no allocation happens. The returned
// slice aliases dst's array when capacity sufficed.
func ReadTraceInto(dst []Inst, r io.Reader) ([]Inst, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != traceMagic {
		return nil, errors.New("trace: bad magic (not an LBP1 trace)")
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	n := int(binary.LittleEndian.Uint32(hdr[8:]))
	var tr []Inst
	if cap(dst) >= n {
		tr = dst[:n]
		clear(tr)
	} else {
		tr = make([]Inst, n)
	}
	var rec [recordSize]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: read record %d: %w", i, err)
		}
		in := &tr[i]
		in.PC = binary.LittleEndian.Uint64(rec[0:])
		in.Addr = binary.LittleEndian.Uint64(rec[8:])
		in.Target = binary.LittleEndian.Uint64(rec[16:])
		if rec[24] >= byte(numClasses) {
			return nil, fmt.Errorf("trace: record %d: bad class %d", i, rec[24])
		}
		in.Class = Class(rec[24])
		in.Taken = rec[25] != 0
		in.Dst = rec[26]
		in.Src1 = rec[27]
		in.Src2 = rec[28]
	}
	return tr, nil
}
