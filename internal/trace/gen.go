package trace

import "fmt"

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// Region is a piece of synthetic program structure. A Program is an implicit
// outer infinite loop over its regions; Emit produces the dynamic
// instructions of one traversal.
type Region interface {
	Emit(e *Emitter)
}

// Program is a synthetic program: an ordered list of regions executed
// round-robin until the requested instruction count is reached.
type Program struct {
	Regions []Region
	// MemProfile controls the memory behaviour of filler loads/stores.
	MemProfile MemProfile
	// DepDist is the typical register dependence distance (higher = more ILP).
	DepDist int
	// Independence is the probability an operand reads a long-ready value
	// (immediate, loop invariant) instead of a recent producer; higher
	// values yield more ILP. Zero selects the default of 0.75.
	Independence float64
}

// MemProfile parameterizes the address streams of loads and stores.
type MemProfile struct {
	// FootprintLog2 is log2 of the byte footprint of the random-access pool.
	FootprintLog2 int
	// StreamFrac is the fraction of accesses that walk sequential streams
	// (prefetch-friendly); the remainder are uniform over the footprint.
	StreamFrac float64
	// LoadFrac and StoreFrac are per-instruction probabilities used by
	// Block regions when choosing filler classes.
	LoadFrac, StoreFrac float64
}

// DefaultMemProfile returns a moderate memory profile: 1MB footprint,
// two-thirds streaming.
func DefaultMemProfile() MemProfile {
	return MemProfile{FootprintLog2: 19, StreamFrac: 0.80, LoadFrac: 0.25, StoreFrac: 0.10}
}

// Emitter accumulates the dynamic instruction stream while walking a
// Program. It owns PC assignment, register-dependence shaping, address
// streams, and the architectural global branch history exposed to
// CorrelatedPattern sites.
type Emitter struct {
	out     []Inst
	rng     *RNG
	limit   int
	hist    uint64 // global outcome history, low bit most recent
	prof    MemProfile
	depDist int
	indep   float64

	// register scoreboard: recent destination registers, newest last
	recentDst [16]uint8
	nRecent   int

	// streaming address state
	streamAddr [4]uint64
	streamSel  int

	nextDst uint8
}

// Done reports whether the emitter has reached its instruction budget.
func (e *Emitter) Done() bool { return len(e.out) >= e.limit }

// RNG exposes the emitter's random source to regions.
func (e *Emitter) RNG() *RNG { return e.rng }

// Hist returns the architectural global outcome history.
func (e *Emitter) Hist() uint64 { return e.hist }

func (e *Emitter) pickSrc() uint8 {
	// Half the operands read long-ready values (immediates, loop
	// invariants, stack slots); the rest read recent producers at a
	// distance shaped by DepDist. Register 0 is hardwired-zero and
	// always ready.
	if e.nRecent == 0 || e.rng.Bool(e.indep) {
		return uint8(e.rng.Intn(NumRegs))
	}
	d := e.rng.Intn(e.depDist + 1)
	if d >= e.nRecent {
		return uint8(e.rng.Intn(NumRegs))
	}
	idx := (int(e.nextDst) - 1 - d + 2*len(e.recentDst)) % len(e.recentDst)
	if idx >= e.nRecent {
		idx = e.nRecent - 1
	}
	return e.recentDst[idx]
}

func (e *Emitter) noteDst(r uint8) {
	e.recentDst[int(e.nextDst)%len(e.recentDst)] = r
	e.nextDst++
	if e.nRecent < len(e.recentDst) {
		e.nRecent++
	}
}

func (e *Emitter) address() uint64 {
	if e.rng.Float64() < e.prof.StreamFrac {
		e.streamSel = (e.streamSel + 1) % len(e.streamAddr)
		e.streamAddr[e.streamSel] += 8
		return e.streamAddr[e.streamSel]
	}
	mask := (uint64(1) << e.prof.FootprintLog2) - 1
	return (e.rng.Uint64() & mask) &^ 7
}

// EmitFiller appends one non-branch instruction of the given class.
func (e *Emitter) EmitFiller(pc uint64, class Class) {
	in := Inst{
		PC:    pc,
		Class: class,
		Dst:   uint8(1 + e.rng.Intn(NumRegs-1)),
		Src1:  e.pickSrc(),
	}
	// Many operations are unary or use an immediate second operand.
	if e.rng.Bool(0.45) {
		in.Src2 = e.pickSrc()
	}
	if class == ClassLoad || class == ClassStore {
		in.Addr = e.address()
		if class == ClassStore {
			in.Dst = 0
		}
	}
	if in.Dst != 0 {
		e.noteDst(in.Dst)
	}
	e.out = append(e.out, in)
}

// EmitBranch appends one conditional branch with the given outcome and
// updates the architectural global history. Branches usually test a freshly
// computed value (a loop counter, a loaded flag), so their source operand
// prefers recent producers — which is what delays branch resolution in the
// back end and opens the misprediction repair window the paper studies.
func (e *Emitter) EmitBranch(pc uint64, taken bool, target uint64) {
	src := e.pickRecentSrc()
	e.out = append(e.out, Inst{
		PC:     pc,
		Class:  ClassBranch,
		Taken:  taken,
		Target: target,
		Src1:   src,
	})
	e.hist = e.hist<<1 | b2u(taken)
}

// pickRecentSrc prefers a recent producer (80%) over a long-ready register.
func (e *Emitter) pickRecentSrc() uint8 {
	if e.nRecent == 0 || e.rng.Bool(0.2) {
		return uint8(e.rng.Intn(NumRegs))
	}
	d := e.rng.Intn(e.depDist + 1)
	if d >= e.nRecent {
		d = e.nRecent - 1
	}
	idx := (int(e.nextDst) - 1 - d + 2*len(e.recentDst)) % len(e.recentDst)
	if idx >= e.nRecent {
		idx = e.nRecent - 1
	}
	return e.recentDst[idx]
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Generate runs the program until n instructions have been emitted,
// returning the dynamic stream. Generation is deterministic in seed.
func Generate(p Program, n int, seed int64) []Inst {
	return GenerateInto(nil, p, n, seed)
}

// GenerateInto is Generate writing into dst's storage: when dst has capacity
// for the stream (plus emission slack) no allocation happens, so callers that
// generate many traces of similar length can recycle one flat chunk. The
// returned slice aliases dst's array when capacity sufficed; the produced
// stream is bit-identical to Generate's regardless.
func GenerateInto(dst []Inst, p Program, n int, seed int64) []Inst {
	if n <= 0 {
		return nil
	}
	prof := p.MemProfile
	if prof.FootprintLog2 == 0 {
		prof = DefaultMemProfile()
	}
	dep := p.DepDist
	if dep <= 0 {
		dep = 4
	}
	indep := p.Independence
	if indep == 0 {
		indep = 0.75
	}
	// Regions emit past the budget before Done is checked; keep the same
	// slack Generate always used so the tail never reallocates.
	out := dst[:0]
	if cap(out) < n+64 {
		out = make([]Inst, 0, n+64)
	}
	e := &Emitter{
		out:     out,
		rng:     NewRNG(seed),
		limit:   n,
		prof:    prof,
		depDist: dep,
		indep:   indep,
	}
	for i := range e.streamAddr {
		// Stagger stream bases by a prime number of cache lines so
		// lockstep streams never collide in the same set.
		e.streamAddr[i] = uint64(0x1000_0000)*uint64(i+1) + uint64(i)*13*64
	}
	if len(p.Regions) == 0 {
		panic("trace: Generate on program with no regions")
	}
	for !e.Done() {
		for _, r := range p.Regions {
			r.Emit(e)
			if e.Done() {
				break
			}
		}
	}
	return e.out[:n]
}

// pcBase spreads region site PCs so that set-indexed predictor structures
// see a realistic distribution. Each site id owns a distinct 1KB PC region;
// the site's branch (if any) sits at offset 0 and filler code above it.
func pcBase(site int) uint64 { return 0x400000 + uint64(site)*0x400 }

// SitePC returns the branch PC of a site id (analysis tooling).
func SitePC(site int) uint64 { return pcBase(site) }

// Block is straight-line filler code of Len instructions using the program's
// memory profile for class selection. Every Block has a stable set of PCs.
type Block struct {
	Site int
	Len  int
}

// Emit implements Region.
func (b Block) Emit(e *Emitter) {
	emitBlockAt(e, pcBase(b.Site)+0x40, b.Len)
}

func emitBlockAt(e *Emitter, base uint64, n int) {
	for i := 0; i < n; i++ {
		pc := base + uint64(i)*4
		var class Class
		switch v := e.rng.Float64(); {
		case v < e.prof.LoadFrac:
			class = ClassLoad
		case v < e.prof.LoadFrac+e.prof.StoreFrac:
			class = ClassStore
		case v < e.prof.LoadFrac+e.prof.StoreFrac+0.08:
			class = ClassMul
		case v < e.prof.LoadFrac+e.prof.StoreFrac+0.16:
			class = ClassFP
		default:
			class = ClassALU
		}
		e.EmitFiller(pc, class)
	}
}

// Loop is a counted loop closed by a backward conditional branch at a single
// PC: taken to iterate, not-taken to exit (the TTT...N shape). Body regions
// run once per iteration. Periods produces the per-visit trip count.
type Loop struct {
	Site    int
	Periods PeriodGen
	Body    []Region
}

// Emit implements Region. One Emit is one complete visit to the loop.
func (l Loop) Emit(e *Emitter) {
	iters := l.Periods.Next(e.rng)
	pc := pcBase(l.Site)
	for i := 0; i < iters; i++ {
		for _, r := range l.Body {
			r.Emit(e)
			if e.Done() {
				return
			}
		}
		// Backward branch: taken while iterating, not-taken on exit.
		e.EmitBranch(pc, i < iters-1, pc-uint64(8))
		if e.Done() {
			return
		}
	}
}

// Cond is an if-then-else site: a forward branch whose outcome comes from a
// PatternGen, guarding a then-block (executed on not-taken, i.e. fallthrough)
// with an optional else-block.
type Cond struct {
	Site    int
	Outcome PatternGen
	ThenLen int
	ElseLen int
}

// Emit implements Region.
func (c Cond) Emit(e *Emitter) {
	pc := pcBase(c.Site)
	taken := c.Outcome.Next(e.rng, e.hist)
	e.EmitBranch(pc, taken, pc+0x200)
	if taken {
		if c.ElseLen > 0 {
			emitBlockAt(e, pc+0x200, c.ElseLen)
		}
	} else if c.ThenLen > 0 {
		emitBlockAt(e, pc+0x100, c.ThenLen)
	}
}
