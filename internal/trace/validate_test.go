package trace

import (
	"strings"
	"testing"
)

func validStream(n int) []Inst {
	tr := make([]Inst, n)
	for i := range tr {
		tr[i] = Inst{PC: 0x400 + uint64(4*i), Class: ClassALU, Dst: 1, Src1: 2, Src2: 3}
	}
	return tr
}

func TestValidateAcceptsCleanStream(t *testing.T) {
	if err := Validate(validStream(100)); err != nil {
		t.Fatalf("clean stream rejected: %v", err)
	}
}

func TestValidateRejectsEmpty(t *testing.T) {
	if err := Validate(nil); err == nil {
		t.Fatal("empty stream validated")
	}
}

func TestValidateFieldErrors(t *testing.T) {
	tr := validStream(10)
	tr[3].Class = Class(200)
	tr[5].Dst = NumRegs
	tr[7] = Inst{PC: 0, Class: ClassBranch}
	err := Validate(tr)
	if err == nil {
		t.Fatal("corrupt stream validated")
	}
	for _, want := range []string{"inst 3 Class", "inst 5 Dst", "inst 7 PC"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error does not report %q: %v", want, err)
		}
	}
}

func TestValidateCapsErrorCount(t *testing.T) {
	tr := validStream(1000)
	for i := range tr {
		tr[i].Src1 = NumRegs // every instruction is bad
	}
	err := Validate(tr)
	if err == nil {
		t.Fatal("corrupt stream validated")
	}
	if n := strings.Count(err.Error(), "\n"); n > maxValidateErrors+1 {
		t.Fatalf("error not capped: %d lines", n)
	}
	if !strings.Contains(err.Error(), "stopping after") {
		t.Fatalf("capped error does not say it stopped early: %v", err)
	}
}
