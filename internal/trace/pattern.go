package trace

// PeriodGen produces the number of iterations for successive visits to a
// loop. Implementations capture the exit-iteration entropy spectrum the
// paper's workloads span: fixed trip counts (ideal for a loop predictor),
// cyclic and mildly noisy counts (partially capturable), and high-entropy
// counts (uncapturable; these exercise PT confidence filtering).
type PeriodGen interface {
	// Next returns the iteration count for the next visit (>= 1).
	Next(r *RNG) int
	// Describe returns a short human-readable description.
	Describe() string
}

// FixedPeriod yields the same trip count on every visit.
type FixedPeriod int

// Next implements PeriodGen.
func (p FixedPeriod) Next(*RNG) int { return int(p) }

// Describe implements PeriodGen.
func (p FixedPeriod) Describe() string { return sprintf("fixed(%d)", int(p)) }

// CyclePeriod cycles deterministically through a list of trip counts.
type CyclePeriod struct {
	Counts []int
	pos    int
}

// Next implements PeriodGen.
func (p *CyclePeriod) Next(*RNG) int {
	c := p.Counts[p.pos%len(p.Counts)]
	p.pos++
	return c
}

// Describe implements PeriodGen.
func (p *CyclePeriod) Describe() string { return sprintf("cycle(%v)", p.Counts) }

// NoisyPeriod yields Base, occasionally (probability Prob) perturbed by up to
// ±Jitter. Low noise lets a loop predictor build confidence and still win;
// high noise defeats it.
type NoisyPeriod struct {
	Base   int
	Jitter int
	Prob   float64
}

// Next implements PeriodGen.
func (p NoisyPeriod) Next(r *RNG) int {
	n := p.Base
	if p.Jitter > 0 && r.Bool(p.Prob) {
		n += r.Range(-p.Jitter, p.Jitter)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Describe implements PeriodGen.
func (p NoisyPeriod) Describe() string {
	return sprintf("noisy(%d±%d@%.2f)", p.Base, p.Jitter, p.Prob)
}

// EntropicPeriod yields a uniform trip count in [Min, Max]: data-dependent
// exits no predictor captures (the "data entropy" losses of paper §2.7).
type EntropicPeriod struct {
	Min, Max int
}

// Next implements PeriodGen.
func (p EntropicPeriod) Next(r *RNG) int { return r.Range(p.Min, p.Max) }

// Describe implements PeriodGen.
func (p EntropicPeriod) Describe() string { return sprintf("entropic[%d,%d]", p.Min, p.Max) }

// TrianglePeriod sweeps the trip count linearly from Min to Max and back —
// the shape of triangular nested loops (for i { for j < i {...} }), a
// classic case where the exit count changes every visit in a way neither a
// loop predictor nor TAGE captures, but whose *average* behaviour still
// trains confidence-gated predictors to stay silent.
type TrianglePeriod struct {
	Min, Max int
	cur, dir int
}

// Next implements PeriodGen.
func (p *TrianglePeriod) Next(*RNG) int {
	if p.cur == 0 {
		p.cur, p.dir = p.Min, 1
	}
	v := p.cur
	p.cur += p.dir
	if p.cur >= p.Max {
		p.cur, p.dir = p.Max, -1
	} else if p.cur <= p.Min {
		p.cur, p.dir = p.Min, 1
	}
	return v
}

// Describe implements PeriodGen.
func (p *TrianglePeriod) Describe() string { return sprintf("triangle[%d,%d]", p.Min, p.Max) }

// PatternGen produces outcomes for an if-then-else branch site.
type PatternGen interface {
	// Next returns the next outcome. hist is the recent global outcome
	// history (low bit = most recent), available to correlated sites.
	Next(r *RNG, hist uint64) bool
	Describe() string
}

// RepeatingPattern replays a fixed T/N sequence: the local-pattern branches
// two-level predictors excel at.
type RepeatingPattern struct {
	Pattern []bool
	pos     int
}

// Next implements PatternGen.
func (p *RepeatingPattern) Next(*RNG, uint64) bool {
	v := p.Pattern[p.pos%len(p.Pattern)]
	p.pos++
	return v
}

// Describe implements PatternGen.
func (p *RepeatingPattern) Describe() string {
	s := make([]byte, len(p.Pattern))
	for i, b := range p.Pattern {
		if b {
			s[i] = 'T'
		} else {
			s[i] = 'N'
		}
	}
	return "repeat(" + string(s) + ")"
}

// PeriodicPattern is taken exactly once every Period executions (the
// NNN...T "forward conditional" shape CBPw-Loop also covers), with optional
// period noise mirroring NoisyPeriod.
type PeriodicPattern struct {
	Period int
	Jitter int
	Prob   float64
	left   int
	init   bool
}

// Next implements PatternGen.
func (p *PeriodicPattern) Next(r *RNG, _ uint64) bool {
	if !p.init {
		p.left = p.nextPeriod(r)
		p.init = true
	}
	p.left--
	if p.left <= 0 {
		p.left = p.nextPeriod(r)
		return true
	}
	return false
}

func (p *PeriodicPattern) nextPeriod(r *RNG) int {
	n := p.Period
	if p.Jitter > 0 && r.Bool(p.Prob) {
		n += r.Range(-p.Jitter, p.Jitter)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Describe implements PatternGen.
func (p *PeriodicPattern) Describe() string { return sprintf("periodic(%d)", p.Period) }

// BiasedPattern is taken with fixed probability P, independent of history.
// These branches create baseline MPKI and BHT pollution without giving the
// local predictor anything to capture.
type BiasedPattern struct {
	P float64
}

// Next implements PatternGen.
func (p BiasedPattern) Next(r *RNG, _ uint64) bool { return r.Bool(p.P) }

// Describe implements PatternGen.
func (p BiasedPattern) Describe() string { return sprintf("biased(%.2f)", p.P) }

// CorrelatedPattern derives the outcome from the recent global history
// (parity of selected bits), optionally flipped with noise probability.
// TAGE captures these; a local predictor does not.
type CorrelatedPattern struct {
	Mask  uint64
	Noise float64
}

// Next implements PatternGen.
func (p CorrelatedPattern) Next(r *RNG, hist uint64) bool {
	v := parity(hist & p.Mask)
	if p.Noise > 0 && r.Bool(p.Noise) {
		v = !v
	}
	return v
}

// Describe implements PatternGen.
func (p CorrelatedPattern) Describe() string { return sprintf("corr(%#x)", p.Mask) }

func parity(x uint64) bool {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x&1 == 1
}
