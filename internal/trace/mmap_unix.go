//go:build linux || darwin

package trace

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps f read-only and returns the data plus an unmap function.
// Empty files cannot be mapped (and carry no records anyway).
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size <= 0 {
		return nil, nil, fmt.Errorf("trace: cannot map %d-byte file", size)
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("trace: file too large to map (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
