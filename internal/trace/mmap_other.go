//go:build !linux && !darwin

package trace

import "os"

// mmapFile on platforms without a wired mmap path: OpenAuto falls back to
// positioned file reads, OpenMmap surfaces the error.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, errMmapUnsupported
}
