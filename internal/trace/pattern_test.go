package trace

import (
	"testing"
	"testing/quick"
)

func TestFixedPeriod(t *testing.T) {
	p := FixedPeriod(7)
	r := NewRNG(1)
	for i := 0; i < 5; i++ {
		if got := p.Next(r); got != 7 {
			t.Fatalf("FixedPeriod(7).Next() = %d", got)
		}
	}
}

func TestCyclePeriod(t *testing.T) {
	p := &CyclePeriod{Counts: []int{3, 5, 9}}
	r := NewRNG(1)
	want := []int{3, 5, 9, 3, 5, 9}
	for i, w := range want {
		if got := p.Next(r); got != w {
			t.Fatalf("draw %d: got %d want %d", i, got, w)
		}
	}
}

func TestNoisyPeriodBounds(t *testing.T) {
	p := NoisyPeriod{Base: 20, Jitter: 4, Prob: 1.0}
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := p.Next(r)
		if v < 16 || v > 24 {
			t.Fatalf("noisy period %d outside [16,24]", v)
		}
	}
}

func TestNoisyPeriodNeverBelowOne(t *testing.T) {
	p := NoisyPeriod{Base: 1, Jitter: 5, Prob: 1.0}
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := p.Next(r); v < 1 {
			t.Fatalf("period %d < 1", v)
		}
	}
}

func TestEntropicPeriodBounds(t *testing.T) {
	f := func(seed int64, lo8, span8 uint8) bool {
		lo := int(lo8) + 1
		hi := lo + int(span8)
		p := EntropicPeriod{Min: lo, Max: hi}
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := p.Next(r)
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRepeatingPattern(t *testing.T) {
	p := &RepeatingPattern{Pattern: []bool{true, true, false}}
	r := NewRNG(1)
	want := []bool{true, true, false, true, true, false}
	for i, w := range want {
		if got := p.Next(r, 0); got != w {
			t.Fatalf("draw %d: got %v want %v", i, got, w)
		}
	}
}

func TestPeriodicPatternExactPeriod(t *testing.T) {
	p := &PeriodicPattern{Period: 5}
	r := NewRNG(1)
	takens := 0
	for i := 0; i < 50; i++ {
		if p.Next(r, 0) {
			takens++
			if (i+1)%5 != 0 {
				t.Fatalf("taken at position %d, want multiples of 5", i)
			}
		}
	}
	if takens != 10 {
		t.Fatalf("got %d takens in 50 draws, want 10", takens)
	}
}

func TestBiasedPattern(t *testing.T) {
	p := BiasedPattern{P: 0.8}
	r := NewRNG(4)
	hits := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if p.Next(r, 0) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.78 || frac > 0.82 {
		t.Fatalf("biased(0.8) hit rate %v", frac)
	}
}

func TestCorrelatedPatternDeterministic(t *testing.T) {
	p := CorrelatedPattern{Mask: 0b101}
	r := NewRNG(1)
	// Outcome is the parity of history & mask: hist=0b111 & 0b101 = 0b101,
	// parity of two set bits = false.
	if p.Next(r, 0b111) {
		t.Fatal("parity(0b101) should be false")
	}
	if !p.Next(r, 0b001) {
		t.Fatal("parity(0b001) should be true")
	}
}

func TestCorrelatedPatternNoise(t *testing.T) {
	p := CorrelatedPattern{Mask: 1, Noise: 1.0} // always flipped
	r := NewRNG(1)
	if !p.Next(r, 0) { // parity 0 = false, flipped = true
		t.Fatal("noise=1 should flip the outcome")
	}
}

func TestDescribeNonEmpty(t *testing.T) {
	gens := []interface{ Describe() string }{
		FixedPeriod(3), &CyclePeriod{Counts: []int{1, 2}},
		NoisyPeriod{Base: 4}, EntropicPeriod{Min: 1, Max: 5},
		&RepeatingPattern{Pattern: []bool{true, false}},
		&PeriodicPattern{Period: 6}, BiasedPattern{P: 0.5},
		CorrelatedPattern{Mask: 3},
	}
	for _, g := range gens {
		if g.Describe() == "" {
			t.Fatalf("%T has empty description", g)
		}
	}
}

func TestTrianglePeriodSweeps(t *testing.T) {
	p := &TrianglePeriod{Min: 2, Max: 5}
	r := NewRNG(1)
	want := []int{2, 3, 4, 5, 4, 3, 2, 3}
	for i, w := range want {
		if got := p.Next(r); got != w {
			t.Fatalf("draw %d: got %d want %d", i, got, w)
		}
	}
}
