package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// randomTrace builds a trace with the full operand variety: every class,
// regs present/absent, deltas of both signs and mixed magnitudes.
func randomTrace(n int, seed int64) []Inst {
	r := rand.New(rand.NewSource(seed))
	tr := make([]Inst, n)
	pc := uint64(0x400000)
	addr := uint64(0x7fff0000)
	for i := range tr {
		pc += uint64(r.Intn(64)) * 4
		if r.Intn(100) == 0 {
			pc -= uint64(r.Intn(4096)) // backward jumps exercise negative dPC
		}
		in := Inst{PC: pc, Class: Class(r.Intn(int(numClasses)))}
		if r.Intn(4) != 0 {
			in.Dst = uint8(r.Intn(NumRegs))
			in.Src1 = uint8(r.Intn(NumRegs))
			in.Src2 = uint8(r.Intn(NumRegs))
		}
		switch in.Class {
		case ClassBranch:
			in.Taken = r.Intn(2) == 0
			in.Target = pc + uint64(int64(r.Intn(8192)-4096))
		case ClassLoad, ClassStore:
			addr += uint64(int64(r.Intn(512) - 128))
			in.Addr = addr
		}
		tr[i] = in
	}
	return tr
}

// TestLBP2RoundTrip is the core property: encode → decode is the identity,
// across chunk boundaries and partial final chunks.
func TestLBP2RoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, DefaultChunkLen, DefaultChunkLen + 1, 3*DefaultChunkLen + 17} {
		tr := randomTrace(n, int64(n)+1)
		var buf bytes.Buffer
		if err := WriteTraceLBP2(&buf, tr); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		got, err := ReadTraceLBP2(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d: read: %v", n, err)
		}
		if len(got) != len(tr) {
			t.Fatalf("n=%d: got %d records", n, len(got))
		}
		for i := range tr {
			if got[i] != tr[i] {
				t.Fatalf("n=%d: record %d mismatch: got %+v want %+v", n, i, got[i], tr[i])
			}
		}
	}
}

// TestLBP2SmallChunks exercises framing with many tiny chunks.
func TestLBP2SmallChunks(t *testing.T) {
	tr := randomTrace(1000, 42)
	var buf bytes.Buffer
	lw, err := NewLBP2Writer(&buf, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Append in awkward pieces to cross chunk boundaries mid-call.
	for i := 0; i < len(tr); i += 37 {
		end := min(i+37, len(tr))
		if err := lw.Append(tr[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceLBP2(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("got %d records, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestLBP1ToLBP2RoundTrip is the satellite property test: LBP1 → LBP2 → LBP1
// preserves every record bit-exactly.
func TestLBP1ToLBP2RoundTrip(t *testing.T) {
	tr := randomTrace(5000, 7)
	var lbp1 bytes.Buffer
	if err := WriteTrace(&lbp1, tr); err != nil {
		t.Fatal(err)
	}
	dec1, err := ReadTrace(bytes.NewReader(lbp1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var lbp2 bytes.Buffer
	if err := WriteTraceLBP2(&lbp2, dec1); err != nil {
		t.Fatal(err)
	}
	dec2, err := ReadTraceLBP2(bytes.NewReader(lbp2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var back bytes.Buffer
	if err := WriteTrace(&back, dec2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lbp1.Bytes(), back.Bytes()) {
		t.Fatal("LBP1 -> LBP2 -> LBP1 bytes differ")
	}
}

// writeTempLBP2 writes tr as an LBP2 file with the given chunk length.
func writeTempLBP2(t *testing.T, tr []Inst, chunkLen int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.lbp2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	lw, err := NewLBP2Writer(f, chunkLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := lw.Append(tr); err != nil {
		t.Fatal(err)
	}
	if err := lw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// drainSource reads src through odd-sized chunks to stress the copy-out path.
func drainSource(t *testing.T, src Source) []Inst {
	t.Helper()
	var out []Inst
	buf := make([]Inst, 777)
	for {
		n, err := src.Next(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("source: %v", err)
		}
	}
}

// TestOpenSourceBackends checks both LBP2 backends and the LBP1 file source
// yield identical streams, and that Reset replays from the start.
func TestOpenSourceBackends(t *testing.T) {
	tr := randomTrace(10_000, 99)
	lbp2Path := writeTempLBP2(t, tr, 1024)
	lbp1Path := filepath.Join(t.TempDir(), "trace.lbp1")
	f, err := os.Create(lbp1Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for _, tc := range []struct {
		name string
		path string
		mode OpenMode
	}{
		{"lbp2-auto", lbp2Path, OpenAuto},
		{"lbp2-file", lbp2Path, OpenFile},
		{"lbp1-file", lbp1Path, OpenFile},
	} {
		t.Run(tc.name, func(t *testing.T) {
			src, err := OpenSourceMode(tc.path, tc.mode)
			if err != nil {
				t.Fatal(err)
			}
			defer CloseSource(src)
			if src.Len() != len(tr) {
				t.Fatalf("Len = %d, want %d", src.Len(), len(tr))
			}
			got := drainSource(t, src)
			if len(got) != len(tr) {
				t.Fatalf("drained %d records, want %d", len(got), len(tr))
			}
			for i := range tr {
				if got[i] != tr[i] {
					t.Fatalf("record %d mismatch: got %+v want %+v", i, got[i], tr[i])
				}
			}
			if err := src.Reset(); err != nil {
				t.Fatal(err)
			}
			again := drainSource(t, src)
			if len(again) != len(tr) || again[0] != tr[0] || again[len(tr)-1] != tr[len(tr)-1] {
				t.Fatal("Reset did not replay the stream")
			}
		})
	}
}

// TestOpenSourceMmap exercises the mapped backend where the platform has one.
func TestOpenSourceMmap(t *testing.T) {
	tr := randomTrace(5000, 5)
	path := writeTempLBP2(t, tr, 512)
	src, err := OpenSourceMode(path, OpenMmap)
	if err == errMmapUnsupported {
		t.Skip("no mmap on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	defer CloseSource(src)
	got := drainSource(t, src)
	if len(got) != len(tr) {
		t.Fatalf("drained %d records, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestLBP2CorruptionDetected flips one payload byte and expects the chunk CRC
// to catch it on every read path.
func TestLBP2CorruptionDetected(t *testing.T) {
	tr := randomTrace(2000, 11)
	var buf bytes.Buffer
	if err := WriteTraceLBP2(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	corrupt := bytes.Clone(data)
	corrupt[lbp2HeaderSize+lbp2ChunkHdr+100] ^= 0x40 // inside first chunk payload
	if _, err := ReadTraceLBP2(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("sequential reader accepted corrupt payload")
	}
	path := filepath.Join(t.TempDir(), "corrupt.lbp2")
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenSourceMode(path, OpenFile)
	if err != nil {
		t.Fatal(err) // layout (index/footer) is intact; the chunk read must fail
	}
	defer CloseSource(src)
	var chunk [256]Inst
	for {
		_, err := src.Next(chunk[:])
		if err == io.EOF {
			t.Fatal("file source accepted corrupt payload")
		}
		if err != nil {
			break // CRC mismatch surfaced
		}
	}
}

// TestLBP2TruncationDetected drops the tail and expects the footer check to
// reject the file.
func TestLBP2TruncationDetected(t *testing.T) {
	tr := randomTrace(2000, 13)
	path := writeTempLBP2(t, tr, 256)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSource(path); err == nil {
		t.Fatal("opened a truncated LBP2 file")
	}
}

// TestLBP2Stat checks the -stat plumbing and the headline compression claim
// for a representative stream (the suite-level ≥2x assertion lives in the
// workloads tests where real generated traces are available).
func TestLBP2Stat(t *testing.T) {
	tr := randomTrace(20_000, 17)
	path := writeTempLBP2(t, tr, 0)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	stats, err := StatLBP2(f, st.Size())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != len(tr) {
		t.Fatalf("stat records = %d, want %d", stats.Records, len(tr))
	}
	if bpi := stats.BytesPerInst(); bpi >= recordSize/2 {
		t.Fatalf("LBP2 %.2f B/inst is not ≥2x smaller than LBP1's %d", bpi, recordSize)
	}
}

// TestChampSimAdapter round-trips a hand-built external trace through the
// adapter, checking class mapping and taken-branch target lookahead.
func TestChampSimAdapter(t *testing.T) {
	put := func(b []byte, ip uint64, isBranch, taken byte, dst, src1, src2 uint8, dstMem, srcMem uint64) {
		binary.LittleEndian.PutUint64(b[0:], ip)
		b[8], b[9] = isBranch, taken
		b[10], b[12], b[13] = dst, src1, src2
		binary.LittleEndian.PutUint64(b[16:], dstMem)
		binary.LittleEndian.PutUint64(b[32:], srcMem)
	}
	raw := make([]byte, 4*champsimRecSize)
	put(raw[0:], 0x1000, 0, 0, 5, 6, 7, 0, 0)                // ALU
	put(raw[64:], 0x1004, 1, 1, 0, 0, 0, 0, 0)               // taken branch -> target 0x2000
	put(raw[128:], 0x2000, 0, 0, 9, 10, 0, 0, 0xdeadbeef)    // load
	put(raw[192:], 0x2004, 0, 0, 0, 200, 0, 0xcafebabe, 0)   // store; src reg 200 wraps mod 64
	path := filepath.Join(t.TempDir(), "ext.champsim")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenSource(path)
	if err != nil {
		t.Fatal(err)
	}
	defer CloseSource(src)
	got := drainSource(t, src)
	want := []Inst{
		{PC: 0x1000, Class: ClassALU, Dst: 5, Src1: 6, Src2: 7},
		{PC: 0x1004, Class: ClassBranch, Taken: true, Target: 0x2000},
		{PC: 0x2000, Class: ClassLoad, Addr: 0xdeadbeef, Dst: 9, Src1: 10},
		{PC: 0x2004, Class: ClassStore, Addr: 0xcafebabe, Src1: 200 % NumRegs},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if err := Validate(got); err != nil {
		t.Fatalf("adapter output fails Validate: %v", err)
	}
}

// TestSliceSourceAndLimit pins the in-memory source semantics the fast paths
// rely on.
func TestSliceSourceAndLimit(t *testing.T) {
	tr := randomTrace(100, 3)
	src := NewSliceSource(tr)
	if got := drainSource(t, src); len(got) != 100 {
		t.Fatalf("drained %d", len(got))
	}
	if _, err := src.Next(make([]Inst, 1)); err != io.EOF {
		t.Fatalf("drained source returned %v, want EOF", err)
	}
	lim := Limit(NewSliceSource(tr), 10)
	if lim.Len() != 10 {
		t.Fatalf("limit Len = %d", lim.Len())
	}
	if got := drainSource(t, lim); len(got) != 10 {
		t.Fatalf("limited drain = %d", len(got))
	}
	if s, ok := SourceSlice(lim); !ok || len(s) != 10 {
		t.Fatal("limited slice source lost its zero-copy accessor")
	}
	if full := Limit(src, 500); full != Source(src) {
		t.Fatal("Limit beyond Len should return the source unchanged")
	}
}

// FuzzReadTraceLBP2 hardens the LBP2 decoder: arbitrary bytes must produce an
// error or a valid trace, never a panic or an out-of-range Class.
func FuzzReadTraceLBP2(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteTraceLBP2(&seed, randomTrace(100, 1))
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("garbage that is definitely not a trace"))
	trunc := bytes.Clone(seed.Bytes())
	f.Add(trunc[:len(trunc)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTraceLBP2(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, in := range tr {
			if in.Class >= numClasses {
				t.Fatalf("decoder produced invalid class %d", in.Class)
			}
			if in.Dst >= NumRegs || in.Src1 >= NumRegs || in.Src2 >= NumRegs {
				t.Fatalf("decoder produced out-of-range register %+v", in)
			}
		}
	})
}
