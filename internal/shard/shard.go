// Package shard turns a sweep into a crash-tolerant distributed
// computation: the experiment set is partitioned into deterministic shards,
// a coordinator hands shards to worker processes via durable,
// heartbeat-renewed leases, and a verified merge folds the per-shard
// checkpoints back into one result set that is bit-identical to a
// single-process sweep.
//
// The pieces compose but stand alone:
//
//   - Partitioning (this file): a stable hash of each run-spec id picks its
//     shard, so membership is reproducible across restarts, machines and
//     suite reorderings — any process that knows (id, N) knows the owner.
//   - Leases (lease.go): per-shard append-only journals in the LBPJRNL1
//     framing, with epoch fencing so an expired worker can never race its
//     replacement.
//   - Coordination (coordinator.go): spawn workers, watch heartbeats,
//     classify failures through the harness retry taxonomy, reassign
//     expired shards with jittered backoff.
//   - Merge (merge.go): the integrity gate — CRC-validated per-shard
//     checkpoints, duplicate detection, exact coverage accounting — and the
//     canonical render pinned bit-identical to a single-process sweep.
package shard

import (
	"fmt"
	"hash/fnv"
	"path/filepath"
)

// Index maps a run-spec id to its shard by stable FNV-1a hash. The mapping
// depends only on (id, shards): it survives process restarts, differs
// across no two machines, and is independent of suite ordering — the
// property the merge gate's duplicate detection relies on.
func Index(id string, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(shards))
}

// Assigned filters ids down to those owned by shard k of n, preserving
// input order (paper order in, paper order out).
func Assigned(ids []string, k, n int) []string {
	var out []string
	for _, id := range ids {
		if Index(id, n) == k {
			out = append(out, id)
		}
	}
	return out
}

// Partition splits ids into n buckets by Index, preserving input order
// within each bucket.
func Partition(ids []string, n int) [][]string {
	buckets := make([][]string, n)
	for _, id := range ids {
		k := Index(id, n)
		buckets[k] = append(buckets[k], id)
	}
	return buckets
}

// CheckpointPath names shard k-of-n's checkpoint inside dir. The shard
// count is baked into the name so a sweep resharded to a different N can
// never silently resume from the old partition's files.
func CheckpointPath(dir string, k, n int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d-of-%03d.ckpt", k, n))
}

// LeasePath names shard k's lease journal inside dir.
func LeasePath(dir string, k, n int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d-of-%03d.lease", k, n))
}

// ParseSpec parses a "k/N" worker shard spec (0-based k, N >= 1).
func ParseSpec(spec string) (k, n int, err error) {
	if _, err := fmt.Sscanf(spec, "%d/%d", &k, &n); err != nil {
		return 0, 0, fmt.Errorf("shard spec %q: want k/N (e.g. 1/4)", spec)
	}
	if n < 1 || k < 0 || k >= n {
		return 0, 0, fmt.Errorf("shard spec %q: need 0 <= k < N", spec)
	}
	return k, n, nil
}
