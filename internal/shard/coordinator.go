package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"

	"localbp/internal/harness"
	"localbp/internal/service"
)

// Worker is one spawned shard worker as the coordinator sees it: something
// it can wait on and, when the lease protocol demands it, kill. The
// production implementation wraps an `lbpsweep -shard k/N` subprocess
// (StartCommand); tests substitute in-process fakes.
type Worker interface {
	// Wait blocks until the worker terminates and returns its failure (nil
	// on success, *exec.ExitError for a subprocess that exited non-zero or
	// died on a signal).
	Wait() error
	// Kill terminates the worker immediately (SIGKILL-grade: no drain).
	Kill() error
}

// Spawner launches a worker for shard k (attempt is 1-based, for logging
// and log-file naming). The worker must acquire the shard's lease itself —
// the coordinator only ever observes the journal, so the protocol is
// identical whether a worker was spawned by this coordinator, a coordinator
// on another machine, or an operator's shell.
type Spawner func(ctx context.Context, k, attempt int) (Worker, error)

// ErrWorkerFrozen marks a worker that was killed by the coordinator because
// its lease went stale while the process was still alive (SIGSTOP, livelock,
// scheduler starvation). Always transient: the shard is reassigned.
var ErrWorkerFrozen = errors.New("shard: worker frozen (lease stale while process alive)")

// Config parameterizes a coordinator run.
type Config struct {
	Dir    string // lease + checkpoint directory (shared across workers)
	Shards int    // N: the partition's denominator

	// Parallel caps concurrently running workers; <= 0 runs all shards at
	// once. With Parallel < Shards the coordinator is a work queue: shards
	// wait for a slot, exactly how a fleet larger than its worker pool runs.
	Parallel int

	// TTL is the lease expiry: a shard whose journal is silent this long is
	// considered abandoned. Must comfortably exceed Heartbeat (the worker's
	// renewal period); 4-10× is the sane band. <= 0 defaults to 10s.
	TTL time.Duration
	// Poll is how often the coordinator re-reads lease journals while
	// supervising and while awaiting expiry; <= 0 defaults to TTL/8.
	Poll time.Duration

	// MaxAttempts bounds total runs per shard (first included); <= 0
	// defaults to 3. Between attempts the coordinator waits for the lease to
	// expire, fences the dead epoch, and sleeps the Retry policy's jittered
	// backoff — the same classified-retry shape as workload runs, one level
	// up.
	MaxAttempts int
	Retry       service.RetryPolicy

	Spawn Spawner
	Log   io.Writer // coordinator progress; nil discards

	// Chaos arms ChaosKill. It is a separate switch so the Config zero
	// value stays chaos-free — shard 0 is a valid ChaosKill target.
	Chaos bool
	// ChaosKill is the shard whose first worker is SIGKILLed once it is
	// observably mid-shard (lease held and at least one experiment flushed
	// to its checkpoint). Deterministic fault injection for the lease /
	// reassignment path — the distributed analog of -inject transient.
	ChaosKill int
}

// withDefaults fills the zero-value knobs.
func (c Config) withDefaults() Config {
	if c.TTL <= 0 {
		c.TTL = 10 * time.Second
	}
	if c.Poll <= 0 {
		c.Poll = max(c.TTL/8, 5*time.Millisecond)
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Parallel <= 0 || c.Parallel > c.Shards {
		c.Parallel = c.Shards
	}
	if c.Retry == (service.RetryPolicy{}) {
		c.Retry = service.DefaultRetryPolicy()
	}
	return c
}

// ShardResult is one shard's terminal outcome.
type ShardResult struct {
	Shard         int
	Attempts      int                // workers spawned for this shard
	Reassignments int                // lease-expiry handoffs between them
	Class         harness.ErrorClass // "" on success
	Err           error              // final failure, nil on success
}

// Report is the coordinator's overall outcome.
type Report struct {
	Results     []ShardResult
	Interrupted bool
}

// Status folds the per-shard outcomes into the shared exit-code scheme.
func (r *Report) Status() service.SweepStatus {
	if r.Interrupted {
		return service.SweepInterrupted
	}
	failed := 0
	for _, s := range r.Results {
		if s.Class != "" {
			failed++
		}
	}
	switch {
	case failed == 0:
		return service.SweepOK
	case failed == len(r.Results):
		return service.SweepAllFailed
	default:
		return service.SweepPartial
	}
}

// Summary renders the one-line coordinator outcome.
func (r *Report) Summary() string {
	ok, reassigned := 0, 0
	var failed []string
	for _, s := range r.Results {
		if s.Class == "" {
			ok++
		} else {
			failed = append(failed, fmt.Sprintf("%d (%s)", s.Shard, s.Class))
		}
		reassigned += s.Reassignments
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d/%d shards ok", ok, len(r.Results))
	if reassigned > 0 {
		fmt.Fprintf(&b, ", %d reassigned after lease expiry", reassigned)
	}
	if len(failed) > 0 {
		fmt.Fprintf(&b, "; failed shards: %s", strings.Join(failed, ", "))
	}
	return b.String()
}

// Run drives all shards to a terminal state: spawn workers (bounded by
// Parallel), supervise their leases, and on failure classify + reassign
// after lease expiry with jittered backoff. It returns a non-nil error only
// for configuration problems; shard failures live in the Report.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Dir == "" || cfg.Shards < 1 || cfg.Spawn == nil {
		return nil, fmt.Errorf("shard: coordinator needs Dir, Shards >= 1 and a Spawner")
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: %w", err)
	}

	rep := &Report{Results: make([]ShardResult, cfg.Shards)}
	sem := make(chan struct{}, cfg.Parallel)
	var wg sync.WaitGroup
	chaos := &chaosState{target: cfg.ChaosKill}
	for k := 0; k < cfg.Shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				rep.Results[k] = ShardResult{Shard: k, Class: harness.ClassCanceled, Err: ctx.Err()}
				return
			}
			rep.Results[k] = runShard(ctx, cfg, k, chaos)
		}(k)
	}
	wg.Wait()
	rep.Interrupted = ctx.Err() != nil
	return rep, nil
}

// chaosState fires the ChaosKill injection at most once per coordinator run.
type chaosState struct {
	target int
	once   sync.Once
}

// runShard drives one shard to a terminal state.
func runShard(ctx context.Context, cfg Config, k int, chaos *chaosState) ShardResult {
	res := ShardResult{Shard: k}
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		if ctx.Err() != nil {
			res.Class, res.Err = harness.ClassCanceled, ctx.Err()
			return res
		}
		w, err := cfg.Spawn(ctx, k, attempt)
		if err != nil {
			res.Class, res.Err = harness.ClassPermanent, fmt.Errorf("shard %d: spawn: %w", k, err)
			return res
		}
		logf(cfg.Log, "shard %d/%d: worker started (attempt %d/%d)", k, cfg.Shards, attempt, cfg.MaxAttempts)

		chaosCtx, stopChaos := context.WithCancel(ctx)
		if cfg.Chaos && cfg.ChaosKill == k && attempt == 1 {
			go chaosKillWhenMidShard(chaosCtx, cfg, k, w, chaos)
		}
		err = supervise(ctx, cfg, k, w)
		stopChaos()

		if err == nil {
			logf(cfg.Log, "shard %d/%d: completed (attempt %d)", k, cfg.Shards, attempt)
			return res
		}
		if ctx.Err() != nil {
			res.Class, res.Err = harness.ClassCanceled, err
			return res
		}
		class := ClassifyWorkerExit(err)
		logf(cfg.Log, "shard %d/%d: attempt %d failed (%s): %v", k, cfg.Shards, attempt, class, err)
		if class != harness.ClassTransient {
			res.Class, res.Err = class, err
			return res
		}
		if attempt >= cfg.MaxAttempts {
			res.Class, res.Err = harness.ClassExhausted, err
			return res
		}

		// Reassignment protocol: never hand the shard to a successor while
		// the dead worker's lease could still look live to a third party.
		// Wait out the TTL, make the expiry durable (fencing the epoch), and
		// only then back off and respawn.
		if !awaitLeaseExpiry(ctx, cfg, k) {
			res.Class, res.Err = harness.ClassCanceled, ctx.Err()
			return res
		}
		if err := Expire(cfg.Dir, k, cfg.Shards); err != nil {
			res.Class, res.Err = harness.ClassPermanent, fmt.Errorf("shard %d: fencing expired lease: %w", k, err)
			return res
		}
		res.Reassignments++
		delay := cfg.Retry.Delay(fmt.Sprintf("shard-%d", k), attempt)
		logf(cfg.Log, "shard %d/%d: lease expired; reassigning after %s backoff", k, cfg.Shards, delay.Round(time.Millisecond))
		sleepCtx(ctx, delay)
	}
}

// supervise waits for the worker to terminate, additionally killing it if
// its lease goes stale while the process is alive (a frozen worker would
// otherwise block the shard forever: it neither exits nor heartbeats).
func supervise(ctx context.Context, cfg Config, k int, w Worker) error {
	done := make(chan error, 1)
	go func() { done <- w.Wait() }()
	t := time.NewTicker(cfg.Poll)
	defer t.Stop()
	start := time.Now()
	for {
		select {
		case err := <-done:
			return err
		case <-t.C:
			st, err := ReadLease(cfg.Dir, k, cfg.Shards)
			if err != nil {
				continue
			}
			now := time.Now()
			// Grace for acquisition: a worker that has not (re)claimed the
			// lease within 2×TTL of spawning is stuck before its first
			// heartbeat; one that held it and went silent past the TTL is
			// frozen mid-shard. Both are fenced the same way.
			held := st.Held(now, cfg.TTL)
			if held || now.Sub(start) < 2*cfg.TTL {
				continue
			}
			w.Kill()
			<-done
			return fmt.Errorf("shard %d after %s: %w", k, now.Sub(start).Round(time.Millisecond), ErrWorkerFrozen)
		}
	}
}

// awaitLeaseExpiry polls until the shard's lease is stale (or ctx ends,
// returning false). The dead worker's last heartbeat is at most one
// heartbeat period old, so this waits roughly one TTL.
func awaitLeaseExpiry(ctx context.Context, cfg Config, k int) bool {
	t := time.NewTicker(cfg.Poll)
	defer t.Stop()
	for {
		st, err := ReadLease(cfg.Dir, k, cfg.Shards)
		if err == nil && !st.Held(time.Now(), cfg.TTL) {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-t.C:
		}
	}
}

// chaosKillWhenMidShard implements ChaosKill: SIGKILL the worker once it is
// observably mid-shard — its lease is held AND at least one experiment has
// been flushed to its checkpoint — so the kill always lands between a
// durable partial result and the shard's remaining work.
func chaosKillWhenMidShard(ctx context.Context, cfg Config, k int, w Worker, chaos *chaosState) {
	t := time.NewTicker(max(cfg.Poll/2, time.Millisecond))
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		st, err := ReadLease(cfg.Dir, k, cfg.Shards)
		if err != nil || !st.Held(time.Now(), cfg.TTL) {
			continue
		}
		if _, err := os.Stat(CheckpointPath(cfg.Dir, k, cfg.Shards)); err != nil {
			continue
		}
		chaos.once.Do(func() {
			logf(cfg.Log, "shard %d/%d: chaos: SIGKILLing worker mid-shard", k, cfg.Shards)
			w.Kill()
		})
		return
	}
}

// ClassifyWorkerExit maps a worker termination onto the harness retry
// taxonomy, extending harness.Classify across the process boundary:
//
//	signal-killed (OOM killer, node loss, chaos SIGKILL) → transient
//	frozen (lease stale while alive)                     → transient
//	exit 4 / canceled (interrupted; work is resumable)   → transient
//	exit 2 (configuration error)                         → permanent
//	exit 1, 3 (run failures: the worker already retried
//	  transients internally, what failed is deterministic) → permanent
func ClassifyWorkerExit(err error) harness.ErrorClass {
	if err == nil {
		return ""
	}
	if errors.Is(err, ErrWorkerFrozen) {
		return harness.ClassTransient
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
			return harness.ClassTransient
		}
		switch ee.ExitCode() {
		case service.ExitCanceled:
			return harness.ClassTransient
		case service.ExitConfigError:
			return harness.ClassPermanent
		default:
			return harness.ClassPermanent
		}
	}
	// In-process fakes: fall back to the run-level taxonomy.
	if c := harness.Classify(err); c == harness.ClassTransient || c == harness.ClassCanceled {
		return harness.ClassTransient
	}
	return harness.ClassPermanent
}

// StartCommand starts cmd and adapts it to the Worker interface (Kill sends
// SIGKILL to the process, not the whole group — workers are direct
// children).
func StartCommand(cmd *exec.Cmd) (Worker, error) {
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &procWorker{cmd: cmd}, nil
}

type procWorker struct{ cmd *exec.Cmd }

func (p *procWorker) Wait() error { return p.cmd.Wait() }
func (p *procWorker) Kill() error { return p.cmd.Process.Kill() }

// logf writes one coordinator progress line; nil w discards.
func logf(w io.Writer, format string, args ...any) {
	if w == nil {
		return
	}
	fmt.Fprintf(w, "coordinator: "+format+"\n", args...)
}

// sleepCtx waits d or until ctx is canceled.
func sleepCtx(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
