package shard

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"localbp/internal/harness"
)

// mergeFixture lays down N shard checkpoints covering ids, each experiment
// recorded in the shard the partition assigns it to. Outputs are synthetic
// but stable functions of the id.
func mergeFixture(t *testing.T, dir string, ids []string, n int, opts harness.Options) {
	t.Helper()
	for k := 0; k < n; k++ {
		ck := harness.NewCheckpoint(opts)
		for _, id := range Assigned(ids, k, n) {
			ck.Record(id, harness.ExperimentOutcome{Output: "output for " + id, Seconds: float64(k)})
		}
		if err := ck.Save(CheckpointPath(dir, k, n)); err != nil {
			t.Fatal(err)
		}
	}
}

func someIDs(t *testing.T, n int) []string {
	t.Helper()
	var ids []string
	for _, e := range harness.Experiments() {
		ids = append(ids, e.ID)
	}
	if len(ids) < n {
		t.Fatalf("suite has only %d experiments", len(ids))
	}
	return ids[:n]
}

// TestMergeHappyPath: a complete partition merges with exact coverage, and
// the report accounts for every shard.
func TestMergeHappyPath(t *testing.T) {
	dir := t.TempDir()
	ids := someIDs(t, 8)
	opts := harness.Options{Insts: 1000, Quick: true}
	mergeFixture(t, dir, ids, 3, opts)

	merged, rep, err := Merge(dir, 3, ids)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiments != len(ids) || rep.Loaded != 3 {
		t.Fatalf("report = %+v, want %d experiments from 3 shards", rep, len(ids))
	}
	for _, id := range ids {
		out, ok := merged.Done(id)
		if !ok || out.Output != "output for "+id {
			t.Fatalf("merged checkpoint missing %s (%+v)", id, out)
		}
	}
	if !merged.Matches(opts) {
		t.Fatal("merged checkpoint lost the option stamp")
	}
}

// TestMergeEmptyShardTolerated: with more shards than ids, a shard with no
// assigned work may legitimately have no checkpoint.
func TestMergeEmptyShardTolerated(t *testing.T) {
	dir := t.TempDir()
	ids := someIDs(t, 2)
	opts := harness.Options{Insts: 500, Quick: true}
	// Lay down checkpoints only for shards that own work.
	n := 6
	for k := 0; k < n; k++ {
		assigned := Assigned(ids, k, n)
		if len(assigned) == 0 {
			continue
		}
		ck := harness.NewCheckpoint(opts)
		for _, id := range assigned {
			ck.Record(id, harness.ExperimentOutcome{Output: "output for " + id})
		}
		if err := ck.Save(CheckpointPath(dir, k, n)); err != nil {
			t.Fatal(err)
		}
	}
	merged, rep, err := Merge(dir, n, ids)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Experiments != len(ids) {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.EmptyShards)+rep.Loaded != n {
		t.Fatalf("shards unaccounted for: %+v", rep)
	}
	if _, ok := merged.Done(ids[0]); !ok {
		t.Fatal("merged checkpoint lost a run")
	}
}

// TestMergeMissingShard: a shard with assigned work but no checkpoint trips
// the gate and names both the shard and the lost runs.
func TestMergeMissingShard(t *testing.T) {
	dir := t.TempDir()
	ids := someIDs(t, 8)
	opts := harness.Options{Insts: 1000}
	mergeFixture(t, dir, ids, 3, opts)
	// Pick a shard that owns work and delete its checkpoint.
	victim := -1
	for k := 0; k < 3; k++ {
		if len(Assigned(ids, k, 3)) > 0 {
			victim = k
			break
		}
	}
	if err := os.Remove(CheckpointPath(dir, victim, 3)); err != nil {
		t.Fatal(err)
	}

	_, _, err := Merge(dir, 3, ids)
	var merr *MergeError
	if !errors.As(err, &merr) {
		t.Fatalf("merge over missing shard: %v", err)
	}
	found := false
	for _, k := range merr.MissingShards {
		if k == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("gate did not name shard %d: %+v", victim, merr)
	}
	if len(merr.Missing) != len(Assigned(ids, victim, 3)) {
		t.Fatalf("gate missing-run accounting: %+v", merr)
	}
}

// TestMergeDuplicateRun: the same id completed in two shards is misplaced in
// at least one of them — the gate refuses rather than pick a winner.
func TestMergeDuplicateRun(t *testing.T) {
	dir := t.TempDir()
	ids := someIDs(t, 6)
	opts := harness.Options{Insts: 1000}
	mergeFixture(t, dir, ids, 2, opts)

	// Re-record shard 0's first id into shard 1's checkpoint too.
	dup := Assigned(ids, 0, 2)[0]
	ck, err := harness.LoadCheckpoint(CheckpointPath(dir, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	ck.Record(dup, harness.ExperimentOutcome{Output: "impostor"})
	if err := ck.Save(CheckpointPath(dir, 1, 2)); err != nil {
		t.Fatal(err)
	}

	_, _, err = Merge(dir, 2, ids)
	var merr *MergeError
	if !errors.As(err, &merr) {
		t.Fatalf("merge over duplicate run: %v", err)
	}
	if len(merr.Misplaced) == 0 || !strings.Contains(merr.Misplaced[0], dup) {
		t.Fatalf("gate did not flag the duplicate: %+v", merr)
	}
}

// TestMergeCorruptShardQuarantined: a bit-flipped shard checkpoint without a
// previous generation is quarantined, and the gate reports it as corrupt
// rather than silently dropping its runs.
func TestMergeCorruptShardQuarantined(t *testing.T) {
	dir := t.TempDir()
	ids := someIDs(t, 8)
	opts := harness.Options{Insts: 1000}
	mergeFixture(t, dir, ids, 3, opts)

	victim := -1
	for k := 0; k < 3; k++ {
		if len(Assigned(ids, k, 3)) > 0 {
			victim = k
			break
		}
	}
	path := CheckpointPath(dir, victim, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Merge(dir, 3, ids)
	var merr *MergeError
	if !errors.As(err, &merr) {
		t.Fatalf("merge over corrupt shard: %v", err)
	}
	if len(merr.Corrupt) != 1 || !strings.Contains(merr.Corrupt[0], fmt.Sprintf("shard %d", victim)) {
		t.Fatalf("gate did not report the corrupt shard: %+v", merr)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("damaged shard checkpoint not quarantined: %v", err)
	}
}

// TestMergeOptionDrift: shards swept with different -insts cannot be merged.
func TestMergeOptionDrift(t *testing.T) {
	dir := t.TempDir()
	ids := someIDs(t, 6)
	mergeFixture(t, dir, ids, 2, harness.Options{Insts: 1000})
	// Rewrite shard 1 with a different option stamp.
	ck := harness.NewCheckpoint(harness.Options{Insts: 2000})
	for _, id := range Assigned(ids, 1, 2) {
		ck.Record(id, harness.ExperimentOutcome{Output: "output for " + id})
	}
	if err := ck.Save(CheckpointPath(dir, 1, 2)); err != nil {
		t.Fatal(err)
	}

	_, _, err := Merge(dir, 2, ids)
	var merr *MergeError
	if !errors.As(err, &merr) {
		t.Fatalf("merge over option drift: %v", err)
	}
	if merr.OptionDrift == "" || !strings.Contains(merr.OptionDrift, "-insts") {
		t.Fatalf("gate did not name the drifted option: %+v", merr)
	}
}

// TestMergeUnexpectedRun: a completed id outside the expected set is
// flagged — the merge never launders stray results into the output.
func TestMergeUnexpectedRun(t *testing.T) {
	dir := t.TempDir()
	all := someIDs(t, 8)
	ids, extra := all[:7], all[7]
	opts := harness.Options{Insts: 1000}
	// Build the partition over ids+extra so placement is consistent, then
	// merge expecting only ids.
	mergeFixture(t, dir, append(append([]string{}, ids...), extra), 2, opts)

	_, _, err := Merge(dir, 2, ids)
	var merr *MergeError
	if !errors.As(err, &merr) {
		t.Fatalf("merge over unexpected run: %v", err)
	}
	if len(merr.Unexpected) != 1 || merr.Unexpected[0] != extra {
		t.Fatalf("gate did not flag the stray run: %+v", merr)
	}
}

// TestRenderCanonical: Render is timing-free and deterministic — two
// checkpoints holding the same outputs but different Seconds render
// bit-identically. This is the property the sharded/single-process
// differential rests on.
func TestRenderCanonical(t *testing.T) {
	ids := someIDs(t, 5)
	opts := harness.Options{Insts: 1000}
	a := harness.NewCheckpoint(opts)
	b := harness.NewCheckpoint(opts)
	for i, id := range ids {
		a.Record(id, harness.ExperimentOutcome{Output: "body " + id, Seconds: float64(i)})
		b.Record(id, harness.ExperimentOutcome{Output: "body " + id, Seconds: float64(100 - i)})
	}
	var ra, rb bytes.Buffer
	if err := Render(&ra, a, ids); err != nil {
		t.Fatal(err)
	}
	if err := Render(&rb, b, ids); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra.Bytes(), rb.Bytes()) {
		t.Fatalf("render not timing-free:\n%s\nvs\n%s", ra.String(), rb.String())
	}
	if !strings.Contains(ra.String(), "== "+ids[0]) {
		t.Fatalf("render missing header: %s", ra.String())
	}

	// Rendering an id the checkpoint lacks is an error, not silence.
	var rc bytes.Buffer
	if err := Render(&rc, a, []string{"table1", "no-such-id"}); err == nil {
		t.Fatal("render of unknown id succeeded")
	}
}
