package shard

import (
	"testing"

	"localbp/internal/harness"
)

// TestIndexStable pins the partition's contract: deterministic, in-range,
// total (every id lands somewhere) and exclusive (exactly one shard owns
// each id). The crash-tolerance story rests on any process being able to
// recompute ownership from (id, N) alone.
func TestIndexStable(t *testing.T) {
	ids := experimentIDs()
	for _, n := range []int{1, 2, 3, 4, 7} {
		owned := map[string]int{}
		for k := 0; k < n; k++ {
			for _, id := range Assigned(ids, k, n) {
				if prev, dup := owned[id]; dup {
					t.Fatalf("n=%d: %s owned by shards %d and %d", n, id, prev, k)
				}
				owned[id] = k
			}
		}
		if len(owned) != len(ids) {
			t.Fatalf("n=%d: %d/%d ids owned", n, len(owned), len(ids))
		}
		for id, k := range owned {
			if Index(id, n) != k {
				t.Fatalf("n=%d: Index(%s) = %d, Assigned put it in %d", n, id, Index(id, n), k)
			}
			if k < 0 || k >= n {
				t.Fatalf("n=%d: shard %d out of range for %s", n, k, id)
			}
		}
		// Recomputing yields the identical assignment (no hidden state).
		for id, k := range owned {
			if again := Index(id, n); again != k {
				t.Fatalf("n=%d: Index(%s) unstable: %d then %d", n, id, k, again)
			}
		}
	}
}

// TestPartitionMatchesAssigned: the bucketed and filtered views agree and
// preserve input order.
func TestPartitionMatchesAssigned(t *testing.T) {
	ids := experimentIDs()
	const n = 4
	buckets := Partition(ids, n)
	for k := 0; k < n; k++ {
		got := Assigned(ids, k, n)
		if len(got) != len(buckets[k]) {
			t.Fatalf("shard %d: Assigned %v != Partition %v", k, got, buckets[k])
		}
		for i := range got {
			if got[i] != buckets[k][i] {
				t.Fatalf("shard %d: order diverged: %v vs %v", k, got, buckets[k])
			}
		}
	}
}

// TestParseSpec pins the k/N worker flag grammar.
func TestParseSpec(t *testing.T) {
	k, n, err := ParseSpec("2/4")
	if err != nil || k != 2 || n != 4 {
		t.Fatalf("ParseSpec(2/4) = (%d, %d, %v)", k, n, err)
	}
	for _, bad := range []string{"", "x", "4/4", "-1/4", "1/0", "1"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

// experimentIDs returns the real experiment id set in paper order.
func experimentIDs() []string {
	var ids []string
	for _, e := range harness.Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}
