package shard

import (
	"context"
	"errors"
	"fmt"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"localbp/internal/harness"
	"localbp/internal/service"
)

// fakeWorker simulates one worker generation in-process: it acquires the
// shard's lease, heartbeats, optionally "crashes" (stops heartbeating and
// exits with an error), and releases on success.
type fakeWorker struct {
	dir      string
	k, n     int
	ttl      time.Duration
	work     time.Duration // simulated shard runtime
	crashErr error         // non-nil: fail after work/2 without releasing

	killed chan struct{}
	once   sync.Once
	done   chan error
}

func startFake(dir string, k, n int, ttl time.Duration, work time.Duration, crashErr error) (*fakeWorker, error) {
	w := &fakeWorker{dir: dir, k: k, n: n, ttl: ttl, work: work, crashErr: crashErr,
		killed: make(chan struct{}), done: make(chan error, 1)}
	l, err := Acquire(dir, k, n, fmt.Sprintf("fake-%d", k), ttl)
	if err != nil {
		return nil, err
	}
	go func() {
		hb := time.NewTicker(ttl / 8)
		defer hb.Stop()
		deadline := time.After(w.work)
		if w.crashErr != nil {
			deadline = time.After(w.work / 2)
		}
		for {
			select {
			case <-w.killed:
				// Classifies transient, like a real signal-killed subprocess.
				w.done <- fmt.Errorf("fake worker killed: %w", harness.ErrInjected)
				return
			case <-deadline:
				if w.crashErr != nil {
					w.done <- w.crashErr // crash: no release, lease left to expire
					return
				}
				l.Release()
				w.done <- nil
				return
			case <-hb.C:
				if err := l.Renew(); err != nil {
					w.done <- err
					return
				}
			}
		}
	}()
	return w, nil
}

func (w *fakeWorker) Wait() error { return <-w.done }
func (w *fakeWorker) Kill() error { w.once.Do(func() { close(w.killed) }); return nil }

// TestCoordinatorHappyPath: all shards complete first try, no
// reassignments, status ok.
func TestCoordinatorHappyPath(t *testing.T) {
	dir := t.TempDir()
	ttl := 80 * time.Millisecond
	cfg := Config{
		Dir: dir, Shards: 3, TTL: ttl, MaxAttempts: 2,
		Retry: service.RetryPolicy{MaxAttempts: 2, Seed: 1},
		Spawn: func(ctx context.Context, k, attempt int) (Worker, error) {
			return startFake(dir, k, 3, ttl, 30*time.Millisecond, nil)
		},
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Status(); got != service.SweepOK {
		t.Fatalf("status = %s, want ok (%+v)", got, rep.Results)
	}
	for _, s := range rep.Results {
		if s.Attempts != 1 || s.Reassignments != 0 {
			t.Fatalf("shard %d: %d attempts, %d reassignments, want 1/0", s.Shard, s.Attempts, s.Reassignments)
		}
	}
}

// TestCoordinatorReassignsAfterExpiry is the heart of the tentpole: a
// worker that dies without releasing (transient) has its lease expire, the
// epoch is fenced, and a successor completes the shard. The successor's
// epoch must exceed the dead worker's.
func TestCoordinatorReassignsAfterExpiry(t *testing.T) {
	dir := t.TempDir()
	ttl := 80 * time.Millisecond
	var mu sync.Mutex
	spawns := 0
	var log strings.Builder
	cfg := Config{
		Dir: dir, Shards: 1, TTL: ttl, MaxAttempts: 3,
		Retry: service.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1},
		Log:   &log,
		Spawn: func(ctx context.Context, k, attempt int) (Worker, error) {
			mu.Lock()
			spawns++
			n := spawns
			mu.Unlock()
			if n == 1 {
				// First worker crashes mid-shard with a transient error.
				return startFake(dir, 0, 1, ttl, 40*time.Millisecond,
					fmt.Errorf("simulated OOM kill: %w", harness.ErrInjected))
			}
			return startFake(dir, 0, 1, ttl, 20*time.Millisecond, nil)
		},
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Results[0]
	if s.Class != "" || s.Attempts != 2 || s.Reassignments != 1 {
		t.Fatalf("shard result = %+v, want success after 1 reassignment", s)
	}
	// The reassignment is durable in the journal: epoch 1 expired, epoch 2
	// released.
	st, err := ReadLease(dir, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 2 || st.Op != opRelease {
		t.Fatalf("final lease state = %+v, want epoch 2 released", st)
	}
	if !strings.Contains(log.String(), "reassigning") {
		t.Fatalf("coordinator log lacks reassignment: %s", log.String())
	}
}

// TestCoordinatorPermanentNotRetried: a config-error worker exit is not
// reassigned — retrying a deterministic failure burns the fleet for
// nothing.
func TestCoordinatorPermanentNotRetried(t *testing.T) {
	dir := t.TempDir()
	ttl := 60 * time.Millisecond
	var mu sync.Mutex
	spawns := 0
	cfg := Config{
		Dir: dir, Shards: 1, TTL: ttl, MaxAttempts: 3,
		Spawn: func(ctx context.Context, k, attempt int) (Worker, error) {
			mu.Lock()
			spawns++
			mu.Unlock()
			return startFake(dir, 0, 1, ttl, 20*time.Millisecond,
				&harness.RunError{Phase: harness.PhaseValidate, Err: errors.New("bad config")})
		},
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Results[0]
	if s.Class != harness.ClassPermanent || s.Attempts != 1 {
		t.Fatalf("shard result = %+v, want permanent after 1 attempt", s)
	}
	mu.Lock()
	defer mu.Unlock()
	if spawns != 1 {
		t.Fatalf("permanent failure respawned %d times", spawns)
	}
	if rep.Status() != service.SweepAllFailed {
		t.Fatalf("status = %s, want all-failed", rep.Status())
	}
}

// TestCoordinatorExhaustsAttempts: a shard that keeps dying transiently is
// reported retry-exhausted after MaxAttempts, not retried forever.
func TestCoordinatorExhaustsAttempts(t *testing.T) {
	dir := t.TempDir()
	ttl := 60 * time.Millisecond
	cfg := Config{
		Dir: dir, Shards: 1, TTL: ttl, MaxAttempts: 2,
		Retry: service.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, Seed: 1},
		Spawn: func(ctx context.Context, k, attempt int) (Worker, error) {
			return startFake(dir, 0, 1, ttl, 30*time.Millisecond,
				fmt.Errorf("repeated kill: %w", harness.ErrInjected))
		},
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Results[0]
	if s.Class != harness.ClassExhausted || s.Attempts != 2 || s.Reassignments != 1 {
		t.Fatalf("shard result = %+v, want retry-exhausted after 2 attempts", s)
	}
}

// TestCoordinatorKillsFrozenWorker: a worker that holds the lease but stops
// heartbeating without exiting (SIGSTOP-grade freeze) is killed and the
// shard reassigned.
func TestCoordinatorKillsFrozenWorker(t *testing.T) {
	dir := t.TempDir()
	ttl := 60 * time.Millisecond
	var mu sync.Mutex
	spawns := 0
	cfg := Config{
		Dir: dir, Shards: 1, TTL: ttl, MaxAttempts: 2,
		Retry: service.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, Seed: 1},
		Spawn: func(ctx context.Context, k, attempt int) (Worker, error) {
			mu.Lock()
			spawns++
			n := spawns
			mu.Unlock()
			if n == 1 {
				return startFrozenFake(dir, 0, 1, ttl)
			}
			return startFake(dir, 0, 1, ttl, 20*time.Millisecond, nil)
		},
	}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Results[0]
	if s.Class != "" || s.Attempts != 2 {
		t.Fatalf("shard result = %+v, want success on attempt 2 after freeze", s)
	}
}

// startFrozenFake acquires the lease and then goes completely silent: it
// neither heartbeats nor exits until killed.
func startFrozenFake(dir string, k, n int, ttl time.Duration) (*fakeWorker, error) {
	w := &fakeWorker{killed: make(chan struct{}), done: make(chan error, 1)}
	if _, err := Acquire(dir, k, n, "frozen", ttl); err != nil {
		return nil, err
	}
	go func() {
		<-w.killed
		w.done <- fmt.Errorf("frozen worker killed: %w", harness.ErrInjected)
	}()
	return w, nil
}

// TestCoordinatorCanceled: canceling the context mid-run yields an
// interrupted report, and shards that never got a slot are marked canceled.
func TestCoordinatorCanceled(t *testing.T) {
	dir := t.TempDir()
	ttl := 80 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{
		Dir: dir, Shards: 2, Parallel: 1, TTL: ttl, MaxAttempts: 1,
		Spawn: func(ctx context.Context, k, attempt int) (Worker, error) {
			cancel() // cancel as soon as the first worker launches
			return startFake(dir, k, 2, ttl, 30*time.Millisecond, nil)
		},
	}
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Interrupted || rep.Status() != service.SweepInterrupted {
		t.Fatalf("report = %+v, want interrupted", rep)
	}
}

// TestClassifyWorkerExit pins the process-boundary extension of the retry
// taxonomy, including real *exec.ExitError values from /bin/sh.
func TestClassifyWorkerExit(t *testing.T) {
	exitErr := func(code int) error {
		cmd := exec.Command("/bin/sh", "-c", fmt.Sprintf("exit %d", code))
		err := cmd.Run()
		if err == nil {
			t.Fatalf("exit %d produced no error", code)
		}
		return err
	}
	sigErr := func() error {
		cmd := exec.Command("/bin/sh", "-c", "kill -KILL $$")
		err := cmd.Run()
		if err == nil {
			t.Fatal("SIGKILL produced no error")
		}
		return err
	}

	cases := []struct {
		name string
		err  error
		want harness.ErrorClass
	}{
		{"success", nil, ""},
		{"signal-killed", sigErr(), harness.ClassTransient},
		{"exit 4 interrupted", exitErr(service.ExitCanceled), harness.ClassTransient},
		{"exit 2 config", exitErr(service.ExitConfigError), harness.ClassPermanent},
		{"exit 1 partial", exitErr(service.ExitFailure), harness.ClassPermanent},
		{"exit 3 all-failed", exitErr(service.ExitAllFailed), harness.ClassPermanent},
		{"frozen", fmt.Errorf("shard 0: %w", ErrWorkerFrozen), harness.ClassTransient},
		{"unknown error", errors.New("mystery"), harness.ClassPermanent},
	}
	for _, tc := range cases {
		if got := ClassifyWorkerExit(tc.err); got != tc.want {
			t.Errorf("ClassifyWorkerExit(%s) = %q, want %q", tc.name, got, tc.want)
		}
	}
}
