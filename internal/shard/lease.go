package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"localbp/internal/service"
)

// Each shard has one append-only lease journal, framed with the same
// LBPJRNL1 discipline as lbpd's job journal (service.EncodeFrame): every
// record is a self-verifying line, a torn append costs at most itself, and
// readers stop at the first damaged frame. The journal is the shard's
// ownership history:
//
//	acquire(epoch) → renew(epoch)* → release(epoch)   clean completion
//	acquire(epoch) → renew(epoch)* → [silence > TTL] → expire(epoch)
//	  → acquire(epoch+1) → ...                        crash + reassignment
//
// The epoch is the fencing token. Every acquire bumps it; a worker re-reads
// the journal on each renewal and abandons the shard the moment it sees a
// higher epoch (or an expire of its own), so a paused-then-resumed zombie
// can never fight its replacement. Appends are whole-frame single writes to
// an O_APPEND file: concurrent writers interleave at frame granularity,
// which the reader handles by folding records in epoch order.
const leaseMagic = "LBPJRNL1"

// Lease ops, in lifecycle order.
const (
	opAcquire = "acquire"
	opRenew   = "renew"
	opRelease = "release"
	opExpire  = "expire"
)

// leaseRecord is one journal entry.
type leaseRecord struct {
	Op    string    `json:"op"`
	Shard int       `json:"shard"`
	Of    int       `json:"of"`
	Owner string    `json:"owner,omitempty"`
	Epoch uint64    `json:"epoch"`
	Time  time.Time `json:"time"`
}

// ErrLeaseHeld is returned by Acquire when another worker holds a fresh
// lease on the shard.
var ErrLeaseHeld = errors.New("shard: lease held by another worker")

// ErrLeaseLost is returned by Renew when the lease has been fenced off: the
// coordinator expired it (the worker stopped heartbeating long enough) or a
// successor acquired a higher epoch. The only correct reaction is to stop
// working on the shard immediately — the checkpoint protocol makes already
// completed experiments durable, and the successor resumes from them.
var ErrLeaseLost = errors.New("shard: lease lost (expired or superseded)")

// LeaseState is the digest of one shard's journal: the highest epoch seen
// and the latest record within it. The zero value means "never held".
type LeaseState struct {
	Epoch uint64
	Op    string // last op at Epoch; "" when the journal is empty
	Owner string
	Time  time.Time // time of the last record at Epoch
}

// Held reports whether the lease is live: the current epoch's last op keeps
// ownership (acquire/renew) and the record is fresher than ttl.
func (s LeaseState) Held(now time.Time, ttl time.Duration) bool {
	return (s.Op == opAcquire || s.Op == opRenew) && now.Sub(s.Time) < ttl
}

// ReadLease digests shard k-of-n's journal in dir. A missing journal is the
// zero state. Torn tails and interleaved zombie records are tolerated: only
// intact frames count, and records fold in epoch order so a stale writer's
// interleaved renewals can never resurrect a fenced epoch.
func ReadLease(dir string, k, n int) (LeaseState, error) {
	var st LeaseState
	data, err := os.ReadFile(LeasePath(dir, k, n))
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return st, fmt.Errorf("shard %d/%d lease: %w", k, n, err)
	}
	frames, _ := service.DecodeFrames(leaseMagic, data)
	for _, fr := range frames {
		var rec leaseRecord
		if err := json.Unmarshal(fr.Payload, &rec); err != nil {
			continue // foreign or damaged payload in an intact frame: skip
		}
		switch {
		case rec.Epoch > st.Epoch,
			rec.Epoch == st.Epoch && st.Op == "":
			st = LeaseState{Epoch: rec.Epoch, Op: rec.Op, Owner: rec.Owner, Time: rec.Time}
		case rec.Epoch == st.Epoch:
			// Same epoch: expire and release are terminal and win over any
			// interleaved renewals a zombie manages to append afterwards.
			if st.Op != opExpire && st.Op != opRelease {
				st.Op, st.Time = rec.Op, rec.Time
				if rec.Owner != "" {
					st.Owner = rec.Owner
				}
			}
		}
	}
	return st, nil
}

// appendLease frames and appends one record, fsynced so a record that was
// reported written survives a crash (the same accepted ⇒ durable contract
// as the job journal).
func appendLease(dir string, rec leaseRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("shard %d/%d lease: %w", rec.Shard, rec.Of, err)
	}
	path := LeasePath(dir, rec.Shard, rec.Of)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("shard %d/%d lease: %w", rec.Shard, rec.Of, err)
	}
	defer f.Close()
	if _, err := f.Write(service.EncodeFrame(leaseMagic, payload)); err != nil {
		return fmt.Errorf("shard %d/%d lease: %w", rec.Shard, rec.Of, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("shard %d/%d lease: fsync: %w", rec.Shard, rec.Of, err)
	}
	return nil
}

// Lease is a worker's hold on one shard.
type Lease struct {
	dir      string
	shard, n int
	owner    string
	ttl      time.Duration
	epoch    uint64
}

// Epoch returns the lease's fencing token.
func (l *Lease) Epoch() uint64 { return l.epoch }

// Acquire claims shard k-of-n for owner. A fresh lease held by someone else
// returns ErrLeaseHeld; a stale one (its holder stopped heartbeating for at
// least ttl) is taken over by bumping the epoch — the previous holder is
// fenced off and discovers it on its next renewal. Acquire also truncates a
// torn journal tail: at takeover time no live writer can exist (a live one
// would have kept the lease fresh), so scrubbing the tail is safe and keeps
// later appends on a clean frame boundary.
func Acquire(dir string, k, n int, owner string, ttl time.Duration) (*Lease, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard %d/%d lease: %w", k, n, err)
	}
	path := LeasePath(dir, k, n)
	if data, err := os.ReadFile(path); err == nil {
		if _, valid := service.DecodeFrames(leaseMagic, data); valid < int64(len(data)) {
			if err := os.Truncate(path, valid); err != nil {
				return nil, fmt.Errorf("shard %d/%d lease: truncating torn tail: %w", k, n, err)
			}
		}
	}
	st, err := ReadLease(dir, k, n)
	if err != nil {
		return nil, err
	}
	now := time.Now()
	if st.Held(now, ttl) {
		return nil, fmt.Errorf("shard %d/%d held by %s (last heartbeat %s ago, ttl %s): %w",
			k, n, st.Owner, now.Sub(st.Time).Round(time.Millisecond), ttl, ErrLeaseHeld)
	}
	l := &Lease{dir: dir, shard: k, n: n, owner: owner, ttl: ttl, epoch: st.Epoch + 1}
	if err := appendLease(dir, leaseRecord{
		Op: opAcquire, Shard: k, Of: n, Owner: owner, Epoch: l.epoch, Time: now,
	}); err != nil {
		return nil, err
	}
	return l, nil
}

// Renew re-reads the journal (the fencing check) and appends a heartbeat.
// ErrLeaseLost means a coordinator expired this epoch or a successor
// acquired a higher one; the worker must stop at once.
func (l *Lease) Renew() error {
	st, err := ReadLease(l.dir, l.shard, l.n)
	if err != nil {
		return err
	}
	if st.Epoch > l.epoch || (st.Epoch == l.epoch && (st.Op == opExpire || st.Op == opRelease)) {
		return fmt.Errorf("shard %d/%d epoch %d fenced by %s@%d: %w",
			l.shard, l.n, l.epoch, st.Op, st.Epoch, ErrLeaseLost)
	}
	return appendLease(l.dir, leaseRecord{
		Op: opRenew, Shard: l.shard, Of: l.n, Owner: l.owner, Epoch: l.epoch, Time: time.Now(),
	})
}

// Release ends the lease cleanly (the shard's work is done or abandoned in
// an orderly way).
func (l *Lease) Release() error {
	return appendLease(l.dir, leaseRecord{
		Op: opRelease, Shard: l.shard, Of: l.n, Owner: l.owner, Epoch: l.epoch, Time: time.Now(),
	})
}

// Heartbeat renews the lease every interval until ctx is done. The first
// renewal failure invokes onLost exactly once and ends the loop — transient
// I/O errors are retried at the next tick, but a fencing loss (ErrLeaseLost)
// is final. Run it in its own goroutine alongside the shard's work.
func (l *Lease) Heartbeat(ctx context.Context, interval time.Duration, onLost func(error)) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := l.Renew(); err != nil {
				if errors.Is(err, ErrLeaseLost) {
					onLost(err)
					return
				}
				// I/O hiccup: keep heartbeating; the lease only dies if the
				// silence outlasts the TTL.
				continue
			}
		}
	}
}

// Expire fences off shard k-of-n's current epoch after observing staleness.
// This is the coordinator's half of failure detection: it must only be
// called once the lease is stale (Held == false), and it makes the
// staleness durable so every future reader agrees the epoch is dead before
// a successor acquires epoch+1.
func Expire(dir string, k, n int) error {
	st, err := ReadLease(dir, k, n)
	if err != nil {
		return err
	}
	if st.Op == "" || st.Op == opExpire || st.Op == opRelease {
		return nil // nothing live to fence
	}
	return appendLease(dir, leaseRecord{
		Op: opExpire, Shard: k, Of: n, Epoch: st.Epoch, Time: time.Now(),
	})
}

// RemoveJournal deletes shard k-of-n's lease journal (test hygiene and
// explicit operator resets; normal operation never removes history).
func RemoveJournal(dir string, k, n int) error {
	err := os.Remove(LeasePath(dir, k, n))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// Owner builds the canonical owner identity for lease records:
// host:pid, unambiguous across the machines a sharded sweep spans.
func Owner() string {
	host, err := os.Hostname()
	if err != nil {
		host = "unknown"
	}
	return fmt.Sprintf("%s:%d", filepath.Base(host), os.Getpid())
}
