package shard

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"
)

// TestLeaseLifecycle walks the clean path: acquire → renew → release, with
// the journal state agreeing at each step.
func TestLeaseLifecycle(t *testing.T) {
	dir := t.TempDir()
	l, err := Acquire(dir, 0, 2, "w1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if l.Epoch() != 1 {
		t.Fatalf("first epoch = %d, want 1", l.Epoch())
	}
	st, err := ReadLease(dir, 0, 2)
	if err != nil || !st.Held(time.Now(), time.Second) {
		t.Fatalf("acquired lease not held: %+v, %v", st, err)
	}
	if err := l.Renew(); err != nil {
		t.Fatal(err)
	}
	if err := l.Release(); err != nil {
		t.Fatal(err)
	}
	st, _ = ReadLease(dir, 0, 2)
	if st.Held(time.Now(), time.Second) {
		t.Fatalf("released lease still held: %+v", st)
	}

	// A released shard is immediately re-acquirable with a bumped epoch.
	l2, err := Acquire(dir, 0, 2, "w2", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Epoch() != 2 {
		t.Fatalf("epoch after release = %d, want 2", l2.Epoch())
	}
}

// TestLeaseContention: a fresh lease refuses takeover; a stale one is taken
// over with a bumped epoch and the old holder is fenced (ErrLeaseLost on its
// next renewal).
func TestLeaseContention(t *testing.T) {
	dir := t.TempDir()
	ttl := 50 * time.Millisecond
	old, err := Acquire(dir, 1, 3, "old", ttl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Acquire(dir, 1, 3, "thief", ttl); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("fresh lease stolen: %v", err)
	}

	time.Sleep(ttl + 20*time.Millisecond) // the old holder goes silent

	succ, err := Acquire(dir, 1, 3, "successor", ttl)
	if err != nil {
		t.Fatalf("stale lease not taken over: %v", err)
	}
	if succ.Epoch() != old.Epoch()+1 {
		t.Fatalf("takeover epoch = %d, want %d", succ.Epoch(), old.Epoch()+1)
	}
	// The zombie discovers the fence on its next heartbeat.
	if err := old.Renew(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("zombie renewal not fenced: %v", err)
	}
	// Even after the zombie's doomed renewal attempt, the successor is fine.
	if err := succ.Renew(); err != nil {
		t.Fatalf("successor fenced by zombie: %v", err)
	}
}

// TestLeaseExpireFences: the coordinator's Expire makes staleness durable —
// the old epoch can never renew again, and the next acquire bumps past it.
func TestLeaseExpireFences(t *testing.T) {
	dir := t.TempDir()
	l, err := Acquire(dir, 0, 1, "w", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := Expire(dir, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Renew(); !errors.Is(err, ErrLeaseLost) {
		t.Fatalf("expired epoch renewed: %v", err)
	}
	// Expire on an already-dead lease is a no-op, not an error.
	if err := Expire(dir, 0, 1); err != nil {
		t.Fatal(err)
	}
	succ, err := Acquire(dir, 0, 1, "w2", time.Second)
	if err != nil || succ.Epoch() != 2 {
		t.Fatalf("post-expire acquire: epoch %d, %v", succ.Epoch(), err)
	}
}

// TestLeaseTornTailRecovered: a torn append (crash mid-write) is truncated
// at the next acquire, and every intact record before it survives.
func TestLeaseTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	l, err := Acquire(dir, 0, 1, "w", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Renew(); err != nil {
		t.Fatal(err)
	}
	path := LeasePath(dir, 0, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record mid-frame.
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := ReadLease(dir, 0, 1)
	if err != nil {
		t.Fatalf("torn tail broke the reader: %v", err)
	}
	if st.Epoch != 1 || st.Op != opAcquire {
		t.Fatalf("intact prefix lost: %+v", st)
	}

	time.Sleep(20 * time.Millisecond)
	succ, err := Acquire(dir, 0, 1, "w2", 10*time.Millisecond)
	if err != nil {
		t.Fatalf("acquire over torn tail: %v", err)
	}
	if succ.Epoch() != 2 {
		t.Fatalf("takeover epoch = %d, want 2", succ.Epoch())
	}
	// The journal is back on a clean frame boundary: the successor's acquire
	// is readable.
	st, _ = ReadLease(dir, 0, 1)
	if st.Epoch != 2 || st.Owner != "w2" {
		t.Fatalf("post-truncation journal desynced: %+v", st)
	}
}

// TestHeartbeatDetectsLoss: the background heartbeat invokes onLost exactly
// once after the lease is fenced, and stops.
func TestHeartbeatDetectsLoss(t *testing.T) {
	dir := t.TempDir()
	ttl := 40 * time.Millisecond
	l, err := Acquire(dir, 0, 1, "w", ttl)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	var mu sync.Mutex
	losses := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		l.Heartbeat(ctx, 10*time.Millisecond, func(err error) {
			mu.Lock()
			losses++
			mu.Unlock()
			if !errors.Is(err, ErrLeaseLost) {
				t.Errorf("onLost got %v, want ErrLeaseLost", err)
			}
		})
	}()

	// Fence the worker's epoch out from under the heartbeat.
	time.Sleep(25 * time.Millisecond)
	if err := appendLease(dir, leaseRecord{Op: opExpire, Shard: 0, Of: 1, Epoch: l.Epoch(), Time: time.Now()}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("heartbeat did not stop after fencing")
	}
	mu.Lock()
	defer mu.Unlock()
	if losses != 1 {
		t.Fatalf("onLost fired %d times, want 1", losses)
	}
}
