package shard

import (
	"fmt"
	"io"
	"strings"

	"localbp/internal/harness"
)

// MergeReport is the integrity-gate accounting for one merge: what was
// loaded, what was recovered or quarantined on the way, and how much work
// the merged result covers.
type MergeReport struct {
	Shards      int      // N: shard checkpoints expected
	Loaded      int      // shard checkpoints found and decoded
	Experiments int      // completed experiments folded into the merge
	Recovered   []string // per-shard generation-fallback recovery notes
	EmptyShards []int    // shards with no checkpoint AND no assigned work (fine)
}

// MergeError is a structured integrity-gate failure: the merge refuses to
// produce a result set that could silently be wrong. Every field lists run
// ids (or shards) violating one gate.
type MergeError struct {
	MissingShards []int    // shards with assigned work but no readable checkpoint
	Missing       []string // expected ids completed by no shard
	Duplicates    []string // ids completed by more than one shard
	Misplaced     []string // ids completed by a shard the partition does not assign them to
	Unexpected    []string // completed ids outside the expected set
	Corrupt       []string // unrecoverable shard-checkpoint load errors
	OptionDrift   string   // option-stamp disagreement between shards, "" if none
}

// Error renders every violated gate.
func (e *MergeError) Error() string {
	var parts []string
	if len(e.Corrupt) > 0 {
		parts = append(parts, fmt.Sprintf("unrecoverable checkpoints: %s", strings.Join(e.Corrupt, "; ")))
	}
	if e.OptionDrift != "" {
		parts = append(parts, e.OptionDrift)
	}
	if len(e.MissingShards) > 0 {
		parts = append(parts, fmt.Sprintf("shards with assigned work but no checkpoint: %v", e.MissingShards))
	}
	if len(e.Missing) > 0 {
		parts = append(parts, fmt.Sprintf("%d run(s) completed by no shard: %s", len(e.Missing), strings.Join(e.Missing, ", ")))
	}
	if len(e.Duplicates) > 0 {
		parts = append(parts, fmt.Sprintf("%d run(s) completed by more than one shard: %s", len(e.Duplicates), strings.Join(e.Duplicates, ", ")))
	}
	if len(e.Misplaced) > 0 {
		parts = append(parts, fmt.Sprintf("%d run(s) in the wrong shard for this partition: %s", len(e.Misplaced), strings.Join(e.Misplaced, ", ")))
	}
	if len(e.Unexpected) > 0 {
		parts = append(parts, fmt.Sprintf("%d unexpected run(s): %s", len(e.Unexpected), strings.Join(e.Unexpected, ", ")))
	}
	return "shard merge integrity gate: " + strings.Join(parts, "; ")
}

// failed reports whether any gate tripped.
func (e *MergeError) failed() bool {
	return len(e.MissingShards) > 0 || len(e.Missing) > 0 || len(e.Duplicates) > 0 ||
		len(e.Misplaced) > 0 || len(e.Unexpected) > 0 || len(e.Corrupt) > 0 || e.OptionDrift != ""
}

// Merge folds dir's N shard checkpoints into one, refusing anything that
// could silently lose or duplicate work:
//
//   - each shard checkpoint is CRC-validated on load (harness.LoadCheckpoint:
//     torn writes detected, damaged files quarantined as .corrupt, previous
//     generations recovered automatically — recoveries are reported, not
//     hidden);
//   - all shards must carry the same result-shaping option stamp;
//   - placement: every completed id must live in the shard Index assigns it
//     to (a misplaced id means two sweeps with different N shared a dir);
//   - coverage: every id in expected appears exactly once across all
//     shards — zero lost, zero duplicated.
//
// On success the merged checkpoint is interchangeable with one written by a
// single-process sweep of the same ids.
func Merge(dir string, shards int, expected []string) (*harness.Checkpoint, *MergeReport, error) {
	if shards < 1 {
		return nil, nil, fmt.Errorf("shard: merge needs shards >= 1")
	}
	rep := &MergeReport{Shards: shards}
	merr := &MergeError{}
	want := Partition(expected, shards)
	parts := make([]*harness.Checkpoint, shards)

	for k := 0; k < shards; k++ {
		ck, err := harness.LoadCheckpoint(CheckpointPath(dir, k, shards))
		if err != nil {
			merr.Corrupt = append(merr.Corrupt, fmt.Sprintf("shard %d: %v", k, err))
			continue
		}
		if ck == nil {
			if len(want[k]) > 0 {
				merr.MissingShards = append(merr.MissingShards, k)
			} else {
				rep.EmptyShards = append(rep.EmptyShards, k)
			}
			continue
		}
		rep.Loaded++
		if ck.Note != "" {
			rep.Recovered = append(rep.Recovered, fmt.Sprintf("shard %d: %s", k, ck.Note))
		}
		for _, id := range ck.CompletedIDs() {
			if Index(id, shards) != k {
				merr.Misplaced = append(merr.Misplaced, fmt.Sprintf("%s (in shard %d, belongs to %d)", id, k, Index(id, shards)))
			}
		}
		parts[k] = ck
	}

	merged, err := harness.MergeCheckpoints(parts)
	switch {
	case err == nil:
	case strings.Contains(err.Error(), "more than one part"):
		// Shouldn't be reachable while placement is enforced, but surface it
		// through the same structured gate.
		merr.Duplicates = append(merr.Duplicates, err.Error())
	case strings.Contains(err.Error(), "no checkpoints"):
		merr.MissingShards = append(merr.MissingShards, allShards(shards, rep.EmptyShards)...)
	default:
		merr.OptionDrift = err.Error()
	}

	// Coverage accounting: every expected id exactly once, nothing extra.
	if merged != nil {
		have := merged.Completed
		seen := map[string]bool{}
		for _, id := range expected {
			seen[id] = true
			if _, ok := have[id]; !ok {
				merr.Missing = append(merr.Missing, id)
			}
		}
		for _, id := range merged.CompletedIDs() {
			if !seen[id] {
				merr.Unexpected = append(merr.Unexpected, id)
			}
		}
		rep.Experiments = len(have)
	}

	if merr.failed() {
		return nil, rep, merr
	}
	return merged, rep, nil
}

// allShards returns 0..n-1 minus the listed empty shards.
func allShards(n int, empty []int) []int {
	skip := map[int]bool{}
	for _, k := range empty {
		skip[k] = true
	}
	var out []int
	for k := 0; k < n; k++ {
		if !skip[k] {
			out = append(out, k)
		}
	}
	return out
}

// Summary renders the one-line merge outcome.
func (r *MergeReport) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "merged %d/%d shard checkpoint(s), %d experiment(s)", r.Loaded, r.Shards, r.Experiments)
	if len(r.EmptyShards) > 0 {
		fmt.Fprintf(&b, ", %d shard(s) had no assigned work", len(r.EmptyShards))
	}
	if len(r.Recovered) > 0 {
		fmt.Fprintf(&b, "; recoveries: %s", strings.Join(r.Recovered, "; "))
	}
	return b.String()
}

// Render writes the canonical, timing-free sweep output for ids from ck:
// every experiment in the given order as "== id — title" followed by its
// stored output. The same render of a single-process sweep's checkpoint
// over the same ids is bit-identical — the differential gate the sharded
// smoke test pins. Wall-clock seconds are deliberately absent: they are the
// one legitimately nondeterministic field in a checkpoint.
func Render(w io.Writer, ck *harness.Checkpoint, ids []string) error {
	for _, id := range ids {
		e, ok := harness.ExperimentByID(id)
		if !ok {
			return fmt.Errorf("shard: render: unknown experiment %s", id)
		}
		out, ok := ck.Done(id)
		if !ok {
			return fmt.Errorf("shard: render: experiment %s not in checkpoint", id)
		}
		if _, err := fmt.Fprintf(w, "== %s — %s\n%s\n", e.ID, e.Title, out.Output); err != nil {
			return err
		}
	}
	return nil
}
