package workloads

import (
	"fmt"
	"strings"

	"localbp/internal/trace"
)

// Table 1 counts.
const (
	nServer   = 29
	nHPC      = 8
	nISPEC    = 34
	nFSPEC    = 64
	nMM       = 15
	nBP       = 16
	nPersonal = 36

	// SuiteSize is the total workload count (202, matching Table 1).
	SuiteSize = nServer + nHPC + nISPEC + nFSPEC + nMM + nBP + nPersonal
)

// baseProfile returns the category's center-point profile. Individual
// workloads jitter around it (see jitter).
func baseProfile(c Category) Profile {
	switch c {
	case Server:
		// Many distinct branch PCs, moderate loop periods, lots of
		// biased/correlated noise: high repairs-per-misprediction.
		return Profile{
			LoopSites: 16, PeriodMin: 16, PeriodMax: 110,
			EntropicFrac: 0.12, NoisyFrac: 0.10, CycleFrac: 0.12,
			BodyBranchMax: 3, NestProb: 0.62,
			CondSites: 22, PatternMin: 3, PatternMax: 9,
			PeriodicFrac: 0.30, CorrFrac: 0.20, BiasedFrac: 0.22, BiasedP: 0.88,
			BlockMin: 3, BlockMax: 10, DepDist: 5, Independence: 0.90,
			Mem: trace.MemProfile{FootprintLog2: 19, StreamFrac: 0.70, LoadFrac: 0.28, StoreFrac: 0.10},
		}
	case HPC:
		// Loop-dominated with long, stable trip counts: the best case for
		// a loop predictor. Streaming memory, high ILP.
		return Profile{
			LoopSites: 14, PeriodMin: 16, PeriodMax: 120,
			EntropicFrac: 0.05, NoisyFrac: 0.08, CycleFrac: 0.10,
			BodyBranchMax: 2, NestProb: 0.70,
			CondSites: 6, PatternMin: 2, PatternMax: 6,
			PeriodicFrac: 0.45, CorrFrac: 0.15, BiasedFrac: 0.15, BiasedP: 0.92,
			BlockMin: 4, BlockMax: 14, DepDist: 8, Independence: 0.93,
			Mem: trace.MemProfile{FootprintLog2: 20, StreamFrac: 0.92, LoadFrac: 0.30, StoreFrac: 0.12},
		}
	case ISPEC:
		// Mix of loops and if-then-else patterns, as the paper notes
		// (good combination of both branch types).
		return Profile{
			LoopSites: 14, PeriodMin: 18, PeriodMax: 130,
			EntropicFrac: 0.12, NoisyFrac: 0.10, CycleFrac: 0.12,
			BodyBranchMax: 2, NestProb: 0.58,
			CondSites: 18, PatternMin: 3, PatternMax: 10,
			PeriodicFrac: 0.32, CorrFrac: 0.20, BiasedFrac: 0.20, BiasedP: 0.88,
			BlockMin: 3, BlockMax: 10, DepDist: 5, Independence: 0.91,
			Mem: trace.MemProfile{FootprintLog2: 18, StreamFrac: 0.78, LoadFrac: 0.26, StoreFrac: 0.10},
		}
	case FSPEC:
		// Loopy but memory-bound: branch gains translate into the
		// smallest IPC improvement of any category.
		return Profile{
			LoopSites: 10, PeriodMin: 24, PeriodMax: 160,
			EntropicFrac: 0.10, NoisyFrac: 0.10, CycleFrac: 0.10,
			BodyBranchMax: 1, NestProb: 0.58,
			CondSites: 8, PatternMin: 2, PatternMax: 6,
			PeriodicFrac: 0.35, CorrFrac: 0.18, BiasedFrac: 0.18, BiasedP: 0.92,
			BlockMin: 6, BlockMax: 16, DepDist: 3, Independence: 0.85,
			Mem: trace.MemProfile{FootprintLog2: 23, StreamFrac: 0.60, LoadFrac: 0.34, StoreFrac: 0.12},
		}
	case Multimedia:
		// Fixed-period kernels disturbed by frequent hard-to-predict
		// branches: confident loop state gets corrupted often, so the
		// category loses performance when the BHT is not repaired.
		return Profile{
			LoopSites: 12, PeriodMin: 14, PeriodMax: 80,
			EntropicFrac: 0.06, NoisyFrac: 0.08, CycleFrac: 0.16,
			BodyBranchMax: 3, NestProb: 0.45,
			CondSites: 14, PatternMin: 4, PatternMax: 12,
			PeriodicFrac: 0.28, CorrFrac: 0.10, BiasedFrac: 0.30, BiasedP: 0.86,
			BlockMin: 3, BlockMax: 10, DepDist: 6, Independence: 0.92,
			Mem: trace.MemProfile{FootprintLog2: 18, StreamFrac: 0.85, LoadFrac: 0.30, StoreFrac: 0.14},
		}
	case BusinessProd:
		// Branchy interactive code: short repeating patterns, periodic
		// conditionals, and noisy branches that trigger many flushes.
		return Profile{
			LoopSites: 12, PeriodMin: 12, PeriodMax: 72,
			EntropicFrac: 0.08, NoisyFrac: 0.10, CycleFrac: 0.14,
			BodyBranchMax: 3, NestProb: 0.40,
			CondSites: 24, PatternMin: 3, PatternMax: 10,
			PeriodicFrac: 0.38, CorrFrac: 0.10, BiasedFrac: 0.26, BiasedP: 0.87,
			BlockMin: 3, BlockMax: 9, DepDist: 4, Independence: 0.90,
			Mem: trace.MemProfile{FootprintLog2: 18, StreamFrac: 0.72, LoadFrac: 0.26, StoreFrac: 0.12},
		}
	case Personal:
		// Games, codecs and tools: strong local structure with moderate
		// noise; among the biggest MPKI reductions.
		return Profile{
			LoopSites: 14, PeriodMin: 16, PeriodMax: 120,
			EntropicFrac: 0.08, NoisyFrac: 0.10, CycleFrac: 0.14,
			BodyBranchMax: 2, NestProb: 0.58,
			CondSites: 18, PatternMin: 3, PatternMax: 9,
			PeriodicFrac: 0.40, CorrFrac: 0.15, BiasedFrac: 0.20, BiasedP: 0.88,
			BlockMin: 3, BlockMax: 10, DepDist: 5, Independence: 0.91,
			Mem: trace.MemProfile{FootprintLog2: 18, StreamFrac: 0.78, LoadFrac: 0.27, StoreFrac: 0.11},
		}
	default:
		panic(fmt.Sprintf("workloads: unknown category %v", c))
	}
}

// jitter perturbs the base profile per workload so every entry behaves like a
// distinct phase, not a clone.
func jitter(p Profile, r *trace.RNG) Profile {
	scale := func(v int, lo, hi float64) int {
		f := lo + (hi-lo)*r.Float64()
		n := int(float64(v)*f + 0.5)
		if n < 1 {
			n = 1
		}
		return n
	}
	p.LoopSites = scale(p.LoopSites, 0.7, 1.4)
	p.CondSites = scale(p.CondSites, 0.7, 1.4)
	p.PeriodMin = scale(p.PeriodMin, 0.7, 1.3)
	p.PeriodMax = p.PeriodMin + scale(p.PeriodMax-p.PeriodMin, 0.6, 1.5)
	p.EntropicFrac *= 0.6 + 0.8*r.Float64()
	p.NoisyFrac *= 0.6 + 0.8*r.Float64()
	p.BiasedP += 0.08 * (r.Float64() - 0.5)
	p.BlockMax = p.BlockMin + scale(p.BlockMax-p.BlockMin, 0.6, 1.4)
	p.DepDist = scale(p.DepDist, 0.7, 1.5)
	p.Mem.StreamFrac *= 0.8 + 0.4*r.Float64()
	if p.Mem.StreamFrac > 0.95 {
		p.Mem.StreamFrac = 0.95
	}
	return p
}

// categoryNames supplies workload name stems per category, echoing Table 1's
// application inventory. Stems repeat with numeric suffixes as needed.
var categoryNames = map[Category][]string{
	Server: {"hadoop-analytics", "cloud-compression", "spark-streaming",
		"bigbench-q", "cassandra-txn", "specjbb", "websearch", "particle-render"},
	HPC: {"hplinpack", "specmpi", "moldyn", "sigproc", "fftproc"},
	ISPEC: {"ispec06-perlbench", "ispec06-bzip2", "ispec06-gcc", "ispec06-mcf",
		"ispec06-gobmk", "ispec06-hmmer", "ispec06-sjeng", "ispec06-libquantum",
		"ispec06-h264ref", "ispec06-omnetpp", "ispec06-astar", "ispec06-xalancbmk",
		"ispec17-perlbench", "ispec17-gcc", "ispec17-mcf", "ispec17-omnetpp",
		"ispec17-xalancbmk", "ispec17-x264", "ispec17-deepsjeng", "ispec17-leela",
		"ispec17-exchange2", "ispec17-xz"},
	FSPEC: {"fspec06-bwaves", "fspec06-gamess", "fspec06-milc", "fspec06-zeusmp",
		"fspec06-gromacs", "fspec06-cactusADM", "fspec06-leslie3d", "fspec06-namd",
		"fspec06-dealII", "fspec06-soplex", "fspec06-povray", "fspec06-calculix",
		"fspec06-gemsFDTD", "fspec06-tonto", "fspec06-lbm", "fspec06-wrf",
		"fspec06-sphinx3", "fspec17-bwaves", "fspec17-cactuBSSN", "fspec17-lbm",
		"fspec17-wrf", "fspec17-cam4", "fspec17-pop2", "fspec17-imagick",
		"fspec17-nab", "fspec17-fotonik3d", "fspec17-roms"},
	Multimedia:   {"photo-edit", "animation", "video-convert", "mediaplayer"},
	BusinessProd: {"sysmark-photoshop", "sysmark-office", "pdf-edit", "email", "presentation", "spreadsheet", "documents"},
	Personal: {"tabletmark-email", "eembc-dither", "voice-to-text", "image-convert",
		"game", "mobilexprt", "geekbench", "tabletmark", "eembc"},
}

// special applies workload-specific tuning for the outliers the paper names
// in Figure 7c: cloud-compression and tabletmark-email gain >15% IPC with a
// local predictor; eembc-dither thrashes the 128-entry BHT/PT and loses.
func special(name string, p Profile) Profile {
	switch {
	case strings.HasPrefix(name, "cloud-compression"), strings.HasPrefix(name, "tabletmark-email"):
		// Dominated by long, perfectly stable loops that overflow any
		// realistic global history: enormous local-predictor opportunity.
		p.LoopSites = 8
		p.PeriodMin, p.PeriodMax = 48, 180
		p.EntropicFrac, p.NoisyFrac, p.CycleFrac = 0.02, 0.04, 0.05
		p.CondSites = 8
		p.BiasedFrac, p.BiasedP = 0.35, 0.72
		p.PeriodicFrac = 0.4
		p.BodyBranchMax = 2
	case strings.HasPrefix(name, "eembc-dither"):
		// Far more hot loop branches than the BHT/PT can hold: thrashing.
		p.LoopSites = 220
		p.PeriodMin, p.PeriodMax = 6, 24
		p.EntropicFrac, p.NoisyFrac = 0.10, 0.10
		p.CondSites = 40
		p.BodyBranchMax = 1
		p.NestProb = 0
	}
	return p
}

// Suite returns the full 202-entry workload list in category order.
// The list is deterministic: names, seeds and profiles never change.
func Suite() []Workload {
	var out []Workload
	add := func(c Category, n int) {
		stems := categoryNames[c]
		counts := make(map[string]int)
		r := trace.NewRNG(int64(1000 + int(c)))
		for i := 0; i < n; i++ {
			stem := stems[i%len(stems)]
			counts[stem]++
			name := stem
			if counts[stem] > 1 || n > len(stems) {
				name = fmt.Sprintf("%s-%02d", stem, counts[stem])
			}
			// The named outliers keep their bare stem for readability.
			if counts[stem] == 1 && (stem == "cloud-compression" || stem == "tabletmark-email" ||
				stem == "eembc-dither" || stem == "sysmark-photoshop") {
				name = stem
			}
			p := special(name, jitter(baseProfile(c), r))
			out = append(out, Workload{
				Name:     name,
				Category: c,
				Seed:     int64(int(c)*100000 + i*977 + 13),
				Profile:  p,
			})
		}
	}
	add(Server, nServer)
	add(HPC, nHPC)
	add(ISPEC, nISPEC)
	add(FSPEC, nFSPEC)
	add(Multimedia, nMM)
	add(BusinessProd, nBP)
	add(Personal, nPersonal)
	return out
}

// QuickSuite returns a reduced, category-balanced subset (about a quarter of
// the full suite) for fast iteration on a single CPU.
func QuickSuite() []Workload {
	full := Suite()
	var out []Workload
	perCat := make(map[Category]int)
	want := map[Category]int{
		Server: 7, HPC: 3, ISPEC: 8, FSPEC: 14, Multimedia: 4, BusinessProd: 5, Personal: 9,
	}
	for _, w := range full {
		if perCat[w.Category] < want[w.Category] {
			out = append(out, w)
			perCat[w.Category]++
		}
	}
	return out
}

// ByName returns the workload with the given name, searching the Table-1
// suite and then the stressor suite, or false.
func ByName(name string) (Workload, bool) {
	for _, w := range Suite() {
		if w.Name == name {
			return w, true
		}
	}
	for _, w := range StressSuite() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// CategoryCount returns how many suite entries belong to c.
func CategoryCount(c Category) int {
	switch c {
	case Server:
		return nServer
	case HPC:
		return nHPC
	case ISPEC:
		return nISPEC
	case FSPEC:
		return nFSPEC
	case Multimedia:
		return nMM
	case BusinessProd:
		return nBP
	case Personal:
		return nPersonal
	default:
		return 0
	}
}
