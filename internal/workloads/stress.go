package workloads

import (
	"fmt"

	"localbp/internal/trace"
)

// Stressor workloads after the Firestorm/Oryon branch-predictor dissection
// (arXiv 2411.13900): where the Table-1 suite samples realistic mixtures,
// each stressor isolates one predictor mechanism and sweeps it through a
// ladder, so sweep output reads as a response curve — the loop-exit distance
// at which global history stops capturing exits, the pattern length at which
// each history budget cliffs, the hot-branch population at which the
// BHT/PT's 128 entries start thrashing.

// StressKind selects the stressor family.
type StressKind uint8

// The three stressor families.
const (
	// StressLoopExit builds loops with a fixed trip count of Param: exits
	// are perfectly periodic at distance Param, predictable by TAGE only
	// while Param fits its history, and by a loop predictor at any Param.
	StressLoopExit StressKind = iota
	// StressHistoryCliff builds if-then-else sites taken every Param-th
	// visit with zero noise: a pure history-length probe.
	StressHistoryCliff
	// StressAliasing builds Param short fixed-period loops: a hot-branch
	// population sweep against local-predictor capacity.
	StressAliasing
)

// String names the stressor family.
func (k StressKind) String() string {
	switch k {
	case StressLoopExit:
		return "loopexit"
	case StressHistoryCliff:
		return "histcliff"
	case StressAliasing:
		return "aliasing"
	default:
		return fmt.Sprintf("stress(%d)", uint8(k))
	}
}

// StressSpec parameterizes one stressor workload: a family and its ladder
// rung (trip count, pattern period, or loop population).
type StressSpec struct {
	Kind  StressKind
	Param int
}

// Ladder rungs. Trip counts and pattern periods sweep across every plausible
// history length (TAGE's longest table reaches a few hundred bits); the
// aliasing populations bracket the paper's 128-entry BHT/PT from comfortable
// fit to 8x overcommit.
var (
	loopExitTrips       = []int{2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384}
	historyCliffPeriods = []int{4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128}
	aliasingPops        = []int{32, 64, 96, 128, 192, 256, 384, 512, 768, 1024}
)

// BuildStressProgram constructs the stressor program for a spec. Like
// BuildProgram it is deterministic in the seed; filler-block lengths draw
// from the seeded RNG while the swept parameter is exact.
func BuildStressProgram(s StressSpec, seed int64) trace.Program {
	r := trace.NewRNG(seed)
	var regions []trace.Region
	site := 0
	nextSite := func() int { n := site; site++; return n }

	switch s.Kind {
	case StressLoopExit:
		// Enough distinct loops that one mispredicted exit cannot be
		// amortized by a single warm branch, few enough that the BHT holds
		// them all: the sweep isolates exit distance, not capacity.
		for i := 0; i < 24; i++ {
			body := []trace.Region{trace.Block{Site: nextSite(), Len: r.Range(3, 8)}}
			regions = append(regions,
				trace.Loop{Site: nextSite(), Periods: trace.FixedPeriod(s.Param), Body: body},
				trace.Block{Site: nextSite(), Len: r.Range(2, 6)})
		}
	case StressHistoryCliff:
		for i := 0; i < 16; i++ {
			regions = append(regions,
				trace.Cond{
					Site:    nextSite(),
					Outcome: &trace.PeriodicPattern{Period: s.Param},
					ThenLen: r.Range(2, 8),
					ElseLen: r.Range(0, 4),
				},
				trace.Block{Site: nextSite(), Len: r.Range(3, 8)})
		}
	case StressAliasing:
		for i := 0; i < s.Param; i++ {
			body := []trace.Region{trace.Block{Site: nextSite(), Len: r.Range(2, 4)}}
			regions = append(regions,
				trace.Loop{Site: nextSite(), Periods: trace.FixedPeriod(r.Range(4, 16)), Body: body})
		}
	default:
		panic(fmt.Sprintf("workloads: unknown stress kind %d", s.Kind))
	}
	return trace.Program{
		Regions:      regions,
		MemProfile:   trace.DefaultMemProfile(),
		DepDist:      4,
		Independence: 0.90,
	}
}

// StressSuite returns the stressor ladder workloads (37 entries). They are
// deliberately not part of Suite(): the Table-1 suite and its golden pins
// stay untouched, and callers opt into the stressors by name or by iterating
// this list.
func StressSuite() []Workload {
	var out []Workload
	add := func(kind StressKind, cat Category, params []int) {
		for _, p := range params {
			out = append(out, Workload{
				Name:     fmt.Sprintf("stress-%s-%04d", kind, p),
				Category: cat,
				Seed:     9_000_000 + int64(kind)*1000 + int64(p),
				Stress:   &StressSpec{Kind: kind, Param: p},
			})
		}
	}
	add(StressLoopExit, LoopExit, loopExitTrips)
	add(StressHistoryCliff, HistoryCliff, historyCliffPeriods)
	add(StressAliasing, Aliasing, aliasingPops)
	return out
}

// StressSuiteSize is the stressor workload count.
var StressSuiteSize = len(loopExitTrips) + len(historyCliffPeriods) + len(aliasingPops)
