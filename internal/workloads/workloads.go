// Package workloads defines the 202-workload evaluation suite mirroring
// Table 1 of the paper: Server (29), HPC (8), ISPEC (34), FSPEC (64),
// Multimedia (15), Business Productivity (16) and Personal (36).
//
// Each workload is a seeded synthetic program (see internal/trace and
// DESIGN.md §3). Category profiles are tuned so the suite reproduces the
// paper's qualitative signatures: HPC/BP/Personal show the largest local-
// predictor MPKI reductions, FSPEC the smallest IPC gains, MM/BP lose
// performance when the BHT is not repaired, and Server workloads touch many
// distinct branch PCs.
package workloads

import (
	"fmt"
	"path/filepath"

	"localbp/internal/trace"
)

// Category is a workload suite category from Table 1.
type Category uint8

// The seven categories of Table 1.
const (
	Server Category = iota
	HPC
	ISPEC
	FSPEC
	Multimedia
	BusinessProd
	Personal
	NumCategories
)

// Stressor and external categories (beyond Table 1; see StressSuite). They
// sit after NumCategories on purpose: Categories() and every per-category
// aggregation over the paper's suite stay the seven Table-1 entries.
const (
	// LoopExit is the loop-exit-distance ladder: fixed trip counts swept
	// from trivially short to far past any global-history window, after the
	// Firestorm/Oryon loop-exit microbenchmarks (arXiv 2411.13900).
	LoopExit Category = NumCategories + 1 + iota
	// HistoryCliff sweeps periodic if-then-else pattern lengths to locate
	// each predictor's effective history-length cliff.
	HistoryCliff
	// Aliasing sweeps the hot loop-branch population past the BHT/PT
	// capacity to expose aliasing and replacement behavior.
	Aliasing
	// External marks file-backed workloads replayed from on-disk traces.
	External
)

// String returns the category label used in the paper's figures.
func (c Category) String() string {
	switch c {
	case Server:
		return "Server"
	case HPC:
		return "HPC"
	case ISPEC:
		return "ISPEC"
	case FSPEC:
		return "FSPEC"
	case Multimedia:
		return "MM"
	case BusinessProd:
		return "BP"
	case Personal:
		return "Personal"
	case LoopExit:
		return "LoopExit"
	case HistoryCliff:
		return "HistoryCliff"
	case Aliasing:
		return "Aliasing"
	case External:
		return "External"
	default:
		return fmt.Sprintf("Category(%d)", uint8(c))
	}
}

// Categories lists all categories in display order.
func Categories() []Category {
	return []Category{Server, HPC, ISPEC, FSPEC, Multimedia, BusinessProd, Personal}
}

// Profile parameterizes the synthetic program builder for one workload.
type Profile struct {
	// Loop sites.
	LoopSites     int     // number of distinct loop branches
	PeriodMin     int     // minimum loop trip count
	PeriodMax     int     // maximum loop trip count
	EntropicFrac  float64 // fraction of loops with data-dependent trip counts
	NoisyFrac     float64 // fraction of loops with mildly noisy trip counts
	CycleFrac     float64 // fraction of loops alternating between trip counts
	BodyBranchMax int     // max conditional sites inside a loop body
	NestProb      float64 // probability a loop contains an inner loop

	// If-then-else sites.
	CondSites    int
	PatternMin   int // repeating-pattern length range
	PatternMax   int
	PeriodicFrac float64 // fraction of conds that are NNN...T periodic
	CorrFrac     float64 // fraction of conds correlated with global history
	BiasedFrac   float64 // fraction of conds that are biased-random
	BiasedP      float64 // taken probability of biased sites

	// Filler shape.
	BlockMin, BlockMax int
	DepDist            int
	Independence       float64
	Mem                trace.MemProfile
}

// Workload is one entry of the evaluation suite. Exactly one stream shape
// applies: profile-generated (the default), stressor-generated (Stress set),
// or file-backed replay (TraceFile set).
type Workload struct {
	Name     string
	Category Category
	Seed     int64
	Profile  Profile

	// Stress selects a stressor program instead of the Profile builder
	// (loop-exit ladders, history cliffs, aliasing populations).
	Stress *StressSpec
	// TraceFile replays an on-disk trace (LBP1/LBP2/ChampSim) instead of
	// generating; Seed and Profile are unused.
	TraceFile string
}

// FromFile wraps an on-disk trace as a file-backed workload.
func FromFile(path string) Workload {
	return Workload{Name: filepath.Base(path), Category: External, TraceFile: path}
}

// Generate builds the workload's dynamic instruction stream of n
// instructions. Generation is deterministic in the workload seed; a
// file-backed workload panics (its stream comes from disk — use Open).
func (w Workload) Generate(n int) []trace.Inst {
	return w.GenerateInto(nil, n)
}

// GenerateInto is Generate writing into dst's storage (see
// trace.GenerateInto): recycling one flat chunk across workloads avoids a
// per-trace allocation. The stream is bit-identical to Generate's.
func (w Workload) GenerateInto(dst []trace.Inst, n int) []trace.Inst {
	if w.TraceFile != "" {
		panic(fmt.Sprintf("workloads: %s is file-backed; use Open, not Generate", w.Name))
	}
	prog := w.buildProgram()
	return trace.GenerateInto(dst, prog, n, w.Seed^0x5bd1e995)
}

// buildProgram picks the stressor or profile builder.
func (w Workload) buildProgram() trace.Program {
	if w.Stress != nil {
		return BuildStressProgram(*w.Stress, w.Seed)
	}
	return BuildProgram(w.Profile, w.Seed)
}

// Open returns a streaming source of the workload's first n instructions
// (n <= 0 means the whole stream for file-backed workloads; generated
// workloads require n > 0). File-backed sources hold an open file — release
// with trace.CloseSource.
func (w Workload) Open(n int) (trace.Source, error) {
	if w.TraceFile != "" {
		src, err := trace.OpenSource(w.TraceFile)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			src = trace.Limit(src, n)
		}
		return src, nil
	}
	if n <= 0 {
		return nil, fmt.Errorf("workloads: %s is generated; Open needs an instruction count", w.Name)
	}
	return trace.NewSliceSource(w.Generate(n)), nil
}

// SiteKind classifies a branch site for analysis tooling.
type SiteKind uint8

// Branch site kinds produced by the program builder.
const (
	KindLoopFixed SiteKind = iota
	KindLoopNoisy
	KindLoopCycle
	KindLoopEntropic
	KindLoopInner
	KindCondPeriodic
	KindCondCorrelated
	KindCondBiased
	KindCondPattern
)

// String names the site kind.
func (k SiteKind) String() string {
	switch k {
	case KindLoopFixed:
		return "loop-fixed"
	case KindLoopNoisy:
		return "loop-noisy"
	case KindLoopCycle:
		return "loop-cycle"
	case KindLoopEntropic:
		return "loop-entropic"
	case KindLoopInner:
		return "loop-inner"
	case KindCondPeriodic:
		return "cond-periodic"
	case KindCondCorrelated:
		return "cond-corr"
	case KindCondBiased:
		return "cond-biased"
	case KindCondPattern:
		return "cond-pattern"
	default:
		return "unknown"
	}
}

// SiteInfo describes one branch site of a built program.
type SiteInfo struct {
	PC     uint64
	Kind   SiteKind
	Detail string
}

// BuildProgram constructs the synthetic program for a profile.
func BuildProgram(p Profile, seed int64) trace.Program {
	prog, _ := BuildProgramInfo(p, seed)
	return prog
}

// BuildProgramInfo constructs the synthetic program for a profile and
// returns the branch-site inventory. The program structure (sites, periods,
// patterns) is drawn deterministically from seed; the dynamic stream adds a
// second level of seeded randomness in Generate.
func BuildProgramInfo(p Profile, seed int64) (trace.Program, []SiteInfo) {
	r := trace.NewRNG(seed)
	var regions []trace.Region
	var sites []SiteInfo
	site := 0
	nextSite := func() int { s := site; site++; return s }
	noteSite := func(s int, k SiteKind, detail string) {
		sites = append(sites, SiteInfo{PC: trace.SitePC(s), Kind: k, Detail: detail})
	}

	block := func() trace.Region {
		return trace.Block{Site: nextSite(), Len: r.Range(p.BlockMin, p.BlockMax)}
	}

	makeCond := func() trace.Region {
		s := nextSite()
		var g trace.PatternGen
		switch v := r.Float64(); {
		case v < p.PeriodicFrac:
			// Periodic conditionals fire often enough to matter: their
			// periods sit at the low end of the loop-period range.
			lo := max(4, p.PeriodMin/2)
			hi := min(48, max(lo+2, p.PeriodMax/2))
			g = &trace.PeriodicPattern{
				Period: r.Range(lo, hi),
				Jitter: 2,
				Prob:   0.05,
			}
			noteSite(s, KindCondPeriodic, g.Describe())
		case v < p.PeriodicFrac+p.CorrFrac:
			g = trace.CorrelatedPattern{
				Mask:  uint64(1)<<uint(r.Range(1, 10)) | uint64(1)<<uint(r.Range(1, 6)),
				Noise: 0.02,
			}
			noteSite(s, KindCondCorrelated, g.Describe())
		case v < p.PeriodicFrac+p.CorrFrac+p.BiasedFrac:
			g = trace.BiasedPattern{P: p.BiasedP}
			noteSite(s, KindCondBiased, g.Describe())
		default:
			n := r.Range(p.PatternMin, p.PatternMax)
			pat := make([]bool, n)
			for i := range pat {
				pat[i] = r.Bool(0.5)
			}
			// Ensure the pattern is not constant so it stays a live branch.
			pat[0], pat[n-1] = true, false
			g = &trace.RepeatingPattern{Pattern: pat}
			noteSite(s, KindCondPattern, g.Describe())
		}
		return trace.Cond{
			Site:    s,
			Outcome: g,
			ThenLen: r.Range(2, 1+p.BlockMax),
			ElseLen: r.Range(0, p.BlockMin),
		}
	}

	makePeriods := func() trace.PeriodGen {
		base := r.Range(p.PeriodMin, p.PeriodMax)
		switch v := r.Float64(); {
		case v < p.EntropicFrac:
			return trace.EntropicPeriod{Min: max(2, base/2), Max: base + base/2 + 1}
		case v < p.EntropicFrac+p.NoisyFrac:
			return trace.NoisyPeriod{Base: base, Jitter: max(1, base/8), Prob: 0.08}
		case v < p.EntropicFrac+p.NoisyFrac+p.CycleFrac:
			alt := r.Range(p.PeriodMin, p.PeriodMax)
			reps := r.Range(2, 6)
			counts := make([]int, reps+1)
			for i := 0; i < reps; i++ {
				counts[i] = base
			}
			counts[reps] = alt
			return &trace.CyclePeriod{Counts: counts}
		default:
			return trace.FixedPeriod(base)
		}
	}

	// Inner loops run short trip counts so one outer visit stays bounded
	// (and so the suite's instruction budget reaches every site).
	makeInnerPeriods := func() trace.PeriodGen {
		base := r.Range(3, 12)
		if r.Bool(p.EntropicFrac) {
			return trace.EntropicPeriod{Min: 2, Max: base + 3}
		}
		return trace.FixedPeriod(base)
	}

	var makeLoop func(depth int) trace.Region
	makeLoop = func(depth int) trace.Region {
		s := nextSite()
		var body []trace.Region
		bigBody := depth == 0 && r.Bool(0.3)
		if bigBody {
			// A share of loops have substantial bodies, as real hot
			// loops do; one iteration exceeds the in-flight window, so
			// even a retire-time (delayed) BHT update sees a current
			// count — the sub-population where the paper's
			// update-at-retire scheme earns its 41% (paper §6.2).
			body = append(body, trace.Block{Site: nextSite(), Len: r.Range(80, 150)})
		} else {
			body = append(body, block())
		}
		nCond := r.Range(0, p.BodyBranchMax)
		if bigBody && nCond == 0 {
			nCond = 1 // keep the history diluted so TAGE cannot capture the exit
		}
		for i := 0; i < nCond; i++ {
			body = append(body, makeCond())
		}
		if bigBody {
			body = append(body, trace.Block{Site: nextSite(), Len: r.Range(80, 150)})
		}
		if depth < 1 && r.Bool(p.NestProb) {
			body = append(body, makeLoop(depth+1))
		}
		body = append(body, block())
		periods := makePeriods()
		if depth > 0 {
			periods = makeInnerPeriods()
			noteSite(s, KindLoopInner, periods.Describe())
		} else {
			kind := KindLoopFixed
			switch periods.(type) {
			case trace.EntropicPeriod:
				kind = KindLoopEntropic
			case trace.NoisyPeriod:
				kind = KindLoopNoisy
			case *trace.CyclePeriod:
				kind = KindLoopCycle
			}
			noteSite(s, kind, periods.Describe())
		}
		return trace.Loop{Site: s, Periods: periods, Body: body}
	}

	for i := 0; i < p.LoopSites; i++ {
		regions = append(regions, makeLoop(0))
		if r.Bool(0.5) {
			regions = append(regions, makeCond())
		}
		regions = append(regions, block())
	}
	for i := 0; i < p.CondSites; i++ {
		regions = append(regions, makeCond(), block())
	}

	return trace.Program{Regions: regions, MemProfile: p.Mem, DepDist: p.DepDist, Independence: p.Independence}, sites
}
