package workloads

import (
	"reflect"
	"testing"

	"localbp/internal/trace"
)

func TestSuiteSizeMatchesTable1(t *testing.T) {
	suite := Suite()
	if len(suite) != SuiteSize {
		t.Fatalf("suite has %d entries, want %d", len(suite), SuiteSize)
	}
	if SuiteSize != 202 {
		t.Fatalf("SuiteSize = %d, Table 1 totals 202", SuiteSize)
	}
	counts := map[Category]int{}
	for _, w := range suite {
		counts[w.Category]++
	}
	want := map[Category]int{
		Server: 29, HPC: 8, ISPEC: 34, FSPEC: 64,
		Multimedia: 15, BusinessProd: 16, Personal: 36,
	}
	for c, n := range want {
		if counts[c] != n {
			t.Errorf("%v: %d workloads, want %d", c, counts[c], n)
		}
		if CategoryCount(c) != n {
			t.Errorf("CategoryCount(%v) = %d, want %d", c, CategoryCount(c), n)
		}
	}
}

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range Suite() {
		if seen[w.Name] {
			t.Fatalf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a, b := Suite(), Suite()
	if !reflect.DeepEqual(namesOf(a), namesOf(b)) {
		t.Fatal("suite names unstable")
	}
	for i := range a {
		if a[i].Seed != b[i].Seed {
			t.Fatalf("seed of %s unstable", a[i].Name)
		}
	}
}

func namesOf(ws []Workload) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}

func TestNamedOutliersPresent(t *testing.T) {
	for _, name := range []string{"cloud-compression", "tabletmark-email", "eembc-dither", "sysmark-photoshop"} {
		if _, ok := ByName(name); !ok {
			t.Errorf("paper-named workload %q missing from suite", name)
		}
	}
}

func TestByNameMiss(t *testing.T) {
	if _, ok := ByName("not-a-workload"); ok {
		t.Fatal("ByName found a nonexistent workload")
	}
}

func TestGenerateDeterministicPerWorkload(t *testing.T) {
	w := Suite()[0]
	a := w.Generate(5000)
	b := w.Generate(5000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("workload generation not deterministic")
	}
}

func TestWorkloadsDiffer(t *testing.T) {
	suite := Suite()
	a := suite[0].Generate(2000)
	b := suite[1].Generate(2000)
	if reflect.DeepEqual(a, b) {
		t.Fatal("two different workloads generated identical traces")
	}
}

func TestQuickSuiteBalanced(t *testing.T) {
	qs := QuickSuite()
	if len(qs) < 30 || len(qs) >= SuiteSize {
		t.Fatalf("quick suite size %d unreasonable", len(qs))
	}
	counts := map[Category]int{}
	for _, w := range qs {
		counts[w.Category]++
	}
	for _, c := range Categories() {
		if counts[c] == 0 {
			t.Errorf("quick suite missing category %v", c)
		}
	}
}

func TestBuildProgramInfoInventory(t *testing.T) {
	w := Suite()[0]
	prog, sites := BuildProgramInfo(w.Profile, w.Seed)
	if len(prog.Regions) == 0 {
		t.Fatal("program has no regions")
	}
	if len(sites) == 0 {
		t.Fatal("no branch sites recorded")
	}
	seen := map[uint64]bool{}
	for _, si := range sites {
		if seen[si.PC] {
			t.Fatalf("duplicate site PC %#x", si.PC)
		}
		seen[si.PC] = true
		if si.Kind.String() == "unknown" {
			t.Fatalf("site %#x has unknown kind", si.PC)
		}
		if si.Detail == "" {
			t.Fatalf("site %#x has no detail", si.PC)
		}
	}
}

func TestInventoryCoversTraceBranches(t *testing.T) {
	w := Suite()[5]
	_, sites := BuildProgramInfo(w.Profile, w.Seed)
	known := map[uint64]bool{}
	for _, si := range sites {
		known[si.PC] = true
	}
	tr := w.Generate(50_000)
	for _, in := range tr {
		if in.IsBranch() && !known[in.PC] {
			t.Fatalf("trace branch at %#x not in the site inventory", in.PC)
		}
	}
}

func TestCategorySignatures(t *testing.T) {
	// HPC must be the most loop-dominated and streaming; FSPEC the most
	// memory-heavy footprint.
	hpc := baseProfile(HPC)
	fspec := baseProfile(FSPEC)
	bp := baseProfile(BusinessProd)
	if hpc.Mem.StreamFrac <= fspec.Mem.StreamFrac {
		t.Error("HPC should stream more than FSPEC")
	}
	if fspec.Mem.FootprintLog2 <= hpc.Mem.FootprintLog2 {
		t.Error("FSPEC should have the largest memory footprint")
	}
	if bp.CondSites <= hpc.CondSites {
		t.Error("BP should be branchier than HPC")
	}
}

func TestEembcDitherThrashes(t *testing.T) {
	w, ok := ByName("eembc-dither")
	if !ok {
		t.Skip("workload missing")
	}
	if w.Profile.LoopSites < 128 {
		t.Fatalf("eembc-dither has %d loop sites; needs > BHT capacity to thrash", w.Profile.LoopSites)
	}
}

func TestCategoryString(t *testing.T) {
	if Server.String() != "Server" || Multimedia.String() != "MM" || BusinessProd.String() != "BP" {
		t.Fatal("category labels changed")
	}
	if Category(200).String() == "" {
		t.Fatal("unknown category should still render")
	}
}

func TestTraceStatisticsSanity(t *testing.T) {
	// Every category should generate traces with a healthy branch mix.
	for _, c := range Categories() {
		var w Workload
		for _, cand := range Suite() {
			if cand.Category == c {
				w = cand
				break
			}
		}
		tr := w.Generate(30_000)
		s := trace.Summarize(tr)
		frac := float64(s.Branches) / float64(s.Insts)
		if frac < 0.01 || frac > 0.40 {
			t.Errorf("%s (%v): branch fraction %.3f out of range", w.Name, c, frac)
		}
		if s.UniqueBrPC < 3 {
			t.Errorf("%s: only %d branch PCs", w.Name, s.UniqueBrPC)
		}
	}
}
