package workloads

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"localbp/internal/trace"
)

// TestStressSuiteShape pins the ladder inventory: three families, the
// documented rung counts, unique names, and categories outside the Table-1
// aggregation range.
func TestStressSuiteShape(t *testing.T) {
	ws := StressSuite()
	if len(ws) != StressSuiteSize || len(ws) != 37 {
		t.Fatalf("StressSuite has %d entries, want 37", len(ws))
	}
	seen := map[string]bool{}
	counts := map[Category]int{}
	for _, w := range ws {
		if seen[w.Name] {
			t.Fatalf("duplicate stressor name %s", w.Name)
		}
		seen[w.Name] = true
		counts[w.Category]++
		if w.Category < NumCategories {
			t.Fatalf("%s: stressor category %v collides with the Table-1 range", w.Name, w.Category)
		}
		if w.Stress == nil {
			t.Fatalf("%s: missing StressSpec", w.Name)
		}
	}
	if counts[LoopExit] != 16 || counts[HistoryCliff] != 11 || counts[Aliasing] != 10 {
		t.Fatalf("ladder counts: %v", counts)
	}
	for _, c := range Categories() {
		if c >= NumCategories {
			t.Fatalf("Categories() gained a stressor category %v", c)
		}
	}
}

// TestStressWorkloadsGenerate checks each family generates a valid stream
// whose branch population matches the swept parameter's intent.
func TestStressWorkloadsGenerate(t *testing.T) {
	byName := func(name string) Workload {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%s) failed", name)
		}
		return w
	}
	const insts = 40_000

	// Loop-exit ladder: a trip count of T means roughly 1-in-T loop-branch
	// visits is an exit (not-taken); the stream must be loop-dominated.
	le := byName("stress-loopexit-0016").Generate(insts)
	if err := trace.Validate(le); err != nil {
		t.Fatalf("loopexit: %v", err)
	}
	st := trace.Summarize(le)
	if st.Branches == 0 || float64(st.Taken)/float64(st.Branches) < 0.80 {
		t.Fatalf("loopexit-16 should be taken-dominated: %+v", st)
	}

	// History cliff: deterministic in the seed, valid, and branchy.
	hc := byName("stress-histcliff-0032")
	a, b := hc.Generate(20_000), hc.Generate(20_000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("histcliff generation not deterministic at %d", i)
		}
	}
	if err := trace.Validate(a); err != nil {
		t.Fatalf("histcliff: %v", err)
	}

	// Aliasing ladder: the hot-branch population must scale with Param —
	// the 1024-loop rung touches far more distinct branch PCs than the
	// 32-loop rung.
	small := trace.Summarize(byName("stress-aliasing-0032").Generate(insts))
	big := trace.Summarize(byName("stress-aliasing-1024").Generate(insts))
	if big.UniqueBrPC < 4*small.UniqueBrPC {
		t.Fatalf("aliasing population did not scale: 32 -> %d PCs, 1024 -> %d PCs",
			small.UniqueBrPC, big.UniqueBrPC)
	}
	if big.UniqueBrPC < 512 {
		t.Fatalf("aliasing-1024 touches only %d branch PCs", big.UniqueBrPC)
	}
}

// TestFileBackedWorkload round-trips a generated trace through FromFile.
func TestFileBackedWorkload(t *testing.T) {
	gen := QuickSuite()[0]
	tr := gen.Generate(10_000)
	path := filepath.Join(t.TempDir(), "w.lbp2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTraceLBP2(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w := FromFile(path)
	if w.Category != External || w.Name != "w.lbp2" {
		t.Fatalf("FromFile: %+v", w)
	}
	src, err := w.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	defer trace.CloseSource(src)
	got, err := trace.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("replayed %d insts, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("inst %d differs", i)
		}
	}

	lim, err := w.Open(100)
	if err != nil {
		t.Fatal(err)
	}
	defer trace.CloseSource(lim)
	if lim.Len() != 100 {
		t.Fatalf("limited Len = %d", lim.Len())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Generate on a file-backed workload should panic")
		}
	}()
	w.Generate(10)
}

// TestGeneratedWorkloadOpen checks the generated path of Open matches
// Generate bit-exactly.
func TestGeneratedWorkloadOpen(t *testing.T) {
	w := QuickSuite()[1]
	src, err := w.Open(5000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	want := w.Generate(5000)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inst %d differs", i)
		}
	}
	if _, err := w.Open(0); err == nil {
		t.Fatal("generated workload must reject Open(0)")
	}
}

// TestLBP2CompressionOnQuickSuite asserts the ISSUE's headline size claim:
// across the quick suite, LBP2 is at least 2x smaller than LBP1.
func TestLBP2CompressionOnQuickSuite(t *testing.T) {
	const insts = 12_000
	var lbp1Total, lbp2Total int64
	var buf bytes.Buffer
	var scratch []trace.Inst
	for _, w := range QuickSuite() {
		scratch = w.GenerateInto(scratch, insts)
		buf.Reset()
		if err := trace.WriteTrace(&buf, scratch); err != nil {
			t.Fatal(err)
		}
		lbp1Total += int64(buf.Len())
		buf.Reset()
		if err := trace.WriteTraceLBP2(&buf, scratch); err != nil {
			t.Fatal(err)
		}
		lbp2Total += int64(buf.Len())
	}
	ratio := float64(lbp1Total) / float64(lbp2Total)
	t.Logf("quick suite: LBP1 %d B, LBP2 %d B (%.2fx)", lbp1Total, lbp2Total, ratio)
	if ratio < 2 {
		t.Fatalf("LBP2 only %.2fx smaller than LBP1; format must be >= 2x", ratio)
	}
}
