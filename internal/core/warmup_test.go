package core

import (
	"testing"

	"localbp/internal/bpu"
	"localbp/internal/bpu/tage"
	"localbp/internal/trace"
)

func TestWarmupExcludesLeadingInstructions(t *testing.T) {
	tr := loopHeavyTrace(80_000, 41)
	cfg := DefaultConfig()
	cfg.WarmupInsts = 30_000
	c := New(cfg, bpu.NewUnit(tage.KB8(), nil), tr)
	st := c.Run()
	if st.Insts != 50_000 {
		t.Fatalf("post-warmup instructions %d, want 50000", st.Insts)
	}
	if st.Cycles <= 0 || st.IPC() <= 0 {
		t.Fatalf("warmup-adjusted stats degenerate: %+v", st)
	}

	// The warmed measurement must not exceed the full-run cycle count.
	full := New(DefaultConfig(), bpu.NewUnit(tage.KB8(), nil), tr).Run()
	if st.Cycles >= full.Cycles {
		t.Fatalf("warmed cycles %d not below full %d", st.Cycles, full.Cycles)
	}
}

func TestWarmupLowersMPKI(t *testing.T) {
	// Predictor training happens mostly in the first phase: excluding it
	// must not raise MPKI for a learnable workload.
	prog := trace.Program{Regions: []trace.Region{
		trace.Loop{Site: 0, Periods: trace.FixedPeriod(8), Body: []trace.Region{
			trace.Block{Site: 1, Len: 6},
		}},
	}}
	tr := trace.Generate(prog, 100_000, 3)
	full := New(DefaultConfig(), bpu.NewUnit(tage.KB8(), nil), tr).Run()
	cfg := DefaultConfig()
	cfg.WarmupInsts = 50_000
	warm := New(cfg, bpu.NewUnit(tage.KB8(), nil), tr).Run()
	if warm.MPKI() > full.MPKI() {
		t.Fatalf("warmed MPKI %.3f above full-run %.3f", warm.MPKI(), full.MPKI())
	}
}

func TestBTBMissesCounted(t *testing.T) {
	tr := loopHeavyTrace(60_000, 43)
	st := New(DefaultConfig(), bpu.NewUnit(tage.KB8(), nil), tr).Run()
	if st.BTBMisses == 0 {
		t.Fatal("no cold BTB misses on a fresh core")
	}
	// A 2K-entry BTB over a handful of sites: misses must be rare after
	// the cold start.
	if st.BTBMisses > st.Branches/20 {
		t.Fatalf("BTB steady-state misses too high: %d of %d branches",
			st.BTBMisses, st.Branches)
	}
}

func TestBTBDisableRemovesBubbles(t *testing.T) {
	tr := loopHeavyTrace(60_000, 47)
	cfg := DefaultConfig()
	cfg.BTB.Entries = 0 // disable
	st := New(cfg, bpu.NewUnit(tage.KB8(), nil), tr).Run()
	if st.BTBMisses != 0 {
		t.Fatal("BTB misses counted with the BTB disabled")
	}
	withBTB := New(DefaultConfig(), bpu.NewUnit(tage.KB8(), nil), tr).Run()
	if withBTB.Cycles < st.Cycles {
		t.Fatalf("BTB bubbles made the run faster? %d vs %d", withBTB.Cycles, st.Cycles)
	}
}
