package core

import (
	"errors"
	"fmt"
	"io"

	"localbp/internal/bpu"
	"localbp/internal/trace"
)

// Streaming replay: the core consumes a trace.Source through a sliding
// window instead of a resident []Inst, so multi-million-instruction traces
// simulate at fixed memory.
//
// Correctness of the window: fetch only ever moves pos forward, except for
// mispredict/early-resteer rewinds to e.streamPos+1 where e is an in-flight
// entry (ROB or alloc queue). The real-path in-flight population is bounded
// by ROBSize + AllocQueue, so every rewind target is within that distance of
// pos; a refill that retains streamWindow = ROBSize + AllocQueue + slack
// entries behind pos therefore never evicts a reachable rewind target, and a
// streamed run is bit-identical to the resident-program run (pinned by
// TestStreamBitIdentical and the quick-suite file-replay golden test).

// streamChunk is how many instructions a refill reads beyond the retained
// window: large enough to amortize decode, small enough to keep the buffer
// ~1 MiB at the default config.
const streamChunk = 1 << 15

// ErrTraceSource is the sentinel wrapped by SourceError. Match with
// errors.Is(err, core.ErrTraceSource).
var ErrTraceSource = errors.New("core: trace source failed")

// SourceError reports a streamed run aborted because its trace source failed
// mid-run (I/O error, CRC mismatch, stream shorter than its declared length).
type SourceError struct {
	Cycle int64
	Pos   int // stream index at which fetch needed the failed refill
	Cause error
}

// Error renders the position and cause.
func (e *SourceError) Error() string {
	return fmt.Sprintf("core: trace source failed at instruction %d (cycle %d): %v", e.Pos, e.Cycle, e.Cause)
}

// Unwrap lets errors.Is match both ErrTraceSource and the cause.
func (e *SourceError) Unwrap() error { return ErrTraceSource }

// NewStream builds a core that fetches from src through a fixed-size sliding
// window. A source backed by an in-memory slice short-circuits to the
// resident-program core (same object, zero window overhead). The source must
// be positioned at the stream start and is consumed exclusively by this core;
// the caller retains ownership for closing.
func NewStream(cfg Config, unit *bpu.Unit, src trace.Source) (*Core, error) {
	if tr, ok := trace.SourceSlice(src); ok {
		return New(cfg, unit, tr), nil
	}
	total := src.Len()
	if total <= 0 {
		return nil, errors.New("core: empty trace source")
	}
	c := New(cfg, unit, nil)
	c.src = src
	c.total = total
	c.streamWindow = cfg.ROBSize + cfg.AllocQueue + 64
	c.prog = make([]trace.Inst, 0, c.streamWindow+streamChunk)
	return c, nil
}

// refill slides the window forward: retain the last streamWindow entries
// behind pos (rewind targets), then fill the rest of the buffer from the
// source. It returns true when prog[pos-base] is readable afterwards; false
// means srcErr is set and the run must abort.
func (c *Core) refill() bool {
	if c.src == nil {
		// Resident program: pos hit len(prog) only if total was overstated,
		// which New makes impossible; treat as a modeling bug.
		c.srcErr = fmt.Errorf("fetch past resident program end (pos %d, len %d)", c.pos, len(c.prog))
		return false
	}
	if c.srcErr != nil {
		return false
	}
	keepFrom := c.pos - c.streamWindow
	if keepFrom < c.base {
		keepFrom = c.base
	}
	n := copy(c.prog, c.prog[keepFrom-c.base:])
	c.base = keepFrom
	c.prog = c.prog[:n]
	for len(c.prog) < cap(c.prog) {
		m, err := c.src.Next(c.prog[len(c.prog):cap(c.prog)])
		c.prog = c.prog[:len(c.prog)+m]
		if err == io.EOF {
			if c.base+len(c.prog) < c.total {
				c.srcErr = fmt.Errorf("stream ended at instruction %d of %d", c.base+len(c.prog), c.total)
				return false
			}
			break
		}
		if err != nil {
			c.srcErr = err
			return false
		}
	}
	if c.pos-c.base >= len(c.prog) {
		c.srcErr = fmt.Errorf("refill produced no instructions at %d of %d", c.pos, c.total)
		return false
	}
	return true
}
