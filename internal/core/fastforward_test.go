package core

import (
	"testing"

	"localbp/internal/bpu"
	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/obs"
	"localbp/internal/repair"
	"localbp/internal/trace"
	"localbp/internal/workloads"
)

// TestFastForwardDifferential pins the fast-forward's exactness contract:
// for every workload × scheme pairing, a fast-forwarded run must be
// bit-identical — every Stats field, the debug stall counters, and the full
// CPI stack — to the cycle-by-cycle run.
func TestFastForwardDifferential(t *testing.T) {
	schemes := []struct {
		name string
		mk   func() repair.Scheme
	}{
		{"baseline", func() repair.Scheme { return nil }},
		{"no-repair", func() repair.Scheme { return repair.NewNone(loop.Loop128()) }},
		{"forward-coalesce", func() repair.Scheme {
			return repair.NewForwardWalk(loop.Loop128(), 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, true)
		}},
		{"perfect", func() repair.Scheme { return repair.NewPerfect(loop.Loop128()) }},
	}
	ws := workloads.QuickSuite()
	if len(ws) > 6 {
		ws = ws[:6]
	}
	const insts = 12_000
	for _, w := range ws {
		tr := w.Generate(insts)
		for _, sc := range schemes {
			runOne := func(disableFF bool) (Stats, [3]int64, [obs.NumCPIBuckets]int64) {
				cfg := DefaultConfig()
				cfg.DisableFastForward = disableFF
				cpi := obs.NewCPIStack()
				cfg.Obs = &obs.Hooks{CPI: cpi}
				c := New(cfg, bpu.NewUnit(tage.KB8(), sc.mk()), tr)
				st := c.Run()
				fq, rf, nr, _ := c.DebugAllocStalls()
				var stacks [obs.NumCPIBuckets]int64
				cpi.Buckets(func(b obs.CPIBucket, n int64) { stacks[b] = n })
				return st, [3]int64{fq, rf, nr}, stacks
			}
			ffSt, ffDbg, ffCPI := runOne(false)
			plainSt, plainDbg, plainCPI := runOne(true)
			if ffSt != plainSt {
				t.Errorf("%s/%s: stats diverge\n  ff:    %+v\n  plain: %+v", w.Name, sc.name, ffSt, plainSt)
			}
			if ffDbg != plainDbg {
				t.Errorf("%s/%s: dbg stall counters diverge: ff=%v plain=%v", w.Name, sc.name, ffDbg, plainDbg)
			}
			if ffCPI != plainCPI {
				t.Errorf("%s/%s: CPI stacks diverge\n  ff:    %v\n  plain: %v", w.Name, sc.name, ffCPI, plainCPI)
			}
		}
	}
}

// TestFastForwardWatchdogIdentical checks that a deadman trip under
// fast-forward fires at the same cycle with the same reason as the plain
// loop: the clamp makes the firing iteration run live.
func TestFastForwardWatchdogIdentical(t *testing.T) {
	// A load depending on itself never completes... not expressible; use a
	// program whose tail stalls: one instruction with an enormous fetch hold
	// via BTB pressure is fragile, so instead drive the deadman directly
	// with a tiny StallCycles and a long DRAM-bound dependency chain.
	tr := make([]trace.Inst, 600)
	for i := range tr {
		// Pointer-chase loads: serial DRAM misses, huge retire gaps.
		tr[i] = trace.Inst{PC: uint64(0x1000 + i*4), Class: trace.ClassLoad,
			Addr: uint64(i) * 64 * 8192, Dst: 1, Src1: 1}
	}
	runOne := func(disableFF bool) (Stats, error) {
		cfg := DefaultConfig()
		cfg.DisableFastForward = disableFF
		cfg.StallCycles = 40 // below a DRAM round trip: guaranteed trip
		c := New(cfg, baselineUnit(), tr)
		return c.RunChecked()
	}
	ffSt, ffErr := runOne(false)
	plainSt, plainErr := runOne(true)
	if (ffErr == nil) != (plainErr == nil) {
		t.Fatalf("watchdog divergence: ff err=%v plain err=%v", ffErr, plainErr)
	}
	if ffErr == nil {
		t.Fatalf("expected a deadman trip with StallCycles=40")
	}
	if ffSt.Cycles != plainSt.Cycles {
		t.Fatalf("deadman fired at different cycles: ff=%d plain=%d", ffSt.Cycles, plainSt.Cycles)
	}
	if ffErr.Error() != plainErr.Error() {
		t.Fatalf("stall errors differ:\n  ff:    %v\n  plain: %v", ffErr, plainErr)
	}
}

// TestCalQueueOrdering exercises the calendar queue directly: (done, seq)
// pop order, overflow migration, and nextDue across window advances.
func TestCalQueueOrdering(t *testing.T) {
	q := newCalQueue()
	var seq uint64
	mk := func(done int64) resolution {
		seq++
		return resolution{done: done, seq: seq}
	}
	// In-window, same-cycle, and far-overflow events interleaved.
	ins := []int64{5, 3, 5, calWindow + 100, 3, 7, 3*calWindow + 9, calWindow + 50}
	for _, d := range ins {
		q.insert(mk(d))
	}
	if got := q.len(); got != len(ins) {
		t.Fatalf("len = %d, want %d", got, len(ins))
	}
	if d, ok := q.nextDue(); !ok || d != 3 {
		t.Fatalf("nextDue = %d,%v, want 3,true", d, ok)
	}
	var popped []resolution
	// Drain cycle by cycle far enough to cross both overflow horizons.
	for cyc := int64(0); cyc <= 3*calWindow+10; cyc++ {
		q.drain(cyc, func(r *resolution) { popped = append(popped, *r) })
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty after full drain: %d left", q.len())
	}
	if len(popped) != len(ins) {
		t.Fatalf("popped %d, want %d", len(popped), len(ins))
	}
	for i := 1; i < len(popped); i++ {
		a, b := popped[i-1], popped[i]
		if a.done > b.done || (a.done == b.done && a.seq > b.seq) {
			t.Fatalf("pop order violated at %d: (%d,%d) before (%d,%d)",
				i, a.done, a.seq, b.done, b.seq)
		}
	}
}

// TestCalQueueJumpOntoOverflow reproduces the fast-forward/overflow corner:
// with only an overflow entry pending, a clock jump straight to its due
// cycle must still drain it (idleUntil stops one cycle short; the queue
// itself must migrate correctly when drained at due-1 then due).
func TestCalQueueJumpOntoOverflow(t *testing.T) {
	q := newCalQueue()
	due := 2*calWindow + 7
	q.insert(resolution{done: due, seq: 1})
	if d, ok := q.nextDue(); !ok || d != due {
		t.Fatalf("nextDue = %d,%v, want %d,true", d, ok, due)
	}
	// Jump exactly as the fast-forward does: drain at due-1 (migration
	// cycle), then at due (delivery cycle).
	var got []int64
	q.drain(due-1, func(r *resolution) { got = append(got, r.done) })
	if len(got) != 0 {
		t.Fatalf("entry delivered early at cycle %d", due-1)
	}
	q.drain(due, func(r *resolution) { got = append(got, r.done) })
	if len(got) != 1 || got[0] != due {
		t.Fatalf("entry not delivered at its due cycle: got %v", got)
	}
	if q.len() != 0 {
		t.Fatalf("queue should be empty")
	}
}
