// Package core implements the cycle-level out-of-order superscalar model the
// paper evaluates on: a Skylake-like 4-wide pipeline (Table 2) with a
// 224-entry ROB, a 64-entry allocation queue, load/store buffers, a
// dependence scoreboard with limited functional units, the Table 2 memory
// hierarchy, and a branch prediction unit with speculative fetch, wrong-path
// pollution, flush/resteer and local-predictor repair.
package core

import (
	"errors"
	"fmt"

	"localbp/internal/audit"
	"localbp/internal/bpu/btb"
	"localbp/internal/mem"
	"localbp/internal/obs"
	"localbp/internal/trace"
)

// Config parameterizes the core model; DefaultConfig matches Table 2.
type Config struct {
	Width         int   // fetch/allocate/retire width
	ROBSize       int   // reorder buffer entries
	AllocQueue    int   // fetch-to-alloc queue entries (alloc queue)
	FrontendDepth int64 // fetch → allocate latency in cycles
	// ResteerPenalty is the additional redirect latency after a mispredicted
	// branch resolves, before fetch restarts (on top of refilling the
	// front end).
	ResteerPenalty int64
	// EarlyResteerPenalty is the front-end flush cost of an allocation-stage
	// override (multi-stage prediction, paper §3.2).
	EarlyResteerPenalty int64
	LoadBuffer          int
	StoreBuffer         int

	// Functional-unit counts per class.
	ALUs, Muls, FPs, LoadPorts, StorePorts int

	// Latencies for non-memory classes.
	LatALU, LatMul, LatFP int64

	// WrongPath enables wrong-path synthesis after a mispredicted branch
	// is fetched: synthesized instructions pollute predictor state until
	// the branch resolves (see DESIGN.md §3, substitution 2).
	WrongPath bool

	Mem mem.HierarchyConfig

	// MaxWrongPathPerFlush caps synthesized wrong-path instructions per
	// divergence (safety bound; generous by default).
	MaxWrongPathPerFlush int

	// BTB models the branch target buffer: a predicted-taken branch that
	// misses it cannot redirect fetch until decode, costing BTBMissPenalty
	// cycles of fetch stall. Entries fill when branches resolve.
	BTB            btb.Config
	BTBMissPenalty int64

	// WarmupInsts excludes the first N retired instructions from the
	// reported statistics (predictor training and cache warmup), in the
	// spirit of Simpoint-style measurement.
	WarmupInsts uint64

	// MaxCycles bounds the total simulated cycles; exceeding it aborts the
	// run with an ErrStalled-wrapping StallError. 0 selects an automatic
	// budget generous enough for any sane CPI (see cycleBudget).
	MaxCycles int64

	// StallCycles is the no-retire deadman: if this many consecutive cycles
	// pass without retiring a single instruction, the run aborts with a
	// StallError and a pipeline dump. 0 selects DefaultStallCycles.
	StallCycles int64

	// DisableBlockMemo turns off the hot basic-block timeline memo
	// (blockmemo.go). Like the fast-forward, the memo is exact — a memoized
	// run is bit-identical to a live one — so this gate exists for
	// differential testing and for measuring the memo's own cost.
	DisableBlockMemo bool

	// DisableFastForward forces the cycle loop to iterate every cycle
	// instead of jumping over provably idle windows (see fastforward.go).
	// The skip is exact — results are bit-identical either way — so this
	// exists only for differential testing and micro-benchmarking of the
	// plain loop. Attaching an Audit also disables the fast-forward, since
	// the auditor's periodic scans are cycle-driven.
	DisableFastForward bool

	// Audit, when non-nil, enables the integrity auditor's core-loop checks
	// (retire monotonicity, ROB age ordering, occupancy bounds, resolution
	// consistency) in addition to the always-on structural invariants. The
	// first violation aborts the run with its *audit.IntegrityError. All
	// checks are read-only: reported statistics are bit-identical to an
	// unaudited run.
	Audit *audit.Auditor

	// Golden, when non-nil, cross-checks every real-path retirement (and the
	// final instruction/branch counts) against the timing-free in-order
	// golden model. Divergence aborts the run at the offending retire.
	Golden *audit.Golden

	// Obs, when non-nil, wires the observability layer: the counter registry
	// (core and memory counters become pull sources), per-cycle CPI-stack
	// attribution, and/or the structured event tracer — whichever fields of
	// the Hooks are non-nil. With Obs nil the hot loop touches no obs symbol
	// beyond per-cycle nil checks.
	Obs *obs.Hooks

	// Progress, when non-nil, receives the cumulative retired-instruction
	// count at the cancellation-poll stride (every cancelCheckMask+1 loop
	// iterations) and once more when the run completes. The hook is
	// read-only — a run with Progress attached is bit-identical to one
	// without — and it runs on the simulation goroutine, so implementations
	// must be cheap (batch downstream work through an obs.Accumulator).
	Progress func(retired uint64)
}

// DefaultStallCycles is the no-retire deadman threshold when
// Config.StallCycles is zero. The longest legitimate retire gap is a chain
// of DRAM misses (~170 cycles each) behind a full ROB — tens of thousands of
// cycles without a retire is unambiguously a modeling bug.
const DefaultStallCycles = 100_000

// cycleBudget returns the automatic MaxCycles for an n-instruction program:
// a worst-case CPI far beyond anything the memory hierarchy can produce,
// plus slack for drain on tiny programs.
func cycleBudget(n int) int64 { return 2_000*int64(n) + 1_000_000 }

// DefaultConfig returns the Table 2 core.
func DefaultConfig() Config {
	return Config{
		Width:                4,
		ROBSize:              224,
		AllocQueue:           64,
		FrontendDepth:        10,
		ResteerPenalty:       2,
		EarlyResteerPenalty:  1,
		LoadBuffer:           72,
		StoreBuffer:          56,
		ALUs:                 4,
		Muls:                 1,
		FPs:                  2,
		LoadPorts:            2,
		StorePorts:           1,
		LatALU:               1,
		LatMul:               4,
		LatFP:                4,
		WrongPath:            true,
		Mem:                  mem.DefaultHierarchy(),
		MaxWrongPathPerFlush: 512,
		BTB:                  btb.DefaultConfig(),
		BTBMissPenalty:       6,
	}
}

// Validate checks the configuration and returns a field-level error for
// every violated constraint (all violations, joined), or nil. Run it before
// simulating so a malformed config fails fast instead of producing a
// degenerate or non-terminating model.
func (c Config) Validate() error {
	var errs []error
	bad := func(field string, got any, want string) {
		errs = append(errs, fmt.Errorf("core.Config.%s: got %v, want %s", field, got, want))
	}
	if c.Width <= 0 {
		bad("Width", c.Width, "> 0")
	}
	if c.ROBSize <= 0 {
		bad("ROBSize", c.ROBSize, "> 0")
	}
	if c.AllocQueue <= 0 {
		bad("AllocQueue", c.AllocQueue, "> 0")
	}
	if c.FrontendDepth < 0 {
		bad("FrontendDepth", c.FrontendDepth, ">= 0")
	}
	if c.ResteerPenalty < 0 {
		bad("ResteerPenalty", c.ResteerPenalty, ">= 0")
	}
	if c.EarlyResteerPenalty < 0 {
		bad("EarlyResteerPenalty", c.EarlyResteerPenalty, ">= 0")
	}
	if c.LoadBuffer <= 0 {
		bad("LoadBuffer", c.LoadBuffer, "> 0")
	}
	if c.StoreBuffer <= 0 {
		bad("StoreBuffer", c.StoreBuffer, "> 0")
	}
	if c.ALUs <= 0 {
		bad("ALUs", c.ALUs, "> 0")
	}
	if c.Muls <= 0 {
		bad("Muls", c.Muls, "> 0")
	}
	if c.FPs <= 0 {
		bad("FPs", c.FPs, "> 0")
	}
	if c.LoadPorts <= 0 {
		bad("LoadPorts", c.LoadPorts, "> 0")
	}
	if c.StorePorts <= 0 {
		bad("StorePorts", c.StorePorts, "> 0")
	}
	if c.LatALU < 1 {
		bad("LatALU", c.LatALU, ">= 1")
	}
	if c.LatMul < 1 {
		bad("LatMul", c.LatMul, ">= 1")
	}
	if c.LatFP < 1 {
		bad("LatFP", c.LatFP, ">= 1")
	}
	if c.MaxWrongPathPerFlush < 0 {
		bad("MaxWrongPathPerFlush", c.MaxWrongPathPerFlush, ">= 0")
	}
	if c.BTBMissPenalty < 0 {
		bad("BTBMissPenalty", c.BTBMissPenalty, ">= 0")
	}
	if c.MaxCycles < 0 {
		bad("MaxCycles", c.MaxCycles, ">= 0 (0 = automatic)")
	}
	if c.StallCycles < 0 {
		bad("StallCycles", c.StallCycles, ">= 0 (0 = default)")
	}
	return errors.Join(errs...)
}

// Stats aggregates one simulation run.
type Stats struct {
	Cycles           int64
	Insts            uint64 // retired instructions
	Branches         uint64 // retired conditional branches
	Mispredicts      uint64 // final-prediction mispredictions (correct path)
	TageMispredicts  uint64 // what TAGE alone would have mispredicted
	Flushes          uint64
	EarlyResteers    uint64
	WrongPathInsts   uint64
	FetchStallCycles int64
	BTBMisses        uint64
}

// sub returns s - w, fieldwise (warmup subtraction).
func (s Stats) sub(w Stats) Stats {
	return Stats{
		Cycles:           s.Cycles - w.Cycles,
		Insts:            s.Insts - w.Insts,
		Branches:         s.Branches - w.Branches,
		Mispredicts:      s.Mispredicts - w.Mispredicts,
		TageMispredicts:  s.TageMispredicts - w.TageMispredicts,
		Flushes:          s.Flushes - w.Flushes,
		EarlyResteers:    s.EarlyResteers - w.EarlyResteers,
		WrongPathInsts:   s.WrongPathInsts - w.WrongPathInsts,
		FetchStallCycles: s.FetchStallCycles - w.FetchStallCycles,
		BTBMisses:        s.BTBMisses - w.BTBMisses,
	}
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}

// MPKI returns final mispredictions per kilo-instruction.
func (s Stats) MPKI() float64 {
	if s.Insts == 0 {
		return 0
	}
	return 1000 * float64(s.Mispredicts) / float64(s.Insts)
}

// TageMPKI returns the baseline TAGE mispredictions per kilo-instruction
// observed on the same retired path.
func (s Stats) TageMPKI() float64 {
	if s.Insts == 0 {
		return 0
	}
	return 1000 * float64(s.TageMispredicts) / float64(s.Insts)
}

func latencyOf(cfg *Config, class trace.Class) int64 {
	switch class {
	case trace.ClassMul:
		return cfg.LatMul
	case trace.ClassFP:
		return cfg.LatFP
	default:
		return cfg.LatALU
	}
}
