// Package core implements the cycle-level out-of-order superscalar model the
// paper evaluates on: a Skylake-like 4-wide pipeline (Table 2) with a
// 224-entry ROB, a 64-entry allocation queue, load/store buffers, a
// dependence scoreboard with limited functional units, the Table 2 memory
// hierarchy, and a branch prediction unit with speculative fetch, wrong-path
// pollution, flush/resteer and local-predictor repair.
package core

import (
	"localbp/internal/bpu/btb"
	"localbp/internal/mem"
	"localbp/internal/trace"
)

// Config parameterizes the core model; DefaultConfig matches Table 2.
type Config struct {
	Width         int   // fetch/allocate/retire width
	ROBSize       int   // reorder buffer entries
	AllocQueue    int   // fetch-to-alloc queue entries (alloc queue)
	FrontendDepth int64 // fetch → allocate latency in cycles
	// ResteerPenalty is the additional redirect latency after a mispredicted
	// branch resolves, before fetch restarts (on top of refilling the
	// front end).
	ResteerPenalty int64
	// EarlyResteerPenalty is the front-end flush cost of an allocation-stage
	// override (multi-stage prediction, paper §3.2).
	EarlyResteerPenalty int64
	LoadBuffer          int
	StoreBuffer         int

	// Functional-unit counts per class.
	ALUs, Muls, FPs, LoadPorts, StorePorts int

	// Latencies for non-memory classes.
	LatALU, LatMul, LatFP int64

	// WrongPath enables wrong-path synthesis after a mispredicted branch
	// is fetched: synthesized instructions pollute predictor state until
	// the branch resolves (see DESIGN.md §3, substitution 2).
	WrongPath bool

	Mem mem.HierarchyConfig

	// MaxWrongPathPerFlush caps synthesized wrong-path instructions per
	// divergence (safety bound; generous by default).
	MaxWrongPathPerFlush int

	// BTB models the branch target buffer: a predicted-taken branch that
	// misses it cannot redirect fetch until decode, costing BTBMissPenalty
	// cycles of fetch stall. Entries fill when branches resolve.
	BTB            btb.Config
	BTBMissPenalty int64

	// WarmupInsts excludes the first N retired instructions from the
	// reported statistics (predictor training and cache warmup), in the
	// spirit of Simpoint-style measurement.
	WarmupInsts uint64
}

// DefaultConfig returns the Table 2 core.
func DefaultConfig() Config {
	return Config{
		Width:                4,
		ROBSize:              224,
		AllocQueue:           64,
		FrontendDepth:        10,
		ResteerPenalty:       2,
		EarlyResteerPenalty:  1,
		LoadBuffer:           72,
		StoreBuffer:          56,
		ALUs:                 4,
		Muls:                 1,
		FPs:                  2,
		LoadPorts:            2,
		StorePorts:           1,
		LatALU:               1,
		LatMul:               4,
		LatFP:                4,
		WrongPath:            true,
		Mem:                  mem.DefaultHierarchy(),
		MaxWrongPathPerFlush: 512,
		BTB:                  btb.DefaultConfig(),
		BTBMissPenalty:       6,
	}
}

// Stats aggregates one simulation run.
type Stats struct {
	Cycles           int64
	Insts            uint64 // retired instructions
	Branches         uint64 // retired conditional branches
	Mispredicts      uint64 // final-prediction mispredictions (correct path)
	TageMispredicts  uint64 // what TAGE alone would have mispredicted
	Flushes          uint64
	EarlyResteers    uint64
	WrongPathInsts   uint64
	FetchStallCycles int64
	BTBMisses        uint64
}

// sub returns s - w, fieldwise (warmup subtraction).
func (s Stats) sub(w Stats) Stats {
	return Stats{
		Cycles:           s.Cycles - w.Cycles,
		Insts:            s.Insts - w.Insts,
		Branches:         s.Branches - w.Branches,
		Mispredicts:      s.Mispredicts - w.Mispredicts,
		TageMispredicts:  s.TageMispredicts - w.TageMispredicts,
		Flushes:          s.Flushes - w.Flushes,
		EarlyResteers:    s.EarlyResteers - w.EarlyResteers,
		WrongPathInsts:   s.WrongPathInsts - w.WrongPathInsts,
		FetchStallCycles: s.FetchStallCycles - w.FetchStallCycles,
		BTBMisses:        s.BTBMisses - w.BTBMisses,
	}
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Insts) / float64(s.Cycles)
}

// MPKI returns final mispredictions per kilo-instruction.
func (s Stats) MPKI() float64 {
	if s.Insts == 0 {
		return 0
	}
	return 1000 * float64(s.Mispredicts) / float64(s.Insts)
}

// TageMPKI returns the baseline TAGE mispredictions per kilo-instruction
// observed on the same retired path.
func (s Stats) TageMPKI() float64 {
	if s.Insts == 0 {
		return 0
	}
	return 1000 * float64(s.TageMispredicts) / float64(s.Insts)
}

func latencyOf(cfg *Config, class trace.Class) int64 {
	switch class {
	case trace.ClassMul:
		return cfg.LatMul
	case trace.ClassFP:
		return cfg.LatFP
	default:
		return cfg.LatALU
	}
}
