package core

import (
	"errors"
	"fmt"
)

// ErrCanceled is the sentinel wrapped by every CancelError: a simulation
// aborted by its context (cancellation or deadline) rather than by the
// watchdog. Match with errors.Is(err, core.ErrCanceled); the context cause
// (context.Canceled / context.DeadlineExceeded) also matches through Unwrap.
var ErrCanceled = errors.New("core: canceled")

// cancelCheckMask strides the context poll: the cycle loop consults
// ctx.Err() once every cancelCheckMask+1 iterations, so cancellation lands
// within microseconds of wall clock while the hot path pays only a counter
// increment and a predictable branch. The stride is in loop iterations, not
// cycles — with idle fast-forward one iteration may advance many cycles.
const cancelCheckMask = 1<<10 - 1

// CancelError reports a run aborted by its context, with the simulation
// position at the abort so partial progress is diagnosable.
type CancelError struct {
	Cycle int64  // cycle at which the cancellation was observed
	Insts uint64 // instructions retired up to the abort
	Cause error  // ctx.Err(): context.Canceled or context.DeadlineExceeded
}

// Error renders the cause and the simulation position.
func (e *CancelError) Error() string {
	return fmt.Sprintf("core: canceled at cycle %d (%d instructions retired): %v",
		e.Cycle, e.Insts, e.Cause)
}

// Unwrap exposes the context cause to errors.Is (context.Canceled,
// context.DeadlineExceeded).
func (e *CancelError) Unwrap() error { return e.Cause }

// Is additionally matches the ErrCanceled sentinel.
func (e *CancelError) Is(target error) bool { return target == ErrCanceled }
