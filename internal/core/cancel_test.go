package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestCancelPreCanceledContext checks that an already-canceled context stops
// the run at the first check: the simulation makes at most one check
// stride's worth of progress and the error carries the cancellation state.
func TestCancelPreCanceledContext(t *testing.T) {
	tr := aluTrace(200_000,
		func(i int) uint8 { return uint8(1 + i%60) },
		func(i int) uint8 { return 0 })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	c := New(DefaultConfig(), baselineUnit(), tr)
	st, err := c.RunContext(ctx)
	if err == nil {
		t.Fatal("pre-canceled context: run completed")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("errors.Is(err, ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause not context.Canceled: %v", err)
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error is not a *CancelError: %v", err)
	}
	// The loop checks every cancelCheckMask+1 iterations; a pre-canceled
	// context must be observed on the first check, before any real progress.
	if ce.Cycle > cancelCheckMask+1 {
		t.Fatalf("canceled run progressed to cycle %d, want <= %d", ce.Cycle, cancelCheckMask+1)
	}
	if st.Cycles != ce.Cycle {
		t.Fatalf("stats cycles %d != cancel cycle %d", st.Cycles, ce.Cycle)
	}
}

// TestCancelDeadlineMidRun cancels via deadline while the run is in flight
// and checks the partial stats are coherent (cycle count matches, fewer
// instructions retired than the full trace).
func TestCancelDeadlineMidRun(t *testing.T) {
	tr := aluTrace(2_000_000,
		func(i int) uint8 { return uint8(1 + i%60) },
		func(i int) uint8 { return 0 })
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()

	c := New(DefaultConfig(), baselineUnit(), tr)
	st, err := c.RunContext(ctx)
	if err == nil {
		// A very fast machine might finish 2M ALU instructions inside the
		// deadline; that is not a failure of cancellation.
		t.Skip("run completed inside the deadline")
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want ErrCanceled wrapping DeadlineExceeded, got %v", err)
	}
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("error is not a *CancelError: %v", err)
	}
	if st.Insts >= 2_000_000 {
		t.Fatalf("canceled run retired the full trace (%d insts)", st.Insts)
	}
	if ce.Insts != st.Insts {
		t.Fatalf("cancel error insts %d != stats insts %d", ce.Insts, st.Insts)
	}
}

// TestBackgroundContextBitIdentical pins the zero-cost default path:
// RunChecked (Background context) and an explicit never-canceled context
// produce bit-identical statistics.
func TestBackgroundContextBitIdentical(t *testing.T) {
	tr := aluTrace(60_000,
		func(i int) uint8 { return uint8(1 + i%60) },
		func(i int) uint8 { return 0 })

	a := New(DefaultConfig(), baselineUnit(), tr)
	stA, errA := a.RunChecked()
	if errA != nil {
		t.Fatal(errA)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	b := New(DefaultConfig(), baselineUnit(), tr)
	stB, errB := b.RunContext(ctx)
	if errB != nil {
		t.Fatal(errB)
	}
	if stA != stB {
		t.Fatalf("context plumbing perturbed the simulation:\nbackground: %+v\nctx:        %+v", stA, stB)
	}
}
