package core

import (
	"testing"
	"testing/quick"

	"localbp/internal/bpu"
	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/repair"
	"localbp/internal/trace"
)

// TestPipelineInvariantsProperty drives random small programs through the
// pipeline with the headline scheme and checks structural invariants: every
// instruction retires exactly once, branch accounting is consistent, and
// cycle counts are sane.
func TestPipelineInvariantsProperty(t *testing.T) {
	f := func(seed int64, period, bodyLen, biasPct uint8) bool {
		p := int(period%60) + 2
		bl := int(bodyLen%20) + 1
		bias := 0.5 + float64(biasPct%50)/100
		prog := trace.Program{Regions: []trace.Region{
			trace.Loop{Site: 0, Periods: trace.FixedPeriod(p), Body: []trace.Region{
				trace.Block{Site: 1, Len: bl},
				trace.Cond{Site: 2, Outcome: trace.BiasedPattern{P: bias}, ThenLen: 2, ElseLen: 1},
			}},
			trace.Block{Site: 3, Len: bl + 2},
		}}
		const n = 20_000
		tr := trace.Generate(prog, n, seed)
		scheme := repair.NewForwardWalk(loop.Loop128(), 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, true)
		c := New(DefaultConfig(), bpu.NewUnit(tage.KB8(), scheme), tr)
		st := c.Run()

		if st.Insts != n {
			return false
		}
		if st.Branches != uint64(trace.Summarize(tr).Branches) {
			return false
		}
		if st.Mispredicts > st.Branches {
			return false
		}
		// IPC bounded by the machine width; cycles at least n/width.
		if st.Cycles < int64(n)/int64(DefaultConfig().Width) {
			return false
		}
		return st.IPC() > 0 && st.IPC() <= float64(DefaultConfig().Width)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
