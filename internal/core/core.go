package core

import (
	"context"
	"fmt"

	"localbp/internal/audit"
	"localbp/internal/bpu"
	"localbp/internal/bpu/btb"
	"localbp/internal/mem"
	"localbp/internal/obs"
	"localbp/internal/trace"
)

// robEntry is one reorder-buffer slot.
type robEntry struct {
	seq       uint64
	done      int64 // completion cycle; wrong-path entries never complete
	class     trace.Class
	isBranch  bool
	wrongPath bool
	resolved  bool
	streamPos int // index in the trace (real-path instructions only)
}

// fetchSlot is one allocation-queue entry (fetched, not yet allocated).
type fetchSlot struct {
	inst      trace.Inst
	ready     int64 // cycle at which it may allocate (fetch + frontend depth)
	wrongPath bool
	streamPos int
}

// resolution is a pending branch-execution event. Pending resolutions live in
// a calQueue (see calendar.go) and pop in (done, seq) ascending order.
type resolution struct {
	done int64
	seq  uint64
	rob  int64 // absolute ROB index
	rec  *bpu.BranchRec
}

// resource models a bank of units (FUs, load/store buffer slots) as a
// binary min-heap of next-free cycles; allocation picks the earliest-free
// unit and returns the earliest start cycle at or after `at`.
//
// Units are interchangeable — everything observable (take's start cycle,
// allBusy, minFree) is a function of the multiset of free cycles, never of
// which unit carries which cycle — so the heap's internal reordering is
// bit-identical to a linear min scan while costing O(log n) on the 72-entry
// load buffer instead of O(n).
type resource struct {
	free []int64
}

func newResource(n int) *resource { return &resource{free: make([]int64, n)} }

// take reserves a unit from cycle `at` for `dur` cycles and returns the
// actual start (>= at, delayed if all units busy). One- and two-unit banks
// (multipliers, store ports, FP units, load ports in the Table 2 config) are
// special-cased: the heap degenerates to an assignment or a single compare.
func (r *resource) take(at, dur int64) int64 {
	f := r.free
	start := at
	if f[0] > start {
		start = f[0]
	}
	v := start + dur
	switch len(f) {
	case 1:
		f[0] = v
	case 2:
		if f[1] < v {
			f[0], f[1] = f[1], v
		} else {
			f[0] = v
		}
	default:
		r.replaceMin(v)
	}
	return start
}

// replaceMin overwrites the heap minimum with v and restores heap order.
// v is always >= the displaced minimum, so a single sift-down suffices.
func (r *resource) replaceMin(v int64) {
	f := r.free
	i := 0
	for {
		k := 2*i + 1
		if k >= len(f) {
			break
		}
		if k+1 < len(f) && f[k+1] < f[k] {
			k++
		}
		if f[k] >= v {
			break
		}
		f[i] = f[k]
		i = k
	}
	f[i] = v
}

// occBuf models a bank of interchangeable buffer slots (the load and store
// buffers) whose take start cycle is discarded by its only caller: the sole
// observables are the earliest next-free cycle (allBusy, lsqBusyUntil) and
// the slot count (the auditor's occupancy invariant). That collapses the
// 72-entry heap to a short sorted run-length list of (free-cycle, count)
// levels — free cycles cluster into two or three runs in practice — so a
// take is an O(1) head decrement plus a front insert instead of an O(log n)
// sift. The level list grows by append in the (pathological) worst case, so
// the representation stays exact for every configuration.
type occBuf struct {
	slots  int
	levels []occLevel // ascending free cycles; counts sum to slots
}

type occLevel struct {
	free int64
	n    int32
}

func newOccBuf(n int) *occBuf {
	b := &occBuf{slots: n, levels: make([]occLevel, 1, 8)}
	b.levels[0] = occLevel{free: 0, n: int32(n)}
	return b
}

// take1 reserves a slot from cycle `at` for one cycle: the earliest-free
// slot is re-busied until max(free, at)+1, exactly as resource.take(at, 1)
// would move the heap minimum.
//
// Levels at or before `at` are first folded into the head. That is exact:
// `at` cycles are monotone, so every later query compares against a cycle
// >= at, where all folded values are equally "free now" — and the head
// keeps the true multiset minimum, so minFree stays the heap minimum
// whenever it is observable (> the query cycle). The fold keeps the list at
// one free run plus a couple of busy levels, so the insert scan is O(1).
func (b *occBuf) take1(at int64) {
	ls := b.levels
	for len(ls) > 1 && ls[0].free <= at && ls[1].free <= at {
		ls[0].n += ls[1].n
		copy(ls[1:], ls[2:])
		ls = ls[:len(ls)-1]
		b.levels = ls
	}
	v := at + 1
	if m := ls[0].free; m > at {
		v = m + 1
	}
	// Consume one slot from the minimum level...
	if ls[0].n--; ls[0].n == 0 {
		copy(ls, ls[1:])
		ls = ls[:len(ls)-1]
		b.levels = ls
	}
	// ...and re-insert it at v. Every level below v is <= at (the free
	// run), so the insertion point is the free/busy boundary at the front.
	i := 0
	for i < len(ls) && ls[i].free < v {
		i++
	}
	if i < len(ls) && ls[i].free == v {
		ls[i].n++
		return
	}
	ls = append(ls, occLevel{})
	copy(ls[i+1:], ls[i:])
	ls[i] = occLevel{free: v, n: 1}
	b.levels = ls
}

// minFree returns the earliest next-free cycle across the bank's slots.
func (b *occBuf) minFree() int64 { return b.levels[0].free }

// allBusy reports whether every slot is reserved past cycle.
func (b *occBuf) allBusy(cycle int64) bool { return b.levels[0].free > cycle }

// size returns the live slot count (the auditor's occupancy cross-check).
func (b *occBuf) size() int {
	n := 0
	for _, l := range b.levels {
		n += int(l.n)
	}
	return n
}

// Core is one simulated out-of-order core.
type Core struct {
	cfg  Config
	unit *bpu.Unit
	mem  *mem.Hierarchy
	btb  *btb.BTB

	// Instruction stream. With a resident program (New), prog holds the
	// whole trace, base is 0 and total == len(prog). With a streaming
	// source (NewStream), prog is a sliding window: it holds stream
	// indices [base, base+len(prog)), retaining streamWindow entries
	// behind pos so mispredict/resteer rewinds (bounded by the in-flight
	// population: ROBSize + AllocQueue) always land inside the buffer.
	prog         []trace.Inst
	pos          int // next real-path instruction to fetch (stream index)
	base         int // stream index of prog[0]
	total        int // total stream length
	src          trace.Source
	streamWindow int
	srcErr       error

	// ROB as a ring with absolute head/tail indices. The backing array is
	// sized to the next power of two above the configured capacity so the
	// per-access slot computation is a mask instead of an int64 division;
	// robSize carries the architectural occupancy bound.
	rob     []robEntry
	robHead int64
	robTail int64
	robMask int64
	robSize int
	// robRec runs parallel to rob (same mask): keeping the branch-record
	// pointers out of robEntry makes the hot alloc-time entry write a
	// pointer-free store (no GC write barrier on the ring).
	robRec []*bpu.BranchRec

	fetchQ []fetchSlot
	fqHead int
	fqTail int
	fqMask int
	// fqCount/fqSize mirror the ROB split: the ring is power-of-two sized
	// for mask wrapping, fqSize is the architectural capacity.
	fqCount int
	fqSize  int
	// fqRec runs parallel to fetchQ, for the same reason as robRec.
	fqRec []*bpu.BranchRec

	resolutions calQueue

	regReady [trace.NumRegs]int64

	alus, muls, fps, ldPorts, stPorts *resource
	ldBuf, stBuf                      *occBuf

	cycle int64
	seq   uint64
	seqBr uint64

	// Divergence state: set while an unresolved branch's prediction
	// disagrees with the trace; fetch synthesizes wrong-path instructions
	// until the branch resolves (or an alloc-stage override cancels it).
	diverged    bool
	fetchHoldTo int64 // fetch stalled until this cycle (resteer penalty)
	wrongLeft   int   // wrong-path budget for this divergence

	// Wrong-path synthesizer: fixed ring of recent real instructions (no
	// heap allocation; wpWindow is its capacity).
	recent    [wpWindow]trace.Inst
	recentLen int
	recentPos int
	wpCursor  int

	stats     Stats
	warmStats Stats
	warmDone  bool

	// Integrity state: the first invariant violation aborts the run with a
	// structured error instead of a panic. lastRetSeq backs the audit-gated
	// retire-monotonicity check.
	integrity  *audit.IntegrityError
	lastRetSeq uint64
	hasRetired bool

	dbgFQEmpty, dbgROBFull, dbgNotReady int64
	dbgDoneSum                          int64
	dbgDoneN                            int64

	// Basic-block memoization (blockmemo.go). bmemo nil disables the path;
	// bmemoEpoch orphans all entries on control-flow repair; bmemoStorm, when
	// nonzero, seeds the invalidation-storm test hook. The counters are
	// diagnostics, deliberately outside Stats.
	bmemo      []bmemoEntry
	bmemoEpoch uint32
	bmemoStorm uint64

	dbgMemoHits, dbgMemoMisses, dbgMemoStores, dbgMemoInvals int64

	// Observability (all nil/zero when disabled; the per-cycle nil checks
	// are the entire disabled-path cost).
	cpi    *obs.CPIStack
	tracer *obs.Tracer
	// busyFn reports the repair scheme's busy-window end for repair-busy
	// CPI attribution (nil when the scheme has none).
	busyFn func() int64
	// cpiFrontHold is the cycle until which an empty ROB is attributed to
	// front-end-resteer: the fetch hold plus the front-end refill depth
	// after a mispredict flush, early resteer, or BTB miss.
	cpiFrontHold int64
}

// DebugAllocStalls returns (fqEmpty, robFull, notReady, avgExecLatency)
// diagnostics for model analysis.
func (c *Core) DebugAllocStalls() (int64, int64, int64, float64) {
	avg := 0.0
	if c.dbgDoneN > 0 {
		avg = float64(c.dbgDoneSum) / float64(c.dbgDoneN)
	}
	return c.dbgFQEmpty, c.dbgROBFull, c.dbgNotReady, avg
}

// New builds a core over the given program with the given prediction unit.
func New(cfg Config, unit *bpu.Unit, prog []trace.Inst) *Core {
	c := &Core{
		cfg:         cfg,
		unit:        unit,
		mem:         mem.New(cfg.Mem),
		prog:        prog,
		total:       len(prog),
		rob:         make([]robEntry, nextPow2(cfg.ROBSize)),
		robRec:      make([]*bpu.BranchRec, nextPow2(cfg.ROBSize)),
		robMask:     int64(nextPow2(cfg.ROBSize) - 1),
		robSize:     cfg.ROBSize,
		fetchQ:      make([]fetchSlot, nextPow2(cfg.AllocQueue)),
		fqRec:       make([]*bpu.BranchRec, nextPow2(cfg.AllocQueue)),
		fqMask:      nextPow2(cfg.AllocQueue) - 1,
		fqSize:      cfg.AllocQueue,
		resolutions: newCalQueue(),
		alus:        newResource(cfg.ALUs),
		muls:        newResource(cfg.Muls),
		fps:         newResource(cfg.FPs),
		ldPorts:     newResource(cfg.LoadPorts),
		stPorts:     newResource(cfg.StorePorts),
		ldBuf:       newOccBuf(cfg.LoadBuffer),
		stBuf:       newOccBuf(cfg.StoreBuffer),
	}
	// Pre-size the branch-record pool for the worst-case in-flight branch
	// population (alloc queue + ROB, plus slack for records awaiting a
	// squashed resolution) so the steady-state GetRec/PutRec cycle and the
	// TAGE checkpoint saves never allocate.
	unit.Prealloc(cfg.AllocQueue + cfg.ROBSize + 64)
	if cfg.BTB.Entries > 0 {
		c.btb = btb.New(cfg.BTB)
	}
	if !cfg.DisableBlockMemo && cfg.ALUs <= bmemoMaxALUs {
		c.bmemo = make([]bmemoEntry, bmemoSlots)
		c.bmemoEpoch = 1
	}
	if h := cfg.Obs; h != nil {
		c.cpi = h.CPI
		c.tracer = h.Tracer
		if h.Reg != nil {
			h.Reg.AddSource("core", c.emitCounters)
		}
		c.mem.AttachObs(h.Reg, h.Tracer)
		if br, ok := unit.Scheme.(interface{ BusyUntil() int64 }); ok {
			c.busyFn = br.BusyUntil
		}
	}
	return c
}

// emitCounters is the registry pull source for the core's native counters.
func (c *Core) emitCounters(emit func(string, uint64)) {
	emit("cycles", uint64(c.cycle))
	emit("insts", c.stats.Insts)
	emit("branches", c.stats.Branches)
	emit("mispredicts", c.stats.Mispredicts)
	emit("tage-mispredicts", c.stats.TageMispredicts)
	emit("flushes", c.stats.Flushes)
	emit("early-resteers", c.stats.EarlyResteers)
	emit("wrong-path-insts", c.stats.WrongPathInsts)
	emit("fetch-stall-cycles", uint64(c.stats.FetchStallCycles))
	emit("btb-misses", c.stats.BTBMisses)
	ov, ovc := c.unit.OverrideStats()
	emit("overrides", ov)
	emit("overrides-correct", ovc)
}

// Stats returns the accumulated statistics.
func (c *Core) Stats() Stats { return c.stats }

// Mem exposes the memory hierarchy (examples and tests).
func (c *Core) Mem() *mem.Hierarchy { return c.mem }

// Recycle returns pooled resources (the memory-hierarchy metadata arrays) for
// reuse by a future core. The core must not be used afterwards; callers that
// still need Mem() or further stepping must skip it. Purely a performance
// hand-over — a run that never recycles behaves identically.
func (c *Core) Recycle() { c.mem.Recycle() }

// nextPow2 returns the smallest power of two >= n (n >= 1), so ring slot
// arithmetic is a mask instead of a division.
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (c *Core) robAt(abs int64) *robEntry { return &c.rob[abs&c.robMask] }
func (c *Core) robLen() int               { return int(c.robTail - c.robHead) }

// fqSlot reserves the tail slot for in-place construction; the caller fills
// it through the returned pointer (one write instead of build-then-copy).
func (c *Core) fqSlot() (*fetchSlot, int) {
	i := c.fqTail
	c.fqTail = (i + 1) & c.fqMask
	c.fqCount++
	return &c.fetchQ[i], i
}

func (c *Core) fqPeek() *fetchSlot { return &c.fetchQ[c.fqHead] }

// fqPop consumes the head slot, returning a pointer into the ring. The slot's
// storage stays intact until the next fqSlot reservation wraps onto it —
// which cannot happen before the caller is done with it, because allocation
// (the only consumer) runs before fetch (the only producer) within a cycle.
func (c *Core) fqPop() (*fetchSlot, *bpu.BranchRec) {
	i := c.fqHead
	c.fqHead = (i + 1) & c.fqMask
	c.fqCount--
	return &c.fetchQ[i], c.fqRec[i]
}

// fqFlush squashes every queued instruction (front-end flush).
func (c *Core) fqFlush() {
	for c.fqCount > 0 {
		_, rec := c.fqPop()
		if rec != nil {
			c.unit.Squash(rec)
		}
	}
}

// Run simulates until the program is exhausted and the pipeline drains,
// returning the statistics. If the forward-progress watchdog fires (or an
// integrity invariant is violated) it panics with the structured
// *StallError / *audit.IntegrityError; fault-tolerant callers should use
// RunChecked.
func (c *Core) Run() Stats {
	st, err := c.RunChecked()
	if err != nil {
		panic(err)
	}
	return st
}

// RunChecked simulates like Run but converts a watchdog trip — a cycle
// budget overrun or StallCycles consecutive cycles without a retirement —
// into an ErrStalled-wrapping *StallError carrying a pipeline-state dump.
// The partial statistics accumulated up to the abort are returned alongside.
func (c *Core) RunChecked() (Stats, error) {
	return c.RunContext(context.Background())
}

// RunContext simulates like RunChecked under a context: cancellation or a
// deadline aborts the run within cancelCheckMask+1 loop iterations with an
// ErrCanceled-wrapping *CancelError (errors.Is also matches the context
// cause). The context checks are read-only — a run that completes reports
// statistics bit-identical to RunChecked — and a context that can never be
// canceled (Background) costs only a counter increment per iteration. The
// wall-clock deadline composes with the cycle-domain watchdog (MaxCycles,
// StallCycles): whichever bound trips first aborts the run.
func (c *Core) RunContext(ctx context.Context) (Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	done := ctx.Done()
	var iter uint64
	budget := c.cfg.MaxCycles
	if budget == 0 {
		budget = cycleBudget(c.total)
	}
	deadman := c.cfg.StallCycles
	if deadman == 0 {
		deadman = DefaultStallCycles
	}
	lastRetireCycle := int64(0)
	lastInsts := c.stats.Insts
	// Idle-cycle fast-forward: when no event can land before cycle X, jump
	// the clock there in one step instead of iterating empty cycles. The
	// skip is exact — counters, CPI attribution and watchdog behavior are
	// bit-identical to the cycle-by-cycle run (see fastforward.go). The
	// auditor's periodic scans are cycle-driven, so auditing disables it.
	ff := c.cfg.Audit == nil && !c.cfg.DisableFastForward
	for c.pos < c.total || c.robLen() > 0 || c.fqCount > 0 {
		if iter&cancelCheckMask == 0 {
			if done != nil {
				if err := ctx.Err(); err != nil {
					c.stats.Cycles = c.cycle
					return c.stats, &CancelError{Cycle: c.cycle, Insts: c.stats.Insts, Cause: err}
				}
			}
			if c.cfg.Progress != nil {
				c.cfg.Progress(c.stats.Insts)
			}
		}
		iter++
		if ff {
			// The watchdogs fire at the end of the iteration that starts at
			// limit; clamp the jump so that iteration still runs live.
			limit := lastRetireCycle + deadman - 1
			if budget-1 < limit {
				limit = budget - 1
			}
			if x := c.idleUntil(limit); x > c.cycle {
				c.skipIdle(x - c.cycle)
				continue
			}
			if n := c.retireBurst(budget - 1); n > 0 {
				// The burst already applied every per-cycle effect; only the
				// live loop's post-iteration bookkeeping remains. It always
				// retires at least one instruction per consumed cycle, so the
				// no-retire deadman cannot be pending.
				if c.integrity != nil {
					c.stats.Cycles = c.cycle
					return c.stats, c.integrity
				}
				lastInsts = c.stats.Insts
				lastRetireCycle = c.cycle
				if c.cycle >= budget {
					c.stats.Cycles = c.cycle
					return c.stats, &StallError{
						Reason: fmt.Sprintf("cycle budget: exceeded %d cycles for %d instructions", budget, c.total),
						Cycle:  c.cycle,
						Dump:   c.dumpState(),
					}
				}
				continue
			}
		}
		prevInsts := c.stats.Insts
		c.stepResolutions()
		c.stepRetire()
		c.stepAlloc()
		c.stepFetch()
		if c.cpi != nil {
			c.cpi.Add(c.classifyCycle(c.stats.Insts != prevInsts))
		}
		if a := c.cfg.Audit; a != nil {
			if a.ScanDue(c.cycle) {
				c.auditScan()
			}
			// Scheme-level checks (OBQ scans, checkpoint liveness, resync
			// equality) report into the same auditor; abort on the first.
			if e := a.First(); e != nil {
				c.fail(e)
			}
		}
		if c.integrity != nil {
			c.stats.Cycles = c.cycle
			return c.stats, c.integrity
		}
		if c.srcErr != nil {
			// A streaming refill failed (I/O error, CRC mismatch, short
			// stream); the run cannot complete faithfully.
			c.stats.Cycles = c.cycle
			return c.stats, &SourceError{Cycle: c.cycle, Pos: c.pos, Cause: c.srcErr}
		}
		c.cycle++
		if !c.warmDone && c.cfg.WarmupInsts > 0 && c.stats.Insts >= c.cfg.WarmupInsts {
			c.warmDone = true
			c.warmStats = c.stats
			c.warmStats.Cycles = c.cycle
		}
		if c.stats.Insts != lastInsts {
			lastInsts = c.stats.Insts
			lastRetireCycle = c.cycle
		} else if c.cycle-lastRetireCycle >= deadman {
			c.stats.Cycles = c.cycle
			return c.stats, &StallError{
				Reason: fmt.Sprintf("no-retire deadman: no instruction retired in %d cycles", deadman),
				Cycle:  c.cycle,
				Dump:   c.dumpState(),
			}
		}
		if c.cycle >= budget {
			c.stats.Cycles = c.cycle
			return c.stats, &StallError{
				Reason: fmt.Sprintf("cycle budget: exceeded %d cycles for %d instructions", budget, c.total),
				Cycle:  c.cycle,
				Dump:   c.dumpState(),
			}
		}
	}
	c.stats.Cycles = c.cycle
	if c.cfg.Progress != nil {
		// Final report: the tail since the last strided call is never lost.
		c.cfg.Progress(c.stats.Insts)
	}
	if c.cpi != nil && c.cpi.Total() != c.cycle {
		// The CPI accounting invariant: exactly one bucket per cycle, so
		// the stack must sum to the cycle count on a completed run.
		c.violation(0, audit.InvCPIAccounting, fmt.Sprintf(
			"  cpi-stack attributed %d cycles, core ran %d", c.cpi.Total(), c.cycle))
	}
	if g := c.cfg.Golden; g != nil {
		// The raw (pre-warmup-subtraction) counters are what the golden
		// model accumulated alongside.
		if e := g.Finish(c.stats.Insts, c.stats.Branches, c.cycle); e != nil {
			c.fail(e)
		}
	}
	if a := c.cfg.Audit; a != nil {
		if e := a.First(); e != nil {
			c.fail(e)
		}
	}
	if c.integrity != nil {
		return c.stats, c.integrity
	}
	if c.warmDone {
		return c.stats.sub(c.warmStats), nil
	}
	return c.stats, nil
}

// fail latches the first integrity violation; RunChecked aborts on it at the
// end of the current cycle.
func (c *Core) fail(e *audit.IntegrityError) {
	if c.integrity == nil {
		c.integrity = e
	}
}

// violation builds an IntegrityError with the standard pipeline dump,
// records it in the auditor when one is attached, and latches it.
func (c *Core) violation(pc uint64, invariant, detail string) {
	dump := detail + "\n" + c.dumpState()
	if a := c.cfg.Audit; a != nil {
		c.fail(a.Report(c.cycle, pc, invariant, dump))
		return
	}
	c.fail(&audit.IntegrityError{Cycle: c.cycle, PC: pc, Invariant: invariant, Dump: dump})
}

// auditScan is the periodic structural pass over core state: occupancy
// bounds, ROB age ordering, and the resolution-heap/ROB cross-check. It is
// strictly read-only.
func (c *Core) auditScan() {
	a := c.cfg.Audit
	n := c.robLen()
	a.Note(3 + 2*n + c.resolutions.len())
	if n < 0 || n > c.robSize || c.fqCount < 0 || c.fqCount > c.fqSize {
		c.violation(0, audit.InvOccupancy, fmt.Sprintf(
			"  rob occupancy %d/%d, alloc-queue occupancy %d/%d", n, c.robSize, c.fqCount, c.fqSize))
		return
	}
	if c.ldBuf.size() != c.cfg.LoadBuffer || c.stBuf.size() != c.cfg.StoreBuffer {
		c.violation(0, audit.InvOccupancy, fmt.Sprintf(
			"  load buffer %d/%d slots, store buffer %d/%d slots",
			c.ldBuf.size(), c.cfg.LoadBuffer, c.stBuf.size(), c.cfg.StoreBuffer))
		return
	}
	unresolved := 0
	var prevSeq uint64
	for abs := c.robHead; abs < c.robTail; abs++ {
		e := c.robAt(abs)
		if abs > c.robHead && e.seq <= prevSeq {
			c.violation(0, audit.InvROBAgeOrder, fmt.Sprintf(
				"  rob entry at %d (seq=%d) not younger than predecessor (seq=%d)", abs, e.seq, prevSeq))
			return
		}
		prevSeq = e.seq
		if e.isBranch && !e.wrongPath && !e.resolved {
			unresolved++
		}
	}
	pending := 0
	c.resolutions.each(func(r *resolution) {
		if !r.rec.Squashed {
			pending++
		}
	})
	if pending != unresolved {
		c.violation(0, audit.InvResolutions, fmt.Sprintf(
			"  %d live pending resolutions vs %d unresolved real-path branches in the ROB",
			pending, unresolved))
	}
}

// classifyCycle attributes the cycle that just finished to exactly one CPI
// bucket via a priority decision tree (DESIGN.md §11): retired work first;
// an occupied ROB is blamed on its head (memory in flight → memory-bound,
// then repair-busy, then structural full conditions, then the alloc-stall
// residual); an empty ROB is front-end-resteer while the post-flush refill
// window is open and alloc-stall otherwise.
func (c *Core) classifyCycle(retired bool) obs.CPIBucket {
	if retired {
		return obs.CPIRetired
	}
	if c.robLen() > 0 {
		e := c.robAt(c.robHead)
		if (e.class == trace.ClassLoad || e.class == trace.ClassStore) && e.done > c.cycle {
			return obs.CPIMemoryBound
		}
		if c.busyFn != nil && c.busyFn() > c.cycle {
			return obs.CPIRepairBusy
		}
		if c.robLen() >= c.robSize {
			return obs.CPIROBFull
		}
		if c.ldBuf.allBusy(c.cycle) || c.stBuf.allBusy(c.cycle) {
			return obs.CPILSQFull
		}
		return obs.CPIAllocStall
	}
	if c.cycle < c.cpiFrontHold {
		return obs.CPIFrontendResteer
	}
	return obs.CPIAllocStall
}

// noteResteer extends the front-end-resteer attribution window: after a
// fetch hold the front end still needs FrontendDepth cycles to refill before
// allocation resumes. Only called when the CPI stack is live.
func (c *Core) noteResteer() {
	if h := c.fetchHoldTo + c.cfg.FrontendDepth; h > c.cpiFrontHold {
		c.cpiFrontHold = h
	}
}

// stepResolutions processes branch executions due this cycle, oldest first.
func (c *Core) stepResolutions() {
	c.resolutions.drain(c.cycle, c.resolveOne)
}

// resolveOne handles a single due resolution (the calQueue drain callback).
func (c *Core) resolveOne(r *resolution) {
	rec := r.rec
	rec.InFlight = false
	if rec.Squashed {
		c.unit.PutRec(rec)
		return
	}
	e := c.robAt(r.rob)
	misp := c.unit.Resolve(rec, c.cycle)
	e.resolved = true
	if c.btb != nil && rec.Ctx.ActualTaken {
		c.btb.Insert(rec.Ctx.PC, 0)
	}
	if rec.TagePred != rec.Ctx.ActualTaken {
		c.stats.TageMispredicts++
	}
	if misp {
		c.stats.Mispredicts++
		c.handleMispredict(r.rob, e)
	}
}

// handleMispredict flushes younger instructions and re-steers fetch. Only
// the oldest divergence can reach here (fetch stops producing real-path
// instructions past the first mispredicted branch), so the divergence — if
// still active — always belongs to this branch.
func (c *Core) handleMispredict(robIdx int64, e *robEntry) {
	c.stats.Flushes++
	if rec := c.robRec[robIdx&c.robMask]; c.tracer != nil && rec != nil {
		c.tracer.Emit(obs.EvMispredict, c.cycle, rec.Ctx.PC, int64(rec.Ctx.Seq))
	}
	c.flushROBAfter(robIdx)
	c.fqFlush()
	c.bmemoInvalidate()
	c.diverged = false
	c.pos = e.streamPos + 1
	hold := c.cycle + c.cfg.ResteerPenalty
	if hold > c.fetchHoldTo {
		c.fetchHoldTo = hold
	}
	if c.cpi != nil {
		c.noteResteer()
	}
}

func (c *Core) flushROBAfter(robIdx int64) {
	for abs := c.robTail - 1; abs > robIdx; abs-- {
		if rec := c.robRec[abs&c.robMask]; rec != nil {
			c.unit.Squash(rec)
			c.robRec[abs&c.robMask] = nil
		}
	}
	c.robTail = robIdx + 1
}

// stepRetire retires completed instructions in order.
func (c *Core) stepRetire() {
	for retired := 0; retired < c.cfg.Width && c.robLen() > 0; retired++ {
		e := c.robAt(c.robHead)
		rec := c.robRec[c.robHead&c.robMask]
		if e.wrongPath {
			// Wrong-path instructions are always flushed before
			// reaching the head; seeing one here is a model bug.
			c.violation(0, audit.InvWrongPathHead, fmt.Sprintf(
				"  rob head entry seq=%d class=%v is wrong-path", e.seq, e.class))
			return
		}
		if e.done > c.cycle || (e.isBranch && !e.resolved) {
			return
		}
		if a := c.cfg.Audit; a != nil {
			a.Note(2)
			if c.hasRetired && e.seq <= c.lastRetSeq {
				c.violation(0, audit.InvRetireMonotonic, fmt.Sprintf(
					"  retiring seq=%d after seq=%d", e.seq, c.lastRetSeq))
				return
			}
			if e.isBranch && rec == nil {
				c.violation(0, audit.InvBranchRecord, fmt.Sprintf(
					"  retiring branch seq=%d carries no prediction record", e.seq))
				return
			}
		}
		if g := c.cfg.Golden; g != nil {
			// Read the branch record before Retire recycles it.
			var pc uint64
			var taken bool
			if e.isBranch && rec != nil {
				pc, taken = rec.Ctx.PC, rec.Ctx.ActualTaken
			}
			if err := g.Retire(e.streamPos, e.class, e.isBranch, pc, taken, c.cycle); err != nil {
				c.fail(err)
				if a := c.cfg.Audit; a != nil {
					a.Report(err.Cycle, err.PC, err.Invariant, err.Dump)
				}
				return
			}
		}
		c.lastRetSeq, c.hasRetired = e.seq, true
		if e.isBranch {
			c.stats.Branches++
			if rec != nil {
				c.unit.Retire(rec)
				c.robRec[c.robHead&c.robMask] = nil
			}
		}
		c.stats.Insts++
		c.robHead++
	}
}

// stepAlloc moves instructions from the allocation queue into the ROB,
// computing their execution timing.
func (c *Core) stepAlloc() {
	for n := 0; n < c.cfg.Width; n++ {
		if c.fqCount == 0 {
			c.dbgFQEmpty++
			return
		}
		if c.robLen() >= c.robSize {
			c.dbgROBFull++
			return
		}
		if c.fqPeek().ready > c.cycle {
			c.dbgNotReady++
			return
		}
		if c.bmemo != nil {
			if k := c.blockMemoAlloc(c.cfg.Width - n); k > 0 {
				n += k - 1
				continue
			}
		}
		s, rec := c.fqPop()
		abs := c.robTail
		e := c.robAt(abs)
		*e = robEntry{
			seq:       c.seq,
			class:     s.inst.Class,
			isBranch:  s.inst.IsBranch(),
			wrongPath: s.wrongPath,
			streamPos: s.streamPos,
			done:      1 << 62,
		}
		c.robRec[abs&c.robMask] = rec
		c.seq++
		c.robTail++

		if s.wrongPath {
			// Wrong-path work occupies the slot but is not executed.
			if e.isBranch && rec != nil {
				c.unit.AllocStage(rec, c.cycle) // BHT-Defer pollution
			}
			continue
		}

		done := c.execTiming(&s.inst)
		e.done = done
		c.dbgDoneSum += done - c.cycle
		c.dbgDoneN++
		if e.isBranch {
			if rec == nil {
				c.violation(s.inst.PC, audit.InvBranchRecord, fmt.Sprintf(
					"  allocating branch seq=%d pc=%#x without a prediction record", e.seq, s.inst.PC))
				return
			}
			if c.unit.AllocStage(rec, c.cycle) {
				c.handleEarlyResteer(e, rec)
			}
			rec.InFlight = true
			c.resolutions.insert(resolution{done: done, seq: e.seq, rob: abs, rec: rec})
		}
	}
}

// handleEarlyResteer applies a multi-stage allocation-stage override
// (paper §3.2): the front end flushes and refetches down the corrected
// direction.
func (c *Core) handleEarlyResteer(e *robEntry, rec *bpu.BranchRec) {
	c.stats.EarlyResteers++
	if c.tracer != nil {
		c.tracer.Emit(obs.EvEarlyResteer, c.cycle, rec.Ctx.PC, int64(rec.Ctx.Seq))
	}
	c.fqFlush()
	c.bmemoInvalidate()
	hold := c.cycle + c.cfg.EarlyResteerPenalty
	if hold > c.fetchHoldTo {
		c.fetchHoldTo = hold
	}
	if c.cpi != nil {
		c.noteResteer()
	}
	if rec.Ctx.PredTaken == rec.Ctx.ActualTaken {
		// The override fixed a misprediction: cancel the divergence and
		// resume real-path fetch after this branch.
		c.diverged = false
	} else {
		// The override broke a correct prediction: fetch goes down the
		// wrong path until the branch resolves at execute.
		c.diverged = true
		c.wrongLeft = c.cfg.MaxWrongPathPerFlush
		c.wpCursor = 0
	}
	c.pos = e.streamPos + 1
}

// execTiming computes the completion cycle of a real-path instruction,
// honoring register dependences, functional-unit and buffer occupancy, and
// memory latency.
func (c *Core) execTiming(in *trace.Inst) int64 {
	ready := c.cycle + 1
	if t := c.regReady[in.Src1]; t > ready {
		ready = t
	}
	if t := c.regReady[in.Src2]; t > ready {
		ready = t
	}

	var start, lat int64
	switch in.Class {
	case trace.ClassLoad:
		c.ldBuf.take1(c.cycle) // occupancy approximated by port pressure
		start = c.ldPorts.take(ready, 1)
		lat = c.mem.AccessAt(in.Addr, c.cycle)
	case trace.ClassStore:
		c.stBuf.take1(c.cycle)
		start = c.stPorts.take(ready, 1)
		lat = 1
		// Stores complete at retire; data path latency hidden.
		c.mem.AccessAt(in.Addr, c.cycle)
	case trace.ClassMul:
		start = c.muls.take(ready, 1)
		lat = c.cfg.LatMul
	case trace.ClassFP:
		start = c.fps.take(ready, 1)
		lat = c.cfg.LatFP
	default: // ALU and branches
		start = c.alus.take(ready, 1)
		lat = c.cfg.LatALU
	}
	done := start + lat
	if in.Dst != 0 {
		c.regReady[in.Dst] = done
	}
	return done
}

// stepFetch brings up to Width instructions into the allocation queue,
// running branch prediction and wrong-path synthesis.
func (c *Core) stepFetch() {
	if c.cycle < c.fetchHoldTo {
		c.stats.FetchStallCycles++
		return
	}
	ready := c.cycle + c.cfg.FrontendDepth
	for n := 0; n < c.cfg.Width && c.fqCount < c.fqSize; n++ {
		wrongPath := c.diverged
		var slot *fetchSlot
		var si int
		if wrongPath {
			if !c.cfg.WrongPath || c.wrongLeft <= 0 {
				return // fetch stalls until the divergence resolves
			}
			c.wrongLeft--
			// The slot is reserved only after the stall checks above, so an
			// early return never consumes ring space; the synthesizer writes
			// the instruction in place (no intermediate copy).
			slot, si = c.fqSlot()
			c.nextWrongPath(&slot.inst)
			slot.streamPos = -1
			c.stats.WrongPathInsts++
		} else {
			if c.pos >= c.total {
				return
			}
			if c.pos-c.base >= len(c.prog) && !c.refill() {
				return // srcErr is set; RunContext aborts at cycle end
			}
			slot, si = c.fqSlot()
			slot.inst = c.prog[c.pos-c.base]
			slot.streamPos = c.pos
			c.pos++
			c.noteRecent(slot.inst)
		}
		slot.ready = ready
		slot.wrongPath = wrongPath
		c.fqRec[si] = nil
		if slot.inst.IsBranch() {
			in := &slot.inst
			rec := c.unit.GetRec()
			pred := c.unit.Predict(rec, in.PC, in.Taken, c.nextBranchSeq(), wrongPath, c.cycle)
			c.fqRec[si] = rec
			if pred && c.btb != nil {
				// A predicted-taken branch needs the BTB to redirect
				// fetch this cycle; a miss costs a decode-redirect
				// bubble (Table 2's 2K-entry BTB).
				if _, ok := c.btb.Lookup(in.PC); !ok {
					c.stats.BTBMisses++
					hold := c.cycle + c.cfg.BTBMissPenalty
					if hold > c.fetchHoldTo {
						c.fetchHoldTo = hold
					}
					if c.cpi != nil {
						c.noteResteer()
					}
				}
			}
			if !wrongPath && pred != in.Taken {
				// Divergence: subsequent fetch is wrong-path until
				// this branch resolves (or a deferred override
				// corrects it at the allocation stage).
				c.bmemoInvalidate()
				c.diverged = true
				c.wrongLeft = c.cfg.MaxWrongPathPerFlush
				c.wpCursor = 0
			}
		}
	}
}

func (c *Core) nextBranchSeq() uint64 {
	c.seqBr++
	return c.seqBr
}

// wpWindow is the wrong-path synthesizer's recent-instruction window size.
const wpWindow = 256

// noteRecent records a real instruction for the wrong-path synthesizer.
func (c *Core) noteRecent(in trace.Inst) {
	if c.recentLen < wpWindow {
		c.recent[c.recentLen] = in
		c.recentLen++
		return
	}
	c.recent[c.recentPos] = in
	c.recentPos = (c.recentPos + 1) % wpWindow
}

// nextWrongPath synthesizes a wrong-path instruction by replaying the recent
// real-instruction window offset by half its length: plausible PCs (so BHT
// and GHIST pollution is realistic) on a path the core will flush. The
// instruction is written into dst in place (the caller's fetch-queue slot).
func (c *Core) nextWrongPath(dst *trace.Inst) {
	if c.recentLen == 0 {
		*dst = trace.Inst{PC: 0xdead000, Class: trace.ClassALU}
		return
	}
	var idx int
	if c.recentLen == wpWindow {
		// Full window (steady state): power-of-two modulo is a mask.
		idx = (c.recentPos + wpWindow/2 + c.wpCursor) & (wpWindow - 1)
	} else {
		idx = (c.recentPos + c.recentLen/2 + c.wpCursor) % c.recentLen
	}
	c.wpCursor++
	*dst = c.recent[idx]
	if dst.IsBranch() {
		// The synthesized branch's "outcome" is unknowable; its
		// prediction will drive the speculative updates, and it is
		// flushed before resolving. Real wrong paths execute the other
		// side of a branch: only some of their branch PCs coincide
		// with hot correct-path PCs, so half are displaced to cold
		// addresses that miss the BHT.
		if c.wpCursor%2 != 0 {
			dst.PC ^= 0x40000 + uint64(c.wpCursor)<<6
		}
		dst.Taken = !dst.Taken
	}
}
