package core

import (
	"errors"
	"io"
	"testing"

	"localbp/internal/bpu"
	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/repair"
	"localbp/internal/trace"
	"localbp/internal/workloads"
)

// chunkedSource serves a resident slice through the streaming interface in
// small pieces, hiding the Slice accessor so NewStream cannot short-circuit
// to the resident-program fast path.
type chunkedSource struct {
	tr   []trace.Inst
	pos  int
	max  int // largest Next fill, to stress partial reads
	fail int // fail after this many instructions (0 = never)
}

func (s *chunkedSource) Next(dst []trace.Inst) (int, error) {
	if s.fail > 0 && s.pos >= s.fail {
		return 0, errors.New("injected source failure")
	}
	if s.pos >= len(s.tr) {
		return 0, io.EOF
	}
	if len(dst) > s.max {
		dst = dst[:s.max]
	}
	n := copy(dst, s.tr[s.pos:])
	s.pos += n
	return n, nil
}

func (s *chunkedSource) Reset() error { s.pos = 0; return nil }
func (s *chunkedSource) Len() int     { return len(s.tr) }

// TestStreamBitIdentical pins the sliding-window contract: a streamed run
// must produce statistics bit-identical to the resident-program run, across
// enough instructions to force many window refills and through schemes that
// rewind fetch on mispredicts.
func TestStreamBitIdentical(t *testing.T) {
	schemes := []struct {
		name string
		mk   func() repair.Scheme
	}{
		{"baseline", func() repair.Scheme { return nil }},
		{"forward-coalesce", func() repair.Scheme {
			return repair.NewForwardWalk(loop.Loop128(), 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, true)
		}},
	}
	ws := workloads.QuickSuite()[:3]
	const insts = 100_000 // > 3x streamChunk: multiple refills per run
	for _, w := range ws {
		tr := w.Generate(insts)
		for _, sc := range schemes {
			cfg := DefaultConfig()
			resident := New(cfg, bpu.NewUnit(tage.KB8(), sc.mk()), tr)
			wantSt, err := resident.RunChecked()
			if err != nil {
				t.Fatalf("%s/%s resident: %v", w.Name, sc.name, err)
			}
			streamed, err := NewStream(cfg, bpu.NewUnit(tage.KB8(), sc.mk()),
				&chunkedSource{tr: tr, max: 1009})
			if err != nil {
				t.Fatalf("%s/%s NewStream: %v", w.Name, sc.name, err)
			}
			if len(streamed.prog) != 0 || cap(streamed.prog) >= insts {
				t.Fatalf("streamed core holds a resident-scale buffer (cap %d)", cap(streamed.prog))
			}
			gotSt, err := streamed.RunChecked()
			if err != nil {
				t.Fatalf("%s/%s streamed: %v", w.Name, sc.name, err)
			}
			if gotSt != wantSt {
				t.Errorf("%s/%s: stats diverge\n  stream:   %+v\n  resident: %+v", w.Name, sc.name, gotSt, wantSt)
			}
		}
	}
}

// TestStreamSliceFastPath checks NewStream short-circuits an in-memory
// source to the resident-program core.
func TestStreamSliceFastPath(t *testing.T) {
	tr := workloads.QuickSuite()[0].Generate(5000)
	c, err := NewStream(DefaultConfig(), bpu.NewUnit(tage.KB8(), nil), trace.NewSliceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	if c.src != nil || len(c.prog) != len(tr) {
		t.Fatal("slice-backed source did not take the resident fast path")
	}
	if _, err := c.RunChecked(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamSourceFailure checks a mid-run source failure aborts with a
// structured SourceError instead of hanging or panicking.
func TestStreamSourceFailure(t *testing.T) {
	tr := workloads.QuickSuite()[0].Generate(100_000)
	c, err := NewStream(DefaultConfig(), bpu.NewUnit(tage.KB8(), nil),
		&chunkedSource{tr: tr, max: 4096, fail: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.RunChecked()
	if !errors.Is(err, ErrTraceSource) {
		t.Fatalf("got %v, want ErrTraceSource", err)
	}
	var se *SourceError
	if !errors.As(err, &se) || se.Pos == 0 {
		t.Fatalf("SourceError missing position: %v", err)
	}
}

// TestStreamShortStream checks a source that under-delivers its declared Len
// is reported, not silently accepted.
func TestStreamShortStream(t *testing.T) {
	tr := workloads.QuickSuite()[0].Generate(80_000)
	src := &chunkedSource{tr: tr[:50_000], max: 4096}
	lying := &lyingLenSource{chunkedSource: src, claim: 80_000}
	c, err := NewStream(DefaultConfig(), bpu.NewUnit(tage.KB8(), nil), lying)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunChecked(); !errors.Is(err, ErrTraceSource) {
		t.Fatalf("got %v, want ErrTraceSource", err)
	}
}

type lyingLenSource struct {
	*chunkedSource
	claim int
}

func (s *lyingLenSource) Len() int { return s.claim }
