package core

import (
	"testing"

	"localbp/internal/bpu"
	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/obs"
	"localbp/internal/repair"
	"localbp/internal/trace"
	"localbp/internal/workloads"
)

// memoRun executes one workload trace and returns every observable the
// bit-identity contract covers: Stats, the dbg stall counters, and the CPI
// stack. The storm seed, when nonzero, drives the random-invalidation hook.
func memoRun(t *testing.T, tr []trace.Inst, sc repair.Scheme, disableMemo, disableFF bool, storm uint64) (Stats, [3]int64, [obs.NumCPIBuckets]int64) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.DisableBlockMemo = disableMemo
	cfg.DisableFastForward = disableFF
	cpi := obs.NewCPIStack()
	cfg.Obs = &obs.Hooks{CPI: cpi}
	c := New(cfg, bpu.NewUnit(tage.KB8(), sc), tr)
	c.bmemoStorm = storm
	st := c.Run()
	fq, rf, nr, _ := c.DebugAllocStalls()
	var stacks [obs.NumCPIBuckets]int64
	cpi.Buckets(func(b obs.CPIBucket, n int64) { stacks[b] = n })
	return st, [3]int64{fq, rf, nr}, stacks
}

// TestBlockMemoDifferential sweeps the FULL quick suite and the 37-rung
// stressor ladder, comparing the optimized stepping (fast-forward + block
// memo, the production configuration) against the plain cycle-by-cycle loop
// with both mechanisms disabled. Everything observable must be bit-identical.
func TestBlockMemoDifferential(t *testing.T) {
	mkScheme := func() repair.Scheme {
		return repair.NewForwardWalk(loop.Loop128(), 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, true)
	}
	const insts = 8_000
	suite := workloads.QuickSuite()
	suite = append(suite, workloads.StressSuite()...)
	for _, w := range suite {
		tr := w.Generate(insts)
		optSt, optDbg, optCPI := memoRun(t, tr, mkScheme(), false, false, 0)
		plainSt, plainDbg, plainCPI := memoRun(t, tr, mkScheme(), true, true, 0)
		if optSt != plainSt {
			t.Errorf("%s: stats diverge\n  opt:   %+v\n  plain: %+v", w.Name, optSt, plainSt)
		}
		if optDbg != plainDbg {
			t.Errorf("%s: dbg stall counters diverge: opt=%v plain=%v", w.Name, optDbg, plainDbg)
		}
		if optCPI != plainCPI {
			t.Errorf("%s: CPI stacks diverge\n  opt:   %v\n  plain: %v", w.Name, optCPI, plainCPI)
		}
	}
}

// TestBlockMemoInvalidationStorm is the memo property test: randomized
// invalidation storms (the bmemoStorm hook orphans the whole cache at
// xorshift-chosen attempts) must never change any retired-instruction
// observable, because replay correctness rests on exact key verification,
// not on the invalidation policy.
func TestBlockMemoInvalidationStorm(t *testing.T) {
	ws := workloads.QuickSuite()[:4]
	const insts = 10_000
	for _, w := range ws {
		tr := w.Generate(insts)
		refSt, refDbg, refCPI := memoRun(t, tr, nil, true, false, 0)
		for _, storm := range []uint64{1, 0x9E3779B9, 0xDEADBEEF} {
			st, dbg, cpi := memoRun(t, tr, nil, false, false, storm)
			if st != refSt || dbg != refDbg || cpi != refCPI {
				t.Errorf("%s storm=%#x: observables diverge from memo-off run\n  storm: %+v\n  ref:   %+v",
					w.Name, storm, st, refSt)
			}
		}
	}
}

// loopTrace builds a trace with stable per-PC content: `iters` iterations of
// a fixed body ending in a taken back-branch. Unlike the synthetic workload
// generator (which draws operands per instance), every iteration carries
// byte-identical instructions, which is the regime the memo targets. The two
// L1-resident loads keep ALU demand below bank capacity so the occupancy
// backlog drains and the memo's readiness/occupancy deltas stay inside the
// clamp (an all-ALU body at fetch width saturates the bank and the deltas
// drift without bound).
func loopTrace(iters int) []trace.Inst {
	body := []trace.Inst{
		{PC: 0x1000, Class: trace.ClassALU, Dst: 3, Src1: 1, Src2: 2},
		{PC: 0x1004, Class: trace.ClassALU, Dst: 4, Src1: 3, Src2: 1},
		{PC: 0x1008, Class: trace.ClassLoad, Addr: 0x8000, Dst: 5, Src1: 2},
		{PC: 0x100c, Class: trace.ClassALU, Dst: 6, Src1: 1, Src2: 2},
		{PC: 0x1010, Class: trace.ClassLoad, Addr: 0x8040, Dst: 7, Src1: 1},
		{PC: 0x1014, Class: trace.ClassALU, Dst: 8, Src1: 6, Src2: 3},
		{PC: 0x1018, Class: trace.ClassBranch, Taken: true, Target: 0x1000, Src1: 8},
	}
	tr := make([]trace.Inst, 0, len(body)*iters)
	for i := 0; i < iters; i++ {
		tr = append(tr, body...)
	}
	tr[len(tr)-1].Taken = false // fall through at the end
	return tr
}

// TestBlockMemoHitReplay checks that the memo actually fires on a
// stable-content loop and that replayed runs are observably identical to
// live ones.
func TestBlockMemoHitReplay(t *testing.T) {
	tr := loopTrace(2_000)
	cfg := DefaultConfig()
	c := New(cfg, bpu.NewUnit(tage.KB8(), nil), tr)
	st := c.Run()
	hits, misses, stores, _ := c.BlockMemoCounters()
	if hits == 0 {
		t.Fatalf("no memo hits on a stable-content loop (misses=%d stores=%d)", misses, stores)
	}
	cfg2 := DefaultConfig()
	cfg2.DisableBlockMemo = true
	c2 := New(cfg2, bpu.NewUnit(tage.KB8(), nil), tr)
	st2 := c2.Run()
	if st != st2 {
		t.Fatalf("memoized run diverges on loop trace\n  memo: %+v\n  live: %+v", st, st2)
	}
	t.Logf("loop trace: hits=%d misses=%d stores=%d (insts=%d)", hits, misses, stores, len(tr))
}
