package core

import "localbp/internal/trace"

// Hot basic-block memoization (DESIGN.md §17).
//
// Steady-state loop workloads allocate the same short runs of plain ALU
// instructions over and over, and for those runs the allocation-stage timing
// computation is a pure function of a tiny input vector: the per-instruction
// register operands, how far in the future each run-external source register
// becomes ready, and the ALU bank's occupancy — everything measured relative
// to the current cycle. A small direct-mapped cache keyed on exactly that
// vector (hashed with the entry PC for locality) records the run's timeline
// — each instruction's completion delta and the canonical post-run ALU
// occupancy — and replays it on a hit instead of re-deriving it through
// execTiming.
//
// Exactness does not rest on the invalidation policy: a replay fires only
// when every recorded input matches the live input bit-for-bit, and the two
// clamps below are semantics-preserving:
//
//   - readiness/occupancy deltas clamp below at 1 because every consumer
//     computes max(ready, v) with ready >= cycle+1 and the clock is
//     monotone, so all values at or before cycle+1 are interchangeable
//     forever after;
//   - runs whose deltas exceed the clamp ceiling are simply not memoized.
//
// The post-run ALU bank is written back as the sorted free-cycle multiset,
// which is a valid min-heap layout; resource semantics are a function of the
// multiset only (see the resource doc), so the canonical layout is
// observably identical to whatever sift order the live path produced.
//
// Invalidation (mispredict, early resteer, divergence onset — every repair
// action is initiated by one of those) bumps a generation counter that
// orphans all entries at once. It keeps the cache from serving timelines
// recorded under a control-flow regime that no longer exists; correctness
// would hold even without it, which is what lets the invalidation-storm
// property test bump the epoch at random without changing observables.
const (
	bmemoSlots   = 512 // direct-mapped entries, power of two
	bmemoMaxRun  = 4   // instructions per memoized run
	bmemoMaxALUs = 8   // ALU banks wider than this disable the memo
	bmemoClamp   = 63  // max key-able readiness/occupancy delta
)

type bmemoEntry struct {
	sigA  uint64 // packed (src1,src2,dst) of run insts 0-1, plus run length
	sigB  uint64 // packed (src1,src2,dst) of run insts 2-3
	ready uint64 // clamped readiness deltas of run-external sources, in read order
	occ   uint64 // clamped pre-run ALU free-cycle multiset, ascending
	epoch uint32 // generation stamp; stale entries never hit (0 = never valid)

	done [bmemoMaxRun]uint8  // completion cycle - entry cycle, per inst
	post [bmemoMaxALUs]uint8 // clamped post-run ALU free-cycle multiset, ascending
}

// blockMemoAlloc allocates up to `width` instructions from the queue head as
// one memoized run. It returns the number of instructions it consumed; 0
// means the head is not a memoizable run and the caller must allocate live.
// On a key miss the run still allocates here (live, through execTiming) and
// its timeline is recorded for the next occurrence.
func (c *Core) blockMemoAlloc(width int) int {
	if c.bmemoStorm != 0 {
		// Invalidation-storm test hook: an xorshift stream decides, per
		// attempt, whether to orphan the whole cache first.
		c.bmemoStorm ^= c.bmemoStorm << 13
		c.bmemoStorm ^= c.bmemoStorm >> 7
		c.bmemoStorm ^= c.bmemoStorm << 17
		if c.bmemoStorm&7 == 0 {
			c.bmemoInvalidate()
		}
	}
	T := c.cycle
	lim := width
	if c.fqCount < lim {
		lim = c.fqCount
	}
	if r := c.robSize - c.robLen(); r < lim {
		lim = r
	}
	if lim > bmemoMaxRun {
		lim = bmemoMaxRun
	}
	var insts [bmemoMaxRun]*trace.Inst
	k := 0
	for ; k < lim; k++ {
		s := &c.fetchQ[(c.fqHead+k)&c.fqMask]
		if s.wrongPath || s.inst.Class != trace.ClassALU || s.ready > T {
			break
		}
		insts[k] = &s.inst
	}
	if k == 0 {
		return 0
	}

	// Key: exact operand signature, run-external source readiness, ALU
	// occupancy. Sources produced inside the run key as 0 — their readiness
	// is determined by the recorded timeline itself.
	var sigA, sigB, ready uint64
	for i := 0; i < k; i++ {
		in := insts[i]
		p := uint64(in.Src1)<<16 | uint64(in.Src2)<<8 | uint64(in.Dst)
		if i < 2 {
			sigA |= p << (24 * i)
		} else {
			sigB |= p << (24 * (i - 2))
		}
		for _, r := range [2]uint8{in.Src1, in.Src2} {
			var d uint64
			if !runWrote(insts[:i], r) {
				dd := c.regReady[r] - T
				if dd < 1 {
					dd = 1
				}
				if dd > bmemoClamp {
					return 0
				}
				d = uint64(dd)
			}
			ready = ready<<8 | d
		}
	}
	sigA |= uint64(k) << 48

	f := c.alus.free
	var lv [bmemoMaxALUs]uint8
	for i, v := range f {
		d := v - T
		if d < 1 {
			d = 1
		}
		if d > bmemoClamp {
			return 0
		}
		lv[i] = uint8(d)
	}
	sortLevels(lv[:len(f)])
	var occ uint64
	for i := 0; i < len(f); i++ {
		occ = occ<<8 | uint64(lv[i])
	}

	h := insts[0].PC*0x9E3779B97F4A7C15 ^ sigA ^ sigB*0xBF58476D1CE4E5B9 ^
		ready ^ occ*0x94D049BB133111EB
	slot := &c.bmemo[(h>>16)&uint64(len(c.bmemo)-1)]

	if slot.epoch == c.bmemoEpoch && slot.sigA == sigA && slot.sigB == sigB &&
		slot.ready == ready && slot.occ == occ {
		c.dbgMemoHits++
		for i := 0; i < k; i++ {
			s, rec := c.fqPop()
			abs := c.robTail
			done := T + int64(slot.done[i])
			*c.robAt(abs) = robEntry{
				seq:       c.seq,
				class:     trace.ClassALU,
				streamPos: s.streamPos,
				done:      done,
			}
			c.robRec[abs&c.robMask] = rec
			c.seq++
			c.robTail++
			c.dbgDoneSum += done - T
			c.dbgDoneN++
			if d := s.inst.Dst; d != 0 {
				c.regReady[d] = done
			}
		}
		for i := range f {
			f[i] = T + int64(slot.post[i])
		}
		return k
	}

	// Miss: allocate live and record the timeline.
	c.dbgMemoMisses++
	var done [bmemoMaxRun]uint8
	fits := true
	for i := 0; i < k; i++ {
		s, rec := c.fqPop()
		abs := c.robTail
		e := c.robAt(abs)
		*e = robEntry{
			seq:       c.seq,
			class:     s.inst.Class,
			streamPos: s.streamPos,
			done:      1 << 62,
		}
		c.robRec[abs&c.robMask] = rec
		c.seq++
		c.robTail++
		dn := c.execTiming(&s.inst)
		e.done = dn
		c.dbgDoneSum += dn - T
		c.dbgDoneN++
		if d := dn - T; d >= 1 && d <= 255 {
			done[i] = uint8(d)
		} else {
			fits = false
		}
	}
	if fits {
		var post [bmemoMaxALUs]uint8
		for i, v := range f {
			d := v - T
			if d < 1 {
				d = 1
			}
			if d > 255 {
				fits = false
				break
			}
			post[i] = uint8(d)
		}
		if fits {
			sortLevels(post[:len(f)])
			*slot = bmemoEntry{
				sigA: sigA, sigB: sigB, ready: ready, occ: occ,
				epoch: c.bmemoEpoch, done: done, post: post,
			}
			c.dbgMemoStores++
		}
	}
	return k
}

// runWrote reports whether any earlier instruction of the run produces r.
func runWrote(prior []*trace.Inst, r uint8) bool {
	for _, in := range prior {
		if in.Dst == r && r != 0 {
			return true
		}
	}
	return false
}

// sortLevels insertion-sorts a tiny level slice ascending.
func sortLevels(s []uint8) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// bmemoInvalidate orphans every memo entry (generation bump).
func (c *Core) bmemoInvalidate() {
	if c.bmemo != nil {
		c.bmemoEpoch++
		c.dbgMemoInvals++
	}
}

// BlockMemoCounters reports (hits, misses, stores, invalidations) for the
// basic-block memo — diagnostics only, never part of Stats.
func (c *Core) BlockMemoCounters() (int64, int64, int64, int64) {
	return c.dbgMemoHits, c.dbgMemoMisses, c.dbgMemoStores, c.dbgMemoInvals
}
