package core

import (
	"errors"
	"fmt"
	"strings"
)

// ErrStalled is the sentinel wrapped by every StallError: a simulation that
// stopped making forward progress (no-retire deadman) or blew through its
// cycle budget. Match with errors.Is(err, core.ErrStalled).
var ErrStalled = errors.New("core: stalled")

// StallError reports a run aborted by the forward-progress watchdog, with a
// pipeline-state dump so a modeling bug is diagnosable instead of an
// infinite loop.
type StallError struct {
	Reason string // "no-retire deadman" or "cycle budget"
	Cycle  int64  // cycle at which the watchdog fired
	Dump   string // multi-line pipeline-state dump
}

// Error renders the reason, cycle and the dump.
func (e *StallError) Error() string {
	return fmt.Sprintf("core: stalled (%s) at cycle %d\n%s", e.Reason, e.Cycle, e.Dump)
}

// Unwrap lets errors.Is(err, ErrStalled) match.
func (e *StallError) Unwrap() error { return ErrStalled }

// dumpState snapshots the pipeline for the watchdog report.
func (c *Core) dumpState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  program:     pos=%d/%d (diverged=%v, wrongLeft=%d)\n",
		c.pos, c.total, c.diverged, c.wrongLeft)
	fmt.Fprintf(&b, "  fetch:       queue=%d/%d, holdTo=%d (cycle=%d)\n",
		c.fqCount, c.fqSize, c.fetchHoldTo, c.cycle)
	fmt.Fprintf(&b, "  rob:         %d/%d entries (head=%d tail=%d)\n",
		c.robLen(), c.robSize, c.robHead, c.robTail)
	if c.robLen() > 0 {
		e := c.robAt(c.robHead)
		fmt.Fprintf(&b, "  rob head:    seq=%d class=%s done=%d branch=%v resolved=%v wrongPath=%v\n",
			e.seq, e.class, e.done, e.isBranch, e.resolved, e.wrongPath)
	}
	fmt.Fprintf(&b, "  resolutions: %d pending", c.resolutions.len())
	if d, ok := c.resolutions.nextDue(); ok {
		fmt.Fprintf(&b, " (next due cycle %d)", d)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  stats:       insts=%d branches=%d mispredicts=%d flushes=%d\n",
		c.stats.Insts, c.stats.Branches, c.stats.Mispredicts, c.stats.Flushes)
	return b.String()
}
