package core

import (
	"testing"

	"localbp/internal/bpu"
	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/repair"
	"localbp/internal/trace"
)

// loopHeavyTrace builds a trace where the local predictor has real work:
// diluted loops whose exits TAGE cannot pin down.
func loopHeavyTrace(n int, seed int64) []trace.Inst {
	prog := trace.Program{Regions: []trace.Region{
		trace.Loop{Site: 0, Periods: trace.FixedPeriod(24), Body: []trace.Region{
			trace.Block{Site: 1, Len: 5},
			trace.Cond{Site: 2, Outcome: trace.BiasedPattern{P: 0.8}, ThenLen: 3, ElseLen: 2},
		}},
		trace.Loop{Site: 3, Periods: trace.FixedPeriod(17), Body: []trace.Region{
			trace.Block{Site: 4, Len: 4},
			trace.Cond{Site: 5, Outcome: trace.BiasedPattern{P: 0.85}, ThenLen: 2, ElseLen: 2},
		}},
		trace.Block{Site: 6, Len: 10},
	}}
	return trace.Generate(prog, n, seed)
}

func runScheme(tr []trace.Inst, mk func() repair.Scheme) (Stats, *repair.Stats) {
	var scheme repair.Scheme
	if mk != nil {
		scheme = mk()
	}
	unit := bpu.NewUnit(tage.KB8(), scheme)
	c := New(DefaultConfig(), unit, tr)
	st := c.Run()
	if scheme != nil {
		return st, scheme.Stats()
	}
	return st, nil
}

func TestMultiStageEndToEnd(t *testing.T) {
	tr := loopHeavyTrace(200_000, 17)
	base, _ := runScheme(tr, nil)
	ms, rst := runScheme(tr, func() repair.Scheme {
		return repair.NewMultiStage(loop.Loop128(), 32, true)
	})
	if ms.MPKI() >= base.MPKI() {
		t.Fatalf("multi-stage did not reduce MPKI: %.3f -> %.3f", base.MPKI(), ms.MPKI())
	}
	if rst.Repairs == 0 {
		t.Fatal("no repairs performed")
	}
	// The multi-stage design must produce early resteers — that's its
	// deferred-override mechanism — and they must appear in core stats.
	if ms.EarlyResteers == 0 {
		t.Fatal("no early resteers recorded by the core")
	}
	if ms.EarlyResteers != rst.EarlyResteers {
		t.Fatalf("core saw %d early resteers, scheme %d",
			ms.EarlyResteers, rst.EarlyResteers)
	}
}

func TestEarlyResteerCheaperThanFullMispredict(t *testing.T) {
	// With the deferred override correcting a would-be misprediction, the
	// branch must not count as mispredicted at resolve.
	tr := loopHeavyTrace(200_000, 29)
	ms, _ := runScheme(tr, func() repair.Scheme {
		return repair.NewMultiStage(loop.Loop128(), 32, true)
	})
	if ms.EarlyResteers == 0 {
		t.Skip("no early resteers in this run")
	}
	if ms.Flushes >= ms.Mispredicts+ms.EarlyResteers {
		t.Fatalf("flush accounting inconsistent: flushes=%d mispredicts=%d resteers=%d",
			ms.Flushes, ms.Mispredicts, ms.EarlyResteers)
	}
}

func TestWrongPathBudgetBounds(t *testing.T) {
	tr := loopHeavyTrace(100_000, 31)
	cfg := DefaultConfig()
	cfg.MaxWrongPathPerFlush = 8
	unit := bpu.NewUnit(tage.KB8(), nil)
	c := New(cfg, unit, tr)
	st := c.Run()
	if st.Flushes > 0 && st.WrongPathInsts > st.Flushes*8+uint64(cfg.MaxWrongPathPerFlush) {
		t.Fatalf("wrong-path budget exceeded: %d insts over %d flushes",
			st.WrongPathInsts, st.Flushes)
	}
}

func TestRepairSchemesAllRunEndToEnd(t *testing.T) {
	tr := loopHeavyTrace(120_000, 37)
	c := loop.Loop128()
	schemes := map[string]func() repair.Scheme{
		"perfect":  func() repair.Scheme { return repair.NewPerfect(c) },
		"none":     func() repair.Scheme { return repair.NewNone(c) },
		"retire":   func() repair.Scheme { return repair.NewRetireUpdate(c) },
		"snapshot": func() repair.Scheme { return repair.NewSnapshot(c, 32, repair.Ports{CkptRead: 8, BHTWrite: 8}) },
		"backward": func() repair.Scheme { return repair.NewBackwardWalk(c, 32, repair.Ports{CkptRead: 4, BHTWrite: 4}) },
		"forward": func() repair.Scheme {
			return repair.NewForwardWalk(c, 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, true)
		},
		"multi":   func() repair.Scheme { return repair.NewMultiStage(c, 32, false) },
		"limited": func() repair.Scheme { return repair.NewLimitedPC(c, 4, 4, false) },
	}
	for name, mk := range schemes {
		st, _ := runScheme(tr, mk)
		if st.Insts != 120_000 {
			t.Errorf("%s: retired %d of 120000", name, st.Insts)
		}
		if st.IPC() <= 0 {
			t.Errorf("%s: IPC %.3f", name, st.IPC())
		}
	}
}

func TestPerfectBeatsUnrepairedEverywhere(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		tr := loopHeavyTrace(150_000, seed)
		perfect, _ := runScheme(tr, func() repair.Scheme { return repair.NewPerfect(loop.Loop128()) })
		none, _ := runScheme(tr, func() repair.Scheme { return repair.NewNone(loop.Loop128()) })
		if perfect.MPKI() > none.MPKI() {
			t.Errorf("seed %d: perfect repair (%.3f MPKI) worse than no repair (%.3f)",
				seed, perfect.MPKI(), none.MPKI())
		}
	}
}
