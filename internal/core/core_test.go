package core

import (
	"testing"

	"localbp/internal/bpu"
	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/repair"
	"localbp/internal/trace"
)

func baselineUnit() *bpu.Unit { return bpu.NewUnit(tage.KB8(), nil) }

func run(t *testing.T, cfg Config, tr []trace.Inst) Stats {
	t.Helper()
	c := New(cfg, baselineUnit(), tr)
	return c.Run()
}

func aluTrace(n int, dst func(i int) uint8, src func(i int) uint8) []trace.Inst {
	tr := make([]trace.Inst, n)
	for i := range tr {
		tr[i] = trace.Inst{PC: uint64(0x1000 + (i%64)*4), Class: trace.ClassALU,
			Dst: dst(i), Src1: src(i)}
	}
	return tr
}

func TestIndependentALUReachesFullWidth(t *testing.T) {
	tr := aluTrace(50_000,
		func(i int) uint8 { return uint8(1 + i%60) },
		func(i int) uint8 { return 0 })
	st := run(t, DefaultConfig(), tr)
	if st.IPC() < 3.9 {
		t.Fatalf("independent ALU IPC %.2f, want ~4", st.IPC())
	}
	if st.Insts != 50_000 {
		t.Fatalf("retired %d of 50000", st.Insts)
	}
}

func TestSerialChainIsOneIPC(t *testing.T) {
	tr := aluTrace(20_000,
		func(i int) uint8 { return 1 },
		func(i int) uint8 { return 1 })
	st := run(t, DefaultConfig(), tr)
	if st.IPC() < 0.95 || st.IPC() > 1.05 {
		t.Fatalf("serial chain IPC %.2f, want ~1", st.IPC())
	}
}

func TestLoadPortsLimitThroughput(t *testing.T) {
	n := 30_000
	tr := make([]trace.Inst, n)
	for i := range tr {
		tr[i] = trace.Inst{PC: 0x2000, Class: trace.ClassLoad,
			Dst: uint8(1 + i%60), Addr: uint64(0x100000 + i*8)}
	}
	st := run(t, DefaultConfig(), tr)
	if st.IPC() < 1.8 || st.IPC() > 2.1 {
		t.Fatalf("streaming load IPC %.2f, want ~2 (2 load ports)", st.IPC())
	}
}

func TestAllInstructionsRetire(t *testing.T) {
	prog := trace.Program{Regions: []trace.Region{
		trace.Loop{Site: 0, Periods: trace.FixedPeriod(13), Body: []trace.Region{
			trace.Block{Site: 1, Len: 6},
			trace.Cond{Site: 2, Outcome: trace.BiasedPattern{P: 0.7}, ThenLen: 2, ElseLen: 2},
		}},
	}}
	tr := trace.Generate(prog, 40_000, 3)
	st := run(t, DefaultConfig(), tr)
	if st.Insts != 40_000 {
		t.Fatalf("retired %d of 40000", st.Insts)
	}
	want := trace.Summarize(tr).Branches
	if st.Branches != uint64(want) {
		t.Fatalf("retired %d branches, trace has %d", st.Branches, want)
	}
}

func TestDeterminism(t *testing.T) {
	prog := trace.Program{Regions: []trace.Region{
		trace.Loop{Site: 0, Periods: trace.FixedPeriod(9), Body: []trace.Region{
			trace.Block{Site: 1, Len: 4},
		}},
		trace.Cond{Site: 2, Outcome: trace.BiasedPattern{P: 0.6}, ThenLen: 3, ElseLen: 1},
	}}
	tr := trace.Generate(prog, 30_000, 11)
	mk := func() Stats {
		scheme := repair.NewForwardWalk(loop.Loop128(), 32, repair.Ports{CkptRead: 4, BHTWrite: 2}, true)
		c := New(DefaultConfig(), bpu.NewUnit(tage.KB8(), scheme), tr)
		return c.Run()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("two identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestMispredictionsCostCycles(t *testing.T) {
	// Same instruction mix; one trace has a predictable branch, the other
	// a random one. The random trace must take noticeably longer.
	mk := func(pat trace.PatternGen) []trace.Inst {
		prog := trace.Program{Regions: []trace.Region{
			trace.Cond{Site: 0, Outcome: pat, ThenLen: 4, ElseLen: 4},
			trace.Block{Site: 1, Len: 6},
		}}
		return trace.Generate(prog, 50_000, 5)
	}
	predictable := run(t, DefaultConfig(), mk(&trace.RepeatingPattern{Pattern: []bool{true, false}}))
	random := run(t, DefaultConfig(), mk(trace.BiasedPattern{P: 0.5}))
	if random.MPKI() < 5*predictable.MPKI() {
		t.Fatalf("MPKI separation missing: random %.2f predictable %.2f",
			random.MPKI(), predictable.MPKI())
	}
	if random.Cycles < predictable.Cycles+int64(random.Mispredicts)*5 {
		t.Fatalf("mispredictions too cheap: %d vs %d cycles for %d mispredicts",
			random.Cycles, predictable.Cycles, random.Mispredicts)
	}
}

func TestWrongPathSynthesis(t *testing.T) {
	prog := trace.Program{Regions: []trace.Region{
		trace.Cond{Site: 0, Outcome: trace.BiasedPattern{P: 0.5}, ThenLen: 3, ElseLen: 3},
		trace.Block{Site: 1, Len: 4},
	}}
	tr := trace.Generate(prog, 30_000, 7)
	cfg := DefaultConfig()
	withWP := run(t, cfg, tr)
	cfg.WrongPath = false
	withoutWP := run(t, cfg, tr)
	if withWP.WrongPathInsts == 0 {
		t.Fatal("no wrong-path instructions synthesized")
	}
	if withoutWP.WrongPathInsts != 0 {
		t.Fatal("wrong path synthesized despite being disabled")
	}
	if withWP.Insts != withoutWP.Insts {
		t.Fatal("wrong path altered the retired instruction count")
	}
}

func TestFlushCountMatchesMispredicts(t *testing.T) {
	prog := trace.Program{Regions: []trace.Region{
		trace.Cond{Site: 0, Outcome: trace.BiasedPattern{P: 0.5}, ThenLen: 3, ElseLen: 3},
		trace.Block{Site: 1, Len: 4},
	}}
	tr := trace.Generate(prog, 30_000, 9)
	st := run(t, DefaultConfig(), tr)
	if st.Flushes != st.Mispredicts {
		t.Fatalf("flushes %d != mispredicts %d (no early resteers configured)",
			st.Flushes, st.Mispredicts)
	}
}

func TestDeepFrontEndRaisesPenalty(t *testing.T) {
	prog := trace.Program{Regions: []trace.Region{
		trace.Cond{Site: 0, Outcome: trace.BiasedPattern{P: 0.5}, ThenLen: 3, ElseLen: 3},
		trace.Block{Site: 1, Len: 4},
	}}
	tr := trace.Generate(prog, 30_000, 13)
	shallow := DefaultConfig()
	shallow.FrontendDepth = 4
	deep := DefaultConfig()
	deep.FrontendDepth = 20
	a := run(t, shallow, tr)
	b := run(t, deep, tr)
	if b.Cycles <= a.Cycles {
		t.Fatalf("deeper front end not slower: %d vs %d cycles", b.Cycles, a.Cycles)
	}
}

func TestStatsAccessors(t *testing.T) {
	var s Stats
	if s.IPC() != 0 || s.MPKI() != 0 || s.TageMPKI() != 0 {
		t.Fatal("zero-value stats should report zeros")
	}
	s = Stats{Cycles: 100, Insts: 250, Mispredicts: 5, TageMispredicts: 10}
	if s.IPC() != 2.5 {
		t.Fatalf("IPC %v", s.IPC())
	}
	if s.MPKI() != 20 {
		t.Fatalf("MPKI %v", s.MPKI())
	}
	if s.TageMPKI() != 40 {
		t.Fatalf("TageMPKI %v", s.TageMPKI())
	}
}

func TestEmptyProgramTerminates(t *testing.T) {
	st := run(t, DefaultConfig(), nil)
	if st.Insts != 0 {
		t.Fatal("retired instructions from an empty program")
	}
}

func TestSchemeIntegration(t *testing.T) {
	// End-to-end: a loop-heavy trace must lose MPKI when the local
	// predictor with perfect repair is attached, and must not when the
	// repair is absent.
	prog := trace.Program{Regions: []trace.Region{
		trace.Loop{Site: 0, Periods: trace.FixedPeriod(30), Body: []trace.Region{
			trace.Block{Site: 1, Len: 4},
			trace.Cond{Site: 2, Outcome: trace.BiasedPattern{P: 0.8}, ThenLen: 2, ElseLen: 2},
		}},
	}}
	tr := trace.Generate(prog, 150_000, 21)

	base := New(DefaultConfig(), baselineUnit(), tr).Run()
	perfect := New(DefaultConfig(),
		bpu.NewUnit(tage.KB8(), repair.NewPerfect(loop.Loop128())), tr).Run()
	if perfect.MPKI() >= base.MPKI() {
		t.Fatalf("perfect repair did not reduce MPKI: %.3f -> %.3f", base.MPKI(), perfect.MPKI())
	}
	if perfect.IPC() < base.IPC() {
		t.Fatalf("perfect repair lost IPC: %.3f -> %.3f", base.IPC(), perfect.IPC())
	}
}

func TestResourceTake(t *testing.T) {
	r := newResource(2)
	if got := r.take(10, 1); got != 10 {
		t.Fatalf("first unit start %d", got)
	}
	if got := r.take(10, 1); got != 10 {
		t.Fatalf("second unit start %d", got)
	}
	if got := r.take(10, 1); got != 11 {
		t.Fatalf("third op should wait: start %d", got)
	}
}
