package core

// The resolution queue is a calendar (bucket) queue keyed on the resolve
// cycle: one ring slot per future cycle inside a fixed window, plus an
// overflow list for the rare event scheduled beyond it. It replaces the
// container/heap priority queue the core used to carry — the heap boxed
// every resolution through `any` on both Push and Pop, which made the two
// hottest per-branch operations each cost a heap allocation.
//
// Ordering contract (must match the old heap exactly): resolutions pop in
// (done, seq) ascending order. The calendar gets this for free:
//
//   - buckets drain in cycle order, so done ordering holds across buckets;
//   - the core allocates branches in program order with a monotonically
//     increasing seq, so appends within one bucket arrive in seq order;
//   - an overflow entry migrates into its bucket on the first cycle the
//     window reaches it — before any same-cycle append can land there
//     (migration runs in stepResolutions, appends in the later stepAlloc) —
//     so migrated entries keep their seq position too.
//
// Invariants:
//
//   - every bucket entry has done in [base, base+calWindow), so slot
//     (done & calMask) is collision-free and drains never inspect done;
//   - every overflow entry has done >= base+calWindow after migration ran;
//   - base only advances (advance sets base = cycle+1 after draining).
const (
	calWindowLog = 11
	calWindow    = int64(1) << calWindowLog // cycles covered by the ring
	calMask      = calWindow - 1
)

type calQueue struct {
	buckets [][]resolution // len calWindow, slot = done & calMask
	base    int64          // cycles < base are fully drained
	count   int            // live entries in buckets (not overflow)

	// scanFrom is a lower bound on the earliest live bucket entry: nextDue
	// scans forward from it and parks it at the found cycle, so repeated
	// queries while waiting on a far-future event stay O(1).
	scanFrom int64

	overflow []resolution // done beyond the window at insert time, seq order
	ovMin    int64        // min done in overflow; valid while len > 0

	arena []resolution // chunked backing for first-touch bucket storage
}

func newCalQueue() calQueue {
	return calQueue{buckets: make([][]resolution, calWindow)}
}

// Bucket storage is carved lazily out of chunked arenas: a slot's first entry
// grabs a fixed-capacity piece of the current chunk, so steady-state inserts
// never touch the allocator (the whole window costs a handful of chunk
// allocations rather than one per bucket) while storage stays packed in
// first-touch order. A bucket that outgrows its piece reallocates once via
// append and keeps the larger capacity across drains (drain resets to b[:0]).
const (
	bucketCap         = 4
	arenaChunkBuckets = 256
)

func (q *calQueue) grab() []resolution {
	if len(q.arena) < bucketCap {
		q.arena = make([]resolution, arenaChunkBuckets*bucketCap)
	}
	b := q.arena[0:0:bucketCap]
	q.arena = q.arena[bucketCap:]
	return b
}

// put appends r to its slot, wiring never-touched slots to arena storage.
func (q *calQueue) put(slot int64, r resolution) {
	b := q.buckets[slot]
	if cap(b) == 0 {
		b = q.grab()
	}
	q.buckets[slot] = append(b, r)
}

// len returns the number of pending resolutions (buckets plus overflow).
func (q *calQueue) len() int { return q.count + len(q.overflow) }

// insert schedules r. The core only inserts events strictly in the future
// (r.done > current cycle >= base-1).
func (q *calQueue) insert(r resolution) {
	if r.done-q.base >= calWindow {
		if len(q.overflow) == 0 || r.done < q.ovMin {
			q.ovMin = r.done
		}
		q.overflow = append(q.overflow, r)
		return
	}
	q.put(r.done&calMask, r)
	q.count++
	if r.done < q.scanFrom {
		q.scanFrom = r.done
	}
}

// drain calls fn on every entry due at or before cycle, in (done, seq)
// order, then advances the window and migrates newly reachable overflow
// entries. fn must not insert (the core resolves branches here; inserts only
// happen at allocation).
func (q *calQueue) drain(cycle int64, fn func(*resolution)) {
	if q.count == 0 && len(q.overflow) == 0 {
		// Empty queue: advancing the window is all there is to do.
		q.base = cycle + 1
		if q.scanFrom < q.base {
			q.scanFrom = q.base
		}
		return
	}
	if q.count > 0 {
		start := q.base
		if q.scanFrom > start {
			// Slots before scanFrom are provably empty; after a fast-forward
			// jump this skips the whole idle stretch in one step.
			start = q.scanFrom
		}
		for d := start; d <= cycle; d++ {
			slot := d & calMask
			b := q.buckets[slot]
			if len(b) == 0 {
				continue
			}
			q.buckets[slot] = b[:0]
			q.count -= len(b)
			for i := range b {
				fn(&b[i])
			}
		}
	}
	q.base = cycle + 1
	if q.scanFrom < q.base {
		q.scanFrom = q.base
	}
	if len(q.overflow) > 0 && q.ovMin-q.base < calWindow {
		q.migrate()
	}
}

// migrate moves every overflow entry the window now covers into its bucket,
// compacting the rest in place (preserving seq order).
func (q *calQueue) migrate() {
	keep := q.overflow[:0]
	newMin := int64(1) << 62
	for _, r := range q.overflow {
		if r.done-q.base < calWindow {
			q.put(r.done&calMask, r)
			q.count++
			if r.done < q.scanFrom {
				q.scanFrom = r.done
			}
		} else {
			keep = append(keep, r)
			if r.done < newMin {
				newMin = r.done
			}
		}
	}
	q.overflow = keep
	q.ovMin = newMin
}

// each calls fn for every pending resolution in unspecified order (the
// auditor's read-only cross-check).
func (q *calQueue) each(fn func(*resolution)) {
	if q.count > 0 {
		for slot := range q.buckets {
			b := q.buckets[slot]
			for i := range b {
				fn(&b[i])
			}
		}
	}
	for i := range q.overflow {
		fn(&q.overflow[i])
	}
}

// nextDue returns the earliest pending resolve cycle. The second result is
// false when the queue is empty. When any bucket entry is live it is the
// global minimum (overflow entries are always beyond the bucket window), so
// the forward scan from scanFrom is exact; otherwise the overflow minimum
// decides.
func (q *calQueue) nextDue() (int64, bool) {
	if q.count > 0 {
		d := q.scanFrom
		if d < q.base {
			d = q.base
		}
		for ; ; d++ {
			if len(q.buckets[d&calMask]) > 0 {
				q.scanFrom = d
				return d, true
			}
		}
	}
	if len(q.overflow) > 0 {
		return q.ovMin, true
	}
	return 0, false
}
