package core

// Idle-cycle fast-forward.
//
// Long stretches of the simulation are provably idle: the ROB head waits on
// a DRAM miss, fetch is held by a resteer penalty, or the only pending event
// is a branch resolution many cycles out. The plain loop burns one full
// iteration per idle cycle doing nothing but bumping counters. idleUntil
// computes the first cycle X at which anything observable can happen;
// skipIdle then applies the per-cycle bookkeeping of the skipped window in
// O(1) and jumps the clock to X.
//
// The contract is exactness, not approximation: a fast-forwarded run is
// bit-identical — cycles, every Stats counter, the CPI stack, watchdog
// errors — to the cycle-by-cycle run (TestFastForwardDifferential and the
// top-level golden test enforce this). That holds because an idle iteration
// touches exactly four things, each replayed by skipIdle:
//
//   - stepFetch increments FetchStallCycles while cycle < fetchHoldTo;
//   - stepAlloc increments exactly one of the dbg stall counters, picked by
//     the same (fq-empty, rob-full, not-ready) priority;
//   - the CPI stack attributes the cycle to one bucket;
//   - the cycle counter advances.
//
// idleUntil clamps X so that every condition those depend on is constant
// across [cycle, X): the next resolution due, the ROB head's completion, the
// alloc-queue head's ready cycle, the fetch hold, every CPI classification
// flip point, and the watchdog limit (so the deadman/budget iteration runs
// live and produces an identical StallError).

// idleUntil returns the earliest cycle at which the pipeline can do real
// work (or an accounting condition can change), never exceeding limit. A
// return equal to c.cycle means the current cycle is not idle.
func (c *Core) idleUntil(limit int64) int64 {
	cycle := c.cycle
	if limit <= cycle {
		return cycle
	}
	x := limit

	// Fetch: an active front end with instructions to deliver produces new
	// work every cycle. (A held front end becomes active at fetchHoldTo;
	// with nothing to fetch — program exhausted, divergence out of
	// wrong-path budget, or queue full — stepFetch stays a no-op.)
	if c.fqCount < len(c.fetchQ) {
		var hasWork bool
		if c.diverged {
			hasWork = c.cfg.WrongPath && c.wrongLeft > 0
		} else {
			hasWork = c.pos < c.total
		}
		if hasWork {
			if cycle >= c.fetchHoldTo {
				return cycle
			}
			if c.fetchHoldTo < x {
				x = c.fetchHoldTo
			}
		}
	}

	// Alloc: a ready alloc-queue head with ROB space allocates immediately.
	if c.fqCount > 0 && c.robLen() < len(c.rob) {
		if r := c.fqPeek().ready; r <= cycle {
			return cycle
		} else if r < x {
			x = r
		}
	}

	// Retire: a completed head retires; a wrong-path head trips a violation
	// (let the live path report it).
	if c.robLen() > 0 {
		e := c.robAt(c.robHead)
		if e.wrongPath || e.done <= cycle {
			return cycle
		}
		if e.done < x {
			x = e.done
		}
	}

	// Resolutions: the earliest pending branch execution.
	if d, ok := c.resolutions.nextDue(); ok {
		if c.resolutions.count == 0 {
			// The next event sits in the calendar overflow: stop one cycle
			// short so a live drain migrates it into the bucket window
			// before its due cycle.
			d--
		}
		if d <= cycle {
			return cycle
		}
		if d < x {
			x = d
		}
	}

	// CPI classification flip points: clamp to each so the whole window
	// lands in a single bucket (classifyCycle's conditions are otherwise
	// constant — occupancies cannot change on an idle cycle).
	if c.cpi != nil {
		if c.robLen() > 0 {
			if c.busyFn != nil {
				if b := c.busyFn(); b > cycle && b < x {
					x = b
				}
			}
			if m := lsqBusyUntil(c.ldBuf, c.stBuf); m > cycle && m < x {
				x = m
			}
		} else if c.cpiFrontHold > cycle && c.cpiFrontHold < x {
			x = c.cpiFrontHold
		}
	}
	return x
}

// skipIdle advances the clock by n cycles, applying exactly the bookkeeping
// n idle iterations would have performed.
func (c *Core) skipIdle(n int64) {
	if held := c.fetchHoldTo - c.cycle; held > 0 {
		if held > n {
			held = n
		}
		c.stats.FetchStallCycles += held
	}
	switch {
	case c.fqCount == 0:
		c.dbgFQEmpty += n
	case c.robLen() >= len(c.rob):
		c.dbgROBFull += n
	default:
		c.dbgNotReady += n
	}
	if c.cpi != nil {
		c.cpi.AddN(c.classifyCycle(false), n)
	}
	c.cycle += n
}

// lsqBusyUntil returns the cycle at which the LSQ-full condition
// (allBusy(ld) || allBusy(st)) turns false: the later of the two buffers'
// earliest-free cycles.
func lsqBusyUntil(ld, st *resource) int64 {
	a, b := minFree(ld), minFree(st)
	if a > b {
		return a
	}
	return b
}

// minFree returns the earliest next-free cycle across r's units (the heap
// minimum).
func minFree(r *resource) int64 {
	return r.free[0]
}
