package core

import "localbp/internal/obs"

// Idle-cycle fast-forward.
//
// Long stretches of the simulation are provably idle: the ROB head waits on
// a DRAM miss, fetch is held by a resteer penalty, or the only pending event
// is a branch resolution many cycles out. The plain loop burns one full
// iteration per idle cycle doing nothing but bumping counters. idleUntil
// computes the first cycle X at which anything observable can happen;
// skipIdle then applies the per-cycle bookkeeping of the skipped window in
// O(1) and jumps the clock to X.
//
// The contract is exactness, not approximation: a fast-forwarded run is
// bit-identical — cycles, every Stats counter, the CPI stack, watchdog
// errors — to the cycle-by-cycle run (TestFastForwardDifferential and the
// top-level golden test enforce this). That holds because an idle iteration
// touches exactly four things, each replayed by skipIdle:
//
//   - stepFetch increments FetchStallCycles while cycle < fetchHoldTo;
//   - stepAlloc increments exactly one of the dbg stall counters, picked by
//     the same (fq-empty, rob-full, not-ready) priority;
//   - the CPI stack attributes the cycle to one bucket;
//   - the cycle counter advances.
//
// idleUntil clamps X so that every condition those depend on is constant
// across [cycle, X): the next resolution due, the ROB head's completion, the
// alloc-queue head's ready cycle, the fetch hold, every CPI classification
// flip point, and the watchdog limit (so the deadman/budget iteration runs
// live and produces an identical StallError).

// idleUntil returns the earliest cycle at which the pipeline can do real
// work (or an accounting condition can change), never exceeding limit. A
// return equal to c.cycle means the current cycle is not idle.
func (c *Core) idleUntil(limit int64) int64 {
	cycle := c.cycle
	if limit <= cycle {
		return cycle
	}
	x := limit

	// Fetch: an active front end with instructions to deliver produces new
	// work every cycle. (A held front end becomes active at fetchHoldTo;
	// with nothing to fetch — program exhausted, divergence out of
	// wrong-path budget, or queue full — stepFetch stays a no-op.)
	if c.fqCount < c.fqSize {
		var hasWork bool
		if c.diverged {
			hasWork = c.cfg.WrongPath && c.wrongLeft > 0
		} else {
			hasWork = c.pos < c.total
		}
		if hasWork {
			if cycle >= c.fetchHoldTo {
				return cycle
			}
			if c.fetchHoldTo < x {
				x = c.fetchHoldTo
			}
		}
	}

	// Alloc: a ready alloc-queue head with ROB space allocates immediately.
	if c.fqCount > 0 && c.robLen() < c.robSize {
		if r := c.fqPeek().ready; r <= cycle {
			return cycle
		} else if r < x {
			x = r
		}
	}

	// Retire: a completed head retires; a wrong-path head trips a violation
	// (let the live path report it).
	if c.robLen() > 0 {
		e := c.robAt(c.robHead)
		if e.wrongPath || e.done <= cycle {
			return cycle
		}
		if e.done < x {
			x = e.done
		}
	}

	// Resolutions: the earliest pending branch execution.
	if d, ok := c.resolutions.nextDue(); ok {
		if c.resolutions.count == 0 {
			// The next event sits in the calendar overflow: stop one cycle
			// short so a live drain migrates it into the bucket window
			// before its due cycle.
			d--
		}
		if d <= cycle {
			return cycle
		}
		if d < x {
			x = d
		}
	}

	// CPI classification flip points: clamp to each so the whole window
	// lands in a single bucket (classifyCycle's conditions are otherwise
	// constant — occupancies cannot change on an idle cycle).
	if c.cpi != nil {
		if c.robLen() > 0 {
			if c.busyFn != nil {
				if b := c.busyFn(); b > cycle && b < x {
					x = b
				}
			}
			if m := lsqBusyUntil(c.ldBuf, c.stBuf); m > cycle && m < x {
				x = m
			}
		} else if c.cpiFrontHold > cycle && c.cpiFrontHold < x {
			x = c.cpiFrontHold
		}
	}
	return x
}

// skipIdle advances the clock by n cycles, applying exactly the bookkeeping
// n idle iterations would have performed.
func (c *Core) skipIdle(n int64) {
	if held := c.fetchHoldTo - c.cycle; held > 0 {
		if held > n {
			held = n
		}
		c.stats.FetchStallCycles += held
	}
	switch {
	case c.fqCount == 0:
		c.dbgFQEmpty += n
	case c.robLen() >= c.robSize:
		c.dbgROBFull += n
	default:
		c.dbgNotReady += n
	}
	if c.cpi != nil {
		c.cpi.AddN(c.classifyCycle(false), n)
	}
	c.cycle += n
}

// retireWindow computes the largest W such that for every cycle t in
// [c.cycle, W] the ONLY pipeline step that can do work is retire:
//
//   - fetch is inert: either it has nothing to deliver (program exhausted, or
//     a divergence with no wrong-path budget) — any W — or it is held, which
//     bounds W to fetchHoldTo-1;
//   - alloc is inert: the queue is empty (and stays empty, fetch being inert)
//     or its head is not ready, bounding W to ready-1;
//   - no branch resolution comes due: W stays below the calendar's next due
//     cycle (one extra cycle of slack when that event still sits in the
//     overflow list, so a live drain migrates it first — same reasoning as
//     idleUntil);
//   - the cycle budget still gets its live abort: W <= budgetLimit.
//
// A W below c.cycle means no such window exists. Warmup must be settled by
// the caller (the warmup snapshot is taken at a per-cycle boundary, which a
// multi-cycle step would displace).
func (c *Core) retireWindow(budgetLimit int64) int64 {
	w := budgetLimit
	if c.diverged {
		if c.cfg.WrongPath && c.wrongLeft > 0 {
			if c.fetchHoldTo-1 < w {
				w = c.fetchHoldTo - 1
			}
		}
	} else if c.pos < c.total {
		if c.fetchHoldTo-1 < w {
			w = c.fetchHoldTo - 1
		}
	}
	if c.fqCount > 0 {
		if r := c.fqPeek().ready - 1; r < w {
			w = r
		}
	}
	if d, ok := c.resolutions.nextDue(); ok {
		if c.resolutions.count == 0 {
			d--
		}
		if d-1 < w {
			w = d - 1
		}
	}
	return w
}

// retireBurst is the closed-form multi-cycle stepRetire: it retires through
// cycles [c.cycle, W] while every cycle retires at least one instruction,
// applying per-cycle bookkeeping (fetch-stall and alloc-stall counters, the
// CPI stack, golden retire checks) exactly as the live loop would, and
// advances the clock past the last cycle it processed. It returns the number
// of cycles consumed (0 means the caller must run a live iteration).
//
// Bit-identity: each processed cycle performs precisely what the live
// iteration at that cycle would have — stepResolutions is a no-op (nothing
// due before W), stepAlloc touches only its stall counter, stepFetch only the
// fetch-stall counter, and stepRetire's body is replicated below. Every
// processed cycle retires, so its CPI bucket is CPIRetired and the no-retire
// deadman can never trip inside the window.
func (c *Core) retireBurst(budgetLimit int64) int64 {
	if !c.warmDone && c.cfg.WarmupInsts > 0 {
		return 0
	}
	if c.robLen() == 0 {
		return 0
	}
	if e := c.robAt(c.robHead); e.wrongPath || e.done > c.cycle || (e.isBranch && !e.resolved) {
		return 0
	}
	w := c.retireWindow(budgetLimit)
	start := c.cycle
	for c.cycle <= w {
		retired := 0
		for ; retired < c.cfg.Width && c.robLen() > 0; retired++ {
			e := c.robAt(c.robHead)
			rec := c.robRec[c.robHead&c.robMask]
			if e.wrongPath || e.done > c.cycle || (e.isBranch && !e.resolved) {
				break
			}
			if g := c.cfg.Golden; g != nil {
				var pc uint64
				var taken bool
				if e.isBranch && rec != nil {
					pc, taken = rec.Ctx.PC, rec.Ctx.ActualTaken
				}
				if err := g.Retire(e.streamPos, e.class, e.isBranch, pc, taken, c.cycle); err != nil {
					c.fail(err)
					return c.cycle - start // abort mid-burst; RunContext sees integrity
				}
			}
			c.lastRetSeq, c.hasRetired = e.seq, true
			if e.isBranch {
				c.stats.Branches++
				if rec != nil {
					c.unit.Retire(rec)
					c.robRec[c.robHead&c.robMask] = nil
				}
			}
			c.stats.Insts++
			c.robHead++
		}
		if retired == 0 {
			break // head not retirable this cycle: hand back to the live loop
		}
		// The live iteration's residue for this cycle: fetch-stall while
		// held, exactly one alloc-stall counter, one CPI bucket.
		if c.cycle < c.fetchHoldTo {
			c.stats.FetchStallCycles++
		}
		if c.fqCount == 0 {
			c.dbgFQEmpty++
		} else {
			c.dbgNotReady++
		}
		if c.cpi != nil {
			c.cpi.Add(obs.CPIRetired)
		}
		c.cycle++
	}
	return c.cycle - start
}

// lsqBusyUntil returns the cycle at which the LSQ-full condition
// (ld.allBusy || st.allBusy) turns false: the later of the two buffers'
// earliest-free cycles.
func lsqBusyUntil(ld, st *occBuf) int64 {
	a, b := ld.minFree(), st.minFree()
	if a > b {
		return a
	}
	return b
}
