package core

import (
	"errors"
	"strings"
	"testing"

	"localbp/internal/bpu"
	"localbp/internal/bpu/tage"
	"localbp/internal/trace"
)

// watchdogProgram is a short all-ALU program; any sane core retires it.
func watchdogProgram(n int) []trace.Inst {
	tr := make([]trace.Inst, n)
	for i := range tr {
		tr[i] = trace.Inst{PC: 0x1000 + uint64(4*i), Class: trace.ClassALU}
	}
	return tr
}

func watchdogCore(cfg Config, n int) *Core {
	return New(cfg, bpu.NewUnit(tage.KB8(), nil), watchdogProgram(n))
}

func TestRunCheckedCompletesNormally(t *testing.T) {
	st, err := watchdogCore(DefaultConfig(), 5_000).RunChecked()
	if err != nil {
		t.Fatalf("clean run errored: %v", err)
	}
	if st.Insts != 5_000 {
		t.Fatalf("retired %d instructions, want 5000", st.Insts)
	}
}

func TestWatchdogNoRetireDeadman(t *testing.T) {
	cfg := DefaultConfig()
	// The first retirement cannot happen before the front-end depth plus
	// execution latency; a deadman shorter than that must fire.
	cfg.FrontendDepth = 50
	cfg.StallCycles = 10
	_, err := watchdogCore(cfg, 1_000).RunChecked()
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err %T is not a *StallError", err)
	}
	if !strings.Contains(se.Reason, "deadman") {
		t.Fatalf("reason %q does not name the deadman", se.Reason)
	}
	for _, want := range []string{"rob:", "fetch:", "program:", "stats:"} {
		if !strings.Contains(se.Dump, want) {
			t.Fatalf("pipeline dump missing %q:\n%s", want, se.Dump)
		}
	}
}

func TestWatchdogCycleBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 100 // far below what 10k instructions need
	_, err := watchdogCore(cfg, 10_000).RunChecked()
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	var se *StallError
	if !errors.As(err, &se) || !strings.Contains(se.Reason, "budget") {
		t.Fatalf("err %v does not report the cycle budget", err)
	}
	if se.Cycle < 100 {
		t.Fatalf("watchdog fired at cycle %d, before the budget of 100", se.Cycle)
	}
}

func TestRunPanicsOnStall(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 100
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("Run did not panic on a watchdog trip")
		}
		err, ok := p.(error)
		if !ok || !errors.Is(err, ErrStalled) {
			t.Fatalf("Run panicked with %v, want an ErrStalled-wrapping error", p)
		}
	}()
	watchdogCore(cfg, 10_000).Run()
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}

	var zero Config
	err := zero.Validate()
	if err == nil {
		t.Fatal("zero config validated")
	}
	for _, field := range []string{"Width", "ROBSize", "AllocQueue", "LatALU"} {
		if !strings.Contains(err.Error(), field) {
			t.Errorf("zero-config error does not name %s: %v", field, err)
		}
	}

	cfg := DefaultConfig()
	cfg.Width = -1
	cfg.StallCycles = -5
	err = cfg.Validate()
	if err == nil || !strings.Contains(err.Error(), "Width") || !strings.Contains(err.Error(), "StallCycles") {
		t.Fatalf("expected joined Width and StallCycles errors, got: %v", err)
	}
}
