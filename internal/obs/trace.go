package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// EventKind identifies one structured trace event type.
type EventKind uint8

// Event kinds. Arg is kind-specific: the sequence number for mispredicts,
// the busy duration in cycles for repairs, the coalesced run length for OBQ
// coalesces, and the cache level (1-based) for prefetch hits.
const (
	EvMispredict EventKind = iota
	EvEarlyResteer
	EvRepair
	EvOBQCoalesce
	EvPrefetchHit
	numEventKinds
)

var eventNames = [numEventKinds]string{
	EvMispredict:   "mispredict",
	EvEarlyResteer: "early-resteer",
	EvRepair:       "repair",
	EvOBQCoalesce:  "obq-coalesce",
	EvPrefetchHit:  "prefetch-hit",
}

// String returns the kind's stable wire name.
func (k EventKind) String() string {
	if k < numEventKinds {
		return eventNames[k]
	}
	return fmt.Sprintf("event-%d", uint8(k))
}

// eventKindByName inverts eventNames for the JSONL decoder.
func eventKindByName(name string) (EventKind, bool) {
	for k, n := range eventNames {
		if n == name {
			return EventKind(k), true
		}
	}
	return 0, false
}

// Event is one structured trace record: a kind, the core cycle it occurred
// on, the branch PC involved (0 when not applicable) and a kind-specific
// argument.
type Event struct {
	Kind  EventKind
	Cycle int64
	PC    uint64
	Arg   int64
}

// Tracer records events into a fixed-capacity ring buffer. When the ring
// wraps, the oldest events are overwritten — the tracer never allocates
// after construction and never blocks the simulation. A nil *Tracer is the
// disabled state; the caller's nil check is the entire disabled-path cost.
type Tracer struct {
	ring  []Event
	pos   int
	total uint64

	// Observer, when non-nil, is invoked synchronously for every emitted
	// event (in addition to ring recording). It runs on the simulation
	// goroutine: keep it cheap.
	Observer func(Event)
}

// NewTracer returns a tracer with the given ring capacity (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, capacity)}
}

// Emit records one event.
func (t *Tracer) Emit(kind EventKind, cycle int64, pc uint64, arg int64) {
	t.ring[t.pos] = Event{Kind: kind, Cycle: cycle, PC: pc, Arg: arg}
	t.pos++
	if t.pos == len(t.ring) {
		t.pos = 0
	}
	t.total++
	if t.Observer != nil {
		t.Observer(Event{Kind: kind, Cycle: cycle, PC: pc, Arg: arg})
	}
}

// Total returns the number of events emitted over the run, including any
// overwritten by ring wrap-around.
func (t *Tracer) Total() uint64 { return t.total }

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	n := int(t.total)
	if n > len(t.ring) {
		n = len(t.ring)
	}
	out := make([]Event, 0, n)
	start := t.pos - n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// jsonlEvent is the JSONL wire form. PC is hex for readability; extra label
// fields ride alongside (workload, scheme) and are ignored by the decoder.
type jsonlEvent struct {
	Cycle int64  `json:"cycle"`
	Event string `json:"event"`
	PC    string `json:"pc,omitempty"`
	Arg   int64  `json:"arg"`
}

// WriteJSONL writes the retained events as one JSON object per line.
// labels, when non-empty, are appended to every line as extra string fields
// (e.g. workload/scheme identification for merged multi-run traces).
func (t *Tracer) WriteJSONL(w io.Writer, labels map[string]string) error {
	return WriteEventsJSONL(w, t.Events(), labels)
}

// WriteEventsJSONL writes events as JSONL with optional label fields.
func WriteEventsJSONL(w io.Writer, events []Event, labels map[string]string) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		m := map[string]any{
			"cycle": e.Cycle,
			"event": e.Kind.String(),
			"arg":   e.Arg,
		}
		if e.PC != 0 {
			m["pc"] = fmt.Sprintf("0x%x", e.PC)
		}
		for k, v := range labels {
			m[k] = v
		}
		b, err := json.Marshal(m)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeJSONL parses a JSONL event stream produced by WriteJSONL, ignoring
// any label fields. Unknown event names or malformed lines are errors.
func DecodeJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var je jsonlEvent
		if err := json.Unmarshal(raw, &je); err != nil {
			return nil, fmt.Errorf("jsonl line %d: %w", line, err)
		}
		kind, ok := eventKindByName(je.Event)
		if !ok {
			return nil, fmt.Errorf("jsonl line %d: unknown event %q", line, je.Event)
		}
		var pc uint64
		if je.PC != "" {
			if _, err := fmt.Sscanf(je.PC, "0x%x", &pc); err != nil {
				return nil, fmt.Errorf("jsonl line %d: bad pc %q: %w", line, je.PC, err)
			}
		}
		out = append(out, Event{Kind: kind, Cycle: je.Cycle, PC: pc, Arg: je.Arg})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteChromeTrace writes the retained events in Chrome trace_event JSON
// array format (load via chrome://tracing or Perfetto). Cycles map to
// microseconds 1:1. Repairs become duration ("X") events spanning their
// busy window; everything else becomes an instant ("i") event.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteEventsChromeTrace(w, t.Events())
}

// WriteEventsChromeTrace writes events in Chrome trace_event format.
func WriteEventsChromeTrace(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	for i, e := range events {
		var rec map[string]any
		args := map[string]any{"arg": e.Arg}
		if e.PC != 0 {
			args["pc"] = fmt.Sprintf("0x%x", e.PC)
		}
		if e.Kind == EvRepair && e.Arg > 0 {
			rec = map[string]any{
				"name": e.Kind.String(), "ph": "X",
				"ts": e.Cycle, "dur": e.Arg,
				"pid": 1, "tid": int(e.Kind) + 1, "args": args,
			}
		} else {
			rec = map[string]any{
				"name": e.Kind.String(), "ph": "i", "s": "t",
				"ts": e.Cycle,
				"pid": 1, "tid": int(e.Kind) + 1, "args": args,
			}
		}
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}
