package obs

import (
	"testing"
	"time"
)

// TestAccumulatorThreshold: commits fire only when the pending delta crosses
// the threshold, and carry the net delta, not the event count.
func TestAccumulatorThreshold(t *testing.T) {
	var commits []uint64
	a := NewAccumulator(100, 0, func(d uint64) { commits = append(commits, d) })

	for range 9 {
		a.Add(10) // 90 pending: below threshold
	}
	if len(commits) != 0 {
		t.Fatalf("committed below threshold: %v", commits)
	}
	a.Add(15) // 105 >= 100
	if len(commits) != 1 || commits[0] != 105 {
		t.Fatalf("threshold commit: %v, want [105]", commits)
	}
	if a.Pending() != 0 {
		t.Fatalf("pending %d after commit, want 0", a.Pending())
	}

	a.Add(7)
	a.Flush()
	if len(commits) != 2 || commits[1] != 7 {
		t.Fatalf("flush commit: %v, want tail 7", commits)
	}
	// Flushing with nothing pending must not emit a zero-delta commit.
	a.Flush()
	if len(commits) != 2 {
		t.Fatalf("empty flush committed: %v", commits)
	}
}

// TestAccumulatorZeroThreshold: threshold 0 degenerates to per-event commits.
func TestAccumulatorZeroThreshold(t *testing.T) {
	var commits []uint64
	a := NewAccumulator(0, 0, func(d uint64) { commits = append(commits, d) })
	a.Add(1)
	a.Add(2)
	if len(commits) != 2 || commits[0] != 1 || commits[1] != 2 {
		t.Fatalf("per-event commits: %v", commits)
	}
}

// TestAccumulatorInterval: the time trigger commits a sub-threshold batch
// once the interval elapses.
func TestAccumulatorInterval(t *testing.T) {
	var commits []uint64
	a := NewAccumulator(1 << 60, time.Millisecond, func(d uint64) { commits = append(commits, d) })
	a.Add(5)
	if len(commits) != 0 {
		t.Fatal("committed before the interval elapsed")
	}
	time.Sleep(5 * time.Millisecond)
	a.Add(3)
	if len(commits) != 1 || commits[0] != 8 {
		t.Fatalf("interval commit: %v, want [8]", commits)
	}
}
