package obs

import "time"

// Accumulator batches a high-rate monotonic counter into infrequent commits:
// deltas accumulate in a plain local field on the producing goroutine and are
// handed to the commit function only when the pending total crosses Threshold
// or Interval has elapsed since the last commit — a VSA-style deferred-commit
// discipline that keeps per-event cost at one add and one compare while the
// cross-thread work (atomics, locks, subscriber wakeups) happens thousands of
// events apart.
//
// An Accumulator belongs to exactly one producing goroutine; only the commit
// function needs to be safe for whatever the consumer side does with it.
type Accumulator struct {
	commit    func(delta uint64)
	threshold uint64
	interval  time.Duration
	pending   uint64
	last      time.Time // wall time of the previous commit
}

// NewAccumulator builds an accumulator that invokes commit with the net
// pending delta when it reaches threshold (0 means commit on every Add) or
// when interval has elapsed since the previous commit (0 disables the time
// trigger).
func NewAccumulator(threshold uint64, interval time.Duration, commit func(delta uint64)) *Accumulator {
	return &Accumulator{commit: commit, threshold: threshold, interval: interval, last: time.Now()}
}

// Add accumulates n and commits when a trigger fires. The fast path — below
// threshold, inside the interval — touches only local fields.
func (a *Accumulator) Add(n uint64) {
	a.pending += n
	if a.pending == 0 {
		return
	}
	if a.pending >= a.threshold {
		a.Flush()
		return
	}
	if a.interval > 0 && time.Since(a.last) >= a.interval {
		a.Flush()
	}
}

// Flush commits whatever is pending (a no-op when nothing is). Call it once
// after the producing loop finishes so the tail below the threshold is never
// lost.
func (a *Accumulator) Flush() {
	if a.pending > 0 {
		a.commit(a.pending)
		a.pending = 0
	}
	a.last = time.Now()
}

// Pending returns the uncommitted delta (tests and diagnostics).
func (a *Accumulator) Pending() uint64 { return a.pending }
