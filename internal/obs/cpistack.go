package obs

import (
	"fmt"
	"strings"
)

// CPIBucket identifies one slice of the CPI stack. Every core cycle is
// attributed to exactly one bucket; the auditor enforces that the bucket
// counts sum to the total cycle count (audit.InvCPIAccounting).
type CPIBucket uint8

// The CPI-stack taxonomy, in display order. Classification is a priority
// decision tree evaluated once per cycle (see core.classifyCycle and
// DESIGN.md §11):
//
//  1. retired-work: at least one instruction retired this cycle.
//  2. front-end-resteer: the ROB is empty and the front end is still
//     refilling after a resteer (mispredict flush, early resteer, or BTB
//     miss) — the classic misprediction penalty.
//  3. memory-bound: the ROB head is an in-flight load or store.
//  4. repair-busy: the repair scheme holds the BHT/checkpoint ports busy.
//  5. rob-full: allocation is blocked because the ROB is at capacity.
//  6. lsq-full: allocation is blocked on load/store-buffer occupancy.
//  7. alloc-stall: residual — nothing retired and no more specific cause
//     matched (e.g. a non-memory op still executing at the ROB head, or an
//     empty ROB with no pending resteer).
const (
	CPIRetired CPIBucket = iota
	CPIFrontendResteer
	CPIMemoryBound
	CPIRepairBusy
	CPIROBFull
	CPILSQFull
	CPIAllocStall
	NumCPIBuckets
)

var cpiNames = [NumCPIBuckets]string{
	CPIRetired:         "retired-work",
	CPIFrontendResteer: "front-end-resteer",
	CPIMemoryBound:     "memory-bound",
	CPIRepairBusy:      "repair-busy",
	CPIROBFull:         "rob-full",
	CPILSQFull:         "lsq-full",
	CPIAllocStall:      "alloc-stall",
}

// String returns the bucket's stable display name.
func (b CPIBucket) String() string {
	if b < NumCPIBuckets {
		return cpiNames[b]
	}
	return fmt.Sprintf("cpi-bucket-%d", uint8(b))
}

// CPIStack accumulates per-bucket cycle counts for one run.
type CPIStack struct {
	counts [NumCPIBuckets]int64
}

// NewCPIStack returns a zeroed stack.
func NewCPIStack() *CPIStack { return &CPIStack{} }

// Add attributes one cycle to bucket b.
func (s *CPIStack) Add(b CPIBucket) { s.counts[b]++ }

// AddN attributes n cycles to bucket b in one step. The core's idle-cycle
// fast-forward uses it to account a whole skipped window at once; the
// attribution is exact because the fast-forward clamps the window so the
// classification cannot change inside it.
func (s *CPIStack) AddN(b CPIBucket, n int64) { s.counts[b] += n }

// Count returns the cycles attributed to bucket b.
func (s *CPIStack) Count(b CPIBucket) int64 { return s.counts[b] }

// Total returns the sum over all buckets; the auditor checks it against the
// core's cycle count.
func (s *CPIStack) Total() int64 {
	var t int64
	for _, c := range s.counts {
		t += c
	}
	return t
}

// Fraction returns bucket b's share of the total (0 with no cycles).
func (s *CPIStack) Fraction(b CPIBucket) float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(s.counts[b]) / float64(t)
}

// Buckets calls fn for each bucket in display order.
func (s *CPIStack) Buckets(fn func(b CPIBucket, cycles int64)) {
	for b := CPIBucket(0); b < NumCPIBuckets; b++ {
		fn(b, s.counts[b])
	}
}

// String renders the stack as an aligned table with percentages.
func (s *CPIStack) String() string {
	var b strings.Builder
	t := s.Total()
	for i := CPIBucket(0); i < NumCPIBuckets; i++ {
		fmt.Fprintf(&b, "  %-18s %12d  %5.1f%%\n", cpiNames[i], s.counts[i], 100*s.Fraction(i))
	}
	fmt.Fprintf(&b, "  %-18s %12d\n", "total", t)
	return b.String()
}

// CPIBucketNames returns the display names in bucket order.
func CPIBucketNames() []string {
	out := make([]string, NumCPIBuckets)
	for i := range out {
		out[i] = cpiNames[i]
	}
	return out
}
