// Package obs is the simulator's observability layer: a zero-allocation
// counter/histogram registry the subsystems (core, mem, obq, repair) register
// into, CPI-stack cycle accounting that attributes every core cycle to
// exactly one bottleneck bucket, and an opt-in structured event tracer backed
// by a fixed ring buffer.
//
// Design rules (DESIGN.md §11):
//
//   - Disabled observability costs at most one nil-check branch per hook
//     site and zero allocations. Every obs pointer in a hot structure is nil
//     by default; nothing in this package is reached unless a caller opts in.
//   - Counters are pull-based: subsystems keep their native uint64 statistics
//     (already free) and register an emitter function; the registry reads
//     them only at Snapshot time. Histograms and the tracer are push-based
//     but allocation-free after construction.
//   - One registry/CPI-stack/tracer instance belongs to exactly one
//     simulation run (one goroutine). Cross-run aggregation happens outside,
//     after the run completes, which is what keeps the parallel sweep Runner
//     race-clean without hot-path atomics.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counter is a named monotonic counter. Increment via the pointer returned
// by Registry.Counter; reads happen at snapshot time.
type Counter struct {
	name string
	v    uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Histogram is a fixed-bucket histogram: bounds are inclusive upper bounds
// with an implicit +Inf bucket at the end. Observe is allocation-free (a
// linear scan over a handful of buckets).
type Histogram struct {
	name   string
	bounds []int64
	counts []uint64
	sum    int64
	n      uint64
	max    int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
	if v > h.max {
		h.max = v
	}
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Count returns the total number of samples.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the mean sample value (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest observed sample.
func (h *Histogram) Max() int64 { return h.max }

// Buckets calls fn for each bucket with its inclusive upper bound (the last
// call has bound -1, meaning +Inf) and count.
func (h *Histogram) Buckets(fn func(upper int64, count uint64)) {
	for i, c := range h.counts {
		if i < len(h.bounds) {
			fn(h.bounds[i], c)
		} else {
			fn(-1, c)
		}
	}
}

// String renders a compact one-line summary.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: n=%d mean=%.1f max=%d [", h.name, h.n, h.Mean(), h.max)
	for i, c := range h.counts {
		if i > 0 {
			b.WriteByte(' ')
		}
		if i < len(h.bounds) {
			fmt.Fprintf(&b, "≤%d:%d", h.bounds[i], c)
		} else {
			fmt.Fprintf(&b, ">:%d", c)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// source is one pull-based counter emitter.
type source struct {
	prefix string
	fn     func(emit func(name string, v uint64))
}

// Registry is the per-run counter/histogram namespace. Registration and
// snapshotting take a mutex; incrementing a *Counter or observing into a
// *Histogram does not (one run = one goroutine owns the hot path).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	order    []string
	hists    map[string]*Histogram
	horder   []string
	sources  []source
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		hists:    map[string]*Histogram{},
	}
}

// Counter finds or creates the named counter and returns a stable pointer
// for hot-path increments.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	r.order = append(r.order, name)
	return c
}

// Histogram finds or creates the named histogram with the given bucket upper
// bounds (ascending). Bounds are ignored when the name already exists.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	h := &Histogram{name: name, bounds: b, counts: make([]uint64, len(b)+1)}
	r.hists[name] = h
	r.horder = append(r.horder, name)
	return h
}

// AddSource registers a pull-based counter emitter. At Snapshot time fn is
// invoked and every emitted name is prefixed with "prefix." — subsystems keep
// their native statistics and pay nothing until a snapshot is taken.
func (r *Registry) AddSource(prefix string, fn func(emit func(name string, v uint64))) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sources = append(r.sources, source{prefix: prefix, fn: fn})
}

// Snapshot materializes every counter — explicit and source-emitted — into a
// fresh map. Safe to call from another goroutine only after the owning run
// has finished.
func (r *Registry) Snapshot() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counters)+4*len(r.sources))
	for name, c := range r.counters {
		out[name] = c.v
	}
	for _, s := range r.sources {
		s.fn(func(name string, v uint64) { out[s.prefix+"."+name] = v })
	}
	return out
}

// Histograms returns the registered histograms in registration order.
func (r *Registry) Histograms() []*Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Histogram, 0, len(r.horder))
	for _, name := range r.horder {
		out = append(out, r.hists[name])
	}
	return out
}

// FormatSnapshot renders a snapshot as sorted "name value" lines (CLIs).
func FormatSnapshot(snap map[string]uint64) string {
	names := make([]string, 0, len(snap))
	w := 0
	for n := range snap {
		names = append(names, n)
		if len(n) > w {
			w = len(n)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "  %-*s %12d\n", w, n, snap[n])
	}
	return b.String()
}

// Hooks bundles the per-run observability instruments. A nil *Hooks (or any
// nil field) means that instrument is disabled; subsystems must check before
// touching it — that check is the entire disabled-path cost.
type Hooks struct {
	Reg    *Registry
	CPI    *CPIStack
	Tracer *Tracer
}

// MemLatencyBuckets are the default bounds for the memory-latency histogram:
// L1/L2/LLC/DRAM-class latencies on the Table 2 hierarchy.
var MemLatencyBuckets = []int64{5, 20, 60, 120, 250}

// RepairBuckets are the default bounds for the repair busy-duration
// histogram (cycles the BHT is unavailable per repair).
var RepairBuckets = []int64{1, 2, 4, 8, 16, 32}
