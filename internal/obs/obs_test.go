package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestRegistryCountersAndSources(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("flushes")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter value: got %d, want 5", got)
	}
	if r.Counter("flushes") != c {
		t.Fatal("Counter must return a stable pointer for the same name")
	}
	native := uint64(17)
	r.AddSource("mem", func(emit func(string, uint64)) {
		emit("accesses", native)
	})
	native = 42 // pull model: the snapshot reads the live value
	snap := r.Snapshot()
	want := map[string]uint64{"flushes": 5, "mem.accesses": 42}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("snapshot: got %v, want %v", snap, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{5, 20, 60})
	for _, v := range []int64{3, 5, 6, 20, 21, 60, 61, 1000} {
		h.Observe(v)
	}
	var counts []uint64
	var uppers []int64
	h.Buckets(func(u int64, c uint64) {
		uppers = append(uppers, u)
		counts = append(counts, c)
	})
	if !reflect.DeepEqual(uppers, []int64{5, 20, 60, -1}) {
		t.Fatalf("bucket bounds: got %v", uppers)
	}
	// ≤5: {3,5}; ≤20: {6,20}; ≤60: {21,60}; >60: {61,1000}
	if !reflect.DeepEqual(counts, []uint64{2, 2, 2, 2}) {
		t.Fatalf("bucket counts: got %v", counts)
	}
	if h.Count() != 8 || h.Max() != 1000 {
		t.Fatalf("count/max: got %d/%d", h.Count(), h.Max())
	}
	if r.Histogram("lat", nil) != h {
		t.Fatal("Histogram must return a stable pointer for the same name")
	}
	hs := r.Histograms()
	if len(hs) != 1 || hs[0] != h {
		t.Fatalf("Histograms: got %v", hs)
	}
}

func TestHistogramZeroAlloc(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", MemLatencyBuckets)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(37) })
	if allocs != 0 {
		t.Fatalf("Histogram.Observe allocates: %.1f allocs/op", allocs)
	}
	c := r.Counter("x")
	allocs = testing.AllocsPerRun(1000, func() { c.Inc() })
	if allocs != 0 {
		t.Fatalf("Counter.Inc allocates: %.1f allocs/op", allocs)
	}
}

func TestCPIStackAccounting(t *testing.T) {
	s := NewCPIStack()
	s.Add(CPIRetired)
	s.Add(CPIRetired)
	s.Add(CPIFrontendResteer)
	s.Add(CPIMemoryBound)
	if s.Total() != 4 {
		t.Fatalf("total: got %d, want 4", s.Total())
	}
	if s.Count(CPIRetired) != 2 {
		t.Fatalf("retired: got %d, want 2", s.Count(CPIRetired))
	}
	if f := s.Fraction(CPIRetired); f != 0.5 {
		t.Fatalf("fraction: got %v, want 0.5", f)
	}
	var sum int64
	s.Buckets(func(b CPIBucket, c int64) { sum += c })
	if sum != s.Total() {
		t.Fatalf("Buckets sum %d != Total %d", sum, s.Total())
	}
	out := s.String()
	for _, name := range CPIBucketNames() {
		if !strings.Contains(out, name) {
			t.Fatalf("String() missing bucket %q:\n%s", name, out)
		}
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(EvMispredict, int64(i), uint64(0x100+i), int64(i))
	}
	if tr.Total() != 10 {
		t.Fatalf("total: got %d, want 10", tr.Total())
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained: got %d, want 4", len(ev))
	}
	for i, e := range ev {
		if e.Cycle != int64(6+i) {
			t.Fatalf("event %d: cycle %d, want %d (oldest-first after wrap)", i, e.Cycle, 6+i)
		}
	}
}

func TestTracerObserver(t *testing.T) {
	tr := NewTracer(2)
	var seen []Event
	tr.Observer = func(e Event) { seen = append(seen, e) }
	tr.Emit(EvRepair, 7, 0x40, 3)
	if len(seen) != 1 || seen[0] != (Event{Kind: EvRepair, Cycle: 7, PC: 0x40, Arg: 3}) {
		t.Fatalf("observer saw %v", seen)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(EvMispredict, 100, 0x4001, 42)
	tr.Emit(EvRepair, 105, 0x4001, 6)
	tr.Emit(EvOBQCoalesce, 110, 0x5000, 3)
	tr.Emit(EvPrefetchHit, 120, 0, 2)
	tr.Emit(EvEarlyResteer, 130, 0x4002, 0)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf, map[string]string{"workload": "wl", "scheme": "fw"}); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr.Events()) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, tr.Events())
	}
}

func TestDecodeJSONLRejectsUnknownEvent(t *testing.T) {
	_, err := DecodeJSONL(strings.NewReader(`{"cycle":1,"event":"bogus","arg":0}` + "\n"))
	if err == nil {
		t.Fatal("expected error for unknown event name")
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit(EvRepair, 10, 0x40, 5)
	tr.Emit(EvMispredict, 12, 0x44, 1)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var recs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(recs) != 2 {
		t.Fatalf("records: got %d, want 2", len(recs))
	}
	if recs[0]["ph"] != "X" || recs[0]["dur"] != float64(5) {
		t.Fatalf("repair record: got %v, want X-phase with dur 5", recs[0])
	}
	if recs[1]["ph"] != "i" {
		t.Fatalf("mispredict record: got %v, want instant", recs[1])
	}
}

func TestFormatSnapshot(t *testing.T) {
	out := FormatSnapshot(map[string]uint64{"b": 2, "a": 1})
	ia, ib := strings.Index(out, "a"), strings.Index(out, "b")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("snapshot not sorted:\n%s", out)
	}
}
