module localbp

go 1.22
