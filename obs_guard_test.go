package localbp

import (
	"math"
	"testing"

	"localbp/internal/trace"
)

// TestObsAllocGuard pins the observability layer's allocation contract:
// its cost is a fixed per-run setup (registry maps, tracer ring, histogram
// buckets), never per-cycle or per-event work. The guard measures the
// allocation delta between an obs-enabled and an obs-disabled simulation at
// two trace lengths; if any hot-path code allocated per cycle or per event,
// the delta would grow with the trace. The tracer ring capacity (512) is
// far below either run's event count, so the retained-event copy is the
// same size at both lengths.
func TestObsAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run allocation measurement")
	}
	w, ok := Workload("cloud-compression")
	if !ok {
		t.Fatal("workload missing")
	}
	obsOpts := []Option{WithCPIStack(), WithCounters(), WithEventTrace(512)}
	allocs := func(tr []trace.Inst, opts ...Option) float64 {
		return testing.AllocsPerRun(1, func() {
			if _, err := SimulateTrace(tr, ForwardWalk(), opts...); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := w.Generate(30_000)
	long := w.Generate(60_000)
	dShort := allocs(short, obsOpts...) - allocs(short)
	dLong := allocs(long, obsOpts...) - allocs(long)
	// The two deltas must be the same fixed setup cost; a handful of slack
	// covers incidental map-bucket splits from differing counter values.
	if diff := math.Abs(dLong - dShort); diff > 8 {
		t.Fatalf("obs allocation overhead scales with trace length: +%.0f allocs at 30k insts, +%.0f at 60k (delta %.0f)",
			dShort, dLong, diff)
	}
	if dShort < 0 {
		t.Fatalf("obs-enabled run allocated less than disabled (%.0f): measurement broken", dShort)
	}
}
