package localbp

import (
	"testing"

	"localbp/internal/trace"
)

// TestCoreLoopAllocGuard pins the hot-path allocation contract after the
// zero-alloc overhaul: a simulation's allocations are a fixed per-run setup
// (predictor tables, ROB/queue arrays, the pre-sized branch-record pool),
// never per-instruction, per-branch or per-cycle work. Two guards enforce
// it:
//
//  1. scaling — doubling the trace length must not grow the allocation
//     count (the pre-overhaul loop boxed every branch resolution through
//     the heap interface, which this catches immediately);
//  2. budget — the absolute per-run count stays within the known setup
//     cost, so steady-state allocations cannot hide behind a shrinking
//     setup elsewhere.
func TestCoreLoopAllocGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run allocation measurement")
	}
	w, ok := Workload("cloud-compression")
	if !ok {
		t.Fatal("workload missing")
	}
	allocs := func(tr []trace.Inst, opts ...Option) float64 {
		return testing.AllocsPerRun(1, func() {
			if _, err := SimulateTrace(tr, ForwardWalk(), opts...); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := w.Generate(30_000)
	long := w.Generate(60_000)
	// Both stepping configurations must honor the contract: the default path
	// (block memo + fast-forward live) and the plain loop with the memo off.
	// The memo itself is a fixed-size table allocated at setup — hits, misses
	// and stores must all be allocation-free.
	for _, m := range []struct {
		name string
		opts []Option
	}{
		{"memoized", nil},
		{"memo-off", []Option{WithoutBlockMemo()}},
	} {
		aShort := allocs(short, m.opts...)
		aLong := allocs(long, m.opts...)
		// A handful of slack covers incidental runtime-internal allocations;
		// any per-branch or per-cycle allocation would add thousands.
		if aLong > aShort+64 {
			t.Fatalf("%s: core-loop allocations scale with trace length: %.0f at 30k insts, %.0f at 60k",
				m.name, aShort, aLong)
		}
		// Known setup cost is ~2.7k allocations (predictor tables, caches,
		// arenas). 4096 catches any return of per-branch allocation (which
		// sat at ~20k for 120k insts) while tolerating moderate setup growth.
		if aShort > 4096 {
			t.Fatalf("%s: per-run setup allocations %.0f exceed the 4096 budget", m.name, aShort)
		}
	}
}
