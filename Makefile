GO ?= go

.PHONY: check build vet test race audit bench-json fuzz-smoke

# check is the CI gate: static analysis plus the full suite under the race
# detector (the parallel sweep runner is on by default).
check: vet race

build:
	$(GO) build ./...

# vet also runs the observability allocation guard: the delta between an
# obs-enabled and obs-disabled run must be a fixed setup cost, never
# per-cycle or per-event allocations.
vet:
	$(GO) vet ./...
	$(GO) test -run TestObsAllocGuard -count=1 .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# audit reruns the full suite with the integrity auditor and golden-model
# oracle forced on for every simulation (LBP_AUDIT=1): every retirement is
# cross-checked against the in-order model and every invariant is live.
audit:
	LBP_AUDIT=1 $(GO) test ./...

# bench-json regenerates the machine-readable throughput baseline
# (BENCH_baseline.json): ns/op, ns/inst, ns/cycle, allocs/op and B/op for
# the obs-disabled and obs-enabled core loop.
bench-json:
	$(GO) run ./cmd/lbpbench -out BENCH_baseline.json

# fuzz-smoke gives each native fuzz target a short budget; failures minimize
# into testdata/fuzz corpora as usual.
fuzz-smoke:
	$(GO) test -fuzz=FuzzLoopPredictor -fuzztime=10s ./internal/bpu/loop
	$(GO) test -fuzz=FuzzTAGE -fuzztime=10s ./internal/bpu/tage
