GO ?= go

.PHONY: check build vet test race audit fuzz-smoke

# check is the CI gate: static analysis plus the full suite under the race
# detector (the parallel sweep runner is on by default).
check: vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# audit reruns the full suite with the integrity auditor and golden-model
# oracle forced on for every simulation (LBP_AUDIT=1): every retirement is
# cross-checked against the in-order model and every invariant is live.
audit:
	LBP_AUDIT=1 $(GO) test ./...

# fuzz-smoke gives each native fuzz target a short budget; failures minimize
# into testdata/fuzz corpora as usual.
fuzz-smoke:
	$(GO) test -fuzz=FuzzLoopPredictor -fuzztime=10s ./internal/bpu/loop
	$(GO) test -fuzz=FuzzTAGE -fuzztime=10s ./internal/bpu/tage
