GO ?= go

.PHONY: check build vet test race

# check is the CI gate: static analysis plus the full suite under the race
# detector (the parallel sweep runner is on by default).
check: vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
