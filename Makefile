GO ?= go

.PHONY: check build vet test race audit bench-json bench-pr5 bench-pr10 bench-smoke bench-compare fuzz-smoke daemon-smoke shard-smoke trace-smoke ci stress

# check is the CI gate: static analysis plus the full suite under the race
# detector (the parallel sweep runner is on by default).
check: vet race

build:
	$(GO) build ./...

# vet also runs the allocation guards: the obs layer's cost must be a fixed
# setup delta, and the core loop's allocations must be per-run setup only —
# never per-cycle, per-branch or per-event work. staticcheck and govulncheck
# run when installed (the build must not require fetching them); install
# locally for the full gate.
vet:
	$(GO) vet ./...
	$(GO) test -run 'TestObsAllocGuard|TestCoreLoopAllocGuard' -count=1 .
	$(GO) test -race -count=1 ./internal/shard
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "vet: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "vet: govulncheck not installed, skipping"; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# audit reruns the full suite with the integrity auditor and golden-model
# oracle forced on for every simulation (LBP_AUDIT=1): every retirement is
# cross-checked against the in-order model and every invariant is live.
audit:
	LBP_AUDIT=1 $(GO) test ./...

# bench-json regenerates the machine-readable, timestamped throughput
# baseline (BENCH_baseline.json): ns/op, ns/inst, ns/cycle, allocs/op and
# B/op for the obs-disabled and obs-enabled core loop.
bench-json:
	$(GO) run ./cmd/lbpbench -out BENCH_baseline.json

# bench-pr5 snapshots the current tree's numbers as the PR-5 point of the
# performance trajectory (compare against BENCH_baseline.json).
bench-pr5:
	$(GO) run ./cmd/lbpbench -out BENCH_pr5.json

# bench-pr10 snapshots the current tree's numbers as the PR-10 point of the
# performance trajectory (compare against BENCH_pr5.json).
bench-pr10:
	$(GO) run ./cmd/lbpbench -out BENCH_pr10.json

# bench-smoke is the fast benchmark-path sanity gate (< 10 s): one in-memory
# core-loop run and one LBP2 file-backed core-loop-stream run of the same
# short trace must succeed, agree exactly (the two paths are bit-identical by
# contract), and stay within the allocation budget. It gates "the benchmark
# paths still work", not performance.
bench-smoke:
	$(GO) run ./cmd/lbpbench -smoke -insts 30000

# bench-compare gates the trajectory: exits non-zero when NEW regressed
# ns/op or allocs/op against OLD by more than 10% (a toolchain mismatch
# between the two files warns but does not fail).
OLD ?= BENCH_pr5.json
NEW ?= BENCH_pr10.json
bench-compare:
	$(GO) run ./cmd/lbpbench -compare -old $(OLD) -new $(NEW)

# fuzz-smoke gives each native fuzz target a short budget; failures minimize
# into testdata/fuzz corpora as usual.
fuzz-smoke:
	$(GO) test -fuzz=FuzzLoopPredictor -fuzztime=10s ./internal/bpu/loop
	$(GO) test -fuzz=FuzzTAGE -fuzztime=10s ./internal/bpu/tage
	$(GO) test -fuzz='FuzzReadTraceLBP2$$' -fuzztime=10s ./internal/trace

# ci is the one-command pipeline: build, static analysis + alloc guards, the
# full suite under the race detector, a fuzz smoke, and a quick
# bench-compare exercise: fresh numbers are measured and run through the
# regression gate end-to-end (self-compare — cross-machine ns/op gating
# belongs in `make bench-compare` against a locally pinned baseline).
# daemon-smoke is the end-to-end lbpd check (< 30 s): build the real binary,
# submit a job, stream progress over SSE, SIGKILL it mid-run, restart on the
# same journal, verify exactly-once completion + cache hit + clean drain.
daemon-smoke:
	$(GO) test -run TestDaemonSmoke -count=1 -v ./cmd/lbpd

# shard-smoke is the end-to-end sharded-sweep check (< 60 s): a 3-worker
# quick sweep with one worker SIGKILLed mid-shard, its lease expired and the
# shard reassigned, then `-merge` verified bit-identical to a single-process
# sweep of the same experiments — zero lost, zero duplicated results.
shard-smoke:
	$(GO) test -run 'TestShardSweepChaosKillBitIdentical|TestShardWorkerLeaseHeld' -count=1 -v ./cmd/lbpsweep

# trace-smoke is the end-to-end trace-pipeline check (< 30 s): build the real
# lbptrace and lbpsim binaries, generate an LBP2 trace, convert it
# LBP2 -> LBP1 -> LBP2 (byte-identical round trip), and replay both formats
# bit-identically to in-process generation.
trace-smoke:
	$(GO) test -run TestTraceSmoke -count=1 -v ./cmd/lbptrace

ci: build vet race bench-smoke daemon-smoke shard-smoke trace-smoke fuzz-smoke
	$(GO) run ./cmd/lbpbench -insts 60000 -out BENCH_ci.json
	$(GO) run ./cmd/lbpbench -compare -old BENCH_ci.json -new BENCH_ci.json
	rm -f BENCH_ci.json

# stress loops the crash-safety subprocess suites under the race detector:
# interrupt a live sweep (checkpoint resume, zero lost/duplicated results),
# chaos-test the daemon (SIGKILL restarts over the journal, queue floods
# answered with 429s, mid-stream SSE disconnects), and chaos-test the
# sharded fleet (worker SIGKILL + lease reassignment; coordinator SIGKILL
# with orphaned workers). N controls the iteration count.
N ?= 5
stress:
	$(GO) test -race -run TestSweepSIGINTResume -count=$(N) -v ./cmd/lbpsweep
	$(GO) test -race -run TestDaemonChaos -count=$(N) -timeout 60m -v ./internal/daemonchaos
	$(GO) test -race -run 'TestShardSweepChaosKillBitIdentical|TestShardFleetCoordinatorCrash' -count=$(N) -timeout 60m -v ./cmd/lbpsweep ./internal/daemonchaos
