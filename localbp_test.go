package localbp

import "testing"

func TestWorkloadLookup(t *testing.T) {
	w, ok := Workload("cloud-compression")
	if !ok || w.Name != "cloud-compression" {
		t.Fatal("named workload missing")
	}
	if _, ok := Workload("bogus"); ok {
		t.Fatal("found a nonexistent workload")
	}
}

func TestSuitesExposed(t *testing.T) {
	if len(Workloads()) != 202 {
		t.Fatalf("full suite %d, want 202", len(Workloads()))
	}
	if q := len(QuickWorkloads()); q == 0 || q >= 202 {
		t.Fatalf("quick suite size %d", q)
	}
}

func TestSimulateBaselineVsPerfect(t *testing.T) {
	w, _ := Workload("cloud-compression")
	base := Simulate(w, 120_000, BaselineTAGE())
	perf := Simulate(w, 120_000, PerfectRepair())
	if base.Insts != 120_000 || perf.Insts != 120_000 {
		t.Fatal("instruction counts wrong")
	}
	if perf.MPKI >= base.MPKI {
		t.Fatalf("perfect repair did not reduce MPKI on the loopiest workload: %.2f -> %.2f",
			base.MPKI, perf.MPKI)
	}
	if perf.Overrides == 0 {
		t.Fatal("no overrides recorded")
	}
	if base.Scheme != "tage" || perf.Scheme != "perfect" {
		t.Fatal("scheme labels wrong")
	}
}

func TestSchemeOptionLabels(t *testing.T) {
	opts := []SchemeOption{
		BaselineTAGE(), PerfectRepair(), NoRepair(), RetireUpdate(),
		BackwardWalk(), ForwardWalk(), MultiStage(), LimitedPC(4), GenericLocal(),
	}
	seen := map[string]bool{}
	for _, o := range opts {
		if o.Label() == "" || seen[o.Label()] {
			t.Fatalf("bad or duplicate label %q", o.Label())
		}
		seen[o.Label()] = true
	}
}

func TestSimulateTraceSharesTrace(t *testing.T) {
	w, _ := Workload("tabletmark-email")
	tr := w.Generate(60_000)
	a := SimulateTrace(tr, ForwardWalk())
	b := SimulateTrace(tr, ForwardWalk())
	if a != b {
		t.Fatalf("same trace and scheme diverged:\n%+v\n%+v", a, b)
	}
}
