package localbp

import (
	"strings"
	"testing"
)

func TestWorkloadLookup(t *testing.T) {
	w, ok := Workload("cloud-compression")
	if !ok || w.Name != "cloud-compression" {
		t.Fatal("named workload missing")
	}
	if _, ok := Workload("bogus"); ok {
		t.Fatal("found a nonexistent workload")
	}
}

func TestSuitesExposed(t *testing.T) {
	if len(Workloads()) != 202 {
		t.Fatalf("full suite %d, want 202", len(Workloads()))
	}
	if q := len(QuickWorkloads()); q == 0 || q >= 202 {
		t.Fatalf("quick suite size %d", q)
	}
}

func TestSimulateBaselineVsPerfect(t *testing.T) {
	w, _ := Workload("cloud-compression")
	base, err := Simulate(w, 120_000, BaselineTAGE())
	if err != nil {
		t.Fatal(err)
	}
	perf, err := Simulate(w, 120_000, PerfectRepair())
	if err != nil {
		t.Fatal(err)
	}
	if base.Insts != 120_000 || perf.Insts != 120_000 {
		t.Fatal("instruction counts wrong")
	}
	if perf.MPKI >= base.MPKI {
		t.Fatalf("perfect repair did not reduce MPKI on the loopiest workload: %.2f -> %.2f",
			base.MPKI, perf.MPKI)
	}
	if perf.Overrides == 0 {
		t.Fatal("no overrides recorded")
	}
	if base.Scheme != "tage" || perf.Scheme != "perfect" {
		t.Fatal("scheme labels wrong")
	}
}

func TestSchemeLabels(t *testing.T) {
	opts := []Scheme{
		BaselineTAGE(), PerfectRepair(), NoRepair(), RetireUpdate(),
		SnapshotQueue(), BackwardWalk(), ForwardWalk(), MultiStage(),
		LimitedPC(4), GenericLocal(),
	}
	seen := map[string]bool{}
	for _, o := range opts {
		if o.Label() == "" || seen[o.Label()] {
			t.Fatalf("bad or duplicate label %q", o.Label())
		}
		seen[o.Label()] = true
	}
	// The deprecated alias must keep compiling against the new interface.
	var dep SchemeOption = ForwardWalk()
	if dep.Label() != "forward-walk" {
		t.Fatalf("alias label %q", dep.Label())
	}
}

func TestSchemeByName(t *testing.T) {
	for _, name := range SchemeNames() {
		s, err := SchemeByName(name)
		if err != nil {
			t.Fatalf("registry name %q failed: %v", name, err)
		}
		if s.Label() != name {
			t.Fatalf("label %q for registry name %q", s.Label(), name)
		}
	}
	// Aliases resolve to the canonical entry.
	s, err := SchemeByName("forward-walk")
	if err != nil || s.Label() != "forward-coalesce" {
		t.Fatalf("alias resolution: %v, label %q", err, s.Label())
	}
	if _, err := SchemeByName("bogus"); err == nil {
		t.Fatal("unknown scheme name accepted")
	} else if !strings.Contains(err.Error(), "valid:") {
		t.Fatalf("error does not list valid names: %v", err)
	}
}

func TestSimulateTraceSharesTrace(t *testing.T) {
	w, _ := Workload("tabletmark-email")
	tr := w.Generate(60_000)
	a, err := SimulateTrace(tr, ForwardWalk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateTrace(tr, ForwardWalk())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Insts != b.Insts || a.Mispredicts != b.Mispredicts ||
		a.IPC != b.IPC || a.MPKI != b.MPKI || a.Overrides != b.Overrides {
		t.Fatalf("same trace and scheme diverged:\n%+v\n%+v", a, b)
	}
}

func TestSimulateNilSchemeAndBadCount(t *testing.T) {
	w, _ := Workload("cloud-compression")
	if _, err := Simulate(w, 0, BaselineTAGE()); err == nil {
		t.Fatal("zero instruction count accepted")
	}
	if _, err := SimulateTrace(w.Generate(1000), nil); err == nil {
		t.Fatal("nil scheme accepted")
	}
}

func TestWithSeedChangesTrace(t *testing.T) {
	w, _ := Workload("cloud-compression")
	a, err := Simulate(w, 60_000, ForwardWalk(), WithAudit())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(w, 60_000, ForwardWalk(), WithSeed(12345))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles == b.Cycles && a.Mispredicts == b.Mispredicts {
		t.Fatal("seed override did not change the generated trace")
	}
}

func TestSimulateObservability(t *testing.T) {
	w, _ := Workload("cloud-compression")
	var streamed int
	res, err := Simulate(w, 80_000, ForwardWalk(),
		WithAudit(), WithGolden(), WithCPIStack(), WithCounters(),
		WithEventTrace(256), WithObserver(func(Event) { streamed++ }))
	if err != nil {
		t.Fatal(err)
	}
	if res.CPI == nil {
		t.Fatal("WithCPIStack produced no CPI stack")
	}
	if res.CPI.Total() != res.Cycles {
		t.Fatalf("CPI stack attributed %d cycles, run took %d", res.CPI.Total(), res.Cycles)
	}
	if res.CPI.Count(CPIRetired) == 0 {
		t.Fatal("no retired-work cycles attributed")
	}
	if res.Counters == nil {
		t.Fatal("WithCounters produced no snapshot")
	}
	for _, key := range []string{"core.cycles", "core.insts", "mem.accesses", "repair.repairs", "obq.allocs"} {
		if _, ok := res.Counters[key]; !ok {
			t.Fatalf("counter %q missing from snapshot (have %d keys)", key, len(res.Counters))
		}
	}
	if res.Counters["core.insts"] != res.Insts {
		t.Fatalf("counter core.insts=%d, result %d", res.Counters["core.insts"], res.Insts)
	}
	if len(res.Events) == 0 || len(res.Events) > 256 {
		t.Fatalf("event trace retained %d events, want 1..256", len(res.Events))
	}
	if streamed == 0 {
		t.Fatal("observer saw no events")
	}
	sawMisp := false
	for _, e := range res.Events {
		if e.Kind == EvMispredict {
			sawMisp = true
			break
		}
	}
	if !sawMisp && res.Mispredicts > 0 {
		t.Fatal("mispredictions occurred but none retained in the event window")
	}

	// A bare run keeps the observability fields nil.
	bare, err := Simulate(w, 60_000, ForwardWalk())
	if err != nil {
		t.Fatal(err)
	}
	if bare.CPI != nil || bare.Counters != nil || bare.Events != nil {
		t.Fatal("observability fields set without opt-in")
	}
}

func TestSchemeOptions(t *testing.T) {
	w, _ := Workload("cloud-compression")
	small, err := Simulate(w, 60_000, ForwardWalk(WithOBQEntries(4), WithPorts(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Simulate(w, 60_000, ForwardWalk())
	if err != nil {
		t.Fatal(err)
	}
	if small.Cycles <= big.Cycles {
		t.Fatalf("starved repair (4-entry OBQ, 1/1 ports) not slower: %d vs %d cycles",
			small.Cycles, big.Cycles)
	}
}

func TestMustShims(t *testing.T) {
	w, _ := Workload("cloud-compression")
	res := MustSimulate(w, 30_000, BaselineTAGE())
	if res.Insts != 30_000 {
		t.Fatalf("MustSimulate retired %d", res.Insts)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustSimulateTrace did not panic on error")
		}
	}()
	MustSimulateTrace(w.Generate(1000), nil)
}
