// Command lbpsim simulates one workload under one configuration and prints
// detailed statistics: IPC, MPKI, override accuracy, repair activity, cache
// behaviour — plus, on request, the run's CPI stack, the full counter
// registry, and a structured event trace.
//
// Usage:
//
//	lbpsim [-insts N] [-workload name | -trace-file file] [-scheme name] [-seed N] [-timeout D]
//	       [-loop 64|128|256] [-tage 8|9|57]
//	       [-audit] [-oracle] [-inject kinds] [-inject-seed N] [-inject-every N]
//	       [-cpistack] [-counters] [-trace-events file] [-trace-chrome file]
//
// Scheme names come from the shared registry (internal/schemes); run with
// an unknown name to list them.
//
// -audit enables the integrity auditor (read-only invariant checks; the
// first violation aborts with a structured report). -oracle cross-checks
// every retirement against a timing-free in-order execution of the trace
// (the golden-model differential oracle; distinct from `-scheme oracle`,
// the never-mispredicting local predictor). -inject enables deterministic
// fault injection: a comma-separated kind list or "all" (see
// internal/faultinject).
//
// -trace-file replays a saved trace (lbp1, lbp2 or champsim; see lbptrace
// -convert) through the streaming ingestion path at fixed memory instead of
// generating -workload; -insts, when given explicitly, truncates the replay.
//
// -cpistack attributes every core cycle to one CPI-stack bucket and prints
// the breakdown (the attribution is audited: buckets must sum to total
// cycles). -counters prints the full counter-registry snapshot.
// -trace-events writes the retained trace events as JSONL; -trace-chrome
// writes them in Chrome trace_event format (load in chrome://tracing or
// Perfetto). -trace-cap bounds the retained-event ring.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"localbp/internal/audit"
	"localbp/internal/bpu"
	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/core"
	"localbp/internal/faultinject"
	"localbp/internal/obs"
	"localbp/internal/repair"
	"localbp/internal/schemes"
	"localbp/internal/service"
	"localbp/internal/trace"
	"localbp/internal/workloads"
)

func main() {
	insts := flag.Int("insts", 500_000, "instructions to simulate")
	name := flag.String("workload", "cloud-compression", "workload name (see lbptrace -list)")
	schemeName := flag.String("scheme", "forward", "scheme to simulate (see internal/schemes)")
	seed := flag.Int64("seed", 0, "override the workload's trace-generation seed (0 = workload default)")
	loopSize := flag.Int("loop", 128, "CBPw-Loop entries (64, 128 or 256)")
	tageKB := flag.Int("tage", 8, "TAGE baseline size class (8, 9 or 57)")
	maxCycles := flag.Int64("maxcycles", 0, "abort if the run exceeds this many cycles (0 = automatic budget)")
	stallCycles := flag.Int64("stall", 0, "abort if no instruction retires for this many cycles (0 = default deadman)")
	timeout := flag.Duration("timeout", 0, "wall-clock cap for the run (0 = none); composes with -maxcycles/-stall")
	auditOn := flag.Bool("audit", false, "enable the integrity auditor (read-only invariant checks)")
	oracleOn := flag.Bool("oracle", false, "cross-check retirement against the golden in-order model")
	inject := flag.String("inject", "", "fault kinds to inject: comma-separated list or \"all\" (empty = off)")
	injectSeed := flag.Uint64("inject-seed", 1, "fault-injection target-selection seed")
	injectEvery := flag.Uint64("inject-every", 997, "fire a fault on every Nth eligible event per kind")
	cpistack := flag.Bool("cpistack", false, "attribute every cycle to a CPI-stack bucket and print the breakdown")
	counters := flag.Bool("counters", false, "print the counter-registry snapshot")
	traceEvents := flag.String("trace-events", "", "write retained trace events as JSONL to this file")
	traceChrome := flag.String("trace-chrome", "", "write retained trace events in Chrome trace_event format to this file")
	traceCap := flag.Int("trace-cap", 65536, "event-tracer ring capacity (retained events)")
	traceFile := flag.String("trace-file", "", "replay a saved trace file (lbp1, lbp2 or champsim) instead of generating -workload")
	flag.Parse()
	instsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "insts" {
			instsSet = true
		}
	})

	var w workloads.Workload
	if *traceFile != "" {
		// File replay: the stream IS the workload; -seed has nothing to
		// perturb and -oracle needs the whole trace resident.
		if *seed != 0 {
			fmt.Fprintln(os.Stderr, "lbpsim: -seed does not apply to -trace-file replay")
			os.Exit(service.ExitConfigError)
		}
		if *oracleOn {
			fmt.Fprintln(os.Stderr, "lbpsim: -oracle requires an in-process generated trace, not -trace-file")
			os.Exit(service.ExitConfigError)
		}
		w = workloads.FromFile(*traceFile)
	} else {
		var ok bool
		w, ok = workloads.ByName(*name)
		if !ok {
			fmt.Fprintf(os.Stderr, "lbpsim: unknown workload %q\n", *name)
			os.Exit(service.ExitConfigError)
		}
	}

	var lcfg loop.Config
	switch *loopSize {
	case 64:
		lcfg = loop.Loop64()
	case 128:
		lcfg = loop.Loop128()
	case 256:
		lcfg = loop.Loop256()
	default:
		fmt.Fprintln(os.Stderr, "lbpsim: -loop must be 64, 128 or 256")
		os.Exit(service.ExitConfigError)
	}

	var tcfg tage.Config
	switch *tageKB {
	case 8:
		tcfg = tage.KB8()
	case 9:
		tcfg = tage.KB9()
	case 57:
		tcfg = tage.KB57()
	default:
		fmt.Fprintln(os.Stderr, "lbpsim: -tage must be 8, 9 or 57")
		os.Exit(service.ExitConfigError)
	}

	// Resolve the scheme through the shared registry: one name → construction
	// mapping for lbpsim, lbpsweep and the localbp facade.
	scheme, def, err := schemes.Build(*schemeName, func(p *schemes.Params) { p.Loop = lcfg })
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbpsim: %v\nschemes:\n%s", err, schemes.Usage())
		os.Exit(service.ExitConfigError)
	}

	// Fail fast on malformed configurations with field-level errors before
	// any simulation state is built.
	ccfg := core.DefaultConfig()
	ccfg.MaxCycles = *maxCycles
	ccfg.StallCycles = *stallCycles
	for _, err := range []error{tcfg.Validate(), lcfg.Validate(), ccfg.Validate()} {
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbpsim: invalid configuration:\n%v\n", err)
			os.Exit(service.ExitConfigError)
		}
	}

	// Observability: build the requested hooks and register the raw scheme
	// before any decorator wraps it (wrappers forward behaviour, not
	// registration).
	var hooks *obs.Hooks
	if *cpistack || *counters || *traceEvents != "" || *traceChrome != "" {
		hooks = &obs.Hooks{}
		if *cpistack {
			hooks.CPI = obs.NewCPIStack()
		}
		if *counters {
			hooks.Reg = obs.NewRegistry()
		}
		if *traceEvents != "" || *traceChrome != "" {
			if *traceCap <= 0 {
				fmt.Fprintln(os.Stderr, "lbpsim: -trace-cap must be > 0")
				os.Exit(service.ExitConfigError)
			}
			hooks.Tracer = obs.NewTracer(*traceCap)
		}
		ccfg.Obs = hooks
		if scheme != nil {
			repair.AttachObs(scheme, hooks.Reg, hooks.Tracer)
		}
	}

	// Assemble the decorator stack exactly as harness.RunTraceChecked does:
	// fault injection innermost, auditor outermost, so the auditor observes
	// the faulted scheme the way the pipeline does.
	var inj *faultinject.Injector
	if *inject != "" {
		kinds, err := faultinject.ParseKinds(*inject)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbpsim: %v\n", err)
			os.Exit(service.ExitConfigError)
		}
		icfg := faultinject.Config{Seed: *injectSeed, Every: *injectEvery, Kinds: kinds}
		built, err := faultinject.New(icfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbpsim: %v\n", err)
			os.Exit(service.ExitConfigError)
		}
		inj = built
		if scheme != nil {
			scheme = inj.Wrap(scheme)
		}
	}
	var aud *audit.Auditor
	if *auditOn {
		aud = audit.New()
		ccfg.Audit = aud
		if scheme != nil {
			scheme = audit.WrapScheme(scheme, aud)
		}
	}

	var src trace.Source
	if *traceFile != "" {
		// -insts limits the replay only when given explicitly; the default
		// is the whole file.
		n := 0
		if instsSet {
			n = *insts
		}
		opened, err := w.Open(n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbpsim: %v\n", err)
			os.Exit(service.ExitConfigError)
		}
		defer trace.CloseSource(opened)
		src = opened
		fmt.Printf("trace file: %s, %d instructions\n", *traceFile, src.Len())
	} else {
		fmt.Printf("workload: %s (%s), %d instructions\n", w.Name, w.Category, *insts)
		if *seed != 0 {
			w.Seed = *seed
		}
		tr := w.Generate(*insts)
		if err := trace.Validate(tr); err != nil {
			fmt.Fprintf(os.Stderr, "lbpsim: generated trace invalid:\n%v\n", err)
			os.Exit(service.ExitConfigError)
		}
		if *oracleOn {
			ccfg.Golden = audit.NewGolden(tr)
		}
		src = trace.NewSliceSource(tr)
	}
	unit := bpu.NewUnit(tcfg, scheme)
	unit.Oracle = def.Oracle
	if inj != nil {
		inj.AttachTAGE(unit.Tage)
	}
	// Cancellation: SIGINT/SIGTERM and -timeout both flow through the run
	// context; the cycle loop observes it within one check stride. The
	// wall-clock cap composes with the cycle-domain watchdog
	// (-maxcycles/-stall) — whichever trips first ends the run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	c, err := core.NewStream(ccfg, unit, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbpsim: %v\n", err)
		os.Exit(service.ExitConfigError)
	}
	st, err := c.RunContext(ctx)
	if err != nil {
		// Shared exit taxonomy (service.ExitCodeForError): cancellation —
		// signal or -timeout — exits 4, everything else 1.
		fmt.Fprintf(os.Stderr, "lbpsim: %v\n", err)
		os.Exit(service.ExitCodeForError(err))
	}

	fmt.Printf("\ncore:\n")
	fmt.Printf("  cycles        %12d\n", st.Cycles)
	fmt.Printf("  IPC           %12.3f\n", st.IPC())
	fmt.Printf("  MPKI          %12.3f  (TAGE-only view: %.3f)\n", st.MPKI(), st.TageMPKI())
	fmt.Printf("  branches      %12d  (%d mispredicted, %d flushes)\n", st.Branches, st.Mispredicts, st.Flushes)
	fmt.Printf("  wrong-path    %12d instructions synthesized\n", st.WrongPathInsts)

	ov, ovc := unit.OverrideStats()
	if scheme != nil {
		fmt.Printf("\nlocal predictor (%s):\n", scheme.Name())
		fmt.Printf("  overrides     %12d  (%d correct on the retired path)\n", ov, ovc)
		rst := scheme.Stats()
		fmt.Printf("  repairs       %12d  (%d unrepaired, %d restarts)\n", rst.Repairs, rst.Unrepaired, rst.Restarts)
		fmt.Printf("  repair writes %12d  (%d checkpoint reads)\n", rst.RepairWrites, rst.RepairReads)
		fmt.Printf("  BHT busy      %12d cycles, %d checkpoint misses\n", rst.BusyCycles, rst.CkptMisses)
		if rst.EarlyResteers > 0 {
			fmt.Printf("  early resteers%12d\n", rst.EarlyResteers)
		}
		fmt.Printf("  storage       %12.2f KB (local predictor + repair)\n", float64(scheme.StorageBits())/8192)
	}

	acc, l1m, l2m, llcm := c.Mem().Stats()
	fmt.Printf("\nmemory:\n  accesses %d, L1 miss %.1f%%, L2 miss %.1f%%, LLC miss %.1f%%\n",
		acc, pct(l1m, acc), pct(l2m, l1m), pct(llcm, l2m))

	if hooks != nil {
		if hooks.CPI != nil {
			fmt.Printf("\nCPI stack (every cycle attributed; audited):\n%s", hooks.CPI)
		}
		if hooks.Reg != nil {
			fmt.Printf("\ncounters:\n%s", obs.FormatSnapshot(hooks.Reg.Snapshot()))
			for _, h := range hooks.Reg.Histograms() {
				fmt.Printf("\n%s\n", h)
			}
		}
		if hooks.Tracer != nil {
			labels := map[string]string{
				"workload": w.Name,
				"scheme":   *schemeName,
				"insts":    fmt.Sprint(*insts),
			}
			if err := writeTrace(*traceEvents, func(f io.Writer) error {
				return hooks.Tracer.WriteJSONL(f, labels)
			}); err != nil {
				fmt.Fprintf(os.Stderr, "lbpsim: %v\n", err)
				os.Exit(service.ExitFailure)
			}
			if err := writeTrace(*traceChrome, hooks.Tracer.WriteChromeTrace); err != nil {
				fmt.Fprintf(os.Stderr, "lbpsim: %v\n", err)
				os.Exit(service.ExitFailure)
			}
			fmt.Printf("\ntrace: %d events emitted, %d retained\n",
				hooks.Tracer.Total(), len(hooks.Tracer.Events()))
		}
	}

	if aud != nil {
		fmt.Printf("\nintegrity: %d checks, 0 violations", aud.Checks())
		if *oracleOn {
			fmt.Printf(", golden model verified %d retirements", st.Insts)
		}
		fmt.Println()
	}
	if inj != nil {
		fmt.Printf("\nfault injection: %d faults injected", inj.Total())
		counts := inj.Counts()
		for _, k := range faultinject.Kinds() {
			if n := counts[k.String()]; n > 0 {
				fmt.Printf("  %s=%d", k, n)
			}
		}
		fmt.Println()
	}
}

// writeTrace writes one trace artifact; an empty path is a no-op.
func writeTrace(path string, write func(io.Writer) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
