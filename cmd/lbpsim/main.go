// Command lbpsim simulates one workload under one configuration and prints
// detailed statistics: IPC, MPKI, override accuracy, repair activity, cache
// behaviour.
//
// Usage:
//
//	lbpsim [-insts N] [-workload name] [-scheme name] [-loop 64|128|256] [-tage 8|9|57]
//	       [-audit] [-oracle] [-inject kinds] [-inject-seed N] [-inject-every N]
//
// Scheme names: baseline, perfect, oracle, none, retire, snapshot, backward,
// forward, forward-coalesce, multistage, multistage-split, limited2,
// limited4, limited8.
//
// -audit enables the integrity auditor (read-only invariant checks; the
// first violation aborts with a structured report). -oracle cross-checks
// every retirement against a timing-free in-order execution of the trace
// (the golden-model differential oracle; distinct from `-scheme oracle`,
// the never-mispredicting local predictor). -inject enables deterministic
// fault injection: a comma-separated kind list or "all" (see
// internal/faultinject).
package main

import (
	"flag"
	"fmt"
	"os"

	"localbp/internal/audit"
	"localbp/internal/bpu"
	"localbp/internal/bpu/loop"
	"localbp/internal/bpu/tage"
	"localbp/internal/core"
	"localbp/internal/faultinject"
	"localbp/internal/repair"
	"localbp/internal/trace"
	"localbp/internal/workloads"
)

func main() {
	insts := flag.Int("insts", 500_000, "instructions to simulate")
	name := flag.String("workload", "cloud-compression", "workload name (see lbptrace -list)")
	schemeName := flag.String("scheme", "forward", "configuration to simulate")
	loopSize := flag.Int("loop", 128, "CBPw-Loop entries (64, 128 or 256)")
	tageKB := flag.Int("tage", 8, "TAGE baseline size class (8, 9 or 57)")
	maxCycles := flag.Int64("maxcycles", 0, "abort if the run exceeds this many cycles (0 = automatic budget)")
	stallCycles := flag.Int64("stall", 0, "abort if no instruction retires for this many cycles (0 = default deadman)")
	auditOn := flag.Bool("audit", false, "enable the integrity auditor (read-only invariant checks)")
	oracleOn := flag.Bool("oracle", false, "cross-check retirement against the golden in-order model")
	inject := flag.String("inject", "", "fault kinds to inject: comma-separated list or \"all\" (empty = off)")
	injectSeed := flag.Uint64("inject-seed", 1, "fault-injection target-selection seed")
	injectEvery := flag.Uint64("inject-every", 997, "fire a fault on every Nth eligible event per kind")
	flag.Parse()

	w, ok := workloads.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "lbpsim: unknown workload %q\n", *name)
		os.Exit(2)
	}

	var lcfg loop.Config
	switch *loopSize {
	case 64:
		lcfg = loop.Loop64()
	case 128:
		lcfg = loop.Loop128()
	case 256:
		lcfg = loop.Loop256()
	default:
		fmt.Fprintln(os.Stderr, "lbpsim: -loop must be 64, 128 or 256")
		os.Exit(2)
	}

	var tcfg tage.Config
	switch *tageKB {
	case 8:
		tcfg = tage.KB8()
	case 9:
		tcfg = tage.KB9()
	case 57:
		tcfg = tage.KB57()
	default:
		fmt.Fprintln(os.Stderr, "lbpsim: -tage must be 8, 9 or 57")
		os.Exit(2)
	}

	var scheme repair.Scheme
	oracle := false
	p42 := repair.Ports{CkptRead: 4, BHTWrite: 2}
	p44 := repair.Ports{CkptRead: 4, BHTWrite: 4}
	switch *schemeName {
	case "baseline":
	case "perfect":
		scheme = repair.NewPerfect(lcfg)
	case "oracle":
		scheme = repair.NewPerfect(lcfg)
		oracle = true
	case "none":
		scheme = repair.NewNone(lcfg)
	case "retire":
		scheme = repair.NewRetireUpdate(lcfg)
	case "snapshot":
		scheme = repair.NewSnapshot(lcfg, 32, repair.Ports{CkptRead: 8, BHTWrite: 8})
	case "backward":
		scheme = repair.NewBackwardWalk(lcfg, 32, p44)
	case "forward":
		scheme = repair.NewForwardWalk(lcfg, 32, p42, false)
	case "forward-coalesce":
		scheme = repair.NewForwardWalk(lcfg, 32, p42, true)
	case "multistage":
		scheme = repair.NewMultiStage(lcfg, 32, true)
	case "multistage-split":
		scheme = repair.NewMultiStage(lcfg, 32, false)
	case "limited2":
		scheme = repair.NewLimitedPC(lcfg, 2, 2, false)
	case "limited4":
		scheme = repair.NewLimitedPC(lcfg, 4, 4, false)
	case "limited8":
		scheme = repair.NewLimitedPC(lcfg, 8, 4, false)
	default:
		fmt.Fprintf(os.Stderr, "lbpsim: unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}

	// Fail fast on malformed configurations with field-level errors before
	// any simulation state is built.
	ccfg := core.DefaultConfig()
	ccfg.MaxCycles = *maxCycles
	ccfg.StallCycles = *stallCycles
	for _, err := range []error{tcfg.Validate(), lcfg.Validate(), ccfg.Validate()} {
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbpsim: invalid configuration:\n%v\n", err)
			os.Exit(2)
		}
	}

	// Assemble the decorator stack exactly as harness.RunTraceChecked does:
	// fault injection innermost, auditor outermost, so the auditor observes
	// the faulted scheme the way the pipeline does.
	var inj *faultinject.Injector
	if *inject != "" {
		kinds, err := faultinject.ParseKinds(*inject)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbpsim: %v\n", err)
			os.Exit(2)
		}
		icfg := faultinject.Config{Seed: *injectSeed, Every: *injectEvery, Kinds: kinds}
		built, err := faultinject.New(icfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbpsim: %v\n", err)
			os.Exit(2)
		}
		inj = built
		if scheme != nil {
			scheme = inj.Wrap(scheme)
		}
	}
	var aud *audit.Auditor
	if *auditOn {
		aud = audit.New()
		ccfg.Audit = aud
		if scheme != nil {
			scheme = audit.WrapScheme(scheme, aud)
		}
	}

	fmt.Printf("workload: %s (%s), %d instructions\n", w.Name, w.Category, *insts)
	tr := w.Generate(*insts)
	if err := trace.Validate(tr); err != nil {
		fmt.Fprintf(os.Stderr, "lbpsim: generated trace invalid:\n%v\n", err)
		os.Exit(1)
	}
	if *oracleOn {
		ccfg.Golden = audit.NewGolden(tr)
	}
	unit := bpu.NewUnit(tcfg, scheme)
	unit.Oracle = oracle
	if inj != nil {
		inj.AttachTAGE(unit.Tage)
	}
	c := core.New(ccfg, unit, tr)
	st, err := c.RunChecked()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbpsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\ncore:\n")
	fmt.Printf("  cycles        %12d\n", st.Cycles)
	fmt.Printf("  IPC           %12.3f\n", st.IPC())
	fmt.Printf("  MPKI          %12.3f  (TAGE-only view: %.3f)\n", st.MPKI(), st.TageMPKI())
	fmt.Printf("  branches      %12d  (%d mispredicted, %d flushes)\n", st.Branches, st.Mispredicts, st.Flushes)
	fmt.Printf("  wrong-path    %12d instructions synthesized\n", st.WrongPathInsts)

	ov, ovc := unit.OverrideStats()
	if scheme != nil {
		fmt.Printf("\nlocal predictor (%s):\n", scheme.Name())
		fmt.Printf("  overrides     %12d  (%d correct on the retired path)\n", ov, ovc)
		rst := scheme.Stats()
		fmt.Printf("  repairs       %12d  (%d unrepaired, %d restarts)\n", rst.Repairs, rst.Unrepaired, rst.Restarts)
		fmt.Printf("  repair writes %12d  (%d checkpoint reads)\n", rst.RepairWrites, rst.RepairReads)
		fmt.Printf("  BHT busy      %12d cycles, %d checkpoint misses\n", rst.BusyCycles, rst.CkptMisses)
		if rst.EarlyResteers > 0 {
			fmt.Printf("  early resteers%12d\n", rst.EarlyResteers)
		}
		fmt.Printf("  storage       %12.2f KB (local predictor + repair)\n", float64(scheme.StorageBits())/8192)
	}

	acc, l1m, l2m, llcm := c.Mem().Stats()
	fmt.Printf("\nmemory:\n  accesses %d, L1 miss %.1f%%, L2 miss %.1f%%, LLC miss %.1f%%\n",
		acc, pct(l1m, acc), pct(l2m, l1m), pct(llcm, l2m))

	if aud != nil {
		fmt.Printf("\nintegrity: %d checks, 0 violations", aud.Checks())
		if *oracleOn {
			fmt.Printf(", golden model verified %d retirements", st.Insts)
		}
		fmt.Println()
	}
	if inj != nil {
		fmt.Printf("\nfault injection: %d faults injected", inj.Total())
		counts := inj.Counts()
		for _, k := range faultinject.Kinds() {
			if n := counts[k.String()]; n > 0 {
				fmt.Printf("  %s=%d", k, n)
			}
		}
		fmt.Println()
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}
