// Command lbpsweep regenerates the paper's figures and tables.
//
// Usage:
//
//	lbpsweep [-insts N] [-quick] [-workers N] [-checkpoint file] [-list] [experiment ids...]
//
// Without arguments it runs every experiment (table1 … fig14b) in paper
// order; results for configurations shared between experiments are computed
// once, and workload runs within a configuration fan out across -workers
// goroutines (GOMAXPROCS by default; results are deterministic in the
// worker count). With -quick the reduced, category-balanced workload subset
// is used.
//
// With -checkpoint, completed experiment outputs are flushed to the given
// JSON file after each experiment; rerunning the same sweep (same -insts /
// -warmup / -quick) skips completed experiments and replays their stored
// output, so an interrupted sweep resumes instead of restarting.
//
// A workload run that panics or stops making forward progress is isolated
// into a structured failure: the sweep completes, the affected experiment
// reports N/M failed runs, and the failures are listed after its output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"localbp/internal/harness"
)

func main() {
	insts := flag.Int("insts", 300_000, "instructions simulated per workload")
	warmup := flag.Int("warmup", 0, "leading retired instructions excluded from statistics")
	quick := flag.Bool("quick", false, "use the reduced workload subset")
	workers := flag.Int("workers", 0, "concurrent workload runs per configuration (0 = GOMAXPROCS)")
	checkpoint := flag.String("checkpoint", "", "JSON file for checkpoint/resume of completed experiments")
	auditSample := flag.Int("audit-sample", 0, "run the integrity auditor + golden model on every Nth workload per spec (0 = off)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	verbose := flag.Bool("v", false, "print per-configuration progress")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range harness.Experiments() {
			ids = append(ids, e.ID)
		}
	}

	// Validate every experiment id before running anything: a typo must
	// surface immediately and completely, not hours into a sweep.
	var unknown []string
	for _, id := range ids {
		if _, ok := harness.ExperimentByID(id); !ok {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "lbpsweep: unknown experiment ids: %s (use -list)\n",
			strings.Join(unknown, ", "))
		os.Exit(2)
	}

	opts := harness.Options{Insts: *insts, Quick: *quick, Warmup: *warmup, Workers: *workers,
		AuditSample: *auditSample}

	var ck *harness.Checkpoint
	if *checkpoint != "" {
		loaded, err := harness.LoadCheckpoint(*checkpoint)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
			os.Exit(2)
		}
		ck = loaded
		if ck == nil {
			ck = harness.NewCheckpoint(opts)
		} else if !ck.Matches(opts) {
			fmt.Fprintf(os.Stderr,
				"lbpsweep: checkpoint %s was written with -insts %d -warmup %d -quick %v; rerun with those flags or delete it\n",
				*checkpoint, ck.Insts, ck.Warmup, ck.Quick)
			os.Exit(2)
		}
	}

	r := harness.NewRunner(opts)
	if *verbose {
		r.Log = os.Stderr
	}
	suite := "full suite (202 workloads)"
	if *quick {
		suite = "quick suite (50 workloads)"
	}
	fmt.Printf("lbpsweep: %s, %d instructions per workload\n\n", suite, *insts)

	exitCode := 0
	reported := 0 // failures already attributed to earlier experiments
	for _, id := range ids {
		e, _ := harness.ExperimentByID(id)
		if ck != nil {
			if done, ok := ck.Done(id); ok {
				fmt.Printf("== %s — %s (%.1fs)\n%s\n", e.ID, e.Title, done.Seconds, done.Output)
				continue
			}
		}
		t0 := time.Now()
		out, err := e.Run(r)
		secs := time.Since(t0).Seconds()
		if err != nil {
			// Aggregation failed (for example mismatched result sets after a
			// partial sweep): skip this artifact, keep the sweep going.
			fmt.Fprintf(os.Stderr, "lbpsweep: %s failed: %v\n", e.ID, err)
			exitCode = 1
			continue
		}

		// Graceful degradation: failures recorded during this experiment
		// (its own fresh specs; memoized specs reported where first run)
		// are appended to the experiment's output so they persist through
		// checkpoints and resumes.
		failures := r.Failures()
		if fresh := failures[reported:]; len(fresh) > 0 {
			var b strings.Builder
			fmt.Fprintf(&b, "!! %d workload run(s) failed; aggregates above cover the remaining runs:\n", len(fresh))
			for _, f := range fresh {
				fmt.Fprintf(&b, "!!   %s × %s [%s]: %s\n", f.Workload, f.SpecLabel, f.Phase, firstLine(f.Err.Error()))
			}
			out += "\n" + b.String()
			reported = len(failures)
			exitCode = 1
		}

		fmt.Printf("== %s — %s (%.1fs)\n%s\n", e.ID, e.Title, secs, out)

		if ck != nil {
			ck.Record(id, harness.ExperimentOutcome{Output: out, Seconds: secs})
			if err := ck.Save(*checkpoint); err != nil {
				fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
				os.Exit(2)
			}
		}
	}
	os.Exit(exitCode)
}

// firstLine truncates multi-line error text (stall dumps, panic stacks) for
// the per-experiment failure summary; full detail reaches stderr with -v.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " ..."
	}
	return s
}
