// Command lbpsweep regenerates the paper's figures and tables.
//
// Usage:
//
//	lbpsweep [-insts N] [-quick] [-workers N] [-checkpoint file] [-retries N] [-timeout D] [-deadline D] [-list] [experiment ids...]
//	lbpsweep -shards N -lease-dir DIR [sweep flags] [experiment ids...]
//	lbpsweep -shard k/N -lease-dir DIR [sweep flags] [experiment ids...]
//	lbpsweep -merge -shards N -lease-dir DIR [-merge-out file] [experiment ids...]
//	lbpsweep -cpistack [-scheme name] [-insts N] [-quick]
//	lbpsweep -trace-events file -workload name [-scheme name] [-insts N] [-seed N]
//	lbpsweep -trace-file file [-scheme name] [-insts N]
//
// Without arguments it runs every experiment (table1 … fig14b, ext*) in
// paper order; results for configurations shared between experiments are
// computed once, and workload runs within a configuration fan out across
// -workers goroutines (GOMAXPROCS by default; results are deterministic in
// the worker count). With -quick the reduced, category-balanced workload
// subset is used.
//
// Resilience:
//
//   - -checkpoint flushes completed experiment outputs to the given file
//     (CRC-stamped, two generations) after each experiment; rerunning the
//     same sweep (same -insts / -warmup / -quick) skips completed
//     experiments and replays their stored output. A corrupt checkpoint is
//     preserved as <file>.corrupt and the previous generation is recovered
//     automatically when valid.
//   - -retries N retries transiently failed workload runs (stalls,
//     integrity trips, panics) up to N times with deterministic jittered
//     exponential backoff; permanent failures (validation, generation) are
//     never retried. Retries replay the identical trace, so surviving
//     results are bit-identical to a retry-free sweep.
//   - -timeout D bounds each workload run attempt's wall clock, composing
//     with the cycle-domain watchdog (-insts budget and stall detection).
//   - -deadline D bounds the whole invocation's wall clock: on expiry the
//     sweep is canceled exactly like SIGINT (completed experiments stay
//     checkpointed) and the process exits with code 4.
//   - SIGINT/SIGTERM cancel the sweep gracefully: in-flight workload runs
//     stop within one cancellation-check stride, completed experiments are
//     already checkpointed, and the process exits with code 4.
//   - -inject transient arms the deterministic chaos plan: seeded,
//     attempt-dependent synthetic faults that exercise the retry machinery
//     without perturbing surviving results.
//
// Sharded sweeps (DESIGN.md §15) split the experiment set across worker
// processes by a stable hash of the experiment id:
//
//   - -shards N runs the coordinator: N `lbpsweep -shard k/N` subprocesses
//     (bounded by -shard-parallel) with durable, heartbeat-renewed leases in
//     -lease-dir; a worker whose lease expires (crash, OOM kill, freeze) has
//     its shard reassigned to a fresh worker, which resumes from the shard's
//     checkpoint. -chaos-kill k SIGKILLs shard k's first worker mid-shard to
//     rehearse exactly that path.
//   - -shard k/N runs one worker: lease out shard k, sweep its assigned
//     experiments into the shard checkpoint, heartbeat every
//     -lease-heartbeat, release on exit. Workers may equally be launched by
//     hand or by coordinators on different machines sharing -lease-dir.
//   - -merge folds the per-shard checkpoints through an integrity gate
//     (CRC per shard, option-stamp agreement, every expected experiment
//     exactly once) and prints the canonical timing-free output, which is
//     bit-identical to the same render of a single-process sweep.
//
// Exit codes: 0 all experiments ok; 1 partial (some experiments or workload
// runs failed); 2 configuration error; 3 every attempted experiment failed;
// 4 interrupted (signal or -deadline).
//
// Observability modes:
//
//   - -cpistack prints a CPI stack (cycle-accounting breakdown) for one
//     representative workload per category under -scheme (default the
//     paper's forward-coalesce). Attribution is audited: every cycle lands
//     in exactly one bucket and the buckets must sum to total cycles.
//   - -trace-events runs -workload under -scheme with the structured event
//     tracer and writes the retained events as JSONL.
//   - -pprof DIR profiles the process: cpu.pprof and heap.pprof plus a
//     runtime-metrics dump (runtime/metrics) land in DIR.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"syscall"
	"time"

	"localbp/internal/harness"
	"localbp/internal/obs"
	"localbp/internal/service"
	"localbp/internal/trace"
	"localbp/internal/workloads"
)

func main() { os.Exit(run()) }

// run is main with an exit code: deferred cleanups (profile flushes) must
// execute before the process exits, so nothing below calls os.Exit.
func run() int {
	insts := flag.Int("insts", 300_000, "instructions simulated per workload")
	warmup := flag.Int("warmup", 0, "leading retired instructions excluded from statistics")
	quick := flag.Bool("quick", false, "use the reduced workload subset")
	workers := flag.Int("workers", 0, "concurrent workload runs per configuration (0 = GOMAXPROCS)")
	checkpoint := flag.String("checkpoint", "", "file for checkpoint/resume of completed experiments")
	retries := flag.Int("retries", 0, "retry budget for transiently failed workload runs")
	timeout := flag.Duration("timeout", 0, "wall-clock cap per workload run attempt (0 = none)")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline for the whole invocation; on expiry the sweep is canceled and exits 4 (0 = none)")
	shardSpec := flag.String("shard", "", "worker mode: run shard k/N of the selected experiments (requires -lease-dir)")
	shards := flag.Int("shards", 0, "coordinator mode: run the sweep across N worker processes (requires -lease-dir); also the N for -merge")
	merge := flag.Bool("merge", false, "merge the per-shard checkpoints in -lease-dir (or render -checkpoint) and print the canonical timing-free output")
	leaseDir := flag.String("lease-dir", "", "directory for shard lease journals, per-shard checkpoints and worker logs")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "shard lease time-to-live; a worker silent this long is presumed dead and its shard reassigned")
	leaseHB := flag.Duration("lease-heartbeat", 0, "shard lease renewal interval (0 = lease-ttl/4)")
	shardAttempts := flag.Int("shard-attempts", 3, "workers spawned per shard before declaring it retry-exhausted (coordinator mode)")
	shardParallel := flag.Int("shard-parallel", 0, "concurrently running workers (0 = all shards at once)")
	chaosKill := flag.Int("chaos-kill", -1, "coordinator chaos: SIGKILL this shard's first worker once it is observably mid-shard (negative = off)")
	mergeOut := flag.String("merge-out", "", "with -merge: also save the merged checkpoint to this file")
	inject := flag.String("inject", "", "chaos injection mode; accepted values: 'transient' (deterministically fail leading run attempts; pair with -retries) or empty to disable — anything else is a configuration error (exit 2)")
	injectSeed := flag.Uint64("inject-seed", 1, "seed for the -inject chaos plan")
	auditSample := flag.Int("audit-sample", 0, "run the integrity auditor + golden model on every Nth workload per spec (0 = off)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	verbose := flag.Bool("v", false, "print per-configuration progress")
	schemeName := flag.String("scheme", "forward-coalesce", "scheme for -cpistack / -trace-events (see internal/schemes)")
	workload := flag.String("workload", "", "workload for -trace-events")
	seed := flag.Int64("seed", 0, "override the workload's trace-generation seed for -trace-events (0 = workload default)")
	cpistack := flag.Bool("cpistack", false, "print the per-category CPI-stack table instead of running experiments")
	traceEvents := flag.String("trace-events", "", "write one run's structured events as JSONL to this file (requires -workload)")
	traceFile := flag.String("trace-file", "", "replay this saved trace file (lbp1, lbp2 or champsim) under -scheme and print the result")
	pprofDir := flag.String("pprof", "", "write cpu.pprof, heap.pprof and a runtime-metrics dump to this directory")
	flag.Parse()
	instsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "insts" {
			instsSet = true
		}
	})

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return 0
	}

	// SIGINT/SIGTERM cancel the sweep context; workers observe it within one
	// cancellation-check stride and the sweep drains gracefully. A second
	// signal kills the process outright (signal.NotifyContext unregisters
	// after the first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// -deadline composes with signal cancellation: whichever fires first
	// cancels the same context, and both exit 4 with the work checkpointed.
	if *deadline > 0 {
		dctx, cancelDeadline := context.WithTimeout(ctx, *deadline)
		defer cancelDeadline()
		ctx = dctx
	}

	if *pprofDir != "" {
		stopProf, err := startProfiles(*pprofDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
			return int(service.SweepConfigError)
		}
		defer stopProf()
	}

	opts := harness.Options{Insts: *insts, Quick: *quick, Warmup: *warmup, Workers: *workers,
		AuditSample: *auditSample, Retries: *retries, RunTimeout: *timeout}

	switch *inject {
	case "":
	case "transient":
		opts.Chaos = &harness.ChaosPlan{Seed: *injectSeed, MaxFaults: 2}
		if *retries == 0 {
			fmt.Fprintf(os.Stderr, "lbpsweep: note: -inject transient without -retries will fail chaos-faulted runs\n")
		}
	default:
		fmt.Fprintf(os.Stderr, "lbpsweep: unknown -inject mode %q (supported: transient)\n", *inject)
		return int(service.SweepConfigError)
	}

	sf := shardFlags{
		spec:       *shardSpec,
		shards:     *shards,
		merge:      *merge,
		dir:        *leaseDir,
		ttl:        *leaseTTL,
		heartbeat:  *leaseHB,
		attempts:   *shardAttempts,
		parallel:   *shardParallel,
		chaosKill:  *chaosKill,
		mergeOut:   *mergeOut,
		checkpoint: *checkpoint,
	}
	switch {
	case sf.merge:
		return runMerge(sf, flag.Args())
	case sf.spec != "" && sf.shards > 0:
		fmt.Fprintln(os.Stderr, "lbpsweep: -shard (worker) and -shards (coordinator) are mutually exclusive")
		return service.ExitConfigError
	case sf.spec != "":
		return runShardWorker(ctx, sf, opts, flag.Args(), *verbose)
	case sf.shards > 0:
		return runCoordinator(ctx, sf, opts, flag.Args(), *verbose)
	}

	if *cpistack {
		out, err := harness.CPIStackTable(ctx, opts, *schemeName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
			if ctx.Err() != nil {
				return int(service.SweepInterrupted)
			}
			return int(service.SweepConfigError)
		}
		fmt.Printf("CPI stacks, %d instructions per workload, scheme %s:\n%s", *insts, *schemeName, out)
		return 0
	}

	if *traceFile != "" {
		n := 0
		if instsSet {
			n = *insts
		}
		if err := replayTraceFile(ctx, *traceFile, *schemeName, n); err != nil {
			fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
			if ctx.Err() != nil {
				return int(service.SweepInterrupted)
			}
			return int(service.SweepConfigError)
		}
		return 0
	}

	if *traceEvents != "" {
		if err := traceOneRun(ctx, opts, *workload, *schemeName, *seed, *traceEvents); err != nil {
			fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
			if ctx.Err() != nil {
				return int(service.SweepInterrupted)
			}
			return int(service.SweepConfigError)
		}
		return 0
	}

	suite := "full suite (202 workloads)"
	if *quick {
		suite = "quick suite (50 workloads)"
	}
	fmt.Printf("lbpsweep: %s, %d instructions per workload\n\n", suite, *insts)

	cfg := service.SweepConfig{
		Opts:       opts,
		IDs:        flag.Args(),
		Checkpoint: *checkpoint,
		Out:        os.Stdout,
		Errs:       os.Stderr,
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	rep, err := service.RunSweep(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbpsweep: %v\n", err)
		return int(service.SweepConfigError)
	}
	status := rep.Status()
	fmt.Fprintf(os.Stderr, "lbpsweep: %s: %s\n", status, rep.Summary())
	if status == service.SweepInterrupted && *checkpoint != "" {
		fmt.Fprintf(os.Stderr, "lbpsweep: completed experiments are checkpointed in %s; rerun the same command to resume\n",
			*checkpoint)
	}
	return int(status)
}

// replayTraceFile streams one saved trace file through the simulator under
// one scheme and prints the result line; n > 0 truncates the replay. The
// whole path is fixed-memory: the file is never loaded as a slice.
func replayTraceFile(ctx context.Context, path, schemeName string, n int) error {
	spec, err := harness.SpecFor(schemeName)
	if err != nil {
		return err
	}
	src, err := workloads.FromFile(path).Open(n)
	if err != nil {
		return err
	}
	defer trace.CloseSource(src)
	st, _, err := harness.RunSourceContext(ctx, src, spec)
	if err != nil {
		return err
	}
	fmt.Printf("%s × %s: %d insts, %d cycles, IPC %.3f, MPKI %.3f\n",
		filepath.Base(path), schemeName, st.Insts, st.Cycles, st.IPC(), st.MPKI())
	return nil
}

// traceOneRun simulates one workload under one scheme with the event tracer
// attached and writes the retained events as JSONL.
func traceOneRun(ctx context.Context, o harness.Options, workload, schemeName string, seed int64, path string) error {
	if workload == "" {
		return fmt.Errorf("-trace-events requires -workload (see lbptrace -list)")
	}
	w, ok := workloads.ByName(workload)
	if !ok {
		return fmt.Errorf("unknown workload %q", workload)
	}
	if seed != 0 {
		w.Seed = seed
	}
	spec, err := harness.SpecFor(schemeName)
	if err != nil {
		return err
	}
	var tracer *obs.Tracer
	spec.Obs = &harness.ObsSpec{TraceCap: 1 << 16, Done: func(h *obs.Hooks) { tracer = h.Tracer }}
	tr := w.Generate(o.Insts)
	if err := trace.Validate(tr); err != nil {
		return err
	}
	st, _, err := harness.RunTraceContext(ctx, tr, spec)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	labels := map[string]string{
		"workload": w.Name,
		"scheme":   schemeName,
		"insts":    fmt.Sprint(o.Insts),
	}
	if err := tracer.WriteJSONL(f, labels); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s × %s: %d cycles, IPC %.3f, MPKI %.3f\n",
		w.Name, schemeName, st.Cycles, st.IPC(), st.MPKI())
	fmt.Printf("wrote %s (%d events emitted, %d retained)\n",
		path, tracer.Total(), len(tracer.Events()))
	return nil
}

// startProfiles begins CPU profiling into dir and returns the stop hook
// that also captures a heap profile and a runtime/metrics dump.
func startProfiles(dir string) (func(), error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	cpu, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		cpu.Close()

		heap, err := os.Create(filepath.Join(dir, "heap.pprof"))
		if err == nil {
			runtime.GC() // up-to-date allocation statistics
			pprof.WriteHeapProfile(heap)
			heap.Close()
		}

		if f, err := os.Create(filepath.Join(dir, "runtime-metrics.txt")); err == nil {
			writeRuntimeMetrics(f)
			f.Close()
		}
		fmt.Fprintf(os.Stderr, "lbpsweep: profiles written to %s\n", dir)
	}, nil
}

// writeRuntimeMetrics dumps every runtime/metrics sample in name-sorted
// order (the package returns descriptions pre-sorted by name).
func writeRuntimeMetrics(f *os.File) {
	descs := metrics.All()
	samples := make([]metrics.Sample, len(descs))
	for i, d := range descs {
		samples[i].Name = d.Name
	}
	metrics.Read(samples)
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			fmt.Fprintf(f, "%-60s %d\n", s.Name, s.Value.Uint64())
		case metrics.KindFloat64:
			fmt.Fprintf(f, "%-60s %g\n", s.Name, s.Value.Float64())
		case metrics.KindFloat64Histogram:
			h := s.Value.Float64Histogram()
			var n uint64
			for _, c := range h.Counts {
				n += c
			}
			fmt.Fprintf(f, "%-60s histogram, %d samples\n", s.Name, n)
		}
	}
}
